// Package powerdrill is a from-scratch Go implementation of the
// column-store described in "Processing a Trillion Cells per Mouse Click"
// (Hall, Bachmann, Büssow, Gănceanu, Nunkesser — PVLDB 5(11), 2012): the
// engine behind Google's PowerDrill.
//
// The package offers the full pipeline the paper describes:
//
//   - import raw tables with composite range partitioning (Section 2.2)
//     into the doubly dictionary-encoded column layout (Section 2.3);
//   - the Section 3 optimizations: minimal-width element encodings,
//     4-bit-trie global dictionaries, generic compression, row reordering;
//   - a SQL-subset engine with chunk skipping, dense counts-array
//     group-by, materialized virtual fields, per-chunk result caching and
//     approximate count distinct (Sections 2.4, 2.5, 5);
//   - distributed execution over sharded replicas with multi-level
//     aggregation (Section 4).
//
// Quick start:
//
//	tbl := powerdrill.GenerateQueryLogs(100_000, 42)
//	store, err := powerdrill.Build(tbl, powerdrill.Options{
//		PartitionFields: []string{"country", "table_name"},
//	})
//	res, err := store.Query(`SELECT country, COUNT(*) AS c FROM data
//	                         GROUP BY country ORDER BY c DESC LIMIT 10;`)
package powerdrill

import (
	"fmt"
	"sync"
	"time"

	"powerdrill/internal/cache"
	"powerdrill/internal/colstore"
	"powerdrill/internal/exec"
	"powerdrill/internal/ingest"
	"powerdrill/internal/memmgr"
	"powerdrill/internal/table"
	"powerdrill/internal/value"
	"powerdrill/internal/workload"
)

// Value is a scalar query value (string, int64 or float64).
type Value = value.Value

// Kind identifies a Value's type.
type Kind = value.Kind

// The scalar kinds.
const (
	KindString  = value.KindString
	KindInt64   = value.KindInt64
	KindFloat64 = value.KindFloat64
)

// Constructors for literals used with the API.
var (
	// String wraps a string as a Value.
	String = value.String
	// Int64 wraps an int64 as a Value.
	Int64 = value.Int64
	// Float64 wraps a float64 as a Value.
	Float64 = value.Float64
)

// Table is a raw, row-ordered table prior to import.
type Table = table.Table

// NewTable creates an empty raw table; add columns with AddStringColumn,
// AddInt64Column and AddFloat64Column.
func NewTable(name string) *Table { return table.New(name) }

// GenerateQueryLogs synthesizes the paper's evaluation dataset: PowerDrill
// query logs with timestamp, table_name, latency, country and user columns
// (Section 2.5's cardinality profile).
func GenerateQueryLogs(rows int, seed int64) *Table {
	return workload.QueryLogs(workload.LogsSpec{Rows: rows, Seed: seed})
}

// StringDictKind selects the string dictionary implementation.
type StringDictKind = colstore.StringDictKind

// The dictionary implementations (paper Section 2.3, 3 and 5).
const (
	StringDictArray   = colstore.StringDictArray
	StringDictTrie    = colstore.StringDictTrie
	StringDictSharded = colstore.StringDictSharded
)

// Options configures the import pipeline. The zero value is the paper's
// "Basic" layout: one chunk, 32-bit elements, sorted-array dictionaries.
type Options struct {
	// PartitionFields is the composite range partitioning key, in order —
	// a "natural primary key" of 3–5 fields. Empty disables partitioning.
	PartitionFields []string
	// MaxChunkRows is the chunk split threshold (default 50'000).
	MaxChunkRows int
	// OptimizeElements stores chunk elements at minimal widths.
	OptimizeElements bool
	// StringDict selects the global-dictionary implementation for string
	// columns.
	StringDict StringDictKind
	// Reorder sorts rows by PartitionFields before chunking, improving
	// compression (Section 3).
	Reorder bool

	// ResultCacheBytes bounds the per-chunk result cache (0 disables).
	ResultCacheBytes int64
	// CachePolicy is "lru", "2q" (default) or "arc".
	CachePolicy string
	// SketchM tunes approximate COUNT DISTINCT (default 2048).
	SketchM int
	// ExactDistinct computes COUNT DISTINCT exactly (single node only).
	ExactDistinct bool
	// Parallelism is the number of workers one query fans its chunk scans
	// out over; 0 uses all cores (runtime.GOMAXPROCS), 1 is sequential.
	// Concurrent queries share this worker budget through an admission
	// gate, so N queries degrade smoothly instead of spawning
	// N × Parallelism goroutines.
	Parallelism int

	// MemoryBudgetBytes bounds the resident bytes of disk-backed data for
	// stores opened with Open: dictionaries and chunks load lazily on
	// first touch and cold entries are evicted when the budget is
	// exceeded (the paper's Section 5 — only a fraction of the data needs
	// to reside in RAM). Residency is (column, chunk)-granular, so a
	// restricted query is only charged for the chunks its WHERE clause
	// can match; see docs/memory.md for budget semantics and tuning.
	// 0 means unlimited: data still loads lazily but nothing is evicted.
	// Ignored by Build, whose store is fully resident by construction.
	MemoryBudgetBytes int64
	// MemoryPolicy selects the eviction policy for Open: "lru",
	// "2q" (default) or "arc".
	MemoryPolicy string
	// IngestSealRows is the streaming-append buffer size: an Append that
	// fills the in-memory write buffer to this many rows seals it into an
	// on-disk segment (default: MaxChunkRows). See docs/ingest.md.
	IngestSealRows int
	// IngestCompactMinSegments is the live segment count at which the
	// background compactor merges all ingest segments into one
	// (default 4).
	IngestCompactMinSegments int
	// IngestFsyncPolicy controls when write-ahead-log appends reach
	// stable storage: FsyncAlways (fsync before every Append returns —
	// an acknowledged row survives an OS crash), FsyncInterval
	// (timer-driven fsync, the default — a process crash loses nothing,
	// an OS crash at most the last interval), or FsyncNever (the kernel
	// decides). See docs/ingest.md.
	IngestFsyncPolicy string
	// DisableChecksumVerify turns off per-record CRC32C verification on
	// cold reads of format-v5 stores. Verification is on by default; a
	// detected mismatch fails the read with the file and offset rather
	// than returning corrupt data. See docs/format.md.
	DisableChecksumVerify bool
	// ScrubInterval runs the offline scrub (see Scrub) on this cadence in
	// the background for stores opened from disk: every checksummed byte
	// of the directory is re-verified, read-only, while queries continue.
	// The latest verdict is available from Store.LastScrub and pdserver's
	// /statz last_scrub section. Default 0 = no background scrubbing.
	ScrubInterval time.Duration

	// DisableVirtualPersist keeps virtual columns (expressions materialized
	// at query time) out of the store's on-disk sidecar. By default a store
	// opened with Open persists each materialization next to the store so
	// it joins the memory budget — evictable, reloadable, and span-prunable
	// like physical data — and is still there after a reopen. With this set
	// (or when the store directory is not writable) materializations fall
	// back to in-memory registry residency: correct, but unevictable and
	// outside the budget, reported by MemoryStats.VirtualBytes.
	DisableVirtualPersist bool
}

func (o Options) storeOptions() colstore.Options {
	return colstore.Options{
		PartitionFields:  o.PartitionFields,
		MaxChunkRows:     o.MaxChunkRows,
		OptimizeElements: o.OptimizeElements,
		StringDict:       o.StringDict,
		Reorder:          o.Reorder,
	}
}

func (o Options) engineOptions() exec.Options {
	return exec.Options{
		ResultCacheBytes: o.ResultCacheBytes,
		CachePolicy:      o.CachePolicy,
		SketchM:          o.SketchM,
		ExactDistinct:    o.ExactDistinct,
		Parallelism:      o.Parallelism,
	}
}

// Store is an imported, queryable column store (one shard's worth of
// data; see Cluster for the distributed setup).
type Store struct {
	store  *colstore.Store
	engine *exec.Engine
	opts   Options

	// dir is the directory the store was opened from ("" for Build);
	// ing is the streaming-append path, attached by Open when the
	// directory carries ingest generations or lazily by the first Append.
	// closed marks a store Close has run on: Append must fail cleanly
	// rather than re-attach a writer to released file handles.
	dir    string
	ingMu  sync.Mutex
	ing    *ingest.Writer
	closed bool

	// Background scrub loop state (see scrub.go); scrubStop is non-nil
	// while the loop runs.
	scrubMu   sync.Mutex
	scrubLast *ScrubStatus
	scrubStop chan struct{}
	scrubWG   sync.WaitGroup
}

// Build imports a raw table.
func Build(tbl *Table, opts Options) (*Store, error) {
	cs, err := colstore.FromTable(tbl, opts.storeOptions())
	if err != nil {
		return nil, err
	}
	return &Store{store: cs, engine: exec.New(cs, opts.engineOptions()), opts: opts}, nil
}

// Result is a query result: column names and rows of values.
type Result struct {
	Columns []string
	Rows    [][]Value
	// Stats reports what the query touched.
	Stats QueryStats
	// Coverage is the fraction of rows the answer spans, in (0, 1]. It is
	// 1 except for cluster queries that had to serve a partial answer
	// because some shards were unreachable — the paper's UI shows this
	// fraction next to every result.
	Coverage float64
}

// QueryStats are per-query execution counters (chunks skipped, cached,
// scanned; rows and cells).
type QueryStats = exec.QueryStats

// Query parses and executes a SQL query:
//
//	SELECT expr [AS alias], ... FROM t [WHERE pred]
//	[GROUP BY expr, ...] [ORDER BY expr [ASC|DESC], ...] [LIMIT n]
//
// with AND/OR/NOT/IN/NOT IN/=/!=/</<=/>/>=, the scalar functions date,
// year, month, day, hour, lower, upper, length, and the aggregates
// COUNT(*), COUNT(x), COUNT(DISTINCT x), SUM, MIN, MAX, AVG.
// Stores with an active append path (see Append) answer through a
// snapshot: one bit-for-bit consistent cut of the append stream, pinned
// for the duration of the query while appends, seals and compactions
// continue underneath.
func (s *Store) Query(sqlText string) (*Result, error) {
	if w := s.writer(); w != nil {
		return queryIngest(w, sqlText)
	}
	res, err := s.engine.Query(sqlText)
	if err != nil {
		return nil, err
	}
	return &Result{Columns: res.Columns, Rows: res.Rows, Stats: res.Stats, Coverage: res.Coverage}, nil
}

// NumRows returns the number of imported rows, including appended rows
// on stores with an active append path.
func (s *Store) NumRows() int {
	if w := s.writer(); w != nil {
		return int(w.Rows())
	}
	return s.store.NumRows()
}

// NumChunks returns the number of chunks the partitioning produced.
func (s *Store) NumChunks() int { return s.store.NumChunks() }

// Columns lists the store's columns, including materialized virtual
// fields.
func (s *Store) Columns() []string { return s.store.Columns() }

// MemoryBreakdown itemizes a column set's footprint by layer.
type MemoryBreakdown = colstore.MemoryBreakdown

// Memory reports the exact in-memory footprint of the named columns — the
// quantity the paper's experiment tables report per query.
func (s *Store) Memory(cols ...string) (MemoryBreakdown, error) {
	return s.store.MemoryFor(cols...)
}

// EngineStats returns cumulative execution counters across all queries.
func (s *Store) EngineStats() exec.Stats { return s.engine.Stats() }

// Save persists the store to a directory; codec may be "" (raw), "zippy",
// "lzoish" or "zlib". Compressed stores are written with per-chunk codec
// framing (manifest v3, see docs/format.md), so a lazily opened store
// cold-reads exact byte ranges even under compression.
func (s *Store) Save(dir, codec string) error {
	return colstore.Save(s.store, dir, codec)
}

// IOStats counts a lazily opened store's physical I/O: file opens, read
// calls, bytes read, and time spent decompressing records.
type IOStats = colstore.IOStats

// IOStats reports the store's physical I/O counters; ok is false for
// stores built in memory, which never touch disk.
func (s *Store) IOStats() (IOStats, bool) { return s.store.IOStats() }

// Close releases the file handles and decompression memos a lazily opened
// store caches outside the memory budget, and — on stores with an active
// append path — seals any buffered rows and stops the background
// compactor. The store stays usable; a no-op for in-memory stores.
func (s *Store) Close() error {
	s.stopScrubLoop()
	var err error
	s.ingMu.Lock()
	if s.ing != nil {
		err = s.ing.Close()
		s.ing = nil
	}
	s.closed = true
	s.ingMu.Unlock()
	if cerr := s.store.Close(); err == nil {
		err = cerr
	}
	return err
}

// MemoryStats is a snapshot of the memory manager's accounting: budget,
// resident/pinned bytes, cold loads, evictions, hit rate.
type MemoryStats = memmgr.Stats

// CacheStats holds the result cache's hit/miss/eviction counters.
type CacheStats = cache.Stats

// Open loads a store persisted with Save lazily: only the manifest is read
// up front (the returned byte count), and dictionaries and chunks
// materialize from disk on first touch, governed by
// Options.MemoryBudgetBytes. A restricted query loads only the chunks its
// WHERE clause can match (decided from manifest metadata before any chunk
// is read), so the budget a store needs scales with restriction
// selectivity. A store opened this way answers every query bit-for-bit
// identically to a fully resident one; per-query residency and cold-load
// counters appear in Result.Stats (ActiveChunks, ColdChunkLoads, ...),
// cumulative disk bytes in EngineStats — the quantity the paper's
// Figure 5 charges as disk load.
func Open(dir string, opts Options) (*Store, int64, error) {
	if err := validateMemoryPolicy(opts.MemoryPolicy); err != nil {
		return nil, 0, err
	}
	if err := validateFsyncPolicy(opts.IngestFsyncPolicy); err != nil {
		return nil, 0, err
	}
	mgr := memmgr.New(opts.MemoryBudgetBytes, opts.MemoryPolicy)
	cs, stats, err := colstore.OpenLazy(dir, mgr)
	if err != nil {
		return nil, 0, err
	}
	if opts.DisableVirtualPersist {
		cs.DisableVirtualPersist()
	}
	if opts.DisableChecksumVerify {
		cs.SetVerifyChecksums(false)
	}
	s := &Store{store: cs, engine: exec.New(cs, opts.engineOptions()), opts: opts, dir: dir}
	// A directory that was appended to reopens with its append path
	// attached, so the sealed generations are queryable immediately.
	if ingest.HasGenerations(dir) {
		if _, err := s.ensureWriter(); err != nil {
			return nil, 0, err
		}
	}
	if opts.ScrubInterval > 0 {
		s.startScrubLoop(opts.ScrubInterval)
	}
	return s, stats.BytesRead, nil
}

// validateMemoryPolicy rejects unknown policy names instead of silently
// falling back to the default, so a typo in a config cannot quietly run the
// wrong eviction policy.
func validateMemoryPolicy(p string) error {
	switch p {
	case "", "lru", "2q", "arc":
		return nil
	}
	return fmt.Errorf("powerdrill: unknown memory policy %q (want lru, 2q or arc)", p)
}

// WAL fsync policies for Options.IngestFsyncPolicy.
const (
	// FsyncAlways syncs the WAL before every Append returns.
	FsyncAlways = ingest.FsyncAlways
	// FsyncInterval syncs the WAL on a timer and at rotation (default).
	FsyncInterval = ingest.FsyncInterval
	// FsyncNever leaves WAL syncing to the kernel.
	FsyncNever = ingest.FsyncNever
)

// validateFsyncPolicy rejects unknown WAL fsync policy names up front,
// so a typo cannot quietly run with weaker durability than configured.
func validateFsyncPolicy(p string) error {
	switch p {
	case "", ingest.FsyncAlways, ingest.FsyncInterval, ingest.FsyncNever:
		return nil
	}
	return fmt.Errorf("powerdrill: unknown ingest fsync policy %q (want always, interval or never)", p)
}

// MemStats reports the memory manager's accounting; ok is false for stores
// built in memory (Build), which have no manager. Virtual columns that
// could not join the budget (persistence disabled or impossible) are
// folded in: their bytes count toward both VirtualBytes and ResidentBytes,
// so the gauge covers every byte the engine holds.
func (s *Store) MemStats() (MemoryStats, bool) {
	mgr := s.store.MemManager()
	if mgr == nil {
		return MemoryStats{}, false
	}
	ms := mgr.Stats()
	if unmanaged := s.store.UnevictableVirtualBytes(); unmanaged > 0 {
		ms.VirtualBytes += unmanaged
		ms.ResidentBytes += unmanaged
	}
	return ms, true
}

// VirtualBytes reports the resident footprint of materialized virtual
// columns — budgeted sidecar-backed ones (via the memory manager) plus
// unevictable in-registry ones. Works for both built and lazily opened
// stores; before sidecar persistence these bytes were invisible to every
// stat.
func (s *Store) VirtualBytes() int64 {
	total := s.store.UnevictableVirtualBytes()
	if mgr := s.store.MemManager(); mgr != nil {
		total += mgr.Stats().VirtualBytes
	}
	return total
}

// ResultCacheStats returns the per-chunk result cache's counters; ok is
// false when the cache is disabled.
func (s *Store) ResultCacheStats() (CacheStats, bool) { return s.engine.CacheStats() }

// internalStore exposes the underlying store to sibling files (cluster,
// bench) without widening the public API.
func (s *Store) internalStore() *colstore.Store { return s.store }
