package dict

import (
	"fmt"
	"sync"
	"sync/atomic"

	"powerdrill/internal/bloom"
	"powerdrill/internal/sketch"
	"powerdrill/internal/value"
)

// Sharded implements the Section 5 dictionary split: the sorted value
// space is cut into contiguous sub-dictionaries, only some of which need to
// be resident for a given query. Each sub-dictionary carries a Bloom filter
// so a point lookup for an absent value usually answers without loading
// anything. A Loader materializes a sub-dictionary on first access; loads
// are counted so the production simulation can charge them as disk reads.
//
// The global-id of a value is its shard's base rank plus its local rank, so
// the contiguous split preserves the ids the chunk-dictionaries reference.
//
// Unlike the other dictionaries (which are immutable after construction),
// Sharded mutates on reads: a lookup can page a sub-dictionary in. mu makes
// those loads safe under the engine's parallel chunk workers; the routing
// data, filters, and each resident StringArray stay immutable.
type Sharded struct {
	mu     sync.RWMutex // guards shards[i].resident and EvictAll
	shards []shard
	loader Loader
	n      int
	loads  atomic.Int64
	hot    *StringArray // optional always-resident shard of frequent values
	hotIDs map[string]uint32
}

// Loader materializes the sorted strings of one sub-dictionary.
type Loader func(shardIndex int) ([]string, error)

type shard struct {
	base     int    // rank of the first value
	count    int    // number of values
	first    string // smallest value (resident for routing)
	last     string // largest value (resident for routing)
	filter   *bloom.Filter
	resident *StringArray // nil until loaded
}

// ShardedOptions configures NewSharded.
type ShardedOptions struct {
	// ShardSize is the number of values per sub-dictionary (default 8192).
	ShardSize int
	// BloomFP is the per-shard Bloom filter false-positive rate
	// (default 0.01).
	BloomFP float64
	// Hot lists frequent values kept resident regardless of shard loads
	// (the paper's "one of these representing the most frequent values").
	Hot []string
	// Retain keeps every shard resident after construction (no lazy
	// loading); used when the store runs fully in memory.
	Retain bool
}

// NewSharded builds a sharded dictionary over strictly sorted, distinct
// strings. If opts.Retain is false the shard contents are dropped after
// filters are built and reloaded on demand through the loader; the loader
// defaults to an in-memory copy (tests and fully-resident stores) but can
// be replaced with a file-backed one via SetLoader.
func NewSharded(sorted []string, opts ShardedOptions) *Sharded {
	for i := 1; i < len(sorted); i++ {
		if sorted[i-1] >= sorted[i] {
			panic(fmt.Sprintf("dict: strings not strictly sorted at %d", i))
		}
	}
	if opts.ShardSize <= 0 {
		opts.ShardSize = 8192
	}
	if opts.BloomFP <= 0 || opts.BloomFP >= 1 {
		opts.BloomFP = 0.01
	}
	d := &Sharded{n: len(sorted)}
	for base := 0; base < len(sorted); base += opts.ShardSize {
		end := base + opts.ShardSize
		if end > len(sorted) {
			end = len(sorted)
		}
		vals := sorted[base:end]
		f := bloom.NewWithEstimates(len(vals), opts.BloomFP)
		for _, s := range vals {
			f.AddString(s)
		}
		sh := shard{base: base, count: len(vals), first: vals[0], last: vals[len(vals)-1], filter: f}
		if opts.Retain {
			sh.resident = NewStringArray(append([]string(nil), vals...))
		}
		d.shards = append(d.shards, sh)
	}
	// Default loader: a private copy of the input, standing in for a disk
	// file in tests.
	backing := append([]string(nil), sorted...)
	size := opts.ShardSize
	d.loader = func(i int) ([]string, error) {
		base := i * size
		end := base + size
		if end > len(backing) {
			end = len(backing)
		}
		if base < 0 || base >= len(backing) {
			return nil, fmt.Errorf("dict: shard %d out of range", i)
		}
		return backing[base:end], nil
	}
	if len(opts.Hot) > 0 {
		d.hotIDs = make(map[string]uint32, len(opts.Hot))
		for _, s := range opts.Hot {
			if id, ok := d.lookupSlow(s); ok {
				d.hotIDs[s] = id
			}
		}
	}
	return d
}

// SetLoader replaces the shard loader (e.g. with a file-backed one).
func (d *Sharded) SetLoader(l Loader) { d.loader = l }

// ShardFrame is the persistable description of one sub-dictionary: its
// value count, routing bounds, and Bloom filter. A store manifest records
// one frame per shard (plus the shard's byte range in the dictionary
// record) so a reopened store can route and filter lookups — and then load
// only the shards a query actually probes — without ever decoding the full
// dictionary.
type ShardFrame struct {
	Count       int
	First, Last string
	Filter      *bloom.Filter
}

// Frames exports the shard layout for persistence.
func (d *Sharded) Frames() []ShardFrame {
	out := make([]ShardFrame, len(d.shards))
	for i := range d.shards {
		sh := &d.shards[i]
		out[i] = ShardFrame{Count: sh.count, First: sh.first, Last: sh.last, Filter: sh.filter}
	}
	return out
}

// NewShardedFromFrames reconstructs a sharded dictionary from persisted
// frames without loading any values: routing bounds and Bloom filters are
// resident immediately, shard contents page in through the loader on first
// use. Global-ids resolve identically to the dictionary the frames were
// exported from, because a value's id is its shard's cumulative base plus
// its local rank — both fully determined by the frames.
func NewShardedFromFrames(frames []ShardFrame, loader Loader) (*Sharded, error) {
	if loader == nil {
		return nil, fmt.Errorf("dict: NewShardedFromFrames requires a loader")
	}
	d := &Sharded{loader: loader}
	base := 0
	for i, fr := range frames {
		if fr.Count <= 0 || fr.Filter == nil {
			return nil, fmt.Errorf("dict: invalid shard frame %d (count=%d)", i, fr.Count)
		}
		d.shards = append(d.shards, shard{base: base, count: fr.Count, first: fr.First, last: fr.Last, filter: fr.Filter})
		base += fr.Count
	}
	d.n = base
	return d, nil
}

// Kind implements Dict.
func (d *Sharded) Kind() value.Kind { return value.KindString }

// Len implements Dict.
func (d *Sharded) Len() int { return d.n }

// Loads returns how many shard loads have happened (disk reads in the
// production model).
func (d *Sharded) Loads() int64 { return d.loads.Load() }

// EvictAll drops all resident shards (simulating memory pressure).
func (d *Sharded) EvictAll() {
	d.mu.Lock()
	defer d.mu.Unlock()
	for i := range d.shards {
		d.shards[i].resident = nil
	}
}

// shardFor routes a rank to its shard index.
func (d *Sharded) shardFor(id uint32) int {
	lo, hi := 0, len(d.shards)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if d.shards[mid].base <= int(id) {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

// load makes shard i resident.
func (d *Sharded) load(i int) (*StringArray, error) {
	d.mu.RLock()
	sa := d.shards[i].resident
	d.mu.RUnlock()
	if sa != nil {
		return sa, nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	sh := &d.shards[i]
	if sh.resident != nil { // lost the load race: another worker paged it in
		return sh.resident, nil
	}
	vals, err := d.loader(i)
	if err != nil {
		return nil, err
	}
	if len(vals) != sh.count {
		return nil, fmt.Errorf("dict: shard %d loaded %d values, want %d", i, len(vals), sh.count)
	}
	sh.resident = NewStringArray(append([]string(nil), vals...))
	d.loads.Add(1)
	return sh.resident, nil
}

// StringAt returns the string with the given rank, loading its shard if
// necessary.
func (d *Sharded) StringAt(id uint32) string {
	if int(id) >= d.n {
		panic(fmt.Sprintf("dict: rank %d out of range [0,%d)", id, d.n))
	}
	i := d.shardFor(id)
	sa, err := d.load(i)
	if err != nil {
		panic(fmt.Sprintf("dict: loading shard %d: %v", i, err))
	}
	return sa.StringAt(id - uint32(d.shards[i].base))
}

// Value implements Dict.
func (d *Sharded) Value(id uint32) value.Value { return value.String(d.StringAt(id)) }

// lookupSlow resolves a string to its rank, loading shards as needed but
// honouring Bloom filters.
func (d *Sharded) lookupSlow(s string) (uint32, bool) {
	i, ok := d.routeString(s)
	if !ok {
		return 0, false
	}
	sh := &d.shards[i]
	if !sh.filter.TestString(s) {
		return 0, false // definitely absent, no load needed
	}
	sa, err := d.load(i)
	if err != nil {
		return 0, false
	}
	local, ok := sa.LookupString(s)
	if !ok {
		return 0, false // Bloom false positive
	}
	return uint32(sh.base) + local, true
}

// routeString finds the shard whose [first,last] range covers s.
func (d *Sharded) routeString(s string) (int, bool) {
	lo, hi := 0, len(d.shards)-1
	if len(d.shards) == 0 || s < d.shards[0].first {
		return 0, false
	}
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if d.shards[mid].first <= s {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	if s > d.shards[lo].last {
		return 0, false
	}
	return lo, true
}

// LookupString returns the rank of s, consulting the hot set and Bloom
// filters before loading any shard.
func (d *Sharded) LookupString(s string) (uint32, bool) {
	if id, ok := d.hotIDs[s]; ok {
		return id, true
	}
	return d.lookupSlow(s)
}

// Lookup implements Dict.
func (d *Sharded) Lookup(v value.Value) (uint32, bool) {
	if v.Kind() != value.KindString {
		return 0, false
	}
	return d.LookupString(v.Str())
}

// FindGE implements Dict.
func (d *Sharded) FindGE(v value.Value) uint32 {
	if v.Kind() != value.KindString {
		return findGEByProbe(d, v)
	}
	s := v.Str()
	if len(d.shards) == 0 || s <= d.shards[0].first {
		return 0
	}
	i, ok := d.routeString(s)
	if !ok {
		// s is beyond the last shard's range or before the first.
		if s > d.shards[len(d.shards)-1].last {
			return uint32(d.n)
		}
		return 0
	}
	sa, err := d.load(i)
	if err != nil {
		panic(fmt.Sprintf("dict: loading shard %d: %v", i, err))
	}
	return uint32(d.shards[i].base) + sa.FindGE(v)
}

// Hash implements Dict.
func (d *Sharded) Hash(id uint32) uint64 { return sketch.HashString(d.StringAt(id)) }

// MemoryBytes implements Dict: routing data, filters, and resident shards
// only — the whole point of the split is that evicted shards cost nothing.
func (d *Sharded) MemoryBytes() int64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	var total int64
	for i := range d.shards {
		sh := &d.shards[i]
		total += int64(len(sh.first) + len(sh.last) + 48)
		total += sh.filter.MemoryBytes()
		if sh.resident != nil {
			total += sh.resident.MemoryBytes()
		}
	}
	return total
}

// ResidentShards returns how many shards are currently loaded.
func (d *Sharded) ResidentShards() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	n := 0
	for i := range d.shards {
		if d.shards[i].resident != nil {
			n++
		}
	}
	return n
}

// Shards returns the total number of sub-dictionaries.
func (d *Sharded) Shards() int { return len(d.shards) }

var _ Dict = (*Sharded)(nil)
