package dict

import (
	"fmt"
	"math"
	"sort"

	"powerdrill/internal/sketch"
	"powerdrill/internal/value"
)

// Trie is the paper's optimized global dictionary for strings (Section 3,
// "Optimize Global-Dictionaries"): a prefix tree over 4-bit parts of the
// strings, hand-encoded into one flat byte array. Choosing nibbles instead
// of whole bytes as node labels keeps the fan-out at most 16, so a lookup
// from global-id to string can afford to iterate over all children of each
// node along the path ("at most 16 operations per node") without storing
// parent pointers or per-node string offsets.
//
// Chains of single-child nodes are path-compressed: each node stores a
// packed nibble prefix shared by everything below it, so unshared string
// tails cost about half a byte per character instead of a node per nibble.
//
// Both directions are supported:
//
//   - LookupString walks the nibbles of the probe, accumulating the ranks
//     of terminal nodes and whole subtrees that sort before the probe;
//   - StringAt descends by rank using per-edge subtree leaf counts,
//     reassembling the string from prefixes and edge labels.
//
// Node wire format (little-endian), laid out post-order so child offsets
// are known when a parent is written:
//
//	flags     byte     bit 0: node terminates a string
//	prefixLen uvarint  number of path-compressed nibbles
//	prefix    bytes    ⌈prefixLen/2⌉ bytes, high nibble first
//	edgeMask  uint16   bit b set: child for nibble b exists
//	per set bit, ascending:
//	  leafCount uvarint   number of strings in the child's subtree
//	  offset    uvarint   absolute byte offset of the child node
type Trie struct {
	buf  []byte
	root int
	n    int
}

// trieNode is the transient build-time representation.
type trieNode struct {
	terminal bool
	children [16]*trieNode
	nkids    int
	leaves   int
}

// NewTrie builds a trie dictionary from strictly sorted, distinct strings.
func NewTrie(sorted []string) *Trie {
	for i := 1; i < len(sorted); i++ {
		if sorted[i-1] >= sorted[i] {
			panic(fmt.Sprintf("dict: strings not strictly sorted at %d: %q >= %q", i, sorted[i-1], sorted[i]))
		}
	}
	root := &trieNode{}
	for _, s := range sorted {
		node := root
		node.leaves++
		for i := 0; i < 2*len(s); i++ {
			nb := nibbleAt(s, i)
			if node.children[nb] == nil {
				node.children[nb] = &trieNode{}
				node.nkids++
			}
			node = node.children[nb]
			node.leaves++
		}
		node.terminal = true
	}
	t := &Trie{n: len(sorted)}
	if len(sorted) > 0 {
		t.root = t.write(root, nil)
	}
	return t
}

// nibbleAt returns the i-th 4-bit part of s (high nibble first).
func nibbleAt(s string, i int) byte {
	b := s[i/2]
	if i%2 == 0 {
		return b >> 4
	}
	return b & 0x0f
}

// write serializes node post-order with the given path-compressed prefix
// and returns its absolute offset. Single-child non-terminal chains are
// absorbed into the prefix before writing.
func (t *Trie) write(node *trieNode, prefix []byte) int {
	for !node.terminal && node.nkids == 1 {
		for nb, child := range node.children {
			if child != nil {
				prefix = append(prefix, byte(nb))
				node = child
				break
			}
		}
	}
	var offsets [16]int
	var mask uint16
	for nb, child := range node.children {
		if child != nil {
			offsets[nb] = t.write(child, nil)
			mask |= 1 << nb
		}
	}
	off := len(t.buf)
	var flags byte
	if node.terminal {
		flags |= 1
	}
	t.buf = append(t.buf, flags)
	t.buf = appendUvarint(t.buf, uint64(len(prefix)))
	for i := 0; i < len(prefix); i += 2 {
		b := prefix[i] << 4
		if i+1 < len(prefix) {
			b |= prefix[i+1]
		}
		t.buf = append(t.buf, b)
	}
	t.buf = append(t.buf, byte(mask), byte(mask>>8))
	for nb, child := range node.children {
		if child == nil {
			continue
		}
		t.buf = appendUvarint(t.buf, uint64(child.leaves))
		t.buf = appendUvarint(t.buf, uint64(offsets[nb]))
	}
	return off
}

func appendUvarint(dst []byte, v uint64) []byte {
	for v >= 0x80 {
		dst = append(dst, byte(v)|0x80)
		v >>= 7
	}
	return append(dst, byte(v))
}

// readUvarint decodes at offset and returns the value and the new offset.
func (t *Trie) readUvarint(off int) (uint64, int) {
	var v uint64
	var shift uint
	for {
		b := t.buf[off]
		off++
		if b < 0x80 {
			return v | uint64(b)<<shift, off
		}
		v |= uint64(b&0x7f) << shift
		shift += 7
	}
}

// node decodes the header at off.
func (t *Trie) node(off int) (terminal bool, prefixLen, prefixOff int, mask uint16, edges int) {
	terminal = t.buf[off]&1 == 1
	pl, o := t.readUvarint(off + 1)
	prefixLen = int(pl)
	prefixOff = o
	o += (prefixLen + 1) / 2
	mask = uint16(t.buf[o]) | uint16(t.buf[o+1])<<8
	edges = o + 2
	return
}

// prefixNibble returns the i-th nibble of a node's packed prefix.
func (t *Trie) prefixNibble(prefixOff, i int) byte {
	b := t.buf[prefixOff+i/2]
	if i%2 == 0 {
		return b >> 4
	}
	return b & 0x0f
}

// edge scans the edge records of a node for nibble nb. It returns the
// child's leaf count and offset if present, and the total leaf count of
// children with smaller nibbles (needed for rank accumulation).
func (t *Trie) edge(edges int, mask uint16, nb byte) (leaves, childOff int, before int, ok bool) {
	off := edges
	for b := 0; b < 16; b++ {
		if mask&(1<<b) == 0 {
			continue
		}
		lv, next := t.readUvarint(off)
		co, next := t.readUvarint(next)
		if b == int(nb) {
			return int(lv), int(co), before, true
		}
		if b < int(nb) {
			before += int(lv)
		}
		off = next
	}
	return 0, 0, before, false
}

// Kind implements Dict.
func (t *Trie) Kind() value.Kind { return value.KindString }

// Len implements Dict.
func (t *Trie) Len() int { return t.n }

// walk descends the trie along s. It returns the number of stored strings
// strictly smaller than s, whether s itself is present, and — for FindGE —
// handles all divergence cases via the subtree leaf counts.
func (t *Trie) walk(s string) (rank uint32, found bool) {
	off := t.root
	subLeaves := t.n
	i := 0 // next nibble index in s
	total := 2 * len(s)
	var r int
	for {
		terminal, prefixLen, prefixOff, mask, edges := t.node(off)
		// Consume the path-compressed prefix.
		for p := 0; p < prefixLen; p++ {
			if i == total {
				return uint32(r), false // s is a proper prefix: s < subtree
			}
			pn, fn := nibbleAt(s, i), t.prefixNibble(prefixOff, p)
			if pn < fn {
				return uint32(r), false // subtree entirely > s
			}
			if pn > fn {
				return uint32(r + subLeaves), false // subtree entirely < s
			}
			i++
		}
		if i == total {
			if terminal {
				return uint32(r), true
			}
			return uint32(r), false
		}
		if terminal {
			r++ // the string ending here sorts before s
		}
		leaves, childOff, before, ok := t.edge(edges, mask, nibbleAt(s, i))
		r += before
		if !ok {
			return uint32(r), false
		}
		i++
		off = childOff
		subLeaves = leaves
	}
}

// LookupString returns the rank of s and whether it is present.
func (t *Trie) LookupString(s string) (uint32, bool) {
	if t.n == 0 {
		return 0, false
	}
	rank, found := t.walk(s)
	if !found {
		return 0, false
	}
	return rank, true
}

// StringAt returns the string with the given rank. It panics if id is out
// of range, as slice indexing would.
func (t *Trie) StringAt(id uint32) string {
	if int(id) >= t.n {
		panic(fmt.Sprintf("dict: trie rank %d out of range [0,%d)", id, t.n))
	}
	var nibbles []byte
	off := t.root
	remaining := int(id)
	for {
		terminal, prefixLen, prefixOff, mask, edges := t.node(off)
		for p := 0; p < prefixLen; p++ {
			nibbles = append(nibbles, t.prefixNibble(prefixOff, p))
		}
		if terminal {
			if remaining == 0 {
				break
			}
			remaining--
		}
		// Descend into the child whose subtree covers the remaining rank;
		// iterating all (≤16) edges per node is the cost the nibble layout
		// deliberately accepts.
		found := false
		eo := edges
		for b := 0; b < 16 && !found; b++ {
			if mask&(1<<b) == 0 {
				continue
			}
			lv, next := t.readUvarint(eo)
			co, next := t.readUvarint(next)
			if remaining < int(lv) {
				nibbles = append(nibbles, byte(b))
				off = int(co)
				found = true
				break
			}
			remaining -= int(lv)
			eo = next
		}
		if !found {
			panic("dict: corrupt trie: rank not covered by edges")
		}
	}
	out := make([]byte, len(nibbles)/2)
	for i := range out {
		out[i] = nibbles[2*i]<<4 | nibbles[2*i+1]
	}
	return string(out)
}

// Value implements Dict.
func (t *Trie) Value(id uint32) value.Value { return value.String(t.StringAt(id)) }

// Lookup implements Dict.
func (t *Trie) Lookup(v value.Value) (uint32, bool) {
	if v.Kind() != value.KindString {
		return 0, false
	}
	return t.LookupString(v.Str())
}

// FindGE implements Dict.
func (t *Trie) FindGE(v value.Value) uint32 {
	if v.Kind() != value.KindString {
		return findGEByProbe(t, v)
	}
	if t.n == 0 {
		return 0
	}
	rank, _ := t.walk(v.Str())
	return rank
}

// Hash implements Dict.
func (t *Trie) Hash(id uint32) uint64 { return sketch.HashString(t.StringAt(id)) }

// MemoryBytes implements Dict: the flat byte array plus the struct header.
func (t *Trie) MemoryBytes() int64 { return int64(len(t.buf)) + 24 }

// Buf exposes the encoded byte array (for persistence). Callers must not
// modify it.
func (t *Trie) Buf() []byte { return t.buf }

// RebuildTrie reconstitutes a trie from its persisted parts.
func RebuildTrie(buf []byte, root, n int) (*Trie, error) {
	if n < 0 || root < 0 || (n > 0 && root+3 > len(buf)) {
		return nil, fmt.Errorf("dict: corrupt trie header (root=%d n=%d len=%d)", root, n, len(buf))
	}
	return &Trie{buf: buf, root: root, n: n}, nil
}

// Root returns the root node offset (for persistence).
func (t *Trie) Root() int { return t.root }

var _ Dict = (*Trie)(nil)

// ByteTrie is an ablation variant using whole bytes (fan-out 256) as node
// labels instead of nibbles, without path compression. It answers the
// Section 3 design question "why 4-bit parts?": byte nodes make paths half
// as long but edge records wider; the dictionary benchmarks compare the two
// footprints. Edges are stored as (byte label, leafCount, offset) triples.
type ByteTrie struct {
	buf  []byte
	root int
	n    int
}

type byteTrieNode struct {
	terminal bool
	children map[byte]*byteTrieNode
	leaves   int
}

// NewByteTrie builds the byte-labelled variant from sorted distinct strings.
func NewByteTrie(sorted []string) *ByteTrie {
	for i := 1; i < len(sorted); i++ {
		if sorted[i-1] >= sorted[i] {
			panic("dict: strings not strictly sorted")
		}
	}
	root := &byteTrieNode{children: map[byte]*byteTrieNode{}}
	for _, s := range sorted {
		node := root
		node.leaves++
		for i := 0; i < len(s); i++ {
			c := node.children[s[i]]
			if c == nil {
				c = &byteTrieNode{children: map[byte]*byteTrieNode{}}
				node.children[s[i]] = c
			}
			node = c
			node.leaves++
		}
		node.terminal = true
	}
	t := &ByteTrie{n: len(sorted)}
	if len(sorted) > 0 {
		t.root = t.write(root)
	}
	return t
}

func (t *ByteTrie) write(node *byteTrieNode) int {
	labels := make([]int, 0, len(node.children))
	for b := range node.children {
		labels = append(labels, int(b))
	}
	sort.Ints(labels)
	offsets := make([]int, len(labels))
	for i, b := range labels {
		offsets[i] = t.write(node.children[byte(b)])
	}
	off := len(t.buf)
	var flags byte
	if node.terminal {
		flags |= 1
	}
	t.buf = append(t.buf, flags)
	t.buf = appendUvarint(t.buf, uint64(len(labels)))
	for i, b := range labels {
		t.buf = append(t.buf, byte(b))
		t.buf = appendUvarint(t.buf, uint64(node.children[byte(b)].leaves))
		t.buf = appendUvarint(t.buf, uint64(offsets[i]))
	}
	return off
}

// Len returns the number of strings.
func (t *ByteTrie) Len() int { return t.n }

// MemoryBytes returns the encoded size.
func (t *ByteTrie) MemoryBytes() int64 { return int64(len(t.buf)) + 24 }

// LookupString returns the rank of s and whether it is present.
func (t *ByteTrie) LookupString(s string) (uint32, bool) {
	if t.n == 0 {
		return 0, false
	}
	off := t.root
	rank := 0
	for i := 0; i < len(s); i++ {
		if t.buf[off]&1 == 1 {
			rank++
		}
		nEdges, eo := t.readUvarint(off + 1)
		found := false
		for e := 0; e < int(nEdges); e++ {
			label := t.buf[eo]
			lv, next := t.readUvarint(eo + 1)
			co, next := t.readUvarint(next)
			if label == s[i] {
				off = int(co)
				found = true
				break
			}
			if label < s[i] {
				rank += int(lv)
			}
			eo = next
		}
		if !found {
			return 0, false
		}
	}
	if t.buf[off]&1 != 1 {
		return 0, false
	}
	return uint32(rank), true
}

func (t *ByteTrie) readUvarint(off int) (uint64, int) {
	var v uint64
	var shift uint
	for {
		b := t.buf[off]
		off++
		if b < 0x80 {
			return v | uint64(b)<<shift, off
		}
		v |= uint64(b&0x7f) << shift
		shift += 7
	}
}

// floatBits converts a float to its IEEE-754 bit pattern.
func floatBits(f float64) uint64 { return math.Float64bits(f) }
