package dict

import (
	"fmt"
	"testing"

	"powerdrill/internal/value"
)

func TestShardedLazyLoading(t *testing.T) {
	vals := sortedStrings(1000)
	d := NewSharded(vals, ShardedOptions{ShardSize: 100})
	if d.Shards() != 10 {
		t.Fatalf("Shards = %d, want 10", d.Shards())
	}
	if d.ResidentShards() != 0 {
		t.Fatalf("fresh dict has %d resident shards", d.ResidentShards())
	}
	// A point lookup touches exactly one shard.
	if _, ok := d.LookupString(vals[250]); !ok {
		t.Fatal("lookup of present value failed")
	}
	if d.ResidentShards() != 1 || d.Loads() != 1 {
		t.Errorf("after one lookup: %d resident, %d loads; want 1, 1", d.ResidentShards(), d.Loads())
	}
	// A lookup for an absent value in a covered range is usually answered
	// by the Bloom filter without loading. Use a value sorting inside
	// shard 5's range.
	probe := vals[550] + "!"
	before := d.Loads()
	d.LookupString(probe)
	// The Bloom filter may rarely false-positive; allow ≤1 extra load.
	if d.Loads() > before+1 {
		t.Errorf("absent lookup caused %d loads", d.Loads()-before)
	}
}

func TestShardedEviction(t *testing.T) {
	vals := sortedStrings(500)
	d := NewSharded(vals, ShardedOptions{ShardSize: 50})
	for i := 0; i < len(vals); i += 25 {
		d.StringAt(uint32(i))
	}
	if d.ResidentShards() != 10 {
		t.Fatalf("ResidentShards = %d, want 10", d.ResidentShards())
	}
	high := d.MemoryBytes()
	d.EvictAll()
	if d.ResidentShards() != 0 {
		t.Error("EvictAll left resident shards")
	}
	if low := d.MemoryBytes(); low >= high {
		t.Errorf("eviction did not shrink footprint: %d -> %d", high, low)
	}
	// Data is still reachable after eviction.
	if got := d.StringAt(123); got != vals[123] {
		t.Errorf("post-eviction StringAt = %q, want %q", got, vals[123])
	}
}

func TestShardedRetain(t *testing.T) {
	vals := sortedStrings(200)
	d := NewSharded(vals, ShardedOptions{ShardSize: 64, Retain: true})
	if d.ResidentShards() != d.Shards() {
		t.Error("Retain did not keep shards resident")
	}
	for i, s := range vals {
		if d.StringAt(uint32(i)) != s {
			t.Fatalf("StringAt(%d) mismatch", i)
		}
	}
	if d.Loads() != 0 {
		t.Errorf("retained dict performed %d loads", d.Loads())
	}
}

func TestShardedHotValues(t *testing.T) {
	vals := sortedStrings(1000)
	hot := []string{vals[17], vals[503], vals[999]}
	d := NewSharded(vals, ShardedOptions{ShardSize: 100, Hot: hot})
	d.EvictAll()
	loadsBefore := d.Loads()
	for _, s := range hot {
		if _, ok := d.LookupString(s); !ok {
			t.Errorf("hot value %q not found", s)
		}
	}
	if d.Loads() != loadsBefore {
		t.Errorf("hot lookups caused %d loads", d.Loads()-loadsBefore)
	}
}

func TestShardedCustomLoader(t *testing.T) {
	vals := sortedStrings(300)
	d := NewSharded(vals, ShardedOptions{ShardSize: 100})
	calls := 0
	d.SetLoader(func(i int) ([]string, error) {
		calls++
		base := i * 100
		end := base + 100
		if end > len(vals) {
			end = len(vals)
		}
		return vals[base:end], nil
	})
	d.StringAt(150)
	if calls != 1 {
		t.Errorf("custom loader called %d times, want 1", calls)
	}
	// Loader returning wrong shard size must surface as panic (corrupt store).
	d.EvictAll()
	d.SetLoader(func(i int) ([]string, error) { return vals[:3], nil })
	func() {
		defer func() {
			if recover() == nil {
				t.Error("mismatched loader did not panic")
			}
		}()
		d.StringAt(150)
	}()
	// Loader returning an error must also panic with context.
	d.EvictAll()
	d.SetLoader(func(i int) ([]string, error) { return nil, fmt.Errorf("disk gone") })
	func() {
		defer func() {
			if recover() == nil {
				t.Error("failing loader did not panic")
			}
		}()
		d.StringAt(150)
	}()
}

func TestShardedFindGEBoundaries(t *testing.T) {
	vals := sortedStrings(400)
	arr := NewStringArray(vals)
	d := NewSharded(vals, ShardedOptions{ShardSize: 64})
	// Probes at and across shard boundaries.
	probes := []string{vals[0], vals[63], vals[64], vals[65], vals[len(vals)-1], "", "\xff"}
	for _, p := range probes {
		if got, want := d.FindGE(value.String(p)), arr.FindGE(value.String(p)); got != want {
			t.Errorf("FindGE(%q) = %d, want %d", p, got, want)
		}
	}
}

func TestShardedWrongKind(t *testing.T) {
	d := NewSharded([]string{"a", "b"}, ShardedOptions{})
	if _, ok := d.Lookup(value.Int64(1)); ok {
		t.Error("Lookup of wrong kind succeeded")
	}
}
