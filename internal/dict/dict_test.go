package dict

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"powerdrill/internal/value"
)

// sortedStrings produces n sorted distinct strings shaped like the paper's
// table_name field: long shared prefixes with date suffixes.
func sortedStrings(n int) []string {
	set := make(map[string]bool, n)
	r := rand.New(rand.NewSource(int64(n)))
	prefixes := []string{
		"logs.powerdrill.queries_",
		"logs.websearch.sessions_",
		"ads.revenue.daily_",
		"user.tables.tmp_",
	}
	for len(set) < n {
		p := prefixes[r.Intn(len(prefixes))]
		set[fmt.Sprintf("%s2011%02d%02d_%04d", p, r.Intn(12)+1, r.Intn(28)+1, r.Intn(10000))] = true
	}
	out := make([]string, 0, n)
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// stringDicts builds each string dictionary implementation over vals.
func stringDicts(vals []string) map[string]Dict {
	return map[string]Dict{
		"array":   NewStringArray(vals),
		"trie":    NewTrie(vals),
		"sharded": NewSharded(vals, ShardedOptions{ShardSize: 64}),
	}
}

func TestStringDictsAgree(t *testing.T) {
	vals := sortedStrings(500)
	for name, d := range stringDicts(vals) {
		t.Run(name, func(t *testing.T) {
			if d.Len() != len(vals) {
				t.Fatalf("Len = %d, want %d", d.Len(), len(vals))
			}
			for i, want := range vals {
				if got := d.Value(uint32(i)).Str(); got != want {
					t.Fatalf("Value(%d) = %q, want %q", i, got, want)
				}
				id, ok := d.Lookup(value.String(want))
				if !ok || id != uint32(i) {
					t.Fatalf("Lookup(%q) = %d, %v; want %d", want, id, ok, i)
				}
			}
			for _, probe := range []string{"", "zzz.not.there", "logs.powerdrill.queries_", vals[0] + "x"} {
				if _, ok := d.Lookup(value.String(probe)); ok {
					t.Errorf("Lookup(%q) spuriously found", probe)
				}
			}
			if _, ok := d.Lookup(value.Int64(5)); ok {
				t.Error("Lookup of wrong kind succeeded")
			}
		})
	}
}

func TestFindGEAgreesAcrossImpls(t *testing.T) {
	vals := sortedStrings(300)
	ref := NewStringArray(vals)
	for name, d := range stringDicts(vals) {
		t.Run(name, func(t *testing.T) {
			probes := append([]string{}, vals[10], vals[0], vals[len(vals)-1], "", "\xff\xff", "m")
			for _, v := range vals[:50] {
				probes = append(probes, v+"0", v[:len(v)-1])
			}
			for _, p := range probes {
				want := ref.FindGE(value.String(p))
				if got := d.FindGE(value.String(p)); got != want {
					t.Errorf("FindGE(%q) = %d, want %d", p, got, want)
				}
			}
		})
	}
}

func TestEmptyAndSingletonDicts(t *testing.T) {
	for name, d := range stringDicts(nil) {
		if d.Len() != 0 {
			t.Errorf("%s: empty dict Len = %d", name, d.Len())
		}
		if _, ok := d.Lookup(value.String("x")); ok {
			t.Errorf("%s: empty dict Lookup hit", name)
		}
	}
	single := []string{"only"}
	for name, d := range stringDicts(single) {
		if d.Len() != 1 || d.Value(0).Str() != "only" {
			t.Errorf("%s: singleton dict broken", name)
		}
		if id, ok := d.Lookup(value.String("only")); !ok || id != 0 {
			t.Errorf("%s: singleton Lookup = %d, %v", name, id, ok)
		}
	}
}

func TestEmptyStringValue(t *testing.T) {
	vals := []string{"", "a", "ab"}
	for name, d := range stringDicts(vals) {
		id, ok := d.Lookup(value.String(""))
		if !ok || id != 0 {
			t.Errorf("%s: Lookup(\"\") = %d, %v; want 0, true", name, id, ok)
		}
		if got := d.Value(0).Str(); got != "" {
			t.Errorf("%s: Value(0) = %q, want empty", name, got)
		}
	}
}

func TestConstructorsPanicOnUnsorted(t *testing.T) {
	bad := [][]string{{"b", "a"}, {"a", "a"}}
	for _, vals := range bad {
		for _, build := range []func(){
			func() { NewStringArray(vals) },
			func() { NewTrie(vals) },
			func() { NewSharded(vals, ShardedOptions{}) },
			func() { NewByteTrie(vals) },
		} {
			func() {
				defer func() {
					if recover() == nil {
						t.Errorf("constructor accepted unsorted input %v", vals)
					}
				}()
				build()
			}()
		}
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("NewInt64s accepted unsorted input")
			}
		}()
		NewInt64s([]int64{2, 1})
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("NewFloat64s accepted duplicate input")
			}
		}()
		NewFloat64s([]float64{1, 1})
	}()
}

func TestInt64Dict(t *testing.T) {
	vals := []int64{-50, -7, 0, 3, 1000, 1 << 40}
	d := NewInt64s(vals)
	if d.Kind() != value.KindInt64 || d.Len() != len(vals) {
		t.Fatal("basic properties wrong")
	}
	for i, v := range vals {
		if d.Int64At(uint32(i)) != v {
			t.Errorf("Int64At(%d) = %d", i, d.Int64At(uint32(i)))
		}
		id, ok := d.LookupInt64(v)
		if !ok || id != uint32(i) {
			t.Errorf("LookupInt64(%d) = %d, %v", v, id, ok)
		}
	}
	if _, ok := d.LookupInt64(1); ok {
		t.Error("LookupInt64(absent) hit")
	}
	if got := d.FindGE(value.Int64(1)); got != 3 {
		t.Errorf("FindGE(1) = %d, want 3", got)
	}
	if got := d.FindGE(value.Int64(1 << 50)); got != uint32(len(vals)) {
		t.Errorf("FindGE(big) = %d, want %d", got, len(vals))
	}
	if d.MemoryBytes() != int64(len(vals)*8) {
		t.Errorf("MemoryBytes = %d", d.MemoryBytes())
	}
}

func TestFloat64Dict(t *testing.T) {
	vals := []float64{-2.5, 0, 0.25, 1e9}
	d := NewFloat64s(vals)
	if d.Kind() != value.KindFloat64 || d.Len() != len(vals) {
		t.Fatal("basic properties wrong")
	}
	for i, v := range vals {
		id, ok := d.LookupFloat64(v)
		if !ok || id != uint32(i) || d.Float64At(uint32(i)) != v {
			t.Errorf("float dict broken at %d", i)
		}
	}
	if got := d.FindGE(value.Float64(0.1)); got != 2 {
		t.Errorf("FindGE(0.1) = %d, want 2", got)
	}
}

func TestHashDistinctness(t *testing.T) {
	vals := sortedStrings(200)
	for name, d := range stringDicts(vals) {
		seen := map[uint64]bool{}
		for i := 0; i < d.Len(); i++ {
			h := d.Hash(uint32(i))
			if seen[h] {
				t.Errorf("%s: hash collision at id %d", name, i)
			}
			seen[h] = true
		}
	}
	di := NewInt64s([]int64{1, 2, 3})
	df := NewFloat64s([]float64{1.5, 2.5})
	if di.Hash(0) == di.Hash(1) || df.Hash(0) == df.Hash(1) {
		t.Error("numeric hash collision")
	}
}

func TestQuickArrayVsTrie(t *testing.T) {
	f := func(raw []string) bool {
		set := map[string]bool{}
		for _, s := range raw {
			// Nibble tries handle arbitrary bytes; exercise that.
			set[s] = true
		}
		vals := make([]string, 0, len(set))
		for s := range set {
			vals = append(vals, s)
		}
		sort.Strings(vals)
		arr, trie := NewStringArray(vals), NewTrie(vals)
		for i, s := range vals {
			ai, aok := arr.LookupString(s)
			ti, tok := trie.LookupString(s)
			if !aok || !tok || ai != ti || ai != uint32(i) {
				return false
			}
			if trie.StringAt(uint32(i)) != s {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestMemoryAccounting(t *testing.T) {
	vals := sortedStrings(1000)
	arr := NewStringArray(vals)
	var want int64 = int64(len(vals)) * 16
	for _, s := range vals {
		want += int64(len(s))
	}
	if arr.MemoryBytes() != want {
		t.Errorf("array MemoryBytes = %d, want %d", arr.MemoryBytes(), want)
	}
	trie := NewTrie(vals)
	if trie.MemoryBytes() <= 0 {
		t.Error("trie MemoryBytes not positive")
	}
}

// TestTrieCompressionOnPrefixData is the Section 3 claim: on fields with
// long common prefixes the trie is dramatically smaller than the verbatim
// sorted array (67.03 MB → 3.37 MB in the paper).
func TestTrieCompressionOnPrefixData(t *testing.T) {
	vals := sortedStrings(20_000)
	arr := NewStringArray(vals)
	trie := NewTrie(vals)
	ratio := float64(arr.MemoryBytes()) / float64(trie.MemoryBytes())
	t.Logf("array %d bytes, trie %d bytes, ratio %.1fx", arr.MemoryBytes(), trie.MemoryBytes(), ratio)
	if ratio < 1.5 {
		t.Errorf("trie ratio %.2f, want ≥1.5 on prefix-heavy data", ratio)
	}
}

func TestByteTrieAblation(t *testing.T) {
	vals := sortedStrings(5000)
	nt := NewTrie(vals)
	bt := NewByteTrie(vals)
	if bt.Len() != len(vals) {
		t.Fatalf("byte trie Len = %d", bt.Len())
	}
	for i, s := range vals {
		id, ok := bt.LookupString(s)
		if !ok || id != uint32(i) {
			t.Fatalf("byte trie LookupString(%q) = %d, %v", s, id, ok)
		}
	}
	if _, ok := bt.LookupString("definitely.not.there"); ok {
		t.Error("byte trie spurious hit")
	}
	t.Logf("nibble trie %d bytes, byte trie %d bytes", nt.MemoryBytes(), bt.MemoryBytes())
}

func TestTrieRebuild(t *testing.T) {
	vals := sortedStrings(300)
	trie := NewTrie(vals)
	back, err := RebuildTrie(trie.Buf(), trie.Root(), trie.Len())
	if err != nil {
		t.Fatalf("RebuildTrie: %v", err)
	}
	for i, s := range vals {
		if back.StringAt(uint32(i)) != s {
			t.Fatalf("rebuilt trie StringAt(%d) = %q", i, back.StringAt(uint32(i)))
		}
	}
	if _, err := RebuildTrie(nil, 5, 10); err == nil {
		t.Error("RebuildTrie accepted corrupt header")
	}
}

func TestStringAtPanicsOutOfRange(t *testing.T) {
	trie := NewTrie([]string{"a"})
	defer func() {
		if recover() == nil {
			t.Error("StringAt(9) did not panic")
		}
	}()
	trie.StringAt(9)
}
