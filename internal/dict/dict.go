// Package dict implements PowerDrill's global dictionaries (paper,
// Section 2.3): the sorted set of distinct values of one column, mapping a
// value to its integer rank (the global-id) and back. Three storage
// strategies are provided:
//
//   - sorted arrays (the "canonical" implementation of Section 2.3) for
//     strings, int64s and float64s;
//   - a hand-crafted 4-bit trie stored in a flat byte array (Section 3,
//     "Optimize Global-Dictionaries") that exploits long shared prefixes;
//   - sharded dictionaries with Bloom filters (Section 5) that keep only a
//     subset of sub-dictionaries resident and load the rest on demand.
//
// All implementations answer both directions — rank → value and
// value → rank — because query evaluation needs rank lookups for WHERE
// clauses and value lookups only for the final (top-k) result rows.
package dict

import (
	"fmt"
	"sort"

	"powerdrill/internal/sketch"
	"powerdrill/internal/value"
)

// Dict is a sorted global dictionary of distinct values of a single kind.
// Ranks (global-ids) run from 0 to Len()-1 in value order.
type Dict interface {
	// Kind reports the value kind the dictionary stores.
	Kind() value.Kind
	// Len returns the number of distinct values.
	Len() int
	// Value returns the value with the given rank.
	Value(id uint32) value.Value
	// Lookup returns the rank of v and whether v is present.
	Lookup(v value.Value) (uint32, bool)
	// FindGE returns the smallest rank whose value is >= v, or Len() if
	// every value is smaller. It supports range restrictions.
	FindGE(v value.Value) uint32
	// Hash returns a 64-bit hash of the value with the given rank, for
	// count-distinct sketches.
	Hash(id uint32) uint64
	// MemoryBytes returns the in-memory footprint of the dictionary.
	MemoryBytes() int64
}

// findGEByProbe implements FindGE generically via binary search on Value;
// implementations with cheaper direct access override it.
func findGEByProbe(d Dict, v value.Value) uint32 {
	return uint32(sort.Search(d.Len(), func(i int) bool {
		return d.Value(uint32(i)).Compare(v) >= 0
	}))
}

// StringArray is the canonical sorted-array dictionary for strings:
// lookup by rank is an array access, rank of a value a binary search.
type StringArray struct {
	vals []string
}

// NewStringArray builds a dictionary from strictly sorted, distinct
// strings. It panics if the input is not sorted or has duplicates, which
// would indicate an import-pipeline bug.
func NewStringArray(sorted []string) *StringArray {
	for i := 1; i < len(sorted); i++ {
		if sorted[i-1] >= sorted[i] {
			panic(fmt.Sprintf("dict: strings not strictly sorted at %d: %q >= %q", i, sorted[i-1], sorted[i]))
		}
	}
	return &StringArray{vals: sorted}
}

// Kind implements Dict.
func (d *StringArray) Kind() value.Kind { return value.KindString }

// Len implements Dict.
func (d *StringArray) Len() int { return len(d.vals) }

// StringAt returns the string with the given rank without boxing.
func (d *StringArray) StringAt(id uint32) string { return d.vals[id] }

// Value implements Dict.
func (d *StringArray) Value(id uint32) value.Value { return value.String(d.vals[id]) }

// LookupString returns the rank of s without boxing.
func (d *StringArray) LookupString(s string) (uint32, bool) {
	i := sort.SearchStrings(d.vals, s)
	if i < len(d.vals) && d.vals[i] == s {
		return uint32(i), true
	}
	return 0, false
}

// Lookup implements Dict.
func (d *StringArray) Lookup(v value.Value) (uint32, bool) {
	if v.Kind() != value.KindString {
		return 0, false
	}
	return d.LookupString(v.Str())
}

// FindGE implements Dict.
func (d *StringArray) FindGE(v value.Value) uint32 {
	if v.Kind() != value.KindString {
		return findGEByProbe(d, v)
	}
	return uint32(sort.SearchStrings(d.vals, v.Str()))
}

// Hash implements Dict.
func (d *StringArray) Hash(id uint32) uint64 { return sketch.HashString(d.vals[id]) }

// MemoryBytes implements Dict. Each Go string costs a 16-byte header plus
// its bytes; this mirrors the paper's observation that verbatim dictionaries
// for high-cardinality fields dominate the footprint.
func (d *StringArray) MemoryBytes() int64 {
	total := int64(len(d.vals)) * 16
	for _, s := range d.vals {
		total += int64(len(s))
	}
	return total
}

// Strings exposes the backing slice for building derived structures
// (tries, shards). Callers must not modify it.
func (d *StringArray) Strings() []string { return d.vals }

// Int64s is the sorted-array dictionary for int64 values (including
// timestamps stored as epoch microseconds).
type Int64s struct {
	vals []int64
}

// NewInt64s builds a dictionary from strictly sorted, distinct int64s.
func NewInt64s(sorted []int64) *Int64s {
	for i := 1; i < len(sorted); i++ {
		if sorted[i-1] >= sorted[i] {
			panic(fmt.Sprintf("dict: int64s not strictly sorted at %d", i))
		}
	}
	return &Int64s{vals: sorted}
}

// Kind implements Dict.
func (d *Int64s) Kind() value.Kind { return value.KindInt64 }

// Len implements Dict.
func (d *Int64s) Len() int { return len(d.vals) }

// Int64At returns the value with the given rank without boxing.
func (d *Int64s) Int64At(id uint32) int64 { return d.vals[id] }

// Value implements Dict.
func (d *Int64s) Value(id uint32) value.Value { return value.Int64(d.vals[id]) }

// LookupInt64 returns the rank of v without boxing.
func (d *Int64s) LookupInt64(v int64) (uint32, bool) {
	i := sort.Search(len(d.vals), func(i int) bool { return d.vals[i] >= v })
	if i < len(d.vals) && d.vals[i] == v {
		return uint32(i), true
	}
	return 0, false
}

// Lookup implements Dict.
func (d *Int64s) Lookup(v value.Value) (uint32, bool) {
	if v.Kind() != value.KindInt64 {
		return 0, false
	}
	return d.LookupInt64(v.Int())
}

// FindGE implements Dict.
func (d *Int64s) FindGE(v value.Value) uint32 {
	if v.Kind() != value.KindInt64 {
		return findGEByProbe(d, v)
	}
	x := v.Int()
	return uint32(sort.Search(len(d.vals), func(i int) bool { return d.vals[i] >= x }))
}

// Hash implements Dict.
func (d *Int64s) Hash(id uint32) uint64 { return sketch.HashUint64(uint64(d.vals[id])) }

// MemoryBytes implements Dict.
func (d *Int64s) MemoryBytes() int64 { return int64(len(d.vals)) * 8 }

// Float64s is the sorted-array dictionary for float64 values.
type Float64s struct {
	vals []float64
}

// NewFloat64s builds a dictionary from strictly sorted, distinct float64s.
func NewFloat64s(sorted []float64) *Float64s {
	for i := 1; i < len(sorted); i++ {
		if sorted[i-1] >= sorted[i] {
			panic(fmt.Sprintf("dict: float64s not strictly sorted at %d", i))
		}
	}
	return &Float64s{vals: sorted}
}

// Kind implements Dict.
func (d *Float64s) Kind() value.Kind { return value.KindFloat64 }

// Len implements Dict.
func (d *Float64s) Len() int { return len(d.vals) }

// Float64At returns the value with the given rank without boxing.
func (d *Float64s) Float64At(id uint32) float64 { return d.vals[id] }

// Value implements Dict.
func (d *Float64s) Value(id uint32) value.Value { return value.Float64(d.vals[id]) }

// LookupFloat64 returns the rank of v without boxing.
func (d *Float64s) LookupFloat64(v float64) (uint32, bool) {
	i := sort.Search(len(d.vals), func(i int) bool { return d.vals[i] >= v })
	if i < len(d.vals) && d.vals[i] == v {
		return uint32(i), true
	}
	return 0, false
}

// Lookup implements Dict.
func (d *Float64s) Lookup(v value.Value) (uint32, bool) {
	if v.Kind() != value.KindFloat64 {
		return 0, false
	}
	return d.LookupFloat64(v.Float())
}

// FindGE implements Dict.
func (d *Float64s) FindGE(v value.Value) uint32 {
	if v.Kind() != value.KindFloat64 {
		return findGEByProbe(d, v)
	}
	x := v.Float()
	return uint32(sort.Search(len(d.vals), func(i int) bool { return d.vals[i] >= x }))
}

// Hash implements Dict.
func (d *Float64s) Hash(id uint32) uint64 {
	// Hash the bit pattern; distinct floats have distinct patterns (the
	// dictionary never stores NaN, and -0/+0 cannot both be present since
	// they compare equal at build time).
	return sketch.HashUint64(uint64(floatBits(d.vals[id])))
}

// MemoryBytes implements Dict.
func (d *Float64s) MemoryBytes() int64 { return int64(len(d.vals)) * 8 }

var (
	_ Dict = (*StringArray)(nil)
	_ Dict = (*Int64s)(nil)
	_ Dict = (*Float64s)(nil)
)
