package dict

// Append is the mutable dictionary behind the ingest write chunk: rows
// arriving through the append path are dictionary-encoded immediately —
// each distinct value stored once, each row reduced to a uint32 id — so
// the write buffer's footprint tracks distinct values, not rows, exactly
// like a sealed column's.
//
// Unlike the Dict implementations, ids are assigned in *arrival* order,
// because keeping the sorted order of a global dictionary under appends
// would renumber every existing id on insert. The sorted, rank-ordered
// global dictionary the query engine needs is rebuilt when the chunk is
// frozen or sealed (colstore.FromTable re-encodes), so Append never has to
// answer FindGE and deliberately does not implement Dict.
//
// Concurrency: none built in. The write chunk guards each Append with its
// own mutex and snapshots value prefixes under that lock.

import (
	"fmt"

	"powerdrill/internal/value"
)

// Append maps values of one kind to dense arrival-order ids and back.
type Append struct {
	kind value.Kind

	strs   []string
	strIdx map[string]uint32

	ints   []int64
	intIdx map[int64]uint32

	flts   []float64
	fltIdx map[float64]uint32

	// bytes tracks the payload footprint (string bytes; numeric values are
	// counted as 8 bytes each via the slices' lengths in MemoryBytes).
	strBytes int64
}

// NewAppend creates an empty arrival-order dictionary for the given kind.
func NewAppend(kind value.Kind) *Append {
	a := &Append{kind: kind}
	switch kind {
	case value.KindString:
		a.strIdx = make(map[string]uint32, 64)
	case value.KindInt64:
		a.intIdx = make(map[int64]uint32, 64)
	case value.KindFloat64:
		a.fltIdx = make(map[float64]uint32, 64)
	default:
		panic(fmt.Sprintf("dict: NewAppend with invalid kind %v", kind))
	}
	return a
}

// Kind reports the value kind the dictionary stores.
func (a *Append) Kind() value.Kind { return a.kind }

// Len returns the number of distinct values seen so far.
func (a *Append) Len() int {
	switch a.kind {
	case value.KindString:
		return len(a.strs)
	case value.KindInt64:
		return len(a.ints)
	}
	return len(a.flts)
}

// AddString returns s's id, assigning the next one on first sight.
func (a *Append) AddString(s string) uint32 {
	if id, ok := a.strIdx[s]; ok {
		return id
	}
	id := uint32(len(a.strs))
	a.strs = append(a.strs, s)
	a.strIdx[s] = id
	a.strBytes += int64(len(s))
	return id
}

// AddInt64 returns v's id, assigning the next one on first sight.
func (a *Append) AddInt64(v int64) uint32 {
	if id, ok := a.intIdx[v]; ok {
		return id
	}
	id := uint32(len(a.ints))
	a.ints = append(a.ints, v)
	a.intIdx[v] = id
	return id
}

// AddFloat64 returns v's id, assigning the next one on first sight.
func (a *Append) AddFloat64(v float64) uint32 {
	if id, ok := a.fltIdx[v]; ok {
		return id
	}
	id := uint32(len(a.flts))
	a.flts = append(a.flts, v)
	a.fltIdx[v] = id
	return id
}

// Value returns the value with the given arrival-order id.
func (a *Append) Value(id uint32) value.Value {
	switch a.kind {
	case value.KindString:
		return value.String(a.strs[id])
	case value.KindInt64:
		return value.Int64(a.ints[id])
	}
	return value.Float64(a.flts[id])
}

// Strings returns the backing value slice in id order. The slice is the
// dictionary's own storage: callers must copy what they keep and must not
// mutate it.
func (a *Append) Strings() []string { return a.strs }

// Int64s returns the backing value slice in id order (see Strings).
func (a *Append) Int64s() []int64 { return a.ints }

// Float64s returns the backing value slice in id order (see Strings).
func (a *Append) Float64s() []float64 { return a.flts }

// MemoryBytes returns the approximate in-memory footprint: value payloads
// plus the id-assignment index.
func (a *Append) MemoryBytes() int64 {
	switch a.kind {
	case value.KindString:
		// Each distinct string is stored twice (slice + map key): payload
		// twice, plus a string header and a map slot per entry.
		return 2*a.strBytes + int64(len(a.strs))*(16+24)
	case value.KindInt64:
		return int64(len(a.ints)) * (8 + 16)
	}
	return int64(len(a.flts)) * (8 + 16)
}
