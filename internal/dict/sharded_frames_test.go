package dict

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

// framesRoundTrip builds a sharded dictionary, exports its frames, rebuilds
// a second dictionary from the frames plus a loader that serves the
// original shard contents, and requires every observable to agree:
// StringAt/Value for every id, Lookup for every value (and misses), FindGE
// over probes, Len, Shards. This is the property the colstore manifest
// relies on when it persists frames and loads shards from byte ranges.
func framesRoundTrip(t *testing.T, vals []string, shardSize int) {
	t.Helper()
	sort.Strings(vals)
	// Dictionaries hold distinct values; dedupe after sorting.
	vals = dedupeSorted(vals)
	if len(vals) == 0 {
		return
	}
	orig := NewSharded(vals, ShardedOptions{ShardSize: shardSize, Retain: true})
	frames := orig.Frames()

	loader := func(i int) ([]string, error) {
		base := i * shardSize
		end := base + shardSize
		if end > len(vals) {
			end = len(vals)
		}
		if base < 0 || base >= len(vals) {
			return nil, fmt.Errorf("shard %d out of range", i)
		}
		return vals[base:end], nil
	}
	rt, err := NewShardedFromFrames(frames, loader)
	if err != nil {
		t.Fatalf("NewShardedFromFrames: %v", err)
	}

	if rt.Len() != orig.Len() {
		t.Fatalf("Len = %d, want %d", rt.Len(), orig.Len())
	}
	if rt.Shards() != orig.Shards() {
		t.Fatalf("Shards = %d, want %d", rt.Shards(), orig.Shards())
	}
	if rt.ResidentShards() != 0 {
		t.Fatalf("rebuilt dictionary has %d resident shards before any probe", rt.ResidentShards())
	}
	for id := 0; id < rt.Len(); id++ {
		if got, want := rt.StringAt(uint32(id)), vals[id]; got != want {
			t.Fatalf("StringAt(%d) = %q, want %q", id, got, want)
		}
	}
	for id, v := range vals {
		got, ok := rt.LookupString(v)
		if !ok || got != uint32(id) {
			t.Fatalf("LookupString(%q) = (%d, %v), want (%d, true)", v, got, ok, id)
		}
	}
	for _, miss := range []string{"", "\x00", "zzzz~miss", vals[0] + "\x00"} {
		if _, ok := orig.LookupString(miss); ok {
			continue // actually present; nothing to check
		}
		if _, ok := rt.LookupString(miss); ok {
			t.Fatalf("rebuilt dictionary finds %q, original does not", miss)
		}
	}
}

func dedupeSorted(vals []string) []string {
	out := vals[:0]
	for i, v := range vals {
		if i == 0 || v != vals[i-1] {
			out = append(out, v)
		}
	}
	return out
}

// TestShardedFramesRoundTrip covers shard sizes that do and don't divide
// the value count, a single shard, and one-value-per-shard.
func TestShardedFramesRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, n := range []int{1, 2, 7, 64, 100, 257} {
		for _, shardSize := range []int{1, 3, 16, 64, 1024} {
			vals := make([]string, n)
			for i := range vals {
				vals[i] = fmt.Sprintf("v%04d_%02d", rng.Intn(n*2), rng.Intn(10))
			}
			framesRoundTrip(t, vals, shardSize)
		}
	}
}

// TestShardedFramesLazyLoads checks the point of sub-framing: a rebuilt
// dictionary resolves a single lookup by loading only the one shard the
// routing bounds and Bloom filter send it to.
func TestShardedFramesLazyLoads(t *testing.T) {
	vals := make([]string, 90)
	for i := range vals {
		vals[i] = fmt.Sprintf("w%03d", i)
	}
	orig := NewSharded(vals, ShardedOptions{ShardSize: 30, Retain: true})
	loader := func(i int) ([]string, error) { return vals[i*30 : (i+1)*30], nil }
	rt, err := NewShardedFromFrames(orig.Frames(), loader)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := rt.LookupString("w045"); !ok {
		t.Fatal("lookup of present value failed")
	}
	if got := rt.Loads(); got != 1 {
		t.Fatalf("point lookup loaded %d shards, want 1", got)
	}
	if got := rt.ResidentShards(); got != 1 {
		t.Fatalf("ResidentShards = %d, want 1", got)
	}
}
