package backends

import (
	"math"
	"path/filepath"
	"sort"
	"testing"

	"powerdrill/internal/colstore"
	"powerdrill/internal/exec"
	"powerdrill/internal/table"
	"powerdrill/internal/value"
	"powerdrill/internal/workload"
)

func logs(rows int) *table.Table {
	return workload.QueryLogs(workload.LogsSpec{Rows: rows, Seed: 51})
}

// allBackends materializes the table in every baseline format.
func allBackends(t testing.TB, tbl *table.Table) []Backend {
	t.Helper()
	dir := t.TempDir()
	csvPath := filepath.Join(dir, "data.csv")
	csvSchema, err := WriteCSV(tbl, csvPath)
	if err != nil {
		t.Fatal(err)
	}
	recPath := filepath.Join(dir, "data.rec")
	recSchema, err := WriteRecordIO(tbl, recPath)
	if err != nil {
		t.Fatal(err)
	}
	dremel, err := BuildDremel(tbl, filepath.Join(dir, "dremel"), 2048)
	if err != nil {
		t.Fatal(err)
	}
	return []Backend{NewCSV(csvPath, csvSchema), NewRecordIO(recPath, recSchema), dremel}
}

// engineResult runs the query on the dictionary engine for comparison.
func engineResult(t testing.TB, tbl *table.Table, q string) [][]value.Value {
	t.Helper()
	s, err := colstore.FromTable(tbl, colstore.Options{OptimizeElements: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := exec.New(s, exec.Options{ExactDistinct: true}).Query(q)
	if err != nil {
		t.Fatal(err)
	}
	return res.Rows
}

func sortRows(rows [][]value.Value) {
	sort.Slice(rows, func(a, b int) bool {
		for i := range rows[a] {
			if c := rows[a][i].Compare(rows[b][i]); c != 0 {
				return c < 0
			}
		}
		return false
	})
}

func equalRows(a, b [][]value.Value) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			av, bv := a[i][j], b[i][j]
			if av.Kind() == value.KindFloat64 && bv.Kind() == value.KindFloat64 {
				if math.Abs(av.Float()-bv.Float()) > 1e-9*math.Max(math.Abs(av.Float()), 1) {
					return false
				}
				continue
			}
			if !av.Equal(bv) {
				return false
			}
		}
	}
	return true
}

// TestBackendsAgreeWithEngine: all four implementations (three baselines
// plus the dictionary engine) must produce identical results — they differ
// only in speed and bytes touched, which is the entire point of Table 1.
func TestBackendsAgreeWithEngine(t *testing.T) {
	tbl := logs(1500)
	queries := []string{
		`SELECT country, COUNT(*) as c FROM data GROUP BY country ORDER BY c DESC, country ASC LIMIT 10;`,
		`SELECT date(timestamp) as d, COUNT(*), SUM(latency) FROM data GROUP BY d ORDER BY d ASC LIMIT 10;`,
		`SELECT table_name, COUNT(*) as c FROM data GROUP BY table_name ORDER BY c DESC, table_name ASC LIMIT 10;`,
		`SELECT country, SUM(latency), MIN(latency), MAX(latency), AVG(latency) FROM data WHERE country IN ("us", "de") GROUP BY country;`,
		`SELECT COUNT(*) FROM data WHERE latency > 1000;`,
		`SELECT user, COUNT(DISTINCT country) FROM data GROUP BY user;`,
		`SELECT country, latency FROM data WHERE latency > 9500;`,
	}
	backends := allBackends(t, tbl)
	for _, q := range queries {
		want := append([][]value.Value{}, engineResult(t, tbl, q)...)
		sortRows(want)
		for _, b := range backends {
			res, err := Query(b, q)
			if err != nil {
				t.Fatalf("%s: %q: %v", b.Name(), q, err)
			}
			got := append([][]value.Value{}, res.Rows...)
			sortRows(got)
			if !equalRows(got, want) {
				t.Errorf("%s disagrees with engine on %q: %d vs %d rows", b.Name(), q, len(got), len(want))
			}
			if res.BytesRead <= 0 {
				t.Errorf("%s reported no bytes read", b.Name())
			}
		}
	}
}

// TestDataBytesShape checks Table 1's memory column relationships: the
// row formats charge the whole file regardless of the query; the columnar
// baseline charges only referenced columns.
func TestDataBytesShape(t *testing.T) {
	tbl := logs(5000)
	backends := allBackends(t, tbl)
	oneCol := []string{"country"}
	allCols := []string{"timestamp", "table_name", "latency", "country", "user"}
	for _, b := range backends {
		one, err := b.DataBytes(oneCol)
		if err != nil {
			t.Fatal(err)
		}
		all, err := b.DataBytes(allCols)
		if err != nil {
			t.Fatal(err)
		}
		switch b.Name() {
		case "csv", "rec-io":
			if one != all {
				t.Errorf("%s: projection changed bytes: %d vs %d", b.Name(), one, all)
			}
		case "dremel":
			if one >= all {
				t.Errorf("dremel: one column %d not below all columns %d", one, all)
			}
		}
	}
	// The binary row format should be denser than CSV... or at least not
	// wildly larger; and dremel's compressed columns far smaller than both.
	var csvBytes, recBytes, dremelBytes int64
	for _, b := range backends {
		n, _ := b.DataBytes(allCols)
		switch b.Name() {
		case "csv":
			csvBytes = n
		case "rec-io":
			recBytes = n
		case "dremel":
			dremelBytes = n
		}
	}
	t.Logf("bytes: csv=%d rec-io=%d dremel=%d", csvBytes, recBytes, dremelBytes)
	if recBytes >= csvBytes*2 {
		t.Errorf("rec-io %d much larger than csv %d", recBytes, csvBytes)
	}
	if dremelBytes >= recBytes {
		t.Errorf("dremel %d not below rec-io %d", dremelBytes, recBytes)
	}
}

func TestDremelScanOnlyReadsRequestedColumns(t *testing.T) {
	tbl := logs(3000)
	dremel, err := BuildDremel(tbl, t.TempDir(), 1024)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Query(dremel, `SELECT country, COUNT(*) FROM data GROUP BY country;`)
	if err != nil {
		t.Fatal(err)
	}
	countryOnly, err := dremel.DataBytes([]string{"country"})
	if err != nil {
		t.Fatal(err)
	}
	if res.BytesRead > countryOnly {
		t.Errorf("query read %d bytes, country column is %d", res.BytesRead, countryOnly)
	}
}

func TestBackendErrors(t *testing.T) {
	tbl := logs(100)
	for _, b := range allBackends(t, tbl) {
		if _, err := Query(b, `SELECT nope FROM data;`); err == nil {
			t.Errorf("%s: unknown column accepted", b.Name())
		}
		if _, err := Query(b, `not sql`); err == nil {
			t.Errorf("%s: junk SQL accepted", b.Name())
		}
		if _, err := Query(b, `SELECT country FROM data GROUP BY country ORDER BY x;`); err == nil {
			// ORDER BY on unknown output silently ignores in baselines;
			// acceptable divergence, log only.
			t.Logf("%s: unresolved ORDER BY tolerated", b.Name())
		}
	}
	if _, err := OpenDremel(t.TempDir()); err == nil {
		t.Error("OpenDremel on empty dir succeeded")
	}
}

func BenchmarkBackendsQuery1(b *testing.B) {
	tbl := logs(20_000)
	for _, bk := range allBackends(b, tbl) {
		b.Run(bk.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Query(bk, `SELECT country, COUNT(*) as c FROM data GROUP BY country ORDER BY c DESC LIMIT 10;`); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
