// Package backends implements the three full-scan baselines of the paper's
// Section 2.5 experiments:
//
//   - CSV: text rows parsed on the fly;
//   - record-io: the protobuf-style binary row format (package recordio);
//   - Dremel-style: a streaming column-store with per-column block
//     compression and a generic hash-table group-by.
//
// All three answer the same SQL subset as the engine, but the way a
// traditional system does: scan everything relevant, hash raw values. The
// row-wise formats must read every column of every row; the columnar
// baseline reads only referenced columns but still scans them fully. The
// contrast with the dictionary engine is the content of Table 1.
package backends

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"powerdrill/internal/expr"
	"powerdrill/internal/sql"
	"powerdrill/internal/value"
)

// Schema names the fields of a backend's table.
type Schema struct {
	Names []string
	Kinds []value.Kind
}

// KindOf returns the kind of a named column.
func (s Schema) KindOf(name string) (value.Kind, bool) {
	for i, n := range s.Names {
		if n == name {
			return s.Kinds[i], true
		}
	}
	return value.KindInvalid, false
}

// rowIter streams rows. Implementations report the bytes they read so the
// experiments can account I/O.
type rowIter interface {
	// Next fills vals (len = schema fields for row formats; for columnar
	// iterators only the requested columns are valid) and reports whether
	// a row was produced.
	Next() (expr.Row, error) // returns nil, io.EOF at end
	// BytesRead returns the cumulative bytes read from storage.
	BytesRead() int64
	// Close releases resources.
	Close() error
}

// Backend is a full-scan query baseline.
type Backend interface {
	// Name identifies the backend in experiment tables.
	Name() string
	// Scan opens a row stream for the given columns (row formats ignore
	// the projection — they must read everything).
	Scan(cols []string) (rowIter, error)
	// Schema describes the table.
	Schema() Schema
	// DataBytes returns how many stored bytes a query touching cols must
	// stream — the "memory" column of Table 1.
	DataBytes(cols []string) (int64, error)
}

// Result mirrors exec.Result for the baselines.
type Result struct {
	Columns   []string
	Rows      [][]value.Value
	BytesRead int64
}

// Query runs a statement on a backend by full scan with hash aggregation.
func Query(b Backend, src string) (*Result, error) {
	stmt, err := sql.Parse(src)
	if err != nil {
		return nil, err
	}
	return Run(b, stmt)
}

// Run executes a parsed statement on a backend.
func Run(b Backend, stmt *sql.SelectStmt) (*Result, error) {
	needed := map[string]bool{}
	for _, c := range expr.Columns(stmt.Where) {
		needed[c] = true
	}
	for _, item := range stmt.Items {
		for _, c := range expr.Columns(item.Expr) {
			needed[c] = true
		}
	}
	for _, g := range stmt.GroupBy {
		for _, c := range expr.Columns(resolveAlias(stmt, g)) {
			needed[c] = true
		}
	}
	cols := make([]string, 0, len(needed))
	for c := range needed {
		if _, ok := b.Schema().KindOf(c); !ok {
			return nil, fmt.Errorf("backends: unknown column %q", c)
		}
		cols = append(cols, c)
	}
	sort.Strings(cols)

	it, err := b.Scan(cols)
	if err != nil {
		return nil, err
	}
	defer it.Close()

	agg := newScanAggregator(stmt)
	for {
		row, err := it.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if err := agg.add(row); err != nil {
			return nil, err
		}
	}
	res, err := agg.finish()
	if err != nil {
		return nil, err
	}
	res.BytesRead = it.BytesRead()
	return res, nil
}

// resolveAlias maps a GROUP BY identifier that names a select alias back
// to the aliased expression.
func resolveAlias(stmt *sql.SelectStmt, g sql.Expr) sql.Expr {
	if id, ok := g.(*sql.Ident); ok {
		for _, item := range stmt.Items {
			if item.Alias == id.Name && !sql.HasAggregate(item.Expr) {
				return item.Expr
			}
		}
	}
	return g
}

// scanAggregator is the "generic implementation which uses hash-tables"
// the paper contrasts with the counts-array loop: group keys are
// materialized values hashed as strings, exactly the cost that makes the
// baselines slow on high-cardinality fields (Query 3).
type scanAggregator struct {
	stmt    *sql.SelectStmt
	groupEx []sql.Expr
	rowScan bool
	groups  map[string]*scanGroup
	order   []string // insertion order of group keys
	rowsOut [][]value.Value
}

type scanGroup struct {
	keys []value.Value
	accs []scanAcc
}

type scanAcc struct {
	count    int64
	sumI     int64
	sumF     float64
	allInts  bool
	started  bool
	min, max value.Value
	distinct map[string]struct{}
}

func newScanAggregator(stmt *sql.SelectStmt) *scanAggregator {
	a := &scanAggregator{stmt: stmt, groups: map[string]*scanGroup{}}
	for _, g := range stmt.GroupBy {
		a.groupEx = append(a.groupEx, resolveAlias(stmt, g))
	}
	hasAgg := false
	for _, item := range stmt.Items {
		if sql.HasAggregate(item.Expr) {
			hasAgg = true
		}
	}
	a.rowScan = !hasAgg && len(stmt.GroupBy) == 0
	return a
}

func (a *scanAggregator) add(row expr.Row) error {
	if a.stmt.Where != nil {
		ok, err := expr.EvalPred(a.stmt.Where, row)
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
	}
	if a.rowScan {
		vals := make([]value.Value, len(a.stmt.Items))
		for i, item := range a.stmt.Items {
			v, err := expr.Eval(item.Expr, row)
			if err != nil {
				return err
			}
			vals[i] = v
		}
		a.rowsOut = append(a.rowsOut, vals)
		return nil
	}
	// Group key: join the printed values — the string hashing the paper
	// calls "computationally quite expensive" for large fields.
	var sb strings.Builder
	keys := make([]value.Value, len(a.groupEx))
	for i, g := range a.groupEx {
		v, err := expr.Eval(g, row)
		if err != nil {
			return err
		}
		keys[i] = v
		sb.WriteString(v.String())
		sb.WriteByte(0x1f)
	}
	key := sb.String()
	grp := a.groups[key]
	if grp == nil {
		grp = &scanGroup{keys: keys, accs: make([]scanAcc, len(a.stmt.Items))}
		a.groups[key] = grp
		a.order = append(a.order, key)
	}
	for i, item := range a.stmt.Items {
		if !sql.HasAggregate(item.Expr) {
			continue
		}
		call, ok := item.Expr.(*sql.Call)
		if !ok {
			return fmt.Errorf("backends: aggregates must be top-level calls, got %s", item.Expr)
		}
		if err := grp.accs[i].update(call, row); err != nil {
			return err
		}
	}
	return nil
}

func (c *scanAcc) update(call *sql.Call, row expr.Row) error {
	name := strings.ToLower(call.Name)
	if call.Star {
		c.count++
		return nil
	}
	if len(call.Args) != 1 {
		return fmt.Errorf("backends: %s expects one argument", call.Name)
	}
	v, err := expr.Eval(call.Args[0], row)
	if err != nil {
		return err
	}
	c.count++
	if !c.started {
		c.started = true
		c.allInts = true
	}
	if v.Kind() != value.KindInt64 {
		c.allInts = false
	}
	switch name {
	case "count":
		if call.Distinct {
			if c.distinct == nil {
				c.distinct = map[string]struct{}{}
			}
			c.distinct[v.String()] = struct{}{}
		}
	case "sum", "avg":
		if v.Kind() == value.KindInt64 {
			c.sumI += v.Int()
		}
		c.sumF += v.AsFloat()
	case "min":
		if !c.min.IsValid() || v.Compare(c.min) < 0 {
			c.min = v
		}
	case "max":
		if !c.max.IsValid() || v.Compare(c.max) > 0 {
			c.max = v
		}
	default:
		return fmt.Errorf("backends: unknown aggregate %q", call.Name)
	}
	return nil
}

func (c *scanAcc) value(call *sql.Call) (value.Value, error) {
	name := strings.ToLower(call.Name)
	switch name {
	case "count":
		if call.Distinct {
			return value.Int64(int64(len(c.distinct))), nil
		}
		return value.Int64(c.count), nil
	case "sum":
		if c.allInts {
			return value.Int64(c.sumI), nil
		}
		return value.Float64(c.sumF), nil
	case "avg":
		if c.count == 0 {
			return value.Float64(0), nil
		}
		return value.Float64(c.sumF / float64(c.count)), nil
	case "min":
		return c.min, nil
	case "max":
		return c.max, nil
	}
	return value.Value{}, fmt.Errorf("backends: unknown aggregate %q", call.Name)
}

func (a *scanAggregator) finish() (*Result, error) {
	res := &Result{}
	for _, item := range a.stmt.Items {
		name := item.Alias
		if name == "" {
			name = item.Expr.String()
		}
		res.Columns = append(res.Columns, name)
	}
	if a.rowScan {
		res.Rows = a.rowsOut
	} else {
		for _, key := range a.order {
			grp := a.groups[key]
			row := make([]value.Value, len(a.stmt.Items))
			for i, item := range a.stmt.Items {
				if sql.HasAggregate(item.Expr) {
					call := item.Expr.(*sql.Call)
					v, err := grp.accs[i].value(call)
					if err != nil {
						return nil, err
					}
					row[i] = v
					continue
				}
				// Group key expression: find which group expr it matches.
				matched := false
				target := resolveAlias(a.stmt, item.Expr)
				for j, g := range a.groupEx {
					if g.String() == target.String() {
						row[i] = grp.keys[j]
						matched = true
						break
					}
				}
				if !matched {
					return nil, fmt.Errorf("backends: %s is neither aggregated nor grouped", item.Expr)
				}
			}
			res.Rows = append(res.Rows, row)
		}
	}
	orderAndLimit(a.stmt, res)
	return res, nil
}

// orderAndLimit mirrors the engine's output shaping.
func orderAndLimit(stmt *sql.SelectStmt, res *Result) {
	if len(stmt.OrderBy) > 0 {
		cols := map[string]int{}
		for i, item := range stmt.Items {
			if item.Alias != "" {
				cols[item.Alias] = i
			}
			cols[item.Expr.String()] = i
		}
		keys := make([]int, 0, len(stmt.OrderBy))
		desc := make([]bool, 0, len(stmt.OrderBy))
		for _, o := range stmt.OrderBy {
			if idx, ok := cols[o.Expr.String()]; ok {
				keys = append(keys, idx)
				desc = append(desc, o.Desc)
			}
		}
		sort.SliceStable(res.Rows, func(a, b int) bool {
			for i, k := range keys {
				c := res.Rows[a][k].Compare(res.Rows[b][k])
				if c == 0 {
					continue
				}
				if desc[i] {
					return c > 0
				}
				return c < 0
			}
			return false
		})
	}
	if stmt.Limit >= 0 && len(res.Rows) > stmt.Limit {
		res.Rows = res.Rows[:stmt.Limit]
	}
}
