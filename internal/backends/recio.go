package backends

import (
	"fmt"
	"io"
	"os"

	"powerdrill/internal/expr"
	"powerdrill/internal/recordio"
	"powerdrill/internal/table"
	"powerdrill/internal/value"
)

// RecordIO is the binary row-format baseline.
type RecordIO struct {
	path   string
	schema Schema
}

// NewRecordIO opens an existing record-io file with the given schema.
func NewRecordIO(path string, schema Schema) *RecordIO {
	return &RecordIO{path: path, schema: schema}
}

// WriteRecordIO writes a table as a record-io file and returns its schema.
func WriteRecordIO(tbl *table.Table, path string) (Schema, error) {
	f, err := os.Create(path)
	if err != nil {
		return Schema{}, fmt.Errorf("backends: write recordio: %w", err)
	}
	defer f.Close()
	schema := Schema{}
	for _, c := range tbl.Cols {
		schema.Names = append(schema.Names, c.Name)
		schema.Kinds = append(schema.Kinds, c.Kind)
	}
	if err := recordio.WriteTable(f, tbl); err != nil {
		return Schema{}, err
	}
	return schema, nil
}

// Name implements Backend.
func (r *RecordIO) Name() string { return "rec-io" }

// Schema implements Backend.
func (r *RecordIO) Schema() Schema { return r.schema }

// DataBytes implements Backend.
func (r *RecordIO) DataBytes([]string) (int64, error) {
	info, err := os.Stat(r.path)
	if err != nil {
		return 0, err
	}
	return info.Size(), nil
}

// Scan implements Backend.
func (r *RecordIO) Scan([]string) (rowIter, error) {
	f, err := os.Open(r.path)
	if err != nil {
		return nil, err
	}
	cr := &countingReader{r: f}
	return &recIter{
		f:      f,
		cr:     cr,
		r:      recordio.NewReader(cr, r.schema.Kinds),
		schema: r.schema,
		vals:   make([]value.Value, len(r.schema.Kinds)),
		row:    expr.MapRow{},
	}, nil
}

type recIter struct {
	f      *os.File
	cr     *countingReader
	r      *recordio.Reader
	schema Schema
	vals   []value.Value
	row    expr.MapRow
}

// Next implements rowIter.
func (it *recIter) Next() (expr.Row, error) {
	if err := it.r.Next(it.vals); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, err
	}
	for i, name := range it.schema.Names {
		it.row[name] = it.vals[i]
	}
	return it.row, nil
}

// BytesRead implements rowIter.
func (it *recIter) BytesRead() int64 { return it.cr.n }

// Close implements rowIter.
func (it *recIter) Close() error { return it.f.Close() }
