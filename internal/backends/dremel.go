package backends

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"

	"powerdrill/internal/compress"
	"powerdrill/internal/expr"
	"powerdrill/internal/table"
	"powerdrill/internal/value"
)

// Dremel is the streaming column-store baseline: per-column files of
// compressed blocks, read only for the columns a query references, scanned
// in full. It mirrors what the paper measures as "Dremel": columnar I/O
// with a generic compressor, but no dictionaries, no partitioning, no
// skipping — and a hash-table group-by over raw values.
type Dremel struct {
	dir    string
	schema Schema
	meta   dremelMeta
}

type dremelMeta struct {
	Rows      int             `json:"rows"`
	BlockRows int             `json:"block_rows"`
	Codec     string          `json:"codec"`
	Columns   []dremelMetaCol `json:"columns"`
}

type dremelMetaCol struct {
	Name string `json:"name"`
	Kind string `json:"kind"`
	File string `json:"file"`
}

// BuildDremel converts a table into the columnar baseline layout.
// blockRows values per block, each block compressed with zippy.
func BuildDremel(tbl *table.Table, dir string, blockRows int) (*Dremel, error) {
	if blockRows <= 0 {
		blockRows = 8192
	}
	codec, err := compress.ByName("zippy")
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	meta := dremelMeta{Rows: tbl.NumRows(), BlockRows: blockRows, Codec: "zippy"}
	for i, c := range tbl.Cols {
		file := fmt.Sprintf("c%04d.dcol", i)
		if err := writeDremelColumn(filepath.Join(dir, file), c, blockRows, codec); err != nil {
			return nil, err
		}
		meta.Columns = append(meta.Columns, dremelMetaCol{Name: c.Name, Kind: c.Kind.String(), File: file})
	}
	blob, err := json.MarshalIndent(&meta, "", " ")
	if err != nil {
		return nil, err
	}
	if err := os.WriteFile(filepath.Join(dir, "dremel.json"), blob, 0o644); err != nil {
		return nil, err
	}
	return OpenDremel(dir)
}

// writeDremelColumn encodes one column as length-prefixed compressed blocks.
func writeDremelColumn(path string, c *table.Column, blockRows int, codec compress.Codec) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	var raw, comp []byte
	for start := 0; start < c.Len(); start += blockRows {
		end := start + blockRows
		if end > c.Len() {
			end = c.Len()
		}
		raw = raw[:0]
		for i := start; i < end; i++ {
			switch c.Kind {
			case value.KindString:
				s := c.Strs[i]
				raw = binary.AppendUvarint(raw, uint64(len(s)))
				raw = append(raw, s...)
			case value.KindInt64:
				raw = binary.AppendVarint(raw, c.Ints[i])
			case value.KindFloat64:
				raw = binary.LittleEndian.AppendUint64(raw, math.Float64bits(c.Floats[i]))
			}
		}
		comp = codec.Compress(comp[:0], raw)
		var hdr [8]byte
		binary.LittleEndian.PutUint32(hdr[0:], uint32(end-start))
		binary.LittleEndian.PutUint32(hdr[4:], uint32(len(comp)))
		if _, err := f.Write(hdr[:]); err != nil {
			return err
		}
		if _, err := f.Write(comp); err != nil {
			return err
		}
	}
	return nil
}

// OpenDremel opens a layout produced by BuildDremel.
func OpenDremel(dir string) (*Dremel, error) {
	blob, err := os.ReadFile(filepath.Join(dir, "dremel.json"))
	if err != nil {
		return nil, err
	}
	var meta dremelMeta
	if err := json.Unmarshal(blob, &meta); err != nil {
		return nil, fmt.Errorf("backends: dremel meta: %w", err)
	}
	d := &Dremel{dir: dir, meta: meta}
	for _, mc := range meta.Columns {
		kind, err := value.ParseKind(mc.Kind)
		if err != nil {
			return nil, err
		}
		d.schema.Names = append(d.schema.Names, mc.Name)
		d.schema.Kinds = append(d.schema.Kinds, kind)
	}
	return d, nil
}

// Name implements Backend.
func (d *Dremel) Name() string { return "dremel" }

// Schema implements Backend.
func (d *Dremel) Schema() Schema { return d.schema }

// fileFor returns the column file path.
func (d *Dremel) fileFor(col string) (string, value.Kind, error) {
	for i, mc := range d.meta.Columns {
		if mc.Name == col {
			return filepath.Join(d.dir, mc.File), d.schema.Kinds[i], nil
		}
	}
	return "", value.KindInvalid, fmt.Errorf("backends: unknown column %q", col)
}

// DataBytes implements Backend: only the referenced columns count — the
// columnar advantage Table 1 shows over CSV and record-io.
func (d *Dremel) DataBytes(cols []string) (int64, error) {
	var total int64
	for _, col := range cols {
		path, _, err := d.fileFor(col)
		if err != nil {
			return 0, err
		}
		info, err := os.Stat(path)
		if err != nil {
			return 0, err
		}
		total += info.Size()
	}
	return total, nil
}

// Scan implements Backend: a synchronized scan over the referenced
// columns' block streams.
func (d *Dremel) Scan(cols []string) (rowIter, error) {
	it := &dremelIter{rows: d.meta.Rows, row: expr.MapRow{}}
	codec, err := compress.ByName(d.meta.Codec)
	if err != nil {
		return nil, err
	}
	for _, col := range cols {
		path, kind, err := d.fileFor(col)
		if err != nil {
			it.Close()
			return nil, err
		}
		f, err := os.Open(path)
		if err != nil {
			it.Close()
			return nil, err
		}
		it.cols = append(it.cols, &dremelColReader{
			name: col, kind: kind, f: f, codec: codec,
		})
	}
	return it, nil
}

// dremelColReader streams one column's blocks.
type dremelColReader struct {
	name  string
	kind  value.Kind
	f     *os.File
	codec compress.Codec
	bytes int64

	block []value.Value
	pos   int
	raw   []byte
	comp  []byte
}

// next returns the column's next value.
func (cr *dremelColReader) next() (value.Value, error) {
	if cr.pos >= len(cr.block) {
		if err := cr.loadBlock(); err != nil {
			return value.Value{}, err
		}
	}
	v := cr.block[cr.pos]
	cr.pos++
	return v, nil
}

func (cr *dremelColReader) loadBlock() error {
	var hdr [8]byte
	if _, err := io.ReadFull(cr.f, hdr[:]); err != nil {
		if err == io.EOF {
			return io.EOF
		}
		return fmt.Errorf("backends: dremel block header: %w", err)
	}
	n := int(binary.LittleEndian.Uint32(hdr[0:]))
	clen := int(binary.LittleEndian.Uint32(hdr[4:]))
	cr.bytes += 8 + int64(clen)
	if cap(cr.comp) < clen {
		cr.comp = make([]byte, clen)
	}
	cr.comp = cr.comp[:clen]
	if _, err := io.ReadFull(cr.f, cr.comp); err != nil {
		return fmt.Errorf("backends: dremel block body: %w", err)
	}
	var err error
	cr.raw, err = cr.codec.Decompress(cr.raw[:0], cr.comp)
	if err != nil {
		return fmt.Errorf("backends: dremel block decompress: %w", err)
	}
	if cap(cr.block) < n {
		cr.block = make([]value.Value, n)
	}
	cr.block = cr.block[:n]
	buf := cr.raw
	for i := 0; i < n; i++ {
		switch cr.kind {
		case value.KindString:
			l, sz := binary.Uvarint(buf)
			if sz <= 0 || uint64(len(buf)-sz) < l {
				return fmt.Errorf("backends: dremel corrupt string block")
			}
			cr.block[i] = value.String(string(buf[sz : sz+int(l)]))
			buf = buf[sz+int(l):]
		case value.KindInt64:
			v, sz := binary.Varint(buf)
			if sz <= 0 {
				return fmt.Errorf("backends: dremel corrupt int block")
			}
			cr.block[i] = value.Int64(v)
			buf = buf[sz:]
		case value.KindFloat64:
			if len(buf) < 8 {
				return fmt.Errorf("backends: dremel corrupt float block")
			}
			cr.block[i] = value.Float64(math.Float64frombits(binary.LittleEndian.Uint64(buf)))
			buf = buf[8:]
		}
	}
	cr.pos = 0
	return nil
}

type dremelIter struct {
	cols []*dremelColReader
	rows int
	seen int
	row  expr.MapRow
}

// Next implements rowIter.
func (it *dremelIter) Next() (expr.Row, error) {
	if it.seen >= it.rows {
		return nil, io.EOF
	}
	for _, cr := range it.cols {
		v, err := cr.next()
		if err != nil {
			if err == io.EOF {
				return nil, fmt.Errorf("backends: dremel column %q ended early", cr.name)
			}
			return nil, err
		}
		it.row[cr.name] = v
	}
	it.seen++
	return it.row, nil
}

// BytesRead implements rowIter.
func (it *dremelIter) BytesRead() int64 {
	var total int64
	for _, cr := range it.cols {
		total += cr.bytes
	}
	return total
}

// Close implements rowIter.
func (it *dremelIter) Close() error {
	var first error
	for _, cr := range it.cols {
		if err := cr.f.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
