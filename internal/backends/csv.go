package backends

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"

	"powerdrill/internal/expr"
	"powerdrill/internal/table"
	"powerdrill/internal/value"
)

// CSV is the text-file baseline: every query parses every field of every
// row.
type CSV struct {
	path   string
	schema Schema
}

// NewCSV opens an existing CSV file with the given schema (no header row).
func NewCSV(path string, schema Schema) *CSV { return &CSV{path: path, schema: schema} }

// WriteCSV writes a table as a headerless CSV file and returns its schema.
func WriteCSV(tbl *table.Table, path string) (Schema, error) {
	f, err := os.Create(path)
	if err != nil {
		return Schema{}, fmt.Errorf("backends: write csv: %w", err)
	}
	defer f.Close()
	w := csv.NewWriter(f)
	schema := Schema{}
	for _, c := range tbl.Cols {
		schema.Names = append(schema.Names, c.Name)
		schema.Kinds = append(schema.Kinds, c.Kind)
	}
	record := make([]string, len(tbl.Cols))
	for i := 0; i < tbl.NumRows(); i++ {
		for j, c := range tbl.Cols {
			record[j] = c.Value(i).String()
		}
		if err := w.Write(record); err != nil {
			return Schema{}, err
		}
	}
	w.Flush()
	return schema, w.Error()
}

// Name implements Backend.
func (c *CSV) Name() string { return "csv" }

// Schema implements Backend.
func (c *CSV) Schema() Schema { return c.schema }

// DataBytes implements Backend: row formats stream the whole file no
// matter which columns a query needs.
func (c *CSV) DataBytes([]string) (int64, error) {
	info, err := os.Stat(c.path)
	if err != nil {
		return 0, err
	}
	return info.Size(), nil
}

// Scan implements Backend.
func (c *CSV) Scan([]string) (rowIter, error) {
	f, err := os.Open(c.path)
	if err != nil {
		return nil, err
	}
	cr := &countingReader{r: f}
	return &csvIter{f: f, cr: cr, r: csv.NewReader(cr), schema: c.schema, row: expr.MapRow{}}, nil
}

type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

type csvIter struct {
	f      *os.File
	cr     *countingReader
	r      *csv.Reader
	schema Schema
	row    expr.MapRow
}

// Next implements rowIter.
func (it *csvIter) Next() (expr.Row, error) {
	rec, err := it.r.Read()
	if err == io.EOF {
		return nil, io.EOF
	}
	if err != nil {
		return nil, fmt.Errorf("backends: csv read: %w", err)
	}
	if len(rec) != len(it.schema.Names) {
		return nil, fmt.Errorf("backends: csv row has %d fields, schema %d", len(rec), len(it.schema.Names))
	}
	for i, name := range it.schema.Names {
		v, err := value.Parse(it.schema.Kinds[i], rec[i])
		if err != nil {
			return nil, fmt.Errorf("backends: csv field %q: %w", name, err)
		}
		it.row[name] = v
	}
	return it.row, nil
}

// BytesRead implements rowIter.
func (it *csvIter) BytesRead() int64 { return it.cr.n }

// Close implements rowIter.
func (it *csvIter) Close() error { return it.f.Close() }
