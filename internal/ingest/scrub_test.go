package ingest

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// scrubStore builds a store with base rows, sealed segments and a live
// WAL, then returns its directory with the writer detached.
func scrubStore(t *testing.T) string {
	t.Helper()
	dir, lazy, eng := newBase(t, 100)
	w, err := Attach(dir, lazy, eng, Opts{SealRows: 30})
	if err != nil {
		t.Fatal(err)
	}
	for at := 100; at < 190; at += 10 {
		if err := w.Append(rowsTable(at, 10)); err != nil {
			t.Fatal(err)
		}
	}
	// Flush the bulk, then leave a few rows buffered so the store keeps
	// a live WAL with frames for the scrub to walk.
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(rowsTable(190, 5)); err != nil {
		t.Fatal(err)
	}
	w.abandonForTest()
	if err := lazy.Close(); err != nil {
		t.Fatal(err)
	}
	return dir
}

// findFile returns the verdict whose path ends with suffix.
func findFile(t *testing.T, rep *ScrubReport, suffix string) ScrubFile {
	t.Helper()
	for _, f := range rep.Files {
		if strings.HasSuffix(f.Path, suffix) {
			return f
		}
	}
	t.Fatalf("no verdict for %q in %d files", suffix, len(rep.Files))
	return ScrubFile{}
}

// TestScrubCleanStore: a freshly written store scrubs with zero corrupt
// files, covering base columns, gen manifests, segment columns and the
// live WAL (whose tail is complete, not torn).
func TestScrubCleanStore(t *testing.T) {
	dir := scrubStore(t)
	rep, err := ScrubStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Corrupt != 0 {
		for _, f := range rep.Files {
			if !f.OK() {
				t.Errorf("corrupt: %s (%s): %s", f.Path, f.Kind, f.Err)
			}
		}
		t.Fatalf("clean store scrubs %d corrupt files", rep.Corrupt)
	}
	if rep.Records == 0 {
		t.Fatal("no records verified — checksums not covered by scrub")
	}
	kinds := map[string]int{}
	for _, f := range rep.Files {
		kinds[strings.Fields(f.Kind)[0]]++
	}
	for _, want := range []string{"manifest", "column", "gen-manifest", "wal"} {
		if kinds[want] == 0 {
			t.Errorf("scrub visited no %q files (kinds: %v)", want, kinds)
		}
	}
}

// TestScrubFindsBitFlips: a flipped bit in a base column, a segment
// column, a generation manifest and a retired-position WAL file each
// produce a verdict naming that file.
func TestScrubFindsBitFlips(t *testing.T) {
	dir := scrubStore(t)
	clean, err := ScrubStore(dir)
	if err != nil {
		t.Fatal(err)
	}

	// Pick one real on-disk file of each kind from the clean report.
	targets := map[string]string{}
	for _, f := range clean.Files {
		kind := strings.Fields(f.Kind)[0]
		if _, seen := targets[kind]; !seen && f.Bytes > 8 {
			targets[kind] = f.Path
		}
	}
	for _, kind := range []string{"column", "gen-manifest"} {
		rel, ok := targets[kind]
		if !ok {
			t.Fatalf("no %s file in clean report", kind)
		}
		path := filepath.Join(dir, rel)
		blob, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		corrupt := append([]byte(nil), blob...)
		corrupt[len(corrupt)/2] ^= 0x20
		if err := os.WriteFile(path, corrupt, 0o644); err != nil {
			t.Fatal(err)
		}
		rep, err := ScrubStore(dir)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Corrupt == 0 {
			t.Fatalf("%s: flip in %s not detected", kind, rel)
		}
		if f := findFile(t, rep, filepath.Base(rel)); f.OK() {
			t.Fatalf("%s: verdict for %s is clean despite flip", kind, rel)
		}
		if err := os.WriteFile(path, blob, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestScrubWALTornTail: a torn tail in the newest WAL file is reported
// as clean (replay truncates there), but the same tear in an older WAL
// file is corruption.
func TestScrubWALTornTail(t *testing.T) {
	dir := scrubStore(t)
	seqs, err := listWALFiles(dir)
	if err != nil || len(seqs) == 0 {
		t.Fatalf("no WAL files (err=%v)", err)
	}
	last := seqs[len(seqs)-1]
	path := filepath.Join(dir, walRel(last))
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(blob) < 4 {
		t.Fatalf("WAL too small to tear (%d bytes)", len(blob))
	}
	if err := os.WriteFile(path, blob[:len(blob)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err := ScrubStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	f := findFile(t, rep, filepath.Base(path))
	if !f.OK() {
		t.Fatalf("torn tail in newest WAL reported corrupt: %s", f.Err)
	}
	if !strings.Contains(f.Kind, "torn") {
		t.Fatalf("torn tail not flagged in kind: %q", f.Kind)
	}

	// The same file at a non-final sequence is corruption: fabricate a
	// higher-numbered empty WAL so the torn one is no longer newest.
	if err := os.WriteFile(filepath.Join(dir, walRel(last+1)), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err = ScrubStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	f = findFile(t, rep, filepath.Base(path))
	if f.OK() {
		t.Fatal("torn non-final WAL file scrubs clean")
	}
}

// TestScrubPreChecksumStore: a directory that is not a store errors;
// scrub never invents verdicts for foreign directories.
func TestScrubNotAStore(t *testing.T) {
	if _, err := ScrubStore(t.TempDir()); err == nil {
		t.Fatal("scrub of empty directory succeeded")
	}
}

// TestSnapshotChecksumCounters: cold reads through a multi-unit snapshot
// (base + segments) surface checksum verification counts in the query
// stats — the path /statz aggregates from.
func TestSnapshotChecksumCounters(t *testing.T) {
	dir := scrubStore(t)
	w := reattach(t, dir, Opts{SealRows: 1 << 20})
	defer func() {
		w.Close()
		w.base.Close()
	}()
	snap, err := w.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Release()
	res, err := snap.Query(`SELECT c, SUM(v) AS s FROM data GROUP BY c ORDER BY s DESC;`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.ChecksumVerified == 0 {
		t.Fatalf("cold snapshot query verified 0 records (stats %+v)", res.Stats)
	}
	if res.Stats.ChecksumFailed != 0 {
		t.Fatalf("clean store failed %d checksums", res.Stats.ChecksumFailed)
	}
}
