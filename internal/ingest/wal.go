package ingest

// The write-ahead log closes the durability gap between Append and the
// next seal: every accepted batch is framed and appended to a WAL file
// under segs/ *before* the in-memory write chunk is touched, so a crash
// loses no acknowledged row — Writer.Attach replays the WAL after the
// newest committed generation.
//
// Layout and lifecycle. Each write chunk owns one WAL file,
// segs/wal-NNNNNN.log, created when the chunk becomes the live buffer
// and rotated out with it at seal: the sealed chunk's rows commit as a
// segment, its WAL files are thereby superseded, and the fresh buffer
// starts a fresh WAL. The generation manifest records which WAL
// sequence numbers are retired (WalFloor / WalDone), and superseded
// files are deleted after each commit — so replay work is bounded by
// one buffer's worth of batches, not by history.
//
// Frame format. A batch is one frame:
//
//	[4B payload length, LE] [4B CRC32C(payload), LE] [payload]
//
// The payload is columnar in schema order: a row-count uvarint, then
// per column the row values (strings as uvarint length + bytes, int64
// and float64 as 8 LE bytes each). A frame is the atom of recovery: a
// torn tail — short header, short payload, or CRC mismatch — truncates
// replay at the last complete frame, so a batch is recovered whole or
// not at all, exactly matching what Append acknowledged (the frame is
// on disk before Append touches memory, and fsync policy governs only
// the window the *filesystem cache* may lose).

import (
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sync"

	"powerdrill/internal/colstore"
	"powerdrill/internal/faultfs"
	"powerdrill/internal/table"
	"powerdrill/internal/value"
)

// vfs returns the filesystem the ingest package's disk I/O routes
// through — the OS in production, a faultfs.Injector under fault tests.
func vfs() faultfs.FS { return faultfs.Current() }

// Fsync policies for the WAL (Opts.FsyncPolicy).
const (
	// FsyncAlways syncs after every frame, before the append returns:
	// an acknowledged row survives both process and OS crashes.
	FsyncAlways = "always"
	// FsyncInterval syncs on a timer and at rotation: a process crash
	// loses nothing (the kernel has the writes), an OS crash loses at
	// most the last interval. The default.
	FsyncInterval = "interval"
	// FsyncNever leaves syncing to the kernel entirely.
	FsyncNever = "never"
)

const (
	walPrefix      = "wal-"
	walSuffix      = ".log"
	walHeaderBytes = 8
)

// walRel renders the store-relative path of WAL sequence seq.
func walRel(seq int) string {
	return filepath.Join(segsSubdir, fmt.Sprintf("%s%06d%s", walPrefix, seq, walSuffix))
}

// isWalName reports whether a segs/ entry is a WAL file, and its
// sequence number. The GC sweeps must never treat these as orphans.
func isWalName(name string) (int, bool) {
	return colstore.ParseGenSeq(name, walPrefix, walSuffix)
}

// walFile is one open WAL file. appendFrame is called under the owning
// write chunk's lock (frames are written before the memory mutation they
// cover); sync may race it from the interval-policy ticker, so the file
// carries its own lock.
type walFile struct {
	mu    sync.Mutex
	f     faultfs.File
	seq   int
	path  string
	dirty bool
}

// createWAL creates the WAL file for sequence seq in dir. O_EXCL: a
// sequence number is never reused, so an existing file means a protocol
// bug (or a second writer) and must not be silently truncated.
func createWAL(dir string, seq int) (*walFile, error) {
	path := filepath.Join(dir, walRel(seq))
	if err := vfs().MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, fmt.Errorf("ingest: create wal: %w", err)
	}
	f, err := vfs().OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return nil, fmt.Errorf("ingest: create wal: %w", err)
	}
	return &walFile{f: f, seq: seq, path: path}, nil
}

// appendFrame writes one framed payload. syncNow (the "always" policy)
// syncs before returning, making the frame crash-durable before the
// caller acknowledges the batch.
func (wf *walFile) appendFrame(payload []byte, syncNow bool) error {
	buf := make([]byte, walHeaderBytes+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], colstore.CRC32C(payload))
	copy(buf[walHeaderBytes:], payload)
	wf.mu.Lock()
	defer wf.mu.Unlock()
	if _, err := wf.f.Write(buf); err != nil {
		return fmt.Errorf("ingest: wal %s: %w", wf.path, err)
	}
	wf.dirty = true
	if syncNow {
		if err := wf.f.Sync(); err != nil {
			return fmt.Errorf("ingest: wal sync %s: %w", wf.path, err)
		}
		wf.dirty = false
	}
	return nil
}

// sync flushes pending frames to stable storage (no-op when clean).
func (wf *walFile) sync() error {
	wf.mu.Lock()
	defer wf.mu.Unlock()
	if !wf.dirty {
		return nil
	}
	if err := wf.f.Sync(); err != nil {
		return err
	}
	wf.dirty = false
	return nil
}

// close closes the file handle (the file stays on disk).
func (wf *walFile) close() error {
	wf.mu.Lock()
	defer wf.mu.Unlock()
	return wf.f.Close()
}

// readWALFrames parses a WAL file into its complete frames. good is the
// byte offset after the last frame whose header, length and CRC all
// check out; bytes beyond it (good < size) are a torn tail — acceptable
// only in the highest-sequence file, where it marks the crash point.
func readWALFrames(path string) (payloads [][]byte, good, size int64, err error) {
	data, err := vfs().ReadFile(path)
	if err != nil {
		return nil, 0, 0, err
	}
	size = int64(len(data))
	for {
		rest := data[good:]
		if len(rest) < walHeaderBytes {
			return payloads, good, size, nil
		}
		n := binary.LittleEndian.Uint32(rest[0:4])
		crc := binary.LittleEndian.Uint32(rest[4:8])
		if uint64(n) > uint64(len(rest)-walHeaderBytes) {
			return payloads, good, size, nil
		}
		payload := rest[walHeaderBytes : walHeaderBytes+int(n)]
		if colstore.CRC32C(payload) != crc {
			return payloads, good, size, nil
		}
		payloads = append(payloads, payload)
		good += walHeaderBytes + int64(n)
	}
}

// encodeWALBatch renders a validated batch as a frame payload: row count,
// then each schema column's values in order.
func encodeWALBatch(schema []colstore.ColumnMeta, tbl *table.Table) []byte {
	out := binary.AppendUvarint(nil, uint64(tbl.NumRows()))
	for _, m := range schema {
		src := tbl.Column(m.Name)
		switch m.Kind {
		case value.KindString:
			for _, s := range src.Strs {
				out = binary.AppendUvarint(out, uint64(len(s)))
				out = append(out, s...)
			}
		case value.KindInt64:
			for _, v := range src.Ints {
				out = binary.LittleEndian.AppendUint64(out, uint64(v))
			}
		default:
			for _, v := range src.Floats {
				out = binary.LittleEndian.AppendUint64(out, math.Float64bits(v))
			}
		}
	}
	return out
}

// decodeWALBatch parses a frame payload back into a batch table. Any
// structural mismatch — short payload, oversized row count, trailing
// bytes — is an error: the CRC already proved the bytes are what was
// written, so a decode failure means a schema change or a bug, not disk
// corruption, and replay must stop rather than guess.
func decodeWALBatch(schema []colstore.ColumnMeta, payload []byte) (*table.Table, error) {
	rows64, n := binary.Uvarint(payload)
	if n <= 0 || rows64 > uint64(len(payload)) {
		return nil, fmt.Errorf("ingest: wal frame: bad row count")
	}
	rows := int(rows64)
	rest := payload[n:]
	tbl := table.New("wal")
	for _, m := range schema {
		switch m.Kind {
		case value.KindString:
			vals := make([]string, rows)
			for i := range vals {
				l, n := binary.Uvarint(rest)
				if n <= 0 || uint64(len(rest)-n) < l {
					return nil, fmt.Errorf("ingest: wal frame: truncated string in %q", m.Name)
				}
				vals[i] = string(rest[n : n+int(l)])
				rest = rest[n+int(l):]
			}
			tbl.AddStringColumn(m.Name, vals)
		case value.KindInt64:
			vals := make([]int64, rows)
			for i := range vals {
				if len(rest) < 8 {
					return nil, fmt.Errorf("ingest: wal frame: truncated int64 in %q", m.Name)
				}
				vals[i] = int64(binary.LittleEndian.Uint64(rest))
				rest = rest[8:]
			}
			tbl.AddInt64Column(m.Name, vals)
		default:
			vals := make([]float64, rows)
			for i := range vals {
				if len(rest) < 8 {
					return nil, fmt.Errorf("ingest: wal frame: truncated float64 in %q", m.Name)
				}
				vals[i] = math.Float64frombits(binary.LittleEndian.Uint64(rest))
				rest = rest[8:]
			}
			tbl.AddFloat64Column(m.Name, vals)
		}
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("ingest: wal frame: %d trailing bytes", len(rest))
	}
	return tbl, nil
}

// listWALFiles returns the WAL sequence numbers present under dir/segs,
// ascending.
func listWALFiles(dir string) ([]int, error) {
	entries, err := vfs().ReadDir(filepath.Join(dir, segsSubdir))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var seqs []int
	for _, ent := range entries {
		if seq, ok := isWalName(ent.Name()); ok && !ent.IsDir() {
			seqs = append(seqs, seq)
		}
	}
	// ReadDir returns names sorted, and the fixed-width numbering makes
	// lexicographic order numeric.
	return seqs, nil
}
