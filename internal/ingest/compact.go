package ingest

import (
	"fmt"
	"path/filepath"

	"powerdrill/internal/colstore"
	"powerdrill/internal/table"
	"powerdrill/internal/value"
)

// CompactStats reports what one compaction did.
type CompactStats struct {
	// Merged is the number of segments folded into one (0 when there was
	// nothing to do).
	Merged int
	// MergedRows is the row count of the merged segment.
	MergedRows int
	// Retired counts superseded segments destroyed immediately; segments
	// still pinned by snapshots are destroyed by the last Release.
	Retired int
}

// CompactNow merges every live segment into one: read the segments back
// out, re-import through the base store's pipeline (re-sorting and
// re-partitioning the union, rebuilding dictionaries and chunk spans),
// save under a fresh segment number, and commit a generation whose
// segment list is just the merged segment. Superseded segments are
// retired — destroyed now if unpinned, at their last snapshot Release
// otherwise — so reads in flight keep their generation bit-for-bit while
// the directory shrinks underneath them. Dead virtual-column sidecar
// files of the base store are garbage-collected on the way out.
//
// A no-op (zero CompactStats) when fewer than two segments are live.
func (w *Writer) CompactNow() (CompactStats, error) {
	w.sealMu.Lock()
	defer w.sealMu.Unlock()

	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return CompactStats{}, fmt.Errorf("ingest: writer is closed")
	}
	old := append([]*segment(nil), w.segs...)
	gen, seq := w.gen, w.nextSeg
	// Compaction commits no chunk, so the WAL state just carries forward:
	// floor from the still-uncommitted buffers, done from lingering files.
	walFloor, walDone := w.walStateLocked(nil)
	w.mu.Unlock()
	if len(old) < 2 {
		return CompactStats{}, nil
	}

	tbl, err := w.readout(old)
	if err != nil {
		return CompactStats{}, err
	}
	cs, err := colstore.FromTable(tbl, w.base.Opts)
	if err != nil {
		return CompactStats{}, err
	}
	gs := genSegment{Dir: segRel(seq), Rows: tbl.NumRows()}
	dir := filepath.Join(w.dir, gs.Dir)
	if err := colstore.Save(cs, dir, w.codec); err != nil {
		return CompactStats{}, err
	}
	m := &genManifest{Gen: gen + 1, NextSeg: seq + 1, Segments: []genSegment{gs}, WalFloor: walFloor, WalDone: walDone}
	if err := commitGeneration(w.dir, m); err != nil {
		return CompactStats{}, err
	}
	merged, err := w.openSegment(gs)
	if err != nil {
		return CompactStats{}, err
	}

	var destroy []*segment
	w.mu.Lock()
	w.gen = gen + 1
	w.nextSeg = seq + 1
	// Seals cannot have interleaved (sealMu is held), so w.segs is still
	// exactly old plus nothing: replace it wholesale.
	w.segs = []*segment{merged}
	for _, s := range old {
		s.retired = true
		if s.refs == 0 {
			destroy = append(destroy, s)
		}
	}
	w.stats.compactions++
	w.stats.segmentsCompacted += int64(len(old))
	w.mu.Unlock()

	_ = vfs().Remove(filepath.Join(w.dir, genName(gen)))
	for _, s := range destroy {
		w.destroySegment(s)
	}
	w.base.GCVirtualSidecar()
	return CompactStats{Merged: len(old), MergedRows: gs.Rows, Retired: len(destroy)}, nil
}

// readout decodes the physical columns of the given segments back into
// one raw table, in segment order — the input for the merged re-import.
func (w *Writer) readout(segs []*segment) (*table.Table, error) {
	total := 0
	for _, s := range segs {
		total += s.rows
	}
	tbl := table.New("compact")
	for _, m := range w.schema {
		var strs []string
		var ints []int64
		var flts []float64
		switch m.Kind {
		case value.KindString:
			strs = make([]string, 0, total)
		case value.KindInt64:
			ints = make([]int64, 0, total)
		default:
			flts = make([]float64, 0, total)
		}
		for _, s := range segs {
			err := func() error {
				ps := s.store.NewPinSet()
				defer ps.Release()
				col, err := ps.Column(m.Name)
				if err != nil {
					return fmt.Errorf("ingest: compact read %s/%s: %w", s.rel, m.Name, err)
				}
				for ci := 0; ci < s.store.NumChunks(); ci++ {
					for r := 0; r < s.store.ChunkRows(ci); r++ {
						v := col.ValueAt(ci, r)
						switch m.Kind {
						case value.KindString:
							strs = append(strs, v.Str())
						case value.KindInt64:
							ints = append(ints, v.Int())
						default:
							flts = append(flts, v.Float())
						}
					}
				}
				return nil
			}()
			if err != nil {
				return nil, err
			}
		}
		switch m.Kind {
		case value.KindString:
			tbl.AddStringColumn(m.Name, strs)
		case value.KindInt64:
			tbl.AddInt64Column(m.Name, ints)
		default:
			tbl.AddFloat64Column(m.Name, flts)
		}
	}
	return tbl, nil
}

// destroySegment removes a retired segment from disk and from the memory
// budget. Called without mu; the segment is unreachable (off w.segs, no
// snapshot pins).
func (w *Writer) destroySegment(s *segment) {
	_ = s.store.Close()
	if mgr := w.base.MemManager(); mgr != nil {
		if ns := s.store.CacheNamespace(); ns != "" {
			mgr.DropNamespace(ns + "\x00")
		}
	}
	_ = vfs().RemoveAll(s.dir)
	w.mu.Lock()
	w.stats.segmentsRetired++
	w.mu.Unlock()
}
