package ingest

// Offline scrub of a full store directory: the base colstore, every
// generation manifest, every live segment, the WAL files, and the
// virtual sidecar. One verdict per file; the walk never stops at the
// first failure, so one pass maps all the damage. Read-only — scrub is
// safe against a directory another process has open, and repair stays
// an operator decision.

import (
	"encoding/json"
	"fmt"
	"path/filepath"

	"powerdrill/internal/colstore"
)

// ScrubFile is one file's verdict; see colstore.ScrubFile.
type ScrubFile = colstore.ScrubFile

// ScrubReport is the result of scrubbing a store directory.
type ScrubReport struct {
	// Files holds one verdict per file visited, in walk order: base
	// store, generation manifests, segments, WAL files, sidecars.
	Files []ScrubFile
	// Records is the total number of checksummed records verified clean.
	Records int
	// Corrupt is how many files failed (Files[i].Err != "").
	Corrupt int
}

// add appends verdicts and updates the tallies.
func (r *ScrubReport) add(files ...ScrubFile) {
	for _, f := range files {
		r.Files = append(r.Files, f)
		r.Records += f.Records
		if !f.OK() {
			r.Corrupt++
		}
	}
}

// ScrubStore verifies every checksummed byte of the store at dir: the
// base colstore (manifest, column files, virtual sidecar), each
// generation manifest's integrity check, each live segment's colstore,
// and each WAL file's frame chain. It opens nothing for query and
// repairs nothing. A store that predates checksums scrubs clean with
// zero records verified.
func ScrubStore(dir string) (*ScrubReport, error) {
	if _, err := vfs().Stat(filepath.Join(dir, "manifest.json")); err != nil {
		return nil, fmt.Errorf("ingest: scrub: %s is not a store directory: %w", dir, err)
	}
	rep := &ScrubReport{}
	rep.add(colstore.ScrubDir(dir, dir)...)

	// Every generation manifest gets a verdict, not just the newest: a
	// torn older file is harmless (readers skip it) but still evidence
	// of a crash worth surfacing.
	best := scrubGenManifests(dir, rep)

	// Segments of the authoritative generation: each is a full colstore.
	if best != nil {
		for _, seg := range best.Segments {
			rep.add(colstore.ScrubDir(dir, filepath.Join(dir, seg.Dir))...)
		}
	}

	scrubWAL(dir, best, rep)
	return rep, nil
}

// scrubGenManifests verdicts every MANIFEST.gen-* file and returns the
// newest clean one (nil when none).
func scrubGenManifests(dir string, rep *ScrubReport) *genManifest {
	entries, err := vfs().ReadDir(dir)
	if err != nil {
		return nil
	}
	var best *genManifest
	bestGen := -1
	for _, ent := range entries {
		gen, ok := colstore.ParseGenSeq(ent.Name(), genPrefix, genSuffix)
		if !ok {
			continue
		}
		f := ScrubFile{Path: ent.Name(), Kind: "gen-manifest"}
		blob, err := vfs().ReadFile(filepath.Join(dir, ent.Name()))
		if err != nil {
			f.Err = err.Error()
			rep.add(f)
			continue
		}
		f.Bytes = int64(len(blob))
		var m genManifest
		if uerr := json.Unmarshal(blob, &m); uerr != nil {
			f.Err = fmt.Sprintf("parse: %v", uerr)
		} else if m.Gen != gen {
			f.Err = fmt.Sprintf("gen %d recorded in file named for gen %d", m.Gen, gen)
		} else if !manifestCheckOK(&m) {
			f.Err = "integrity check failed (torn or bit-flipped manifest)"
		} else {
			f.Records = 1
			if gen > bestGen {
				best, bestGen = &m, gen
			}
		}
		rep.add(f)
	}
	return best
}

// scrubWAL verdicts every WAL file. A torn tail is legal only in the
// highest-sequence file (the crash point a restart will truncate at);
// anywhere else it is corruption the replay pass would refuse.
func scrubWAL(dir string, best *genManifest, rep *ScrubReport) {
	seqs, err := listWALFiles(dir)
	if err != nil || len(seqs) == 0 {
		return
	}
	done := map[int]bool{}
	floor := 0
	if best != nil {
		floor = best.WalFloor
		for _, s := range best.WalDone {
			done[s] = true
		}
	}
	last := seqs[len(seqs)-1]
	for _, seq := range seqs {
		path := filepath.Join(dir, walRel(seq))
		f := ScrubFile{Path: walRel(seq), Kind: "wal"}
		payloads, good, size, err := readWALFrames(path)
		f.Bytes = size
		f.Records = len(payloads)
		switch {
		case err != nil:
			f.Err = err.Error()
		case good < size && seq != last:
			f.Err = fmt.Sprintf("torn or corrupt frame at byte %d (only the newest WAL may end torn)", good)
		case good < size:
			// The newest WAL's torn tail is the crash point; replay
			// truncates there. Clean, but worth counting precisely.
			f.Kind = "wal (torn tail, truncated at replay)"
		case seq < floor || done[seq]:
			// Retired but not yet deleted: harmless, replay skips it.
			f.Kind = "wal (retired)"
		}
		rep.add(f)
	}
}
