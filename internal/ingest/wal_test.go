package ingest

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"powerdrill/internal/colstore"
	"powerdrill/internal/table"
	"powerdrill/internal/value"
)

func walSchema() []colstore.ColumnMeta {
	return []colstore.ColumnMeta{
		{Name: "c", Kind: value.KindString},
		{Name: "v", Kind: value.KindInt64},
		{Name: "f", Kind: value.KindFloat64},
	}
}

func walBatch(start, n int) *table.Table {
	tbl := table.New("b")
	strs := make([]string, n)
	ints := make([]int64, n)
	flts := make([]float64, n)
	for i := 0; i < n; i++ {
		strs[i] = strings.Repeat("x", (start+i)%5)
		ints[i] = int64(start + i)
		flts[i] = float64(start+i) / 3
	}
	tbl.AddStringColumn("c", strs)
	tbl.AddInt64Column("v", ints)
	tbl.AddFloat64Column("f", flts)
	return tbl
}

func TestWALBatchRoundTrip(t *testing.T) {
	schema := walSchema()
	in := walBatch(7, 23)
	out, err := decodeWALBatch(schema, encodeWALBatch(schema, in))
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != in.NumRows() {
		t.Fatalf("rows = %d, want %d", out.NumRows(), in.NumRows())
	}
	for _, m := range schema {
		a, b := in.Column(m.Name), out.Column(m.Name)
		for i := 0; i < in.NumRows(); i++ {
			switch m.Kind {
			case value.KindString:
				if a.Strs[i] != b.Strs[i] {
					t.Fatalf("%s[%d] = %q, want %q", m.Name, i, b.Strs[i], a.Strs[i])
				}
			case value.KindInt64:
				if a.Ints[i] != b.Ints[i] {
					t.Fatalf("%s[%d] = %d, want %d", m.Name, i, b.Ints[i], a.Ints[i])
				}
			default:
				if a.Floats[i] != b.Floats[i] {
					t.Fatalf("%s[%d] = %v, want %v", m.Name, i, b.Floats[i], a.Floats[i])
				}
			}
		}
	}
}

func TestWALTornTailTruncatesAtLastGoodFrame(t *testing.T) {
	dir := t.TempDir()
	wf, err := createWAL(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	schema := walSchema()
	p1 := encodeWALBatch(schema, walBatch(0, 4))
	p2 := encodeWALBatch(schema, walBatch(4, 4))
	if err := wf.appendFrame(p1, true); err != nil {
		t.Fatal(err)
	}
	if err := wf.appendFrame(p2, true); err != nil {
		t.Fatal(err)
	}
	if err := wf.close(); err != nil {
		t.Fatal(err)
	}
	full, err := os.Stat(wf.path)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the final frame: every truncation point inside it must yield
	// exactly the first frame, never a partial second one.
	frame1 := int64(walHeaderBytes + len(p1))
	for _, cut := range []int64{frame1 + 1, frame1 + walHeaderBytes, full.Size() - 1} {
		if err := os.Truncate(wf.path, cut); err != nil {
			t.Fatal(err)
		}
		payloads, good, size, err := readWALFrames(wf.path)
		if err != nil {
			t.Fatal(err)
		}
		if len(payloads) != 1 || good != frame1 || size != cut {
			t.Fatalf("cut %d: %d frames, good=%d size=%d", cut, len(payloads), good, size)
		}
	}
	// A flipped bit inside a frame fails its CRC the same way.
	blob, _ := os.ReadFile(wf.path)
	blob[walHeaderBytes+2] ^= 0x40
	if err := os.WriteFile(wf.path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	payloads, good, _, err := readWALFrames(wf.path)
	if err != nil || len(payloads) != 0 || good != 0 {
		t.Fatalf("bit flip: %d frames, good=%d, err=%v", len(payloads), good, err)
	}
}

// TestWALReplayRecoversUnflushedRows: rows appended but never sealed
// come back after the writer is abandoned (simulated crash — no Close,
// no Flush).
func TestWALReplayRecoversUnflushedRows(t *testing.T) {
	dir, base, eng := newBase(t, 100)
	w, err := Attach(dir, base, eng, Opts{SealRows: 1000, FsyncPolicy: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(rowsTable(100, 30)); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(rowsTable(130, 20)); err != nil {
		t.Fatal(err)
	}
	// Crash: the writer is abandoned with its buffer unflushed.

	w2 := reattach(t, dir, Opts{SealRows: 1000})
	defer w2.Close()
	if got := w2.Rows(); got != 150 {
		t.Fatalf("recovered rows = %d, want 150", got)
	}
	snap, err := w2.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Release()
	checkPrefix(t, snap, 150)
}

// TestWALRecoveredBufferSealsAtThreshold: a replayed buffer at or past
// SealRows is sealed during attach rather than growing without bound.
func TestWALRecoveredBufferSealsAtThreshold(t *testing.T) {
	dir, base, eng := newBase(t, 100)
	w, err := Attach(dir, base, eng, Opts{SealRows: 1000, FsyncPolicy: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(rowsTable(100, 60)); err != nil {
		t.Fatal(err)
	}
	// Crash, then reattach with a threshold the recovered rows exceed.
	w2 := reattach(t, dir, Opts{SealRows: 50})
	defer w2.Close()
	st := w2.Stats()
	if st.Segments != 1 || st.MemRows != 0 {
		t.Fatalf("recovered buffer not sealed: %+v", st)
	}
	snap, err := w2.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Release()
	checkPrefix(t, snap, 160)
}

// TestWALRetiredAfterSeal: committing a buffer deletes its WAL files and
// raises the manifest floor, so replay work stays bounded.
func TestWALRetiredAfterSeal(t *testing.T) {
	dir, base, eng := newBase(t, 100)
	w, err := Attach(dir, base, eng, Opts{SealRows: 50})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	for i := 0; i < 4; i++ {
		if err := w.Append(rowsTable(100+50*i, 50)); err != nil {
			t.Fatal(err)
		}
	}
	seqs, err := listWALFiles(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 1 {
		t.Fatalf("wal files after 4 seals = %v, want just the live one", seqs)
	}
	m, _, err := readGenerations(dir)
	if err != nil || m == nil {
		t.Fatalf("readGenerations: %v %v", m, err)
	}
	if m.WalFloor != seqs[0] || len(m.WalDone) != 0 {
		t.Fatalf("manifest wal state = floor %d done %v, want floor %d", m.WalFloor, m.WalDone, seqs[0])
	}
}

// TestWALCleanCloseLeavesNoFiles: a graceful Close commits everything,
// so no WAL file survives it.
func TestWALCleanCloseLeavesNoFiles(t *testing.T) {
	dir, base, eng := newBase(t, 100)
	w, err := Attach(dir, base, eng, Opts{SealRows: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(rowsTable(100, 30)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	seqs, err := listWALFiles(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 0 {
		t.Fatalf("wal files after clean close: %v", seqs)
	}
}

// TestWALTornNonFinalFileFailsAttach: a torn frame anywhere but the
// newest WAL file is corruption, not a crash artifact, and must refuse
// to attach rather than silently drop acknowledged rows.
func TestWALTornNonFinalFileFailsAttach(t *testing.T) {
	dir, base, eng := newBase(t, 100)
	w, err := Attach(dir, base, eng, Opts{SealRows: 1000, FsyncPolicy: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(rowsTable(100, 10)); err != nil {
		t.Fatal(err)
	}
	seqs, err := listWALFiles(dir)
	if err != nil || len(seqs) != 1 {
		t.Fatalf("wal files = %v (%v)", seqs, err)
	}
	path := filepath.Join(dir, walRel(seqs[0]))
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()-3); err != nil {
		t.Fatal(err)
	}
	// A second, newer WAL file makes the torn one non-final.
	nw, err := createWAL(dir, seqs[0]+1)
	if err != nil {
		t.Fatal(err)
	}
	if err := nw.appendFrame(encodeWALBatch(w.schema, rowsTable(110, 5)), true); err != nil {
		t.Fatal(err)
	}
	if err := nw.close(); err != nil {
		t.Fatal(err)
	}

	lazy, _, err := colstore.OpenLazy(dir, base.MemManager())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Attach(dir, lazy, eng, Opts{}); err == nil || !strings.Contains(err.Error(), "torn") {
		t.Fatalf("attach on torn non-final wal: err = %v, want torn-frame error", err)
	}
}

// TestHasGenerationsSeesWALOnlyDirs: a crash before the first commit
// leaves WAL files and no manifest; the store must still be recognized
// as carrying ingest state so Open attaches a writer and recovers them.
func TestHasGenerationsSeesWALOnlyDirs(t *testing.T) {
	dir, base, eng := newBase(t, 100)
	if HasGenerations(dir) {
		t.Fatal("fresh store reports generations")
	}
	w, err := Attach(dir, base, eng, Opts{SealRows: 1000, FsyncPolicy: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(rowsTable(100, 5)); err != nil {
		t.Fatal(err)
	}
	// No Flush, no Close: only WAL files exist.
	if _, gen, err := readGenerations(dir); err != nil || gen != 0 {
		t.Fatalf("unexpected committed generation %d (%v)", gen, err)
	}
	if !HasGenerations(dir) {
		t.Fatal("wal-only store not recognized")
	}
}
