package ingest

import (
	"errors"
	"fmt"
	"io/fs"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"powerdrill/internal/colstore"
	"powerdrill/internal/exec"
	"powerdrill/internal/table"
)

// Opts configures a Writer.
type Opts struct {
	// SealRows is the write-buffer size at which an Append seals the
	// buffer into an on-disk segment (default: the base store's
	// MaxChunkRows, so a fresh segment is roughly one chunk).
	SealRows int
	// CompactMinSegments is the segment count at which the background
	// compactor merges all live segments into one (default 4).
	CompactMinSegments int
	// Codec overrides the segment compression codec; empty uses the base
	// store's codec.
	Codec string
	// FsyncPolicy controls when WAL appends reach stable storage:
	// FsyncAlways, FsyncInterval (the default) or FsyncNever.
	FsyncPolicy string
	// FsyncEvery is the timer period of the FsyncInterval policy
	// (default 200ms).
	FsyncEvery time.Duration
	// DisableChecksumVerify turns off CRC verification on segment cold
	// reads (the base store's own verify flag is the caller's to manage).
	DisableChecksumVerify bool
	// EngineOpts configures the engines of segments and frozen buffer
	// views. The gate is always replaced by the base engine's, so every
	// unit shares one process-wide worker budget, and the per-chunk
	// result cache is disabled (units are small and short-lived).
	EngineOpts exec.Options
}

func (o Opts) withDefaults(base *colstore.Store) Opts {
	if o.SealRows <= 0 {
		o.SealRows = base.Opts.MaxChunkRows
		if o.SealRows <= 0 {
			o.SealRows = 50_000
		}
	}
	if o.CompactMinSegments <= 0 {
		o.CompactMinSegments = 4
	}
	if o.FsyncPolicy == "" {
		o.FsyncPolicy = FsyncInterval
	}
	if o.FsyncEvery <= 0 {
		o.FsyncEvery = 200 * time.Millisecond
	}
	return o
}

// segment is one sealed, committed, immutable on-disk colstore. refs
// counts the snapshots holding it; a compaction that supersedes a segment
// marks it retired, and the last Release destroys it (directory, cache
// namespace, file handles).
type segment struct {
	rel     string
	dir     string
	rows    int
	store   *colstore.Store
	eng     *exec.Engine
	refs    int
	retired bool
}

// Writer is the append path of one store directory. It assumes a single
// writer per directory (the generation claim turns a violation into an
// error rather than lost data, but concurrent writers are not a supported
// deployment); all methods are safe for concurrent use from any number of
// goroutines alongside any number of snapshots.
//
// Lock order: sealMu → mu → writeChunk.mu. sealMu serializes the two
// operations that commit generations (seal and compact); mu guards the
// mutable view state (buffer, sealing list, segments, generation number)
// and is only ever held briefly.
type Writer struct {
	dir     string
	base    *colstore.Store
	baseEng *exec.Engine
	opts    Opts
	codec   string
	schema  []colstore.ColumnMeta

	mu      sync.Mutex
	mem     *writeChunk
	sealing []*writeChunk
	segs    []*segment
	gen     int
	nextSeg int
	closed  bool
	stats   counters

	// walSeq is the next unallocated WAL sequence number. It is written
	// only under sealMu (Attach runs before any concurrency), and read
	// under mu by walStateLocked.
	walSeq int
	// walDone holds committed WAL sequences whose files still exist —
	// normally empty (files are deleted right after commit), populated
	// only when a deletion failed. The next manifest re-lists them so
	// replay never re-ingests their rows.
	walDone map[int]bool

	// sealMu serializes seal and compaction: at most one generation
	// commit is in flight, so generation numbers advance one at a time
	// and the segment list only changes under it.
	sealMu sync.Mutex

	compactCh chan struct{}
	done      chan struct{}
	wg        sync.WaitGroup

	// testBeforeCommit runs between writing a segment directory and
	// claiming its generation manifest — the crash window the durability
	// protocol is designed around. Tests panic here to simulate a crash.
	testBeforeCommit func()
}

// counters are the writer's cumulative statistics (guarded by mu).
type counters struct {
	rowsAppended      int64
	seals             int64
	compactions       int64
	segmentsCompacted int64
	segmentsRetired   int64
}

// Stats is a point-in-time snapshot of the writer's state and counters.
type Stats struct {
	// Gen is the committed generation number (0 before the first seal).
	Gen int
	// Segments and SegmentRows describe the live committed segments.
	Segments    int
	SegmentRows int64
	// MemRows counts buffered rows not yet sealed; SealingRows counts
	// rows sealed but not yet committed; MemBytes is the buffer's
	// resident footprint (dictionaries plus ids).
	MemRows     int
	SealingRows int64
	MemBytes    int64
	// Cumulative counters.
	RowsAppended      int64
	Seals             int64
	Compactions       int64
	SegmentsCompacted int64
	SegmentsRetired   int64
}

// Attach opens the append path of a store directory: reads the newest
// generation manifest (if any), garbage-collects superseded manifests and
// orphan segment directories, opens every live segment lazily against the
// base store's memory manager, replays the write-ahead log into a fresh
// buffer, and starts the background compactor. The base store must have
// been opened lazily (OpenLazy) from dir.
func Attach(dir string, base *colstore.Store, baseEng *exec.Engine, opts Opts) (*Writer, error) {
	if base.MemManager() == nil {
		return nil, errors.New("ingest: append requires a store opened from disk")
	}
	var schema []colstore.ColumnMeta
	for _, name := range base.Columns() {
		m, ok := base.ColumnMeta(name)
		if !ok || m.Virtual {
			continue
		}
		schema = append(schema, m)
	}
	opts = opts.withDefaults(base)
	w := &Writer{
		dir:       dir,
		base:      base,
		baseEng:   baseEng,
		opts:      opts,
		codec:     opts.Codec,
		schema:    schema,
		compactCh: make(chan struct{}, 1),
		done:      make(chan struct{}),
	}
	if w.codec == "" {
		w.codec = base.Codec()
	}
	m, gen, err := readGenerations(dir)
	if err != nil {
		return nil, err
	}
	gcGenerations(dir, m)
	if m != nil {
		w.gen, w.nextSeg = gen, m.NextSeg
		for _, gs := range m.Segments {
			seg, err := w.openSegment(gs)
			if err != nil {
				w.closeSegments()
				return nil, err
			}
			w.segs = append(w.segs, seg)
		}
	}
	mem, err := w.replayWAL(m)
	if err != nil {
		w.closeSegments()
		return nil, err
	}
	w.mem = mem
	w.wg.Add(1)
	go w.compactLoop()
	if w.opts.FsyncPolicy == FsyncInterval {
		w.wg.Add(1)
		go w.syncLoop()
	}
	if mem.curRows() >= w.opts.SealRows {
		// A recovered buffer past the seal threshold seals straight away;
		// a failure here is not fatal — the rows are safe in the replayed
		// WAL files and the next threshold crossing retries.
		_ = w.seal()
	}
	return w, nil
}

// replayWAL recovers the write buffer from the WAL files on disk.
// Sequences below the manifest's floor or in its done list are committed
// in segments already — their files are deleted, not replayed. The rest
// are decoded in sequence order into one fresh chunk, which inherits
// those sequences (its rows are durable in them) plus a newly created
// WAL file for rows still to come. A torn tail is legal only in the
// highest live sequence — the file that was being appended at the crash;
// a tear anywhere else is corruption and fails the attach.
func (w *Writer) replayWAL(m *genManifest) (*writeChunk, error) {
	floor := 0
	done := map[int]bool{}
	if m != nil {
		floor = m.WalFloor
		for _, s := range m.WalDone {
			done[s] = true
		}
	}
	seqs, err := listWALFiles(w.dir)
	if err != nil {
		return nil, err
	}
	next := floor
	for _, s := range seqs {
		if s >= next {
			next = s + 1
		}
	}
	for s := range done {
		if s >= next {
			next = s + 1
		}
	}
	chunk := newWriteChunk(w.schema)
	carry := map[int]bool{}
	var live []int
	for i, seq := range seqs {
		path := filepath.Join(w.dir, walRel(seq))
		if seq < floor || done[seq] {
			if vfs().Remove(path) != nil && done[seq] {
				carry[seq] = true
			}
			continue
		}
		payloads, good, size, err := readWALFrames(path)
		if err != nil {
			return nil, fmt.Errorf("ingest: wal replay %s: %w", path, err)
		}
		if good < size && i != len(seqs)-1 {
			return nil, fmt.Errorf("ingest: wal %s: torn frame at offset %d in a non-final file", path, good)
		}
		for _, p := range payloads {
			tbl, err := decodeWALBatch(w.schema, p)
			if err != nil {
				return nil, fmt.Errorf("ingest: wal replay %s: %w", path, err)
			}
			if _, ok, err := chunk.append(tbl, nil, false); err != nil || !ok {
				return nil, fmt.Errorf("ingest: wal replay %s: buffer rejected batch", path)
			}
		}
		live = append(live, seq)
	}
	nw, err := createWAL(w.dir, next)
	if err != nil {
		return nil, err
	}
	chunk.wal = nw
	chunk.walSeqs = append(live, next)
	w.walSeq = next + 1
	w.walDone = carry
	return chunk, nil
}

// walStateLocked computes the WAL retirement state for the manifest
// about to commit: the floor is the lowest sequence a not-yet-committed
// chunk (the live buffer and any stuck sealing chunk other than the one
// committing) still holds; done lists committed sequences at or above
// the floor whose files may still exist. Called with mu held (and sealMu
// held by the committing path, which is what makes walSeq stable).
func (w *Writer) walStateLocked(committing *writeChunk) (floor int, done []int) {
	floor = w.walSeq
	lower := func(c *writeChunk) {
		for _, s := range c.walSeqs {
			if s < floor {
				floor = s
			}
		}
	}
	if w.mem != nil {
		lower(w.mem)
	}
	for _, c := range w.sealing {
		if c != committing {
			lower(c)
		}
	}
	seen := make(map[int]bool, len(w.walDone))
	for s := range w.walDone {
		seen[s] = true
	}
	if committing != nil {
		for _, s := range committing.walSeqs {
			seen[s] = true
		}
	}
	for s := range seen {
		if s >= floor {
			done = append(done, s)
		}
	}
	sort.Ints(done)
	return floor, done
}

// retireWAL runs after a successful commit that covered chunk's rows:
// the chunk's WAL files are superseded by the committed segment, so the
// open handle is closed and the files deleted. A file that refuses to
// die stays in walDone and keeps being listed in manifests so replay
// skips it.
func (w *Writer) retireWAL(chunk *writeChunk, done []int) {
	if chunk.wal != nil {
		_ = chunk.wal.close()
	}
	w.mu.Lock()
	w.walDone = make(map[int]bool, len(done))
	for _, s := range done {
		w.walDone[s] = true
	}
	for _, s := range chunk.walSeqs {
		if vfs().Remove(filepath.Join(w.dir, walRel(s))) == nil {
			delete(w.walDone, s)
		}
	}
	w.mu.Unlock()
}

// syncLoop is the FsyncInterval policy's timer: it periodically fsyncs
// the live buffer's WAL. Sealed chunks' WALs are synced at rotation.
func (w *Writer) syncLoop() {
	defer w.wg.Done()
	t := time.NewTicker(w.opts.FsyncEvery)
	defer t.Stop()
	for {
		select {
		case <-w.done:
			return
		case <-t.C:
			w.mu.Lock()
			mem := w.mem
			w.mu.Unlock()
			if mem != nil && mem.wal != nil {
				_ = mem.wal.sync()
			}
		}
	}
}

// unitEngineOpts are the engine options every non-base unit (segment or
// frozen buffer view) runs with: the caller's options minus the result
// cache, sharing the base engine's admission gate.
func (w *Writer) unitEngineOpts() exec.Options {
	o := w.opts.EngineOpts
	o.ResultCacheBytes = 0
	o.Gate = w.baseEng.Gate()
	return o
}

// openSegment opens one committed segment lazily, budgeted by the base
// store's memory manager (segment cache keys are namespaced by the
// segment's own directory, so retirement can drop them wholesale).
func (w *Writer) openSegment(gs genSegment) (*segment, error) {
	dir := filepath.Join(w.dir, gs.Dir)
	cs, _, err := colstore.OpenLazy(dir, w.base.MemManager())
	if err != nil {
		return nil, fmt.Errorf("ingest: open segment %s: %w", gs.Dir, err)
	}
	cs.DisableVirtualPersist()
	if w.opts.DisableChecksumVerify {
		cs.SetVerifyChecksums(false)
	}
	return &segment{
		rel:   gs.Dir,
		dir:   dir,
		rows:  gs.Rows,
		store: cs,
		eng:   exec.New(cs, w.unitEngineOpts()),
	}, nil
}

// Append validates and buffers a batch of rows. The batch must carry
// exactly the store's physical columns (same names and kinds). The batch
// is framed into the write-ahead log before it touches the buffer, so an
// acknowledged Append survives a crash; under FsyncAlways the frame is
// also fsynced first. When the buffer reaches SealRows the calling
// goroutine seals it into an on-disk segment before returning — append
// cost is amortized-constant with a periodic spike, which doubles as
// backpressure.
func (w *Writer) Append(tbl *table.Table) error {
	if err := w.validate(tbl); err != nil {
		return err
	}
	if tbl.NumRows() == 0 {
		return nil
	}
	payload := encodeWALBatch(w.schema, tbl)
	syncNow := w.opts.FsyncPolicy == FsyncAlways
	for {
		w.mu.Lock()
		if w.closed {
			w.mu.Unlock()
			return errors.New("ingest: writer is closed")
		}
		mem := w.mem
		w.mu.Unlock()
		rows, ok, err := mem.append(tbl, payload, syncNow)
		if err != nil {
			return err
		}
		if !ok {
			// Sealed between the load and the append; retry against the
			// replacement buffer.
			continue
		}
		w.mu.Lock()
		w.stats.rowsAppended += int64(tbl.NumRows())
		w.mu.Unlock()
		if rows >= w.opts.SealRows {
			return w.seal()
		}
		return nil
	}
}

// validate checks a batch against the store schema.
func (w *Writer) validate(tbl *table.Table) error {
	if got, want := len(tbl.ColumnNames()), len(w.schema); got != want {
		return fmt.Errorf("ingest: batch has %d columns, store has %d", got, want)
	}
	for _, m := range w.schema {
		col := tbl.Column(m.Name)
		if col == nil {
			return fmt.Errorf("ingest: batch is missing column %q", m.Name)
		}
		if col.Kind != m.Kind {
			return fmt.Errorf("ingest: column %q is %v, store has %v", m.Name, col.Kind, m.Kind)
		}
	}
	return nil
}

// Flush seals the current buffer (if non-empty) into a committed on-disk
// segment, making every previously appended row durable.
func (w *Writer) Flush() error { return w.seal() }

// seal turns the current write buffer into a committed segment:
//
//  1. under mu: mark the buffer sealed (finalizing its row count) and
//     swap in a fresh one — appends continue immediately;
//  2. build a colstore from the sealed rows with the base store's import
//     options and save it under segs/;
//  3. commit by claiming the next generation manifest;
//  4. under mu: advance the generation and move the rows from the
//     sealing list to the segment list in one critical section, so no
//     snapshot can see them twice or not at all.
//
// The order of step 1 is what makes snapshot cuts consistent: a buffer is
// sealed (row count frozen) before the fresh buffer becomes visible, so
// the sealed rows plus any fresh-buffer prefix always form a prefix of
// the append stream.
func (w *Writer) seal() error {
	w.sealMu.Lock()
	defer w.sealMu.Unlock()

	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return errors.New("ingest: writer is closed")
	}
	mem := w.mem
	if mem.curRows() == 0 {
		w.mu.Unlock()
		return nil
	}
	w.mu.Unlock()

	// Rotate the WAL with the buffer: the replacement buffer gets a fresh
	// file, created before the swap so no append ever waits on file
	// creation. walSeq is stable here — sealMu is held.
	nw, err := createWAL(w.dir, w.walSeq)
	if err != nil {
		return err
	}
	w.walSeq++

	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		_ = nw.close()
		_ = vfs().Remove(nw.path)
		return errors.New("ingest: writer is closed")
	}
	rows := mem.markSealed()
	w.sealing = append(w.sealing, mem)
	fresh := newWriteChunk(w.schema)
	fresh.wal = nw
	fresh.walSeqs = []int{nw.seq}
	w.mem = fresh
	gen, seq := w.gen, w.nextSeg
	segList := w.liveSegments()
	walFloor, walDone := w.walStateLocked(mem)
	w.mu.Unlock()

	// The sealed chunk's WAL is the only durable copy of its rows until
	// the segment commits; make sure the tail frames have hit disk before
	// the files become this commit's responsibility.
	if mem.wal != nil {
		_ = mem.wal.sync()
	}

	seg, err := w.buildSegment(mem.prefix(rows), seq, gen+1, segList, walFloor, walDone)
	if err != nil {
		return err
	}

	w.mu.Lock()
	w.gen = gen + 1
	w.nextSeg = seq + 1
	w.segs = append(w.segs, seg)
	for i, c := range w.sealing {
		if c == mem {
			w.sealing = append(w.sealing[:i], w.sealing[i+1:]...)
			break
		}
	}
	w.stats.seals++
	segCount := len(w.segs)
	w.mu.Unlock()

	w.retireWAL(mem, walDone)
	_ = vfs().Remove(filepath.Join(w.dir, genName(gen)))
	if segCount >= w.opts.CompactMinSegments {
		w.kickCompactor()
	}
	return nil
}

// liveSegments renders the current segment list as manifest entries.
// Callers hold mu.
func (w *Writer) liveSegments() []genSegment {
	list := make([]genSegment, len(w.segs))
	for i, s := range w.segs {
		list[i] = genSegment{Dir: s.rel, Rows: s.rows}
	}
	return list
}

// buildSegment writes the rows of p as segment seq on disk and commits
// generation gen listing prev plus the new segment, carrying the WAL
// retirement state computed by the caller. Called with sealMu held.
func (w *Writer) buildSegment(p chunkPrefix, seq, gen int, prev []genSegment, walFloor int, walDone []int) (*segment, error) {
	cs, err := colstore.FromTable(p.toTable("seg"), w.base.Opts)
	if err != nil {
		return nil, err
	}
	rel := segRel(seq)
	dir := filepath.Join(w.dir, rel)
	if err := vfs().MkdirAll(filepath.Dir(dir), 0o755); err != nil {
		return nil, err
	}
	if err := colstore.Save(cs, dir, w.codec); err != nil {
		return nil, err
	}
	if w.testBeforeCommit != nil {
		w.testBeforeCommit()
	}
	gs := genSegment{Dir: rel, Rows: p.rows}
	m := &genManifest{Gen: gen, NextSeg: seq + 1, Segments: append(prev, gs), WalFloor: walFloor, WalDone: walDone}
	if err := commitGeneration(w.dir, m); err != nil {
		if errors.Is(err, fs.ErrExist) {
			return nil, fmt.Errorf("ingest: generation %d already committed: another writer is appending to %s", gen, w.dir)
		}
		return nil, err
	}
	return w.openSegment(gs)
}

// Rows returns the total row count an immediate snapshot would cover:
// base store plus committed segments plus sealed-uncommitted buffers plus
// the live buffer.
func (w *Writer) Rows() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	total := int64(w.base.NumRows())
	for _, s := range w.segs {
		total += int64(s.rows)
	}
	for _, c := range w.sealing {
		total += int64(c.curRows())
	}
	return total + int64(w.mem.curRows())
}

// Stats returns the writer's current state and cumulative counters.
func (w *Writer) Stats() Stats {
	w.mu.Lock()
	defer w.mu.Unlock()
	st := Stats{
		Gen:               w.gen,
		Segments:          len(w.segs),
		MemRows:           w.mem.curRows(),
		MemBytes:          w.mem.memoryBytes(),
		RowsAppended:      w.stats.rowsAppended,
		Seals:             w.stats.seals,
		Compactions:       w.stats.compactions,
		SegmentsCompacted: w.stats.segmentsCompacted,
		SegmentsRetired:   w.stats.segmentsRetired,
	}
	for _, s := range w.segs {
		st.SegmentRows += int64(s.rows)
	}
	for _, c := range w.sealing {
		st.SealingRows += int64(c.curRows())
	}
	return st
}

// kickCompactor nudges the background compactor without blocking.
func (w *Writer) kickCompactor() {
	select {
	case w.compactCh <- struct{}{}:
	default:
	}
}

// compactLoop is the background compactor: it waits for a nudge (sent
// after seals that push the segment count past the threshold) and merges.
// Errors are dropped — the next seal re-nudges, and CompactNow surfaces
// them to callers who want to know.
func (w *Writer) compactLoop() {
	defer w.wg.Done()
	for {
		select {
		case <-w.done:
			return
		case <-w.compactCh:
			w.mu.Lock()
			due := len(w.segs) >= w.opts.CompactMinSegments
			w.mu.Unlock()
			if due {
				_, _ = w.CompactNow()
			}
		}
	}
}

// Close seals any buffered rows, stops the compactor and sync timer,
// closes the live WAL, and releases the segments' file handles. The
// directory remains attachable.
func (w *Writer) Close() error {
	err := w.seal()
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return err
	}
	w.closed = true
	mem := w.mem
	sealing := append([]*writeChunk(nil), w.sealing...)
	w.mu.Unlock()
	close(w.done)
	w.wg.Wait()
	for _, c := range sealing {
		// A chunk stuck on the sealing list (its segment build failed)
		// keeps its rows alive only in its WAL files: sync and close the
		// handle, leave the files for the next attach to replay.
		if c.wal != nil {
			_ = c.wal.sync()
			_ = c.wal.close()
		}
	}
	if mem != nil && mem.wal != nil {
		// If the final seal failed, the WAL is the rows' only durable
		// copy — sync it before letting go of the handle. A clean, empty,
		// unshared WAL file is deleted so a store without pending rows
		// carries no segs/wal-* litter.
		_ = mem.wal.sync()
		_ = mem.wal.close()
		if mem.curRows() == 0 && len(mem.walSeqs) == 1 {
			_ = vfs().Remove(mem.wal.path)
		}
	}
	w.closeSegments()
	return err
}

// closeSegments releases every live segment's file handles.
func (w *Writer) closeSegments() {
	w.mu.Lock()
	segs := append([]*segment(nil), w.segs...)
	w.mu.Unlock()
	for _, s := range segs {
		_ = s.store.Close()
	}
}
