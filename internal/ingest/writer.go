package ingest

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sync"

	"powerdrill/internal/colstore"
	"powerdrill/internal/exec"
	"powerdrill/internal/table"
)

// Opts configures a Writer.
type Opts struct {
	// SealRows is the write-buffer size at which an Append seals the
	// buffer into an on-disk segment (default: the base store's
	// MaxChunkRows, so a fresh segment is roughly one chunk).
	SealRows int
	// CompactMinSegments is the segment count at which the background
	// compactor merges all live segments into one (default 4).
	CompactMinSegments int
	// Codec overrides the segment compression codec; empty uses the base
	// store's codec.
	Codec string
	// EngineOpts configures the engines of segments and frozen buffer
	// views. The gate is always replaced by the base engine's, so every
	// unit shares one process-wide worker budget, and the per-chunk
	// result cache is disabled (units are small and short-lived).
	EngineOpts exec.Options
}

func (o Opts) withDefaults(base *colstore.Store) Opts {
	if o.SealRows <= 0 {
		o.SealRows = base.Opts.MaxChunkRows
		if o.SealRows <= 0 {
			o.SealRows = 50_000
		}
	}
	if o.CompactMinSegments <= 0 {
		o.CompactMinSegments = 4
	}
	return o
}

// segment is one sealed, committed, immutable on-disk colstore. refs
// counts the snapshots holding it; a compaction that supersedes a segment
// marks it retired, and the last Release destroys it (directory, cache
// namespace, file handles).
type segment struct {
	rel     string
	dir     string
	rows    int
	store   *colstore.Store
	eng     *exec.Engine
	refs    int
	retired bool
}

// Writer is the append path of one store directory. It assumes a single
// writer per directory (the generation claim turns a violation into an
// error rather than lost data, but concurrent writers are not a supported
// deployment); all methods are safe for concurrent use from any number of
// goroutines alongside any number of snapshots.
//
// Lock order: sealMu → mu → writeChunk.mu. sealMu serializes the two
// operations that commit generations (seal and compact); mu guards the
// mutable view state (buffer, sealing list, segments, generation number)
// and is only ever held briefly.
type Writer struct {
	dir     string
	base    *colstore.Store
	baseEng *exec.Engine
	opts    Opts
	codec   string
	schema  []colstore.ColumnMeta

	mu      sync.Mutex
	mem     *writeChunk
	sealing []*writeChunk
	segs    []*segment
	gen     int
	nextSeg int
	closed  bool
	stats   counters

	// sealMu serializes seal and compaction: at most one generation
	// commit is in flight, so generation numbers advance one at a time
	// and the segment list only changes under it.
	sealMu sync.Mutex

	compactCh chan struct{}
	done      chan struct{}
	wg        sync.WaitGroup

	// testBeforeCommit runs between writing a segment directory and
	// claiming its generation manifest — the crash window the durability
	// protocol is designed around. Tests panic here to simulate a crash.
	testBeforeCommit func()
}

// counters are the writer's cumulative statistics (guarded by mu).
type counters struct {
	rowsAppended      int64
	seals             int64
	compactions       int64
	segmentsCompacted int64
	segmentsRetired   int64
}

// Stats is a point-in-time snapshot of the writer's state and counters.
type Stats struct {
	// Gen is the committed generation number (0 before the first seal).
	Gen int
	// Segments and SegmentRows describe the live committed segments.
	Segments    int
	SegmentRows int64
	// MemRows counts buffered rows not yet sealed; SealingRows counts
	// rows sealed but not yet committed; MemBytes is the buffer's
	// resident footprint (dictionaries plus ids).
	MemRows     int
	SealingRows int64
	MemBytes    int64
	// Cumulative counters.
	RowsAppended      int64
	Seals             int64
	Compactions       int64
	SegmentsCompacted int64
	SegmentsRetired   int64
}

// Attach opens the append path of a store directory: reads the newest
// generation manifest (if any), garbage-collects superseded manifests and
// orphan segment directories, opens every live segment lazily against the
// base store's memory manager, and starts the background compactor. The
// base store must have been opened lazily (OpenLazy) from dir.
func Attach(dir string, base *colstore.Store, baseEng *exec.Engine, opts Opts) (*Writer, error) {
	if base.MemManager() == nil {
		return nil, errors.New("ingest: append requires a store opened from disk")
	}
	var schema []colstore.ColumnMeta
	for _, name := range base.Columns() {
		m, ok := base.ColumnMeta(name)
		if !ok || m.Virtual {
			continue
		}
		schema = append(schema, m)
	}
	opts = opts.withDefaults(base)
	w := &Writer{
		dir:       dir,
		base:      base,
		baseEng:   baseEng,
		opts:      opts,
		codec:     opts.Codec,
		schema:    schema,
		compactCh: make(chan struct{}, 1),
		done:      make(chan struct{}),
	}
	if w.codec == "" {
		w.codec = base.Codec()
	}
	m, gen, err := readGenerations(dir)
	if err != nil {
		return nil, err
	}
	if m != nil {
		gcGenerations(dir, m)
		w.gen, w.nextSeg = gen, m.NextSeg
		for _, gs := range m.Segments {
			seg, err := w.openSegment(gs)
			if err != nil {
				w.closeSegments()
				return nil, err
			}
			w.segs = append(w.segs, seg)
		}
	}
	w.mem = newWriteChunk(w.schema)
	w.wg.Add(1)
	go w.compactLoop()
	return w, nil
}

// unitEngineOpts are the engine options every non-base unit (segment or
// frozen buffer view) runs with: the caller's options minus the result
// cache, sharing the base engine's admission gate.
func (w *Writer) unitEngineOpts() exec.Options {
	o := w.opts.EngineOpts
	o.ResultCacheBytes = 0
	o.Gate = w.baseEng.Gate()
	return o
}

// openSegment opens one committed segment lazily, budgeted by the base
// store's memory manager (segment cache keys are namespaced by the
// segment's own directory, so retirement can drop them wholesale).
func (w *Writer) openSegment(gs genSegment) (*segment, error) {
	dir := filepath.Join(w.dir, gs.Dir)
	cs, _, err := colstore.OpenLazy(dir, w.base.MemManager())
	if err != nil {
		return nil, fmt.Errorf("ingest: open segment %s: %w", gs.Dir, err)
	}
	cs.DisableVirtualPersist()
	return &segment{
		rel:   gs.Dir,
		dir:   dir,
		rows:  gs.Rows,
		store: cs,
		eng:   exec.New(cs, w.unitEngineOpts()),
	}, nil
}

// Append validates and buffers a batch of rows. The batch must carry
// exactly the store's physical columns (same names and kinds). When the
// buffer reaches SealRows the calling goroutine seals it into an on-disk
// segment before returning — append cost is amortized-constant with a
// periodic spike, which doubles as backpressure.
func (w *Writer) Append(tbl *table.Table) error {
	if err := w.validate(tbl); err != nil {
		return err
	}
	if tbl.NumRows() == 0 {
		return nil
	}
	for {
		w.mu.Lock()
		if w.closed {
			w.mu.Unlock()
			return errors.New("ingest: writer is closed")
		}
		mem := w.mem
		w.mu.Unlock()
		rows, ok := mem.append(tbl)
		if !ok {
			// Sealed between the load and the append; retry against the
			// replacement buffer.
			continue
		}
		w.mu.Lock()
		w.stats.rowsAppended += int64(tbl.NumRows())
		w.mu.Unlock()
		if rows >= w.opts.SealRows {
			return w.seal()
		}
		return nil
	}
}

// validate checks a batch against the store schema.
func (w *Writer) validate(tbl *table.Table) error {
	if got, want := len(tbl.ColumnNames()), len(w.schema); got != want {
		return fmt.Errorf("ingest: batch has %d columns, store has %d", got, want)
	}
	for _, m := range w.schema {
		col := tbl.Column(m.Name)
		if col == nil {
			return fmt.Errorf("ingest: batch is missing column %q", m.Name)
		}
		if col.Kind != m.Kind {
			return fmt.Errorf("ingest: column %q is %v, store has %v", m.Name, col.Kind, m.Kind)
		}
	}
	return nil
}

// Flush seals the current buffer (if non-empty) into a committed on-disk
// segment, making every previously appended row durable.
func (w *Writer) Flush() error { return w.seal() }

// seal turns the current write buffer into a committed segment:
//
//  1. under mu: mark the buffer sealed (finalizing its row count) and
//     swap in a fresh one — appends continue immediately;
//  2. build a colstore from the sealed rows with the base store's import
//     options and save it under segs/;
//  3. commit by claiming the next generation manifest;
//  4. under mu: advance the generation and move the rows from the
//     sealing list to the segment list in one critical section, so no
//     snapshot can see them twice or not at all.
//
// The order of step 1 is what makes snapshot cuts consistent: a buffer is
// sealed (row count frozen) before the fresh buffer becomes visible, so
// the sealed rows plus any fresh-buffer prefix always form a prefix of
// the append stream.
func (w *Writer) seal() error {
	w.sealMu.Lock()
	defer w.sealMu.Unlock()

	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return errors.New("ingest: writer is closed")
	}
	mem := w.mem
	if mem.curRows() == 0 {
		w.mu.Unlock()
		return nil
	}
	rows := mem.markSealed()
	w.sealing = append(w.sealing, mem)
	w.mem = newWriteChunk(w.schema)
	gen, seq := w.gen, w.nextSeg
	segList := w.liveSegments()
	w.mu.Unlock()

	seg, err := w.buildSegment(mem.prefix(rows), seq, gen+1, segList)
	if err != nil {
		return err
	}

	w.mu.Lock()
	w.gen = gen + 1
	w.nextSeg = seq + 1
	w.segs = append(w.segs, seg)
	for i, c := range w.sealing {
		if c == mem {
			w.sealing = append(w.sealing[:i], w.sealing[i+1:]...)
			break
		}
	}
	w.stats.seals++
	segCount := len(w.segs)
	w.mu.Unlock()

	_ = os.Remove(filepath.Join(w.dir, genName(gen)))
	if segCount >= w.opts.CompactMinSegments {
		w.kickCompactor()
	}
	return nil
}

// liveSegments renders the current segment list as manifest entries.
// Callers hold mu.
func (w *Writer) liveSegments() []genSegment {
	list := make([]genSegment, len(w.segs))
	for i, s := range w.segs {
		list[i] = genSegment{Dir: s.rel, Rows: s.rows}
	}
	return list
}

// buildSegment writes the rows of p as segment seq on disk and commits
// generation gen listing prev plus the new segment. Called with sealMu
// held.
func (w *Writer) buildSegment(p chunkPrefix, seq, gen int, prev []genSegment) (*segment, error) {
	cs, err := colstore.FromTable(p.toTable("seg"), w.base.Opts)
	if err != nil {
		return nil, err
	}
	rel := segRel(seq)
	dir := filepath.Join(w.dir, rel)
	if err := os.MkdirAll(filepath.Dir(dir), 0o755); err != nil {
		return nil, err
	}
	if err := colstore.Save(cs, dir, w.codec); err != nil {
		return nil, err
	}
	if w.testBeforeCommit != nil {
		w.testBeforeCommit()
	}
	gs := genSegment{Dir: rel, Rows: p.rows}
	m := &genManifest{Gen: gen, NextSeg: seq + 1, Segments: append(prev, gs)}
	if err := commitGeneration(w.dir, m); err != nil {
		if errors.Is(err, fs.ErrExist) {
			return nil, fmt.Errorf("ingest: generation %d already committed: another writer is appending to %s", gen, w.dir)
		}
		return nil, err
	}
	return w.openSegment(gs)
}

// Rows returns the total row count an immediate snapshot would cover:
// base store plus committed segments plus sealed-uncommitted buffers plus
// the live buffer.
func (w *Writer) Rows() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	total := int64(w.base.NumRows())
	for _, s := range w.segs {
		total += int64(s.rows)
	}
	for _, c := range w.sealing {
		total += int64(c.curRows())
	}
	return total + int64(w.mem.curRows())
}

// Stats returns the writer's current state and cumulative counters.
func (w *Writer) Stats() Stats {
	w.mu.Lock()
	defer w.mu.Unlock()
	st := Stats{
		Gen:               w.gen,
		Segments:          len(w.segs),
		MemRows:           w.mem.curRows(),
		MemBytes:          w.mem.memoryBytes(),
		RowsAppended:      w.stats.rowsAppended,
		Seals:             w.stats.seals,
		Compactions:       w.stats.compactions,
		SegmentsCompacted: w.stats.segmentsCompacted,
		SegmentsRetired:   w.stats.segmentsRetired,
	}
	for _, s := range w.segs {
		st.SegmentRows += int64(s.rows)
	}
	for _, c := range w.sealing {
		st.SealingRows += int64(c.curRows())
	}
	return st
}

// kickCompactor nudges the background compactor without blocking.
func (w *Writer) kickCompactor() {
	select {
	case w.compactCh <- struct{}{}:
	default:
	}
}

// compactLoop is the background compactor: it waits for a nudge (sent
// after seals that push the segment count past the threshold) and merges.
// Errors are dropped — the next seal re-nudges, and CompactNow surfaces
// them to callers who want to know.
func (w *Writer) compactLoop() {
	defer w.wg.Done()
	for {
		select {
		case <-w.done:
			return
		case <-w.compactCh:
			w.mu.Lock()
			due := len(w.segs) >= w.opts.CompactMinSegments
			w.mu.Unlock()
			if due {
				_, _ = w.CompactNow()
			}
		}
	}
}

// Close seals any buffered rows, stops the compactor, and releases the
// segments' file handles. The directory remains attachable.
func (w *Writer) Close() error {
	err := w.seal()
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return err
	}
	w.closed = true
	w.mu.Unlock()
	close(w.done)
	w.wg.Wait()
	w.closeSegments()
	return err
}

// closeSegments releases every live segment's file handles.
func (w *Writer) closeSegments() {
	w.mu.Lock()
	segs := append([]*segment(nil), w.segs...)
	w.mu.Unlock()
	for _, s := range segs {
		_ = s.store.Close()
	}
}
