package ingest

// Differential fuzzing of the WAL replay path: arbitrary bytes fed to
// the frame parser must never panic, must only ever yield frames whose
// CRCs check out, and re-framing whatever was recovered must round-trip
// bit-for-bit. This is the parser a restarted process trusts with its
// acknowledged rows — "garbage in, bounded recovery out" is the whole
// contract.

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"

	"powerdrill/internal/colstore"
	"powerdrill/internal/value"
)

// frameBytes renders one well-formed WAL frame.
func frameBytes(payload []byte) []byte {
	out := make([]byte, walHeaderBytes, walHeaderBytes+len(payload))
	binary.LittleEndian.PutUint32(out[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(out[4:8], colstore.CRC32C(payload))
	return append(out, payload...)
}

func FuzzWALReplay(f *testing.F) {
	f.Add([]byte{}, []byte("hello"), []byte{0xff, 0x00})
	f.Add(frameBytes([]byte("a")), []byte("b"), []byte{})
	f.Add(frameBytes(nil), frameBytes([]byte("xyz")), []byte{1, 2, 3})
	f.Fuzz(func(t *testing.T, raw, extra, tail []byte) {
		dir := t.TempDir()
		// The file under test: arbitrary bytes, then a well-formed frame,
		// then an arbitrary tail — so every run exercises both the "parse
		// whatever is there" and the "stop at the tear" behaviors.
		blob := append(append(append([]byte(nil), raw...), frameBytes(extra)...), tail...)
		path := filepath.Join(dir, "wal-000000.log")
		if err := os.WriteFile(path, blob, 0o644); err != nil {
			t.Fatal(err)
		}
		payloads, good, size, err := readWALFrames(path)
		if err != nil {
			t.Fatalf("read error on readable file: %v", err)
		}
		if size != int64(len(blob)) || good < 0 || good > size {
			t.Fatalf("good=%d size=%d file=%d", good, size, len(blob))
		}
		// Every recovered frame's bytes must be exactly what a writer
		// framed: re-encode and compare against the consumed prefix.
		var refr []byte
		for _, p := range payloads {
			refr = append(refr, frameBytes(p)...)
		}
		if int64(len(refr)) != good || !bytes.Equal(refr, blob[:good]) {
			t.Fatalf("recovered frames re-encode to %d bytes != consumed prefix %d", len(refr), good)
		}
		// Re-reading the re-framed file is a fixed point: same payloads,
		// no torn tail.
		path2 := filepath.Join(dir, "wal-000001.log")
		if err := os.WriteFile(path2, refr, 0o644); err != nil {
			t.Fatal(err)
		}
		p2, good2, size2, err := readWALFrames(path2)
		if err != nil || good2 != size2 || len(p2) != len(payloads) {
			t.Fatalf("re-framed file: %d/%d frames, good %d of %d, err %v",
				len(p2), len(payloads), good2, size2, err)
		}
		// Batch decoding of arbitrary payloads must never panic or
		// over-read — it either errors or yields a rectangular table.
		schema := []colstore.ColumnMeta{
			{Name: "v", Kind: value.KindInt64},
			{Name: "c", Kind: value.KindString},
			{Name: "f", Kind: value.KindFloat64},
		}
		for _, p := range payloads {
			if tbl, err := decodeWALBatch(schema, p); err == nil {
				rows := tbl.NumRows()
				for _, m := range schema {
					if got := tbl.Column(m.Name).Len(); got != rows {
						t.Fatalf("decoded ragged table: column %s has %d rows of %d", m.Name, got, rows)
					}
				}
			}
		}
	})
}
