package ingest

import (
	"sync"

	"powerdrill/internal/colstore"
	"powerdrill/internal/dict"
	"powerdrill/internal/exec"
	"powerdrill/internal/table"
	"powerdrill/internal/value"
)

// writeChunk is the in-memory buffer rows append into: one arrival-order
// dictionary (dict.Append) plus a uint32 id per row and column, so the
// buffer is dictionary-encoded from the first row — its footprint tracks
// distinct values plus 4 bytes a cell, not raw strings.
//
// Lock order: Writer.mu may be held while taking mu (seal marks the chunk
// sealed inside the writer's critical section); mu is never held while
// taking Writer.mu.
type writeChunk struct {
	mu     sync.Mutex
	cols   []wcCol
	rows   int
	sealed bool

	// wal is the chunk's live WAL file: every batch is framed into it
	// before the column buffers are touched. walSeqs lists every WAL
	// sequence whose rows this chunk holds — just wal.seq for a fresh
	// chunk, the replayed sequences plus the new one for a chunk rebuilt
	// by recovery. When the chunk's segment commits, these sequences
	// retire. nil for pre-WAL chunks built by tests.
	wal     *walFile
	walSeqs []int

	// frozen caches the latest frozen prefix view; snapshots taken at the
	// same row count (the common case between appends) share one build.
	frozenMu   sync.Mutex
	frozenRows int
	frozen     *frozenView
}

// wcCol is one column of the write buffer.
type wcCol struct {
	meta colstore.ColumnMeta
	dict *dict.Append
	ids  []uint32
}

// frozenView is an immutable queryable build of a write-chunk prefix: a
// fully resident colstore constructed with the base store's import
// options, plus an engine sharing the writer's admission gate.
type frozenView struct {
	rows  int
	store *colstore.Store
	eng   *exec.Engine
}

func newWriteChunk(schema []colstore.ColumnMeta) *writeChunk {
	wc := &writeChunk{cols: make([]wcCol, len(schema))}
	for i, m := range schema {
		wc.cols[i] = wcCol{meta: m, dict: dict.NewAppend(m.Kind)}
	}
	return wc
}

// append encodes tbl's rows into the buffer. ok is false when the chunk
// was sealed before the lock was acquired — the caller retries against
// the writer's fresh chunk. The whole batch lands in one critical
// section, so a snapshot cut never splits a batch; the WAL frame is
// written inside that same section, *before* any buffer mutation, so a
// batch that fails to reach the log is rejected with memory untouched
// and a crash mid-frame leaves a torn tail covering only unacknowledged
// rows. payload is the batch's pre-encoded frame (nil skips logging —
// the replay path, whose rows are already on disk).
func (c *writeChunk) append(tbl *table.Table, payload []byte, syncNow bool) (rows int, ok bool, err error) {
	n := tbl.NumRows()
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.sealed {
		return 0, false, nil
	}
	if payload != nil && c.wal != nil {
		if err := c.wal.appendFrame(payload, syncNow); err != nil {
			return 0, false, err
		}
	}
	for i := range c.cols {
		wc := &c.cols[i]
		src := tbl.Column(wc.meta.Name)
		switch wc.meta.Kind {
		case value.KindString:
			for _, s := range src.Strs {
				wc.ids = append(wc.ids, wc.dict.AddString(s))
			}
		case value.KindInt64:
			for _, v := range src.Ints {
				wc.ids = append(wc.ids, wc.dict.AddInt64(v))
			}
		default:
			for _, v := range src.Floats {
				wc.ids = append(wc.ids, wc.dict.AddFloat64(v))
			}
		}
	}
	c.rows += n
	return c.rows, true, nil
}

// markSealed finalizes the row count; every later append retries against
// the writer's replacement chunk. Called with Writer.mu held, which is
// what makes "sealed chunks are complete" visible to snapshots: a chunk
// observed on the sealing list was marked sealed in an earlier Writer.mu
// critical section, so its row count can no longer move.
func (c *writeChunk) markSealed() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sealed = true
	return c.rows
}

// curRows returns the current row count — a snapshot's cut point for the
// live buffer.
func (c *writeChunk) curRows() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rows
}

// memoryBytes approximates the buffer's resident footprint.
func (c *writeChunk) memoryBytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var total int64
	for i := range c.cols {
		total += c.cols[i].dict.MemoryBytes() + int64(len(c.cols[i].ids))*4
	}
	return total
}

// prefix captures an immutable view of the first n rows: the id slices
// and dictionary value slices are snapshotted by header under the lock.
// Appends only ever grow them (prefix elements are never rewritten, and a
// reallocating append leaves the old array behind untouched), so the
// captured views stay valid and race-free after the lock is dropped.
type chunkPrefix struct {
	cols []prefixCol
	rows int
}

type prefixCol struct {
	meta colstore.ColumnMeta
	ids  []uint32
	strs []string
	ints []int64
	flts []float64
}

func (c *writeChunk) prefix(n int) chunkPrefix {
	c.mu.Lock()
	defer c.mu.Unlock()
	p := chunkPrefix{rows: n, cols: make([]prefixCol, len(c.cols))}
	for i := range c.cols {
		wc := &c.cols[i]
		pc := prefixCol{meta: wc.meta, ids: wc.ids[:n]}
		switch wc.meta.Kind {
		case value.KindString:
			pc.strs = wc.dict.Strings()
		case value.KindInt64:
			pc.ints = wc.dict.Int64s()
		default:
			pc.flts = wc.dict.Float64s()
		}
		p.cols[i] = pc
	}
	return p
}

// toTable decodes the prefix back into a raw table — the input the
// ordinary import pipeline (colstore.FromTable) expects.
func (p chunkPrefix) toTable(name string) *table.Table {
	tbl := table.New(name)
	for _, pc := range p.cols {
		switch pc.meta.Kind {
		case value.KindString:
			vals := make([]string, p.rows)
			for i, id := range pc.ids {
				vals[i] = pc.strs[id]
			}
			tbl.AddStringColumn(pc.meta.Name, vals)
		case value.KindInt64:
			vals := make([]int64, p.rows)
			for i, id := range pc.ids {
				vals[i] = pc.ints[id]
			}
			tbl.AddInt64Column(pc.meta.Name, vals)
		default:
			vals := make([]float64, p.rows)
			for i, id := range pc.ids {
				vals[i] = pc.flts[id]
			}
			tbl.AddFloat64Column(pc.meta.Name, vals)
		}
	}
	return tbl
}

// freezeAt returns a queryable view of exactly the first n rows, building
// it with the writer's import options so the view partitions, reorders
// and dictionary-encodes identically to a sealed segment of the same
// rows. Views are cached per row count: repeated snapshots between
// appends share one build.
func (c *writeChunk) freezeAt(n int, w *Writer) (*frozenView, error) {
	if n == 0 {
		return nil, nil
	}
	c.frozenMu.Lock()
	defer c.frozenMu.Unlock()
	if c.frozen != nil && c.frozenRows == n {
		return c.frozen, nil
	}
	cs, err := colstore.FromTable(c.prefix(n).toTable("mem"), w.base.Opts)
	if err != nil {
		return nil, err
	}
	fv := &frozenView{rows: n, store: cs, eng: exec.New(cs, w.unitEngineOpts())}
	c.frozen, c.frozenRows = fv, n
	return fv, nil
}
