package ingest

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"testing"

	"powerdrill/internal/colstore"
	"powerdrill/internal/exec"
	"powerdrill/internal/memmgr"
	"powerdrill/internal/table"
)

// rowsTable builds rows [start, start+n) of the deterministic test
// stream: v is the global row index, c cycles through five groups. The
// closed forms below follow from that, so any prefix of the stream has
// exactly computable aggregates.
func rowsTable(start, n int) *table.Table {
	vs := make([]int64, n)
	cs := make([]string, n)
	for i := 0; i < n; i++ {
		vs[i] = int64(start + i)
		cs[i] = "c" + strconv.Itoa((start+i)%5)
	}
	return table.New("data").AddInt64Column("v", vs).AddStringColumn("c", cs)
}

var baseOpts = colstore.Options{
	PartitionFields:  []string{"c"},
	Reorder:          true,
	OptimizeElements: true,
	MaxChunkRows:     256,
}

// newBase builds and persists a base store of rows [0, rows), opens it
// lazily and returns its directory, store and engine.
func newBase(t *testing.T, rows int) (string, *colstore.Store, *exec.Engine) {
	t.Helper()
	dir := t.TempDir()
	cs, err := colstore.FromTable(rowsTable(0, rows), baseOpts)
	if err != nil {
		t.Fatal(err)
	}
	if err := colstore.Save(cs, dir, "zippy"); err != nil {
		t.Fatal(err)
	}
	lazy, _, err := colstore.OpenLazy(dir, memmgr.New(0, ""))
	if err != nil {
		t.Fatal(err)
	}
	return dir, lazy, exec.New(lazy, exec.Options{})
}

// reattach opens dir fresh — new memory manager, new base store, new
// writer — as a restarted process would.
func reattach(t *testing.T, dir string, opts Opts) *Writer {
	t.Helper()
	lazy, _, err := colstore.OpenLazy(dir, memmgr.New(0, ""))
	if err != nil {
		t.Fatal(err)
	}
	w, err := Attach(dir, lazy, exec.New(lazy, exec.Options{}), opts)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// countSegDirs counts segment directories under segs/, ignoring the WAL
// files that share the subdirectory.
func countSegDirs(t *testing.T, dir string) int {
	t.Helper()
	ents, _ := os.ReadDir(filepath.Join(dir, segsSubdir))
	n := 0
	for _, ent := range ents {
		if ent.IsDir() {
			n++
		}
	}
	return n
}

// checkPrefix asserts a snapshot covers exactly the first n rows of the
// stream: COUNT(*), SUM(v), MIN(v), MAX(v) globally and per group.
func checkPrefix(t *testing.T, snap *Snapshot, n int) {
	t.Helper()
	res, err := snap.Query(`SELECT COUNT(*) AS cnt, SUM(v) AS s, MIN(v) AS lo, MAX(v) AS hi FROM data;`)
	if err != nil {
		t.Fatal(err)
	}
	row := res.Rows[0]
	wantSum := int64(n) * int64(n-1) / 2
	if row[0].Int() != int64(n) || row[1].Int() != wantSum || row[2].Int() != 0 || row[3].Int() != int64(n-1) {
		t.Fatalf("prefix %d: got cnt=%d sum=%d lo=%d hi=%d, want cnt=%d sum=%d lo=0 hi=%d",
			n, row[0].Int(), row[1].Int(), row[2].Int(), row[3].Int(), n, wantSum, n-1)
	}
	byGroup, err := snap.Query(`SELECT c, COUNT(*) AS cnt FROM data GROUP BY c ORDER BY c;`)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, r := range byGroup.Rows {
		g, _ := strconv.Atoi(r[0].Str()[1:])
		// Group g holds rows g, g+5, g+10, ...: ceil((n-g)/5) of the
		// first n rows.
		want := int64((n - g + 4) / 5)
		if r[1].Int() != want {
			t.Fatalf("prefix %d: group %s count = %d, want %d", n, r[0].Str(), r[1].Int(), want)
		}
		total += r[1].Int()
	}
	if total != int64(n) {
		t.Fatalf("prefix %d: group counts sum to %d", n, total)
	}
}

func TestAppendSealQueryReopen(t *testing.T) {
	dir, base, eng := newBase(t, 1000)
	w, err := Attach(dir, base, eng, Opts{SealRows: 300, CompactMinSegments: 100})
	if err != nil {
		t.Fatal(err)
	}
	for start := 1000; start < 1500; start += 50 {
		if err := w.Append(rowsTable(start, 50)); err != nil {
			t.Fatal(err)
		}
	}
	snap, err := w.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	checkPrefix(t, snap, 1500)
	snap.Release()

	st := w.Stats()
	if st.Seals == 0 || st.Segments == 0 {
		t.Fatalf("expected at least one seal, got %+v", st)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// A restarted process sees every sealed row; Close flushed the rest.
	w2 := reattach(t, dir, Opts{})
	defer w2.Close()
	if got := w2.Rows(); got != 1500 {
		t.Fatalf("reopened rows = %d, want 1500", got)
	}
	snap2, err := w2.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer snap2.Release()
	checkPrefix(t, snap2, 1500)
}

func TestRowScanAcrossGenerations(t *testing.T) {
	dir, base, eng := newBase(t, 40)
	w, err := Attach(dir, base, eng, Opts{SealRows: 25, CompactMinSegments: 100})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.Append(rowsTable(40, 30)); err != nil {
		t.Fatal(err)
	}
	snap, err := w.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Release()
	// Rows live in base, a sealed segment and the write buffer; ORDER BY
	// and LIMIT must apply to the merged scan, not per unit.
	res, err := snap.Query(`SELECT v FROM data WHERE c = "c2" ORDER BY v DESC LIMIT 4;`)
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{67, 62, 57, 52}
	if len(res.Rows) != len(want) {
		t.Fatalf("got %d rows, want %d", len(res.Rows), len(want))
	}
	for i, r := range res.Rows {
		if r[0].Int() != want[i] {
			t.Fatalf("row %d = %d, want %d", i, r[0].Int(), want[i])
		}
	}
}

// TestSnapshotConsistencyUnderConcurrency is the race test: one appender
// streams batches while queriers snapshot and compactions run. Every
// snapshot must be an exact prefix of the append stream (closed-form
// aggregates), and repeated queries on one snapshot must be bit-for-bit
// identical.
func TestSnapshotConsistencyUnderConcurrency(t *testing.T) {
	const baseRows, appendRows, batch = 500, 2000, 37
	dir, base, eng := newBase(t, baseRows)
	w, err := Attach(dir, base, eng, Opts{SealRows: 200, CompactMinSegments: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()

	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(done)
		for start := baseRows; start < baseRows+appendRows; start += batch {
			n := batch
			if start+n > baseRows+appendRows {
				n = baseRows + appendRows - start
			}
			if err := w.Append(rowsTable(start, n)); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for q := 0; q < 3; q++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				snap, err := w.Snapshot()
				if err != nil {
					t.Error(err)
					return
				}
				n := int(snap.NumRows())
				if n < baseRows || n > baseRows+appendRows {
					t.Errorf("snapshot rows = %d out of range", n)
				}
				checkPrefix(t, snap, n)
				// Bit-for-bit repeatability on one snapshot.
				q1, err1 := snap.Query(`SELECT c, COUNT(*) AS cnt, SUM(v) AS s FROM data GROUP BY c ORDER BY c;`)
				q2, err2 := snap.Query(`SELECT c, COUNT(*) AS cnt, SUM(v) AS s FROM data GROUP BY c ORDER BY c;`)
				if err1 != nil || err2 != nil {
					t.Error(err1, err2)
				} else if fmt.Sprint(q1.Rows) != fmt.Sprint(q2.Rows) {
					t.Errorf("snapshot not repeatable:\n%v\n%v", q1.Rows, q2.Rows)
				}
				snap.Release()
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			if _, err := w.CompactNow(); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()

	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	snap, err := w.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Release()
	checkPrefix(t, snap, baseRows+appendRows)
}

// TestCrashBetweenSegmentAndCommit simulates the durability protocol's
// crash window: the process dies after the segment directory is written
// but before the generation manifest is claimed. A reopen must see
// exactly the previous generation and garbage-collect the orphan.
func TestCrashBetweenSegmentAndCommit(t *testing.T) {
	dir, base, eng := newBase(t, 100)
	w, err := Attach(dir, base, eng, Opts{SealRows: 10_000, CompactMinSegments: 100})
	if err != nil {
		t.Fatal(err)
	}
	// One committed generation first, so the crash has something to fall
	// back to.
	if err := w.Append(rowsTable(100, 50)); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	// Now crash mid-seal.
	if err := w.Append(rowsTable(150, 30)); err != nil {
		t.Fatal(err)
	}
	w.testBeforeCommit = func() { panic("simulated crash") }
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("expected simulated crash")
			}
		}()
		_ = w.Flush()
	}()

	// The orphan segment directory exists but no manifest references it.
	m, gen, err := readGenerations(dir)
	if err != nil || m == nil {
		t.Fatalf("readGenerations: %v %v", m, err)
	}
	if gen != 1 || len(m.Segments) != 1 || m.Segments[0].Rows != 50 {
		t.Fatalf("post-crash manifest = %+v (gen %d)", m, gen)
	}
	if n := countSegDirs(t, dir); n != 2 {
		t.Fatalf("expected committed segment + orphan, got %d dirs", n)
	}

	// Reopen: previous generation stays authoritative and the orphan is
	// collected, but the crashed seal's 30 rows were acknowledged appends
	// — WAL replay brings them back into the write buffer.
	w2 := reattach(t, dir, Opts{})
	defer w2.Close()
	if got := w2.Rows(); got != 180 {
		t.Fatalf("reopened rows = %d, want 180 (acked rows must survive the crashed seal)", got)
	}
	snap, err := w2.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Release()
	checkPrefix(t, snap, 180)
	if n := countSegDirs(t, dir); n != 1 {
		t.Fatalf("orphan segment not collected: %d dirs", n)
	}
}

// TestCompactionRetiresSegments: compaction folds segments into one; a
// snapshot pinned across it keeps its generation bit-for-bit, and the
// superseded segment directories are destroyed only at its release.
func TestCompactionRetiresSegments(t *testing.T) {
	dir, base, eng := newBase(t, 200)
	w, err := Attach(dir, base, eng, Opts{SealRows: 100, CompactMinSegments: 100})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	for start := 200; start < 600; start += 100 {
		if err := w.Append(rowsTable(start, 100)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	before := w.Stats()
	if before.Segments < 2 {
		t.Fatalf("need ≥2 segments, got %d", before.Segments)
	}

	snap, err := w.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	pinnedRes, err := snap.Query(`SELECT c, SUM(v) AS s FROM data GROUP BY c ORDER BY c;`)
	if err != nil {
		t.Fatal(err)
	}

	cst, err := w.CompactNow()
	if err != nil {
		t.Fatal(err)
	}
	if cst.Merged != before.Segments || cst.MergedRows != 400 {
		t.Fatalf("compact stats = %+v", cst)
	}
	after := w.Stats()
	if after.Segments != 1 {
		t.Fatalf("segments after compact = %d", after.Segments)
	}

	// The pinned snapshot still reads its retired segments, identically.
	again, err := snap.Query(`SELECT c, SUM(v) AS s FROM data GROUP BY c ORDER BY c;`)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(pinnedRes.Rows) != fmt.Sprint(again.Rows) {
		t.Fatalf("pinned snapshot changed across compaction:\n%v\n%v", pinnedRes.Rows, again.Rows)
	}
	if n := countSegDirs(t, dir); n != before.Segments+1 {
		t.Fatalf("retired dirs destroyed while pinned: %d dirs", n)
	}

	snap.Release()
	if n := countSegDirs(t, dir); n != 1 {
		t.Fatalf("retired dirs not destroyed at release: %d dirs", n)
	}

	// Fresh snapshots see the merged segment with the same answer.
	snap2, err := w.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer snap2.Release()
	checkPrefix(t, snap2, 600)
}

func TestAppendValidation(t *testing.T) {
	dir, base, eng := newBase(t, 10)
	w, err := Attach(dir, base, eng, Opts{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.Append(table.New("data").AddInt64Column("v", []int64{1})); err == nil {
		t.Fatal("missing column accepted")
	}
	bad := table.New("data").AddStringColumn("v", []string{"x"}).AddStringColumn("c", []string{"y"})
	if err := w.Append(bad); err == nil {
		t.Fatal("wrong kind accepted")
	}
	if !HasGenerations(dir) {
		// No seal yet — directory must not carry generations.
		t.Log("no generations before first seal, as expected")
	}
}
