package ingest

// The crash-recovery property test: kill the filesystem at a random
// point in the write stream, reopen, and require every acknowledged row
// back exactly once, bit-for-bit. This is the test the WAL exists to
// pass — the other ingest tests check the protocol's happy paths; this
// one checks every interleaving of crash point with append, WAL frame,
// fsync, segment build, generation commit, WAL retirement and
// compaction that the write-unit budget can land on.

import (
	"fmt"
	"io/fs"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"powerdrill/internal/colstore"
	"powerdrill/internal/exec"
	"powerdrill/internal/faultfs"
	"powerdrill/internal/memmgr"
)

const crashBaseRows = 64

// copyTree copies the template store into a fresh trial directory.
func copyTree(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.WalkDir(src, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, _ := filepath.Rel(src, path)
		target := filepath.Join(dst, rel)
		if d.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		blob, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(target, blob, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
}

// abandonForTest simulates the process dying: background goroutines are
// stopped and file handles released, but nothing is sealed, flushed or
// committed — whatever is on disk is what the "restarted process" finds.
func (w *Writer) abandonForTest() {
	w.mu.Lock()
	already := w.closed
	w.closed = true
	mem := w.mem
	sealing := append([]*writeChunk(nil), w.sealing...)
	w.mu.Unlock()
	if !already {
		close(w.done)
	}
	w.wg.Wait()
	if mem != nil && mem.wal != nil {
		_ = mem.wal.close()
	}
	for _, c := range sealing {
		if c.wal != nil {
			_ = c.wal.close()
		}
	}
	w.closeSegments()
}

// crashScript drives one deterministic append workload against dir until
// it completes or the injected filesystem crashes. It returns the global
// row indices of every acknowledged append, and of the batch in flight
// when the crash hit (nil if none): that batch's WAL frame may or may
// not have completed, so recovery may legally include it — whole, at the
// end, or not at all.
func crashScript(t *testing.T, dir string, rng *rand.Rand) (acked []int64, pending []int64) {
	t.Helper()
	lazy, _, err := colstore.OpenLazy(dir, memmgr.New(0, ""))
	if err != nil {
		// The manifest read itself can hit the crashed filesystem.
		return nil, nil
	}
	w, err := Attach(dir, lazy, exec.New(lazy, exec.Options{}), Opts{
		SealRows:           24,
		CompactMinSegments: 3,
		FsyncPolicy:        FsyncAlways,
	})
	if err != nil {
		_ = lazy.Close()
		return nil, nil
	}
	defer func() {
		w.abandonForTest()
		_ = lazy.Close()
	}()

	cur := int64(crashBaseRows)
	for i := 0; i < 14; i++ {
		n := 3 + rng.Intn(12)
		if err := w.Append(rowsTable(int(cur), n)); err != nil {
			for j := int64(0); j < int64(n); j++ {
				pending = append(pending, cur+j)
			}
			return acked, pending
		}
		for j := int64(0); j < int64(n); j++ {
			acked = append(acked, cur+j)
		}
		cur += int64(n)
		if rng.Intn(4) == 0 {
			if err := w.Flush(); err != nil {
				return acked, nil
			}
		}
	}
	return acked, nil
}

// verifyRecovered reopens the trial directory on the real filesystem and
// checks the recovered stream: the base rows plus every acked row,
// optionally followed by the whole pending batch — each exactly once,
// with every column value intact.
func verifyRecovered(t *testing.T, trial int, dir string, acked, pending []int64) {
	t.Helper()
	w := reattach(t, dir, Opts{SealRows: 24, CompactMinSegments: 3})
	defer func() {
		w.abandonForTest()
		_ = w.base.Close()
	}()
	snap, err := w.Snapshot()
	if err != nil {
		t.Fatalf("trial %d: snapshot: %v", trial, err)
	}
	defer snap.Release()
	res, err := snap.Query(`SELECT v, c FROM data ORDER BY v;`)
	if err != nil {
		t.Fatalf("trial %d: query: %v", trial, err)
	}

	want := make([]int64, 0, crashBaseRows+len(acked)+len(pending))
	for i := int64(0); i < crashBaseRows; i++ {
		want = append(want, i)
	}
	want = append(want, acked...)
	switch len(res.Rows) {
	case len(want):
	case len(want) + len(pending):
		if len(pending) == 0 {
			t.Fatalf("trial %d: recovered %d rows, want %d", trial, len(res.Rows), len(want))
		}
		// The in-flight batch's frame completed before the crash: it is
		// recovered whole.
		want = append(want, pending...)
	default:
		t.Fatalf("trial %d: recovered %d rows, want %d (or %d with the in-flight batch)",
			trial, len(res.Rows), len(want), len(want)+len(pending))
	}
	for i, row := range res.Rows {
		v := row[0].Int()
		if v != want[i] {
			t.Fatalf("trial %d: row %d has v=%d, want %d (lost or duplicated row)", trial, i, v, want[i])
		}
		if c := row[1].Str(); c != "c"+strconv.Itoa(int(v%5)) {
			t.Fatalf("trial %d: row v=%d has c=%q (corrupt value)", trial, v, c)
		}
	}
}

// TestCrashRecoveryProperty is the randomized kill-point sweep. Each
// trial copies a pristine base store, measures the workload's total
// write units with a dry run, then re-runs it with the budget cut at a
// uniformly random unit and requires recovery to be exact. Trials reuse
// the process-global filesystem seam, so this test must not run in
// parallel with other disk-touching tests.
func TestCrashRecoveryProperty(t *testing.T) {
	trials := 200
	if testing.Short() {
		trials = 25
	}

	tmpl := t.TempDir()
	cs, err := colstore.FromTable(rowsTable(0, crashBaseRows), baseOpts)
	if err != nil {
		t.Fatal(err)
	}
	if err := colstore.Save(cs, tmpl, "zippy"); err != nil {
		t.Fatal(err)
	}

	root := t.TempDir()
	for trial := 0; trial < trials; trial++ {
		seed := int64(1000 + trial)

		// Dry run: same script, unlimited budget, count write units.
		dryDir := filepath.Join(root, fmt.Sprintf("dry-%03d", trial))
		copyTree(t, tmpl, dryDir)
		dry := faultfs.NewInjector(faultfs.OS{}, faultfs.InjectorOptions{WriteBudget: -1})
		restore := faultfs.Swap(dry)
		dryAcked, dryPending := crashScript(t, dryDir, rand.New(rand.NewSource(seed)))
		restore()
		units := dry.Stats().Units
		if len(dryPending) != 0 || units <= 0 {
			t.Fatalf("trial %d: dry run failed (units=%d, pending=%d)", trial, units, len(dryPending))
		}
		_ = os.RemoveAll(dryDir)

		// Crash run: cut the write stream at a random unit.
		kill := 1 + rand.New(rand.NewSource(seed*7919)).Int63n(units)
		dir := filepath.Join(root, fmt.Sprintf("trial-%03d", trial))
		copyTree(t, tmpl, dir)
		inj := faultfs.NewInjector(faultfs.OS{}, faultfs.InjectorOptions{WriteBudget: kill})
		restore = faultfs.Swap(inj)
		acked, pending := crashScript(t, dir, rand.New(rand.NewSource(seed)))
		restore()
		if len(acked) == len(dryAcked) && !inj.Crashed() {
			// Budget outlasted the workload (background compaction makes
			// unit totals vary slightly): a clean run must still verify.
			pending = nil
		}

		verifyRecovered(t, trial, dir, acked, pending)
		_ = os.RemoveAll(dir)
	}
}
