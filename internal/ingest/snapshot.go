package ingest

import (
	"sync"

	"powerdrill/internal/exec"
	"powerdrill/internal/sql"
)

// Snapshot is one consistent cut of the append stream: the base store,
// the committed segments of one generation (pinned against retirement),
// the sealed-but-uncommitted buffers in full, and a frozen prefix of the
// live write buffer. Every query run against the same snapshot sees
// bit-for-bit the same rows, however many appends, seals or compactions
// land concurrently. Release the snapshot when done; a snapshot is safe
// for concurrent queries.
type Snapshot struct {
	w *Writer
	// units are the queryable parts in a fixed order (base, segments in
	// manifest order, sealed buffers in seal order, frozen live prefix),
	// so merge order — and therefore the result — is deterministic.
	units []unit
	// pinned are the segments whose refs this snapshot holds.
	pinned []*segment
	rows   int64

	mu       sync.Mutex
	released bool
}

// unit is one queryable part of a snapshot.
type unit struct {
	eng  *exec.Engine
	rows int
}

// Snapshot takes a consistent cut. The cut point is chosen in one mu
// critical section — generation segment list, sealed buffers, live-buffer
// row count — which is exactly why seal marks buffers sealed *inside*
// that same lock: everything the cut sees is a prefix of the append
// stream. Freezing the buffer prefix (an in-memory import) happens after
// the lock is dropped.
func (w *Writer) Snapshot() (*Snapshot, error) {
	w.mu.Lock()
	pinned := make([]*segment, len(w.segs))
	for i, s := range w.segs {
		s.refs++
		pinned[i] = s
	}
	sealing := append([]*writeChunk(nil), w.sealing...)
	mem := w.mem
	memRows := mem.curRows()
	w.mu.Unlock()

	snap := &Snapshot{w: w, pinned: pinned}
	fail := func(err error) (*Snapshot, error) {
		snap.Release()
		return nil, err
	}
	if rows := w.base.NumRows(); rows > 0 {
		snap.units = append(snap.units, unit{eng: w.baseEng, rows: rows})
	}
	for _, s := range pinned {
		snap.units = append(snap.units, unit{eng: s.eng, rows: s.rows})
	}
	for _, c := range sealing {
		fv, err := c.freezeAt(c.curRows(), w)
		if err != nil {
			return fail(err)
		}
		if fv != nil {
			snap.units = append(snap.units, unit{eng: fv.eng, rows: fv.rows})
		}
	}
	fv, err := mem.freezeAt(memRows, w)
	if err != nil {
		return fail(err)
	}
	if fv != nil {
		snap.units = append(snap.units, unit{eng: fv.eng, rows: fv.rows})
	}
	if len(snap.units) == 0 {
		// Empty store, nothing appended: query the base so callers still
		// get a well-formed (empty) result.
		snap.units = append(snap.units, unit{eng: w.baseEng})
	}
	for _, u := range snap.units {
		snap.rows += int64(u.rows)
	}
	return snap, nil
}

// NumRows returns the number of rows the snapshot covers.
func (s *Snapshot) NumRows() int64 { return s.rows }

// Query parses and runs a SQL query against the snapshot.
func (s *Snapshot) Query(src string) (*exec.Result, error) {
	stmt, err := sql.Parse(src)
	if err != nil {
		return nil, err
	}
	return s.Run(stmt)
}

// Run executes a parsed statement against the snapshot. A single-unit
// snapshot (no appends yet, or everything compacted into the base) runs
// the plain engine — full feature compatibility. A multi-unit snapshot
// runs each unit and merges: aggregates through the same partial
// machinery the distributed tree uses (Section 4), row scans by
// concatenating per-unit scans in unit order and applying ORDER BY and
// LIMIT once at the end. COUNT(DISTINCT x) merges as a sketch, so exact
// distinct mode only works single-unit — the same restriction the
// cluster has.
func (s *Snapshot) Run(stmt *sql.SelectStmt) (*exec.Result, error) {
	if len(s.units) == 1 {
		res, err := s.units[0].eng.Run(stmt)
		if err != nil {
			return nil, err
		}
		res.Stats.RowsTotal = s.rows
		res.Stats.RowsCovered = s.rows
		return res, nil
	}
	hasAgg := false
	for _, item := range stmt.Items {
		if sql.HasAggregate(item.Expr) {
			hasAgg = true
			break
		}
	}
	if !hasAgg && len(stmt.GroupBy) == 0 {
		return s.runRowScan(stmt)
	}
	return s.runAggregate(stmt)
}

// runAggregate merges per-unit partials in unit order.
func (s *Snapshot) runAggregate(stmt *sql.SelectStmt) (*exec.Result, error) {
	var merged *exec.Partial
	for _, u := range s.units {
		p, err := u.eng.RunPartial(stmt)
		if err != nil {
			return nil, err
		}
		if merged == nil {
			merged = p
			continue
		}
		if err := exec.MergePartials(merged, p); err != nil {
			return nil, err
		}
	}
	return exec.FinalizePartial(stmt, merged)
}

// runRowScan concatenates per-unit projections in unit order. Each unit
// runs with the LIMIT stripped (a per-unit limit would cut rows the
// global limit keeps); ORDER BY and LIMIT apply once to the assembled
// result, as at the root of the serving tree.
func (s *Snapshot) runRowScan(stmt *sql.SelectStmt) (*exec.Result, error) {
	sub := *stmt
	sub.Limit = -1
	var out *exec.Result
	for _, u := range s.units {
		res, err := u.eng.Run(&sub)
		if err != nil {
			return nil, err
		}
		if out == nil {
			out = res
			continue
		}
		out.Rows = append(out.Rows, res.Rows...)
		addQueryStats(&out.Stats, res.Stats)
	}
	out.Stats.RowsTotal = s.rows
	out.Stats.RowsCovered = s.rows
	out.Coverage = 1
	exec.ApplyOrderLimit(stmt, out)
	return out, nil
}

// addQueryStats folds one unit's execution counters into the total.
func addQueryStats(dst *exec.QueryStats, src exec.QueryStats) {
	dst.ChunksTotal += src.ChunksTotal
	dst.ChunksSkipped += src.ChunksSkipped
	dst.ChunksCached += src.ChunksCached
	dst.ChunksScanned += src.ChunksScanned
	dst.RowsScanned += src.RowsScanned
	dst.RowsCached += src.RowsCached
	dst.RowsSkipped += src.RowsSkipped
	dst.CellsCovered += src.CellsCovered
	dst.CellsScanned += src.CellsScanned
	dst.ActiveChunks += src.ActiveChunks
	dst.SkippedChunks += src.SkippedChunks
	dst.ColdLoads += src.ColdLoads
	dst.ColdChunkLoads += src.ColdChunkLoads
	dst.ColdDictLoads += src.ColdDictLoads
	dst.ColdBytesLoaded += src.ColdBytesLoaded
	dst.DiskBytesRead += src.DiskBytesRead
	dst.ChecksumVerified += src.ChecksumVerified
	dst.ChecksumFailed += src.ChecksumFailed
	dst.CacheSkippedChunks += src.CacheSkippedChunks
	dst.ReadRuns += src.ReadRuns
	dst.CoalescedReads += src.CoalescedReads
}

// Release drops the snapshot's segment pins. The last release of a
// segment retired by compaction destroys it: directory removed, cache
// entries dropped from the memory budget, file handles closed.
func (s *Snapshot) Release() {
	s.mu.Lock()
	if s.released {
		s.mu.Unlock()
		return
	}
	s.released = true
	s.mu.Unlock()

	var destroy []*segment
	s.w.mu.Lock()
	for _, seg := range s.pinned {
		seg.refs--
		if seg.retired && seg.refs == 0 {
			destroy = append(destroy, seg)
		}
	}
	s.w.mu.Unlock()
	for _, seg := range destroy {
		s.w.destroySegment(seg)
	}
}
