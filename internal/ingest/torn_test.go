package ingest

// Torn-commit coverage: a generation manifest that a crashed writer left
// unparseable, bit-flipped, or half-written must never mask the previous
// good generation — readers skip it, and the next Attach sweeps it.

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// tornStore builds a store with one committed ingest generation and
// returns (dir, committed row count).
func tornStore(t *testing.T) (string, int) {
	t.Helper()
	dir, lazy, eng := newBase(t, 100)
	w, err := Attach(dir, lazy, eng, Opts{SealRows: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(rowsTable(100, 40)); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := lazy.Close(); err != nil {
		t.Fatal(err)
	}
	return dir, 140
}

// newestGen returns the highest committed generation number in dir.
func newestGen(t *testing.T, dir string) int {
	t.Helper()
	m, gen, err := readGenerations(dir)
	if err != nil || m == nil {
		t.Fatalf("no committed generation (err=%v)", err)
	}
	return gen
}

// TestTornGenerationManifestSkipped: three flavors of a crashed commit's
// higher-numbered garbage — unparseable bytes, a truncated copy of a
// real manifest, and a parseable manifest whose integrity check fails —
// are each skipped on open (the previous generation stays authoritative)
// and swept by the next Attach.
func TestTornGenerationManifestSkipped(t *testing.T) {
	blobFor := func(dir string) []byte {
		blob, err := os.ReadFile(filepath.Join(dir, genName(newestGen(t, dir))))
		if err != nil {
			t.Fatal(err)
		}
		return blob
	}
	cases := []struct {
		name string
		blob func(dir string) []byte
	}{
		{"garbage", func(dir string) []byte { return []byte("{not json") }},
		{"truncated", func(dir string) []byte { b := blobFor(dir); return b[:len(b)/2] }},
		{"bit-flipped", func(dir string) []byte {
			// Flip inside the segment list so the JSON still parses but
			// the Check CRC no longer matches.
			b := blobFor(dir)
			at := strings.Index(string(b), "seg-")
			if at < 0 {
				t.Fatal("no segment dir in manifest")
			}
			b[at+4] ^= 0x01
			return b
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir, rows := tornStore(t)
			good := newestGen(t, dir)
			tornName := genName(good + 1)
			if err := os.WriteFile(filepath.Join(dir, tornName), tc.blob(dir), 0o644); err != nil {
				t.Fatal(err)
			}

			// Readers skip the torn file: the good generation answers.
			m, gen, err := readGenerations(dir)
			if err != nil || m == nil || gen != good {
				t.Fatalf("readGenerations = gen %d, err %v; want gen %d", gen, err, good)
			}

			// A restarted writer sees all committed rows and sweeps the
			// garbage.
			w := reattach(t, dir, Opts{SealRows: 1 << 20})
			defer func() {
				w.Close()
				w.base.Close()
			}()
			snap, err := w.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			checkPrefix(t, snap, rows)
			snap.Release()
			if _, err := os.Stat(filepath.Join(dir, tornName)); !os.IsNotExist(err) {
				t.Fatalf("torn manifest %s not swept on attach (err=%v)", tornName, err)
			}
			if _, err := os.Stat(filepath.Join(dir, genName(good))); err != nil {
				t.Fatalf("good manifest swept: %v", err)
			}
		})
	}
}

// TestTornGenerationCommitScrubVerdict: the scrub names a torn
// generation manifest rather than failing the walk.
func TestTornGenerationCommitScrubVerdict(t *testing.T) {
	dir, _ := tornStore(t)
	tornName := genName(newestGen(t, dir) + 1)
	if err := os.WriteFile(filepath.Join(dir, tornName), []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err := ScrubStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	f := findFile(t, rep, tornName)
	if f.OK() {
		t.Fatal("torn gen manifest scrubs clean")
	}
	if rep.Corrupt != 1 {
		t.Fatalf("corrupt = %d, want 1", rep.Corrupt)
	}
}
