// Package ingest is the streaming append path: rows arrive through a
// Writer, buffer in a dictionary-encoded in-memory write chunk, and are
// sealed into immutable on-disk *segments* committed through a chain of
// numbered generation manifests. A query pins one generation (plus the
// sealed-but-uncommitted chunks and a frozen prefix of the write buffer)
// and sees a bit-for-bit consistent cut of the append stream while
// appends, seals and compactions continue underneath it.
//
// The paper's system assumes data is imported in bulk (Section 2.2); this
// package grows that pipeline into an LSM-shaped ingestion path that
// reuses it wholesale: every sealed segment is a full colstore built by
// the same FromTable import (same partitioning, reordering and dictionary
// options as the base store) and saved in the same v3 on-disk format, so
// the lazy reader, memory budget and chunk-skipping machinery apply to
// appended data unchanged.
//
// Durability protocol. A store directory with appends holds
//
//	<dir>/MANIFEST.gen-000007.json   the newest generation manifest
//	<dir>/segs/seg-000012/...        one colstore per sealed segment
//
// next to the untouched base manifest. Sealing writes the segment
// directory first, then commits by claiming the *next* generation file
// exclusively (colstore.ClaimFileExclusive); readers take the highest
// generation that parses. A crash between the two leaves an orphan
// segment directory and no manifest — the previous generation stays
// authoritative and the orphan is garbage-collected on the next Attach.
// Readers that predate this package ignore MANIFEST.gen-* files entirely
// and keep seeing the base store.
package ingest

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"powerdrill/internal/colstore"
)

// Generation manifests live at the store root so HasGenerations can
// decide with one directory listing; segment directories live under segs/.
const (
	genPrefix  = "MANIFEST.gen-"
	genSuffix  = ".json"
	segsSubdir = "segs"
)

// genName renders the manifest file name of a generation.
func genName(gen int) string {
	return fmt.Sprintf("%s%06d%s", genPrefix, gen, genSuffix)
}

// segRel renders the store-relative directory of a segment.
func segRel(seq int) string {
	return filepath.Join(segsSubdir, fmt.Sprintf("seg-%06d", seq))
}

// genSegment is one sealed segment as recorded in a generation manifest.
type genSegment struct {
	// Dir is the segment's directory relative to the store root.
	Dir string `json:"dir"`
	// Rows is the segment's row count (recorded so reopen and stats do
	// not need to open the segment to know its size).
	Rows int `json:"rows"`
}

// genManifest is one committed generation: the complete list of live
// segments. Each seal or compaction writes a whole new manifest rather
// than editing the previous one, so a generation is immutable once its
// file exists and a reader holding it never sees the segment list change.
type genManifest struct {
	Gen int `json:"gen"`
	// NextSeg is the next unused segment sequence number. It only grows,
	// even across compactions that shrink the segment list, so a retired
	// segment's directory name is never reused while a snapshot might
	// still hold it.
	NextSeg  int          `json:"next_seg"`
	Segments []genSegment `json:"segments"`
}

// HasGenerations reports whether dir carries ingest generations — i.e.
// whether a store was ever appended to. Used by the public Open to decide
// to attach a Writer; errors read as "no".
func HasGenerations(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, ent := range entries {
		if _, ok := colstore.ParseGenSeq(ent.Name(), genPrefix, genSuffix); ok {
			return true
		}
	}
	return false
}

// readGenerations scans dir for the newest parseable generation manifest.
// Unreadable or torn files are skipped (a crashed writer's partial claim
// must not mask the previous generation). Returns (nil, 0, nil) when the
// directory has no generations at all.
func readGenerations(dir string) (*genManifest, int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, 0, err
	}
	var best *genManifest
	bestGen := -1
	for _, ent := range entries {
		gen, ok := colstore.ParseGenSeq(ent.Name(), genPrefix, genSuffix)
		if !ok || gen <= bestGen {
			continue
		}
		blob, err := os.ReadFile(filepath.Join(dir, ent.Name()))
		if err != nil {
			continue
		}
		var m genManifest
		if json.Unmarshal(blob, &m) != nil || m.Gen != gen {
			continue
		}
		best, bestGen = &m, gen
	}
	if best == nil {
		return nil, 0, nil
	}
	return best, bestGen, nil
}

// commitGeneration claims gen's manifest file exclusively. fs.ErrExist
// means another writer committed this generation first — with the
// single-writer-per-directory contract that is a usage error, surfaced
// rather than merged.
func commitGeneration(dir string, m *genManifest) error {
	blob, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return colstore.ClaimFileExclusive(filepath.Join(dir, genName(m.Gen)), blob)
}

// gcGenerations removes superseded generation manifests (gen < keep) and
// orphan segment directories not referenced by the keep manifest — the
// leftovers of a writer that crashed between writing a segment and
// committing it, or of retirements whose removal was interrupted. Only
// called from Attach, before any snapshot exists, so nothing live can
// reference what it deletes. Removal errors are ignored: garbage that
// survives is re-collected next time.
func gcGenerations(dir string, keep *genManifest) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, ent := range entries {
		name := ent.Name()
		if gen, ok := colstore.ParseGenSeq(name, genPrefix, genSuffix); ok && gen < keep.Gen {
			_ = os.Remove(filepath.Join(dir, name))
		}
		if strings.HasPrefix(name, genPrefix) && strings.HasSuffix(name, ".tmp") {
			_ = os.Remove(filepath.Join(dir, name))
		}
	}
	live := make(map[string]bool, len(keep.Segments))
	for _, seg := range keep.Segments {
		live[filepath.Base(seg.Dir)] = true
	}
	segEntries, err := os.ReadDir(filepath.Join(dir, segsSubdir))
	if err != nil {
		return
	}
	for _, ent := range segEntries {
		if !live[ent.Name()] {
			_ = os.RemoveAll(filepath.Join(dir, segsSubdir, ent.Name()))
		}
	}
}
