// Package ingest is the streaming append path: rows arrive through a
// Writer, buffer in a dictionary-encoded in-memory write chunk, and are
// sealed into immutable on-disk *segments* committed through a chain of
// numbered generation manifests. A query pins one generation (plus the
// sealed-but-uncommitted chunks and a frozen prefix of the write buffer)
// and sees a bit-for-bit consistent cut of the append stream while
// appends, seals and compactions continue underneath it.
//
// The paper's system assumes data is imported in bulk (Section 2.2); this
// package grows that pipeline into an LSM-shaped ingestion path that
// reuses it wholesale: every sealed segment is a full colstore built by
// the same FromTable import (same partitioning, reordering and dictionary
// options as the base store) and saved in the same v3 on-disk format, so
// the lazy reader, memory budget and chunk-skipping machinery apply to
// appended data unchanged.
//
// Durability protocol. A store directory with appends holds
//
//	<dir>/MANIFEST.gen-000007.json   the newest generation manifest
//	<dir>/segs/seg-000012/...        one colstore per sealed segment
//
// next to the untouched base manifest. Sealing writes the segment
// directory first, then commits by claiming the *next* generation file
// exclusively (colstore.ClaimFileExclusive); readers take the highest
// generation that parses. A crash between the two leaves an orphan
// segment directory and no manifest — the previous generation stays
// authoritative and the orphan is garbage-collected on the next Attach.
// Readers that predate this package ignore MANIFEST.gen-* files entirely
// and keep seeing the base store.
package ingest

import (
	"encoding/json"
	"fmt"
	"path/filepath"
	"strings"

	"powerdrill/internal/colstore"
)

// Generation manifests live at the store root so HasGenerations can
// decide with one directory listing; segment directories live under segs/.
const (
	genPrefix  = "MANIFEST.gen-"
	genSuffix  = ".json"
	segsSubdir = "segs"
)

// genName renders the manifest file name of a generation.
func genName(gen int) string {
	return fmt.Sprintf("%s%06d%s", genPrefix, gen, genSuffix)
}

// segRel renders the store-relative directory of a segment.
func segRel(seq int) string {
	return filepath.Join(segsSubdir, fmt.Sprintf("seg-%06d", seq))
}

// genSegment is one sealed segment as recorded in a generation manifest.
type genSegment struct {
	// Dir is the segment's directory relative to the store root.
	Dir string `json:"dir"`
	// Rows is the segment's row count (recorded so reopen and stats do
	// not need to open the segment to know its size).
	Rows int `json:"rows"`
}

// genManifest is one committed generation: the complete list of live
// segments. Each seal or compaction writes a whole new manifest rather
// than editing the previous one, so a generation is immutable once its
// file exists and a reader holding it never sees the segment list change.
type genManifest struct {
	Gen int `json:"gen"`
	// NextSeg is the next unused segment sequence number. It only grows,
	// even across compactions that shrink the segment list, so a retired
	// segment's directory name is never reused while a snapshot might
	// still hold it.
	NextSeg  int          `json:"next_seg"`
	Segments []genSegment `json:"segments"`
	// WalFloor retires every WAL sequence below it: their rows are
	// committed in Segments, so replay skips (and deletes) those files.
	// The floor is the lowest sequence any not-yet-committed write chunk
	// still holds; it only rises.
	WalFloor int `json:"wal_floor,omitempty"`
	// WalDone lists committed WAL sequences at or above WalFloor — the
	// sequences of this commit's chunk (and earlier commits) that an
	// older uncommitted chunk's sequence still pins below the floor.
	// Their files are deleted right after the commit; the list covers
	// the crash window between commit and deletion.
	WalDone []int `json:"wal_done,omitempty"`
	// Check is the CRC32C of the manifest's canonical marshal with this
	// field zeroed: a torn or bit-flipped generation file fails the
	// check and is skipped exactly like one that fails to parse.
	Check uint32 `json:"check,omitempty"`
}

// checkedManifestBlob marshals m with its integrity checksum filled in.
func checkedManifestBlob(m *genManifest) ([]byte, error) {
	m.Check = 0
	blob, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, err
	}
	m.Check = colstore.CRC32C(blob)
	return json.MarshalIndent(m, "", "  ")
}

// manifestCheckOK verifies a parsed generation manifest against its
// Check field by re-marshaling canonically with the field zeroed. Files
// written before checksums (Check == 0) pass.
func manifestCheckOK(m *genManifest) bool {
	if m.Check == 0 {
		return true
	}
	check := m.Check
	m.Check = 0
	canon, err := json.MarshalIndent(m, "", "  ")
	m.Check = check
	return err == nil && colstore.CRC32C(canon) == check
}

// HasGenerations reports whether dir carries ingest state — a committed
// generation manifest, or WAL files left by a writer that crashed before
// its first commit (those rows must be recovered, so the public Open
// must attach a Writer for them too). Errors read as "no".
func HasGenerations(dir string) bool {
	entries, err := vfs().ReadDir(dir)
	if err != nil {
		return false
	}
	for _, ent := range entries {
		if _, ok := colstore.ParseGenSeq(ent.Name(), genPrefix, genSuffix); ok {
			return true
		}
	}
	if seqs, err := listWALFiles(dir); err == nil && len(seqs) > 0 {
		return true
	}
	return false
}

// readGenerations scans dir for the newest parseable generation manifest.
// Unreadable or torn files are skipped (a crashed writer's partial claim
// must not mask the previous generation). Returns (nil, 0, nil) when the
// directory has no generations at all.
func readGenerations(dir string) (*genManifest, int, error) {
	entries, err := vfs().ReadDir(dir)
	if err != nil {
		return nil, 0, err
	}
	var best *genManifest
	bestGen := -1
	for _, ent := range entries {
		gen, ok := colstore.ParseGenSeq(ent.Name(), genPrefix, genSuffix)
		if !ok || gen <= bestGen {
			continue
		}
		blob, err := vfs().ReadFile(filepath.Join(dir, ent.Name()))
		if err != nil {
			continue
		}
		var m genManifest
		if json.Unmarshal(blob, &m) != nil || m.Gen != gen || !manifestCheckOK(&m) {
			continue
		}
		best, bestGen = &m, gen
	}
	if best == nil {
		return nil, 0, nil
	}
	return best, bestGen, nil
}

// commitGeneration claims gen's manifest file exclusively. fs.ErrExist
// means another writer committed this generation first — with the
// single-writer-per-directory contract that is a usage error, surfaced
// rather than merged.
func commitGeneration(dir string, m *genManifest) error {
	blob, err := checkedManifestBlob(m)
	if err != nil {
		return err
	}
	return colstore.ClaimFileExclusive(filepath.Join(dir, genName(m.Gen)), blob)
}

// gcGenerations removes superseded generation manifests (gen < keep),
// torn manifests that failed to read (keep is the newest *parseable*
// generation and this writer holds the directory, so any other numbered
// file is a crashed commit's garbage), and orphan segment directories
// not referenced by the keep manifest — the leftovers of a writer that
// crashed between writing a segment and committing it, or of
// retirements whose removal was interrupted. WAL files are never
// touched: the replay pass owns their lifecycle, and sweeping one here
// would throw away acknowledged rows. keep may be nil (no committed
// generation): every numbered manifest is then garbage and so is every
// segment directory. Only called from Attach, before any snapshot
// exists and before WAL replay, so nothing live can reference what it
// deletes. Removal errors are ignored: garbage that survives is
// re-collected next time.
func gcGenerations(dir string, keep *genManifest) {
	keepGen := -1
	var keepSegs []genSegment
	if keep != nil {
		keepGen = keep.Gen
		keepSegs = keep.Segments
	}
	entries, err := vfs().ReadDir(dir)
	if err != nil {
		return
	}
	for _, ent := range entries {
		name := ent.Name()
		if gen, ok := colstore.ParseGenSeq(name, genPrefix, genSuffix); ok && gen != keepGen {
			_ = vfs().Remove(filepath.Join(dir, name))
		}
		if strings.HasPrefix(name, genPrefix) && strings.HasSuffix(name, ".tmp") {
			_ = vfs().Remove(filepath.Join(dir, name))
		}
	}
	live := make(map[string]bool, len(keepSegs))
	for _, seg := range keepSegs {
		live[filepath.Base(seg.Dir)] = true
	}
	segEntries, err := vfs().ReadDir(filepath.Join(dir, segsSubdir))
	if err != nil {
		return
	}
	for _, ent := range segEntries {
		if _, isWal := isWalName(ent.Name()); isWal {
			continue
		}
		if !live[ent.Name()] {
			_ = vfs().RemoveAll(filepath.Join(dir, segsSubdir, ent.Name()))
		}
	}
}
