package enc

import (
	"math/rand"
	"testing"
)

// oracleBitmap mirrors a Bitmap with a plain map of set indices — the
// obviously-correct model the word-parallel implementation is checked
// against, operation by operation.
type oracleBitmap struct {
	n   int
	set map[int]bool
}

func newOracle(n int) *oracleBitmap { return &oracleBitmap{n: n, set: make(map[int]bool)} }

func (o *oracleBitmap) and(p *oracleBitmap) {
	for i := range o.set {
		if !p.set[i] {
			delete(o.set, i)
		}
	}
}

func (o *oracleBitmap) or(p *oracleBitmap) {
	for i := range p.set {
		o.set[i] = true
	}
}

func (o *oracleBitmap) not() {
	next := make(map[int]bool, o.n)
	for i := 0; i < o.n; i++ {
		if !o.set[i] {
			next[i] = true
		}
	}
	o.set = next
}

// requireEqual checks every observable of the Bitmap against the oracle:
// Get per index, Count, None, All, and the index sequence ForEach yields
// (which must also be strictly ascending).
func requireEqual(t *testing.T, b *Bitmap, o *oracleBitmap, ctx string) {
	t.Helper()
	if b.Len() != o.n {
		t.Fatalf("%s: Len = %d, want %d", ctx, b.Len(), o.n)
	}
	if b.Count() != len(o.set) {
		t.Fatalf("%s: Count = %d, want %d", ctx, b.Count(), len(o.set))
	}
	if b.None() != (len(o.set) == 0) {
		t.Fatalf("%s: None = %v with %d set", ctx, b.None(), len(o.set))
	}
	if b.All() != (len(o.set) == o.n) {
		t.Fatalf("%s: All = %v with %d/%d set", ctx, b.All(), len(o.set), o.n)
	}
	for i := 0; i < o.n; i++ {
		if b.Get(i) != o.set[i] {
			t.Fatalf("%s: Get(%d) = %v, want %v", ctx, i, b.Get(i), o.set[i])
		}
	}
	prev := -1
	b.ForEach(func(i int) {
		if i <= prev {
			t.Fatalf("%s: ForEach not ascending: %d after %d", ctx, i, prev)
		}
		if !o.set[i] {
			t.Fatalf("%s: ForEach yielded unset index %d", ctx, i)
		}
		prev = i
	})
}

// runBitmapOracle drives one random op sequence over a (Bitmap, oracle)
// pair and a second pair that the binary ops draw their operand from.
func runBitmapOracle(t *testing.T, seed int64, n int, ops int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b, o := NewBitmap(n), newOracle(n)
	other, otherO := NewBitmap(n), newOracle(n)
	for i := 0; i < n; i++ {
		if rng.Intn(2) == 0 {
			other.Set(i)
			otherO.set[i] = true
		}
	}
	for step := 0; step < ops; step++ {
		switch op := rng.Intn(8); op {
		case 0:
			if n > 0 {
				i := rng.Intn(n)
				b.Set(i)
				o.set[i] = true
			}
		case 1:
			if n > 0 {
				i := rng.Intn(n)
				b.Clear(i)
				delete(o.set, i)
			}
		case 2:
			b.And(other)
			o.and(otherO)
		case 3:
			b.Or(other)
			o.or(otherO)
		case 4:
			b.Not()
			o.not()
		case 5:
			b.SetAll()
			for i := 0; i < n; i++ {
				o.set[i] = true
			}
		case 6:
			b.ClearAll()
			o.set = make(map[int]bool)
		case 7:
			b.AndNot(other)
			for i := range otherO.set {
				delete(o.set, i)
			}
		}
		requireEqual(t, b, o, "after op")
	}
}

// TestBitmapVsOracleProperty exercises random op sequences across sizes
// that cover the word-boundary cases (0, 1, 63, 64, 65, two words, many).
func TestBitmapVsOracleProperty(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 128, 200, 1000} {
		for seed := int64(0); seed < 5; seed++ {
			runBitmapOracle(t, seed, n, 40)
		}
	}
}

// FuzzBitmapVsOracle lets the fuzzer pick the size and op sequence.
func FuzzBitmapVsOracle(f *testing.F) {
	f.Add(int64(1), uint16(64), uint8(20))
	f.Add(int64(99), uint16(0), uint8(5))
	f.Add(int64(-3), uint16(1027), uint8(60))
	f.Fuzz(func(t *testing.T, seed int64, n uint16, ops uint8) {
		runBitmapOracle(t, seed, int(n)%2048, int(ops)%64)
	})
}
