// Package enc implements the element encodings of the paper's Section 3
// ("Optimize Encoding of Elements in Columns"). The elements of a chunk —
// the sequence of chunk-ids that describes a column's values — are stored
// in the narrowest width the chunk-dictionary cardinality allows:
//
//	1 distinct value          → 0 bits per element (constant)
//	2 distinct values         → 1 bit  per element (bit-set)
//	≤ 2^8 distinct values     → 1 byte per element
//	≤ 2^16 distinct values    → 2 bytes per element
//	otherwise                 → 4 bytes per element
//
// The Basic variant of Section 2.3 always uses 4 bytes; EncodeFixed32
// produces it so the experiments can measure the difference.
//
// Sequences expose bulk operations (CountInto, Materialize) so the group-by
// inner loop of Section 2.4 — counts[elements[row]]++ — runs as a tight,
// type-specialized loop rather than through an interface call per row.
package enc

import (
	"encoding/binary"
	"fmt"
	"math/bits"
)

// Width enumerates the storage widths.
type Width uint8

// The supported element widths.
const (
	Width0 Width = iota // constant chunk: no per-element storage
	Width1              // bit-set
	Width8
	Width16
	Width32
)

// String returns a short name used in experiment tables.
func (w Width) String() string {
	switch w {
	case Width0:
		return "const"
	case Width1:
		return "bit"
	case Width8:
		return "1B"
	case Width16:
		return "2B"
	case Width32:
		return "4B"
	}
	return fmt.Sprintf("Width(%d)", uint8(w))
}

// Sequence is a read-only sequence of chunk-ids.
type Sequence interface {
	// Len returns the number of elements (rows in the chunk).
	Len() int
	// At returns the i-th chunk-id. It panics on out-of-range i, as slice
	// indexing would.
	At(i int) uint32
	// Width reports the storage width.
	Width() Width
	// MemoryBytes returns the in-memory footprint of the element storage.
	MemoryBytes() int64
	// CountInto increments counts[v] for every element v; counts must be
	// sized to the chunk-dictionary cardinality. This is the group-by
	// inner loop of Section 2.4.
	CountInto(counts []int64)
	// CountIntoMasked is CountInto restricted to rows with mask bit set.
	CountIntoMasked(counts []int64, mask *Bitmap)
	// Materialize appends all elements to dst and returns it.
	Materialize(dst []uint32) []uint32
	// SpreadMask sets m's bit for every row whose chunk-id v has active[v]
	// true; active must be sized to the chunk-dictionary cardinality and m
	// to Len rows. Rows whose chunk-id is inactive are left untouched, so
	// callers reuse a cleared bitmap. This spreads a per-distinct predicate
	// verdict to per-row selection in one type-specialized pass — the
	// vectorized restriction step.
	SpreadMask(active []bool, m *Bitmap)
	// AppendBytes appends the serialized element payload to dst; the
	// inverse is Decode with the same width and length.
	AppendBytes(dst []byte) []byte
}

// Encode stores values (chunk-ids in [0, cardinality)) at the narrowest
// width. It panics if any value is out of range, which would indicate a
// chunk-dictionary construction bug.
func Encode(values []uint32, cardinality int) Sequence {
	switch {
	case cardinality <= 0:
		if len(values) != 0 {
			panic("enc: nonzero elements with zero cardinality")
		}
		return constSeq{n: 0, v: 0}
	case cardinality == 1:
		for _, v := range values {
			if v != 0 {
				panic(fmt.Sprintf("enc: value %d out of range for cardinality 1", v))
			}
		}
		return constSeq{n: len(values), v: 0}
	case cardinality == 2:
		return newBitSeq(values)
	case cardinality <= 1<<8:
		s := make(byteSeq, len(values))
		for i, v := range values {
			checkRange(v, cardinality)
			s[i] = uint8(v)
		}
		return s
	case cardinality <= 1<<16:
		s := make(wordSeq, len(values))
		for i, v := range values {
			checkRange(v, cardinality)
			s[i] = uint16(v)
		}
		return s
	default:
		return EncodeFixed32(values)
	}
}

// EncodeFixed32 stores values as plain 4-byte integers — the "Basic"
// data-structures of Section 2.3, before the Section 3 optimizations.
func EncodeFixed32(values []uint32) Sequence {
	s := make(dwordSeq, len(values))
	copy(s, values)
	return s
}

func checkRange(v uint32, cardinality int) {
	if int(v) >= cardinality {
		panic(fmt.Sprintf("enc: value %d out of range for cardinality %d", v, cardinality))
	}
}

// Decode reconstructs a sequence serialized by AppendBytes.
func Decode(w Width, n int, data []byte) (Sequence, error) {
	switch w {
	case Width0:
		if len(data) != 4 {
			return nil, fmt.Errorf("enc: const payload is %d bytes, want 4", len(data))
		}
		return constSeq{n: n, v: binary.LittleEndian.Uint32(data)}, nil
	case Width1:
		words := (n + 63) / 64
		if len(data) != words*8 {
			return nil, fmt.Errorf("enc: bitset payload is %d bytes, want %d", len(data), words*8)
		}
		s := bitSeq{n: n, bits: make([]uint64, words)}
		for i := range s.bits {
			s.bits[i] = binary.LittleEndian.Uint64(data[i*8:])
		}
		return s, nil
	case Width8:
		if len(data) != n {
			return nil, fmt.Errorf("enc: byte payload is %d bytes, want %d", len(data), n)
		}
		return byteSeq(append([]uint8(nil), data...)), nil
	case Width16:
		if len(data) != n*2 {
			return nil, fmt.Errorf("enc: word payload is %d bytes, want %d", len(data), n*2)
		}
		s := make(wordSeq, n)
		for i := range s {
			s[i] = binary.LittleEndian.Uint16(data[i*2:])
		}
		return s, nil
	case Width32:
		if len(data) != n*4 {
			return nil, fmt.Errorf("enc: dword payload is %d bytes, want %d", len(data), n*4)
		}
		s := make(dwordSeq, n)
		for i := range s {
			s[i] = binary.LittleEndian.Uint32(data[i*4:])
		}
		return s, nil
	}
	return nil, fmt.Errorf("enc: unknown width %d", w)
}

// constSeq: every element is the same value (cardinality 1).
type constSeq struct {
	n int
	v uint32
}

func (s constSeq) Len() int           { return s.n }
func (s constSeq) Width() Width       { return Width0 }
func (s constSeq) MemoryBytes() int64 { return 8 } // n and v; O(1) per the paper
func (s constSeq) At(i int) uint32 {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("enc: index %d out of range [0,%d)", i, s.n))
	}
	return s.v
}
func (s constSeq) CountInto(counts []int64) { counts[s.v] += int64(s.n) }
func (s constSeq) CountIntoMasked(counts []int64, mask *Bitmap) {
	counts[s.v] += int64(mask.Count())
}
func (s constSeq) Materialize(dst []uint32) []uint32 {
	for i := 0; i < s.n; i++ {
		dst = append(dst, s.v)
	}
	return dst
}
func (s constSeq) SpreadMask(active []bool, m *Bitmap) {
	if s.n > 0 && active[s.v] {
		m.SetAll()
	}
}
func (s constSeq) AppendBytes(dst []byte) []byte {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], s.v)
	return append(dst, b[:]...)
}

// bitSeq: two distinct values, one bit per element (⌈n/8⌉ bytes).
type bitSeq struct {
	n    int
	bits []uint64
}

func newBitSeq(values []uint32) Sequence {
	s := bitSeq{n: len(values), bits: make([]uint64, (len(values)+63)/64)}
	for i, v := range values {
		switch v {
		case 0:
		case 1:
			s.bits[i/64] |= 1 << (i % 64)
		default:
			panic(fmt.Sprintf("enc: value %d out of range for cardinality 2", v))
		}
	}
	return s
}

func (s bitSeq) Len() int           { return s.n }
func (s bitSeq) Width() Width       { return Width1 }
func (s bitSeq) MemoryBytes() int64 { return int64(len(s.bits) * 8) }
func (s bitSeq) At(i int) uint32 {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("enc: index %d out of range [0,%d)", i, s.n))
	}
	return uint32(s.bits[i/64] >> (i % 64) & 1)
}
func (s bitSeq) CountInto(counts []int64) {
	ones := 0
	for _, w := range s.bits {
		ones += popcount(w)
	}
	counts[1] += int64(ones)
	counts[0] += int64(s.n - ones)
}
func (s bitSeq) CountIntoMasked(counts []int64, mask *Bitmap) {
	selected := 0
	ones := 0
	for i, w := range mask.words {
		selected += popcount(w)
		ones += popcount(w & s.bits[i])
	}
	counts[1] += int64(ones)
	counts[0] += int64(selected - ones)
}
func (s bitSeq) SpreadMask(active []bool, m *Bitmap) {
	switch {
	case active[0] && active[1]:
		m.SetAll()
	case active[1]:
		for i, w := range s.bits {
			m.words[i] |= w
		}
		m.trim()
	case active[0]:
		for i, w := range s.bits {
			m.words[i] |= ^w
		}
		m.trim()
	}
}
func (s bitSeq) Materialize(dst []uint32) []uint32 {
	for i := 0; i < s.n; i++ {
		dst = append(dst, uint32(s.bits[i/64]>>(i%64)&1))
	}
	return dst
}
func (s bitSeq) AppendBytes(dst []byte) []byte {
	var b [8]byte
	for _, w := range s.bits {
		binary.LittleEndian.PutUint64(b[:], w)
		dst = append(dst, b[:]...)
	}
	return dst
}

// byteSeq: up to 256 distinct values, one byte per element.
type byteSeq []uint8

func (s byteSeq) Len() int           { return len(s) }
func (s byteSeq) Width() Width       { return Width8 }
func (s byteSeq) MemoryBytes() int64 { return int64(len(s)) }
func (s byteSeq) At(i int) uint32    { return uint32(s[i]) }
func (s byteSeq) CountInto(counts []int64) {
	for _, v := range s {
		counts[v]++
	}
}
func (s byteSeq) CountIntoMasked(counts []int64, mask *Bitmap) {
	mask.ForEach(func(i int) { counts[s[i]]++ })
}
func (s byteSeq) Materialize(dst []uint32) []uint32 {
	for _, v := range s {
		dst = append(dst, uint32(v))
	}
	return dst
}
func (s byteSeq) AppendBytes(dst []byte) []byte { return append(dst, s...) }
func (s byteSeq) SpreadMask(active []bool, m *Bitmap) {
	for wi := range m.words {
		base := wi * 64
		end := base + 64
		if end > len(s) {
			end = len(s)
		}
		var w uint64
		for i := base; i < end; i++ {
			if active[s[i]] {
				w |= 1 << uint(i-base)
			}
		}
		m.words[wi] |= w
	}
}

// wordSeq: up to 65536 distinct values, two bytes per element.
type wordSeq []uint16

func (s wordSeq) Len() int           { return len(s) }
func (s wordSeq) Width() Width       { return Width16 }
func (s wordSeq) MemoryBytes() int64 { return int64(len(s) * 2) }
func (s wordSeq) At(i int) uint32    { return uint32(s[i]) }
func (s wordSeq) CountInto(counts []int64) {
	for _, v := range s {
		counts[v]++
	}
}
func (s wordSeq) CountIntoMasked(counts []int64, mask *Bitmap) {
	mask.ForEach(func(i int) { counts[s[i]]++ })
}
func (s wordSeq) Materialize(dst []uint32) []uint32 {
	for _, v := range s {
		dst = append(dst, uint32(v))
	}
	return dst
}
func (s wordSeq) SpreadMask(active []bool, m *Bitmap) {
	for wi := range m.words {
		base := wi * 64
		end := base + 64
		if end > len(s) {
			end = len(s)
		}
		var w uint64
		for i := base; i < end; i++ {
			if active[s[i]] {
				w |= 1 << uint(i-base)
			}
		}
		m.words[wi] |= w
	}
}
func (s wordSeq) AppendBytes(dst []byte) []byte {
	var b [2]byte
	for _, v := range s {
		binary.LittleEndian.PutUint16(b[:], v)
		dst = append(dst, b[:]...)
	}
	return dst
}

// dwordSeq: plain 4-byte elements (the Basic layout).
type dwordSeq []uint32

func (s dwordSeq) Len() int           { return len(s) }
func (s dwordSeq) Width() Width       { return Width32 }
func (s dwordSeq) MemoryBytes() int64 { return int64(len(s) * 4) }
func (s dwordSeq) At(i int) uint32    { return s[i] }
func (s dwordSeq) CountInto(counts []int64) {
	for _, v := range s {
		counts[v]++
	}
}
func (s dwordSeq) CountIntoMasked(counts []int64, mask *Bitmap) {
	mask.ForEach(func(i int) { counts[s[i]]++ })
}
func (s dwordSeq) Materialize(dst []uint32) []uint32 { return append(dst, s...) }
func (s dwordSeq) SpreadMask(active []bool, m *Bitmap) {
	for wi := range m.words {
		base := wi * 64
		end := base + 64
		if end > len(s) {
			end = len(s)
		}
		var w uint64
		for i := base; i < end; i++ {
			if active[s[i]] {
				w |= 1 << uint(i-base)
			}
		}
		m.words[wi] |= w
	}
}
func (s dwordSeq) AppendBytes(dst []byte) []byte {
	var b [4]byte
	for _, v := range s {
		binary.LittleEndian.PutUint32(b[:], v)
		dst = append(dst, b[:]...)
	}
	return dst
}

func popcount(x uint64) int { return bits.OnesCount64(x) }
