package enc

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// genValues produces n values drawn from [0, cardinality).
func genValues(r *rand.Rand, n, cardinality int) []uint32 {
	out := make([]uint32, n)
	for i := range out {
		out[i] = uint32(r.Intn(cardinality))
	}
	return out
}

func TestWidthSelection(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, tc := range []struct {
		cardinality int
		want        Width
	}{
		{1, Width0},
		{2, Width1},
		{3, Width8},
		{256, Width8},
		{257, Width16},
		{65536, Width16},
		{65537, Width32},
	} {
		vals := genValues(r, 200, tc.cardinality)
		s := Encode(vals, tc.cardinality)
		if s.Width() != tc.want {
			t.Errorf("cardinality %d: width %v, want %v", tc.cardinality, s.Width(), tc.want)
		}
	}
}

func TestEncodePreservesValues(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for _, cardinality := range []int{1, 2, 5, 200, 300, 70000, 66000} {
		vals := genValues(r, 500, cardinality)
		s := Encode(vals, cardinality)
		if s.Len() != len(vals) {
			t.Fatalf("cardinality %d: Len %d, want %d", cardinality, s.Len(), len(vals))
		}
		for i, want := range vals {
			if got := s.At(i); got != want {
				t.Fatalf("cardinality %d: At(%d) = %d, want %d", cardinality, i, got, want)
			}
		}
		if got := s.Materialize(nil); !reflect.DeepEqual(got, vals) {
			t.Fatalf("cardinality %d: Materialize mismatch", cardinality)
		}
	}
}

func TestEncodeFixed32(t *testing.T) {
	vals := []uint32{5, 0, 1 << 20, 7}
	s := EncodeFixed32(vals)
	if s.Width() != Width32 {
		t.Errorf("Width = %v", s.Width())
	}
	if s.MemoryBytes() != int64(len(vals)*4) {
		t.Errorf("MemoryBytes = %d", s.MemoryBytes())
	}
	for i, want := range vals {
		if s.At(i) != want {
			t.Errorf("At(%d) = %d, want %d", i, s.At(i), want)
		}
	}
}

func TestMemoryFootprints(t *testing.T) {
	const n = 50_000 // rows per chunk, the paper's threshold scale
	r := rand.New(rand.NewSource(3))
	// Constant: O(1) regardless of n (the paper's "constant O(1) overhead").
	if got := Encode(genValues(r, n, 1), 1).MemoryBytes(); got > 16 {
		t.Errorf("const footprint %d bytes, want O(1)", got)
	}
	// Two values: ⌈n/8⌉ bytes.
	if got := Encode(genValues(r, n, 2), 2).MemoryBytes(); got != int64((n+63)/64*8) {
		t.Errorf("bitset footprint %d, want %d", got, (n+63)/64*8)
	}
	// 1, 2, 4 bytes per element.
	if got := Encode(genValues(r, n, 100), 100).MemoryBytes(); got != n {
		t.Errorf("byte footprint %d, want %d", got, n)
	}
	if got := Encode(genValues(r, n, 1000), 1000).MemoryBytes(); got != 2*n {
		t.Errorf("word footprint %d, want %d", got, 2*n)
	}
	if got := Encode(genValues(r, n, 1<<17), 1<<17).MemoryBytes(); got != 4*n {
		t.Errorf("dword footprint %d, want %d", got, 4*n)
	}
}

func TestCountInto(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for _, cardinality := range []int{1, 2, 10, 300, 70000} {
		vals := genValues(r, 1000, cardinality)
		s := Encode(vals, cardinality)
		counts := make([]int64, cardinality)
		s.CountInto(counts)
		want := make([]int64, cardinality)
		for _, v := range vals {
			want[v]++
		}
		if !reflect.DeepEqual(counts, want) {
			t.Errorf("cardinality %d: CountInto mismatch", cardinality)
		}
	}
}

func TestCountIntoMasked(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for _, cardinality := range []int{1, 2, 10, 300, 70000} {
		vals := genValues(r, 1000, cardinality)
		s := Encode(vals, cardinality)
		mask := NewBitmap(len(vals))
		for i := range vals {
			if r.Intn(3) == 0 {
				mask.Set(i)
			}
		}
		counts := make([]int64, cardinality)
		s.CountIntoMasked(counts, mask)
		want := make([]int64, cardinality)
		for i, v := range vals {
			if mask.Get(i) {
				want[v]++
			}
		}
		if !reflect.DeepEqual(counts, want) {
			t.Errorf("cardinality %d: CountIntoMasked mismatch", cardinality)
		}
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	for _, cardinality := range []int{1, 2, 10, 300, 70000} {
		vals := genValues(r, 777, cardinality) // odd length exercises bitset tail
		s := Encode(vals, cardinality)
		raw := s.AppendBytes(nil)
		back, err := Decode(s.Width(), s.Len(), raw)
		if err != nil {
			t.Fatalf("Decode width %v: %v", s.Width(), err)
		}
		if !reflect.DeepEqual(back.Materialize(nil), vals) {
			t.Errorf("cardinality %d: round trip mismatch", cardinality)
		}
	}
}

func TestDecodeRejectsBadPayloads(t *testing.T) {
	if _, err := Decode(Width0, 5, []byte{1, 2}); err == nil {
		t.Error("short const payload accepted")
	}
	if _, err := Decode(Width1, 100, make([]byte, 3)); err == nil {
		t.Error("short bitset payload accepted")
	}
	if _, err := Decode(Width8, 10, make([]byte, 9)); err == nil {
		t.Error("short byte payload accepted")
	}
	if _, err := Decode(Width16, 10, make([]byte, 19)); err == nil {
		t.Error("short word payload accepted")
	}
	if _, err := Decode(Width32, 10, make([]byte, 39)); err == nil {
		t.Error("short dword payload accepted")
	}
	if _, err := Decode(Width(9), 10, nil); err == nil {
		t.Error("unknown width accepted")
	}
}

func TestEncodePanicsOnOutOfRange(t *testing.T) {
	for _, tc := range []struct {
		vals        []uint32
		cardinality int
	}{
		{[]uint32{1}, 1},
		{[]uint32{2}, 2},
		{[]uint32{300}, 256},
		{[]uint32{70000}, 65536},
		{[]uint32{0}, 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Encode(%v, %d) did not panic", tc.vals, tc.cardinality)
				}
			}()
			Encode(tc.vals, tc.cardinality)
		}()
	}
}

func TestAtPanicsOutOfRange(t *testing.T) {
	s := Encode([]uint32{0, 0}, 1)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("const At(5) did not panic")
			}
		}()
		s.At(5)
	}()
	b := Encode([]uint32{0, 1}, 2)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("bitset At(-1) did not panic")
			}
		}()
		b.At(-1)
	}()
}

func TestQuickRoundTripAnyCardinality(t *testing.T) {
	f := func(raw []uint16, card uint8) bool {
		cardinality := int(card)%300 + 1
		vals := make([]uint32, len(raw))
		for i, v := range raw {
			vals[i] = uint32(int(v) % cardinality)
		}
		s := Encode(vals, cardinality)
		buf := s.AppendBytes(nil)
		back, err := Decode(s.Width(), s.Len(), buf)
		if err != nil {
			return false
		}
		got := back.Materialize(nil)
		if len(got) != len(vals) {
			return false
		}
		for i := range vals {
			if got[i] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestEmptySequences(t *testing.T) {
	for _, cardinality := range []int{0, 1, 2, 10, 300, 70000} {
		s := Encode(nil, cardinality)
		if s.Len() != 0 {
			t.Errorf("cardinality %d: empty Len = %d", cardinality, s.Len())
		}
		counts := make([]int64, cardinality+1)
		s.CountInto(counts)
		for _, c := range counts {
			if c != 0 {
				t.Errorf("cardinality %d: empty CountInto nonzero", cardinality)
			}
		}
	}
}

func BenchmarkCountInto(b *testing.B) {
	r := rand.New(rand.NewSource(7))
	const n = 50_000
	for _, cardinality := range []int{2, 25, 1000, 100000} {
		vals := genValues(r, n, cardinality)
		s := Encode(vals, cardinality)
		counts := make([]int64, cardinality)
		b.Run(s.Width().String(), func(b *testing.B) {
			b.SetBytes(int64(n))
			for i := 0; i < b.N; i++ {
				s.CountInto(counts)
			}
		})
	}
}

func BenchmarkAt(b *testing.B) {
	r := rand.New(rand.NewSource(8))
	vals := genValues(r, 50_000, 1000)
	s := Encode(vals, 1000)
	b.ResetTimer()
	var sink uint32
	for i := 0; i < b.N; i++ {
		sink += s.At(i % 50_000)
	}
	_ = sink
}
