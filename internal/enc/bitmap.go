package enc

import "math/bits"

// Bitmap is a fixed-length row-selection mask used by the executor to track
// which rows of a partially active chunk match the WHERE clause.
type Bitmap struct {
	n     int
	words []uint64
}

// NewBitmap creates an all-zero bitmap over n rows.
func NewBitmap(n int) *Bitmap {
	return &Bitmap{n: n, words: make([]uint64, (n+63)/64)}
}

// Len returns the number of rows the bitmap covers.
func (b *Bitmap) Len() int { return b.n }

// Set marks row i as selected.
func (b *Bitmap) Set(i int) { b.words[i/64] |= 1 << (i % 64) }

// Clear unmarks row i.
func (b *Bitmap) Clear(i int) { b.words[i/64] &^= 1 << (i % 64) }

// Get reports whether row i is selected.
func (b *Bitmap) Get(i int) bool { return b.words[i/64]>>(i%64)&1 == 1 }

// SetAll selects every row.
func (b *Bitmap) SetAll() {
	for i := range b.words {
		b.words[i] = ^uint64(0)
	}
	b.trim()
}

// ClearAll unselects every row.
func (b *Bitmap) ClearAll() {
	for i := range b.words {
		b.words[i] = 0
	}
}

// trim zeroes the bits beyond n in the last word so Count stays exact.
func (b *Bitmap) trim() {
	if rem := b.n % 64; rem != 0 && len(b.words) > 0 {
		b.words[len(b.words)-1] &= (1 << rem) - 1
	}
}

// Count returns the number of selected rows.
func (b *Bitmap) Count() int {
	c := 0
	for _, w := range b.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// And intersects b with o in place. The bitmaps must have equal length.
func (b *Bitmap) And(o *Bitmap) {
	for i := range b.words {
		b.words[i] &= o.words[i]
	}
}

// Or unions o into b in place. The bitmaps must have equal length.
func (b *Bitmap) Or(o *Bitmap) {
	for i := range b.words {
		b.words[i] |= o.words[i]
	}
}

// AndNot removes o's rows from b in place.
func (b *Bitmap) AndNot(o *Bitmap) {
	for i := range b.words {
		b.words[i] &^= o.words[i]
	}
}

// Not complements b in place.
func (b *Bitmap) Not() {
	for i := range b.words {
		b.words[i] = ^b.words[i]
	}
	b.trim()
}

// All reports whether every row is selected.
func (b *Bitmap) All() bool { return b.Count() == b.n }

// None reports whether no row is selected.
func (b *Bitmap) None() bool {
	for _, w := range b.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Clone returns an independent copy.
func (b *Bitmap) Clone() *Bitmap {
	return &Bitmap{n: b.n, words: append([]uint64(nil), b.words...)}
}

// Words exposes the backing word array (64 rows per word, little-endian
// bit order, bits beyond Len kept zero). Kernels iterate it directly so the
// per-row body can be inlined instead of dispatched through ForEach's
// closure.
func (b *Bitmap) Words() []uint64 { return b.words }

// ForEach calls fn with each selected row index in ascending order.
func (b *Bitmap) ForEach(fn func(i int)) {
	for wi, w := range b.words {
		for w != 0 {
			bit := bits.TrailingZeros64(w)
			fn(wi*64 + bit)
			w &= w - 1
		}
	}
}

// MemoryBytes returns the footprint of the word array.
func (b *Bitmap) MemoryBytes() int64 { return int64(len(b.words) * 8) }
