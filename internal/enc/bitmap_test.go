package enc

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBitmapBasics(t *testing.T) {
	b := NewBitmap(130) // crosses two word boundaries
	if b.Len() != 130 || !b.None() || b.Count() != 0 {
		t.Fatal("fresh bitmap not empty")
	}
	b.Set(0)
	b.Set(64)
	b.Set(129)
	if b.Count() != 3 {
		t.Errorf("Count = %d, want 3", b.Count())
	}
	for _, i := range []int{0, 64, 129} {
		if !b.Get(i) {
			t.Errorf("Get(%d) = false", i)
		}
	}
	if b.Get(1) || b.Get(128) {
		t.Error("unset bits report set")
	}
	b.Clear(64)
	if b.Get(64) || b.Count() != 2 {
		t.Error("Clear failed")
	}
}

func TestBitmapSetAllNotTrim(t *testing.T) {
	b := NewBitmap(70)
	b.SetAll()
	if !b.All() || b.Count() != 70 {
		t.Errorf("SetAll: Count = %d, want 70", b.Count())
	}
	b.Not()
	if !b.None() {
		t.Errorf("Not after SetAll: Count = %d, want 0", b.Count())
	}
	b.Not()
	if b.Count() != 70 {
		t.Errorf("double Not: Count = %d, want 70 (tail bits leaked)", b.Count())
	}
}

func TestBitmapBooleanOps(t *testing.T) {
	a, b := NewBitmap(100), NewBitmap(100)
	for i := 0; i < 100; i += 2 {
		a.Set(i) // evens
	}
	for i := 0; i < 100; i += 3 {
		b.Set(i) // multiples of 3
	}
	and := a.Clone()
	and.And(b)
	if and.Count() != 17 { // multiples of 6 in [0,100): 0,6,...,96
		t.Errorf("And count = %d, want 17", and.Count())
	}
	or := a.Clone()
	or.Or(b)
	// |evens ∪ mult3| = 50 + 34 - 17
	if or.Count() != 67 {
		t.Errorf("Or count = %d, want 67", or.Count())
	}
	diff := a.Clone()
	diff.AndNot(b)
	if diff.Count() != 50-17 {
		t.Errorf("AndNot count = %d, want 33", diff.Count())
	}
}

func TestBitmapForEachOrder(t *testing.T) {
	b := NewBitmap(200)
	want := []int{3, 17, 63, 64, 65, 128, 199}
	for _, i := range want {
		b.Set(i)
	}
	var got []int
	b.ForEach(func(i int) { got = append(got, i) })
	if len(got) != len(want) {
		t.Fatalf("ForEach visited %d rows, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("ForEach[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestBitmapCloneIndependent(t *testing.T) {
	a := NewBitmap(64)
	a.Set(5)
	c := a.Clone()
	c.Set(6)
	if a.Get(6) {
		t.Error("Clone shares storage")
	}
}

func TestBitmapQuickDeMorgan(t *testing.T) {
	f := func(xs, ys []uint16) bool {
		const n = 256
		a, b := NewBitmap(n), NewBitmap(n)
		for _, x := range xs {
			a.Set(int(x) % n)
		}
		for _, y := range ys {
			b.Set(int(y) % n)
		}
		// ¬(a ∧ b) == ¬a ∨ ¬b
		lhs := a.Clone()
		lhs.And(b)
		lhs.Not()
		na, nb := a.Clone(), b.Clone()
		na.Not()
		nb.Not()
		na.Or(nb)
		for i := 0; i < n; i++ {
			if lhs.Get(i) != na.Get(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestBitmapCountMatchesForEach(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for trial := 0; trial < 20; trial++ {
		n := r.Intn(500) + 1
		b := NewBitmap(n)
		for i := 0; i < n; i++ {
			if r.Intn(2) == 0 {
				b.Set(i)
			}
		}
		visited := 0
		b.ForEach(func(int) { visited++ })
		if visited != b.Count() {
			t.Fatalf("n=%d: ForEach visited %d, Count %d", n, visited, b.Count())
		}
	}
}

func BenchmarkBitmapForEach(b *testing.B) {
	m := NewBitmap(50_000)
	r := rand.New(rand.NewSource(10))
	for i := 0; i < 50_000; i++ {
		if r.Intn(10) == 0 {
			m.Set(i)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		m.ForEach(func(int) { n++ })
	}
}
