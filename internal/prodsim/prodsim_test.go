package prodsim

import (
	"testing"

	"powerdrill/internal/colstore"
)

func smallConfig() Config {
	return Config{
		Rows:             20_000,
		Servers:          2,
		Sessions:         2,
		ClicksPerSession: 5,
		QueriesPerClick:  10,
		Seed:             71,
		Store: colstore.Options{
			PartitionFields:  []string{"country", "table_name"},
			MaxChunkRows:     500,
			OptimizeElements: true,
		},
	}
}

func TestRunProducesConsistentReport(t *testing.T) {
	rep, err := Run(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Queries != 2*5*10 {
		t.Errorf("Queries = %d, want 100", rep.Queries)
	}
	if rep.Clicks != 10 {
		t.Errorf("Clicks = %d, want 10", rep.Clicks)
	}
	total := rep.SkippedPct + rep.CachedPct + rep.ScannedPct
	if total < 99.9 || total > 100.1 {
		t.Errorf("record split does not sum to 100%%: %.2f + %.2f + %.2f = %.2f",
			rep.SkippedPct, rep.CachedPct, rep.ScannedPct, total)
	}
	if rep.NoDiskPct < 0 || rep.NoDiskPct > 100 {
		t.Errorf("NoDiskPct = %.2f", rep.NoDiskPct)
	}
	if rep.AvgLatency <= 0 {
		t.Error("AvgLatency not positive")
	}
	if rep.AvgCellsPerClick <= 0 {
		t.Error("AvgCellsPerClick not positive")
	}
}

// TestSection6Shape checks the qualitative production claims: the
// drill-down workload skips the large majority of records, serves a
// further slice from caches, and most queries touch no disk after warm-up.
func TestSection6Shape(t *testing.T) {
	cfg := smallConfig()
	cfg.Sessions = 3
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("skipped=%.2f%% cached=%.2f%% scanned=%.2f%% nodisk=%.1f%%",
		rep.SkippedPct, rep.CachedPct, rep.ScannedPct, rep.NoDiskPct)
	if rep.SkippedPct < 50 {
		t.Errorf("skipped %.1f%%, want the majority (paper: 92.41%%)", rep.SkippedPct)
	}
	if rep.CachedPct <= 0 {
		t.Errorf("cached %.2f%%, want > 0 (paper: 5.02%%)", rep.CachedPct)
	}
	if rep.ScannedPct > 30 {
		t.Errorf("scanned %.1f%%, want a small minority (paper: 2.66%%)", rep.ScannedPct)
	}
	if rep.NoDiskPct < 50 {
		t.Errorf("no-disk queries %.1f%%, want the majority (paper: >70%%)", rep.NoDiskPct)
	}
}

// TestFigure5Shape: average latency must not decrease as more data is
// loaded from disk (the Figure 5 monotonicity, up to noise — we check
// first vs last populated bucket).
func TestFigure5Shape(t *testing.T) {
	cfg := smallConfig()
	cfg.EvictProb = 0.4 // more cold loads to populate buckets
	cfg.DiskMBps = 10   // slow disk accentuates the shape
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var withDisk []Bucket
	for _, b := range rep.Buckets {
		t.Logf("bucket log2MB=%d queries=%d avg=%v", b.Log2MB, b.Queries, b.AvgLatency)
		if b.Log2MB >= 0 {
			withDisk = append(withDisk, b)
		}
	}
	if len(withDisk) == 0 {
		t.Fatal("no disk buckets populated; eviction model broken")
	}
	if rep.AvgLatencyNoDisk <= 0 {
		t.Fatal("no no-disk latency recorded")
	}
	last := withDisk[len(withDisk)-1]
	if last.AvgLatency <= rep.AvgLatencyNoDisk {
		t.Errorf("largest disk bucket (%v) not slower than memory-resident (%v)",
			last.AvgLatency, rep.AvgLatencyNoDisk)
	}
}

func TestDeterministicRuns(t *testing.T) {
	a, err := Run(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Latencies are wall-clock and differ; the data-dependent counters
	// must not.
	if a.SkippedPct != b.SkippedPct || a.CachedPct != b.CachedPct || a.TotalDiskBytes != b.TotalDiskBytes {
		t.Errorf("runs diverged: %+v vs %+v", a, b)
	}
}

func TestColumnBudgetForcesReloads(t *testing.T) {
	generous := smallConfig()
	rep1, err := Run(generous)
	if err != nil {
		t.Fatal(err)
	}
	tight := smallConfig()
	tight.ColumnBudgetBytes = 64 << 10 // far below the column sizes
	rep2, err := Run(tight)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.TotalDiskBytes <= rep1.TotalDiskBytes {
		t.Errorf("tight budget loaded %d bytes, generous %d; expected more reloads",
			rep2.TotalDiskBytes, rep1.TotalDiskBytes)
	}
}
