// Package prodsim reproduces the paper's production measurements
// (Section 6) at laboratory scale: a fleet of servers holding shards of
// the query-log table, a stream of drill-down UI sessions (about 20
// group-by queries per mouse click), per-chunk result caches, a two-layer
// column residency model with a byte budget, and a streaming-disk cost
// model (the paper assumes at least 100 MB/s).
//
// It produces the Section 6 numbers:
//
//   - the skipped / cached / scanned split of underlying records
//     (92.41% / 5.02% / 2.66% in the paper's production fleet);
//   - the fraction of queries that touch no disk at all (>70%);
//   - Figure 5: average latency by log2-bucketed bytes loaded from disk.
//
// Latencies combine the real measured execution time with the modelled
// disk time, so the curve has the paper's shape: flat for memory-resident
// queries, growing with bytes loaded.
package prodsim

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"powerdrill/internal/cache"
	"powerdrill/internal/colstore"
	"powerdrill/internal/compress"
	"powerdrill/internal/exec"
	"powerdrill/internal/expr"
	"powerdrill/internal/sql"
	"powerdrill/internal/workload"
)

// Config describes one simulated production run.
type Config struct {
	// Rows of log data overall (split over the servers).
	Rows int
	// Servers in the fleet (default 4).
	Servers int
	// Sessions is the number of user drill-down sessions (default 6).
	Sessions int
	// ClicksPerSession (default 10) and QueriesPerClick (default 20, the
	// paper's number).
	ClicksPerSession int
	QueriesPerClick  int
	// Seed makes the run deterministic.
	Seed int64
	// Store configures the shard stores.
	Store colstore.Options
	// ResultCacheBytes per server (default 32 MiB).
	ResultCacheBytes int64
	// ColumnBudgetBytes per server bounds resident column layers
	// (default: unbounded → everything stays in memory after first load).
	ColumnBudgetBytes int64
	// DiskMBps is the modelled streaming throughput (default 100, the
	// paper's assumption).
	DiskMBps float64
	// EvictProb is the chance, per click, that a server's columns were
	// evicted by other tenants (forces re-loads, populating the higher
	// Figure 5 buckets). Default 0.05.
	EvictProb float64
}

func (c Config) withDefaults() Config {
	if c.Rows <= 0 {
		c.Rows = 100_000
	}
	if c.Servers <= 0 {
		c.Servers = 4
	}
	if c.Sessions <= 0 {
		c.Sessions = 6
	}
	if c.ClicksPerSession <= 0 {
		c.ClicksPerSession = 10
	}
	if c.QueriesPerClick <= 0 {
		c.QueriesPerClick = 20
	}
	if c.ResultCacheBytes <= 0 {
		c.ResultCacheBytes = 32 << 20
	}
	if c.DiskMBps <= 0 {
		c.DiskMBps = 100
	}
	if c.EvictProb < 0 {
		c.EvictProb = 0.05
	}
	return c
}

// Bucket is one Figure 5 histogram bar.
type Bucket struct {
	// Log2MB identifies the bucket: disk bytes loaded in
	// [2^i, 2^{i+1}) MB; -1 collects the no-disk queries.
	Log2MB int
	// Queries in the bucket.
	Queries int
	// AvgLatency of the bucket's queries.
	AvgLatency time.Duration
}

// Report is the outcome of a run.
type Report struct {
	Queries int
	Clicks  int

	// Fractions of underlying records, the headline Section 6 split.
	SkippedPct float64
	CachedPct  float64
	ScannedPct float64

	// NoDiskPct is the fraction of queries that loaded nothing.
	NoDiskPct float64
	// AvgLatencyNoDisk and AvgLatency overall.
	AvgLatencyNoDisk time.Duration
	AvgLatency       time.Duration
	// AvgCellsPerClick: cells a click's 20 queries cover.
	AvgCellsPerClick float64
	// Buckets is the Figure 5 histogram (ascending Log2MB).
	Buckets []Bucket
	// TotalDiskBytes loaded across the run.
	TotalDiskBytes int64
}

// server is one fleet member.
type server struct {
	engine *exec.Engine
	// resident tracks which columns are in memory; its byte budget models
	// the "as much data in memory as possible" constraint.
	resident cache.Cache
	// colDiskBytes is the compressed on-disk size per column (what a load
	// streams); colMemBytes the uncompressed resident size.
	colDiskBytes map[string]int64
	colMemBytes  map[string]int64
	// colNames is the sorted column list, for deterministic eviction.
	colNames []string
}

// Run executes the simulation.
func Run(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	r := rand.New(rand.NewSource(cfg.Seed))

	tbl := workload.QueryLogs(workload.LogsSpec{Rows: cfg.Rows, Seed: cfg.Seed})
	shards := tbl.Shard(cfg.Servers)
	codec, err := compress.ByName("zippy")
	if err != nil {
		return nil, err
	}

	servers := make([]*server, cfg.Servers)
	for i, shardTbl := range shards {
		store, err := colstore.FromTable(shardTbl, cfg.Store)
		if err != nil {
			return nil, fmt.Errorf("prodsim: shard %d: %w", i, err)
		}
		budget := cfg.ColumnBudgetBytes
		if budget <= 0 {
			budget = 1 << 40 // effectively unbounded
		}
		srv := &server{
			engine:       exec.New(store, exec.Options{ResultCacheBytes: cfg.ResultCacheBytes}),
			resident:     cache.NewTwoQ(budget),
			colDiskBytes: map[string]int64{},
			colMemBytes:  map[string]int64{},
		}
		for _, cn := range store.Columns() {
			col, err := store.ColumnErr(cn)
			if err != nil {
				return nil, fmt.Errorf("prodsim: shard %d: %w", i, err)
			}
			srv.colDiskBytes[cn] = col.Compressed(codec).Total()
			srv.colMemBytes[cn] = col.Memory().Total()
			srv.colNames = append(srv.colNames, cn)
		}
		sort.Strings(srv.colNames)
		servers[i] = srv
	}

	report := &Report{}
	var totalSkipped, totalCached, totalScanned, totalRows int64
	var sumLatency, sumNoDiskLatency time.Duration
	noDisk := 0
	bucketSum := map[int]time.Duration{}
	bucketCnt := map[int]int{}
	var cellsPerClick float64

	for s := 0; s < cfg.Sessions; s++ {
		clicks := workload.DrillDownSession(tbl, workload.SessionSpec{
			Seed:            cfg.Seed + int64(s)*7919,
			Clicks:          cfg.ClicksPerSession,
			QueriesPerClick: cfg.QueriesPerClick,
		})
		for _, click := range clicks {
			report.Clicks++
			var clickCells int64
			// Tenant pressure: occasionally a server loses its columns.
			for _, srv := range servers {
				if r.Float64() < cfg.EvictProb && len(srv.colNames) > 0 {
					srv.resident.Remove(srv.colNames[r.Intn(len(srv.colNames))])
				}
			}
			for _, q := range click.Queries {
				lat, diskBytes, qs, err := runFleetQuery(servers, q, cfg.DiskMBps)
				if err != nil {
					return nil, fmt.Errorf("prodsim: %q: %w", q, err)
				}
				report.Queries++
				report.TotalDiskBytes += diskBytes
				totalSkipped += qs.RowsSkipped
				totalCached += qs.RowsCached
				totalScanned += qs.RowsScanned
				totalRows += qs.RowsSkipped + qs.RowsCached + qs.RowsScanned
				clickCells += qs.CellsCovered
				sumLatency += lat
				if diskBytes == 0 {
					noDisk++
					sumNoDiskLatency += lat
					bucketSum[-1] += lat
					bucketCnt[-1]++
				} else {
					b := log2MB(diskBytes)
					bucketSum[b] += lat
					bucketCnt[b]++
				}
			}
			cellsPerClick += float64(clickCells)
		}
	}

	if totalRows > 0 {
		report.SkippedPct = 100 * float64(totalSkipped) / float64(totalRows)
		report.CachedPct = 100 * float64(totalCached) / float64(totalRows)
		report.ScannedPct = 100 * float64(totalScanned) / float64(totalRows)
	}
	if report.Queries > 0 {
		report.NoDiskPct = 100 * float64(noDisk) / float64(report.Queries)
		report.AvgLatency = sumLatency / time.Duration(report.Queries)
	}
	if noDisk > 0 {
		report.AvgLatencyNoDisk = sumNoDiskLatency / time.Duration(noDisk)
	}
	if report.Clicks > 0 {
		report.AvgCellsPerClick = cellsPerClick / float64(report.Clicks)
	}
	for b := -1; b <= 20; b++ {
		if bucketCnt[b] == 0 {
			continue
		}
		report.Buckets = append(report.Buckets, Bucket{
			Log2MB:     b,
			Queries:    bucketCnt[b],
			AvgLatency: bucketSum[b] / time.Duration(bucketCnt[b]),
		})
	}
	return report, nil
}

// runFleetQuery executes one query on every server, modelling column loads
// and measuring execution. Fleet latency is the slowest server (they run
// in parallel in production) plus the modelled disk time.
func runFleetQuery(servers []*server, q string, diskMBps float64) (time.Duration, int64, exec.QueryStats, error) {
	stmt, err := sql.Parse(q)
	if err != nil {
		return 0, 0, exec.QueryStats{}, err
	}
	cols := queryColumns(stmt)
	var total exec.QueryStats
	var maxLat time.Duration
	var diskBytes int64
	for _, srv := range servers {
		// Residency check: cold columns stream from disk at the modelled
		// throughput before the query can run.
		var loadBytes int64
		for _, cn := range cols {
			sz, known := srv.colDiskBytes[cn]
			if !known {
				continue // virtual column, computed not loaded
			}
			if _, ok := srv.resident.Get(cn); !ok {
				loadBytes += sz
				srv.resident.Put(cn, true, srv.colMemBytes[cn])
			}
		}
		start := time.Now()
		res, err := srv.engine.Query(q)
		if err != nil {
			return 0, 0, total, err
		}
		lat := time.Since(start)
		lat += time.Duration(float64(loadBytes) / (diskMBps * 1e6) * float64(time.Second))
		if lat > maxLat {
			maxLat = lat
		}
		diskBytes += loadBytes
		total.RowsScanned += res.Stats.RowsScanned
		total.RowsCached += res.Stats.RowsCached
		total.RowsSkipped += res.Stats.RowsSkipped
		total.CellsCovered += res.Stats.CellsCovered
		total.CellsScanned += res.Stats.CellsScanned
	}
	return maxLat, diskBytes, total, nil
}

// queryColumns lists the physical columns a query touches.
func queryColumns(stmt *sql.SelectStmt) []string {
	seen := map[string]bool{}
	var out []string
	add := func(cols []string) {
		for _, c := range cols {
			if !seen[c] {
				seen[c] = true
				out = append(out, c)
			}
		}
	}
	add(expr.Columns(stmt.Where))
	for _, item := range stmt.Items {
		add(expr.Columns(item.Expr))
	}
	for _, g := range stmt.GroupBy {
		add(expr.Columns(g))
	}
	return out
}

// log2MB buckets a byte count by log2 of its size in MB (≥0).
func log2MB(bytes int64) int {
	mb := float64(bytes) / 1e6
	b := 0
	for mb >= 2 {
		mb /= 2
		b++
	}
	return b
}
