// Package sketch implements the approximate count-distinct algorithm
// PowerDrill uses (paper, Section 5, "Count Distinct"): keep the m smallest
// normalized hash values of the field in a single pass; if v is the largest
// of those m hashes (normalized to [0,1]), the number of distinct values is
// estimated as m/v. The algorithm is the first one analysed by Bar-Yossef,
// Jayram, Kumar, Sivakumar and Trevisan ("Counting distinct elements in a
// data stream", RANDOM 2002), itself a refinement of Flajolet–Martin.
//
// Sketches are mergeable — the union of two m-smallest sets, trimmed back to
// m — which is what allows the distributed execution tree of Section 4 to
// re-aggregate count-distinct results at every level.
//
// PowerDrill exploits that global- and chunk-dictionaries store values
// sorted: a chunk contributes each *distinct* value exactly once by walking
// its chunk-dictionary instead of its rows, so the per-row cost disappears
// for skipped and fully-active chunks. AddDictionary models exactly that.
package sketch

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
)

// KMV is a k-minimum-values sketch. The zero value is unusable; create
// sketches with NewKMV.
type KMV struct {
	m    int
	heap []uint64 // max-heap of the m smallest *distinct* hashes seen so far
	set  map[uint64]struct{}
}

// NewKMV creates a sketch keeping the m smallest hash values. The paper
// describes m as "typically in the order of a couple of thousand". m must
// be positive.
func NewKMV(m int) *KMV {
	if m <= 0 {
		panic(fmt.Sprintf("sketch: invalid m=%d", m))
	}
	return &KMV{m: m, heap: make([]uint64, 0, m), set: make(map[uint64]struct{}, m)}
}

// M returns the sketch parameter m.
func (k *KMV) M() int { return k.m }

// hash64 is a strong 64-bit mix (splitmix64 finalizer) applied to FNV-1a,
// giving well-distributed normalized hashes for the m/v estimator.
func mix64(h uint64) uint64 {
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// HashString hashes a string value for the sketch.
func HashString(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return mix64(h)
}

// HashUint64 hashes an integer value (int64 columns and float bit patterns).
func HashUint64(v uint64) uint64 {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, c := range b {
		h ^= uint64(c)
		h *= prime
	}
	return mix64(h)
}

// AddHash offers one pre-hashed value to the sketch. The retained set is
// kept duplicate-free — KMV estimates from the m smallest distinct hashes,
// so a repeated value must not displace a distinct one.
func (k *KMV) AddHash(h uint64) {
	if _, dup := k.set[h]; dup {
		return
	}
	if len(k.heap) < k.m {
		k.set[h] = struct{}{}
		k.heap = append(k.heap, h)
		up(k.heap, len(k.heap)-1)
		return
	}
	if h >= k.heap[0] {
		return
	}
	delete(k.set, k.heap[0])
	k.set[h] = struct{}{}
	k.heap[0] = h
	down(k.heap, 0)
}

// AddString offers a string value.
func (k *KMV) AddString(s string) { k.AddHash(HashString(s)) }

// AddUint64 offers an integer value.
func (k *KMV) AddUint64(v uint64) { k.AddHash(HashUint64(v)) }

// AddDictionary offers every value of a sorted dictionary by rank, the
// chunk-dictionary fast path of Section 5: at(i) must return the hash of the
// i-th distinct value.
func (k *KMV) AddDictionary(n int, at func(i int) uint64) {
	for i := 0; i < n; i++ {
		k.AddHash(at(i))
	}
}

// Estimate returns the approximate number of distinct values added.
func (k *KMV) Estimate() int64 {
	n := len(k.heap)
	if n == 0 {
		return 0
	}
	if n < k.m {
		// Fewer than m distinct hashes seen: the sketch is exact.
		return int64(n)
	}
	v := float64(k.heap[0]) / float64(math.MaxUint64) // normalized m-th minimum
	if v <= 0 {
		return int64(n)
	}
	return int64(math.Round(float64(n) / v))
}

// RetainedHashes returns the sorted retained hashes (used by tests and the
// distributed merge path for deterministic inspection).
func (k *KMV) RetainedHashes() []uint64 {
	hs := append([]uint64(nil), k.heap...)
	sort.Slice(hs, func(i, j int) bool { return hs[i] < hs[j] })
	return hs
}

// Merge folds other into k (union, trimmed back to the m smallest). The
// sketches may have different m; the result keeps k's m.
func (k *KMV) Merge(other *KMV) {
	if other == nil {
		return
	}
	for _, h := range other.heap {
		k.AddHash(h)
	}
}

// Marshal serializes the sketch.
func (k *KMV) Marshal() []byte {
	out := make([]byte, 8+8+len(k.heap)*8)
	binary.LittleEndian.PutUint64(out[0:], uint64(k.m))
	binary.LittleEndian.PutUint64(out[8:], uint64(len(k.heap)))
	for i, h := range k.heap {
		binary.LittleEndian.PutUint64(out[16+i*8:], h)
	}
	return out
}

// UnmarshalKMV reconstructs a sketch serialized by Marshal.
func UnmarshalKMV(data []byte) (*KMV, error) {
	if len(data) < 16 {
		return nil, fmt.Errorf("sketch: truncated header (%d bytes)", len(data))
	}
	m := int(binary.LittleEndian.Uint64(data[0:]))
	n := int(binary.LittleEndian.Uint64(data[8:]))
	if m <= 0 || n < 0 || n > m || len(data) != 16+n*8 {
		return nil, fmt.Errorf("sketch: corrupt encoding (m=%d n=%d len=%d)", m, n, len(data))
	}
	k := NewKMV(m)
	for i := 0; i < n; i++ {
		k.AddHash(binary.LittleEndian.Uint64(data[16+i*8:]))
	}
	return k, nil
}

// MemoryBytes reports the footprint of the retained hash set.
func (k *KMV) MemoryBytes() int64 { return int64(cap(k.heap) * 8) }

// up restores the max-heap property walking from index i to the root.
func up(h []uint64, i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if h[parent] >= h[i] {
			return
		}
		h[parent], h[i] = h[i], h[parent]
		i = parent
	}
}

// down restores the max-heap property walking from index i to the leaves.
func down(h []uint64, i int) {
	n := len(h)
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		if l < n && h[l] > h[largest] {
			largest = l
		}
		if r < n && h[r] > h[largest] {
			largest = r
		}
		if largest == i {
			return
		}
		h[i], h[largest] = h[largest], h[i]
		i = largest
	}
}
