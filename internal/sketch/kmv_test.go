package sketch

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestExactBelowM(t *testing.T) {
	k := NewKMV(1024)
	for i := 0; i < 500; i++ {
		k.AddString(fmt.Sprintf("v%d", i))
	}
	if got := k.Estimate(); got != 500 {
		t.Errorf("Estimate below m = %d, want exact 500", got)
	}
}

func TestDuplicatesDoNotInflate(t *testing.T) {
	k := NewKMV(256)
	for pass := 0; pass < 10; pass++ {
		for i := 0; i < 100; i++ {
			k.AddString(fmt.Sprintf("dup%d", i))
		}
	}
	if got := k.Estimate(); got != 100 {
		t.Errorf("Estimate with duplicates = %d, want 100", got)
	}
}

func TestApproximationErrorWithinBounds(t *testing.T) {
	// Standard error of KMV is about 1/sqrt(m-2). With m=2048 that is
	// ~2.2%; allow 5 sigma to keep the test deterministic-ish.
	const m = 2048
	for _, n := range []int{10_000, 100_000, 500_000} {
		k := NewKMV(m)
		for i := 0; i < n; i++ {
			k.AddString(fmt.Sprintf("distinct-%d", i))
		}
		got := float64(k.Estimate())
		rel := math.Abs(got-float64(n)) / float64(n)
		if rel > 5/math.Sqrt(m-2) {
			t.Errorf("n=%d: estimate %.0f, relative error %.4f too large", n, got, rel)
		}
	}
}

func TestIntegerValues(t *testing.T) {
	const m = 1024
	k := NewKMV(m)
	for i := 0; i < 50_000; i++ {
		k.AddUint64(uint64(i))
	}
	got := float64(k.Estimate())
	rel := math.Abs(got-50_000) / 50_000
	if rel > 5/math.Sqrt(m-2) {
		t.Errorf("integer estimate %.0f, relative error %.4f too large", got, rel)
	}
}

func TestMergeMatchesUnion(t *testing.T) {
	const m = 512
	a, b, u := NewKMV(m), NewKMV(m), NewKMV(m)
	for i := 0; i < 30_000; i++ {
		s := fmt.Sprintf("item-%d", i)
		if i%2 == 0 {
			a.AddString(s)
		} else {
			b.AddString(s)
		}
		u.AddString(s)
	}
	a.Merge(b)
	if got, want := a.Estimate(), u.Estimate(); got != want {
		t.Errorf("merged estimate %d != union estimate %d", got, want)
	}
}

func TestMergeWithOverlap(t *testing.T) {
	const m = 512
	a, b := NewKMV(m), NewKMV(m)
	for i := 0; i < 20_000; i++ {
		a.AddString(fmt.Sprintf("x-%d", i))
	}
	for i := 10_000; i < 30_000; i++ { // 50% overlap with a
		b.AddString(fmt.Sprintf("x-%d", i))
	}
	a.Merge(b)
	got := float64(a.Estimate())
	rel := math.Abs(got-30_000) / 30_000
	if rel > 5/math.Sqrt(m-2) {
		t.Errorf("overlap merge estimate %.0f, relative error %.4f", got, rel)
	}
	a.Merge(nil) // must be a no-op
}

func TestAddDictionaryEquivalentToAdds(t *testing.T) {
	vals := make([]string, 5000)
	for i := range vals {
		vals[i] = fmt.Sprintf("dict-%d", i)
	}
	direct := NewKMV(256)
	for _, v := range vals {
		direct.AddString(v)
	}
	viaDict := NewKMV(256)
	viaDict.AddDictionary(len(vals), func(i int) uint64 { return HashString(vals[i]) })
	if direct.Estimate() != viaDict.Estimate() {
		t.Errorf("AddDictionary estimate %d != direct %d", viaDict.Estimate(), direct.Estimate())
	}
}

func TestEmptySketch(t *testing.T) {
	k := NewKMV(16)
	if k.Estimate() != 0 {
		t.Errorf("empty sketch estimate = %d", k.Estimate())
	}
}

func TestNewKMVPanicsOnBadM(t *testing.T) {
	for _, m := range []int{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewKMV(%d) did not panic", m)
				}
			}()
			NewKMV(m)
		}()
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	k := NewKMV(128)
	for i := 0; i < 10_000; i++ {
		k.AddUint64(uint64(i * 31))
	}
	l, err := UnmarshalKMV(k.Marshal())
	if err != nil {
		t.Fatalf("UnmarshalKMV: %v", err)
	}
	if l.Estimate() != k.Estimate() || l.M() != k.M() {
		t.Errorf("round trip changed sketch: %d/%d vs %d/%d", l.Estimate(), l.M(), k.Estimate(), k.M())
	}
}

func TestUnmarshalRejectsCorrupt(t *testing.T) {
	if _, err := UnmarshalKMV(nil); err == nil {
		t.Error("UnmarshalKMV(nil) succeeded")
	}
	k := NewKMV(4)
	k.AddUint64(1)
	raw := k.Marshal()
	if _, err := UnmarshalKMV(raw[:len(raw)-3]); err == nil {
		t.Error("UnmarshalKMV(truncated) succeeded")
	}
}

func TestQuickMergeCommutative(t *testing.T) {
	f := func(xs, ys []uint64) bool {
		a1, b1 := NewKMV(64), NewKMV(64)
		a2, b2 := NewKMV(64), NewKMV(64)
		for _, x := range xs {
			a1.AddUint64(x)
			a2.AddUint64(x)
		}
		for _, y := range ys {
			b1.AddUint64(y)
			b2.AddUint64(y)
		}
		a1.Merge(b1) // a ∪ b
		b2.Merge(a2) // b ∪ a
		return a1.Estimate() == b2.Estimate()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestQuickEstimateNeverNegative(t *testing.T) {
	f := func(xs []uint64) bool {
		k := NewKMV(32)
		for _, x := range xs {
			k.AddUint64(x)
		}
		return k.Estimate() >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkAddString(b *testing.B) {
	k := NewKMV(4096)
	keys := make([]string, 4096)
	r := rand.New(rand.NewSource(7))
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%d-%d", i, r.Int63())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.AddString(keys[i%len(keys)])
	}
}

func BenchmarkMerge(b *testing.B) {
	mk := func(seed int64) *KMV {
		k := NewKMV(4096)
		r := rand.New(rand.NewSource(seed))
		for i := 0; i < 100_000; i++ {
			k.AddUint64(r.Uint64())
		}
		return k
	}
	a, c := mk(1), mk(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cp := NewKMV(4096)
		cp.Merge(a)
		cp.Merge(c)
	}
}
