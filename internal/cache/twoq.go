package cache

import "fmt"

// TwoQ implements the 2Q eviction policy (Johnson and Shasha, VLDB 1994) in
// its full version: a FIFO probationary queue A1in for first-time accesses,
// a ghost queue A1out remembering recently evicted first-timers (keys only),
// and a main LRU queue Am for keys proven hot by a second access. A one-time
// scan streams through A1in without ever displacing the hot set in Am,
// which is the property PowerDrill needs (Section 5).
type TwoQ struct {
	capacity int64
	kin      int64 // byte budget for A1in (25% of capacity, per the paper)
	kout     int   // entry budget for the ghost queue A1out (50% of entries seen)

	items map[string]*entry // resident entries, in a1in or am
	ghost map[string]bool   // keys in A1out (no values)

	a1in       list
	am         list
	ghostOrder []string // FIFO order of ghost keys

	stats   Stats
	onEvict func(key string, value any, size int64)
}

// NewTwoQ creates a 2Q cache holding at most capacity bytes.
func NewTwoQ(capacity int64) *TwoQ {
	if capacity <= 0 {
		panic(fmt.Sprintf("cache: invalid 2Q capacity %d", capacity))
	}
	return &TwoQ{
		capacity: capacity,
		kin:      capacity / 4,
		kout:     1024,
		items:    make(map[string]*entry),
		ghost:    make(map[string]bool),
	}
}

// Name implements Cache.
func (c *TwoQ) Name() string { return "2q" }

// SetCapacity implements Resizer.
func (c *TwoQ) SetCapacity(capacity int64) {
	c.capacity = capacity
	c.kin = capacity / 4
	c.balance()
}

// OnEvict implements EvictionNotifier.
func (c *TwoQ) OnEvict(fn func(key string, value any, size int64)) { c.onEvict = fn }

// Keys implements KeyLister: a peek with no recency or counter effects.
func (c *TwoQ) Keys() []string {
	keys := make([]string, 0, len(c.items))
	for k := range c.items {
		keys = append(keys, k)
	}
	return keys
}

// Contains implements Cache: a peek with no recency or counter effects.
func (c *TwoQ) Contains(key string) bool {
	_, ok := c.items[key]
	return ok
}

// Get implements Cache.
func (c *TwoQ) Get(key string) (any, bool) {
	e, ok := c.items[key]
	if !ok {
		c.stats.Misses++
		return nil, false
	}
	// A second access promotes a probationary page to the hot queue; hits
	// in Am refresh recency as in plain LRU.
	if e.list == &c.a1in {
		c.a1in.remove(e)
		c.am.pushFront(e)
	} else {
		c.am.moveToFront(e)
	}
	c.stats.Hits++
	return e.value, true
}

// Put implements Cache.
func (c *TwoQ) Put(key string, value any, size int64) {
	if size > c.capacity {
		c.Remove(key)
		return
	}
	if e, ok := c.items[key]; ok {
		l := e.list
		l.remove(e)
		e.value, e.size = value, size
		l.pushFront(e)
		c.balance()
		return
	}
	e := &entry{key: key, value: value, size: size}
	if c.ghost[key] {
		// Recently evicted from probation and referenced again: hot.
		delete(c.ghost, key)
		c.am.pushFront(e)
	} else {
		c.a1in.pushFront(e)
	}
	c.items[key] = e
	c.balance()
}

// balance enforces the byte budgets, evicting from A1in first (into the
// ghost queue) and then from Am.
func (c *TwoQ) balance() {
	for c.a1in.bytes+c.am.bytes > c.capacity {
		if c.a1in.bytes > c.kin || c.am.n == 0 {
			victim := c.a1in.back()
			if victim == nil {
				break
			}
			c.a1in.remove(victim)
			delete(c.items, victim.key)
			c.addGhost(victim.key)
			c.stats.Evictions++
			if c.onEvict != nil {
				c.onEvict(victim.key, victim.value, victim.size)
			}
			continue
		}
		victim := c.am.back()
		if victim == nil {
			break
		}
		c.am.remove(victim)
		delete(c.items, victim.key)
		c.stats.Evictions++
		if c.onEvict != nil {
			c.onEvict(victim.key, victim.value, victim.size)
		}
	}
}

// addGhost remembers an evicted probationary key.
func (c *TwoQ) addGhost(key string) {
	if c.ghost[key] {
		return
	}
	c.ghost[key] = true
	c.ghostOrder = append(c.ghostOrder, key)
	for len(c.ghostOrder) > c.kout {
		old := c.ghostOrder[0]
		c.ghostOrder = c.ghostOrder[1:]
		delete(c.ghost, old)
	}
}

// Remove implements Cache.
func (c *TwoQ) Remove(key string) {
	if e, ok := c.items[key]; ok {
		e.list.remove(e)
		delete(c.items, key)
	}
	delete(c.ghost, key)
}

// Len implements Cache.
func (c *TwoQ) Len() int { return len(c.items) }

// SizeBytes implements Cache.
func (c *TwoQ) SizeBytes() int64 { return c.a1in.bytes + c.am.bytes }

// Stats implements Cache.
func (c *TwoQ) Stats() Stats { return c.stats }

var _ Cache = (*TwoQ)(nil)
