package cache

import (
	"fmt"
	"math/rand"
	"testing"
)

// policies returns one fresh cache per implementation, all with the same
// byte budget, so shared behaviours are tested uniformly.
func policies(capacity int64) []Cache {
	return []Cache{NewLRU(capacity), NewTwoQ(capacity), NewARC(capacity)}
}

func TestBasicPutGet(t *testing.T) {
	for _, c := range policies(1000) {
		t.Run(c.Name(), func(t *testing.T) {
			c.Put("a", 1, 100)
			c.Put("b", 2, 100)
			if v, ok := c.Get("a"); !ok || v.(int) != 1 {
				t.Errorf("Get(a) = %v, %v", v, ok)
			}
			if v, ok := c.Get("b"); !ok || v.(int) != 2 {
				t.Errorf("Get(b) = %v, %v", v, ok)
			}
			if _, ok := c.Get("missing"); ok {
				t.Error("Get(missing) hit")
			}
			if c.Len() != 2 || c.SizeBytes() != 200 {
				t.Errorf("Len=%d Size=%d, want 2/200", c.Len(), c.SizeBytes())
			}
		})
	}
}

func TestUpdateExistingKey(t *testing.T) {
	for _, c := range policies(1000) {
		t.Run(c.Name(), func(t *testing.T) {
			c.Put("k", "old", 100)
			c.Put("k", "new", 300)
			if v, _ := c.Get("k"); v != "new" {
				t.Errorf("value after update = %v", v)
			}
			if c.Len() != 1 || c.SizeBytes() != 300 {
				t.Errorf("Len=%d Size=%d after update, want 1/300", c.Len(), c.SizeBytes())
			}
		})
	}
}

func TestBudgetEnforced(t *testing.T) {
	for _, c := range policies(500) {
		t.Run(c.Name(), func(t *testing.T) {
			for i := 0; i < 50; i++ {
				c.Put(fmt.Sprintf("k%d", i), i, 100)
				if c.SizeBytes() > 500 {
					t.Fatalf("budget exceeded: %d bytes after insert %d", c.SizeBytes(), i)
				}
			}
			if c.Stats().Evictions == 0 {
				t.Error("no evictions despite overflow")
			}
		})
	}
}

func TestOversizeEntryNotCached(t *testing.T) {
	for _, c := range policies(100) {
		t.Run(c.Name(), func(t *testing.T) {
			c.Put("big", "x", 1000)
			if _, ok := c.Get("big"); ok {
				t.Error("oversize entry was cached")
			}
			// An oversize rewrite of an existing key must also drop it.
			c.Put("k", 1, 50)
			c.Put("k", 2, 1000)
			if _, ok := c.Get("k"); ok {
				t.Error("oversize rewrite left stale entry")
			}
		})
	}
}

func TestRemove(t *testing.T) {
	for _, c := range policies(1000) {
		t.Run(c.Name(), func(t *testing.T) {
			c.Put("a", 1, 10)
			c.Remove("a")
			if _, ok := c.Get("a"); ok {
				t.Error("removed key still present")
			}
			c.Remove("never-there") // must not panic
			if c.Len() != 0 || c.SizeBytes() != 0 {
				t.Errorf("Len=%d Size=%d after removals", c.Len(), c.SizeBytes())
			}
		})
	}
}

func TestLRUEvictsLeastRecent(t *testing.T) {
	c := NewLRU(300)
	c.Put("a", 1, 100)
	c.Put("b", 2, 100)
	c.Put("c", 3, 100)
	c.Get("a") // refresh a; b becomes the victim
	c.Put("d", 4, 100)
	if _, ok := c.Get("b"); ok {
		t.Error("b survived, want it evicted")
	}
	if _, ok := c.Get("a"); !ok {
		t.Error("a evicted despite refresh")
	}
}

func TestStatsCounters(t *testing.T) {
	for _, c := range policies(1000) {
		t.Run(c.Name(), func(t *testing.T) {
			c.Put("a", 1, 10)
			c.Get("a")
			c.Get("a")
			c.Get("nope")
			s := c.Stats()
			if s.Hits != 2 || s.Misses != 1 {
				t.Errorf("stats = %+v, want 2 hits 1 miss", s)
			}
			if got := s.HitRate(); got < 0.66 || got > 0.67 {
				t.Errorf("HitRate = %f", got)
			}
		})
	}
	if (Stats{}).HitRate() != 0 {
		t.Error("zero Stats HitRate != 0")
	}
}

// TestScanResistance is the behaviour the paper adopts 2Q/ARC for: a hot
// working set accessed repeatedly must survive a one-time scan of many cold
// keys. Plain LRU loses the entire working set; 2Q and ARC must retain a
// decent fraction.
func TestScanResistance(t *testing.T) {
	const capacity = 100 * 10 // 100 entries of size 10
	hot := make([]string, 50)
	for i := range hot {
		hot[i] = fmt.Sprintf("hot%d", i)
	}
	run := func(c Cache) float64 {
		// Warm the working set with repeated accesses.
		for pass := 0; pass < 5; pass++ {
			for _, k := range hot {
				if _, ok := c.Get(k); !ok {
					c.Put(k, k, 10)
				}
			}
		}
		// One-time scan of 1000 cold keys.
		for i := 0; i < 1000; i++ {
			k := fmt.Sprintf("scan%d", i)
			if _, ok := c.Get(k); !ok {
				c.Put(k, k, 10)
			}
		}
		// How much of the hot set survived?
		survived := 0
		for _, k := range hot {
			if _, ok := c.Get(k); ok {
				survived++
			}
		}
		return float64(survived) / float64(len(hot))
	}
	lru := run(NewLRU(capacity))
	twoq := run(NewTwoQ(capacity))
	arc := run(NewARC(capacity))
	if lru > 0.1 {
		t.Logf("note: LRU unexpectedly retained %.0f%% of hot set", lru*100)
	}
	if twoq <= lru {
		t.Errorf("2Q survival %.2f not better than LRU %.2f", twoq, lru)
	}
	if arc <= lru {
		t.Errorf("ARC survival %.2f not better than LRU %.2f", arc, lru)
	}
}

func TestTwoQPromotionOnSecondAccess(t *testing.T) {
	c := NewTwoQ(1000)
	c.Put("x", 1, 10)
	c.Get("x") // promote to Am
	// Flood probation; x must survive since it lives in Am now.
	for i := 0; i < 200; i++ {
		c.Put(fmt.Sprintf("flood%d", i), i, 10)
	}
	if _, ok := c.Get("x"); !ok {
		t.Error("promoted entry evicted by probationary flood")
	}
}

func TestTwoQGhostReadmission(t *testing.T) {
	c := NewTwoQ(200)
	c.Put("g", 1, 50)
	// Evict g from probation.
	for i := 0; i < 20; i++ {
		c.Put(fmt.Sprintf("f%d", i), i, 50)
	}
	if _, ok := c.Get("g"); ok {
		t.Fatal("g should have been evicted")
	}
	// Re-inserting a ghost goes straight to the hot queue.
	c.Put("g", 2, 50)
	for i := 0; i < 20; i++ {
		c.Put(fmt.Sprintf("f2-%d", i), i, 50)
	}
	if _, ok := c.Get("g"); !ok {
		t.Error("ghost readmission did not protect g")
	}
}

func TestARCAdaptsP(t *testing.T) {
	c := NewARC(200)
	// Recency-heavy phase: ghost hits in B1 should grow p.
	for i := 0; i < 100; i++ {
		k := fmt.Sprintf("r%d", i%30)
		if _, ok := c.Get(k); !ok {
			c.Put(k, i, 20)
		}
	}
	if c.Len() == 0 {
		t.Fatal("ARC holds nothing after workload")
	}
	if c.SizeBytes() > 200 {
		t.Fatalf("ARC exceeded budget: %d", c.SizeBytes())
	}
}

func TestConstructorsPanicOnBadCapacity(t *testing.T) {
	for _, f := range []func(){
		func() { NewLRU(0) },
		func() { NewTwoQ(-1) },
		func() { NewARC(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("constructor with bad capacity did not panic")
				}
			}()
			f()
		}()
	}
}

// TestRandomizedConsistency hammers each policy with a random workload and
// checks the structural invariants after every operation.
func TestRandomizedConsistency(t *testing.T) {
	for _, c := range policies(1000) {
		t.Run(c.Name(), func(t *testing.T) {
			r := rand.New(rand.NewSource(42))
			for op := 0; op < 5000; op++ {
				k := fmt.Sprintf("k%d", r.Intn(200))
				switch r.Intn(3) {
				case 0:
					c.Put(k, op, int64(10+r.Intn(90)))
				case 1:
					c.Get(k)
				case 2:
					c.Remove(k)
				}
				if c.SizeBytes() > 1000 {
					t.Fatalf("op %d: budget exceeded (%d bytes)", op, c.SizeBytes())
				}
				if c.SizeBytes() < 0 || c.Len() < 0 {
					t.Fatalf("op %d: negative accounting", op)
				}
			}
		})
	}
}

func BenchmarkGetHit(b *testing.B) {
	for _, c := range policies(1 << 20) {
		b.Run(c.Name(), func(b *testing.B) {
			for i := 0; i < 100; i++ {
				c.Put(fmt.Sprintf("k%d", i), i, 64)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.Get("k50")
			}
		})
	}
}

func BenchmarkPutChurn(b *testing.B) {
	for _, c := range policies(64 * 1024) {
		b.Run(c.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c.Put(fmt.Sprintf("k%d", i%4096), i, 64)
			}
		})
	}
}

func TestKeysEnumeratesEveryPolicy(t *testing.T) {
	for _, c := range policies(1000) {
		t.Run(c.Name(), func(t *testing.T) {
			c.Put("ns1/a", 1, 100)
			c.Put("ns1/b", 2, 100)
			c.Put("ns2/a", 3, 100)
			keys := c.(KeyLister).Keys()
			if len(keys) != 3 {
				t.Fatalf("Keys() = %v, want 3 entries", keys)
			}
			seen := map[string]bool{}
			for _, k := range keys {
				seen[k] = true
			}
			for _, want := range []string{"ns1/a", "ns1/b", "ns2/a"} {
				if !seen[want] {
					t.Errorf("Keys() missing %q: %v", want, keys)
				}
			}
			c.Remove("ns1/b")
			if got := len(c.(KeyLister).Keys()); got != 2 {
				t.Errorf("Keys() after Remove = %d entries, want 2", got)
			}
		})
	}
	// The synchronized wrapper forwards Keys.
	s := NewSynchronized(NewLRU(1000))
	s.Put("x", 1, 10)
	if keys := s.Keys(); len(keys) != 1 || keys[0] != "x" {
		t.Errorf("Synchronized Keys() = %v", keys)
	}
}
