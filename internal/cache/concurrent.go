package cache

import "sync"

// Synchronized wraps a Cache with a mutex, making it safe for concurrent
// use. The eviction policies in this package mutate their recency lists on
// every Get, so even read-only-looking accesses must serialize; the engine's
// parallel chunk workers share one result cache through this wrapper.
//
// The lock is held only for the policy bookkeeping (list moves, map
// lookups), never while computing a value, so contention stays bounded by
// the cache's own constant-time operations.
type Synchronized struct {
	mu    sync.Mutex
	inner Cache
}

// NewSynchronized wraps inner, which must be non-nil.
func NewSynchronized(inner Cache) *Synchronized {
	if inner == nil {
		panic("cache: NewSynchronized(nil)")
	}
	return &Synchronized{inner: inner}
}

// Keys implements KeyLister.
func (s *Synchronized) Keys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inner.(KeyLister).Keys()
}

// Contains implements Cache.
func (s *Synchronized) Contains(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inner.Contains(key)
}

// Get implements Cache.
func (s *Synchronized) Get(key string) (any, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inner.Get(key)
}

// Put implements Cache.
func (s *Synchronized) Put(key string, value any, size int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.inner.Put(key, value, size)
}

// Remove implements Cache.
func (s *Synchronized) Remove(key string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.inner.Remove(key)
}

// Len implements Cache.
func (s *Synchronized) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inner.Len()
}

// SizeBytes implements Cache.
func (s *Synchronized) SizeBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inner.SizeBytes()
}

// Stats implements Cache.
func (s *Synchronized) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inner.Stats()
}

// Name implements Cache.
func (s *Synchronized) Name() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inner.Name()
}

// SetCapacity implements Resizer when the wrapped policy does; it is a
// no-op otherwise.
func (s *Synchronized) SetCapacity(capacity int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if r, ok := s.inner.(Resizer); ok {
		r.SetCapacity(capacity)
	}
}

// OnEvict implements EvictionNotifier when the wrapped policy does; the
// callback runs with the Synchronized mutex held, so it must not call back
// into the cache.
func (s *Synchronized) OnEvict(fn func(key string, value any, size int64)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n, ok := s.inner.(EvictionNotifier); ok {
		n.OnEvict(fn)
	}
}

var _ Cache = (*Synchronized)(nil)
