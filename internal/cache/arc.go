package cache

import "fmt"

// ARC implements an adaptive replacement cache in the spirit of Megiddo and
// Modha (IEEE Computer 2004), the second policy the paper cites for its
// improved cache heuristics. Two resident lists — T1 (seen once recently)
// and T2 (seen at least twice) — are shadowed by ghost lists B1/B2; hits in
// the ghosts adapt the target size p of T1, so the policy continuously
// tunes itself between recency (LRU-like) and frequency (LFU-like)
// behaviour. Sizes are tracked in bytes rather than pages.
type ARC struct {
	capacity int64
	p        int64 // adaptive target byte size of t1

	items  map[string]*entry // resident, in t1 or t2
	b1, b2 map[string]int64  // ghost key -> last seen size
	b1o    []string          // FIFO order for trimming b1
	b2o    []string
	t1, t2 list

	stats   Stats
	onEvict func(key string, value any, size int64)
}

// NewARC creates an adaptive cache holding at most capacity bytes.
func NewARC(capacity int64) *ARC {
	if capacity <= 0 {
		panic(fmt.Sprintf("cache: invalid ARC capacity %d", capacity))
	}
	return &ARC{
		capacity: capacity,
		items:    make(map[string]*entry),
		b1:       make(map[string]int64),
		b2:       make(map[string]int64),
	}
}

// Name implements Cache.
func (c *ARC) Name() string { return "arc" }

// SetCapacity implements Resizer.
func (c *ARC) SetCapacity(capacity int64) {
	c.capacity = capacity
	if c.p > capacity {
		c.p = maxInt64(capacity, 0)
	}
	c.replace(false)
	c.trimGhosts()
}

// OnEvict implements EvictionNotifier.
func (c *ARC) OnEvict(fn func(key string, value any, size int64)) { c.onEvict = fn }

// Keys implements KeyLister: a peek with no recency or counter effects.
func (c *ARC) Keys() []string {
	keys := make([]string, 0, len(c.items))
	for k := range c.items {
		keys = append(keys, k)
	}
	return keys
}

// Contains implements Cache: a peek with no recency or counter effects.
func (c *ARC) Contains(key string) bool {
	_, ok := c.items[key]
	return ok
}

// Get implements Cache.
func (c *ARC) Get(key string) (any, bool) {
	e, ok := c.items[key]
	if !ok {
		c.stats.Misses++
		return nil, false
	}
	// Any repeat access moves the entry to the frequency list T2.
	if e.list == &c.t1 {
		c.t1.remove(e)
		c.t2.pushFront(e)
	} else {
		c.t2.moveToFront(e)
	}
	c.stats.Hits++
	return e.value, true
}

// Put implements Cache.
func (c *ARC) Put(key string, value any, size int64) {
	if size > c.capacity {
		c.Remove(key)
		return
	}
	if e, ok := c.items[key]; ok {
		l := e.list
		l.remove(e)
		e.value, e.size = value, size
		// A rewrite counts as a repeat access.
		c.t2.pushFront(e)
		_ = l
		c.replace(false)
		return
	}
	e := &entry{key: key, value: value, size: size}
	switch {
	case c.b1[key] != 0:
		// Ghost hit in B1: recency is winning, grow p.
		c.p = minInt64(c.capacity, c.p+maxInt64(c.b2Bytes()/maxInt64(c.b1Bytes(), 1), 1)*size)
		c.dropGhost(key)
		c.t2.pushFront(e)
	case c.b2[key] != 0:
		// Ghost hit in B2: frequency is winning, shrink p.
		c.p = maxInt64(0, c.p-maxInt64(c.b1Bytes()/maxInt64(c.b2Bytes(), 1), 1)*size)
		c.dropGhost(key)
		c.t2.pushFront(e)
	default:
		c.t1.pushFront(e)
	}
	c.items[key] = e
	c.replace(c.b2[key] != 0)
	c.trimGhosts()
}

// replace evicts resident entries until the byte budget holds, choosing the
// victim list by comparing |T1| with the adaptive target p.
func (c *ARC) replace(preferT2 bool) {
	for c.t1.bytes+c.t2.bytes > c.capacity {
		var victim *entry
		fromT1 := c.t1.bytes > c.p || (c.t1.bytes == c.p && preferT2) || c.t2.n == 0
		if fromT1 && c.t1.n > 0 {
			victim = c.t1.back()
			c.t1.remove(victim)
			c.addGhost(c.b1, &c.b1o, victim)
		} else {
			victim = c.t2.back()
			if victim == nil {
				return
			}
			c.t2.remove(victim)
			c.addGhost(c.b2, &c.b2o, victim)
		}
		delete(c.items, victim.key)
		c.stats.Evictions++
		if c.onEvict != nil {
			c.onEvict(victim.key, victim.value, victim.size)
		}
	}
}

func (c *ARC) addGhost(m map[string]int64, order *[]string, e *entry) {
	if m[e.key] == 0 {
		*order = append(*order, e.key)
	}
	m[e.key] = e.size
}

// dropGhost removes key from whichever ghost list holds it.
func (c *ARC) dropGhost(key string) {
	delete(c.b1, key)
	delete(c.b2, key)
}

// trimGhosts bounds the ghost directories to one capacity's worth of keys
// each (the classic ARC invariant |L1|+|L2| <= 2c, adapted to bytes).
func (c *ARC) trimGhosts() {
	trim := func(m map[string]int64, order *[]string) {
		var total int64
		for _, s := range m {
			total += s
		}
		for total > c.capacity && len(*order) > 0 {
			old := (*order)[0]
			*order = (*order)[1:]
			if sz, ok := m[old]; ok {
				total -= sz
				delete(m, old)
			}
		}
		// Compact order slices of keys already removed via dropGhost.
		if len(*order) > 4*len(m)+16 {
			kept := (*order)[:0]
			for _, k := range *order {
				if _, ok := m[k]; ok {
					kept = append(kept, k)
				}
			}
			*order = kept
		}
	}
	trim(c.b1, &c.b1o)
	trim(c.b2, &c.b2o)
}

func (c *ARC) b1Bytes() int64 {
	var t int64
	for _, s := range c.b1 {
		t += s
	}
	return t
}

func (c *ARC) b2Bytes() int64 {
	var t int64
	for _, s := range c.b2 {
		t += s
	}
	return t
}

// Remove implements Cache.
func (c *ARC) Remove(key string) {
	if e, ok := c.items[key]; ok {
		e.list.remove(e)
		delete(c.items, key)
	}
	c.dropGhost(key)
}

// Len implements Cache.
func (c *ARC) Len() int { return len(c.items) }

// SizeBytes implements Cache.
func (c *ARC) SizeBytes() int64 { return c.t1.bytes + c.t2.bytes }

// Stats implements Cache.
func (c *ARC) Stats() Stats { return c.stats }

var _ Cache = (*ARC)(nil)

func minInt64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
