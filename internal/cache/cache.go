// Package cache provides the eviction policies PowerDrill layers over its
// in-memory data structures: classic LRU, the scan-resistant 2Q policy of
// Johnson and Shasha (VLDB 1994), and an adaptive policy in the spirit of
// ARC (Megiddo and Modha). The paper (Section 5, "Improved Cache
// Heuristics") replaces LRU because one-time full scans of large tables
// would otherwise flush the working set of the interactive queries.
//
// All policies implement the byte-budgeted Cache interface; values carry an
// explicit size so dictionary blobs, column layers, and cached chunk results
// can share one budget.
package cache

// Cache is a byte-budgeted key/value cache with pluggable eviction.
type Cache interface {
	// Get returns the cached value and whether it was present.
	Get(key string) (any, bool)
	// Contains reports whether the key is resident without touching the
	// policy's recency state or hit/miss counters — a pure peek, so callers
	// (e.g. the memory manager's prefetch planner) can ask "would Get hit?"
	// without distorting the eviction order.
	Contains(key string) bool
	// Put inserts or refreshes a value of the given size in bytes.
	// Entries larger than the capacity are not cached.
	Put(key string, value any, size int64)
	// Remove drops a key if present.
	Remove(key string)
	// Len returns the number of resident entries.
	Len() int
	// SizeBytes returns the total size of resident entries.
	SizeBytes() int64
	// Stats returns cumulative hit/miss/eviction counters.
	Stats() Stats
	// Name identifies the policy ("lru", "2q", "arc").
	Name() string
}

// Resizer is implemented by policies whose byte capacity can change after
// construction. Shrinking evicts immediately; capacities <= 0 evict
// everything and admit nothing until the capacity grows again. The memory
// manager (internal/memmgr) uses this to shrink the evictable tier while
// columns are pinned by in-flight scans.
type Resizer interface {
	SetCapacity(capacity int64)
}

// KeyLister is implemented by policies that can enumerate their resident
// keys — a pure peek, like Contains, with no recency or counter effects.
// The memory manager uses it to drop a whole key namespace at once when a
// store generation is retired (ingest compaction).
type KeyLister interface {
	Keys() []string
}

// EvictionNotifier is implemented by policies that can report budget
// evictions. The callback fires synchronously inside the mutating call
// (Put, Get or SetCapacity) for every entry the policy displaces to satisfy
// its byte budget — not for explicit Remove calls — so callers can keep
// external accounting (e.g. resident-byte gauges) exact.
type EvictionNotifier interface {
	OnEvict(fn func(key string, value any, size int64))
}

// Stats holds cumulative cache counters.
type Stats struct {
	Hits      int64
	Misses    int64
	Evictions int64
}

// HitRate returns Hits / (Hits+Misses), or 0 before any access.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// entry is a doubly-linked-list node used by all policies.
type entry struct {
	key        string
	value      any
	size       int64
	prev, next *entry
	list       *list
}

// list is a tiny intrusive doubly linked list (container/list would box
// entries behind interface{}; this keeps the hot path allocation-free).
type list struct {
	head, tail *entry
	n          int
	bytes      int64
}

func (l *list) pushFront(e *entry) {
	e.list = l
	e.prev = nil
	e.next = l.head
	if l.head != nil {
		l.head.prev = e
	}
	l.head = e
	if l.tail == nil {
		l.tail = e
	}
	l.n++
	l.bytes += e.size
}

func (l *list) remove(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		l.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		l.tail = e.prev
	}
	e.prev, e.next, e.list = nil, nil, nil
	l.n--
	l.bytes -= e.size
}

func (l *list) moveToFront(e *entry) {
	if l.head == e {
		return
	}
	l.remove(e)
	l.pushFront(e)
}

func (l *list) back() *entry { return l.tail }
