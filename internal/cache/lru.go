package cache

import "fmt"

// LRU is a least-recently-used cache with a byte budget.
type LRU struct {
	capacity int64
	items    map[string]*entry
	order    list
	stats    Stats
	onEvict  func(key string, value any, size int64)
}

// NewLRU creates an LRU cache holding at most capacity bytes.
func NewLRU(capacity int64) *LRU {
	if capacity <= 0 {
		panic(fmt.Sprintf("cache: invalid LRU capacity %d", capacity))
	}
	return &LRU{capacity: capacity, items: make(map[string]*entry)}
}

// Name implements Cache.
func (c *LRU) Name() string { return "lru" }

// SetCapacity implements Resizer.
func (c *LRU) SetCapacity(capacity int64) {
	c.capacity = capacity
	c.evictTo(capacity)
}

// OnEvict implements EvictionNotifier.
func (c *LRU) OnEvict(fn func(key string, value any, size int64)) { c.onEvict = fn }

// Keys implements KeyLister: a peek with no recency or counter effects.
func (c *LRU) Keys() []string {
	keys := make([]string, 0, len(c.items))
	for k := range c.items {
		keys = append(keys, k)
	}
	return keys
}

// Contains implements Cache: a peek with no recency or counter effects.
func (c *LRU) Contains(key string) bool {
	_, ok := c.items[key]
	return ok
}

// Get implements Cache.
func (c *LRU) Get(key string) (any, bool) {
	e, ok := c.items[key]
	if !ok {
		c.stats.Misses++
		return nil, false
	}
	c.order.moveToFront(e)
	c.stats.Hits++
	return e.value, true
}

// Put implements Cache.
func (c *LRU) Put(key string, value any, size int64) {
	if size > c.capacity {
		c.Remove(key)
		return
	}
	if e, ok := c.items[key]; ok {
		c.order.remove(e)
		e.value, e.size = value, size
		c.order.pushFront(e)
	} else {
		e = &entry{key: key, value: value, size: size}
		c.items[key] = e
		c.order.pushFront(e)
	}
	c.evictTo(c.capacity)
}

// Remove implements Cache.
func (c *LRU) Remove(key string) {
	if e, ok := c.items[key]; ok {
		c.order.remove(e)
		delete(c.items, key)
	}
}

// evictTo drops least-recently-used entries until the budget fits.
func (c *LRU) evictTo(budget int64) {
	for c.order.bytes > budget {
		victim := c.order.back()
		if victim == nil {
			return
		}
		c.order.remove(victim)
		delete(c.items, victim.key)
		c.stats.Evictions++
		if c.onEvict != nil {
			c.onEvict(victim.key, victim.value, victim.size)
		}
	}
}

// Len implements Cache.
func (c *LRU) Len() int { return len(c.items) }

// SizeBytes implements Cache.
func (c *LRU) SizeBytes() int64 { return c.order.bytes }

// Stats implements Cache.
func (c *LRU) Stats() Stats { return c.stats }

var _ Cache = (*LRU)(nil)
