package expr

import (
	"strings"
	"testing"
	"time"

	"powerdrill/internal/sql"
	"powerdrill/internal/value"
)

// row returns a sample row for evaluation tests.
func row() MapRow {
	ts := time.Date(2011, 11, 24, 13, 45, 0, 0, time.UTC)
	return MapRow{
		"timestamp":  value.Timestamp(ts),
		"country":    value.String("DE"),
		"latency":    value.Int64(120),
		"score":      value.Float64(2.5),
		"table_name": value.String("logs.pd.q_20111124"),
	}
}

// parseExpr extracts the WHERE expression from a wrapper query.
func parsePred(t *testing.T, pred string) sql.Expr {
	t.Helper()
	stmt, err := sql.Parse("SELECT a FROM t WHERE " + pred)
	if err != nil {
		t.Fatalf("parse %q: %v", pred, err)
	}
	return stmt.Where
}

// parseValue extracts the first select item from a wrapper query.
func parseValue(t *testing.T, e string) sql.Expr {
	t.Helper()
	stmt, err := sql.Parse("SELECT " + e + " FROM t")
	if err != nil {
		t.Fatalf("parse %q: %v", e, err)
	}
	return stmt.Items[0].Expr
}

func TestEvalLiteralsAndColumns(t *testing.T) {
	r := row()
	for _, tc := range []struct {
		src  string
		want value.Value
	}{
		{`country`, value.String("DE")},
		{`latency`, value.Int64(120)},
		{`score`, value.Float64(2.5)},
		{`"lit"`, value.String("lit")},
		{`42`, value.Int64(42)},
		{`1.5`, value.Float64(1.5)},
	} {
		got, err := Eval(parseValue(t, tc.src), r)
		if err != nil {
			t.Errorf("%s: %v", tc.src, err)
			continue
		}
		if !got.Equal(tc.want) {
			t.Errorf("%s = %v, want %v", tc.src, got, tc.want)
		}
	}
}

func TestEvalScalarFunctions(t *testing.T) {
	r := row()
	for _, tc := range []struct {
		src  string
		want value.Value
	}{
		{`date(timestamp)`, value.String("2011-11-24")},
		{`year(timestamp)`, value.Int64(2011)},
		{`month(timestamp)`, value.Int64(11)},
		{`day(timestamp)`, value.Int64(24)},
		{`hour(timestamp)`, value.Int64(13)},
		{`lower(country)`, value.String("de")},
		{`upper(country)`, value.String("DE")},
		{`length(table_name)`, value.Int64(18)},
	} {
		got, err := Eval(parseValue(t, tc.src), r)
		if err != nil {
			t.Errorf("%s: %v", tc.src, err)
			continue
		}
		if !got.Equal(tc.want) {
			t.Errorf("%s = %v, want %v", tc.src, got, tc.want)
		}
	}
}

func TestEvalArithmetic(t *testing.T) {
	r := row()
	for _, tc := range []struct {
		src  string
		want value.Value
	}{
		{`latency + 10`, value.Int64(130)},
		{`latency - 20`, value.Int64(100)},
		{`latency * 2`, value.Int64(240)},
		{`latency / 2`, value.Float64(60)},
		{`score * 2`, value.Float64(5)},
		{`latency + score`, value.Float64(122.5)},
		{`-latency`, value.Int64(-120)},
	} {
		got, err := Eval(parseValue(t, tc.src), r)
		if err != nil {
			t.Errorf("%s: %v", tc.src, err)
			continue
		}
		if !got.Equal(tc.want) {
			t.Errorf("%s = %v, want %v", tc.src, got, tc.want)
		}
	}
}

func TestEvalErrors(t *testing.T) {
	r := row()
	for _, src := range []string{
		`nope`,
		`country + 1`,
		`latency / 0`,
		`bogus(latency)`,
		`date(country)`,
		`lower(latency)`,
	} {
		if _, err := Eval(parseValue(t, src), r); err == nil {
			t.Errorf("%s: expected error", src)
		}
	}
}

func TestEvalPred(t *testing.T) {
	r := row()
	for _, tc := range []struct {
		src  string
		want bool
	}{
		{`country = "DE"`, true},
		{`country != "DE"`, false},
		{`latency > 100`, true},
		{`latency >= 120`, true},
		{`latency < 120`, false},
		{`latency <= 119`, false},
		{`latency > 100.5`, true},
		{`country IN ("FR", "DE")`, true},
		{`country NOT IN ("FR", "DE")`, false},
		{`country IN ("FR")`, false},
		{`NOT country = "FR"`, true},
		{`country = "DE" AND latency > 100`, true},
		{`country = "FR" OR latency > 100`, true},
		{`country = "FR" AND latency > 100`, false},
		{`date(timestamp) = "2011-11-24"`, true},
		{`date(timestamp) IN ("2011-11-24", "2011-11-25")`, true},
	} {
		got, err := EvalPred(parsePred(t, tc.src), r)
		if err != nil {
			t.Errorf("%s: %v", tc.src, err)
			continue
		}
		if got != tc.want {
			t.Errorf("%s = %v, want %v", tc.src, got, tc.want)
		}
	}
}

func TestEvalPredErrors(t *testing.T) {
	r := row()
	for _, src := range []string{
		`country = 5`,
		`country > latency`,
		`missing = 1`,
		`latency IN ("x")`,
	} {
		if _, err := EvalPred(parsePred(t, src), r); err == nil {
			t.Errorf("%s: expected error", src)
		}
	}
	// A bare value expression is not a predicate.
	if _, err := EvalPred(parseValue(t, `latency`), r); err == nil {
		t.Error("bare column accepted as predicate")
	}
	if _, err := EvalPred(parseValue(t, `latency + 1`), r); err == nil {
		t.Error("arithmetic accepted as predicate")
	}
}

func TestInferKind(t *testing.T) {
	resolve := func(c string) (value.Kind, bool) {
		switch c {
		case "country", "table_name":
			return value.KindString, true
		case "latency", "timestamp":
			return value.KindInt64, true
		case "score":
			return value.KindFloat64, true
		}
		return value.KindInvalid, false
	}
	for _, tc := range []struct {
		src  string
		want value.Kind
	}{
		{`country`, value.KindString},
		{`latency`, value.KindInt64},
		{`score`, value.KindFloat64},
		{`date(timestamp)`, value.KindString},
		{`year(timestamp)`, value.KindInt64},
		{`latency + 1`, value.KindInt64},
		{`latency / 2`, value.KindFloat64},
		{`latency + score`, value.KindFloat64},
		{`length(country)`, value.KindInt64},
		{`"x"`, value.KindString},
		{`3.5`, value.KindFloat64},
	} {
		got, err := InferKind(parseValue(t, tc.src), resolve)
		if err != nil {
			t.Errorf("%s: %v", tc.src, err)
			continue
		}
		if got != tc.want {
			t.Errorf("InferKind(%s) = %v, want %v", tc.src, got, tc.want)
		}
	}
	for _, src := range []string{`missing`, `country + 1`, `bogus(latency)`} {
		if _, err := InferKind(parseValue(t, src), resolve); err == nil {
			t.Errorf("InferKind(%s): expected error", src)
		}
	}
}

func TestColumns(t *testing.T) {
	e := parsePred(t, `country IN ("a") AND date(timestamp) = "x" OR latency > score`)
	got := Columns(e)
	want := []string{"country", "timestamp", "latency", "score"}
	if len(got) != len(want) {
		t.Fatalf("Columns = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Columns[%d] = %q, want %q", i, got[i], want[i])
		}
	}
	if Columns(nil) != nil {
		t.Error("Columns(nil) != nil")
	}
}

func TestIsLiteral(t *testing.T) {
	if v, ok := IsLiteral(parseValue(t, `"s"`)); !ok || v.Str() != "s" {
		t.Error("string literal")
	}
	if v, ok := IsLiteral(parseValue(t, `5`)); !ok || v.Int() != 5 {
		t.Error("int literal")
	}
	if v, ok := IsLiteral(parseValue(t, `5.5`)); !ok || v.Float() != 5.5 {
		t.Error("float literal")
	}
	if _, ok := IsLiteral(parseValue(t, `latency`)); ok {
		t.Error("column is not a literal")
	}
}

func TestIsScalarFunc(t *testing.T) {
	if !IsScalarFunc("date") || !IsScalarFunc("DATE") {
		t.Error("date not recognized")
	}
	if IsScalarFunc("count") || IsScalarFunc("sum") {
		t.Error("aggregates misclassified as scalar")
	}
}

func TestCanonicalStringsShared(t *testing.T) {
	// The same expression parsed from different whitespace must print
	// identically — virtual-field keys depend on it.
	a := parseValue(t, `date( timestamp )`)
	b := parseValue(t, `date(timestamp)`)
	if a.String() != b.String() {
		t.Errorf("canonical forms differ: %q vs %q", a.String(), b.String())
	}
	if !strings.Contains(a.String(), "date(") {
		t.Errorf("canonical form = %q", a.String())
	}
}
