// Package expr evaluates the scalar expressions of the SQL subset: column
// references, literals, arithmetic, comparisons and the scalar functions
// (date, year, month, hour, lower, upper, length). The executor uses it in
// two places: to materialize virtual fields (paper, Section 5 "Complex
// Expressions" — every non-trivial expression is computed once and stored
// in the datastore's own format) and as the row-level fallback for
// predicates that cannot be mapped to dictionary restrictions.
package expr

import (
	"fmt"
	"strings"
	"time"

	"powerdrill/internal/sql"
	"powerdrill/internal/value"
)

// Row provides column values by name during evaluation.
type Row interface {
	// ColumnValue returns the value of the named column for the current
	// row, or an invalid value if the column does not exist.
	ColumnValue(name string) value.Value
}

// KindResolver reports the kind of a column, for type inference.
type KindResolver func(column string) (value.Kind, bool)

// scalarFuncs maps function name to (argument kind check, result kind).
var scalarFuncs = map[string]struct {
	nargs  int
	result value.Kind
}{
	"date":   {1, value.KindString},
	"year":   {1, value.KindInt64},
	"month":  {1, value.KindInt64},
	"day":    {1, value.KindInt64},
	"hour":   {1, value.KindInt64},
	"lower":  {1, value.KindString},
	"upper":  {1, value.KindString},
	"length": {1, value.KindInt64},
}

// IsScalarFunc reports whether name is a supported scalar function.
func IsScalarFunc(name string) bool {
	_, ok := scalarFuncs[strings.ToLower(name)]
	return ok
}

// InferKind computes the result kind of a value expression (no aggregates,
// no boolean operators).
func InferKind(e sql.Expr, resolve KindResolver) (value.Kind, error) {
	switch n := e.(type) {
	case *sql.Ident:
		k, ok := resolve(n.Name)
		if !ok {
			return value.KindInvalid, fmt.Errorf("expr: unknown column %q", n.Name)
		}
		return k, nil
	case *sql.StringLit:
		return value.KindString, nil
	case *sql.IntLit:
		return value.KindInt64, nil
	case *sql.FloatLit:
		return value.KindFloat64, nil
	case *sql.Call:
		f, ok := scalarFuncs[strings.ToLower(n.Name)]
		if !ok {
			return value.KindInvalid, fmt.Errorf("expr: unknown function %q", n.Name)
		}
		if len(n.Args) != f.nargs || n.Star || n.Distinct {
			return value.KindInvalid, fmt.Errorf("expr: %s expects %d argument(s)", n.Name, f.nargs)
		}
		if _, err := InferKind(n.Args[0], resolve); err != nil {
			return value.KindInvalid, err
		}
		return f.result, nil
	case *sql.Binary:
		switch n.Op {
		case sql.OpAdd, sql.OpSub, sql.OpMul, sql.OpDiv:
			lk, err := InferKind(n.L, resolve)
			if err != nil {
				return value.KindInvalid, err
			}
			rk, err := InferKind(n.R, resolve)
			if err != nil {
				return value.KindInvalid, err
			}
			if lk == value.KindString || rk == value.KindString {
				return value.KindInvalid, fmt.Errorf("expr: arithmetic on strings")
			}
			if lk == value.KindFloat64 || rk == value.KindFloat64 || n.Op == sql.OpDiv {
				return value.KindFloat64, nil
			}
			return value.KindInt64, nil
		default:
			return value.KindInvalid, fmt.Errorf("expr: operator %s is not a value expression", n.Op)
		}
	}
	return value.KindInvalid, fmt.Errorf("expr: unsupported expression %T", e)
}

// Eval computes a value expression for one row.
func Eval(e sql.Expr, row Row) (value.Value, error) {
	switch n := e.(type) {
	case *sql.Ident:
		v := row.ColumnValue(n.Name)
		if !v.IsValid() {
			return value.Value{}, fmt.Errorf("expr: unknown column %q", n.Name)
		}
		return v, nil
	case *sql.StringLit:
		return value.String(n.Val), nil
	case *sql.IntLit:
		return value.Int64(n.Val), nil
	case *sql.FloatLit:
		return value.Float64(n.Val), nil
	case *sql.Call:
		return evalCall(n, row)
	case *sql.Binary:
		return evalArith(n, row)
	}
	return value.Value{}, fmt.Errorf("expr: unsupported expression %T", e)
}

func evalCall(n *sql.Call, row Row) (value.Value, error) {
	name := strings.ToLower(n.Name)
	f, ok := scalarFuncs[name]
	if !ok {
		return value.Value{}, fmt.Errorf("expr: unknown function %q", n.Name)
	}
	if len(n.Args) != f.nargs {
		return value.Value{}, fmt.Errorf("expr: %s expects %d argument(s)", n.Name, f.nargs)
	}
	arg, err := Eval(n.Args[0], row)
	if err != nil {
		return value.Value{}, err
	}
	switch name {
	case "date", "year", "month", "day", "hour":
		if arg.Kind() != value.KindInt64 {
			return value.Value{}, fmt.Errorf("expr: %s expects a timestamp", name)
		}
		t := time.UnixMicro(arg.Int()).UTC()
		switch name {
		case "date":
			return value.String(t.Format("2006-01-02")), nil
		case "year":
			return value.Int64(int64(t.Year())), nil
		case "month":
			return value.Int64(int64(t.Month())), nil
		case "day":
			return value.Int64(int64(t.Day())), nil
		default:
			return value.Int64(int64(t.Hour())), nil
		}
	case "lower", "upper", "length":
		if arg.Kind() != value.KindString {
			return value.Value{}, fmt.Errorf("expr: %s expects a string", name)
		}
		switch name {
		case "lower":
			return value.String(strings.ToLower(arg.Str())), nil
		case "upper":
			return value.String(strings.ToUpper(arg.Str())), nil
		default:
			return value.Int64(int64(len(arg.Str()))), nil
		}
	}
	return value.Value{}, fmt.Errorf("expr: unhandled function %q", name)
}

func evalArith(n *sql.Binary, row Row) (value.Value, error) {
	l, err := Eval(n.L, row)
	if err != nil {
		return value.Value{}, err
	}
	r, err := Eval(n.R, row)
	if err != nil {
		return value.Value{}, err
	}
	if l.Kind() == value.KindString || r.Kind() == value.KindString {
		return value.Value{}, fmt.Errorf("expr: arithmetic on strings")
	}
	// Integer arithmetic stays integral except for division.
	if l.Kind() == value.KindInt64 && r.Kind() == value.KindInt64 && n.Op != sql.OpDiv {
		a, b := l.Int(), r.Int()
		switch n.Op {
		case sql.OpAdd:
			return value.Int64(a + b), nil
		case sql.OpSub:
			return value.Int64(a - b), nil
		case sql.OpMul:
			return value.Int64(a * b), nil
		}
	}
	a, b := l.AsFloat(), r.AsFloat()
	switch n.Op {
	case sql.OpAdd:
		return value.Float64(a + b), nil
	case sql.OpSub:
		return value.Float64(a - b), nil
	case sql.OpMul:
		return value.Float64(a * b), nil
	case sql.OpDiv:
		if b == 0 {
			return value.Value{}, fmt.Errorf("expr: division by zero")
		}
		return value.Float64(a / b), nil
	}
	return value.Value{}, fmt.Errorf("expr: operator %s is not a value expression", n.Op)
}

// EvalPred computes a predicate for one row: comparisons, IN, AND, OR, NOT.
func EvalPred(e sql.Expr, row Row) (bool, error) {
	switch n := e.(type) {
	case *sql.Binary:
		switch n.Op {
		case sql.OpAnd:
			l, err := EvalPred(n.L, row)
			if err != nil {
				return false, err
			}
			if !l {
				return false, nil
			}
			return EvalPred(n.R, row)
		case sql.OpOr:
			l, err := EvalPred(n.L, row)
			if err != nil {
				return false, err
			}
			if l {
				return true, nil
			}
			return EvalPred(n.R, row)
		case sql.OpEq, sql.OpNe, sql.OpLt, sql.OpLe, sql.OpGt, sql.OpGe:
			l, err := Eval(n.L, row)
			if err != nil {
				return false, err
			}
			r, err := Eval(n.R, row)
			if err != nil {
				return false, err
			}
			c, err := compareValues(l, r)
			if err != nil {
				return false, err
			}
			switch n.Op {
			case sql.OpEq:
				return c == 0, nil
			case sql.OpNe:
				return c != 0, nil
			case sql.OpLt:
				return c < 0, nil
			case sql.OpLe:
				return c <= 0, nil
			case sql.OpGt:
				return c > 0, nil
			default:
				return c >= 0, nil
			}
		default:
			return false, fmt.Errorf("expr: operator %s is not a predicate", n.Op)
		}
	case *sql.Not:
		b, err := EvalPred(n.X, row)
		if err != nil {
			return false, err
		}
		return !b, nil
	case *sql.In:
		x, err := Eval(n.X, row)
		if err != nil {
			return false, err
		}
		found := false
		for _, item := range n.List {
			v, err := Eval(item, row)
			if err != nil {
				return false, err
			}
			c, err := compareValues(x, v)
			if err != nil {
				return false, err
			}
			if c == 0 {
				found = true
				break
			}
		}
		return found != n.Negated, nil
	}
	return false, fmt.Errorf("expr: expression %T is not a predicate", e)
}

// compareValues compares possibly mixed-kind numerics; strings only compare
// with strings.
func compareValues(a, b value.Value) (int, error) {
	if a.Kind() == b.Kind() {
		return a.Compare(b), nil
	}
	if a.Kind() == value.KindString || b.Kind() == value.KindString {
		return 0, fmt.Errorf("expr: cannot compare %s with %s", a.Kind(), b.Kind())
	}
	af, bf := a.AsFloat(), b.AsFloat()
	switch {
	case af < bf:
		return -1, nil
	case af > bf:
		return 1, nil
	}
	return 0, nil
}

// Columns returns the distinct column names referenced by e, in first-use
// order.
func Columns(e sql.Expr) []string {
	var out []string
	seen := map[string]bool{}
	var walk func(sql.Expr)
	walk = func(e sql.Expr) {
		switch n := e.(type) {
		case *sql.Ident:
			if !seen[n.Name] {
				seen[n.Name] = true
				out = append(out, n.Name)
			}
		case *sql.Call:
			for _, a := range n.Args {
				walk(a)
			}
		case *sql.Binary:
			walk(n.L)
			walk(n.R)
		case *sql.Not:
			walk(n.X)
		case *sql.In:
			walk(n.X)
			for _, a := range n.List {
				walk(a)
			}
		}
	}
	if e != nil {
		walk(e)
	}
	return out
}

// IsLiteral reports whether e is a literal and returns its value.
func IsLiteral(e sql.Expr) (value.Value, bool) {
	switch n := e.(type) {
	case *sql.StringLit:
		return value.String(n.Val), true
	case *sql.IntLit:
		return value.Int64(n.Val), true
	case *sql.FloatLit:
		return value.Float64(n.Val), true
	}
	return value.Value{}, false
}

// MapRow adapts a map to the Row interface (used in tests and by the
// baseline backends).
type MapRow map[string]value.Value

// ColumnValue implements Row.
func (m MapRow) ColumnValue(name string) value.Value { return m[name] }
