package colstore

import (
	"os"
	"path/filepath"
	"testing"

	"powerdrill/internal/compress"
	"powerdrill/internal/value"
)

// compressByName returns the zippy codec for tests.
func compressByName(t testing.TB) (compress.Codec, error) {
	t.Helper()
	return compress.ByName("zippy")
}

func TestSaveOpenRoundTrip(t *testing.T) {
	src := logs(3000)
	for _, codec := range []string{"", "zippy", "lzoish"} {
		for name, opts := range variants() {
			t.Run(name+"/"+codecLabel(codec), func(t *testing.T) {
				s, err := FromTable(src, opts)
				if err != nil {
					t.Fatal(err)
				}
				dir := t.TempDir()
				if err := Save(s, dir, codec); err != nil {
					t.Fatal(err)
				}
				back, stats, err := Open(dir)
				if err != nil {
					t.Fatal(err)
				}
				if stats.BytesRead <= 0 || stats.Files != len(s.Columns())+1 {
					t.Errorf("stats = %+v", stats)
				}
				if back.NumRows() != s.NumRows() || back.NumChunks() != s.NumChunks() {
					t.Fatalf("shape changed: %d/%d vs %d/%d",
						back.NumRows(), back.NumChunks(), s.NumRows(), s.NumChunks())
				}
				reconstruct(t, back, src)
			})
		}
	}
}

func codecLabel(c string) string {
	if c == "" {
		return "raw"
	}
	return c
}

func TestOpenPreservesVirtualColumns(t *testing.T) {
	s, err := FromTable(logs(500), Options{OptimizeElements: true})
	if err != nil {
		t.Fatal(err)
	}
	vals := make([]value.Value, s.NumRows())
	for i := range vals {
		vals[i] = value.Int64(int64(i % 7))
	}
	if _, err := s.AddVirtualColumn("vf", value.KindInt64, vals); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := Save(s, dir, "zippy"); err != nil {
		t.Fatal(err)
	}
	back, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	col := back.Column("vf")
	if col == nil || !col.Virtual {
		t.Fatal("virtual column lost")
	}
}

func TestCompressedFilesSmaller(t *testing.T) {
	s, err := FromTable(logs(20_000), Options{
		PartitionFields: []string{"country", "table_name"}, MaxChunkRows: 1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	rawDir, zipDir := t.TempDir(), t.TempDir()
	if err := Save(s, rawDir, ""); err != nil {
		t.Fatal(err)
	}
	if err := Save(s, zipDir, "zippy"); err != nil {
		t.Fatal(err)
	}
	if rs, zs := dirSize(t, rawDir), dirSize(t, zipDir); zs >= rs {
		t.Errorf("compressed store %d >= raw %d", zs, rs)
	}
}

func dirSize(t *testing.T, dir string) int64 {
	t.Helper()
	var total int64
	err := filepath.Walk(dir, func(_ string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() {
			total += info.Size()
		}
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	return total
}

func TestOpenErrors(t *testing.T) {
	if _, _, err := Open(t.TempDir()); err == nil {
		t.Error("Open(empty dir) succeeded")
	}
	// Corrupt manifest.
	dir := t.TempDir()
	os.WriteFile(filepath.Join(dir, "manifest.json"), []byte("{not json"), 0o644)
	if _, _, err := Open(dir); err == nil {
		t.Error("Open(corrupt manifest) succeeded")
	}
	// Valid manifest, missing column file.
	dir2 := t.TempDir()
	s, _ := FromTable(logs(100), Options{})
	if err := Save(s, dir2, ""); err != nil {
		t.Fatal(err)
	}
	os.Remove(filepath.Join(dir2, "col_0000.bin"))
	if _, _, err := Open(dir2); err == nil {
		t.Error("Open(missing column) succeeded")
	}
	// Truncated column file.
	dir3 := t.TempDir()
	if err := Save(s, dir3, ""); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir3, "col_0001.bin")
	raw, _ := os.ReadFile(path)
	os.WriteFile(path, raw[:len(raw)/2], 0o644)
	if _, _, err := Open(dir3); err == nil {
		t.Error("Open(truncated column) succeeded")
	}
}

func TestSaveUnknownCodec(t *testing.T) {
	s, _ := FromTable(logs(10), Options{})
	if err := Save(s, t.TempDir(), "bogus"); err == nil {
		t.Error("unknown codec accepted")
	}
}

func BenchmarkSave(b *testing.B) {
	s, err := FromTable(logs(50_000), Options{
		PartitionFields: []string{"country", "table_name"}, MaxChunkRows: 5000,
		OptimizeElements: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	dir := b.TempDir()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := Save(s, dir, "zippy"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOpen(b *testing.B) {
	s, err := FromTable(logs(50_000), Options{
		PartitionFields: []string{"country", "table_name"}, MaxChunkRows: 5000,
		OptimizeElements: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	dir := b.TempDir()
	if err := Save(s, dir, "zippy"); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Open(dir); err != nil {
			b.Fatal(err)
		}
	}
}
