package colstore

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"powerdrill/internal/dict"
	"powerdrill/internal/enc"
	"powerdrill/internal/partition"
	"powerdrill/internal/reorder"
	"powerdrill/internal/table"
	"powerdrill/internal/value"
)

// StringDictKind selects the global-dictionary implementation for string
// columns, corresponding to the paper's optimization steps.
type StringDictKind string

// The available string dictionary implementations.
const (
	// StringDictArray is the canonical sorted array (Sections 2.3–2.5).
	StringDictArray StringDictKind = "array"
	// StringDictTrie is the hand-crafted 4-bit trie (Section 3).
	StringDictTrie StringDictKind = "trie"
	// StringDictSharded splits the dictionary into lazily loaded
	// sub-dictionaries with Bloom filters (Section 5).
	StringDictSharded StringDictKind = "sharded"
)

// Options configures the import pipeline (Section 2.2 and Section 3).
type Options struct {
	// PartitionFields is the ordered composite-range-partitioning key.
	// Empty means a single chunk (the "Basic" layout of Section 2.5).
	PartitionFields []string
	// MaxChunkRows is the split threshold (default 50'000).
	MaxChunkRows int
	// OptimizeElements selects per-chunk minimal element widths
	// (Section 3 "OptCols"); false stores 32-bit elements ("Basic").
	OptimizeElements bool
	// StringDict selects the string dictionary implementation
	// (default StringDictArray).
	StringDict StringDictKind
	// Reorder sorts rows lexicographically by PartitionFields before
	// partitioning (Section 3 "Reordering Rows").
	Reorder bool
	// ShardedDictSize overrides the sub-dictionary size for
	// StringDictSharded (default 8192).
	ShardedDictSize int
	// LazyDicts keeps sharded dictionaries non-resident: sub-dictionaries
	// load on first use and can be evicted, the Section 5 "when only few
	// chunks are active there is no need to have the entire dictionary in
	// memory". Only meaningful with StringDictSharded.
	LazyDicts bool
}

func (o Options) withDefaults() Options {
	if o.MaxChunkRows <= 0 {
		o.MaxChunkRows = 50_000
	}
	if o.StringDict == "" {
		o.StringDict = StringDictArray
	}
	return o
}

// Store is a dictionary-encoded, chunked table: the unit a single machine
// serves (one shard of the distributed system).
//
// Concurrency: a Store is safe for concurrent readers. Column data
// (chunk-dictionaries, element sequences, global dictionaries) is immutable
// after construction, so chunk scans never need a lock. The only mutation a
// live store sees is AddVirtualColumn — the Section 5 materialization of an
// expression during query planning — which registers a fully built, and
// from then on immutable, column; mu guards just that registry so column
// lookups stay safe while another query materializes.
type Store struct {
	Name string
	// Bounds are the chunk row boundaries; chunk c covers rows
	// [Bounds[c], Bounds[c+1]) in store order.
	Bounds []int
	// Opts records how the store was built.
	Opts Options

	// mu guards columns, order and metas. metas used to be immutable after
	// OpenLazy, but persisted virtual columns register new metadata at
	// query time, so metadata reads go through meta()/HasColumn.
	mu      sync.RWMutex
	columns map[string]*Column
	order   []string

	// Lazy stores (OpenLazy) keep only metadata here; physical column data
	// lives in the memory manager and loads on demand. lazy itself is
	// immutable after OpenLazy (its mutable fields carry their own lock).
	lazy  *lazySource
	metas map[string]ColumnMeta
}

// NumRows returns the total number of rows.
func (s *Store) NumRows() int { return s.Bounds[len(s.Bounds)-1] }

// NumChunks returns the number of chunks.
func (s *Store) NumChunks() int { return len(s.Bounds) - 1 }

// ChunkRows returns the number of rows in chunk c.
func (s *Store) ChunkRows(c int) int { return s.Bounds[c+1] - s.Bounds[c] }

// Column returns the named column (physical or virtual), or nil.
//
// On a lazy store this loads a cold physical column from disk in full and
// leaves it unpinned (evictable) — it cannot report *why* a load failed,
// only nil. This is the PinSet-first contract: query execution must go
// through a PinSet (or ColumnErr), which pins what it touches and carries
// the error; Column is a convenience for resident stores, tooling and
// tests, and engine code only reaches it on fallback paths that are
// already pinned.
func (s *Store) Column(name string) *Column {
	c, err := s.ColumnErr(name)
	if err != nil {
		return nil
	}
	return c
}

// ColumnErr is Column with the load error surfaced: on a lazy store a cold
// column is loaded in full (dictionary plus every chunk), left unpinned,
// and any disk or decode failure is returned instead of being swallowed
// into nil. The returned column stays valid even if the manager later
// evicts its entries — the data is immutable and the caller's reference
// keeps it alive; eviction only frees the budget.
func (s *Store) ColumnErr(name string) (*Column, error) {
	if c := s.residentColumn(name); c != nil {
		return c, nil
	}
	if s.lazy == nil {
		return nil, fmt.Errorf("colstore: unknown column %q", name)
	}
	ps := s.NewPinSet()
	defer ps.Release()
	return ps.Column(name)
}

// residentColumn looks the name up in the in-memory registry only.
func (s *Store) residentColumn(name string) *Column {
	s.mu.RLock()
	c := s.columns[name]
	s.mu.RUnlock()
	return c
}

// meta looks up a column's lazy-load metadata under the registry lock.
func (s *Store) meta(name string) (ColumnMeta, bool) {
	s.mu.RLock()
	m, ok := s.metas[name]
	s.mu.RUnlock()
	return m, ok
}

// HasColumn reports whether the store knows the column (resident, virtual
// or lazily loadable) without loading any data.
func (s *Store) HasColumn(name string) bool {
	if s.residentColumn(name) != nil {
		return true
	}
	_, ok := s.meta(name)
	return ok
}

// ColumnMeta returns the column's metadata without loading its data.
func (s *Store) ColumnMeta(name string) (ColumnMeta, bool) {
	if m, ok := s.meta(name); ok {
		return m, true
	}
	if c := s.residentColumn(name); c != nil {
		return ColumnMeta{Name: c.Name, Kind: c.Kind, Virtual: c.Virtual}, true
	}
	return ColumnMeta{}, false
}

// Columns returns all column names in declaration order.
func (s *Store) Columns() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]string(nil), s.order...)
}

// AddColumn registers a column; it must match the store's chunk layout.
func (s *Store) AddColumn(c *Column) error {
	if err := c.checkAligned(s.Bounds); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.metas[c.Name]; dup {
		return fmt.Errorf("colstore: duplicate column %q", c.Name)
	}
	if _, dup := s.columns[c.Name]; dup {
		return fmt.Errorf("colstore: duplicate column %q", c.Name)
	}
	s.columns[c.Name] = c
	s.order = append(s.order, c.Name)
	return nil
}

// FromTable imports a raw table into a column store.
func FromTable(tbl *table.Table, opts Options) (*Store, error) {
	opts = opts.withDefaults()
	if opts.Reorder && len(opts.PartitionFields) > 0 {
		tbl = tbl.Permute(reorder.Lexicographic(tbl, opts.PartitionFields))
	}
	bounds := []int{0, tbl.NumRows()}
	if len(opts.PartitionFields) > 0 {
		res, err := partition.Partition(tbl, partition.Spec{
			Fields:       opts.PartitionFields,
			MaxChunkRows: opts.MaxChunkRows,
		})
		if err != nil {
			return nil, err
		}
		tbl = tbl.Permute(res.Perm)
		bounds = res.Bounds
	}
	if tbl.NumRows() == 0 {
		bounds = []int{0, 0}
	}
	s := &Store{
		Name:    tbl.Name,
		Bounds:  bounds,
		Opts:    opts,
		columns: make(map[string]*Column),
	}
	for _, col := range tbl.Cols {
		built, err := s.buildColumn(col)
		if err != nil {
			return nil, err
		}
		if err := s.AddColumn(built); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// buildColumn dictionary-encodes one raw column against the store layout.
func (s *Store) buildColumn(col *table.Column) (*Column, error) {
	switch col.Kind {
	case value.KindString:
		return s.buildStringColumn(col.Name, col.Strs, false)
	case value.KindInt64:
		return s.buildInt64Column(col.Name, col.Ints, false)
	case value.KindFloat64:
		return s.buildFloat64Column(col.Name, col.Floats, false)
	}
	return nil, fmt.Errorf("colstore: column %q has invalid kind", col.Name)
}

func (s *Store) buildStringColumn(name string, vals []string, virtual bool) (*Column, error) {
	gids := make([]uint32, len(vals))
	ranks := make(map[string]uint32, 1024)
	for _, v := range vals {
		if _, ok := ranks[v]; !ok {
			ranks[v] = 0
		}
	}
	sorted := make([]string, 0, len(ranks))
	for v := range ranks {
		sorted = append(sorted, v)
	}
	sort.Strings(sorted)
	for i, v := range sorted {
		ranks[v] = uint32(i)
	}
	for i, v := range vals {
		gids[i] = ranks[v]
	}
	var d dict.Dict
	switch s.Opts.StringDict {
	case StringDictTrie:
		d = dict.NewTrie(sorted)
	case StringDictSharded:
		d = dict.NewSharded(sorted, dict.ShardedOptions{ShardSize: s.Opts.ShardedDictSize, Retain: !s.Opts.LazyDicts})
	default:
		d = dict.NewStringArray(sorted)
	}
	return s.assemble(name, value.KindString, d, gids, virtual)
}

func (s *Store) buildInt64Column(name string, vals []int64, virtual bool) (*Column, error) {
	seen := make(map[int64]uint32, 1024)
	for _, v := range vals {
		seen[v] = 0
	}
	sorted := make([]int64, 0, len(seen))
	for v := range seen {
		sorted = append(sorted, v)
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for i, v := range sorted {
		seen[v] = uint32(i)
	}
	gids := make([]uint32, len(vals))
	for i, v := range vals {
		gids[i] = seen[v]
	}
	return s.assemble(name, value.KindInt64, dict.NewInt64s(sorted), gids, virtual)
}

func (s *Store) buildFloat64Column(name string, vals []float64, virtual bool) (*Column, error) {
	seen := make(map[float64]uint32, 1024)
	for _, v := range vals {
		if math.IsNaN(v) {
			return nil, fmt.Errorf("colstore: column %q contains NaN", name)
		}
		seen[v] = 0
	}
	sorted := make([]float64, 0, len(seen))
	for v := range seen {
		sorted = append(sorted, v)
	}
	sort.Float64s(sorted)
	for i, v := range sorted {
		seen[v] = uint32(i)
	}
	gids := make([]uint32, len(vals))
	for i, v := range vals {
		gids[i] = seen[v]
	}
	return s.assemble(name, value.KindFloat64, dict.NewFloat64s(sorted), gids, virtual)
}

// assemble cuts a column's per-row global-ids into chunks, builds the
// chunk-dictionaries, and encodes the elements.
func (s *Store) assemble(name string, kind value.Kind, d dict.Dict, gids []uint32, virtual bool) (*Column, error) {
	if len(gids) != s.NumRows() {
		return nil, fmt.Errorf("colstore: column %q has %d rows, store has %d", name, len(gids), s.NumRows())
	}
	col := &Column{Name: name, Kind: kind, Dict: d, Virtual: virtual}
	for c := 0; c < s.NumChunks(); c++ {
		part := gids[s.Bounds[c]:s.Bounds[c+1]]
		// Chunk-dictionary: sorted distinct global-ids of the chunk.
		distinct := make(map[uint32]struct{}, 64)
		for _, g := range part {
			distinct[g] = struct{}{}
		}
		cd := make([]uint32, 0, len(distinct))
		for g := range distinct {
			cd = append(cd, g)
		}
		sort.Slice(cd, func(i, j int) bool { return cd[i] < cd[j] })
		// Chunk-ids are ranks within the chunk-dictionary.
		rank := make(map[uint32]uint32, len(cd))
		for i, g := range cd {
			rank[g] = uint32(i)
		}
		elems := make([]uint32, len(part))
		for i, g := range part {
			elems[i] = rank[g]
		}
		var seq enc.Sequence
		if s.Opts.OptimizeElements {
			seq = enc.Encode(elems, len(cd))
		} else {
			seq = enc.EncodeFixed32(elems)
		}
		col.Chunks = append(col.Chunks, &Chunk{GlobalIDs: cd, Elems: seq})
	}
	return col, nil
}

// buildVirtual dictionary-encodes materialized per-row values into a
// virtual column aligned with the store's chunk layout.
func (s *Store) buildVirtual(name string, kind value.Kind, vals []value.Value) (*Column, error) {
	switch kind {
	case value.KindString:
		raw := make([]string, len(vals))
		for i, v := range vals {
			raw[i] = v.Str()
		}
		return s.buildStringColumn(name, raw, true)
	case value.KindInt64:
		raw := make([]int64, len(vals))
		for i, v := range vals {
			raw[i] = v.Int()
		}
		return s.buildInt64Column(name, raw, true)
	case value.KindFloat64:
		raw := make([]float64, len(vals))
		for i, v := range vals {
			raw[i] = v.Float()
		}
		return s.buildFloat64Column(name, raw, true)
	}
	return nil, fmt.Errorf("colstore: virtual column %q has invalid kind", name)
}

// AddVirtualColumn materializes per-row values (computed by the expression
// engine) as a first-class column in the store's own format — the
// Section 5 "virtual fields" mechanism. The values slice must be in store
// row order. Callers racing on the same name must serialize externally
// (the engine's plan lock does); the registry itself is mutation-safe.
//
// The column lives in the in-memory registry: always resident, never
// evicted, outside any byte budget. On a budget-managed store prefer
// AddVirtualColumnPinned, which persists the materialization next to the
// store so it can be evicted and reloaded like physical data.
func (s *Store) AddVirtualColumn(name string, kind value.Kind, vals []value.Value) (*Column, error) {
	if s.HasColumn(name) {
		// Metadata-only check: on a lazy store, Column(name) here would
		// cold-load the whole column just to prove it exists.
		return nil, fmt.Errorf("colstore: virtual column %q already exists", name)
	}
	col, err := s.buildVirtual(name, kind, vals)
	if err != nil {
		return nil, err
	}
	if err := s.AddColumn(col); err != nil {
		return nil, err
	}
	return col, nil
}

// AddVirtualColumnPinned materializes per-row values like AddVirtualColumn
// and, on a chunk-granular lazy store, persists the new column into the
// store's virtual/ sidecar (see docs/format.md) so it becomes an ordinary
// citizen of the memory subsystem: its global dictionary and chunks are
// registered with the memory manager — charged to the byte budget (cold
// unpinned entries are evicted to make room), evictable once unpinned, and
// reloadable from the sidecar — and pinned into ps for the calling query
// like any physical column. The sidecar also records the column's
// per-chunk value spans, so later restrictions on the expression prune
// chunks from metadata alone.
//
// On fully resident stores, legacy stores without a chunk layout, stores
// with persistence disabled (DisableVirtualPersist), or when the sidecar
// cannot be written (read-only store directory), it falls back to
// AddVirtualColumn's in-registry residency: correct, but unevictable and
// outside the budget (reported by UnevictableVirtualBytes).
func (s *Store) AddVirtualColumnPinned(ps *PinSet, name string, kind value.Kind, vals []value.Value) (*Column, error) {
	if s.lazy == nil || !s.lazy.chunked || s.lazy.noPersist.Load() {
		return s.AddVirtualColumn(name, kind, vals)
	}
	if s.HasColumn(name) {
		// Already materialized (possibly by a racing engine): adopt it.
		return ps.Column(name)
	}
	col, err := s.buildVirtual(name, kind, vals)
	if err != nil {
		return nil, err
	}
	s.lazy.persistMu.Lock()
	if s.HasColumn(name) {
		// Another engine sharing this store won the materialization race
		// (each engine's plan lock only serializes itself): adopt the
		// winner's registered column instead of failing the losing query.
		s.lazy.persistMu.Unlock()
		return ps.Column(name)
	}
	mc, err := s.persistVirtualLocked(col)
	if err != nil {
		s.lazy.persistMu.Unlock()
		// The sidecar could not be written (typically a read-only store
		// directory): keep the query working with in-registry residency.
		if aerr := s.AddColumn(col); aerr != nil {
			return nil, aerr
		}
		return col, nil
	}
	err = s.registerSidecarColumn(mc)
	s.lazy.persistMu.Unlock()
	if err != nil {
		return nil, err
	}
	return ps.adoptVirtual(col)
}

// UnevictableVirtualBytes sums the resident footprint of virtual columns
// living in the in-memory registry — materializations that could not join
// the byte budget (fully resident stores, legacy stores without a chunk
// layout, unwritable store directories, DisableVirtualPersist). Budgeted
// virtual columns are accounted by the memory manager instead
// (memmgr.Stats.VirtualBytes).
func (s *Store) UnevictableVirtualBytes() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var total int64
	for _, c := range s.columns {
		if c.Virtual {
			total += c.Memory().Total()
		}
	}
	return total
}

// MemoryFor sums the footprints of the named columns — the per-query
// memory the paper's tables report ("this reflects only the columns
// present in the individual queries").
func (s *Store) MemoryFor(cols ...string) (MemoryBreakdown, error) {
	var m MemoryBreakdown
	for _, name := range cols {
		// One pin at a time: surfaces lazy-load errors and keeps a budgeted
		// store near its budget while measuring.
		ps := s.NewPinSet()
		c, err := ps.Column(name)
		if err != nil {
			ps.Release()
			return m, err
		}
		m.Add(c.Memory())
		ps.Release()
	}
	return m, nil
}

// floatBitsOf converts a float to its bit pattern (helper for column.go).
func floatBitsOf(f float64) uint64 { return math.Float64bits(f) }
