package colstore

// Manifest format v5: integrity checksums. Save records a CRC32C
// (Castagnoli) per on-disk record — the head record (dictionary plus
// chunk-count varint), every chunk record, and every dictionary shard
// frame — computed over the exact file bytes a cold load reads
// (compressed bytes on per-record-compressed stores, raw bytes
// otherwise). Readers verify on every cold read unless disabled; a
// mismatch degrades like a missing shard: an error carrying file and
// byte range, never a silently wrong answer. v1–v4 stores carry no
// checksums and read unchanged.

import (
	"fmt"
	"hash/crc32"

	"powerdrill/internal/faultfs"
)

// formatChecksums is the first manifest generation carrying per-record
// CRC32C checksums.
const formatChecksums = 5

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// CRC32C returns the Castagnoli CRC of b — the checksum every v5 record
// (and the ingest WAL's frames and generation manifests) carries.
func CRC32C(b []byte) uint32 { return crc32.Checksum(b, castagnoli) }

// vfs returns the filesystem all colstore disk I/O routes through —
// the OS in production, a faultfs.Injector under fault tests.
func vfs() faultfs.FS { return faultfs.Current() }

// ChecksumError reports a record whose stored CRC32C does not match its
// file bytes: the exact file and byte range, so operators can map the
// corruption to a disk block. Detected on cold reads (queries fail
// rather than answer wrong) and by the offline scrub.
type ChecksumError struct {
	Path string
	Off  int64
	Len  int64
	Want uint32
	Got  uint32
}

func (e *ChecksumError) Error() string {
	return fmt.Sprintf("colstore: checksum mismatch in %s at [%d,%d): stored %08x, computed %08x",
		e.Path, e.Off, e.Off+e.Len, e.Want, e.Got)
}

// headFileLen is the byte length of a column's head record (dictionary
// plus chunk-count varint) inside the column file: the compressed head
// record on per-record-compressed stores, the bytes before the first
// chunk otherwise.
func (m *manifest) headFileLen(mc manifestCol, fileLen int64) int64 {
	if m.perChunkCompressed(mc) {
		return mc.DictCLen
	}
	if len(mc.Chunks) > 0 {
		return mc.Chunks[0].Off
	}
	return fileLen
}

// addColChecksums computes the v5 record checksums of one column from
// its final file bytes. perRecord mirrors perChunkCompressed for the
// file being written: it selects which byte ranges delimit the records.
// Dictionary shard frames are only checksummed on uncompressed stores,
// where their offsets index the file directly.
func addColChecksums(mc *manifestCol, data []byte, perRecord bool) {
	head := int64(len(data))
	if perRecord {
		head = mc.DictCLen
	} else if len(mc.Chunks) > 0 {
		head = mc.Chunks[0].Off
	}
	mc.DictCRC = CRC32C(data[:head])
	for i := range mc.Chunks {
		ch := &mc.Chunks[i]
		if perRecord {
			ch.CRC = CRC32C(data[ch.COff : ch.COff+ch.CLen])
		} else {
			ch.CRC = CRC32C(data[ch.Off : ch.Off+ch.Len])
		}
	}
	if !perRecord {
		for i := range mc.DictShards {
			ds := &mc.DictShards[i]
			ds.CRC = CRC32C(data[ds.Off : ds.Off+ds.Len])
		}
	}
}

// verifyColumnFile checks every record checksum of one column against
// its full file bytes. Returns how many records carried a checksum and
// were verified; the first mismatch aborts with a ChecksumError. A
// record whose stored CRC is zero is skipped (zero doubles as "absent"
// in the manifest encoding; a data CRC of exactly zero forgoes its
// check — a 2^-32 gap, documented in docs/format.md).
func verifyColumnFile(m *manifest, mc manifestCol, data []byte, path string) (int, error) {
	if m.Format < formatChecksums {
		return 0, nil
	}
	verified := 0
	check := func(off, n int64, want uint32) error {
		if want == 0 {
			return nil
		}
		if off < 0 || n < 0 || off+n > int64(len(data)) {
			return &ChecksumError{Path: path, Off: off, Len: n, Want: want, Got: 0}
		}
		if got := CRC32C(data[off : off+n]); got != want {
			return &ChecksumError{Path: path, Off: off, Len: n, Want: want, Got: got}
		}
		verified++
		return nil
	}
	if err := check(0, m.headFileLen(mc, int64(len(data))), mc.DictCRC); err != nil {
		return verified, err
	}
	per := m.perChunkCompressed(mc)
	for _, ch := range mc.Chunks {
		off, n := ch.Off, ch.Len
		if per {
			off, n = ch.COff, ch.CLen
		}
		if err := check(off, n, ch.CRC); err != nil {
			return verified, err
		}
	}
	return verified, nil
}

// verifyActive reports whether this reader checks record checksums:
// enabled (the default) and a manifest generation that carries them.
func (r *Reader) verifyActive() bool { return r.verify && r.m.Format >= formatChecksums }

// SetVerify toggles checksum verification on cold reads. On by default;
// v1–v4 stores have nothing to verify either way.
func (r *Reader) SetVerify(v bool) { r.verify = v }

// noteChecksum counts one verification in the reader's I/O stats.
func (r *Reader) noteChecksum(n int, ok bool) {
	r.mu.Lock()
	if ok {
		r.stats.ChecksumVerified += int64(n)
	} else {
		r.stats.ChecksumFailed++
	}
	r.mu.Unlock()
}

// verifyRecord checks one record's file bytes against its stored CRC,
// updating the reader's counters. want == 0 skips (absent checksum).
func (r *Reader) verifyRecord(file string, off int64, rec []byte, want uint32) error {
	if !r.verifyActive() || want == 0 {
		return nil
	}
	if got := CRC32C(rec); got != want {
		r.noteChecksum(0, false)
		return &ChecksumError{Path: r.dir + "/" + file, Off: off, Len: int64(len(rec)), Want: want, Got: got}
	}
	r.noteChecksum(1, true)
	return nil
}

// SetVerifyChecksums toggles cold-read checksum verification on a
// lazily opened store (v5 manifests; earlier generations carry no
// checksums). On by default; a no-op on fully resident stores.
func (s *Store) SetVerifyChecksums(v bool) {
	if s.lazy != nil {
		s.lazy.reader.SetVerify(v)
	}
}

// ChecksumsActive reports whether cold reads of this store verify
// per-record checksums (v5 manifest, verification not disabled).
func (s *Store) ChecksumsActive() bool {
	return s.lazy != nil && s.lazy.reader.verifyActive()
}
