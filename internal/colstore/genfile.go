package colstore

// Generation-file helpers: the commit primitive behind every manifest
// chain in the store ("MANIFEST.gen-NNNNNN.json" ingest generations,
// "virtual/manifest.gen-NNNNNN.json" sidecar generations). A writer
// commits state by claiming the *next* numbered file exclusively; readers
// take the highest-numbered file that parses. Two writers racing on the
// same generation number: exactly one wins the claim, the other re-reads
// the winner's file, merges, and claims the next number — nothing
// committed is ever lost, and a crashed writer's partial file is skipped
// by readers (the previous generation stays authoritative).

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"strconv"
	"strings"
)

// ClaimFileExclusive writes blob to path atomically and exclusively: the
// file appears with its full content or not at all, and if path already
// exists the claim fails with fs.ErrExist and nothing is written. The
// content is staged in a temp file and published with os.Link (atomic,
// fails on an existing target); filesystems without hard links fall back
// to O_EXCL creation, which keeps exclusivity but lets a reader racing the
// write observe a partial file — tolerable for generation files, whose
// readers skip anything that does not parse.
func ClaimFileExclusive(path string, blob []byte) error {
	tmp := fmt.Sprintf("%s.%d.tmp", path, os.Getpid())
	if err := vfs().WriteFile(tmp, blob, 0o644); err != nil {
		return err
	}
	err := vfs().Link(tmp, path)
	_ = vfs().Remove(tmp)
	if err == nil {
		return nil
	}
	if errors.Is(err, fs.ErrExist) {
		return fs.ErrExist
	}
	// No hard-link support: claim with O_EXCL instead.
	f, cerr := vfs().OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if cerr != nil {
		if errors.Is(cerr, fs.ErrExist) {
			return fs.ErrExist
		}
		return cerr
	}
	_, werr := f.Write(blob)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return werr
}

// ParseGenSeq extracts the generation number from a file name of the form
// prefix+NNNN+suffix (e.g. "manifest.gen-000012.json"); ok is false for
// names that do not match.
func ParseGenSeq(name, prefix, suffix string) (int, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	mid := name[len(prefix) : len(name)-len(suffix)]
	if mid == "" {
		return 0, false
	}
	n, err := strconv.Atoi(mid)
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}
