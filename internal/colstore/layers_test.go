package colstore

import (
	"testing"
)

func layeredStore(t *testing.T) *Store {
	t.Helper()
	s, err := FromTable(logs(10_000), Options{
		PartitionFields:  []string{"country", "table_name"},
		MaxChunkRows:     1000,
		OptimizeElements: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestTwoLayerRoundTrip(t *testing.T) {
	s := layeredStore(t)
	tl, err := NewTwoLayer(s, "zippy", 1<<30, 1<<30, "2q")
	if err != nil {
		t.Fatal(err)
	}
	// Every item accessed through the layers must decode to the same
	// elements the store holds.
	for _, name := range s.Columns() {
		col := s.Column(name)
		for ci, ch := range col.Chunks {
			seq, err := tl.Access(name, ci)
			if err != nil {
				t.Fatalf("%s/%d: %v", name, ci, err)
			}
			if seq.Len() != ch.Elems.Len() {
				t.Fatalf("%s/%d: len %d, want %d", name, ci, seq.Len(), ch.Elems.Len())
			}
			for r := 0; r < seq.Len(); r += 97 { // sampled
				if seq.At(r) != ch.Elems.At(r) {
					t.Fatalf("%s/%d row %d: %d != %d", name, ci, r, seq.At(r), ch.Elems.At(r))
				}
			}
		}
	}
}

func TestTwoLayerStateTransitions(t *testing.T) {
	s := layeredStore(t)
	tl, err := NewTwoLayer(s, "zippy", 1<<30, 1<<30, "lru")
	if err != nil {
		t.Fatal(err)
	}
	// First access: disk load (nothing resident yet).
	if _, err := tl.Access("country", 0); err != nil {
		t.Fatal(err)
	}
	st := tl.Stats()
	if st.DiskLoads != 1 || st.HotHits != 0 {
		t.Fatalf("first access stats: %+v", st)
	}
	// Second access: hot hit, free.
	if _, err := tl.Access("country", 0); err != nil {
		t.Fatal(err)
	}
	st = tl.Stats()
	if st.HotHits != 1 || st.DiskLoads != 1 {
		t.Fatalf("second access stats: %+v", st)
	}
}

func TestTwoLayerPromotionWithoutDisk(t *testing.T) {
	s := layeredStore(t)
	// Tiny hot budget: items fall back to the compressed layer quickly,
	// but a large warm budget keeps them in memory — accesses must be
	// promotions, not disk loads.
	tl, err := NewTwoLayer(s, "zippy", 512, 1<<30, "lru")
	if err != nil {
		t.Fatal(err)
	}
	cols := s.Columns()
	for round := 0; round < 3; round++ {
		for _, name := range cols {
			if _, err := tl.Access(name, 0); err != nil {
				t.Fatal(err)
			}
		}
	}
	st := tl.Stats()
	if st.Promotions == 0 {
		t.Errorf("no promotions despite tiny hot layer: %+v", st)
	}
	// After the first round everything lives in the warm layer; later
	// rounds must not touch disk.
	if st.DiskLoads > int64(len(cols)) {
		t.Errorf("disk loads %d exceed first-round loads %d", st.DiskLoads, len(cols))
	}
	hot, warm := tl.ResidentBytes()
	if hot > 512 {
		t.Errorf("hot layer over budget: %d", hot)
	}
	if warm <= 0 {
		t.Error("warm layer empty")
	}
}

func TestTwoLayerEviction(t *testing.T) {
	s := layeredStore(t)
	// Both layers tiny: repeated scans over many chunks must hit disk
	// repeatedly — the cost of not having the memory (the §3 trade).
	tl, err := NewTwoLayer(s, "zippy", 256, 256, "lru")
	if err != nil {
		t.Fatal(err)
	}
	n := s.NumChunks()
	for round := 0; round < 2; round++ {
		for ci := 0; ci < n; ci++ {
			if _, err := tl.Access("latency", ci); err != nil {
				t.Fatal(err)
			}
		}
	}
	st := tl.Stats()
	if st.DiskLoads < int64(n) {
		t.Errorf("expected ≥%d disk loads under tiny budgets, got %d", n, st.DiskLoads)
	}
	if st.DiskBytes <= 0 {
		t.Error("no disk bytes accounted")
	}
}

func TestTwoLayerMemoryVersusDisk(t *testing.T) {
	s := layeredStore(t)
	tl, err := NewTwoLayer(s, "zippy", 1<<30, 1<<30, "2q")
	if err != nil {
		t.Fatal(err)
	}
	// Touch everything so both layers fill.
	for _, name := range s.Columns() {
		for ci := 0; ci < s.NumChunks(); ci++ {
			if _, err := tl.Access(name, ci); err != nil {
				t.Fatal(err)
			}
		}
	}
	hot, warm := tl.ResidentBytes()
	if warm != tl.DiskBytes() {
		t.Errorf("warm layer %d != authoritative compressed %d", warm, tl.DiskBytes())
	}
	if hot <= warm {
		t.Errorf("uncompressed layer %d not larger than compressed %d", hot, warm)
	}
	t.Logf("hot=%d warm=%d (ratio %.1fx)", hot, warm, float64(hot)/float64(warm))
}

func TestTwoLayerErrors(t *testing.T) {
	s := layeredStore(t)
	if _, err := NewTwoLayer(s, "no-such-codec", 1024, 1024, "lru"); err == nil {
		t.Error("unknown codec accepted")
	}
	tl, err := NewTwoLayer(s, "zippy", 1024, 1024, "arc")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tl.Access("missing", 0); err == nil {
		t.Error("missing column accepted")
	}
	if _, err := tl.Access("country", 999); err == nil {
		t.Error("missing chunk accepted")
	}
}
