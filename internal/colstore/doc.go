// Package colstore implements the paper's core contribution: the
// partitioned, doubly dictionary-encoded column layout of Section 2.3,
// its on-disk format, and the Section 5 machinery that keeps only the
// active fraction of it in RAM.
//
// # Layout
//
// Every column stores its values in two indirections:
//
//	value = globalDict[ chunkDict[ elements[row] ] ]
//
// The global-dictionary holds the sorted distinct values of the whole
// column; per chunk, a chunk-dictionary maps the global-ids occurring in
// that chunk to dense chunk-ids (assigned in ascending global-id order);
// the elements are the per-row chunk-ids. The layout gives cheap chunk
// skipping (probe the chunk-dictionaries), small footprints (elements come
// from a small dense range, see package enc), and a group-by inner loop
// that is a dense counts-array increment (Section 2.4).
//
// # Persistence
//
// Save writes a manifest.json plus one binary file per column:
// dictionary header first, then length-prefixed chunk records. The
// manifest also records, per column, the dictionary's byte length and
// each chunk's global-id span and byte range (see manifestChunk) — enough
// metadata to decide which chunks a restriction can match, and to load
// any single dictionary or chunk, without touching the rest of the file.
// With a codec, every record is compressed individually and its
// compressed byte range recorded too (manifest v3), so the exact-read
// property holds under compression; SaveLegacyV2 keeps the old
// whole-column framing for baselines and compatibility tests. See
// docs/format.md for the full layout and compatibility matrix.
//
// # Lazy stores and the Reader
//
// Open loads a store eagerly; OpenLazy reads only the manifest and
// materializes data on demand through a memmgr.Manager. The residency
// unit is the (column, chunk) pair plus one entry per global dictionary;
// stores saved before the manifest carried the chunk layout fall back to
// whole-column entries (Store.ChunkGranular distinguishes them). Reader
// is the decoding layer underneath: LoadColumn, LoadColumnDict and
// LoadColumnChunk go to the files through a bounded handle cache,
// ReadChunkRuns serves contiguous cold chunks with one read per byte run,
// and legacy whole-column-codec streams are decompressed once and
// memoized (bounded, freed by Close). IOStats counts the physical work.
//
// # Virtual columns
//
// Expressions materialized at query time (AddVirtualColumn) are built in
// the store's own format. On a chunk-granular lazy store,
// AddVirtualColumnPinned additionally persists the column into the
// virtual/ sidecar next to the store — same framing, codec and per-chunk
// spans as the parent's columns — and registers its pieces with the
// memory manager, so materializations are budgeted, evictable, reloadable
// and span-prunable exactly like physical data, and survive a reopen.
// When persistence is impossible (resident stores, legacy layouts,
// read-only directories) or disabled, the column falls back to the
// always-resident registry; UnevictableVirtualBytes reports those bytes.
//
// # The PinSet-first contract
//
// Query execution must access lazy columns through a PinSet: it pins
// every dictionary and chunk the query touches from first touch until
// Release, carries load errors, and counts per-query cold loads. The
// convenience accessor Store.Column cannot report why a load failed (it
// returns nil; Store.ColumnErr surfaces the error) and leaves data
// unpinned — it exists for resident stores, tooling and tests. Engine
// code resolves columns during planning via PinSet and caches the
// pointers in the plan, so the scan hot path never takes the manager's
// mutex.
package colstore
