package colstore

// Fuzzing the v5 record-checksum verifier: for any file bytes and any
// record layout, a clean file must verify, and flipping any bit inside a
// checksummed record must fail with a ChecksumError naming the range —
// the "detected, never silently wrong" half of the durability contract.

import (
	"errors"
	"testing"
)

func FuzzChunkChecksum(f *testing.F) {
	f.Add([]byte("a small column file with a head and one chunk"), uint16(10), uint16(3))
	f.Add([]byte{0, 0, 0, 0}, uint16(0), uint16(31))
	f.Fuzz(func(t *testing.T, data []byte, split, flip uint16) {
		if len(data) == 0 {
			return
		}
		// Lay the file out as a head record and two chunk records; the
		// split point and therefore every record boundary is fuzzed.
		h := int(split) % len(data)
		mid := h + (len(data)-h)/2
		mc := manifestCol{File: "col_0000.bin", DictCRC: CRC32C(data[:h])}
		mc.Chunks = []manifestChunk{
			{Off: int64(h), Len: int64(mid - h), CRC: CRC32C(data[h:mid])},
			{Off: int64(mid), Len: int64(len(data) - mid), CRC: CRC32C(data[mid:])},
		}
		m := &manifest{Format: formatChecksums}
		if _, err := verifyColumnFile(m, mc, data, mc.File); err != nil {
			t.Fatalf("clean file fails verification: %v", err)
		}

		// Flip one bit anywhere in the file.
		idx := int(flip) % len(data)
		bit := byte(1) << (flip % 8)
		mut := append([]byte(nil), data...)
		mut[idx] ^= bit

		// The flipped byte lies in exactly one record; the verifier must
		// catch it unless that record's true CRC happens to be zero (the
		// documented 2^-32 skip).
		var want uint32
		switch {
		case idx < h:
			want = mc.DictCRC
		case idx < mid:
			want = mc.Chunks[0].CRC
		default:
			want = mc.Chunks[1].CRC
		}
		_, err := verifyColumnFile(m, mc, mut, mc.File)
		if want == 0 {
			if err != nil {
				t.Fatalf("zero-CRC record must be skipped, got %v", err)
			}
			return
		}
		var ce *ChecksumError
		if !errors.As(err, &ce) {
			t.Fatalf("bit flip at %d (record crc %08x) not detected: err = %v", idx, want, err)
		}
		if ce.Path != mc.File || ce.Want != want {
			t.Fatalf("checksum error misattributed: %+v", ce)
		}
		if int64(idx) < ce.Off || int64(idx) >= ce.Off+ce.Len {
			t.Fatalf("flipped byte %d outside reported range [%d,%d)", idx, ce.Off, ce.Off+ce.Len)
		}

		// A pre-checksum manifest has nothing to verify: the same flip
		// passes silently on v4.
		if _, err := verifyColumnFile(&manifest{Format: formatChecksums - 1}, mc, mut, mc.File); err != nil {
			t.Fatalf("v4 manifest verified checksums: %v", err)
		}
	})
}
