package colstore

import (
	"fmt"
	"math/rand"
	"testing"

	"powerdrill/internal/dict"
	"powerdrill/internal/memmgr"
	"powerdrill/internal/table"
)

// buildShardedStore makes a multi-chunk store with an unsorted
// high-cardinality string column (the shape chunk Blooms and dictionary
// sub-framing exist for) and saves it uncompressed in v4 format.
func buildShardedStore(t *testing.T, rows int) (*Store, string) {
	t.Helper()
	rng := rand.New(rand.NewSource(4))
	tag := make([]string, rows)
	p := make([]string, rows)
	for i := range tag {
		tag[i] = fmt.Sprintf("t%05d", rng.Intn(rows))
		p[i] = fmt.Sprintf("p%02d", i/(rows/8+1))
	}
	tbl := table.New("data").AddStringColumn("tag", tag).AddStringColumn("p", p)
	built, err := FromTable(tbl, Options{
		PartitionFields: []string{"p"},
		MaxChunkRows:    rows / 8,
		StringDict:      StringDictSharded,
	})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := Save(built, dir, ""); err != nil {
		t.Fatal(err)
	}
	return built, dir
}

// TestV4ChunkBloomsNeverFalseNegative pins the persisted filters' soundness
// contract: after a save/load round trip, every global-id actually present
// in a chunk must test positive in that chunk's Bloom filter — a false
// negative would make the residency analysis silently drop matching rows.
func TestV4ChunkBloomsNeverFalseNegative(t *testing.T) {
	built, dir := buildShardedStore(t, 4000)
	lazy, _, err := OpenLazy(dir, memmgr.New(0, "2q"))
	if err != nil {
		t.Fatal(err)
	}
	filters, ok := lazy.ChunkBlooms("tag")
	if !ok || filters == nil {
		t.Fatal("lazy store exposes no chunk Blooms for the sparse column")
	}
	col := built.Column("tag")
	checked := 0
	for ci, ch := range col.Chunks {
		if ci >= len(filters) || filters[ci] == nil {
			continue // dense chunk: span test is exact, no filter persisted
		}
		for _, gid := range ch.GlobalIDs {
			if !filters[ci].TestUint64(uint64(gid)) {
				t.Fatalf("chunk %d: false negative for present gid %d", ci, gid)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no sparse chunk carried a Bloom filter; the dataset should produce some")
	}
}

// TestV4DictSubFramingRoundTrip pins the sub-framed dictionary read path:
// a lazily opened v4 store rebuilds the sharded dictionary from manifest
// frames with zero shards resident, every id resolves to the same value as
// the dictionary it was saved from, and a point lookup pages in one shard.
func TestV4DictSubFramingRoundTrip(t *testing.T) {
	// 40k rows give ~25k distinct values — several 8192-value shards.
	built, dir := buildShardedStore(t, 40000)
	want := built.Column("tag").Dict

	lazy, _, err := OpenLazy(dir, memmgr.New(0, "2q"))
	if err != nil {
		t.Fatal(err)
	}
	ps := lazy.NewPinSet()
	defer ps.Release()
	view, err := ps.ColumnDict("tag")
	if err != nil {
		t.Fatal(err)
	}
	sd, ok := view.Dict.(*dict.Sharded)
	if !ok {
		t.Fatalf("lazy dictionary is %T, want *dict.Sharded (sub-framed load)", view.Dict)
	}
	if sd.Shards() < 2 {
		t.Fatalf("only %d shard(s); sub-framing needs several to mean anything", sd.Shards())
	}
	if got := sd.ResidentShards(); got != 0 {
		t.Fatalf("%d shards resident before any probe, want 0", got)
	}

	// Point probe: exactly one shard pages in.
	probe := want.Value(uint32(want.Len() / 2)).Str()
	id, ok := sd.LookupString(probe)
	if !ok {
		t.Fatalf("lookup of present value %q failed", probe)
	}
	if id != uint32(want.Len()/2) {
		t.Fatalf("LookupString(%q) = %d, want %d", probe, id, want.Len()/2)
	}
	if got := sd.Loads(); got != 1 {
		t.Fatalf("point lookup loaded %d shards, want 1", got)
	}

	// Full sweep: every id resolves identically to the saved dictionary.
	if sd.Len() != want.Len() {
		t.Fatalf("Len = %d, want %d", sd.Len(), want.Len())
	}
	for id := 0; id < want.Len(); id++ {
		if got, exp := sd.StringAt(uint32(id)), want.Value(uint32(id)).Str(); got != exp {
			t.Fatalf("StringAt(%d) = %q, want %q", id, got, exp)
		}
	}
}
