package colstore

import (
	"fmt"
	"path/filepath"
	"sort"
	"time"

	"powerdrill/internal/compress"
	"powerdrill/internal/faultfs"
)

// This file is the Reader's cold-I/O machinery: a bounded per-column file
// handle cache (cold loads stop re-opening the column file), coalesced run
// reads (adjacent cold chunks become one ReadAt), a bounded memo of
// decompressed whole-column streams (legacy compressed stores stop paying
// one full decompress per cold chunk), and the IOStats the benchmarks
// report. All of it sits under Reader.mu; the actual ReadAt calls run
// outside the lock (handles are reference-counted so an eviction never
// closes a file mid-read).

const (
	// maxOpenFiles bounds the Reader's file handle cache.
	maxOpenFiles = 32
	// maxRawCacheBytes bounds the decompressed-stream memo for legacy
	// (whole-column codec) stores.
	maxRawCacheBytes = 64 << 20
	// maxPrefetchBatchBytes bounds the raw record bytes a coalesced
	// prefetch holds in flight (PinSet.ColumnChunks): the byte budget
	// governs decoded residency, so the undecoded staging area must stay
	// small and constant too.
	maxPrefetchBatchBytes = 8 << 20
)

// IOStats counts the Reader's physical I/O and decompression work —
// the cost drivers of the cold path that the byte counters alone
// (DiskBytesRead) cannot separate.
type IOStats struct {
	// FileOpens counts os.Open calls (cache misses in the handle cache).
	FileOpens int64
	// ReadCalls counts ReadAt/ReadFile calls issued.
	ReadCalls int64
	// BytesRead sums the bytes those calls returned.
	BytesRead int64
	// DecompressCalls counts codec record/stream decompressions.
	DecompressCalls int64
	// DecompressNanos sums the wall time spent inside the codec.
	DecompressNanos int64
	// ChecksumVerified counts records whose CRC32C was checked and
	// matched on a cold read (v5 stores with verification enabled).
	ChecksumVerified int64
	// ChecksumFailed counts records whose CRC32C check failed — each one
	// a load that returned a ChecksumError instead of decoded data.
	ChecksumFailed int64
}

// openFile is a reference-counted cached handle. Eviction marks the handle
// doomed; the file closes when the last in-flight read releases it.
type openFile struct {
	f      faultfs.File
	refs   int
	doomed bool
}

// acquireFile returns a cached (or freshly opened) handle for the named
// column file. The caller must call the returned release exactly once;
// reads run outside the lock, and the reference count keeps an evicted
// handle open until its last in-flight read finishes.
func (r *Reader) acquireFile(file string) (faultfs.File, func(), error) {
	r.mu.Lock()
	of, ok := r.files[file]
	if ok {
		r.touchFileLocked(file)
	} else {
		f, err := vfs().Open(filepath.Join(r.dir, file))
		if err != nil {
			r.mu.Unlock()
			return nil, nil, err
		}
		r.stats.FileOpens++
		of = &openFile{f: f}
		if r.files == nil {
			r.files = make(map[string]*openFile, 8)
		}
		r.files[file] = of
		r.fileLRU = append(r.fileLRU, file)
		r.evictFilesLocked()
	}
	of.refs++
	f := of.f
	r.mu.Unlock()
	release := func() {
		r.mu.Lock()
		of.refs--
		doClose := of.doomed && of.refs == 0
		r.mu.Unlock()
		if doClose {
			_ = of.f.Close()
		}
	}
	return f, release, nil
}

// touchFileLocked moves file to the back (most recent) of the LRU order.
func (r *Reader) touchFileLocked(file string) {
	for i, name := range r.fileLRU {
		if name == file {
			r.fileLRU = append(append(r.fileLRU[:i:i], r.fileLRU[i+1:]...), file)
			return
		}
	}
}

// evictFilesLocked enforces maxOpenFiles, closing (or dooming, when still
// referenced) the least recently used handles.
func (r *Reader) evictFilesLocked() {
	for len(r.files) > maxOpenFiles && len(r.fileLRU) > 0 {
		victim := r.fileLRU[0]
		r.fileLRU = r.fileLRU[1:]
		of, ok := r.files[victim]
		if !ok {
			continue
		}
		delete(r.files, victim)
		if of.refs > 0 {
			of.doomed = true
			continue
		}
		_ = of.f.Close()
	}
}

// readRange reads exactly [off, off+n) of a column file through the handle
// cache.
func (r *Reader) readRange(file string, off, n int64) ([]byte, error) {
	f, release, err := r.acquireFile(file)
	if err != nil {
		return nil, err
	}
	defer release()
	buf := make([]byte, n)
	if _, err := f.ReadAt(buf, off); err != nil {
		return nil, err
	}
	r.mu.Lock()
	r.stats.ReadCalls++
	r.stats.BytesRead += n
	r.mu.Unlock()
	return buf, nil
}

// decompress wraps codec.Decompress with the IOStats timing counters.
func (r *Reader) decompress(codec compress.Codec, dst, src []byte) ([]byte, error) {
	start := time.Now()
	out, err := codec.Decompress(dst, src)
	elapsed := time.Since(start)
	r.mu.Lock()
	r.stats.DecompressCalls++
	r.stats.DecompressNanos += int64(elapsed)
	r.mu.Unlock()
	return out, err
}

// decompressColumnFile is the package-level helper with the Reader's
// timing counters applied (one timed span covering all records).
func (r *Reader) decompressColumnFile(codec compress.Codec, mc manifestCol, data []byte) ([]byte, error) {
	start := time.Now()
	raw, err := decompressColumnFile(codec, mc, data)
	elapsed := time.Since(start)
	r.mu.Lock()
	r.stats.DecompressCalls += int64(len(mc.Chunks)) + 1
	r.stats.DecompressNanos += int64(elapsed)
	r.mu.Unlock()
	return raw, err
}

// IOStats returns a snapshot of the Reader's physical I/O counters.
func (r *Reader) IOStats() IOStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}

// Close releases the Reader's cached file handles and decompressed-stream
// memo. The Reader stays usable afterwards (subsequent loads re-open
// files); Close only frees resources.
func (r *Reader) Close() error {
	r.mu.Lock()
	var toClose []faultfs.File
	for _, of := range r.files {
		// refs/doomed are guarded by r.mu: a handle still held by an
		// in-flight read is doomed here and closed by its release.
		if of.refs > 0 {
			of.doomed = true
			continue
		}
		toClose = append(toClose, of.f)
	}
	r.files = nil
	r.fileLRU = nil
	r.rawCache = nil
	r.rawOrder = nil
	r.rawBytes = 0
	r.mu.Unlock()
	for _, f := range toClose {
		_ = f.Close()
	}
	return nil
}

// cachedStream returns the memoized decompressed stream for a legacy
// compressed column, if present.
func (r *Reader) cachedStream(name string) ([]byte, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	raw, ok := r.rawCache[name]
	if ok {
		r.touchRawLocked(name)
	}
	return raw, ok
}

// memoizeStream stores a legacy column's decompressed stream, bounded by
// maxRawCacheBytes (least recently used streams are dropped first).
func (r *Reader) memoizeStream(name string, raw []byte) {
	if int64(len(raw)) > maxRawCacheBytes {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.rawCache[name]; ok {
		r.touchRawLocked(name)
		return
	}
	if r.rawCache == nil {
		r.rawCache = make(map[string][]byte, 8)
	}
	r.rawCache[name] = raw
	r.rawOrder = append(r.rawOrder, name)
	r.rawBytes += int64(len(raw))
	for r.rawBytes > maxRawCacheBytes && len(r.rawOrder) > 0 {
		victim := r.rawOrder[0]
		r.rawOrder = r.rawOrder[1:]
		if b, ok := r.rawCache[victim]; ok {
			r.rawBytes -= int64(len(b))
			delete(r.rawCache, victim)
		}
	}
}

// touchRawLocked moves name to the back of the raw-memo LRU order.
func (r *Reader) touchRawLocked(name string) {
	for i, n := range r.rawOrder {
		if n == name {
			r.rawOrder = append(append(r.rawOrder[:i:i], r.rawOrder[i+1:]...), name)
			return
		}
	}
}

// exactChunkReads reports whether the column's chunk records live at exact
// byte ranges in the file: an uncompressed store with a chunk layout, or a
// per-record-compressed (v3) store. Only then can cold loads be served by
// ReadAt without touching the rest of the column.
func (r *Reader) exactChunkReads(mc manifestCol) bool {
	if !r.hasLayout(mc) {
		return false
	}
	return r.m.Codec == "" || r.m.perChunkCompressed(mc)
}

// ChunkFileRange returns the byte range of chunk ci's record in the column
// file — compressed bytes on a v3 store, raw bytes on an uncompressed one.
// ok is false when the layout cannot serve exact reads (legacy manifests,
// whole-column codecs) or the chunk index is out of range.
func (r *Reader) ChunkFileRange(name string, ci int) (off, n int64, ok bool) {
	mc, found := r.colMeta(name)
	if !found || !r.exactChunkReads(mc) || ci < 0 || ci >= len(mc.Chunks) {
		return 0, 0, false
	}
	meta := mc.Chunks[ci]
	if r.m.perChunkCompressed(mc) {
		return meta.COff, meta.CLen, true
	}
	return meta.Off, meta.Len, true
}

// DictFileLen returns the byte length of the head record (dictionary) read
// by an exact dictionary load, and whether exact dictionary reads apply.
func (r *Reader) DictFileLen(name string) (int64, bool) {
	mc, found := r.colMeta(name)
	if !found || !r.hasLayout(mc) {
		return 0, false
	}
	if r.m.perChunkCompressed(mc) {
		return mc.DictCLen, true
	}
	if r.m.Codec != "" {
		return 0, false
	}
	if r.m.Format >= formatChecksums && len(mc.Chunks) > 0 {
		// v5 checksums cover the whole head record (dictionary plus
		// chunk-count varint), so exact dictionary reads span it fully;
		// the decoder ignores the trailing varint.
		return mc.Chunks[0].Off, true
	}
	return mc.DictLen, true
}

// DecodeChunkRecord decodes one chunk from its file-level record bytes (as
// delimited by ChunkFileRange): a compressed record on v3 stores, the raw
// record otherwise.
func (r *Reader) DecodeChunkRecord(name string, ci int, rec []byte) (*Chunk, error) {
	mc, ok := r.colMeta(name)
	if !ok {
		return nil, fmt.Errorf("colstore: unknown column %q", name)
	}
	if ci < 0 || ci >= len(mc.Chunks) {
		return nil, fmt.Errorf("colstore: column %q has %d chunks, want %d", name, len(mc.Chunks), ci)
	}
	off := mc.Chunks[ci].Off
	if r.m.perChunkCompressed(mc) {
		off = mc.Chunks[ci].COff
	}
	if err := r.verifyRecord(mc.File, off, rec, mc.Chunks[ci].CRC); err != nil {
		return nil, err
	}
	raw := rec
	if r.m.perChunkCompressed(mc) {
		var err error
		raw, err = r.decompress(mustCodec(r.m.Codec), nil, rec)
		if err != nil {
			return nil, fmt.Errorf("colstore: column %q chunk %d: %w", name, ci, err)
		}
		if int64(len(raw)) != mc.Chunks[ci].Len {
			return nil, fmt.Errorf("colstore: column %q chunk %d: %w", name, ci, errTruncated)
		}
	}
	ch, err := decodeChunk(&byteReader{buf: raw})
	if err != nil {
		return nil, fmt.Errorf("colstore: column %q chunk %d: %w", name, ci, err)
	}
	return ch, nil
}

// streamLen is the byte length of a laid-out column's uncompressed stream
// (the last chunk record's end); 0 without a layout.
func streamLen(mc manifestCol) int64 {
	if len(mc.Chunks) == 0 {
		return 0
	}
	last := mc.Chunks[len(mc.Chunks)-1]
	return last.Off + last.Len
}

// recordShare attributes a whole-column-codec load to one record: the
// record's proportional share of the column file's on-disk bytes
// (fileBytes × recLen ⁄ streamLen, at least 1 for a non-empty record).
// Before this, the first load to touch such a column was charged the whole
// file and every later (memoized) load charged 0 — per-query DiskBytesRead
// depended on which query happened to arrive first. The share is computed
// from manifest metadata plus the file size memoized on first read, so it
// is deterministic per record; physical reads are still counted exactly in
// IOStats.BytesRead.
func (r *Reader) recordShare(mc manifestCol, recLen int64) int64 {
	stream := streamLen(mc)
	if stream <= 0 || recLen <= 0 {
		return 0
	}
	r.mu.Lock()
	fileSize := r.fileSizes[mc.File]
	r.mu.Unlock()
	if fileSize <= 0 {
		// Unknown file size (no read has happened, so no charge to split).
		return 0
	}
	share := int64(float64(fileSize) * float64(recLen) / float64(stream))
	if share < 1 {
		share = 1
	}
	return share
}

// mustCodec resolves a codec name that the manifest already validated; an
// unknown name at this point is an initialization bug.
func mustCodec(name string) compress.Codec {
	c, err := compress.ByName(name)
	if err != nil {
		panic("colstore: " + err.Error())
	}
	return c
}

// byteRun is one contiguous byte range covering consecutive chunk records.
type byteRun struct {
	off, n int64
	chunks []int
}

// ReadChunkRuns reads the records of the given chunks, coalescing records
// that are adjacent in the file into single ReadAt calls. It returns the
// per-chunk record bytes (pass each to DecodeChunkRecord), the number of
// read runs issued, and the number of reads coalescing saved (a run of m
// chunks is one read instead of m, saving m−1). ok is false when the
// column cannot serve exact reads — callers fall back to per-chunk loads.
func (r *Reader) ReadChunkRuns(name string, chunks []int) (recs map[int][]byte, runs, coalesced int, ok bool, err error) {
	mc, found := r.colMeta(name)
	if !found || !r.exactChunkReads(mc) || len(chunks) == 0 {
		return nil, 0, 0, false, nil
	}
	sorted := append([]int(nil), chunks...)
	sort.Ints(sorted)
	var plan []byteRun
	for _, ci := range sorted {
		off, n, rok := r.ChunkFileRange(name, ci)
		if !rok {
			return nil, 0, 0, false, fmt.Errorf("colstore: column %q has no range for chunk %d", name, ci)
		}
		if last := len(plan) - 1; last >= 0 && plan[last].off+plan[last].n == off {
			plan[last].n += n
			plan[last].chunks = append(plan[last].chunks, ci)
			continue
		}
		plan = append(plan, byteRun{off: off, n: n, chunks: []int{ci}})
	}
	recs = make(map[int][]byte, len(sorted))
	for _, run := range plan {
		buf, err := r.readRange(mc.File, run.off, run.n)
		if err != nil {
			return nil, 0, 0, false, fmt.Errorf("colstore: load column %q chunks %v: %w", name, run.chunks, err)
		}
		pos := int64(0)
		for _, ci := range run.chunks {
			_, n, _ := r.ChunkFileRange(name, ci)
			recs[ci] = buf[pos : pos+n : pos+n]
			pos += n
		}
		coalesced += len(run.chunks) - 1
	}
	return recs, len(plan), coalesced, true, nil
}
