package colstore

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"powerdrill/internal/memmgr"
)

// flipBit flips one bit in the middle of a record's byte range on disk.
func flipBit(t *testing.T, path string, off int64) {
	t.Helper()
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	blob[off] ^= 0x10
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestV5BitFlipDetectedOnEagerOpen: a flipped bit anywhere inside a
// column file's verified ranges fails the eager Open with a
// ChecksumError naming the file — never a silently wrong store.
func TestV5BitFlipDetectedOnEagerOpen(t *testing.T) {
	for _, codec := range []string{"", "zippy"} {
		t.Run(codecLabel(codec), func(t *testing.T) {
			_, dir := buildSavedStore(t, 2000, codec)
			ents, err := os.ReadDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			corrupted := false
			for _, ent := range ents {
				if !strings.HasSuffix(ent.Name(), ".bin") {
					continue
				}
				path := filepath.Join(dir, ent.Name())
				fi, err := os.Stat(path)
				if err != nil {
					t.Fatal(err)
				}
				orig, err := os.ReadFile(path)
				if err != nil {
					t.Fatal(err)
				}
				for _, off := range []int64{4, fi.Size() / 3, fi.Size() / 2, fi.Size() - 2} {
					flipBit(t, path, off)
					_, _, err := Open(dir)
					if err == nil {
						t.Fatalf("%s: flip at %d not detected on open", ent.Name(), off)
					}
					var ce *ChecksumError
					if errors.As(err, &ce) {
						if ce.Path == "" || ce.Len <= 0 {
							t.Fatalf("%s: checksum error without location: %+v", ent.Name(), ce)
						}
						corrupted = true
					}
					if err := os.WriteFile(path, orig, 0o644); err != nil {
						t.Fatal(err)
					}
				}
			}
			if !corrupted {
				t.Fatal("no flip produced a ChecksumError — verification not active?")
			}
			// Restored files open clean again.
			if _, _, err := Open(dir); err != nil {
				t.Fatalf("restored store fails to open: %v", err)
			}
		})
	}
}

// TestV5BitFlipDetectedOnColdRead: the lazy path verifies each record as
// it is cold-loaded; a flipped bit surfaces as a read error on the
// touched column and is counted in the pin set's failure counter.
func TestV5BitFlipDetectedOnColdRead(t *testing.T) {
	for _, codec := range []string{"", "zippy"} {
		t.Run(codecLabel(codec), func(t *testing.T) {
			built, dir := buildSavedStore(t, 2000, codec)
			name := built.Columns()[0]
			path := filepath.Join(dir, "col_0000.bin")
			fi, err := os.Stat(path)
			if err != nil {
				t.Fatal(err)
			}
			flipBit(t, path, fi.Size()/2)

			lazy, _, err := OpenLazy(dir, memmgr.New(0, ""))
			if err != nil {
				t.Fatal(err)
			}
			defer lazy.Close()
			ps := lazy.NewPinSet()
			defer ps.Release()
			_, err = ps.Column(name)
			if err == nil {
				t.Fatal("corrupt column read succeeded")
			}
			var ce *ChecksumError
			if !errors.As(err, &ce) {
				t.Fatalf("err = %v, want ChecksumError", err)
			}
			if ps.ChecksumFailed == 0 {
				t.Fatal("ChecksumFailed counter not incremented")
			}
		})
	}
}

// TestV5ChecksumCountersCountColdLoads: clean cold reads tally
// ChecksumVerified on the pin set and the reader's IO stats.
func TestV5ChecksumCountersCountColdLoads(t *testing.T) {
	built, dir := buildSavedStore(t, 2000, "zippy")
	lazy, _, err := OpenLazy(dir, memmgr.New(0, ""))
	if err != nil {
		t.Fatal(err)
	}
	defer lazy.Close()
	ps := lazy.NewPinSet()
	for _, name := range built.Columns() {
		if _, err := ps.Column(name); err != nil {
			t.Fatal(err)
		}
	}
	if ps.ChecksumVerified == 0 || ps.ChecksumFailed != 0 {
		t.Fatalf("pin-set counters = %d verified / %d failed", ps.ChecksumVerified, ps.ChecksumFailed)
	}
	ps.Release()
	if st, ok := lazy.IOStats(); !ok || st.ChecksumVerified == 0 || st.ChecksumFailed != 0 {
		t.Fatalf("io counters = %+v (ok=%v)", st, ok)
	}
}

// TestV5ManifestWithoutCRCsStillReads: a v5 manifest whose CRC fields
// were stripped (the 2^-32 want==0 escape hatch, and the shape of a
// hand-edited manifest) opens and reads identically — verification is
// skipped per record, not failed.
func TestV5ManifestWithoutCRCsStillReads(t *testing.T) {
	built, dir := buildSavedStore(t, 1200, "")
	mpath := filepath.Join(dir, "manifest.json")
	blob, err := os.ReadFile(mpath)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(blob, &m); err != nil {
		t.Fatal(err)
	}
	var strip func(v any)
	strip = func(v any) {
		switch x := v.(type) {
		case map[string]any:
			delete(x, "crc")
			delete(x, "dict_crc")
			for _, sub := range x {
				strip(sub)
			}
		case []any:
			for _, sub := range x {
				strip(sub)
			}
		}
	}
	strip(m)
	out, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(mpath, out, 0o644); err != nil {
		t.Fatal(err)
	}
	back, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	assertColumnsEqual(t, built, back)
}

// TestSetVerifyChecksumsOff: with verification disabled, cold reads do
// not tally verification work.
func TestSetVerifyChecksumsOff(t *testing.T) {
	built, dir := buildSavedStore(t, 1200, "zippy")
	lazy, _, err := OpenLazy(dir, memmgr.New(0, ""))
	if err != nil {
		t.Fatal(err)
	}
	defer lazy.Close()
	lazy.SetVerifyChecksums(false)
	ps := lazy.NewPinSet()
	defer ps.Release()
	for _, name := range built.Columns() {
		if _, err := ps.Column(name); err != nil {
			t.Fatal(err)
		}
	}
	if ps.ChecksumVerified != 0 || ps.ChecksumFailed != 0 {
		t.Fatalf("counters with verify off = %d/%d", ps.ChecksumVerified, ps.ChecksumFailed)
	}
}
