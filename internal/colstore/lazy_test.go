package colstore

import (
	"encoding/json"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"powerdrill/internal/memmgr"
	"powerdrill/internal/workload"
)

// buildSavedStore imports a synthetic table and persists it.
func buildSavedStore(t *testing.T, rows int, codec string) (*Store, string) {
	t.Helper()
	tbl := workload.QueryLogs(workload.LogsSpec{Rows: rows, Seed: 7})
	s, err := FromTable(tbl, Options{
		PartitionFields:  []string{"country", "table_name"},
		MaxChunkRows:     500,
		OptimizeElements: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := Save(s, dir, codec); err != nil {
		t.Fatal(err)
	}
	return s, dir
}

// assertColumnsEqual compares every value of every column of two stores.
func assertColumnsEqual(t *testing.T, want, got *Store) {
	t.Helper()
	wantCols := want.Columns()
	gotCols := got.Columns()
	if len(wantCols) != len(gotCols) {
		t.Fatalf("column count %d vs %d", len(wantCols), len(gotCols))
	}
	for _, name := range wantCols {
		wc, gc := want.Column(name), got.Column(name)
		if wc == nil || gc == nil {
			t.Fatalf("column %q missing (want %v, got %v)", name, wc != nil, gc != nil)
		}
		if wc.Kind != gc.Kind || len(wc.Chunks) != len(gc.Chunks) {
			t.Fatalf("column %q shape mismatch", name)
		}
		for ci := range wc.Chunks {
			rows := wc.Chunks[ci].Rows()
			if rows != gc.Chunks[ci].Rows() {
				t.Fatalf("column %q chunk %d rows mismatch", name, ci)
			}
			for r := 0; r < rows; r++ {
				if !wc.ValueAt(ci, r).Equal(gc.ValueAt(ci, r)) {
					t.Fatalf("column %q chunk %d row %d: %v != %v",
						name, ci, r, wc.ValueAt(ci, r), gc.ValueAt(ci, r))
				}
			}
		}
	}
}

func TestOpenLazyMatchesOpen(t *testing.T) {
	for _, codec := range []string{"", "zippy"} {
		name := codec
		if name == "" {
			name = "raw"
		}
		t.Run(name, func(t *testing.T) {
			built, dir := buildSavedStore(t, 3000, codec)
			eager, _, err := Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			lazy, stats, err := OpenLazy(dir, memmgr.New(0, "2q"))
			if err != nil {
				t.Fatal(err)
			}
			if stats.Files != 1 {
				t.Fatalf("lazy open read %d files, want manifest only", stats.Files)
			}
			if lazy.NumRows() != built.NumRows() || lazy.NumChunks() != built.NumChunks() {
				t.Fatalf("lazy shape %d/%d, want %d/%d",
					lazy.NumRows(), lazy.NumChunks(), built.NumRows(), built.NumChunks())
			}
			assertColumnsEqual(t, eager, lazy)
		})
	}
}

func TestReaderSingleChunk(t *testing.T) {
	_, dir := buildSavedStore(t, 2000, "zippy")
	eager, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	r, _, err := NewReader(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range eager.Columns() {
		want := eager.Column(name)
		for ci := range want.Chunks {
			ch, disk, err := r.LoadColumnChunk(name, ci)
			if err != nil {
				t.Fatalf("column %q chunk %d: %v", name, ci, err)
			}
			if disk <= 0 {
				t.Fatalf("column %q chunk %d: no disk bytes charged", name, ci)
			}
			wch := want.Chunks[ci]
			if ch.Rows() != wch.Rows() || ch.Cardinality() != wch.Cardinality() {
				t.Fatalf("column %q chunk %d shape mismatch", name, ci)
			}
			for i, gid := range wch.GlobalIDs {
				if ch.GlobalIDs[i] != gid {
					t.Fatalf("column %q chunk %d gid %d mismatch", name, ci, i)
				}
			}
			for rIdx := 0; rIdx < wch.Rows(); rIdx++ {
				if ch.Elems.At(rIdx) != wch.Elems.At(rIdx) {
					t.Fatalf("column %q chunk %d elem %d mismatch", name, ci, rIdx)
				}
			}
		}
	}
	if _, _, err := r.LoadColumnChunk("country", 9999); err == nil {
		t.Fatal("out-of-range chunk should error")
	}
	if _, _, err := r.LoadColumn("nope"); err == nil {
		t.Fatal("unknown column should error")
	}
}

func TestLazyEvictionReloadDeterministic(t *testing.T) {
	_, dir := buildSavedStore(t, 3000, "zippy")
	eager, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Budget fits roughly one column: every full sweep over all columns
	// evicts and reloads.
	var total int64
	for _, name := range eager.Columns() {
		total += eager.Column(name).Memory().Total()
	}
	budget := total / int64(len(eager.Columns()))
	mgr := memmgr.New(budget, "lru")
	lazy, _, err := OpenLazy(dir, mgr)
	if err != nil {
		t.Fatal(err)
	}
	for pass := 0; pass < 3; pass++ {
		assertColumnsEqual(t, eager, lazy)
	}
	st := mgr.Stats()
	if st.Evictions == 0 {
		t.Fatalf("expected evictions with budget %d of %d total: %+v", budget, total, st)
	}
	if st.ResidentBytes > budget {
		t.Fatalf("resident %d exceeds budget %d at rest", st.ResidentBytes, budget)
	}
}

func TestPinSetColdWarmCounters(t *testing.T) {
	_, dir := buildSavedStore(t, 2000, "")
	mgr := memmgr.New(0, "2q")
	lazy, _, err := OpenLazy(dir, mgr)
	if err != nil {
		t.Fatal(err)
	}
	ps := lazy.NewPinSet()
	if _, err := ps.Column("country"); err != nil {
		t.Fatal(err)
	}
	if _, err := ps.Column("latency"); err != nil {
		t.Fatal(err)
	}
	// Re-asking for a held column must not double-count or double-pin.
	if _, err := ps.Column("country"); err != nil {
		t.Fatal(err)
	}
	if ps.ColdLoads != 2 || ps.ColdBytesLoaded <= 0 || ps.DiskBytesRead <= 0 {
		t.Fatalf("cold counters = %d/%d/%d", ps.ColdLoads, ps.ColdBytesLoaded, ps.DiskBytesRead)
	}
	ps.Release()
	if st := mgr.Stats(); st.PinnedBytes != 0 {
		t.Fatalf("pinned bytes %d after release", st.PinnedBytes)
	}
	warm := lazy.NewPinSet()
	if _, err := warm.Column("country"); err != nil {
		t.Fatal(err)
	}
	if warm.ColdLoads != 0 {
		t.Fatalf("warm pin reported %d cold loads", warm.ColdLoads)
	}
	warm.Release()
	if _, err := lazy.NewPinSet().Column("nope"); err == nil {
		t.Fatal("unknown column should error")
	}
}

func TestPinnedColumnsSurviveTinyBudget(t *testing.T) {
	_, dir := buildSavedStore(t, 2000, "")
	mgr := memmgr.New(1, "lru") // nothing fits unpinned
	lazy, _, err := OpenLazy(dir, mgr)
	if err != nil {
		t.Fatal(err)
	}
	ps := lazy.NewPinSet()
	c1, err := ps.Column("country")
	if err != nil {
		t.Fatal(err)
	}
	// Load other columns while "country" stays pinned.
	for _, other := range []string{"latency", "user", "table_name"} {
		if _, err := ps.Column(other); err != nil {
			t.Fatal(err)
		}
	}
	c2, err := ps.Column("country")
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 {
		t.Fatal("pinned column identity changed mid-set")
	}
	ps.Release()
	if st := mgr.Stats(); st.ResidentBytes != 0 {
		t.Fatalf("budget 1: resident %d after release", st.ResidentBytes)
	}
}

func TestLazyConcurrentReaders(t *testing.T) {
	_, dir := buildSavedStore(t, 3000, "zippy")
	eager, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, name := range eager.Columns() {
		total += eager.Column(name).Memory().Total()
	}
	mgr := memmgr.New(total/3, "2q")
	lazy, _, err := OpenLazy(dir, mgr)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	cols := eager.Columns()
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				name := cols[(w+i)%len(cols)]
				ps := lazy.NewPinSet()
				col, err := ps.Column(name)
				if err != nil {
					t.Error(err)
					ps.Release()
					return
				}
				wantCol := eager.Column(name)
				if !col.ValueAt(0, 0).Equal(wantCol.ValueAt(0, 0)) {
					t.Errorf("column %q first value mismatch", name)
				}
				ps.Release()
			}
		}(w)
	}
	wg.Wait()
	if st := mgr.Stats(); st.PinnedBytes != 0 {
		t.Fatalf("pinned %d after concurrent churn", st.PinnedBytes)
	}
}

// TestLoadColumnDict checks the dictionary-only load path against the
// fully decoded column, raw (byte-range read) and compressed (full read,
// dictionary-only materialization).
func TestLoadColumnDict(t *testing.T) {
	for _, codec := range []string{"", "zippy"} {
		name := codec
		if name == "" {
			name = "raw"
		}
		t.Run(name, func(t *testing.T) {
			_, dir := buildSavedStore(t, 2000, codec)
			eager, _, err := Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			r, _, err := NewReader(dir)
			if err != nil {
				t.Fatal(err)
			}
			for _, name := range eager.Columns() {
				want := eager.Column(name).Dict
				d, disk, err := r.LoadColumnDict(name)
				if err != nil {
					t.Fatalf("column %q: %v", name, err)
				}
				if disk <= 0 {
					t.Fatalf("column %q: no disk bytes charged", name)
				}
				if d.Len() != want.Len() {
					t.Fatalf("column %q: dict len %d, want %d", name, d.Len(), want.Len())
				}
				for i := 0; i < d.Len(); i++ {
					if !d.Value(uint32(i)).Equal(want.Value(uint32(i))) {
						t.Fatalf("column %q dict entry %d mismatch", name, i)
					}
				}
			}
			if _, _, err := r.LoadColumnDict("nope"); err == nil {
				t.Fatal("unknown column should error")
			}
		})
	}
}

// TestChunkSpansMatchChunks checks that the spans the manifest records are
// exactly the first/last global-ids of each chunk-dictionary.
func TestChunkSpansMatchChunks(t *testing.T) {
	_, dir := buildSavedStore(t, 2000, "")
	eager, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	lazy, _, err := OpenLazy(dir, memmgr.New(0, "2q"))
	if err != nil {
		t.Fatal(err)
	}
	if !lazy.ChunkGranular() {
		t.Fatal("fresh store is not chunk-granular")
	}
	for _, name := range eager.Columns() {
		want, ok := eager.ChunkSpans(name) // computed from resident chunks
		if !ok {
			t.Fatalf("no spans on resident store for %q", name)
		}
		got, ok := lazy.ChunkSpans(name) // read from the manifest
		if !ok {
			t.Fatalf("no spans on lazy store for %q", name)
		}
		if len(got) != len(want) {
			t.Fatalf("column %q: %d spans, want %d", name, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("column %q chunk %d: span %+v, want %+v", name, i, got[i], want[i])
			}
		}
	}
}

// stripChunkLayout rewrites a saved manifest without format/dict_len/
// chunks — simulating a store saved before chunk-granular residency
// existed. The column files must use whole-column codec framing
// (SaveLegacyV2) for the result to be a faithful v1 store.
func stripChunkLayout(t *testing.T, dir string) {
	t.Helper()
	path := filepath.Join(dir, "manifest.json")
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(blob, &m); err != nil {
		t.Fatal(err)
	}
	delete(m, "format")
	cols, ok := m["columns"].([]any)
	if !ok {
		t.Fatal("manifest has no columns")
	}
	for _, c := range cols {
		mc := c.(map[string]any)
		delete(mc, "dict_len")
		delete(mc, "dict_clen")
		delete(mc, "chunks")
	}
	out, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, out, 0o644); err != nil {
		t.Fatal(err)
	}
}

// buildLegacyStore persists a store with the pre-v3 whole-column codec
// framing.
func buildLegacyStore(t *testing.T, rows int, codec string) (*Store, string) {
	t.Helper()
	tbl := workload.QueryLogs(workload.LogsSpec{Rows: rows, Seed: 7})
	s, err := FromTable(tbl, Options{
		PartitionFields:  []string{"country", "table_name"},
		MaxChunkRows:     500,
		OptimizeElements: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := SaveLegacyV2(s, dir, codec); err != nil {
		t.Fatal(err)
	}
	return s, dir
}

// TestLegacyManifestFallsBackToColumns opens a store whose manifest lacks
// the chunk layout: residency degrades to whole columns, chunk walks still
// decode correctly, and queries through a PinSet behave like before.
func TestLegacyManifestFallsBackToColumns(t *testing.T) {
	built, dir := buildLegacyStore(t, 2000, "zippy")
	stripChunkLayout(t, dir)
	mgr := memmgr.New(0, "2q")
	lazy, _, err := OpenLazy(dir, mgr)
	if err != nil {
		t.Fatal(err)
	}
	if lazy.ChunkGranular() {
		t.Fatal("layout-less manifest must not be chunk-granular")
	}
	if _, ok := lazy.ChunkSpans("country"); ok {
		t.Fatal("layout-less manifest must have no spans")
	}
	// Whole-column pins: one cold load per column, no chunk/dict entries.
	// (Must run before anything else loads the column.)
	ps := lazy.NewPinSet()
	if _, err := ps.Column("country"); err != nil {
		t.Fatal(err)
	}
	if ps.ColdLoads != 1 || ps.ColdChunkLoads != 0 || ps.ColdDictLoads != 0 {
		t.Fatalf("legacy pin counters = %d/%d/%d", ps.ColdLoads, ps.ColdChunkLoads, ps.ColdDictLoads)
	}
	ps.Release()
	assertColumnsEqual(t, built, lazy)
	// The walk-based single-chunk path still works without a layout.
	r, _, err := NewReader(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := built.Column("country")
	ch, disk, err := r.LoadColumnChunk("country", 1)
	if err != nil {
		t.Fatal(err)
	}
	if disk <= 0 || ch.Rows() != want.Chunks[1].Rows() {
		t.Fatalf("legacy chunk walk: disk=%d rows=%d", disk, ch.Rows())
	}
}

// TestColumnErrSurfacesLoadFailures pins the bugfix: Store.Column swallows
// lazy-load errors into nil, ColumnErr surfaces them.
func TestColumnErrSurfacesLoadFailures(t *testing.T) {
	_, dir := buildSavedStore(t, 1000, "")
	lazy, _, err := OpenLazy(dir, memmgr.New(0, "2q"))
	if err != nil {
		t.Fatal(err)
	}
	// Destroy a column file behind the store's back.
	matches, err := filepath.Glob(filepath.Join(dir, "col_*.bin"))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no column files: %v", err)
	}
	for _, m := range matches {
		if err := os.Remove(m); err != nil {
			t.Fatal(err)
		}
	}
	if c := lazy.Column("country"); c != nil {
		t.Fatal("Column returned a column from deleted files")
	}
	if _, err := lazy.ColumnErr("country"); err == nil {
		t.Fatal("ColumnErr swallowed the load failure")
	}
	if _, err := lazy.ColumnErr("missing"); err == nil {
		t.Fatal("ColumnErr accepted an unknown column")
	}
}
