package colstore

import (
	"sync"
	"testing"

	"powerdrill/internal/memmgr"
	"powerdrill/internal/workload"
)

// buildSavedStore imports a synthetic table and persists it.
func buildSavedStore(t *testing.T, rows int, codec string) (*Store, string) {
	t.Helper()
	tbl := workload.QueryLogs(workload.LogsSpec{Rows: rows, Seed: 7})
	s, err := FromTable(tbl, Options{
		PartitionFields:  []string{"country", "table_name"},
		MaxChunkRows:     500,
		OptimizeElements: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := Save(s, dir, codec); err != nil {
		t.Fatal(err)
	}
	return s, dir
}

// assertColumnsEqual compares every value of every column of two stores.
func assertColumnsEqual(t *testing.T, want, got *Store) {
	t.Helper()
	wantCols := want.Columns()
	gotCols := got.Columns()
	if len(wantCols) != len(gotCols) {
		t.Fatalf("column count %d vs %d", len(wantCols), len(gotCols))
	}
	for _, name := range wantCols {
		wc, gc := want.Column(name), got.Column(name)
		if wc == nil || gc == nil {
			t.Fatalf("column %q missing (want %v, got %v)", name, wc != nil, gc != nil)
		}
		if wc.Kind != gc.Kind || len(wc.Chunks) != len(gc.Chunks) {
			t.Fatalf("column %q shape mismatch", name)
		}
		for ci := range wc.Chunks {
			rows := wc.Chunks[ci].Rows()
			if rows != gc.Chunks[ci].Rows() {
				t.Fatalf("column %q chunk %d rows mismatch", name, ci)
			}
			for r := 0; r < rows; r++ {
				if !wc.ValueAt(ci, r).Equal(gc.ValueAt(ci, r)) {
					t.Fatalf("column %q chunk %d row %d: %v != %v",
						name, ci, r, wc.ValueAt(ci, r), gc.ValueAt(ci, r))
				}
			}
		}
	}
}

func TestOpenLazyMatchesOpen(t *testing.T) {
	for _, codec := range []string{"", "zippy"} {
		name := codec
		if name == "" {
			name = "raw"
		}
		t.Run(name, func(t *testing.T) {
			built, dir := buildSavedStore(t, 3000, codec)
			eager, _, err := Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			lazy, stats, err := OpenLazy(dir, memmgr.New(0, "2q"))
			if err != nil {
				t.Fatal(err)
			}
			if stats.Files != 1 {
				t.Fatalf("lazy open read %d files, want manifest only", stats.Files)
			}
			if lazy.NumRows() != built.NumRows() || lazy.NumChunks() != built.NumChunks() {
				t.Fatalf("lazy shape %d/%d, want %d/%d",
					lazy.NumRows(), lazy.NumChunks(), built.NumRows(), built.NumChunks())
			}
			assertColumnsEqual(t, eager, lazy)
		})
	}
}

func TestReaderSingleChunk(t *testing.T) {
	_, dir := buildSavedStore(t, 2000, "zippy")
	eager, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	r, _, err := NewReader(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range eager.Columns() {
		want := eager.Column(name)
		for ci := range want.Chunks {
			ch, disk, err := r.LoadColumnChunk(name, ci)
			if err != nil {
				t.Fatalf("column %q chunk %d: %v", name, ci, err)
			}
			if disk <= 0 {
				t.Fatalf("column %q chunk %d: no disk bytes charged", name, ci)
			}
			wch := want.Chunks[ci]
			if ch.Rows() != wch.Rows() || ch.Cardinality() != wch.Cardinality() {
				t.Fatalf("column %q chunk %d shape mismatch", name, ci)
			}
			for i, gid := range wch.GlobalIDs {
				if ch.GlobalIDs[i] != gid {
					t.Fatalf("column %q chunk %d gid %d mismatch", name, ci, i)
				}
			}
			for rIdx := 0; rIdx < wch.Rows(); rIdx++ {
				if ch.Elems.At(rIdx) != wch.Elems.At(rIdx) {
					t.Fatalf("column %q chunk %d elem %d mismatch", name, ci, rIdx)
				}
			}
		}
	}
	if _, _, err := r.LoadColumnChunk("country", 9999); err == nil {
		t.Fatal("out-of-range chunk should error")
	}
	if _, _, err := r.LoadColumn("nope"); err == nil {
		t.Fatal("unknown column should error")
	}
}

func TestLazyEvictionReloadDeterministic(t *testing.T) {
	_, dir := buildSavedStore(t, 3000, "zippy")
	eager, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Budget fits roughly one column: every full sweep over all columns
	// evicts and reloads.
	var total int64
	for _, name := range eager.Columns() {
		total += eager.Column(name).Memory().Total()
	}
	budget := total / int64(len(eager.Columns()))
	mgr := memmgr.New(budget, "lru")
	lazy, _, err := OpenLazy(dir, mgr)
	if err != nil {
		t.Fatal(err)
	}
	for pass := 0; pass < 3; pass++ {
		assertColumnsEqual(t, eager, lazy)
	}
	st := mgr.Stats()
	if st.Evictions == 0 {
		t.Fatalf("expected evictions with budget %d of %d total: %+v", budget, total, st)
	}
	if st.ResidentBytes > budget {
		t.Fatalf("resident %d exceeds budget %d at rest", st.ResidentBytes, budget)
	}
}

func TestPinSetColdWarmCounters(t *testing.T) {
	_, dir := buildSavedStore(t, 2000, "")
	mgr := memmgr.New(0, "2q")
	lazy, _, err := OpenLazy(dir, mgr)
	if err != nil {
		t.Fatal(err)
	}
	ps := lazy.NewPinSet()
	if _, err := ps.Column("country"); err != nil {
		t.Fatal(err)
	}
	if _, err := ps.Column("latency"); err != nil {
		t.Fatal(err)
	}
	// Re-asking for a held column must not double-count or double-pin.
	if _, err := ps.Column("country"); err != nil {
		t.Fatal(err)
	}
	if ps.ColdLoads != 2 || ps.ColdBytesLoaded <= 0 || ps.DiskBytesRead <= 0 {
		t.Fatalf("cold counters = %d/%d/%d", ps.ColdLoads, ps.ColdBytesLoaded, ps.DiskBytesRead)
	}
	ps.Release()
	if st := mgr.Stats(); st.PinnedBytes != 0 {
		t.Fatalf("pinned bytes %d after release", st.PinnedBytes)
	}
	warm := lazy.NewPinSet()
	if _, err := warm.Column("country"); err != nil {
		t.Fatal(err)
	}
	if warm.ColdLoads != 0 {
		t.Fatalf("warm pin reported %d cold loads", warm.ColdLoads)
	}
	warm.Release()
	if _, err := lazy.NewPinSet().Column("nope"); err == nil {
		t.Fatal("unknown column should error")
	}
}

func TestPinnedColumnsSurviveTinyBudget(t *testing.T) {
	_, dir := buildSavedStore(t, 2000, "")
	mgr := memmgr.New(1, "lru") // nothing fits unpinned
	lazy, _, err := OpenLazy(dir, mgr)
	if err != nil {
		t.Fatal(err)
	}
	ps := lazy.NewPinSet()
	c1, err := ps.Column("country")
	if err != nil {
		t.Fatal(err)
	}
	// Load other columns while "country" stays pinned.
	for _, other := range []string{"latency", "user", "table_name"} {
		if _, err := ps.Column(other); err != nil {
			t.Fatal(err)
		}
	}
	c2, err := ps.Column("country")
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 {
		t.Fatal("pinned column identity changed mid-set")
	}
	ps.Release()
	if st := mgr.Stats(); st.ResidentBytes != 0 {
		t.Fatalf("budget 1: resident %d after release", st.ResidentBytes)
	}
}

func TestLazyConcurrentReaders(t *testing.T) {
	_, dir := buildSavedStore(t, 3000, "zippy")
	eager, _, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, name := range eager.Columns() {
		total += eager.Column(name).Memory().Total()
	}
	mgr := memmgr.New(total/3, "2q")
	lazy, _, err := OpenLazy(dir, mgr)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	cols := eager.Columns()
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				name := cols[(w+i)%len(cols)]
				ps := lazy.NewPinSet()
				col, err := ps.Column(name)
				if err != nil {
					t.Error(err)
					ps.Release()
					return
				}
				wantCol := eager.Column(name)
				if !col.ValueAt(0, 0).Equal(wantCol.ValueAt(0, 0)) {
					t.Errorf("column %q first value mismatch", name)
				}
				ps.Release()
			}
		}(w)
	}
	wg.Wait()
	if st := mgr.Stats(); st.PinnedBytes != 0 {
		t.Fatalf("pinned %d after concurrent churn", st.PinnedBytes)
	}
}
