package colstore

import (
	"testing"
	"testing/quick"

	"powerdrill/internal/enc"
	"powerdrill/internal/table"
	"powerdrill/internal/value"
	"powerdrill/internal/workload"
)

func logs(rows int) *table.Table {
	return workload.QueryLogs(workload.LogsSpec{Rows: rows, Seed: 21})
}

// variants are the paper's step-wise layout configurations.
func variants() map[string]Options {
	part := []string{"country", "table_name"}
	return map[string]Options{
		"basic":    {},
		"chunks":   {PartitionFields: part, MaxChunkRows: 500},
		"optcols":  {PartitionFields: part, MaxChunkRows: 500, OptimizeElements: true},
		"optdicts": {PartitionFields: part, MaxChunkRows: 500, OptimizeElements: true, StringDict: StringDictTrie},
		"reorder":  {PartitionFields: part, MaxChunkRows: 500, OptimizeElements: true, StringDict: StringDictTrie, Reorder: true},
	}
}

// reconstruct verifies the fundamental double-dictionary invariant: for all
// columns, dereferencing elements through chunk- and global-dictionaries
// yields the original multiset of rows, in a single consistent order across
// columns.
func reconstruct(t *testing.T, s *Store, src *table.Table) {
	t.Helper()
	if s.NumRows() != src.NumRows() {
		t.Fatalf("store has %d rows, source %d", s.NumRows(), src.NumRows())
	}
	// Build multiset of source rows and of reconstructed rows.
	key := func(vals []value.Value) string {
		out := ""
		for _, v := range vals {
			out += v.String() + "\x1f"
		}
		return out
	}
	want := map[string]int{}
	for i := 0; i < src.NumRows(); i++ {
		want[key(src.Row(i))]++
	}
	names := src.ColumnNames()
	got := map[string]int{}
	for c := 0; c < s.NumChunks(); c++ {
		for r := 0; r < s.ChunkRows(c); r++ {
			vals := make([]value.Value, len(names))
			for j, n := range names {
				vals[j] = s.Column(n).ValueAt(c, r)
			}
			got[key(vals)]++
		}
	}
	if len(got) != len(want) {
		t.Fatalf("distinct row count differs: got %d, want %d", len(got), len(want))
	}
	for k, n := range want {
		if got[k] != n {
			t.Fatalf("row %q count %d, want %d", k, got[k], n)
		}
	}
}

func TestBuildAndReconstructAllVariants(t *testing.T) {
	src := logs(3000)
	for name, opts := range variants() {
		t.Run(name, func(t *testing.T) {
			s, err := FromTable(src, opts)
			if err != nil {
				t.Fatal(err)
			}
			reconstruct(t, s, src)
		})
	}
}

func TestChunkDictionariesSortedAndDense(t *testing.T) {
	s, err := FromTable(logs(5000), variants()["optcols"])
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range s.Columns() {
		col := s.Column(name)
		for ci, ch := range col.Chunks {
			for i := 1; i < len(ch.GlobalIDs); i++ {
				if ch.GlobalIDs[i-1] >= ch.GlobalIDs[i] {
					t.Fatalf("%s chunk %d: chunk-dict not strictly sorted", name, ci)
				}
			}
			// Every element must be a valid chunk-id.
			for r := 0; r < ch.Rows(); r++ {
				if int(ch.Elems.At(r)) >= len(ch.GlobalIDs) {
					t.Fatalf("%s chunk %d row %d: element out of range", name, ci, r)
				}
			}
			// Every chunk-dict entry must be referenced by some element
			// (the dictionary holds only occurring values).
			used := make([]bool, len(ch.GlobalIDs))
			for r := 0; r < ch.Rows(); r++ {
				used[ch.Elems.At(r)] = true
			}
			for i, u := range used {
				if !u {
					t.Fatalf("%s chunk %d: chunk-id %d unused", name, ci, i)
				}
			}
		}
	}
}

func TestChunkIDAndSkippingProbes(t *testing.T) {
	s, err := FromTable(logs(5000), variants()["chunks"])
	if err != nil {
		t.Fatal(err)
	}
	col := s.Column("country")
	for _, ch := range col.Chunks {
		for i, g := range ch.GlobalIDs {
			id, ok := ch.ChunkID(g)
			if !ok || id != uint32(i) {
				t.Fatalf("ChunkID(%d) = %d, %v", g, id, ok)
			}
		}
		if _, ok := ch.ChunkID(uint32(col.Dict.Len() + 5)); ok {
			t.Fatal("ChunkID hit for absent gid")
		}
		// ContainsAny / AllWithin against the chunk's own ids.
		if !ch.ContainsAny(ch.GlobalIDs) {
			t.Fatal("ContainsAny(own ids) = false")
		}
		if !ch.AllWithin(ch.GlobalIDs) {
			t.Fatal("AllWithin(own ids) = false")
		}
		if ch.ContainsAny([]uint32{uint32(col.Dict.Len() + 7)}) {
			t.Fatal("ContainsAny(absent) = true")
		}
		if len(ch.GlobalIDs) > 1 {
			if ch.AllWithin(ch.GlobalIDs[:1]) {
				t.Fatal("AllWithin(subset) = true")
			}
		}
		if ch.ContainsAny(nil) {
			t.Fatal("ContainsAny(nil) = true")
		}
	}
}

// TestElementWidthsAfterPartitioning is the Section 3 OptCols effect: the
// country column is first in the partition order, so most chunks hold one
// or two distinct countries and encode elements in 0 or 1 bits.
func TestElementWidthsAfterPartitioning(t *testing.T) {
	s, err := FromTable(logs(20_000), Options{
		PartitionFields:  []string{"country", "table_name"},
		MaxChunkRows:     1000,
		OptimizeElements: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	col := s.Column("country")
	narrow := 0
	for _, ch := range col.Chunks {
		if w := ch.Elems.Width(); w == enc.Width0 || w == enc.Width1 {
			narrow++
		}
	}
	if frac := float64(narrow) / float64(len(col.Chunks)); frac < 0.8 {
		t.Errorf("only %.0f%% of country chunks are ≤1-bit, want ≥80%%", frac*100)
	}
}

// TestMemoryOrdering verifies the relationships of the paper's Table 2/4:
// optimized elements shrink the footprint, the trie shrinks the
// high-cardinality dictionary, partitioning slightly grows chunk-dicts.
func TestMemoryOrdering(t *testing.T) {
	src := logs(20_000)
	mem := map[string]MemoryBreakdown{}
	for name, opts := range variants() {
		s, err := FromTable(src, opts)
		if err != nil {
			t.Fatal(err)
		}
		m, err := s.MemoryFor("table_name")
		if err != nil {
			t.Fatal(err)
		}
		mem[name] = m
	}
	if mem["chunks"].ChunkDicts < mem["basic"].ChunkDicts {
		t.Errorf("partitioning should grow chunk-dicts: %d < %d",
			mem["chunks"].ChunkDicts, mem["basic"].ChunkDicts)
	}
	if mem["optcols"].Elements >= mem["chunks"].Elements {
		t.Errorf("OptCols did not shrink elements: %d >= %d",
			mem["optcols"].Elements, mem["chunks"].Elements)
	}
	if mem["optdicts"].GlobalDict >= mem["optcols"].GlobalDict {
		t.Errorf("trie did not shrink the table_name dictionary: %d >= %d",
			mem["optdicts"].GlobalDict, mem["optcols"].GlobalDict)
	}
	t.Logf("table_name totals: basic=%d chunks=%d optcols=%d optdicts=%d",
		mem["basic"].Total(), mem["chunks"].Total(), mem["optcols"].Total(), mem["optdicts"].Total())
}

func TestMemoryForUnknownColumn(t *testing.T) {
	s, _ := FromTable(logs(100), Options{})
	if _, err := s.MemoryFor("nope"); err == nil {
		t.Error("unknown column accepted")
	}
}

func TestVirtualColumn(t *testing.T) {
	src := logs(2000)
	s, err := FromTable(src, variants()["optcols"])
	if err != nil {
		t.Fatal(err)
	}
	// Materialize date(timestamp) by hand in store row order.
	tsCol := s.Column("timestamp")
	vals := make([]value.Value, 0, s.NumRows())
	for c := 0; c < s.NumChunks(); c++ {
		for r := 0; r < s.ChunkRows(c); r++ {
			vals = append(vals, value.Int64(tsCol.ValueAt(c, r).Int()/86_400_000_000))
		}
	}
	col, err := s.AddVirtualColumn("date(timestamp)", value.KindInt64, vals)
	if err != nil {
		t.Fatal(err)
	}
	if !col.Virtual {
		t.Error("virtual flag not set")
	}
	// The virtual column supports everything a physical one does.
	i := 0
	for c := 0; c < s.NumChunks(); c++ {
		for r := 0; r < s.ChunkRows(c); r++ {
			if got := s.Column("date(timestamp)").ValueAt(c, r).Int(); got != vals[i].Int() {
				t.Fatalf("virtual value at %d/%d = %d, want %d", c, r, got, vals[i].Int())
			}
			i++
		}
	}
	if _, err := s.AddVirtualColumn("date(timestamp)", value.KindInt64, vals); err == nil {
		t.Error("duplicate virtual column accepted")
	}
	if _, err := s.AddVirtualColumn("short", value.KindInt64, vals[:5]); err == nil {
		t.Error("misaligned virtual column accepted")
	}
}

func TestCompressedBreakdownShapes(t *testing.T) {
	src := logs(10_000)
	basic, _ := FromTable(src, Options{})
	chunked, _ := FromTable(src, variants()["chunks"])
	name := "country"
	zb := compressedTotal(t, basic, name)
	zc := compressedTotal(t, chunked, name)
	// Partitioning improves compression for partition-order fields
	// (Table 3: Query 1 drops 3.02 → 0.28 MB with chunks).
	if zc >= zb {
		t.Errorf("compressed country: chunked %d >= basic %d", zc, zb)
	}
}

func compressedTotal(t *testing.T, s *Store, col string) int64 {
	t.Helper()
	c := s.Column(col)
	if c == nil {
		t.Fatalf("no column %q", col)
	}
	codec, err := compressByName(t)
	if err != nil {
		t.Fatal(err)
	}
	return c.Compressed(codec).Total()
}

func TestStoreColumnsOrder(t *testing.T) {
	s, _ := FromTable(logs(100), Options{})
	want := []string{"timestamp", "table_name", "latency", "country", "user"}
	got := s.Columns()
	if len(got) != len(want) {
		t.Fatalf("Columns = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Columns[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestEmptyTableStore(t *testing.T) {
	tbl := table.New("empty")
	tbl.AddStringColumn("a", nil)
	s, err := FromTable(tbl, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s.NumRows() != 0 {
		t.Errorf("NumRows = %d", s.NumRows())
	}
}

func TestNaNRejected(t *testing.T) {
	tbl := table.New("bad")
	tbl.AddFloat64Column("f", []float64{1, nan()})
	if _, err := FromTable(tbl, Options{}); err == nil {
		t.Error("NaN accepted")
	}
}

func nan() float64 {
	var z float64
	return z / z
}

// TestQuickDoubleDictionaryInvariant drives the fundamental layout
// equation value = dict[chunkDict[elements[row]]] over random tables.
func TestQuickDoubleDictionaryInvariant(t *testing.T) {
	f := func(strs []string, nums []int64, seed int64) bool {
		n := len(strs)
		if n == 0 || n > 300 {
			return true
		}
		ints := make([]int64, n)
		for i := range ints {
			if len(nums) > 0 {
				ints[i] = nums[i%len(nums)]
			}
		}
		tbl := table.New("q")
		tbl.AddStringColumn("s", strs)
		tbl.AddInt64Column("n", ints)
		s, err := FromTable(tbl, Options{
			PartitionFields:  []string{"s"},
			MaxChunkRows:     16,
			OptimizeElements: true,
		})
		if err != nil {
			return false
		}
		// Reconstructed multiset must equal the input multiset.
		want := map[string]int{}
		for i := 0; i < n; i++ {
			want[strs[i]+"\x1f"+value.Int64(ints[i]).String()]++
		}
		got := map[string]int{}
		for c := 0; c < s.NumChunks(); c++ {
			for r := 0; r < s.ChunkRows(c); r++ {
				got[s.Column("s").ValueAt(c, r).Str()+"\x1f"+s.Column("n").ValueAt(c, r).String()]++
			}
		}
		if len(got) != len(want) {
			return false
		}
		for k, v := range want {
			if got[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
