package colstore

// Sidecar persistence for materialized virtual columns (paper Section 5
// "virtual fields"). Expressions the engine materializes at query time used
// to live only in the store's in-memory registry: always resident, never
// evictable, invisible to the byte budget. On a chunk-granular lazy store
// they are instead written into a `virtual/` sidecar directory next to the
// store — one column file per materialization plus a sidecar manifest —
// using the exact framing of the store's own columns (same codec, same
// format generation, per-chunk value spans and byte ranges). From then on
// a virtual column is indistinguishable from a physical one to the memory
// subsystem: loaded on demand, pinned per query, evicted under budget
// pressure, reloaded from disk, and pruned by restriction spans.
//
// Reopening the store re-reads the sidecar, so a drill-down session's
// materializations survive process restarts: the next session pays a cold
// load, not a re-materialization scan.
//
// Concurrency: one store serializes persists on lazySource.persistMu (the
// engine's plan lock already serializes materialization per engine; a
// materialization race between engines sharing one Store is resolved by
// adopting the winner's column). Two *processes* (or two Stores opened
// separately on the same directory) coordinate through the sidecar's
// generation chain: column files are claimed exclusively (O_EXCL, never
// overwritten), and the manifest is committed by claiming the next
// "manifest.gen-NNNNNN.json" exclusively after merging the newest one on
// disk (see genfile.go). A writer that loses the claim race re-reads,
// re-merges and retries, so concurrent writers *lose nothing* — every
// committed column survives — where the pre-generation tmp+rename
// manifest was last-writer-wins (lose-not-corrupt). Readers take the
// highest generation that parses; a crashed writer's torn file is skipped
// and the previous generation stays authoritative. Files orphaned by lost
// column-file races or superseded generations are reclaimed by
// GCVirtualSidecar (the ingest compactor calls it).

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"syscall"

	"powerdrill/internal/value"
)

const (
	// virtualSubdir is the sidecar directory inside a persisted store.
	virtualSubdir = "virtual"
	// virtualManifestName is the legacy single-file sidecar manifest inside
	// virtualSubdir, read (never written) for stores persisted before the
	// generation chain.
	virtualManifestName = "manifest.json"
	// virtualGenPrefix/virtualGenSuffix frame the generation-chain
	// manifests: virtualGenPrefix + NNNNNN + virtualGenSuffix.
	virtualGenPrefix = "manifest.gen-"
	virtualGenSuffix = ".json"
)

// virtualGenName names the sidecar manifest of generation gen.
func virtualGenName(gen int) string {
	return fmt.Sprintf("%s%06d%s", virtualGenPrefix, gen, virtualGenSuffix)
}

// virtualSidecar is the JSON header of the virtual/ sidecar. Format and
// Codec mirror the parent manifest: sidecar column files use exactly the
// record framing of the store's own columns, so every Reader code path
// (exact byte-range reads, per-record decompression, legacy stream
// memoization) applies unchanged.
type virtualSidecar struct {
	Format  int           `json:"format,omitempty"`
	Codec   string        `json:"codec,omitempty"`
	Columns []manifestCol `json:"columns"`
	// Gen is the manifest's position in the generation chain; derived from
	// the file name on read, 0 for a legacy manifest.json.
	Gen int `json:"gen,omitempty"`
	// Check is the CRC32C of the manifest's canonical marshal with this
	// field zeroed (v5): a torn or corrupted generation file fails the
	// check and is skipped exactly like one that fails to parse.
	Check uint32 `json:"check,omitempty"`
}

// checkedSidecarBlob marshals vs with its integrity checksum filled in.
func checkedSidecarBlob(vs *virtualSidecar) ([]byte, error) {
	vs.Check = 0
	blob, err := json.MarshalIndent(vs, "", "  ")
	if err != nil {
		return nil, err
	}
	vs.Check = CRC32C(blob)
	return json.MarshalIndent(vs, "", "  ")
}

// sidecarCheckOK verifies a parsed generation manifest against its Check
// field by re-marshaling canonically with the field zeroed. Files written
// before checksums (Check == 0) pass.
func sidecarCheckOK(vm *virtualSidecar) bool {
	if vm.Check == 0 {
		return true
	}
	check := vm.Check
	vm.Check = 0
	canon, err := json.MarshalIndent(vm, "", "  ")
	vm.Check = check
	return err == nil && CRC32C(canon) == check
}

// readVirtualSidecar loads dir's newest sidecar manifest: the
// highest-numbered manifest.gen-*.json that parses, falling back to the
// legacy manifest.json of pre-generation stores. A missing sidecar is not
// an error (nil, nil), and neither is an unreadable sidecar *path* (e.g. a
// stray file where the directory should be — persisting into it will fail
// and fall back, but the store itself must open). A generation file that
// fails to read or parse is skipped — that is a crashed or in-flight
// writer's torn claim, and the previous generation stays authoritative.
func readVirtualSidecar(dir string) (*virtualSidecar, error) {
	vdir := filepath.Join(dir, virtualSubdir)
	entries, err := vfs().ReadDir(vdir)
	if errors.Is(err, os.ErrNotExist) || errors.Is(err, syscall.ENOTDIR) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("colstore: open virtual sidecar: %w", err)
	}
	var best *virtualSidecar
	for _, ent := range entries {
		gen, ok := ParseGenSeq(ent.Name(), virtualGenPrefix, virtualGenSuffix)
		if !ok || (best != nil && gen <= best.Gen) {
			continue
		}
		blob, err := vfs().ReadFile(filepath.Join(vdir, ent.Name()))
		if err != nil {
			continue
		}
		var vm virtualSidecar
		if json.Unmarshal(blob, &vm) != nil {
			continue
		}
		if !sidecarCheckOK(&vm) {
			continue
		}
		vm.Gen = gen
		best = &vm
	}
	if best != nil {
		return best, nil
	}
	blob, err := vfs().ReadFile(filepath.Join(vdir, virtualManifestName))
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("colstore: open virtual sidecar: %w", err)
	}
	var vm virtualSidecar
	if err := json.Unmarshal(blob, &vm); err != nil {
		return nil, fmt.Errorf("colstore: open virtual sidecar: %w", err)
	}
	return &vm, nil
}

// persistVirtualLocked writes one freshly built virtual column into the
// store's virtual/ sidecar: the column file in the parent store's framing,
// then a new generation of the sidecar manifest (read-merge-claim; see the
// file comment). The caller holds lazySource.persistMu.
func (s *Store) persistVirtualLocked(col *Column) (manifestCol, error) {
	src := s.lazy
	r := src.reader
	raw, dictLen, chunkMetas := encodeColumn(col)
	mc := manifestCol{
		Name: col.Name, Kind: col.Kind.String(), Virtual: true,
		DictLen: dictLen, Chunks: chunkMetas,
	}
	if r.m.Codec != "" {
		codec := mustCodec(r.m.Codec)
		if r.m.Format >= formatPerRecordCodec {
			raw, mc = compressRecords(codec, raw, mc)
		} else {
			// Legacy whole-column framing: keep the sidecar readable by the
			// same code paths as the parent's columns.
			raw = codec.Compress(nil, raw)
		}
	}
	if r.m.Format >= formatChecksums {
		addColChecksums(&mc, raw, r.m.Codec != "" && mc.DictCLen > 0)
	}
	if err := vfs().MkdirAll(filepath.Join(r.dir, virtualSubdir), 0o755); err != nil {
		return mc, fmt.Errorf("colstore: persist virtual column %q: %w", col.Name, err)
	}
	// Claim a column file exclusively (O_EXCL): another Store or process
	// persisting into the same directory can never overwrite bytes a live
	// Reader has already recorded ranges for — the race costs at worst a
	// lost manifest entry, never corrupt data.
	src.mu.RLock()
	seq := len(src.sidecar)
	src.mu.RUnlock()
	for {
		mc.File = filepath.Join(virtualSubdir, fmt.Sprintf("vcol_%04d.bin", seq))
		f, err := vfs().OpenFile(filepath.Join(r.dir, mc.File), os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
		if os.IsExist(err) {
			seq++
			continue
		}
		if err != nil {
			return mc, fmt.Errorf("colstore: persist virtual column %q: %w", col.Name, err)
		}
		_, werr := f.Write(raw)
		cerr := f.Close()
		if werr == nil {
			werr = cerr
		}
		if werr != nil {
			return mc, fmt.Errorf("colstore: persist virtual column %q: %w", col.Name, werr)
		}
		break
	}
	// Commit through the generation chain: re-read the newest manifest on
	// disk (it may carry columns other processes persisted since this
	// store last looked), merge this column in, and claim the next
	// generation number. Losing the claim means another writer committed
	// concurrently — re-read and retry, so every committed column
	// survives. If the merged manifest already names this column (the same
	// expression materialized by another process), the on-disk entry wins:
	// the data is identical by construction (deterministic materialization
	// over immutable rows), our file is merely orphaned for GC, and the
	// caller still registers the in-memory copy it just built.
	var cols []manifestCol
	for {
		cur, err := readVirtualSidecar(r.dir)
		if err != nil {
			return mc, fmt.Errorf("colstore: persist virtual column %q: %w", col.Name, err)
		}
		gen := 0
		cols = cols[:0]
		if cur != nil {
			gen = cur.Gen
			if cur.Codec == r.m.Codec && cur.Format == r.m.Format {
				cols = append(cols, cur.Columns...)
			}
			// A stale-framing sidecar (store re-saved in place with another
			// codec) contributes no columns but keeps the chain moving.
		}
		dup := false
		for _, existing := range cols {
			if existing.Name == mc.Name {
				dup = true
				break
			}
		}
		if !dup {
			cols = append(cols, mc)
		}
		blob, err := checkedSidecarBlob(&virtualSidecar{Format: r.m.Format, Codec: r.m.Codec, Columns: cols, Gen: gen + 1})
		if err != nil {
			return mc, fmt.Errorf("colstore: persist virtual column %q: %w", col.Name, err)
		}
		err = ClaimFileExclusive(filepath.Join(r.dir, virtualSubdir, virtualGenName(gen+1)), blob)
		if errors.Is(err, fs.ErrExist) {
			continue
		}
		if err != nil {
			return mc, fmt.Errorf("colstore: persist virtual column %q: %w", col.Name, err)
		}
		break
	}
	src.mu.Lock()
	src.sidecar = cols
	src.mu.Unlock()
	return mc, nil
}

// GCVirtualSidecar removes sidecar files nothing references anymore:
// column files orphaned by lost persist races or by in-place re-saves,
// generation manifests superseded by a newer one, and stale temp files.
// Files referenced by the newest generation manifest or by the legacy
// manifest.json (still read by pre-generation binaries) are kept.
// Best-effort by design: individual removal errors are ignored, and a
// *cross-process* materializer racing the GC can lose a column file it has
// written but not yet committed — costing that process one
// re-materialization, never corruption. The ingest compactor calls this to
// reap dead one-off virtual columns; returns files removed and bytes
// reclaimed. A no-op on fully resident stores.
func (s *Store) GCVirtualSidecar() (files int, bytes int64) {
	if s.lazy == nil {
		return 0, 0
	}
	src := s.lazy
	src.persistMu.Lock()
	defer src.persistMu.Unlock()
	dir := src.reader.dir
	vdir := filepath.Join(dir, virtualSubdir)
	entries, err := vfs().ReadDir(vdir)
	if err != nil {
		return 0, 0
	}
	keep := make(map[string]bool, 8)
	newestGen := -1
	if cur, err := readVirtualSidecar(dir); err == nil && cur != nil {
		newestGen = cur.Gen
		for _, mc := range cur.Columns {
			keep[filepath.Base(mc.File)] = true
		}
	}
	if blob, err := vfs().ReadFile(filepath.Join(vdir, virtualManifestName)); err == nil {
		var legacy virtualSidecar
		if json.Unmarshal(blob, &legacy) == nil {
			for _, mc := range legacy.Columns {
				keep[filepath.Base(mc.File)] = true
			}
		}
	}
	for _, ent := range entries {
		name := ent.Name()
		if ent.IsDir() || name == virtualManifestName {
			continue
		}
		var remove bool
		if gen, ok := ParseGenSeq(name, virtualGenPrefix, virtualGenSuffix); ok {
			// Generations older than the newest readable one are
			// superseded. A higher-numbered file is either a concurrent
			// writer's fresh commit (kept) or a crashed writer's torn
			// claim — unreadable garbage, swept so it cannot linger.
			remove = gen < newestGen
			if gen > newestGen {
				var vm virtualSidecar
				blob, err := vfs().ReadFile(filepath.Join(vdir, name))
				remove = err != nil || json.Unmarshal(blob, &vm) != nil || !sidecarCheckOK(&vm)
			}
		} else if strings.HasSuffix(name, ".tmp") {
			remove = true
		} else {
			remove = !keep[name]
		}
		if !remove {
			continue
		}
		info, ierr := ent.Info()
		if vfs().Remove(filepath.Join(vdir, name)) == nil {
			files++
			if ierr == nil {
				bytes += info.Size()
			}
		}
	}
	return files, bytes
}

// registerSidecarColumn publishes a sidecar column's metadata so the store
// serves it exactly like a physical column: lazy-load metadata in the
// registry, per-chunk spans for restriction pruning, and the manifest
// entry in the Reader for cold loads. Used both when a materialization is
// persisted and when OpenLazy finds an existing sidecar.
func (s *Store) registerSidecarColumn(mc manifestCol) error {
	kind, err := value.ParseKind(mc.Kind)
	if err != nil {
		return fmt.Errorf("colstore: virtual column %q: %w", mc.Name, err)
	}
	src := s.lazy
	if !src.reader.hasLayout(mc) {
		return fmt.Errorf("colstore: virtual column %q has no chunk layout", mc.Name)
	}
	s.mu.Lock()
	if _, dup := s.metas[mc.Name]; dup {
		s.mu.Unlock()
		return fmt.Errorf("colstore: duplicate column %q", mc.Name)
	}
	if _, dup := s.columns[mc.Name]; dup {
		s.mu.Unlock()
		return fmt.Errorf("colstore: duplicate column %q", mc.Name)
	}
	s.metas[mc.Name] = ColumnMeta{Name: mc.Name, Kind: kind, Virtual: true}
	s.order = append(s.order, mc.Name)
	s.mu.Unlock()
	spans := make([]ChunkSpan, len(mc.Chunks))
	for i, cm := range mc.Chunks {
		spans[i] = ChunkSpan{MinGID: cm.Min, MaxGID: cm.Max}
	}
	src.mu.Lock()
	src.spans[mc.Name] = spans
	src.mu.Unlock()
	src.reader.registerVirtual(mc)
	return nil
}

// loadSidecar reads and registers dir's virtual sidecar during OpenLazy.
// The sidecar is best-effort by contract ("lose a column, never corrupt
// one"), so staleness never fails the open: a framing mismatch (the store
// was re-saved in place with a different codec) ignores the sidecar
// entirely, and an entry that no longer registers — typically a column an
// in-place Save promoted into the main manifest — is skipped and dropped
// from the kept list, re-materializing (or serving from the main
// manifest) instead.
func (s *Store) loadSidecar(dir string) error {
	src := s.lazy
	vm, err := readVirtualSidecar(dir)
	if err != nil || vm == nil {
		return err
	}
	if vm.Codec != src.reader.m.Codec || vm.Format != src.reader.m.Format {
		return nil
	}
	kept := make([]manifestCol, 0, len(vm.Columns))
	for _, mc := range vm.Columns {
		if err := s.registerSidecarColumn(mc); err != nil {
			continue
		}
		kept = append(kept, mc)
	}
	src.mu.Lock()
	src.sidecar = kept
	src.mu.Unlock()
	return nil
}

// adoptVirtual registers a freshly materialized, already persisted virtual
// column's pieces as pinned entries of the memory manager: no cold-load
// counters and no disk charge (the data was just built in memory), but the
// bytes go through the byte budget like any load — cold unpinned entries
// are evicted to make room. The returned column is the resident view:
// data-identical to col, possibly shared with a concurrent materializer
// that raced through another store on the same directory. The pins drop
// with the set's Release, after which the entries are evictable and reload
// from the sidecar.
func (p *PinSet) adoptVirtual(col *Column) (*Column, error) {
	name := col.Name
	if h, ok := p.held[name]; ok {
		return h.view, nil
	}
	src := p.s.lazy
	h := &heldPin{view: col, chunks: make([]bool, p.s.NumChunks()), dict: true}
	dictKey := src.dictKey(name)
	dictSize := col.Dict.MemoryBytes()
	ld := src.mgr.Insert(dictKey, &loadedDict{d: col.Dict, size: dictSize}, dictSize, true).(*loadedDict)
	col.Dict = ld.d
	h.keys = append(h.keys, dictKey)
	for ci, ch := range col.Chunks {
		key := src.chunkKey(name, ci)
		size := ch.MemoryElements() + ch.MemoryChunkDict()
		lc := src.mgr.Insert(key, &loadedChunk{ch: ch, size: size}, size, true).(*loadedChunk)
		col.Chunks[ci] = lc.ch
		h.chunks[ci] = true
		h.keys = append(h.keys, key)
	}
	if p.held == nil {
		p.held = make(map[string]*heldPin, 8)
	}
	p.held[name] = h
	return col, nil
}
