package colstore

// Sidecar persistence for materialized virtual columns (paper Section 5
// "virtual fields"). Expressions the engine materializes at query time used
// to live only in the store's in-memory registry: always resident, never
// evictable, invisible to the byte budget. On a chunk-granular lazy store
// they are instead written into a `virtual/` sidecar directory next to the
// store — one column file per materialization plus a sidecar manifest —
// using the exact framing of the store's own columns (same codec, same
// format generation, per-chunk value spans and byte ranges). From then on
// a virtual column is indistinguishable from a physical one to the memory
// subsystem: loaded on demand, pinned per query, evicted under budget
// pressure, reloaded from disk, and pruned by restriction spans.
//
// Reopening the store re-reads the sidecar, so a drill-down session's
// materializations survive process restarts: the next session pays a cold
// load, not a re-materialization scan.
//
// Concurrency: one store serializes persists on lazySource.persistMu (the
// engine's plan lock already serializes materialization per engine; a
// materialization race between engines sharing one Store is resolved by
// adopting the winner's column). Two *processes* (or two Stores opened
// separately on the same directory) may race on the sidecar manifest; the
// manifest write is atomic (temp file + rename) and column files are
// claimed exclusively (O_EXCL, never overwritten), so the store stays
// readable and live readers' recorded byte ranges stay valid — the losing
// writer's column is at worst absent after a reopen and gets
// re-materialized, never corrupted.

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"syscall"

	"powerdrill/internal/value"
)

const (
	// virtualSubdir is the sidecar directory inside a persisted store.
	virtualSubdir = "virtual"
	// virtualManifestName is the sidecar manifest inside virtualSubdir.
	virtualManifestName = "manifest.json"
)

// virtualSidecar is the JSON header of the virtual/ sidecar. Format and
// Codec mirror the parent manifest: sidecar column files use exactly the
// record framing of the store's own columns, so every Reader code path
// (exact byte-range reads, per-record decompression, legacy stream
// memoization) applies unchanged.
type virtualSidecar struct {
	Format  int           `json:"format,omitempty"`
	Codec   string        `json:"codec,omitempty"`
	Columns []manifestCol `json:"columns"`
}

// readVirtualSidecar loads dir's sidecar manifest; a missing sidecar is
// not an error (nil, nil), and neither is an unreadable sidecar *path*
// (e.g. a stray file where the directory should be — persisting into it
// will fail and fall back, but the store itself must open).
func readVirtualSidecar(dir string) (*virtualSidecar, error) {
	blob, err := os.ReadFile(filepath.Join(dir, virtualSubdir, virtualManifestName))
	if errors.Is(err, os.ErrNotExist) || errors.Is(err, syscall.ENOTDIR) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("colstore: open virtual sidecar: %w", err)
	}
	var vm virtualSidecar
	if err := json.Unmarshal(blob, &vm); err != nil {
		return nil, fmt.Errorf("colstore: open virtual sidecar: %w", err)
	}
	return &vm, nil
}

// persistVirtualLocked writes one freshly built virtual column into the
// store's virtual/ sidecar: the column file in the parent store's framing,
// then the sidecar manifest (atomically, temp + rename). The caller holds
// lazySource.persistMu.
func (s *Store) persistVirtualLocked(col *Column) (manifestCol, error) {
	src := s.lazy
	r := src.reader
	raw, dictLen, chunkMetas := encodeColumn(col)
	mc := manifestCol{
		Name: col.Name, Kind: col.Kind.String(), Virtual: true,
		DictLen: dictLen, Chunks: chunkMetas,
	}
	if r.m.Codec != "" {
		codec := mustCodec(r.m.Codec)
		if r.m.Format >= formatVersion {
			raw, mc = compressRecords(codec, raw, mc)
		} else {
			// Legacy whole-column framing: keep the sidecar readable by the
			// same code paths as the parent's columns.
			raw = codec.Compress(nil, raw)
		}
	}
	if err := os.MkdirAll(filepath.Join(r.dir, virtualSubdir), 0o755); err != nil {
		return mc, fmt.Errorf("colstore: persist virtual column %q: %w", col.Name, err)
	}
	// Claim a column file exclusively (O_EXCL): another Store or process
	// persisting into the same directory can never overwrite bytes a live
	// Reader has already recorded ranges for — the race costs at worst a
	// lost manifest entry, never corrupt data.
	src.mu.RLock()
	seq := len(src.sidecar)
	src.mu.RUnlock()
	for {
		mc.File = filepath.Join(virtualSubdir, fmt.Sprintf("vcol_%04d.bin", seq))
		f, err := os.OpenFile(filepath.Join(r.dir, mc.File), os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
		if os.IsExist(err) {
			seq++
			continue
		}
		if err != nil {
			return mc, fmt.Errorf("colstore: persist virtual column %q: %w", col.Name, err)
		}
		_, werr := f.Write(raw)
		cerr := f.Close()
		if werr == nil {
			werr = cerr
		}
		if werr != nil {
			return mc, fmt.Errorf("colstore: persist virtual column %q: %w", col.Name, werr)
		}
		break
	}
	src.mu.RLock()
	cols := append(append([]manifestCol(nil), src.sidecar...), mc)
	src.mu.RUnlock()
	blob, err := json.MarshalIndent(&virtualSidecar{Format: r.m.Format, Codec: r.m.Codec, Columns: cols}, "", "  ")
	if err != nil {
		return mc, fmt.Errorf("colstore: persist virtual column %q: %w", col.Name, err)
	}
	path := filepath.Join(r.dir, virtualSubdir, virtualManifestName)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, blob, 0o644); err != nil {
		return mc, fmt.Errorf("colstore: persist virtual column %q: %w", col.Name, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return mc, fmt.Errorf("colstore: persist virtual column %q: %w", col.Name, err)
	}
	src.mu.Lock()
	src.sidecar = cols
	src.mu.Unlock()
	return mc, nil
}

// registerSidecarColumn publishes a sidecar column's metadata so the store
// serves it exactly like a physical column: lazy-load metadata in the
// registry, per-chunk spans for restriction pruning, and the manifest
// entry in the Reader for cold loads. Used both when a materialization is
// persisted and when OpenLazy finds an existing sidecar.
func (s *Store) registerSidecarColumn(mc manifestCol) error {
	kind, err := value.ParseKind(mc.Kind)
	if err != nil {
		return fmt.Errorf("colstore: virtual column %q: %w", mc.Name, err)
	}
	src := s.lazy
	if !src.reader.hasLayout(mc) {
		return fmt.Errorf("colstore: virtual column %q has no chunk layout", mc.Name)
	}
	s.mu.Lock()
	if _, dup := s.metas[mc.Name]; dup {
		s.mu.Unlock()
		return fmt.Errorf("colstore: duplicate column %q", mc.Name)
	}
	if _, dup := s.columns[mc.Name]; dup {
		s.mu.Unlock()
		return fmt.Errorf("colstore: duplicate column %q", mc.Name)
	}
	s.metas[mc.Name] = ColumnMeta{Name: mc.Name, Kind: kind, Virtual: true}
	s.order = append(s.order, mc.Name)
	s.mu.Unlock()
	spans := make([]ChunkSpan, len(mc.Chunks))
	for i, cm := range mc.Chunks {
		spans[i] = ChunkSpan{MinGID: cm.Min, MaxGID: cm.Max}
	}
	src.mu.Lock()
	src.spans[mc.Name] = spans
	src.mu.Unlock()
	src.reader.registerVirtual(mc)
	return nil
}

// loadSidecar reads and registers dir's virtual sidecar during OpenLazy.
// The sidecar is best-effort by contract ("lose a column, never corrupt
// one"), so staleness never fails the open: a framing mismatch (the store
// was re-saved in place with a different codec) ignores the sidecar
// entirely, and an entry that no longer registers — typically a column an
// in-place Save promoted into the main manifest — is skipped and dropped
// from the kept list, re-materializing (or serving from the main
// manifest) instead.
func (s *Store) loadSidecar(dir string) error {
	src := s.lazy
	vm, err := readVirtualSidecar(dir)
	if err != nil || vm == nil {
		return err
	}
	if vm.Codec != src.reader.m.Codec || vm.Format != src.reader.m.Format {
		return nil
	}
	kept := make([]manifestCol, 0, len(vm.Columns))
	for _, mc := range vm.Columns {
		if err := s.registerSidecarColumn(mc); err != nil {
			continue
		}
		kept = append(kept, mc)
	}
	src.mu.Lock()
	src.sidecar = kept
	src.mu.Unlock()
	return nil
}

// adoptVirtual registers a freshly materialized, already persisted virtual
// column's pieces as pinned entries of the memory manager: no cold-load
// counters and no disk charge (the data was just built in memory), but the
// bytes go through the byte budget like any load — cold unpinned entries
// are evicted to make room. The returned column is the resident view:
// data-identical to col, possibly shared with a concurrent materializer
// that raced through another store on the same directory. The pins drop
// with the set's Release, after which the entries are evictable and reload
// from the sidecar.
func (p *PinSet) adoptVirtual(col *Column) (*Column, error) {
	name := col.Name
	if h, ok := p.held[name]; ok {
		return h.view, nil
	}
	src := p.s.lazy
	h := &heldPin{view: col, chunks: make([]bool, p.s.NumChunks()), dict: true}
	dictKey := src.dictKey(name)
	dictSize := col.Dict.MemoryBytes()
	ld := src.mgr.Insert(dictKey, &loadedDict{d: col.Dict, size: dictSize}, dictSize, true).(*loadedDict)
	col.Dict = ld.d
	h.keys = append(h.keys, dictKey)
	for ci, ch := range col.Chunks {
		key := src.chunkKey(name, ci)
		size := ch.MemoryElements() + ch.MemoryChunkDict()
		lc := src.mgr.Insert(key, &loadedChunk{ch: ch, size: size}, size, true).(*loadedChunk)
		col.Chunks[ci] = lc.ch
		h.chunks[ci] = true
		h.keys = append(h.keys, key)
	}
	if p.held == nil {
		p.held = make(map[string]*heldPin, 8)
	}
	p.held[name] = h
	return col, nil
}
