package colstore

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"powerdrill/internal/compress"
	"powerdrill/internal/memmgr"
)

// TestPerChunkCompressedRoundTrip pins the v3 format: for every registered
// codec, a per-record-compressed save must open bit-for-bit identically —
// eagerly and lazily — and single-chunk/single-dictionary loads must read
// exactly the compressed record's byte range, nothing more.
func TestPerChunkCompressedRoundTrip(t *testing.T) {
	for _, codec := range compress.Names() {
		t.Run(codec, func(t *testing.T) {
			built, dir := buildSavedStore(t, 3000, codec)
			eager, _, err := Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			assertColumnsEqual(t, built, eager)
			lazy, _, err := OpenLazy(dir, memmgr.New(0, "2q"))
			if err != nil {
				t.Fatal(err)
			}
			if !lazy.ChunkGranular() {
				t.Fatal("per-chunk-compressed store is not chunk-granular")
			}
			assertColumnsEqual(t, built, lazy)

			r, _, err := NewReader(dir)
			if err != nil {
				t.Fatal(err)
			}
			for _, name := range built.Columns() {
				want := built.Column(name)
				dlen, ok := r.DictFileLen(name)
				if !ok || dlen <= 0 {
					t.Fatalf("column %q: no exact dictionary range (ok=%v len=%d)", name, ok, dlen)
				}
				if _, disk, err := r.LoadColumnDict(name); err != nil || disk != dlen {
					t.Fatalf("column %q: dict load disk=%d want %d (err=%v)", name, disk, dlen, err)
				}
				for ci := range want.Chunks {
					off, n, ok := r.ChunkFileRange(name, ci)
					if !ok || n <= 0 || off < dlen {
						t.Fatalf("column %q chunk %d: bad range ok=%v off=%d n=%d", name, ci, ok, off, n)
					}
					ch, disk, err := r.LoadColumnChunk(name, ci)
					if err != nil {
						t.Fatalf("column %q chunk %d: %v", name, ci, err)
					}
					if disk != n {
						t.Fatalf("column %q chunk %d: charged %d disk bytes, exact range is %d", name, ci, disk, n)
					}
					wch := want.Chunks[ci]
					if ch.Rows() != wch.Rows() || ch.Cardinality() != wch.Cardinality() {
						t.Fatalf("column %q chunk %d shape mismatch", name, ci)
					}
					for rIdx := 0; rIdx < wch.Rows(); rIdx++ {
						if ch.Elems.At(rIdx) != wch.Elems.At(rIdx) {
							t.Fatalf("column %q chunk %d elem %d mismatch", name, ci, rIdx)
						}
					}
				}
			}
		})
	}
}

// TestPerChunkCompressedSmallerThanFile checks the point of exact reads:
// one chunk's charged bytes must be a strict subset of the column file.
func TestPerChunkCompressedSmallerThanFile(t *testing.T) {
	_, dir := buildSavedStore(t, 4000, "zippy")
	r, _, err := NewReader(dir)
	if err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(filepath.Join(dir, "col_0000.bin"))
	if err != nil {
		t.Fatal(err)
	}
	name := r.Columns()[0].Name
	_, disk, err := r.LoadColumnChunk(name, 0)
	if err != nil {
		t.Fatal(err)
	}
	if disk <= 0 || disk >= fi.Size() {
		t.Fatalf("chunk 0 charged %d bytes of a %d byte file; want a strict subrange", disk, fi.Size())
	}
}

// TestLegacyV2WholeColumnMemoized pins the legacy-compressed behavior: a
// store with whole-column codec framing pays one full read+decompress for
// the first cold piece of a column (later loads come from the Reader's
// memoized stream), while every chunk load — first or memoized — is
// *charged* its exact record share of the file. Before the attribution
// fix, the first load was charged the whole file and later loads 0, so
// per-query DiskBytesRead depended on arrival order.
func TestLegacyV2WholeColumnMemoized(t *testing.T) {
	built, dir := buildLegacyStore(t, 3000, "zippy")
	lazy, _, err := OpenLazy(dir, memmgr.New(0, "2q"))
	if err != nil {
		t.Fatal(err)
	}
	if !lazy.ChunkGranular() {
		t.Fatal("v2 store with a chunk layout should be chunk-granular")
	}
	assertColumnsEqual(t, built, lazy)

	r, _, err := NewReader(dir)
	if err != nil {
		t.Fatal(err)
	}
	name := built.Columns()[0]
	if _, _, ok := r.ChunkFileRange(name, 0); ok {
		t.Fatal("whole-column codec must not advertise exact chunk ranges")
	}
	mc, ok := r.colMeta(name)
	if !ok {
		t.Fatalf("no manifest entry for %q", name)
	}
	fi, err := os.Stat(filepath.Join(dir, mc.File))
	if err != nil {
		t.Fatal(err)
	}
	stream := streamLen(mc)
	share := func(recLen int64) int64 {
		s := int64(float64(fi.Size()) * float64(recLen) / float64(stream))
		if s < 1 {
			s = 1
		}
		return s
	}
	var charged int64
	for ci := 0; ci < built.NumChunks(); ci++ {
		_, disk, err := r.LoadColumnChunk(name, ci)
		if err != nil {
			t.Fatal(err)
		}
		if want := share(mc.Chunks[ci].Len); disk != want {
			t.Fatalf("chunk %d charged %d bytes, want its record share %d", ci, disk, want)
		}
		if disk <= 0 || disk >= fi.Size() {
			t.Fatalf("chunk %d charged %d bytes of a %d byte file; want a strict nonzero subrange", ci, disk, fi.Size())
		}
		charged += disk
	}
	if _, disk, err := r.LoadColumnDict(name); err != nil {
		t.Fatal(err)
	} else if want := share(mc.DictLen); disk != want {
		t.Fatalf("dictionary charged %d bytes, want its record share %d", disk, want)
	} else {
		charged += disk
	}
	// The shares are proportional, so loading everything is charged about
	// one file (never more than file + one rounding unit per record).
	if slack := int64(built.NumChunks() + 1); charged > fi.Size()+slack || charged < fi.Size()/2 {
		t.Fatalf("all records charged %d bytes of a %d byte file", charged, fi.Size())
	}
	io := r.IOStats()
	if io.DecompressCalls != 1 {
		t.Fatalf("decompress calls = %d, want 1 (memoized)", io.DecompressCalls)
	}
	if io.ReadCalls != 1 || io.BytesRead != fi.Size() {
		t.Fatalf("physical IO = %d reads / %d bytes, want exactly one whole-file read (%d bytes)", io.ReadCalls, io.BytesRead, fi.Size())
	}
}

// TestReadChunkRuns checks run coalescing: contiguous chunks collapse into
// one read, a gap splits the runs, and the records decode identically to
// individual loads.
func TestReadChunkRuns(t *testing.T) {
	for _, codec := range []string{"", "zippy"} {
		name := codec
		if name == "" {
			name = "raw"
		}
		t.Run(name, func(t *testing.T) {
			built, dir := buildSavedStore(t, 4000, codec)
			r, _, err := NewReader(dir)
			if err != nil {
				t.Fatal(err)
			}
			col := built.Columns()[0]
			want := built.Column(col)
			n := built.NumChunks()
			if n < 4 {
				t.Fatalf("need at least 4 chunks, have %d", n)
			}
			all := make([]int, n)
			for i := range all {
				all[i] = i
			}
			recs, runs, coalesced, ok, err := r.ReadChunkRuns(col, all)
			if err != nil || !ok {
				t.Fatalf("ReadChunkRuns: ok=%v err=%v", ok, err)
			}
			if runs != 1 {
				t.Fatalf("contiguous chunks read in %d runs, want 1", runs)
			}
			if coalesced != n-1 {
				t.Fatalf("coalesced = %d, want %d reads saved", coalesced, n-1)
			}
			for ci, rec := range recs {
				ch, err := r.DecodeChunkRecord(col, ci, rec)
				if err != nil {
					t.Fatalf("chunk %d: %v", ci, err)
				}
				wch := want.Chunks[ci]
				for rIdx := 0; rIdx < wch.Rows(); rIdx++ {
					if ch.Elems.At(rIdx) != wch.Elems.At(rIdx) {
						t.Fatalf("chunk %d elem %d mismatch", ci, rIdx)
					}
				}
			}
			// A hole splits the run.
			_, runs, coalesced, ok, err = r.ReadChunkRuns(col, []int{0, 1, 3})
			if err != nil || !ok {
				t.Fatalf("ReadChunkRuns with gap: ok=%v err=%v", ok, err)
			}
			if runs != 2 {
				t.Fatalf("gapped set read in %d runs, want 2", runs)
			}
			if coalesced != 1 {
				t.Fatalf("gapped set saved %d reads, want 1 (the 0-1 pair)", coalesced)
			}
		})
	}
}

// TestUnknownCodecFailsOpen pins the failure mode of a manifest naming a
// codec this binary does not register (a store from a newer build): the
// open must error, not the first cold load.
func TestUnknownCodecFailsOpen(t *testing.T) {
	_, dir := buildSavedStore(t, 1000, "zippy")
	path := filepath.Join(dir, "manifest.json")
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(blob, &m); err != nil {
		t.Fatal(err)
	}
	m["codec"] = "from-the-future"
	out, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, out, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := NewReader(dir); err == nil {
		t.Fatal("NewReader accepted an unknown codec")
	}
	if _, _, err := OpenLazy(dir, memmgr.New(0, "2q")); err == nil {
		t.Fatal("OpenLazy accepted an unknown codec")
	}
}

// TestReaderCloseReopens checks that Close only releases resources: loads
// after Close re-open files and still succeed.
func TestReaderCloseReopens(t *testing.T) {
	built, dir := buildSavedStore(t, 2000, "zippy")
	r, _, err := NewReader(dir)
	if err != nil {
		t.Fatal(err)
	}
	name := built.Columns()[0]
	if _, _, err := r.LoadColumnChunk(name, 0); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.LoadColumnChunk(name, 1); err != nil {
		t.Fatalf("load after Close: %v", err)
	}
	if io := r.IOStats(); io.FileOpens < 2 {
		t.Fatalf("expected a re-open after Close, got %d opens", io.FileOpens)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}
