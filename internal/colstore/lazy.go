package colstore

import (
	"errors"
	"fmt"
	"path/filepath"
	"strconv"
	"sync"
	"sync/atomic"

	"powerdrill/internal/bloom"
	"powerdrill/internal/compress"
	"powerdrill/internal/dict"
	"powerdrill/internal/memmgr"
	"powerdrill/internal/value"
)

// This file implements the Section 5 "only a fraction of the data needs to
// reside in RAM" machinery: a Reader that decodes a single column, a single
// dictionary or a single chunk from the persisted format, a lazily loaded
// Store whose data is materialized on first touch through a memmgr.Manager,
// and the PinSet queries use to keep exactly the pieces they are scanning
// resident while cold data gets evicted around them.
//
// The unit of residency is the (column, chunk) pair plus one entry per
// global dictionary: a restricted query that scans k of n chunks pins the
// dictionaries of its columns and the k active chunks of each, nothing
// else. Stores saved before the manifest carried a chunk layout fall back
// to whole-column residency (see Store.ChunkGranular).

// ColumnMeta describes a persisted column without loading its data.
type ColumnMeta struct {
	Name    string
	Kind    value.Kind
	Virtual bool
}

// ChunkSpan is the residency metadata of one chunk of one column: the
// bounds of the global-ids occurring in it. Because global dictionaries are
// sorted, the span bounds the chunk's values, which lets the engine decide
// from the manifest alone whether a restriction can match the chunk —
// before loading any chunk data. MinGID > MaxGID marks an empty chunk.
type ChunkSpan struct {
	MinGID uint32
	MaxGID uint32
}

// Empty reports whether the chunk holds no values.
func (sp ChunkSpan) Empty() bool { return sp.MinGID > sp.MaxGID }

// spanOf summarizes a built chunk.
func spanOf(ch *Chunk) ChunkSpan {
	if len(ch.GlobalIDs) == 0 {
		return ChunkSpan{MinGID: 1, MaxGID: 0}
	}
	return ChunkSpan{MinGID: ch.GlobalIDs[0], MaxGID: ch.GlobalIDs[len(ch.GlobalIDs)-1]}
}

// Reader decodes individual columns, dictionaries and chunks from a store
// persisted with Save. It keeps no column data itself — every Load call
// goes back to the files — so it is the natural provider behind a
// budget-managed store. What it does keep is cold-I/O plumbing (see
// readerio.go): a bounded cache of open file handles, a bounded memo of
// decompressed streams for legacy whole-column-codec stores, and physical
// I/O counters. All methods are safe for concurrent use.
type Reader struct {
	dir string
	m   *manifest
	sd  StringDictKind

	// colsMu guards cols: immutable for physical columns, but persisted
	// virtual columns register new entries at query time (registerVirtual)
	// while other queries load concurrently.
	colsMu sync.RWMutex
	cols   map[string]manifestCol

	mu      sync.Mutex
	files   map[string]*openFile
	fileLRU []string
	// fileSizes memoizes each column file's on-disk byte size after its
	// first whole-file read — the denominator-independent input to the
	// exact per-record disk attribution of legacy whole-column-codec loads
	// (recordShare). Sizes are immutable, so entries are never invalidated.
	fileSizes map[string]int64
	// rawCache memoizes decompressed whole-column streams for stores whose
	// codec frames the entire file (legacy v1/v2): without it, every cold
	// chunk of such a store would decompress the full column again.
	rawCache map[string][]byte
	rawOrder []string
	rawBytes int64
	stats    IOStats

	// verify enables CRC32C verification of every cold-read record on v5
	// stores (see checksum.go). On by default; earlier formats carry no
	// checksums, so the flag is moot there.
	verify bool
}

// NewReader opens the manifest in dir. manifestBytes reports the bytes
// read, the quantity Figure 5's latency model charges.
func NewReader(dir string) (r *Reader, manifestBytes int64, err error) {
	m, n, err := readManifest(dir)
	if err != nil {
		return nil, 0, err
	}
	if m.Codec != "" {
		// Validate up front so every later load can resolve the codec
		// infallibly (mustCodec): an unknown codec — a store written by a
		// newer build, say — must fail the open, not the first cold query.
		if _, err := compress.ByName(m.Codec); err != nil {
			return nil, 0, fmt.Errorf("colstore: open %s: %w", dir, err)
		}
	}
	r = &Reader{
		dir:    dir,
		m:      m,
		sd:     StringDictKind(m.Opts.StringDict),
		cols:   make(map[string]manifestCol, len(m.Columns)),
		verify: true,
	}
	if r.sd == "" {
		r.sd = StringDictArray
	}
	for _, mc := range m.Columns {
		r.cols[mc.Name] = mc
	}
	return r, n, nil
}

// colMeta looks up a column's manifest entry. Reads take the lock because
// persisted virtual columns register entries while loads are in flight.
func (r *Reader) colMeta(name string) (manifestCol, bool) {
	r.colsMu.RLock()
	mc, ok := r.cols[name]
	r.colsMu.RUnlock()
	return mc, ok
}

// registerVirtual publishes a sidecar column's manifest entry so the
// Reader serves its loads exactly like a physical column's.
func (r *Reader) registerVirtual(mc manifestCol) {
	r.colsMu.Lock()
	r.cols[mc.Name] = mc
	r.colsMu.Unlock()
}

// Columns lists the persisted columns in manifest order.
func (r *Reader) Columns() []ColumnMeta {
	out := make([]ColumnMeta, 0, len(r.m.Columns))
	for _, mc := range r.m.Columns {
		kind, err := value.ParseKind(mc.Kind)
		if err != nil {
			kind = value.KindInvalid
		}
		out = append(out, ColumnMeta{Name: mc.Name, Kind: kind, Virtual: mc.Virtual})
	}
	return out
}

// Bounds returns the store's chunk row boundaries.
func (r *Reader) Bounds() []int { return r.m.Bounds }

// hasLayout reports whether a manifest entry carries the chunk-granular
// layout (dictionary length plus per-chunk spans and byte ranges).
// Manifests written before this layout existed lack it and are served at
// whole-column granularity.
func (r *Reader) hasLayout(mc manifestCol) bool {
	return mc.DictLen > 0 && len(mc.Chunks) == len(r.m.Bounds)-1
}

// rawColumn reads and decompresses one column file into its uncompressed
// stream. On compressed stores the decompressed stream is memoized in the
// Reader (bounded; see readerio.go), so repeated whole-column reads —
// notably cold chunk loads on legacy whole-column-codec stores — pay the
// read and decompress once, not once per chunk. diskBytes reports the
// bytes actually read from disk by this call: zero on a memo hit.
func (r *Reader) rawColumn(name string) (raw []byte, diskBytes int64, kind value.Kind, virtual bool, err error) {
	mc, ok := r.colMeta(name)
	if !ok {
		return nil, 0, value.KindInvalid, false, fmt.Errorf("colstore: unknown column %q", name)
	}
	kind, err = value.ParseKind(mc.Kind)
	if err != nil {
		return nil, 0, value.KindInvalid, false, fmt.Errorf("colstore: column %q: %w", name, err)
	}
	if r.m.Codec != "" {
		if cached, ok := r.cachedStream(name); ok {
			return cached, 0, kind, mc.Virtual, nil
		}
	}
	raw, err = vfs().ReadFile(filepath.Join(r.dir, mc.File))
	if err != nil {
		return nil, 0, value.KindInvalid, false, fmt.Errorf("colstore: load column %q: %w", name, err)
	}
	diskBytes = int64(len(raw))
	r.mu.Lock()
	r.stats.ReadCalls++
	r.stats.BytesRead += diskBytes
	if r.fileSizes == nil {
		r.fileSizes = make(map[string]int64, 8)
	}
	r.fileSizes[mc.File] = diskBytes
	r.mu.Unlock()
	if r.verifyActive() {
		n, verr := verifyColumnFile(r.m, mc, raw, filepath.Join(r.dir, mc.File))
		r.noteChecksum(n, verr == nil)
		if verr != nil {
			return nil, 0, value.KindInvalid, false, fmt.Errorf("colstore: load column %q: %w", name, verr)
		}
	}
	if r.m.Codec != "" {
		codec := mustCodec(r.m.Codec)
		if r.m.perChunkCompressed(mc) {
			raw, err = r.decompressColumnFile(codec, mc, raw)
		} else {
			raw, err = r.decompress(codec, nil, raw)
		}
		if err != nil {
			return nil, 0, value.KindInvalid, false, fmt.Errorf("colstore: decompress column %q: %w", name, err)
		}
		r.memoizeStream(name, raw)
	}
	return raw, diskBytes, kind, mc.Virtual, nil
}

// LoadColumn decodes the named column in full. diskBytes is the on-disk
// (compressed) size actually read.
func (r *Reader) LoadColumn(name string) (*Column, int64, error) {
	raw, diskBytes, kind, virtual, err := r.rawColumn(name)
	if err != nil {
		return nil, 0, err
	}
	col, err := decodeColumn(name, kind, virtual, raw, r.sd)
	if err != nil {
		return nil, 0, fmt.Errorf("colstore: column %q: %w", name, err)
	}
	return col, diskBytes, nil
}

// LoadColumnDict decodes only the named column's global dictionary. With a
// chunk layout just the dictionary record's byte range is read from disk —
// raw on uncompressed stores, one compressed record (decompressed alone)
// on per-record-compressed ones. Legacy whole-column codecs read the whole
// file (memoized in the Reader) but materialize only the dictionary, and
// the reported disk bytes are the dictionary record's share of the file
// (see recordShare), not whichever of zero or the whole file the memo
// happened to serve.
func (r *Reader) LoadColumnDict(name string) (dict.Dict, int64, error) {
	mc, ok := r.colMeta(name)
	if !ok {
		return nil, 0, fmt.Errorf("colstore: unknown column %q", name)
	}
	kind, err := value.ParseKind(mc.Kind)
	if err != nil {
		return nil, 0, fmt.Errorf("colstore: column %q: %w", name, err)
	}
	if d, ok := r.shardedDictFromFrames(mc, kind); ok {
		// Sub-framed load (v4, uncompressed sharded string dictionaries):
		// routing bounds and Bloom filters come straight from the manifest,
		// so no dictionary bytes are read until a query probes a shard —
		// and each probe reads exactly that shard's byte range.
		return d, 0, nil
	}
	if n, exact := r.DictFileLen(name); exact {
		raw, err := r.readRange(mc.File, 0, n)
		if err != nil {
			return nil, 0, fmt.Errorf("colstore: load dictionary of %q: %w", name, err)
		}
		if err := r.verifyRecord(mc.File, 0, raw, mc.DictCRC); err != nil {
			return nil, 0, err
		}
		if r.m.perChunkCompressed(mc) {
			if raw, err = r.decompress(mustCodec(r.m.Codec), nil, raw); err != nil {
				return nil, 0, fmt.Errorf("colstore: load dictionary of %q: %w", name, err)
			}
		}
		d, err := decodeDict(&byteReader{buf: raw}, kind, r.sd)
		if err != nil {
			return nil, 0, fmt.Errorf("colstore: column %q: %w", name, err)
		}
		return d, n, nil
	}
	raw, diskBytes, kind, _, err := r.rawColumn(name)
	if err != nil {
		return nil, 0, err
	}
	d, err := decodeDict(&byteReader{buf: raw}, kind, r.sd)
	if err != nil {
		return nil, 0, fmt.Errorf("colstore: column %q: %w", name, err)
	}
	if r.hasLayout(mc) {
		// Whole-column codec with a layout: attribute the dictionary
		// record's exact share of the file rather than the full read (or a
		// memo-hit zero).
		diskBytes = r.recordShare(mc, mc.DictLen)
	}
	return d, diskBytes, nil
}

// shardedDictFromFrames reconstructs a sharded string dictionary from the
// manifest's v4 sub-frames, loading no values. Applies only to uncompressed
// stores saved with StringDictSharded: the shard byte ranges index the raw
// column file, so each shard the query probes is served by one exact
// ReadAt. Any malformed frame (bad Bloom bytes, non-positive count) makes
// the whole path report !ok and the caller falls back to decoding the full
// dictionary record — slower, never wrong.
func (r *Reader) shardedDictFromFrames(mc manifestCol, kind value.Kind) (dict.Dict, bool) {
	if kind != value.KindString || len(mc.DictShards) == 0 ||
		r.m.Codec != "" || r.sd != StringDictSharded {
		return nil, false
	}
	frames := make([]dict.ShardFrame, len(mc.DictShards))
	for i, ds := range mc.DictShards {
		f, err := bloom.Unmarshal(ds.Bloom)
		if err != nil || ds.Count <= 0 || ds.Len <= 0 {
			return nil, false
		}
		frames[i] = dict.ShardFrame{Count: ds.Count, First: ds.First, Last: ds.Last, Filter: f}
	}
	shards := mc.DictShards
	file := mc.File
	loader := func(i int) ([]string, error) {
		if i < 0 || i >= len(shards) {
			return nil, fmt.Errorf("colstore: dict shard %d of %q out of range", i, mc.Name)
		}
		ds := shards[i]
		raw, err := r.readRange(file, ds.Off, ds.Len)
		if err != nil {
			return nil, fmt.Errorf("colstore: load dict shard %d of %q: %w", i, mc.Name, err)
		}
		if err := r.verifyRecord(file, ds.Off, raw, ds.CRC); err != nil {
			return nil, err
		}
		br := &byteReader{buf: raw}
		vals := make([]string, ds.Count)
		for j := range vals {
			l, err := br.uvarint()
			if err != nil {
				return nil, fmt.Errorf("colstore: dict shard %d of %q: %w", i, mc.Name, err)
			}
			b, err := br.take(int(l))
			if err != nil {
				return nil, fmt.Errorf("colstore: dict shard %d of %q: %w", i, mc.Name, err)
			}
			vals[j] = string(b)
		}
		return vals, nil
	}
	d, err := dict.NewShardedFromFrames(frames, loader)
	if err != nil {
		return nil, false
	}
	return d, true
}

// LoadColumnChunk decodes a single chunk of the named column. When the
// layout supports exact reads (uncompressed with a chunk layout, or
// per-record-compressed v3) only the chunk record's byte range is read —
// and on v3 stores only that record is decompressed. A legacy store
// compressed as a whole still reads and decompresses the file (memoized in
// the Reader), materializing only the requested chunk and charging the
// chunk record's share of the file (recordShare) as its disk bytes.
// Without a layout the reader walks the stream, skipping the dictionary
// and the preceding chunks.
func (r *Reader) LoadColumnChunk(name string, chunk int) (*Chunk, int64, error) {
	mc, ok := r.colMeta(name)
	if ok && r.hasLayout(mc) {
		if chunk < 0 || chunk >= len(mc.Chunks) {
			return nil, 0, fmt.Errorf("colstore: column %q has %d chunks, want %d", name, len(mc.Chunks), chunk)
		}
		meta := mc.Chunks[chunk]
		if off, n, exact := r.ChunkFileRange(name, chunk); exact {
			rec, err := r.readRange(mc.File, off, n)
			if err != nil {
				return nil, 0, fmt.Errorf("colstore: load column %q chunk %d: %w", name, chunk, err)
			}
			ch, err := r.DecodeChunkRecord(name, chunk, rec)
			if err != nil {
				return nil, 0, err
			}
			return ch, n, nil
		}
		raw, _, _, _, err := r.rawColumn(name)
		if err != nil {
			return nil, 0, err
		}
		if meta.Off+meta.Len > int64(len(raw)) {
			return nil, 0, fmt.Errorf("colstore: column %q chunk %d: %w", name, chunk, errTruncated)
		}
		ch, err := decodeChunk(&byteReader{buf: raw[meta.Off : meta.Off+meta.Len]})
		if err != nil {
			return nil, 0, fmt.Errorf("colstore: column %q chunk %d: %w", name, chunk, err)
		}
		// Whole-column codec: the read (or memo hit) touched the whole
		// file, but this load is *for* one record — charge its exact share
		// so per-query DiskBytesRead does not depend on which query
		// happened to populate the memo.
		return ch, r.recordShare(mc, meta.Len), nil
	}
	raw, diskBytes, kind, _, err := r.rawColumn(name)
	if err != nil {
		return nil, 0, err
	}
	br := &byteReader{buf: raw}
	if err := skipDict(br, kind); err != nil {
		return nil, 0, fmt.Errorf("colstore: column %q: %w", name, err)
	}
	nChunks, err := br.uvarint()
	if err != nil {
		return nil, 0, fmt.Errorf("colstore: column %q: %w", name, err)
	}
	if chunk < 0 || uint64(chunk) >= nChunks {
		return nil, 0, fmt.Errorf("colstore: column %q has %d chunks, want %d", name, nChunks, chunk)
	}
	for c := 0; c < chunk; c++ {
		if err := skipChunk(br); err != nil {
			return nil, 0, fmt.Errorf("colstore: column %q: %w", name, err)
		}
	}
	ch, err := decodeChunk(br)
	if err != nil {
		return nil, 0, fmt.Errorf("colstore: column %q chunk %d: %w", name, chunk, err)
	}
	return ch, diskBytes, nil
}

// skipDict advances past the dictionary header without building it.
func skipDict(r *byteReader, kind value.Kind) error {
	n, err := r.uvarint()
	if err != nil {
		return err
	}
	switch kind {
	case value.KindString:
		for i := uint64(0); i < n; i++ {
			l, err := r.uvarint()
			if err != nil {
				return err
			}
			if _, err := r.take(int(l)); err != nil {
				return err
			}
		}
	case value.KindInt64, value.KindFloat64:
		if _, err := r.take(int(n) * 8); err != nil {
			return err
		}
	default:
		return fmt.Errorf("invalid kind %v", kind)
	}
	return nil
}

// lazySource wires a Store to its on-disk provider and memory manager.
type lazySource struct {
	reader *Reader
	mgr    *memmgr.Manager
	// ns namespaces this store's keys inside the (possibly shared) manager.
	// Replicas opened from the same directory share entries by design: the
	// data is immutable and identical.
	ns string
	// chunked is true when every persisted column carries a chunk layout,
	// enabling (column, chunk) residency. Immutable after OpenLazy.
	chunked bool

	// mu guards spans and sidecar: both immutable for physical columns but
	// extended at query time when a virtual column is persisted.
	mu sync.RWMutex
	// spans holds each laid-out column's per-chunk value spans, straight
	// from the manifest (or the virtual sidecar) — the metadata restriction
	// pruning runs on.
	spans map[string][]ChunkSpan
	// blooms holds each column's decoded per-chunk Bloom filters (v4
	// manifests; nil entries where the chunk has none), the second
	// metadata input to restriction pruning: a negative probe proves an
	// equality restriction matches nothing in a chunk even when the value
	// falls inside the chunk's [min, max] span.
	blooms map[string][]*bloom.Filter
	// sidecar mirrors the virtual/ sidecar manifest's column list.
	sidecar []manifestCol

	// persistMu serializes sidecar writes for this store.
	persistMu sync.Mutex
	// noPersist disables sidecar persistence (DisableVirtualPersist).
	noPersist atomic.Bool
}

func (l *lazySource) key(col string) string { return l.ns + "\x00" + col }

// dictKey and chunkKey name the chunk-granular residency units inside the
// manager: one entry per global dictionary, one per (column, chunk) pair.
func (l *lazySource) dictKey(col string) string { return l.ns + "\x00" + col + "#dict" }

func (l *lazySource) chunkKey(col string, ci int) string {
	return l.ns + "\x00" + col + "#" + strconv.Itoa(ci)
}

// OpenLazy opens a persisted store without loading any column data: only
// the manifest (and the virtual sidecar's manifest, if one exists) is
// read. Data materializes on first touch through mgr (which enforces the
// byte budget and evicts cold entries); virtual columns the engine
// materializes later are persisted into the sidecar and budgeted the same
// way (AddVirtualColumnPinned). mgr may be shared across stores (e.g. all
// shards of a leaf process share one budget).
//
// When the manifest carries a chunk layout (any store saved by this
// version), residency is chunk-granular: the manager tracks one entry per
// global dictionary and one per (column, chunk) pair, so a restricted
// query pins only the chunks it scans. Older manifests fall back to
// whole-column entries.
func OpenLazy(dir string, mgr *memmgr.Manager) (*Store, *DiskStats, error) {
	if mgr == nil {
		mgr = memmgr.New(0, "")
	}
	r, manifestBytes, err := NewReader(dir)
	if err != nil {
		return nil, nil, err
	}
	stats := &DiskStats{BytesRead: manifestBytes, Files: 1}
	s := storeShell(r.m)
	ns := filepath.Clean(dir)
	if abs, err := filepath.Abs(ns); err == nil {
		ns = abs
	}
	src := &lazySource{
		reader:  r,
		mgr:     mgr,
		ns:      ns,
		spans:   make(map[string][]ChunkSpan),
		blooms:  make(map[string][]*bloom.Filter),
		chunked: true,
	}
	s.lazy = src
	s.metas = make(map[string]ColumnMeta, len(r.m.Columns))
	for _, meta := range r.Columns() {
		if meta.Kind == value.KindInvalid {
			return nil, nil, fmt.Errorf("colstore: column %q has invalid kind", meta.Name)
		}
		s.metas[meta.Name] = meta
		s.order = append(s.order, meta.Name)
		mc := r.cols[meta.Name]
		if !r.hasLayout(mc) {
			src.chunked = false
			continue
		}
		spans := make([]ChunkSpan, len(mc.Chunks))
		for i, cm := range mc.Chunks {
			spans[i] = ChunkSpan{MinGID: cm.Min, MaxGID: cm.Max}
		}
		src.spans[meta.Name] = spans
		if filters := decodeChunkBlooms(mc); filters != nil {
			src.blooms[meta.Name] = filters
		}
	}
	if src.chunked {
		// Virtual columns persisted by earlier sessions: register them so
		// this session serves them as ordinary budgeted columns instead of
		// re-materializing the expressions.
		if err := s.loadSidecar(dir); err != nil {
			return nil, nil, err
		}
	}
	return s, stats, nil
}

// DisableVirtualPersist turns off sidecar persistence for this store:
// virtual columns materialized from then on live in the in-memory registry
// (unevictable, outside the budget), as they did before sidecar support.
// A no-op on fully resident stores.
func (s *Store) DisableVirtualPersist() {
	if s.lazy != nil {
		s.lazy.noPersist.Store(true)
	}
}

// MemManager returns the manager enforcing the store's byte budget, or nil
// for fully resident stores.
func (s *Store) MemManager() *memmgr.Manager {
	if s.lazy == nil {
		return nil
	}
	return s.lazy.mgr
}

// Codec returns the compression codec the persisted store was saved with
// ("" for uncompressed stores and for fully resident ones). The ingest
// path uses it to seal write chunks with the same framing as the base
// store's columns.
func (s *Store) Codec() string {
	if s.lazy == nil {
		return ""
	}
	return s.lazy.reader.m.Codec
}

// CacheNamespace returns the prefix that namespaces this lazy store's
// entries inside its (possibly shared) memory manager, or "" for fully
// resident stores. Retiring a superseded store generation drops all its
// residency at once via memmgr.DropNamespace with this prefix.
func (s *Store) CacheNamespace() string {
	if s.lazy == nil {
		return ""
	}
	return s.lazy.ns
}

// IOStats reports the lazy store's physical I/O counters (file opens, read
// calls, decompression time); ok is false for fully resident stores.
func (s *Store) IOStats() (IOStats, bool) {
	if s.lazy == nil {
		return IOStats{}, false
	}
	return s.lazy.reader.IOStats(), true
}

// Close releases the resources a lazy store holds outside the memory
// budget: cached column-file handles and memoized decompressed streams.
// The store stays usable (files re-open on demand); a no-op for fully
// resident stores.
func (s *Store) Close() error {
	if s.lazy == nil {
		return nil
	}
	return s.lazy.reader.Close()
}

// ChunkGranular reports whether the store's residency unit is the
// (column, chunk) pair. False for fully resident stores and for lazy
// stores whose manifest predates the chunk layout (those load and evict
// whole columns).
func (s *Store) ChunkGranular() bool { return s.lazy != nil && s.lazy.chunked }

// ChunkSpans returns the per-chunk global-id spans of the named column,
// without loading any chunk data: from the manifest on a lazy store, from
// the chunk-dictionaries on a resident one. ok is false when the column is
// unknown or (on a lazy store) has no layout.
func (s *Store) ChunkSpans(name string) ([]ChunkSpan, bool) {
	if c := s.residentColumn(name); c != nil {
		out := make([]ChunkSpan, len(c.Chunks))
		for i, ch := range c.Chunks {
			out[i] = spanOf(ch)
		}
		return out, true
	}
	if s.lazy != nil {
		s.lazy.mu.RLock()
		sp, ok := s.lazy.spans[name]
		s.lazy.mu.RUnlock()
		return sp, ok
	}
	return nil, false
}

// decodeChunkBlooms unmarshals a manifest column's per-chunk Bloom filters
// (v4; empty on older manifests). The returned slice is indexed by chunk,
// nil where the chunk carries no filter (dense or empty chunks) or where
// the bytes fail to parse — a bad filter degrades to span-only pruning,
// never to a wrong answer. Returns nil when no chunk has one.
func decodeChunkBlooms(mc manifestCol) []*bloom.Filter {
	var filters []*bloom.Filter
	for i, cm := range mc.Chunks {
		if len(cm.Bloom) == 0 {
			continue
		}
		f, err := bloom.Unmarshal(cm.Bloom)
		if err != nil {
			continue
		}
		if filters == nil {
			filters = make([]*bloom.Filter, len(mc.Chunks))
		}
		filters[i] = f
	}
	return filters
}

// ChunkBlooms returns the named column's per-chunk Bloom filters over
// distinct global-ids, without loading any chunk data: nil entries mark
// chunks without one. ok is false on fully resident stores, on manifests
// predating the filters (v1–v3), and for columns none of whose chunks
// carry one — callers then prune on spans alone.
func (s *Store) ChunkBlooms(name string) ([]*bloom.Filter, bool) {
	if s.lazy == nil {
		return nil, false
	}
	s.lazy.mu.RLock()
	bf, ok := s.lazy.blooms[name]
	s.lazy.mu.RUnlock()
	return bf, ok
}

// acquire pins the named physical column in the memory manager as one
// whole-column entry, loading it from disk when cold — the residency unit
// of stores without a chunk layout. Callers must Release the returned key
// when done.
func (s *Store) acquire(name string) (col *Column, key string, cold bool, diskBytes int64, err error) {
	meta, ok := s.meta(name)
	if !ok {
		return nil, "", false, 0, fmt.Errorf("colstore: unknown column %q", name)
	}
	key = s.lazy.key(name)
	v, cold, err := s.acquireFn(meta.Virtual)(key, func() (any, int64, int64, error) {
		c, disk, err := s.lazy.reader.LoadColumn(meta.Name)
		if err != nil {
			return nil, 0, 0, err
		}
		if err := c.checkAligned(s.Bounds); err != nil {
			return nil, 0, 0, err
		}
		return &loadedColumn{col: c, diskBytes: disk}, c.Memory().Total(), disk, nil
	})
	if err != nil {
		return nil, "", false, 0, err
	}
	lc := v.(*loadedColumn)
	return lc.col, key, cold, lc.diskBytes, nil
}

// acquireFn selects the manager entry point: virtual-column entries are
// tagged so their resident bytes show up in Stats.VirtualBytes.
func (s *Store) acquireFn(virtual bool) func(string, memmgr.LoadFunc) (any, bool, error) {
	if virtual {
		return s.lazy.mgr.AcquireVirtual
	}
	return s.lazy.mgr.Acquire
}

// isVirtual reports whether the named column is a materialized virtual
// field, from metadata alone.
func (s *Store) isVirtual(name string) bool {
	m, ok := s.meta(name)
	return ok && m.Virtual
}

// acquireDict pins the named column's global dictionary.
func (s *Store) acquireDict(name string) (d dict.Dict, key string, cold bool, size, diskBytes int64, err error) {
	key = s.lazy.dictKey(name)
	v, cold, err := s.acquireFn(s.isVirtual(name))(key, func() (any, int64, int64, error) {
		dd, disk, err := s.lazy.reader.LoadColumnDict(name)
		if err != nil {
			return nil, 0, 0, err
		}
		return &loadedDict{d: dd, size: dd.MemoryBytes(), diskBytes: disk}, dd.MemoryBytes(), disk, nil
	})
	if err != nil {
		return nil, "", false, 0, 0, err
	}
	ld := v.(*loadedDict)
	return ld.d, key, cold, ld.size, ld.diskBytes, nil
}

// acquireChunk pins one chunk of the named column. rec, when non-nil, is
// the chunk's file record pre-read by a coalesced run (see ColumnChunks);
// the load then decodes without touching the disk again. The record bytes
// are only consumed if this call actually performs the load — when another
// query won the race, the resident chunk is shared and rec is dropped.
func (s *Store) acquireChunk(name string, ci int, rec []byte) (ch *Chunk, key string, cold bool, size, diskBytes int64, err error) {
	key = s.lazy.chunkKey(name, ci)
	v, cold, err := s.acquireFn(s.isVirtual(name))(key, func() (any, int64, int64, error) {
		var (
			c    *Chunk
			disk int64
			err  error
		)
		if rec != nil {
			c, err = s.lazy.reader.DecodeChunkRecord(name, ci, rec)
			disk = int64(len(rec))
		} else {
			c, disk, err = s.lazy.reader.LoadColumnChunk(name, ci)
		}
		if err != nil {
			return nil, 0, 0, err
		}
		if want := s.ChunkRows(ci); c.Rows() != want {
			return nil, 0, 0, fmt.Errorf("colstore: column %q chunk %d has %d rows, want %d", name, ci, c.Rows(), want)
		}
		size := c.MemoryElements() + c.MemoryChunkDict()
		return &loadedChunk{ch: c, size: size, diskBytes: disk}, size, disk, nil
	})
	if err != nil {
		return nil, "", false, 0, 0, err
	}
	lc := v.(*loadedChunk)
	return lc.ch, key, cold, lc.size, lc.diskBytes, nil
}

// loadedColumn is the whole-column unit the memory manager holds for
// stores without a chunk layout.
type loadedColumn struct {
	col       *Column
	diskBytes int64
}

// loadedDict and loadedChunk are the chunk-granular residency units.
type loadedDict struct {
	d         dict.Dict
	size      int64
	diskBytes int64
}

type loadedChunk struct {
	ch        *Chunk
	size      int64
	diskBytes int64
}

// PinSet keeps the pieces one query touches resident for the query's
// lifetime: the engine pins every dictionary and chunk it needs from first
// touch (during planning) through the parallel chunk scan and final
// dictionary lookups, then releases them all at once. Cold-load counters
// accumulate per set, giving per-query attribution of what had to come
// from disk.
//
// On a chunk-granular store a column is represented by a query-private
// *Column view whose Chunks slice is filled only at the pinned indices;
// positions the residency analysis pruned stay nil and must not be
// touched. The view pointer is stable across calls within one set, so
// compiled plans can cache it. On a fully resident store a PinSet degrades
// to plain column lookups.
//
// This is the error-carrying access path: prefer it over Store.Column,
// which swallows load errors (see the PinSet-first contract there).
type PinSet struct {
	s    *Store
	held map[string]*heldPin // column name -> pins
	// ColdLoads counts columns for which this set loaded anything from
	// disk (a column with five cold chunks counts once — the
	// column-granularity number comparable across store generations).
	ColdLoads int
	// ColdChunkLoads counts individual (column, chunk) entries this set
	// cold-loaded; zero on stores without a chunk layout.
	ColdChunkLoads int
	// ColdDictLoads counts global dictionaries this set cold-loaded; zero
	// on stores without a chunk layout.
	ColdDictLoads int
	// ColdBytesLoaded sums the resident bytes of all cold loads.
	ColdBytesLoaded int64
	// DiskBytesRead sums their on-disk (compressed) bytes.
	DiskBytesRead int64
	// ReadRuns counts the coalesced byte-run reads the set's cold chunk
	// prefetches issued (one ReadAt per run; zero on stores without exact
	// chunk reads).
	ReadRuns int
	// CoalescedReads counts the reads run coalescing saved: a run of m
	// contiguous cold chunks is one read instead of m, saving m−1.
	CoalescedReads int
	// ChecksumVerified counts the records (chunks, dictionaries) whose
	// CRC32C this set's cold loads checked and matched — zero on v1–v4
	// stores or with verification disabled.
	ChecksumVerified int64
	// ChecksumFailed counts cold loads this set aborted on a checksum
	// mismatch (the query then fails with that ChecksumError).
	ChecksumFailed int64
}

// heldPin records the pins held for one column.
type heldPin struct {
	view *Column
	keys []string
	// chunks flags which chunk indices are pinned (chunk-granular only).
	chunks []bool
	dict   bool
	// cold marks the column as already counted in ColdLoads.
	cold bool
}

// NewPinSet creates an empty pin set for the store.
func (s *Store) NewPinSet() *PinSet { return &PinSet{s: s} }

// coldColumn folds one cold entry's sizes into the set's counters.
func (p *PinSet) coldColumn(h *heldPin, size, disk int64) {
	if !h.cold {
		h.cold = true
		p.ColdLoads++
	}
	p.ColdBytesLoaded += size
	p.DiskBytesRead += disk
}

// ensure returns (creating if needed) the held record for a chunk-granular
// column.
func (p *PinSet) ensure(name string) (*heldPin, error) {
	if h, ok := p.held[name]; ok {
		return h, nil
	}
	meta, ok := p.s.meta(name)
	if !ok {
		return nil, fmt.Errorf("colstore: unknown column %q", name)
	}
	h := &heldPin{
		view: &Column{
			Name:    meta.Name,
			Kind:    meta.Kind,
			Virtual: meta.Virtual,
			Chunks:  make([]*Chunk, p.s.NumChunks()),
		},
		chunks: make([]bool, p.s.NumChunks()),
	}
	if p.held == nil {
		p.held = make(map[string]*heldPin, 8)
	}
	p.held[name] = h
	return h, nil
}

// ensureDict pins the column's global dictionary into the view.
func (p *PinSet) ensureDict(h *heldPin) error {
	if h.dict {
		return nil
	}
	d, key, cold, size, disk, err := p.s.acquireDict(h.view.Name)
	if err != nil {
		p.noteChecksumErr(err)
		return err
	}
	h.view.Dict = d
	h.dict = true
	h.keys = append(h.keys, key)
	if cold {
		p.ColdDictLoads++
		p.coldColumn(h, size, disk)
		if p.s.ChecksumsActive() {
			p.ChecksumVerified++
		}
	}
	return nil
}

// noteChecksumErr counts a load aborted by a checksum mismatch.
func (p *PinSet) noteChecksumErr(err error) {
	var ce *ChecksumError
	if errors.As(err, &ce) {
		p.ChecksumFailed++
	}
}

// ensureChunk pins one chunk into the view. rec optionally carries the
// chunk's pre-read file record from a coalesced run.
func (p *PinSet) ensureChunk(h *heldPin, ci int, rec []byte) error {
	if h.chunks[ci] {
		return nil
	}
	ch, key, cold, size, disk, err := p.s.acquireChunk(h.view.Name, ci, rec)
	if err != nil {
		p.noteChecksumErr(err)
		return err
	}
	h.view.Chunks[ci] = ch
	h.chunks[ci] = true
	h.keys = append(h.keys, key)
	if cold {
		p.ColdChunkLoads++
		p.coldColumn(h, size, disk)
		if p.s.ChecksumsActive() {
			p.ChecksumVerified++
		}
	}
	return nil
}

// legacyColumn pins a whole column as a single manager entry — the path
// for stores whose manifest has no chunk layout.
func (p *PinSet) legacyColumn(name string) (*Column, error) {
	if h, ok := p.held[name]; ok {
		return h.view, nil
	}
	col, key, cold, disk, err := p.s.acquire(name)
	if err != nil {
		return nil, err
	}
	if p.held == nil {
		p.held = make(map[string]*heldPin, 8)
	}
	h := &heldPin{view: col, keys: []string{key}}
	p.held[name] = h
	if cold {
		p.coldColumn(h, col.Memory().Total(), disk)
	}
	return col, nil
}

// Column returns the named column fully pinned: dictionary plus every
// chunk. Registry-resident columns (fully resident stores, unpersisted
// virtual columns) need no pin and pass straight through; persisted
// virtual columns pin like physical ones. Unknown columns are an error.
// Use ColumnChunks when the query will only scan a subset of the chunks.
func (p *PinSet) Column(name string) (*Column, error) {
	return p.ColumnChunks(name, nil)
}

// ColumnDict returns a view of the named column with only its global
// dictionary pinned — enough to look up restriction literals and decode
// group keys, but with no chunk data. On resident and legacy stores it
// degrades to a full column.
func (p *PinSet) ColumnDict(name string) (*Column, error) {
	if c := p.s.residentColumn(name); c != nil {
		return c, nil
	}
	if p.s.lazy == nil {
		return nil, fmt.Errorf("colstore: unknown column %q", name)
	}
	if !p.s.lazy.chunked {
		return p.legacyColumn(name)
	}
	h, err := p.ensure(name)
	if err != nil {
		return nil, err
	}
	if err := p.ensureDict(h); err != nil {
		return nil, err
	}
	return h.view, nil
}

// ColumnChunks returns the named column with its dictionary and the chunks
// flagged in active pinned (nil active = every chunk). Chunks outside the
// active set stay nil in the returned view; callers must not touch them.
// Pinning is monotonic per set: asking again with a wider set fills the
// missing chunks, and already pinned ones are never double-counted.
//
// Cold chunks are prefetched in coalesced runs when the store's layout
// supports exact reads: the not-yet-resident subset of the wanted chunks
// is sorted into contiguous byte runs and each run is served by one ReadAt
// instead of one read per chunk (ReadRuns/CoalescedReads count the
// effect). A chunk another query loads between the residency peek and the
// pin is shared as usual — its pre-read bytes are simply dropped.
func (p *PinSet) ColumnChunks(name string, active []bool) (*Column, error) {
	if c := p.s.residentColumn(name); c != nil {
		return c, nil
	}
	if p.s.lazy == nil {
		return nil, fmt.Errorf("colstore: unknown column %q", name)
	}
	if !p.s.lazy.chunked {
		return p.legacyColumn(name)
	}
	h, err := p.ensure(name)
	if err != nil {
		return nil, err
	}
	if err := p.ensureDict(h); err != nil {
		return nil, err
	}
	// Which wanted chunks are cold? Those are worth batching into runs.
	var cold []int
	for ci := range h.chunks {
		if (active != nil && !active[ci]) || h.chunks[ci] {
			continue
		}
		if !p.s.lazy.mgr.Resident(p.s.lazy.chunkKey(name, ci)) {
			cold = append(cold, ci)
		}
	}
	// Batched cold prefetch: read runs and pin their chunks one bounded
	// batch at a time, so the transient raw-record buffers never exceed
	// maxPrefetchBatchBytes regardless of how much of the column is cold
	// (the decoded chunks themselves are pinned and budget-accounted as
	// usual). A batch boundary can split a contiguous run — one extra
	// read, bounded memory.
	reader := p.s.lazy.reader
	var batch []int
	var batchBytes int64
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		recs, runs, coalesced, exact, err := reader.ReadChunkRuns(name, batch)
		if err != nil {
			return err
		}
		if exact {
			p.ReadRuns += runs
			p.CoalescedReads += coalesced
		}
		for _, ci := range batch {
			if err := p.ensureChunk(h, ci, recs[ci]); err != nil {
				return err
			}
		}
		batch = batch[:0]
		batchBytes = 0
		return nil
	}
	for _, ci := range cold {
		n := int64(0)
		if _, rn, ok := reader.ChunkFileRange(name, ci); ok {
			n = rn
		}
		if len(batch) > 0 && batchBytes+n > maxPrefetchBatchBytes {
			if err := flush(); err != nil {
				return nil, err
			}
		}
		batch = append(batch, ci)
		batchBytes += n
	}
	if err := flush(); err != nil {
		return nil, err
	}
	// Pin everything wanted; cold chunks are already held, warm ones (and
	// any loaded by another query since the peek) share the resident entry.
	for ci := range h.chunks {
		if active != nil && !active[ci] {
			continue
		}
		if err := p.ensureChunk(h, ci, nil); err != nil {
			return nil, err
		}
	}
	return h.view, nil
}

// Release drops every pin the set holds. Safe to call more than once.
func (p *PinSet) Release() {
	if p.s.lazy != nil {
		for _, h := range p.held {
			for _, key := range h.keys {
				p.s.lazy.mgr.Release(key)
			}
		}
	}
	p.held = nil
}
