package colstore

import (
	"fmt"
	"os"
	"path/filepath"

	"powerdrill/internal/compress"
	"powerdrill/internal/memmgr"
	"powerdrill/internal/value"
)

// This file implements the Section 5 "only a fraction of the data needs to
// reside in RAM" machinery: a Reader that decodes a single column (or a
// single chunk) from the persisted format, a lazily loaded Store whose
// physical columns are materialized on first touch through a
// memmgr.Manager, and the PinSet queries use to keep the columns they are
// scanning resident while cold data gets evicted around them.

// ColumnMeta describes a persisted column without loading its data.
type ColumnMeta struct {
	Name    string
	Kind    value.Kind
	Virtual bool
}

// Reader decodes individual columns and chunks from a store persisted with
// Save. It keeps no column data itself — every Load call goes back to the
// files — so it is the natural Provider behind a budget-managed store.
type Reader struct {
	dir  string
	m    *manifest
	sd   StringDictKind
	cols map[string]manifestCol
}

// NewReader opens the manifest in dir. manifestBytes reports the bytes
// read, the quantity Figure 5's latency model charges.
func NewReader(dir string) (r *Reader, manifestBytes int64, err error) {
	m, n, err := readManifest(dir)
	if err != nil {
		return nil, 0, err
	}
	r = &Reader{
		dir:  dir,
		m:    m,
		sd:   StringDictKind(m.Opts.StringDict),
		cols: make(map[string]manifestCol, len(m.Columns)),
	}
	if r.sd == "" {
		r.sd = StringDictArray
	}
	for _, mc := range m.Columns {
		r.cols[mc.Name] = mc
	}
	return r, n, nil
}

// Columns lists the persisted columns in manifest order.
func (r *Reader) Columns() []ColumnMeta {
	out := make([]ColumnMeta, 0, len(r.m.Columns))
	for _, mc := range r.m.Columns {
		kind, err := value.ParseKind(mc.Kind)
		if err != nil {
			kind = value.KindInvalid
		}
		out = append(out, ColumnMeta{Name: mc.Name, Kind: kind, Virtual: mc.Virtual})
	}
	return out
}

// Bounds returns the store's chunk row boundaries.
func (r *Reader) Bounds() []int { return r.m.Bounds }

// rawColumn reads and decompresses one column file.
func (r *Reader) rawColumn(name string) (raw []byte, diskBytes int64, kind value.Kind, virtual bool, err error) {
	mc, ok := r.cols[name]
	if !ok {
		return nil, 0, value.KindInvalid, false, fmt.Errorf("colstore: unknown column %q", name)
	}
	kind, err = value.ParseKind(mc.Kind)
	if err != nil {
		return nil, 0, value.KindInvalid, false, fmt.Errorf("colstore: column %q: %w", name, err)
	}
	raw, err = os.ReadFile(filepath.Join(r.dir, mc.File))
	if err != nil {
		return nil, 0, value.KindInvalid, false, fmt.Errorf("colstore: load column %q: %w", name, err)
	}
	diskBytes = int64(len(raw))
	if r.m.Codec != "" {
		codec, cerr := compress.ByName(r.m.Codec)
		if cerr != nil {
			return nil, 0, value.KindInvalid, false, cerr
		}
		if raw, err = codec.Decompress(nil, raw); err != nil {
			return nil, 0, value.KindInvalid, false, fmt.Errorf("colstore: decompress column %q: %w", name, err)
		}
	}
	return raw, diskBytes, kind, mc.Virtual, nil
}

// LoadColumn decodes the named column in full. diskBytes is the on-disk
// (compressed) size actually read.
func (r *Reader) LoadColumn(name string) (*Column, int64, error) {
	raw, diskBytes, kind, virtual, err := r.rawColumn(name)
	if err != nil {
		return nil, 0, err
	}
	col, err := decodeColumn(name, kind, virtual, raw, r.sd)
	if err != nil {
		return nil, 0, fmt.Errorf("colstore: column %q: %w", name, err)
	}
	return col, diskBytes, nil
}

// LoadColumnChunk decodes a single chunk of the named column, skipping the
// dictionary payload and the other chunks' data (when the store is
// compressed as a whole the file is still read and decompressed, but only
// the requested chunk is materialized). It exists for finer-than-column
// residency experiments; the memory manager currently evicts at column
// granularity.
func (r *Reader) LoadColumnChunk(name string, chunk int) (*Chunk, int64, error) {
	raw, diskBytes, kind, _, err := r.rawColumn(name)
	if err != nil {
		return nil, 0, err
	}
	br := &byteReader{buf: raw}
	if err := skipDict(br, kind); err != nil {
		return nil, 0, fmt.Errorf("colstore: column %q: %w", name, err)
	}
	nChunks, err := br.uvarint()
	if err != nil {
		return nil, 0, fmt.Errorf("colstore: column %q: %w", name, err)
	}
	if chunk < 0 || uint64(chunk) >= nChunks {
		return nil, 0, fmt.Errorf("colstore: column %q has %d chunks, want %d", name, nChunks, chunk)
	}
	for c := 0; c < chunk; c++ {
		if err := skipChunk(br); err != nil {
			return nil, 0, fmt.Errorf("colstore: column %q: %w", name, err)
		}
	}
	ch, err := decodeChunk(br)
	if err != nil {
		return nil, 0, fmt.Errorf("colstore: column %q chunk %d: %w", name, chunk, err)
	}
	return ch, diskBytes, nil
}

// skipDict advances past the dictionary header without building it.
func skipDict(r *byteReader, kind value.Kind) error {
	n, err := r.uvarint()
	if err != nil {
		return err
	}
	switch kind {
	case value.KindString:
		for i := uint64(0); i < n; i++ {
			l, err := r.uvarint()
			if err != nil {
				return err
			}
			if _, err := r.take(int(l)); err != nil {
				return err
			}
		}
	case value.KindInt64, value.KindFloat64:
		if _, err := r.take(int(n) * 8); err != nil {
			return err
		}
	default:
		return fmt.Errorf("invalid kind %v", kind)
	}
	return nil
}

// lazySource wires a Store to its on-disk provider and memory manager.
type lazySource struct {
	reader *Reader
	mgr    *memmgr.Manager
	// ns namespaces this store's keys inside the (possibly shared) manager.
	// Replicas opened from the same directory share entries by design: the
	// data is immutable and identical.
	ns string
}

func (l *lazySource) key(col string) string { return l.ns + "\x00" + col }

// OpenLazy opens a persisted store without loading any column data: only
// the manifest is read. Physical columns materialize on first touch through
// mgr (which enforces the byte budget and evicts cold columns); virtual
// columns materialized later by the engine stay resident — they cannot be
// reloaded from disk. mgr may be shared across stores (e.g. all shards of a
// leaf process share one budget).
func OpenLazy(dir string, mgr *memmgr.Manager) (*Store, *DiskStats, error) {
	if mgr == nil {
		mgr = memmgr.New(0, "")
	}
	r, manifestBytes, err := NewReader(dir)
	if err != nil {
		return nil, nil, err
	}
	stats := &DiskStats{BytesRead: manifestBytes, Files: 1}
	s := storeShell(r.m)
	ns := filepath.Clean(dir)
	if abs, err := filepath.Abs(ns); err == nil {
		ns = abs
	}
	s.lazy = &lazySource{reader: r, mgr: mgr, ns: ns}
	s.metas = make(map[string]ColumnMeta, len(r.m.Columns))
	for _, meta := range r.Columns() {
		if meta.Kind == value.KindInvalid {
			return nil, nil, fmt.Errorf("colstore: column %q has invalid kind", meta.Name)
		}
		s.metas[meta.Name] = meta
		s.order = append(s.order, meta.Name)
	}
	return s, stats, nil
}

// MemManager returns the manager enforcing the store's byte budget, or nil
// for fully resident stores.
func (s *Store) MemManager() *memmgr.Manager {
	if s.lazy == nil {
		return nil
	}
	return s.lazy.mgr
}

// acquire pins the named physical column in the memory manager, loading it
// from disk when cold. Callers must Release the returned key when done.
func (s *Store) acquire(name string) (col *Column, key string, cold bool, diskBytes int64, err error) {
	meta, ok := s.metas[name]
	if !ok {
		return nil, "", false, 0, fmt.Errorf("colstore: unknown column %q", name)
	}
	key = s.lazy.key(name)
	v, cold, err := s.lazy.mgr.Acquire(key, func() (any, int64, int64, error) {
		c, disk, err := s.lazy.reader.LoadColumn(meta.Name)
		if err != nil {
			return nil, 0, 0, err
		}
		if err := c.checkAligned(s.Bounds); err != nil {
			return nil, 0, 0, err
		}
		return &loadedColumn{col: c, diskBytes: disk}, c.Memory().Total(), disk, nil
	})
	if err != nil {
		return nil, "", false, 0, err
	}
	lc := v.(*loadedColumn)
	return lc.col, key, cold, lc.diskBytes, nil
}

// loadedColumn is the unit the memory manager holds for a store.
type loadedColumn struct {
	col       *Column
	diskBytes int64
}

// PinSet keeps the columns one query touches resident for the query's
// lifetime: the engine pins every column from first touch (during planning)
// through the parallel chunk scan and final dictionary lookups, then
// releases them all at once. Cold-load counters accumulate per set, giving
// per-query attribution of what had to come from disk.
//
// On a fully resident store a PinSet degrades to plain column lookups.
type PinSet struct {
	s    *Store
	held map[string]heldPin // column name -> pin
	// ColdLoads counts columns this set loaded from disk.
	ColdLoads int
	// ColdBytesLoaded sums the resident bytes of those cold loads.
	ColdBytesLoaded int64
	// DiskBytesRead sums their on-disk (compressed) bytes.
	DiskBytesRead int64
}

// heldPin records one pinned column.
type heldPin struct {
	key string
	col *Column
}

// NewPinSet creates an empty pin set for the store.
func (s *Store) NewPinSet() *PinSet { return &PinSet{s: s} }

// Column returns the named column, pinning it on first use (one pin per
// set, however often it is asked for). Virtual and fully resident columns
// need no pin and pass straight through. Unknown columns are an error.
func (p *PinSet) Column(name string) (*Column, error) {
	if c := p.s.residentColumn(name); c != nil {
		return c, nil
	}
	if p.s.lazy == nil {
		return nil, fmt.Errorf("colstore: unknown column %q", name)
	}
	if h, ok := p.held[name]; ok {
		return h.col, nil
	}
	col, key, cold, disk, err := p.s.acquire(name)
	if err != nil {
		return nil, err
	}
	if p.held == nil {
		p.held = make(map[string]heldPin, 8)
	}
	p.held[name] = heldPin{key: key, col: col}
	if cold {
		p.ColdLoads++
		p.ColdBytesLoaded += col.Memory().Total()
		p.DiskBytesRead += disk
	}
	return col, nil
}

// Release drops every pin the set holds. Safe to call more than once.
func (p *PinSet) Release() {
	if p.s.lazy != nil {
		for _, h := range p.held {
			p.s.lazy.mgr.Release(h.key)
		}
	}
	p.held = nil
}
