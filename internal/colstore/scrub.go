package colstore

// Offline scrub: walk a persisted store directory and verify every
// record checksum without building a queryable store. The scrub is how
// latent corruption — a torn write no error ever surfaced, bit rot under
// cold data — is found before a query trips over it. It never repairs;
// it reports, one verdict per file, and the operator decides (restore
// the file, recompact, or strip the CRC to read around it).

import (
	"encoding/json"
	"fmt"
	"path/filepath"
)

// ScrubFile is one file's verdict from an offline scrub.
type ScrubFile struct {
	// Path is the file's path relative to the scrub root.
	Path string
	// Kind classifies the file: "manifest", "column", "sidecar-manifest",
	// "sidecar-column", "gen-manifest" or "wal".
	Kind string
	// Bytes is the file's size as read.
	Bytes int64
	// Records is how many checksummed records were verified. Zero on
	// pre-v5 files, which carry no checksums to check.
	Records int
	// Err is empty when the file verified clean; otherwise the first
	// failure found (checksum mismatch, parse failure, unreadable file).
	Err string
}

// OK reports whether the file verified clean.
func (f ScrubFile) OK() bool { return f.Err == "" }

// scrubRel renders path relative to root for a verdict, falling back to
// the full path when it is not under root.
func scrubRel(root, path string) string {
	if rel, err := filepath.Rel(root, path); err == nil {
		return rel
	}
	return path
}

// ScrubDir verifies one colstore directory offline: the manifest, every
// column file's record checksums, and the virtual/ sidecar (manifest
// generations plus sidecar column files). root anchors the verdict
// paths; pass dir itself for a standalone store. The walk continues past
// failures — every file gets a verdict.
func ScrubDir(root, dir string) []ScrubFile {
	var out []ScrubFile
	m, mBytes, err := readManifest(dir)
	mf := ScrubFile{Path: scrubRel(root, filepath.Join(dir, "manifest.json")), Kind: "manifest", Bytes: mBytes}
	if err != nil {
		mf.Err = err.Error()
		return append(out, mf)
	}
	out = append(out, mf)
	for _, mc := range m.Columns {
		out = append(out, scrubColumnFile(root, dir, m, mc, "column"))
	}
	out = append(out, scrubSidecar(root, dir, m)...)
	return out
}

// scrubColumnFile verifies one column file's record checksums.
func scrubColumnFile(root, dir string, m *manifest, mc manifestCol, kind string) ScrubFile {
	path := filepath.Join(dir, mc.File)
	f := ScrubFile{Path: scrubRel(root, path), Kind: kind}
	data, err := vfs().ReadFile(path)
	if err != nil {
		f.Err = err.Error()
		return f
	}
	f.Bytes = int64(len(data))
	n, err := verifyColumnFile(m, mc, data, path)
	f.Records = n
	if err != nil {
		f.Err = err.Error()
	}
	return f
}

// scrubSidecar verifies the virtual/ sidecar: every generation manifest
// (not just the newest — a corrupt older one is still worth a verdict)
// and the column files of the newest good generation.
func scrubSidecar(root, dir string, parent *manifest) []ScrubFile {
	vdir := filepath.Join(dir, virtualSubdir)
	entries, err := vfs().ReadDir(vdir)
	if err != nil {
		return nil // no sidecar
	}
	var out []ScrubFile
	var best *virtualSidecar
	bestGen := -1
	for _, ent := range entries {
		gen, ok := ParseGenSeq(ent.Name(), virtualGenPrefix, virtualGenSuffix)
		isLegacy := ent.Name() == virtualManifestName
		if !ok && !isLegacy {
			continue
		}
		path := filepath.Join(vdir, ent.Name())
		f := ScrubFile{Path: scrubRel(root, path), Kind: "sidecar-manifest"}
		blob, err := vfs().ReadFile(path)
		if err != nil {
			f.Err = err.Error()
			out = append(out, f)
			continue
		}
		f.Bytes = int64(len(blob))
		var vm virtualSidecar
		if uerr := json.Unmarshal(blob, &vm); uerr != nil {
			f.Err = fmt.Sprintf("parse: %v", uerr)
		} else if !sidecarCheckOK(&vm) {
			f.Err = "integrity check failed (torn or bit-flipped manifest)"
		} else {
			f.Records = 1
			if ok && gen > bestGen {
				vm.Gen = gen
				best, bestGen = &vm, gen
			} else if isLegacy && best == nil {
				best = &vm
			}
		}
		out = append(out, f)
	}
	if best != nil {
		// Sidecar column files use the parent store's record framing;
		// their manifest paths are store-root-relative.
		shell := &manifest{Format: best.Format, Codec: best.Codec}
		if parent != nil && best.Format == 0 {
			shell.Format = parent.Format
		}
		for _, mc := range best.Columns {
			out = append(out, scrubColumnFile(root, dir, shell, mc, "sidecar-column"))
		}
	}
	return out
}
