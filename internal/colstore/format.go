package colstore

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"path/filepath"
	"unicode/utf8"

	"powerdrill/internal/bloom"
	"powerdrill/internal/compress"
	"powerdrill/internal/dict"
	"powerdrill/internal/enc"
	"powerdrill/internal/value"
)

// The on-disk format: a manifest.json plus one binary file per column.
// The format exists for two reasons: cold-start experiments (Figure 5
// charges disk loads by these exact byte counts) and the pdrill CLI.
//
// Three manifest generations coexist (see docs/format.md for the full
// layout and compatibility matrix):
//
//   - v1 (no chunk layout): the column file is one stream, optionally
//     compressed as a whole; residency degrades to whole columns.
//   - v2 (chunk layout, whole-column codec): the manifest records each
//     chunk's byte range in the *uncompressed* stream. Uncompressed stores
//     serve exact per-chunk reads; compressed stores must still read and
//     decompress the whole file per cold load.
//   - v3 (per-record compression): with a codec, Save compresses the
//     dictionary record and every chunk record individually and records
//     each record's compressed byte range ([COff, COff+CLen)) in the file,
//     so a cold chunk is one exact ReadAt plus one single-record
//     decompress — cold I/O scales with restriction selectivity under
//     compression exactly like it does for raw stores.
//   - v4 (scan-pruning metadata): each sparse chunk additionally carries a
//     Bloom filter over its distinct global-ids, so equality restrictions
//     on unsorted columns can skip chunks the [min, max] span test cannot;
//     and sharded string dictionaries record one frame per sub-dictionary
//     (byte range, value count, routing bounds, Bloom filter), so lazy
//     reopens of uncompressed stores load only the dictionary shards a
//     query probes. Both fields are optional JSON additions: v4 readers
//     open v1–v3 stores unchanged, and older readers ignore the fields.
//   - v5 (record checksums): every on-disk record — head record, chunk
//     record, dictionary shard frame — carries a CRC32C over the exact
//     file bytes a cold load reads, verified on read (see checksum.go).
//     Again purely additive JSON fields; v1–v4 stores read unchanged.

// formatVersion is the manifest generation this package writes.
const formatVersion = 5

// formatPerRecordCodec is the first generation whose codec applies per
// record (dictionary and chunks compressed individually) rather than to
// the whole column file.
const formatPerRecordCodec = 3

// manifest is the JSON header of a persisted store.
type manifest struct {
	Name   string `json:"name"`
	Bounds []int  `json:"bounds"`
	Codec  string `json:"codec,omitempty"`
	// Format is the manifest generation; absent (0) on stores written
	// before per-record compression. Codec framing: with Format >= 3 a
	// codec applies per record, otherwise to the whole column file.
	Format  int           `json:"format,omitempty"`
	Columns []manifestCol `json:"columns"`
	Opts    manifestOpts  `json:"options"`
}

type manifestCol struct {
	Name    string `json:"name"`
	Kind    string `json:"kind"`
	Virtual bool   `json:"virtual,omitempty"`
	File    string `json:"file"`
	// DictLen is the byte length of the dictionary header at the start of
	// the (uncompressed) column stream; 0 on manifests written before
	// chunk-granular residency, which fall back to whole-column loads.
	DictLen int64 `json:"dict_len,omitempty"`
	// DictCLen is the compressed byte length of the head record (dictionary
	// plus chunk-count varint) at the start of the column file; only set by
	// per-record-compressed (v3) saves.
	DictCLen int64 `json:"dict_clen,omitempty"`
	// DictCRC is the CRC32C of the head record's file bytes (v5): the
	// compressed record on per-record-compressed stores, otherwise every
	// byte before the first chunk (the whole file for chunkless columns).
	DictCRC uint32 `json:"dict_crc,omitempty"`
	// Chunks is the per-chunk layout: value span for restriction pruning
	// and the byte range of each chunk record, so a single chunk can be
	// loaded without touching the rest of the column.
	Chunks []manifestChunk `json:"chunks,omitempty"`
	// DictShards sub-frames a sharded string dictionary (v4): one entry per
	// dict.Sharded shard, in id order. Byte offsets index the uncompressed
	// column stream, so lazy readers of uncompressed stores can load single
	// shards with exact reads; compressed stores fall back to the full
	// dictionary record.
	DictShards []manifestDictShard `json:"dict_shards,omitempty"`
}

// manifestDictShard is one sub-dictionary frame: the byte range
// [Off, Off+Len) of its values inside the uncompressed column stream, the
// value count, the first/last values for routing, and the shard's marshaled
// Bloom filter (so absent-value probes answer without any load).
type manifestDictShard struct {
	Off   int64  `json:"off"`
	Len   int64  `json:"len"`
	Count int    `json:"count"`
	First string `json:"first"`
	Last  string `json:"last"`
	Bloom []byte `json:"bloom,omitempty"`
	// CRC is the CRC32C of the shard's file bytes (v5, uncompressed
	// stores only — shard offsets index the file directly there).
	CRC uint32 `json:"crc,omitempty"`
}

// manifestChunk records one chunk's residency metadata: the global-id span
// of its chunk-dictionary (Min > Max marks an empty chunk) and the byte
// range [Off, Off+Len) of its record in the uncompressed column stream.
// On per-record-compressed (v3) stores, [COff, COff+CLen) is additionally
// the compressed record's byte range in the column file — the exact range
// a cold load reads.
type manifestChunk struct {
	Min  uint32 `json:"min"`
	Max  uint32 `json:"max"`
	Off  int64  `json:"off"`
	Len  int64  `json:"len"`
	COff int64  `json:"coff,omitempty"`
	CLen int64  `json:"clen,omitempty"`
	// Bloom is a marshaled filter over the chunk's distinct global-ids (v4,
	// sparse chunks only): a negative probe proves an equality restriction
	// matches nothing in the chunk, pruning it before any load — the check
	// the [Min, Max] span cannot make on unsorted columns.
	Bloom []byte `json:"bloom,omitempty"`
	// CRC is the CRC32C of the chunk record's file bytes (v5): the
	// compressed record [COff, COff+CLen) on per-record-compressed
	// stores, [Off, Off+Len) otherwise.
	CRC uint32 `json:"crc,omitempty"`
}

type manifestOpts struct {
	PartitionFields  []string `json:"partition_fields,omitempty"`
	MaxChunkRows     int      `json:"max_chunk_rows,omitempty"`
	OptimizeElements bool     `json:"optimize_elements,omitempty"`
	StringDict       string   `json:"string_dict,omitempty"`
	Reorder          bool     `json:"reorder,omitempty"`
}

// Save persists the store into dir (created if needed). codecName may be
// empty for uncompressed files or any registered codec. Compressed stores
// are written with per-record (v3) framing: the dictionary and every chunk
// are compressed individually so cold loads read exact byte ranges.
func Save(s *Store, dir, codecName string) error {
	return save(s, dir, codecName, formatVersion)
}

// SaveLegacyV2 persists the store with the pre-v3 whole-column codec
// framing: the chunk layout is recorded, but a codec (if any) compresses
// the column file as one stream, so a cold chunk load must read and
// decompress the whole file. Kept as the baseline for the cold-I/O
// benchmarks and the cross-version compatibility tests; new code should
// use Save.
func SaveLegacyV2(s *Store, dir, codecName string) error {
	return save(s, dir, codecName, 0)
}

func save(s *Store, dir, codecName string, format int) error {
	var codec compress.Codec
	if codecName != "" {
		var err error
		codec, err = compress.ByName(codecName)
		if err != nil {
			return err
		}
	}
	if err := vfs().MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("colstore: save: %w", err)
	}
	m := manifest{
		Name:   s.Name,
		Bounds: s.Bounds,
		Codec:  codecName,
		Format: format,
		Opts: manifestOpts{
			PartitionFields:  s.Opts.PartitionFields,
			MaxChunkRows:     s.Opts.MaxChunkRows,
			OptimizeElements: s.Opts.OptimizeElements,
			StringDict:       string(s.Opts.StringDict),
			Reorder:          s.Opts.Reorder,
		},
	}
	for i, name := range s.Columns() {
		// Pin one column at a time so saving a lazily opened store surfaces
		// load errors (Column would swallow them into nil) and stays within
		// about one column of the memory budget.
		ps := s.NewPinSet()
		col, err := ps.Column(name)
		if err != nil {
			ps.Release()
			return fmt.Errorf("colstore: save column %q: %w", name, err)
		}
		file := fmt.Sprintf("col_%04d.bin", i)
		raw, dictLen, chunkMetas := encodeColumn(col)
		var dictShards []manifestDictShard
		if format >= 4 {
			buildChunkBlooms(col, chunkMetas)
			dictShards = dictShardFrames(col)
		}
		ps.Release()
		mc := manifestCol{
			Name: name, Kind: col.Kind.String(), Virtual: col.Virtual, File: file,
			DictLen: dictLen, Chunks: chunkMetas, DictShards: dictShards,
		}
		if codec != nil {
			if format >= 3 {
				raw, mc = compressRecords(codec, raw, mc)
			} else {
				raw = codec.Compress(nil, raw)
			}
		}
		if format >= formatChecksums {
			addColChecksums(&mc, raw, codec != nil && mc.DictCLen > 0)
		}
		if err := vfs().WriteFile(filepath.Join(dir, file), raw, 0o644); err != nil {
			return fmt.Errorf("colstore: save column %q: %w", name, err)
		}
		m.Columns = append(m.Columns, mc)
	}
	blob, err := json.MarshalIndent(&m, "", "  ")
	if err != nil {
		return fmt.Errorf("colstore: save manifest: %w", err)
	}
	if err := vfs().WriteFile(filepath.Join(dir, "manifest.json"), blob, 0o644); err != nil {
		return fmt.Errorf("colstore: save manifest: %w", err)
	}
	return nil
}

// chunkBloomMaxCard bounds the cardinality a chunk bloom filter covers:
// beyond it the filter's manifest footprint (~1.2 bytes/distinct value)
// outweighs the expected pruning win.
const chunkBloomMaxCard = 1 << 16

// buildChunkBlooms attaches a global-id Bloom filter to every chunk whose
// chunk-dictionary is sparse within its [min, max] span. Dense chunks gain
// nothing — the span test is already exact there — so the filter is built
// only when at most half the span's ids are present (unsorted columns,
// where restriction spans prune worst).
func buildChunkBlooms(col *Column, metas []manifestChunk) {
	for i, ch := range col.Chunks {
		gids := ch.GlobalIDs
		if len(gids) == 0 || len(gids) > chunkBloomMaxCard {
			continue
		}
		span := int64(gids[len(gids)-1]) - int64(gids[0]) + 1
		if int64(len(gids))*2 > span {
			continue
		}
		f := bloom.NewWithEstimates(len(gids), 0.01)
		for _, g := range gids {
			f.AddUint64(uint64(g))
		}
		metas[i].Bloom = f.Marshal()
	}
}

// dictShardFrames exports a sharded string dictionary's sub-frames: one
// manifest row per dict.Sharded shard with its byte range inside the
// uncompressed dictionary payload (recomputed from the deterministic
// length-prefixed layout encodeColumn writes). Returns nil — no frames,
// full-dictionary loads — for non-sharded dictionaries and for values that
// would not survive a JSON round-trip (routing bounds are stored as JSON
// strings, which replace invalid UTF-8).
func dictShardFrames(col *Column) []manifestDictShard {
	sd, ok := col.Dict.(*dict.Sharded)
	if !ok || col.Kind != value.KindString {
		return nil
	}
	frames := sd.Frames()
	if len(frames) == 0 {
		return nil
	}
	off := int64(uvarintLen(uint64(col.Dict.Len())))
	out := make([]manifestDictShard, 0, len(frames))
	idx := uint32(0)
	for _, fr := range frames {
		if !utf8.ValidString(fr.First) || !utf8.ValidString(fr.Last) {
			return nil
		}
		start := off
		for k := 0; k < fr.Count; k++ {
			s := col.Dict.Value(idx).Str()
			off += int64(uvarintLen(uint64(len(s)))) + int64(len(s))
			idx++
		}
		out = append(out, manifestDictShard{
			Off: start, Len: off - start,
			Count: fr.Count, First: fr.First, Last: fr.Last,
			Bloom: fr.Filter.Marshal(),
		})
	}
	return out
}

// uvarintLen returns the encoded byte length of v as a uvarint.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// compressRecords rewrites one column's raw stream with per-record (v3)
// codec framing: a head record (dictionary plus chunk-count varint, the
// bytes before the first chunk) followed by one record per chunk, each
// compressed independently. The returned manifest entry carries the
// compressed byte range of every record.
func compressRecords(codec compress.Codec, raw []byte, mc manifestCol) ([]byte, manifestCol) {
	headLen := int64(len(raw))
	if len(mc.Chunks) > 0 {
		headLen = mc.Chunks[0].Off
	}
	out := codec.Compress(nil, raw[:headLen])
	mc.DictCLen = int64(len(out))
	for i := range mc.Chunks {
		ch := &mc.Chunks[i]
		rec := codec.Compress(nil, raw[ch.Off:ch.Off+ch.Len])
		ch.COff = int64(len(out))
		ch.CLen = int64(len(rec))
		out = append(out, rec...)
	}
	return out, mc
}

// perChunkCompressed reports whether a column file uses the v3 per-record
// codec framing (compressed records at exact byte ranges).
func (m *manifest) perChunkCompressed(mc manifestCol) bool {
	return m.Codec != "" && m.Format >= formatPerRecordCodec && mc.DictCLen > 0
}

// decompressColumnFile rebuilds a v3 column's uncompressed stream from its
// per-record-compressed file contents.
func decompressColumnFile(codec compress.Codec, mc manifestCol, data []byte) ([]byte, error) {
	if mc.DictCLen > int64(len(data)) {
		return nil, errTruncated
	}
	raw, err := codec.Decompress(nil, data[:mc.DictCLen])
	if err != nil {
		return nil, err
	}
	for i := range mc.Chunks {
		ch := mc.Chunks[i]
		if ch.COff+ch.CLen > int64(len(data)) || int64(len(raw)) != ch.Off {
			return nil, errTruncated
		}
		raw, err = codec.Decompress(raw, data[ch.COff:ch.COff+ch.CLen])
		if err != nil {
			return nil, err
		}
		if int64(len(raw)) != ch.Off+ch.Len {
			return nil, errTruncated
		}
	}
	return raw, nil
}

// encodeColumn renders a column's dictionary and chunks. Alongside the raw
// stream it reports the layout the manifest records for chunk-granular
// loads: the dictionary's byte length and each chunk's value span and byte
// range within the stream.
func encodeColumn(col *Column) (raw []byte, dictLen int64, chunkMetas []manifestChunk) {
	var out []byte
	// Dictionary: count then kind-specific payload.
	out = appendUvarint(out, uint64(col.Dict.Len()))
	switch col.Kind {
	case value.KindString:
		for i := 0; i < col.Dict.Len(); i++ {
			s := col.Dict.Value(uint32(i)).Str()
			out = appendUvarint(out, uint64(len(s)))
			out = append(out, s...)
		}
	case value.KindInt64:
		for i := 0; i < col.Dict.Len(); i++ {
			out = appendLE64(out, uint64(col.Dict.Value(uint32(i)).Int()))
		}
	case value.KindFloat64:
		for i := 0; i < col.Dict.Len(); i++ {
			out = appendLE64(out, floatBitsOf(col.Dict.Value(uint32(i)).Float()))
		}
	}
	dictLen = int64(len(out))
	// Chunks.
	out = appendUvarint(out, uint64(len(col.Chunks)))
	for _, ch := range col.Chunks {
		meta := manifestChunk{Off: int64(len(out))}
		if len(ch.GlobalIDs) > 0 {
			meta.Min = ch.GlobalIDs[0]
			meta.Max = ch.GlobalIDs[len(ch.GlobalIDs)-1]
		} else {
			meta.Min, meta.Max = 1, 0 // Min > Max: empty chunk
		}
		out = appendUvarint(out, uint64(len(ch.GlobalIDs)))
		prev := uint32(0)
		for i, g := range ch.GlobalIDs {
			delta := g
			if i > 0 {
				delta = g - prev // sorted ascending, so this never wraps
			}
			out = appendUvarint(out, uint64(delta))
			prev = g
		}
		out = append(out, byte(ch.Elems.Width()))
		out = appendUvarint(out, uint64(ch.Elems.Len()))
		payload := ch.Elems.AppendBytes(nil)
		out = appendUvarint(out, uint64(len(payload)))
		out = append(out, payload...)
		meta.Len = int64(len(out)) - meta.Off
		chunkMetas = append(chunkMetas, meta)
	}
	return out, dictLen, chunkMetas
}

// DiskStats reports how many bytes Open read, the quantity Figure 5's
// latency model charges.
type DiskStats struct {
	BytesRead int64
	Files     int
}

// readManifest loads and validates a persisted store's manifest.
func readManifest(dir string) (*manifest, int64, error) {
	blob, err := vfs().ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		return nil, 0, fmt.Errorf("colstore: open: %w", err)
	}
	var m manifest
	if err := json.Unmarshal(blob, &m); err != nil {
		return nil, 0, fmt.Errorf("colstore: open manifest: %w", err)
	}
	if len(m.Bounds) < 2 {
		return nil, 0, errors.New("colstore: manifest has no chunk bounds")
	}
	return &m, int64(len(blob)), nil
}

// storeShell builds an empty Store carrying the manifest's layout and
// options but no column data.
func storeShell(m *manifest) *Store {
	return &Store{
		Name:   m.Name,
		Bounds: m.Bounds,
		Opts: Options{
			PartitionFields:  m.Opts.PartitionFields,
			MaxChunkRows:     m.Opts.MaxChunkRows,
			OptimizeElements: m.Opts.OptimizeElements,
			StringDict:       StringDictKind(m.Opts.StringDict),
			Reorder:          m.Opts.Reorder,
		}.withDefaults(),
		columns: make(map[string]*Column),
	}
}

// Open loads a persisted store fully into memory. The string-dictionary
// implementation is taken from the manifest options. For a lazily loaded,
// budget-managed store see OpenLazy.
func Open(dir string) (*Store, *DiskStats, error) {
	stats := &DiskStats{}
	m, manifestBytes, err := readManifest(dir)
	if err != nil {
		return nil, nil, err
	}
	stats.BytesRead += manifestBytes
	stats.Files++
	var codec compress.Codec
	if m.Codec != "" {
		if codec, err = compress.ByName(m.Codec); err != nil {
			return nil, nil, err
		}
	}
	s := storeShell(m)
	for _, mc := range m.Columns {
		raw, err := vfs().ReadFile(filepath.Join(dir, mc.File))
		if err != nil {
			return nil, nil, fmt.Errorf("colstore: open column %q: %w", mc.Name, err)
		}
		stats.BytesRead += int64(len(raw))
		stats.Files++
		if _, err := verifyColumnFile(m, mc, raw, filepath.Join(dir, mc.File)); err != nil {
			return nil, nil, fmt.Errorf("colstore: open column %q: %w", mc.Name, err)
		}
		if codec != nil {
			if m.perChunkCompressed(mc) {
				raw, err = decompressColumnFile(codec, mc, raw)
			} else {
				raw, err = codec.Decompress(nil, raw)
			}
			if err != nil {
				return nil, nil, fmt.Errorf("colstore: decompress column %q: %w", mc.Name, err)
			}
		}
		kind, err := value.ParseKind(mc.Kind)
		if err != nil {
			return nil, nil, fmt.Errorf("colstore: column %q: %w", mc.Name, err)
		}
		col, err := decodeColumn(mc.Name, kind, mc.Virtual, raw, s.Opts.StringDict)
		if err != nil {
			return nil, nil, fmt.Errorf("colstore: column %q: %w", mc.Name, err)
		}
		if err := s.AddColumn(col); err != nil {
			return nil, nil, err
		}
	}
	return s, stats, nil
}

// decodeColumn parses the output of encodeColumn.
func decodeColumn(name string, kind value.Kind, virtual bool, raw []byte, sd StringDictKind) (*Column, error) {
	r := &byteReader{buf: raw}
	d, err := decodeDict(r, kind, sd)
	if err != nil {
		return nil, err
	}
	nChunks, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	col := &Column{Name: name, Kind: kind, Dict: d, Virtual: virtual}
	for c := uint64(0); c < nChunks; c++ {
		ch, err := decodeChunk(r)
		if err != nil {
			return nil, err
		}
		col.Chunks = append(col.Chunks, ch)
	}
	return col, nil
}

// decodeDict parses the dictionary header encodeColumn writes.
func decodeDict(r *byteReader, kind value.Kind, sd StringDictKind) (dict.Dict, error) {
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	switch kind {
	case value.KindString:
		vals := make([]string, n)
		for i := range vals {
			l, err := r.uvarint()
			if err != nil {
				return nil, err
			}
			b, err := r.take(int(l))
			if err != nil {
				return nil, err
			}
			vals[i] = string(b)
		}
		switch sd {
		case StringDictTrie:
			return dict.NewTrie(vals), nil
		case StringDictSharded:
			return dict.NewSharded(vals, dict.ShardedOptions{Retain: true}), nil
		default:
			return dict.NewStringArray(vals), nil
		}
	case value.KindInt64:
		vals := make([]int64, n)
		for i := range vals {
			v, err := r.le64()
			if err != nil {
				return nil, err
			}
			vals[i] = int64(v)
		}
		return dict.NewInt64s(vals), nil
	case value.KindFloat64:
		vals := make([]float64, n)
		for i := range vals {
			v, err := r.le64()
			if err != nil {
				return nil, err
			}
			vals[i] = floatFromBits(v)
		}
		return dict.NewFloat64s(vals), nil
	}
	return nil, fmt.Errorf("invalid kind %v", kind)
}

// decodeChunk parses one chunk record written by encodeColumn.
func decodeChunk(r *byteReader) (*Chunk, error) {
	card, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	gids := make([]uint32, card)
	prev := uint64(0)
	for i := range gids {
		delta, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		if i == 0 {
			prev = delta
		} else {
			prev += delta
		}
		gids[i] = uint32(prev)
	}
	widthByte, err := r.take(1)
	if err != nil {
		return nil, err
	}
	rows, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	plen, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	payload, err := r.take(int(plen))
	if err != nil {
		return nil, err
	}
	seq, err := enc.Decode(enc.Width(widthByte[0]), int(rows), payload)
	if err != nil {
		return nil, err
	}
	return &Chunk{GlobalIDs: gids, Elems: seq}, nil
}

// skipChunk advances r past one chunk record without building its slices —
// the "length-prefixed so a reader could skip them" promise of the format.
// The chunk-dictionary deltas are varints without a byte-length prefix, so
// skipping still walks them, but allocates nothing.
func skipChunk(r *byteReader) error {
	card, err := r.uvarint()
	if err != nil {
		return err
	}
	for i := uint64(0); i < card; i++ {
		if _, err := r.uvarint(); err != nil {
			return err
		}
	}
	if _, err := r.take(1); err != nil { // width byte
		return err
	}
	if _, err := r.uvarint(); err != nil { // rows
		return err
	}
	plen, err := r.uvarint()
	if err != nil {
		return err
	}
	_, err = r.take(int(plen))
	return err
}

// byteReader is a bounds-checked cursor over a byte slice.
type byteReader struct {
	buf []byte
	off int
}

var errTruncated = errors.New("colstore: truncated column file")

func (r *byteReader) uvarint() (uint64, error) {
	var v uint64
	var shift uint
	for i := 0; ; i++ {
		if r.off >= len(r.buf) || i > 9 {
			return 0, errTruncated
		}
		b := r.buf[r.off]
		r.off++
		if b < 0x80 {
			return v | uint64(b)<<shift, nil
		}
		v |= uint64(b&0x7f) << shift
		shift += 7
	}
}

func (r *byteReader) take(n int) ([]byte, error) {
	if n < 0 || r.off+n > len(r.buf) {
		return nil, errTruncated
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b, nil
}

func (r *byteReader) le64() (uint64, error) {
	b, err := r.take(8)
	if err != nil {
		return 0, err
	}
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56, nil
}

// floatFromBits is the inverse of floatBitsOf.
func floatFromBits(v uint64) float64 { return math.Float64frombits(v) }
