package colstore

import (
	"fmt"

	"powerdrill/internal/cache"
	"powerdrill/internal/compress"
	"powerdrill/internal/enc"
)

// TwoLayer implements the hybrid of the end of Section 3: "two 'layers' of
// data-structures held in-memory: uncompressed and compressed. Moving items
// between these layers or finally evicting them entirely can be done, e.g.,
// with the well-known LRU cache eviction heuristic."
//
// Items are a column's per-chunk element payloads. An access always
// returns a usable (uncompressed) sequence; depending on where the item
// currently lives it is free (uncompressed layer), costs a decompression
// (compressed layer, "promotion"), or costs a simulated disk read
// (evicted). Byte budgets bound each layer; overflowing the uncompressed
// layer demotes items to the compressed one, overflowing that evicts them
// entirely. The authoritative compressed bytes stand in for the on-disk
// copy, so eviction never loses data — it only makes the next access
// expensive, exactly the §3 trade.
type TwoLayer struct {
	codec compress.Codec

	// disk is the authoritative compressed image (the "on-disk" copy).
	disk map[layerKey]diskItem

	// hot caches decoded sequences; warm caches compressed bytes.
	hot  cache.Cache
	warm cache.Cache

	stats LayerStats
}

type layerKey struct {
	column string
	chunk  int
}

func (k layerKey) String() string { return fmt.Sprintf("%s/%d", k.column, k.chunk) }

type diskItem struct {
	width enc.Width
	rows  int
	comp  []byte
}

// LayerStats counts layer traffic.
type LayerStats struct {
	// HotHits served straight from the uncompressed layer.
	HotHits int64
	// Promotions decompressed an item from the compressed layer.
	Promotions int64
	// DiskLoads re-read an evicted item; DiskBytes are its compressed
	// bytes (what a real system would stream).
	DiskLoads int64
	DiskBytes int64
}

// NewTwoLayer builds the layer manager over every column of the store.
// hotBytes budgets the uncompressed layer, warmBytes the compressed one;
// policy is "lru", "2q" or "arc" (2Q by default, per Section 5).
func NewTwoLayer(s *Store, codecName string, hotBytes, warmBytes int64, policy string) (*TwoLayer, error) {
	codec, err := compress.ByName(codecName)
	if err != nil {
		return nil, err
	}
	mk := func(budget int64) cache.Cache {
		switch policy {
		case "lru":
			return cache.NewLRU(budget)
		case "arc":
			return cache.NewARC(budget)
		default:
			return cache.NewTwoQ(budget)
		}
	}
	tl := &TwoLayer{
		codec: codec,
		disk:  make(map[layerKey]diskItem),
		hot:   mk(hotBytes),
		warm:  mk(warmBytes),
	}
	for _, name := range s.Columns() {
		col, err := s.ColumnErr(name)
		if err != nil {
			return nil, err
		}
		for ci, ch := range col.Chunks {
			raw := ch.Elems.AppendBytes(nil)
			tl.disk[layerKey{name, ci}] = diskItem{
				width: ch.Elems.Width(),
				rows:  ch.Elems.Len(),
				comp:  codec.Compress(nil, raw),
			}
		}
	}
	return tl, nil
}

// Access returns the uncompressed element sequence for (column, chunk),
// moving it through the layers as needed.
func (tl *TwoLayer) Access(column string, chunk int) (enc.Sequence, error) {
	k := layerKey{column, chunk}
	if v, ok := tl.hot.Get(k.String()); ok {
		tl.stats.HotHits++
		return v.(enc.Sequence), nil
	}
	d, ok := tl.disk[k]
	if !ok {
		return nil, fmt.Errorf("colstore: no such layer item %s", k)
	}
	comp, warm := tl.warm.Get(k.String())
	var compBytes []byte
	if warm {
		tl.stats.Promotions++
		compBytes = comp.([]byte)
	} else {
		// Evicted: stream the compressed bytes back "from disk".
		tl.stats.DiskLoads++
		tl.stats.DiskBytes += int64(len(d.comp))
		compBytes = d.comp
		tl.warm.Put(k.String(), compBytes, int64(len(compBytes)))
	}
	raw, err := tl.codec.Decompress(nil, compBytes)
	if err != nil {
		return nil, fmt.Errorf("colstore: promoting %s: %w", k, err)
	}
	seq, err := enc.Decode(d.width, d.rows, raw)
	if err != nil {
		return nil, fmt.Errorf("colstore: promoting %s: %w", k, err)
	}
	tl.hot.Put(k.String(), seq, seq.MemoryBytes())
	return seq, nil
}

// Stats returns cumulative layer counters.
func (tl *TwoLayer) Stats() LayerStats { return tl.stats }

// ResidentBytes reports the current in-memory footprint of both layers —
// the number the hybrid exists to bound.
func (tl *TwoLayer) ResidentBytes() (hot, warm int64) {
	return tl.hot.SizeBytes(), tl.warm.SizeBytes()
}

// DiskBytes reports the total authoritative compressed size.
func (tl *TwoLayer) DiskBytes() int64 {
	var total int64
	for _, d := range tl.disk {
		total += int64(len(d.comp))
	}
	return total
}
