package colstore

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"powerdrill/internal/memmgr"
	"powerdrill/internal/value"
)

// materializeSuffix builds the per-row values of a toy expression over the
// country column — a stand-in for what the engine's expression evaluator
// produces — and persists them through AddVirtualColumnPinned.
func materializeSuffix(t *testing.T, s *Store, name, suffix string) *Column {
	t.Helper()
	src, err := s.ColumnErr("country")
	if err != nil {
		t.Fatal(err)
	}
	vals := make([]value.Value, 0, s.NumRows())
	for ci := 0; ci < s.NumChunks(); ci++ {
		for r := 0; r < s.ChunkRows(ci); r++ {
			vals = append(vals, value.String(src.ValueAt(ci, r).Str()+suffix))
		}
	}
	ps := s.NewPinSet()
	defer ps.Release()
	col, err := s.AddVirtualColumnPinned(ps, name, value.KindString, vals)
	if err != nil {
		t.Fatal(err)
	}
	return col
}

func materializeUpper(t *testing.T, s *Store, name string) *Column {
	t.Helper()
	return materializeSuffix(t, s, name, "!")
}

// sidecarManifest reads the virtual sidecar's newest manifest of dir.
func sidecarManifest(t *testing.T, dir string) *virtualSidecar {
	t.Helper()
	vm, err := readVirtualSidecar(dir)
	if err != nil {
		t.Fatal(err)
	}
	if vm == nil {
		t.Fatalf("no virtual sidecar manifest in %s", dir)
	}
	return vm
}

// TestVirtualSidecarPersistReopen pins the tentpole round trip: a virtual
// column materialized on a lazy store is persisted into the virtual/
// sidecar, survives a fresh OpenLazy, and serves bit-for-bit identical
// values from disk — including its per-chunk spans for restriction
// pruning.
func TestVirtualSidecarPersistReopen(t *testing.T) {
	for _, codec := range []string{"", "zippy"} {
		name := codec
		if name == "" {
			name = "raw"
		}
		t.Run(name, func(t *testing.T) {
			_, dir := buildSavedStore(t, 3000, codec)
			lazy, _, err := OpenLazy(dir, memmgr.New(0, "2q"))
			if err != nil {
				t.Fatal(err)
			}
			built := materializeUpper(t, lazy, "upper(country)")
			if lazy.residentColumn("upper(country)") != nil {
				t.Fatal("persisted virtual column must not live in the registry")
			}
			meta, ok := lazy.ColumnMeta("upper(country)")
			if !ok || !meta.Virtual {
				t.Fatalf("virtual column metadata missing or not virtual: %+v ok=%v", meta, ok)
			}
			vm := sidecarManifest(t, dir)
			if len(vm.Columns) != 1 || vm.Columns[0].Name != "upper(country)" {
				t.Fatalf("sidecar manifest = %+v", vm.Columns)
			}

			// A fresh open must see the column without re-materializing.
			reopened, _, err := OpenLazy(dir, memmgr.New(0, "2q"))
			if err != nil {
				t.Fatal(err)
			}
			if !reopened.HasColumn("upper(country)") {
				t.Fatal("reopened store lost the persisted virtual column")
			}
			if _, ok := reopened.ChunkSpans("upper(country)"); !ok {
				t.Fatal("reopened store has no spans for the virtual column")
			}
			got, err := reopened.ColumnErr("upper(country)")
			if err != nil {
				t.Fatal(err)
			}
			if got.Kind != built.Kind || !got.Virtual {
				t.Fatalf("reloaded column kind/virtual mismatch: %v %v", got.Kind, got.Virtual)
			}
			for ci := range built.Chunks {
				for r := 0; r < built.Chunks[ci].Rows(); r++ {
					if !built.ValueAt(ci, r).Equal(got.ValueAt(ci, r)) {
						t.Fatalf("chunk %d row %d: %v != %v", ci, r, built.ValueAt(ci, r), got.ValueAt(ci, r))
					}
				}
			}
		})
	}
}

// TestVirtualSidecarExactColdReads checks that a persisted virtual column
// on a per-record-compressed store serves single-chunk cold loads by exact
// byte range, like any physical column: one pinned chunk is charged
// exactly its compressed record plus the dictionary record.
func TestVirtualSidecarExactColdReads(t *testing.T) {
	_, dir := buildSavedStore(t, 3000, "zippy")
	warm, _, err := OpenLazy(dir, memmgr.New(0, "2q"))
	if err != nil {
		t.Fatal(err)
	}
	materializeUpper(t, warm, "upper(country)")

	vm := sidecarManifest(t, dir)
	mc := vm.Columns[0]
	if mc.DictCLen == 0 || mc.Chunks[0].CLen == 0 {
		t.Fatalf("sidecar not per-record compressed: %+v", mc)
	}
	cold, _, err := OpenLazy(dir, memmgr.New(0, "2q"))
	if err != nil {
		t.Fatal(err)
	}
	ps := cold.NewPinSet()
	defer ps.Release()
	active := make([]bool, cold.NumChunks())
	active[0] = true
	if _, err := ps.ColumnChunks("upper(country)", active); err != nil {
		t.Fatal(err)
	}
	want := mc.DictCLen + mc.Chunks[0].CLen
	if ps.DiskBytesRead != want {
		t.Fatalf("one virtual chunk + dict charged %d bytes, want exact records %d", ps.DiskBytesRead, want)
	}
	if ps.ColdChunkLoads != 1 || ps.ColdDictLoads != 1 {
		t.Fatalf("cold loads = %d chunks / %d dicts, want 1/1", ps.ColdChunkLoads, ps.ColdDictLoads)
	}
}

// TestVirtualSidecarLegacyFraming pins sidecar persistence on a legacy
// v2 whole-column-codec parent: the sidecar mirrors the parent's framing
// and the column reloads identically.
func TestVirtualSidecarLegacyFraming(t *testing.T) {
	_, dir := buildLegacyStore(t, 3000, "zippy")
	lazy, _, err := OpenLazy(dir, memmgr.New(0, "2q"))
	if err != nil {
		t.Fatal(err)
	}
	built := materializeUpper(t, lazy, "upper(country)")
	vm := sidecarManifest(t, dir)
	if vm.Format >= formatVersion || vm.Columns[0].DictCLen != 0 {
		t.Fatalf("legacy parent must produce legacy-framed sidecar, got format %d %+v", vm.Format, vm.Columns[0])
	}
	reopened, _, err := OpenLazy(dir, memmgr.New(0, "2q"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := reopened.ColumnErr("upper(country)")
	if err != nil {
		t.Fatal(err)
	}
	for ci := range built.Chunks {
		for r := 0; r < built.Chunks[ci].Rows(); r++ {
			if !built.ValueAt(ci, r).Equal(got.ValueAt(ci, r)) {
				t.Fatalf("chunk %d row %d mismatch", ci, r)
			}
		}
	}
}

// TestVirtualPersistFallback: when the sidecar cannot be created (here a
// plain file squats on the virtual/ path), materialization falls back to
// in-registry residency — unevictable, but correct and visible in
// UnevictableVirtualBytes.
func TestVirtualPersistFallback(t *testing.T) {
	_, dir := buildSavedStore(t, 2000, "zippy")
	if err := os.WriteFile(filepath.Join(dir, virtualSubdir), []byte("squat"), 0o644); err != nil {
		t.Fatal(err)
	}
	lazy, _, err := OpenLazy(dir, memmgr.New(0, "2q"))
	if err != nil {
		t.Fatal(err)
	}
	col := materializeUpper(t, lazy, "upper(country)")
	if lazy.residentColumn("upper(country)") == nil {
		t.Fatal("fallback materialization should live in the registry")
	}
	if got := lazy.UnevictableVirtualBytes(); got != col.Memory().Total() {
		t.Fatalf("UnevictableVirtualBytes = %d, want %d", got, col.Memory().Total())
	}
	if ms := lazy.MemManager().Stats(); ms.VirtualBytes != 0 {
		t.Fatalf("manager should hold no virtual bytes on fallback, got %d", ms.VirtualBytes)
	}
}

// TestVirtualPersistDisabled: DisableVirtualPersist forces the registry
// path even on a writable chunk-granular store.
func TestVirtualPersistDisabled(t *testing.T) {
	_, dir := buildSavedStore(t, 2000, "zippy")
	lazy, _, err := OpenLazy(dir, memmgr.New(0, "2q"))
	if err != nil {
		t.Fatal(err)
	}
	lazy.DisableVirtualPersist()
	materializeUpper(t, lazy, "upper(country)")
	if lazy.residentColumn("upper(country)") == nil {
		t.Fatal("disabled persistence should fall back to the registry")
	}
	if _, err := os.Stat(filepath.Join(dir, virtualSubdir)); !os.IsNotExist(err) {
		t.Fatalf("no sidecar should be written, stat err = %v", err)
	}
	if lazy.UnevictableVirtualBytes() == 0 {
		t.Fatal("registry virtual bytes should be visible")
	}
}

// TestVirtualEvictReload forces the persisted virtual column out of a tiny
// budget and checks the reloaded bytes decode to the same values — the
// "evictable and reloadable" half of the acceptance criterion at the
// colstore level.
func TestVirtualEvictReload(t *testing.T) {
	_, dir := buildSavedStore(t, 3000, "zippy")
	mgr := memmgr.New(1, "2q") // 1 byte: everything evicts the moment it unpins
	lazy, _, err := OpenLazy(dir, mgr)
	if err != nil {
		t.Fatal(err)
	}
	built := materializeUpper(t, lazy, "upper(country)")
	st := mgr.Stats()
	if st.ResidentBytes > 1 {
		t.Fatalf("resident %d bytes after release under a 1-byte budget", st.ResidentBytes)
	}
	if st.VirtualBytes != 0 {
		t.Fatalf("virtual gauge %d after everything evicted", st.VirtualBytes)
	}
	got, err := lazy.ColumnErr("upper(country)")
	if err != nil {
		t.Fatal(err)
	}
	for ci := range built.Chunks {
		for r := 0; r < built.Chunks[ci].Rows(); r++ {
			if !built.ValueAt(ci, r).Equal(got.ValueAt(ci, r)) {
				t.Fatalf("chunk %d row %d differs after evict+reload", ci, r)
			}
		}
	}
}

// TestVirtualGaugeOnReload: a virtual column reloaded from the sidecar by
// a fresh store (not the one that materialized it) is still tagged in the
// manager's VirtualBytes gauge — virtual-ness comes from the sidecar
// metadata, not from the materializing session.
func TestVirtualGaugeOnReload(t *testing.T) {
	_, dir := buildSavedStore(t, 3000, "zippy")
	lazy, _, err := OpenLazy(dir, memmgr.New(0, "2q"))
	if err != nil {
		t.Fatal(err)
	}
	materializeUpper(t, lazy, "upper(country)")
	reopened, _, err := OpenLazy(dir, memmgr.New(0, "2q"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reopened.ColumnErr("upper(country)"); err != nil {
		t.Fatal(err)
	}
	if st := reopened.MemManager().Stats(); st.VirtualBytes == 0 {
		t.Fatal("reloaded virtual column not tagged in VirtualBytes")
	}
}

// TestVirtualSidecarCrossStoreNoOverwrite: two Stores on one directory
// (replicas) materialize different expressions. Column files are claimed
// O_EXCL, so the second persist must not overwrite bytes the first
// store's Reader already recorded ranges for — after eviction, the first
// store reloads its own column intact even though the sidecar manifest is
// last-writer-wins.
func TestVirtualSidecarCrossStoreNoOverwrite(t *testing.T) {
	_, dir := buildSavedStore(t, 3000, "zippy")
	// Separate managers: 1-byte budgets so everything evicts on release
	// and reloads go back to the files.
	a, _, err := OpenLazy(dir, memmgr.New(1, "2q"))
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := OpenLazy(dir, memmgr.New(1, "2q"))
	if err != nil {
		t.Fatal(err)
	}
	builtA := materializeSuffix(t, a, "upper(country)", "A")
	materializeSuffix(t, b, "lower(country)", "B") // b never saw a's column
	// Both persists claimed distinct files despite both starting at seq 0.
	if _, err := os.Stat(filepath.Join(dir, virtualSubdir, "vcol_0000.bin")); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, virtualSubdir, "vcol_0001.bin")); err != nil {
		t.Fatalf("second store should have claimed a fresh file: %v", err)
	}
	// a's column reloads bit-for-bit from its unclobbered file.
	got, err := a.ColumnErr("upper(country)")
	if err != nil {
		t.Fatal(err)
	}
	for ci := range builtA.Chunks {
		for r := 0; r < builtA.Chunks[ci].Rows(); r++ {
			if !builtA.ValueAt(ci, r).Equal(got.ValueAt(ci, r)) {
				t.Fatalf("chunk %d row %d clobbered by the racing persist", ci, r)
			}
		}
	}
	// A reopen sees the last-written manifest (b's) — lose, never corrupt.
	reopened, _, err := OpenLazy(dir, memmgr.New(0, "2q"))
	if err != nil {
		t.Fatal(err)
	}
	if !reopened.HasColumn("lower(country)") {
		t.Fatal("reopen lost the last writer's column too")
	}
}

// TestVirtualSidecarSurvivesInPlaceSave: Save-ing a store with persisted
// virtual columns back into its own directory promotes them into the main
// manifest but leaves the (now stale) sidecar behind; the next OpenLazy
// must skip the duplicate sidecar entries instead of failing the open.
func TestVirtualSidecarSurvivesInPlaceSave(t *testing.T) {
	_, dir := buildSavedStore(t, 2000, "zippy")
	lazy, _, err := OpenLazy(dir, memmgr.New(0, "2q"))
	if err != nil {
		t.Fatal(err)
	}
	built := materializeUpper(t, lazy, "upper(country)")
	if err := Save(lazy, dir, "zippy"); err != nil {
		t.Fatal(err)
	}
	reopened, _, err := OpenLazy(dir, memmgr.New(0, "2q"))
	if err != nil {
		t.Fatalf("reopen after in-place save: %v", err)
	}
	meta, ok := reopened.ColumnMeta("upper(country)")
	if !ok || !meta.Virtual {
		t.Fatalf("promoted virtual column missing: %+v ok=%v", meta, ok)
	}
	got, err := reopened.ColumnErr("upper(country)")
	if err != nil {
		t.Fatal(err)
	}
	if !built.ValueAt(0, 0).Equal(got.ValueAt(0, 0)) {
		t.Fatal("promoted column serves different values")
	}
}

// TestVirtualMaterializeRaceAdopts: a second AddVirtualColumnPinned of the
// same name (two engines racing on one store) adopts the existing column
// instead of failing the losing query.
func TestVirtualMaterializeRaceAdopts(t *testing.T) {
	_, dir := buildSavedStore(t, 2000, "zippy")
	lazy, _, err := OpenLazy(dir, memmgr.New(0, "2q"))
	if err != nil {
		t.Fatal(err)
	}
	built := materializeUpper(t, lazy, "upper(country)")
	vals := make([]value.Value, 0, lazy.NumRows())
	for ci := 0; ci < lazy.NumChunks(); ci++ {
		for r := 0; r < lazy.ChunkRows(ci); r++ {
			vals = append(vals, built.ValueAt(ci, r))
		}
	}
	ps := lazy.NewPinSet()
	defer ps.Release()
	got, err := lazy.AddVirtualColumnPinned(ps, "upper(country)", value.KindString, vals)
	if err != nil {
		t.Fatalf("losing materializer should adopt, got %v", err)
	}
	if !got.ValueAt(0, 0).Equal(built.ValueAt(0, 0)) {
		t.Fatal("adopted column serves different values")
	}
}

// TestVirtualReuseAfterClose: Store.Close drops file handles and memos;
// the persisted virtual column must still load afterwards.
func TestVirtualReuseAfterClose(t *testing.T) {
	_, dir := buildSavedStore(t, 2000, "zippy")
	mgr := memmgr.New(1, "2q")
	lazy, _, err := OpenLazy(dir, mgr)
	if err != nil {
		t.Fatal(err)
	}
	built := materializeUpper(t, lazy, "upper(country)")
	if err := lazy.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := lazy.ColumnErr("upper(country)")
	if err != nil {
		t.Fatal(err)
	}
	if !built.ValueAt(0, 0).Equal(got.ValueAt(0, 0)) {
		t.Fatal("value mismatch after Close")
	}
}

// TestVirtualSidecarLoseNothingAcrossHandles is the cross-writer story:
// two store handles on the same directory (two processes in real life)
// each materialize a different virtual column. Under the old
// single-manifest sidecar the second persist overwrote the first
// (last-writer-wins); the generation chain makes each persist read the
// newest generation, merge, and claim the next — both columns survive.
func TestVirtualSidecarLoseNothingAcrossHandles(t *testing.T) {
	_, dir := buildSavedStore(t, 3000, "zippy")
	s1, _, err := OpenLazy(dir, memmgr.New(0, "2q"))
	if err != nil {
		t.Fatal(err)
	}
	s2, _, err := OpenLazy(dir, memmgr.New(0, "2q"))
	if err != nil {
		t.Fatal(err)
	}
	// Neither handle knows about the other's materialization.
	materializeSuffix(t, s1, "va", "_a")
	materializeSuffix(t, s2, "vb", "_b")

	vm := sidecarManifest(t, dir)
	if len(vm.Columns) != 2 {
		t.Fatalf("newest sidecar generation lists %d columns, want both: %+v", len(vm.Columns), vm.Columns)
	}
	if vm.Gen < 2 {
		t.Fatalf("generation chain did not advance: gen %d", vm.Gen)
	}

	// A third handle sees both, bit-for-bit.
	s3, _, err := OpenLazy(dir, memmgr.New(0, "2q"))
	if err != nil {
		t.Fatal(err)
	}
	for name, suffix := range map[string]string{"va": "_a", "vb": "_b"} {
		col, err := s3.ColumnErr(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		src, err := s3.ColumnErr("country")
		if err != nil {
			t.Fatal(err)
		}
		for ci := 0; ci < s3.NumChunks(); ci++ {
			for r := 0; r < s3.ChunkRows(ci); r++ {
				want := src.ValueAt(ci, r).Str() + suffix
				if got := col.ValueAt(ci, r).Str(); got != want {
					t.Fatalf("%s chunk %d row %d = %q, want %q", name, ci, r, got, want)
				}
			}
		}
	}
}

// TestGCVirtualSidecar: superseded generation manifests and unreferenced
// column files are collected; the live generation's files survive.
func TestGCVirtualSidecar(t *testing.T) {
	_, dir := buildSavedStore(t, 3000, "")
	s, _, err := OpenLazy(dir, memmgr.New(0, "2q"))
	if err != nil {
		t.Fatal(err)
	}
	materializeSuffix(t, s, "va", "_a")
	materializeSuffix(t, s, "vb", "_b") // advances the chain: gen 1 is now dead
	// Plant an orphan column file, as a crashed materialization would.
	if err := os.WriteFile(filepath.Join(dir, virtualSubdir, "vcol_9999.bin"), []byte("orphan"), 0o644); err != nil {
		t.Fatal(err)
	}
	files, bytes := s.GCVirtualSidecar()
	if files < 2 || bytes <= 0 {
		t.Fatalf("GC removed %d files / %d bytes, want ≥2 files (dead gen + orphan)", files, bytes)
	}
	// Live state intact.
	vm := sidecarManifest(t, dir)
	if len(vm.Columns) != 2 {
		t.Fatalf("GC damaged the live generation: %+v", vm.Columns)
	}
	reopened, _, err := OpenLazy(dir, memmgr.New(0, "2q"))
	if err != nil {
		t.Fatal(err)
	}
	if !reopened.HasColumn("va") || !reopened.HasColumn("vb") {
		t.Fatal("GC lost a live virtual column")
	}
	// Idempotent: nothing left to collect.
	if files, _ := s.GCVirtualSidecar(); files != 0 {
		t.Fatalf("second GC removed %d files, want 0", files)
	}
}

// TestVirtualSidecarTornGeneration: a crashed sidecar commit's garbage —
// unparseable bytes, or a parseable manifest whose integrity check fails
// — at a higher generation number must not mask the good generation: the
// store opens and the virtual column still loads bit-for-bit.
func TestVirtualSidecarTornGeneration(t *testing.T) {
	for _, torn := range []struct {
		name string
		blob func(good []byte) []byte
	}{
		{"garbage", func([]byte) []byte { return []byte("{not a manifest") }},
		{"bad-check", func(good []byte) []byte {
			// Parseable JSON, wrong Check: flip a byte inside the column
			// file name.
			b := append([]byte(nil), good...)
			at := strings.Index(string(b), "vcol_")
			if at < 0 {
				t.Fatal("no virtual column file in sidecar manifest")
			}
			b[at+5] ^= 0x01
			return b
		}},
	} {
		t.Run(torn.name, func(t *testing.T) {
			_, dir := buildSavedStore(t, 1500, "zippy")
			lazy, _, err := OpenLazy(dir, memmgr.New(0, "2q"))
			if err != nil {
				t.Fatal(err)
			}
			built := materializeUpper(t, lazy, "upper(country)")
			vm := sidecarManifest(t, dir)
			vdir := filepath.Join(dir, virtualSubdir)
			goodBlob, err := os.ReadFile(filepath.Join(vdir, virtualGenName(vm.Gen)))
			if err != nil {
				t.Fatal(err)
			}
			tornPath := filepath.Join(vdir, virtualGenName(vm.Gen+1))
			if err := os.WriteFile(tornPath, torn.blob(goodBlob), 0o644); err != nil {
				t.Fatal(err)
			}
			if err := lazy.Close(); err != nil {
				t.Fatal(err)
			}

			reopened, _, err := OpenLazy(dir, memmgr.New(0, "2q"))
			if err != nil {
				t.Fatalf("torn sidecar generation breaks open: %v", err)
			}
			defer reopened.Close()
			got, err := reopened.ColumnErr("upper(country)")
			if err != nil {
				t.Fatal(err)
			}
			for ci := range built.Chunks {
				for r := 0; r < built.Chunks[ci].Rows(); r++ {
					if !built.ValueAt(ci, r).Equal(got.ValueAt(ci, r)) {
						t.Fatalf("chunk %d row %d: %v != %v", ci, r, built.ValueAt(ci, r), got.ValueAt(ci, r))
					}
				}
			}
			// The scrub names the torn file.
			var verdicts []ScrubFile
			for _, f := range ScrubDir(dir, dir) {
				if f.Kind == "sidecar-manifest" && !f.OK() {
					verdicts = append(verdicts, f)
				}
			}
			if len(verdicts) != 1 || !strings.HasSuffix(verdicts[0].Path, virtualGenName(vm.Gen+1)) {
				t.Fatalf("scrub verdicts for torn sidecar = %+v", verdicts)
			}
		})
	}
}
