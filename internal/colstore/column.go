package colstore

// This file holds the in-memory column and chunk types of the doubly
// dictionary-encoded layout; see doc.go for the package overview.

import (
	"fmt"
	"sort"

	"powerdrill/internal/compress"
	"powerdrill/internal/dict"
	"powerdrill/internal/enc"
	"powerdrill/internal/value"
)

// Chunk is one column's data for one horizontal partition of the table.
type Chunk struct {
	// GlobalIDs is the chunk-dictionary: the sorted global-ids occurring
	// in this chunk. Chunk-id c corresponds to GlobalIDs[c].
	GlobalIDs []uint32
	// Elems holds one chunk-id per row of the chunk.
	Elems enc.Sequence
}

// Rows returns the number of rows in the chunk.
func (c *Chunk) Rows() int { return c.Elems.Len() }

// Cardinality returns the number of distinct values in the chunk.
func (c *Chunk) Cardinality() int { return len(c.GlobalIDs) }

// ChunkID returns the chunk-id of a global-id, if the value occurs here.
func (c *Chunk) ChunkID(gid uint32) (uint32, bool) {
	i := sort.Search(len(c.GlobalIDs), func(i int) bool { return c.GlobalIDs[i] >= gid })
	if i < len(c.GlobalIDs) && c.GlobalIDs[i] == gid {
		return uint32(i), true
	}
	return 0, false
}

// ContainsAny reports whether any of the sorted global-ids occurs in the
// chunk — the skipping probe of Section 2.4. Both slices are sorted, so
// this is a linear merge over the smaller of the two.
func (c *Chunk) ContainsAny(sortedGIDs []uint32) bool {
	i, j := 0, 0
	for i < len(c.GlobalIDs) && j < len(sortedGIDs) {
		switch {
		case c.GlobalIDs[i] == sortedGIDs[j]:
			return true
		case c.GlobalIDs[i] < sortedGIDs[j]:
			i++
		default:
			j++
		}
	}
	return false
}

// AllWithin reports whether every distinct value of the chunk lies in the
// sorted global-id set — the "fully active" test that makes a chunk's
// result cacheable (Section 6: results are cached "for chunks which are
// fully active, i.e., for which the where clause evaluates to true for all
// rows").
func (c *Chunk) AllWithin(sortedGIDs []uint32) bool {
	j := 0
	for _, gid := range c.GlobalIDs {
		for j < len(sortedGIDs) && sortedGIDs[j] < gid {
			j++
		}
		if j == len(sortedGIDs) || sortedGIDs[j] != gid {
			return false
		}
	}
	return true
}

// MemoryElements returns the footprint of the element storage.
func (c *Chunk) MemoryElements() int64 { return c.Elems.MemoryBytes() }

// MemoryChunkDict returns the footprint of the chunk-dictionary
// (4 bytes per occurring global-id, as in the canonical implementation).
func (c *Chunk) MemoryChunkDict() int64 { return int64(len(c.GlobalIDs)) * 4 }

// Column is one dictionary-encoded column.
type Column struct {
	Name string
	Kind value.Kind
	// Dict is the global dictionary.
	Dict dict.Dict
	// Chunks holds the per-chunk data, aligned with the store's bounds.
	Chunks []*Chunk
	// Virtual marks materialized expression columns (Section 5).
	Virtual bool
}

// NumRows returns the total row count across chunks.
func (c *Column) NumRows() int {
	n := 0
	for _, ch := range c.Chunks {
		n += ch.Rows()
	}
	return n
}

// ValueAt returns the value of the column at a (chunk, row) position.
func (c *Column) ValueAt(chunk, row int) value.Value {
	ch := c.Chunks[chunk]
	return c.Dict.Value(ch.GlobalIDs[ch.Elems.At(row)])
}

// GlobalIDAt returns the global-id at a (chunk, row) position.
func (c *Column) GlobalIDAt(chunk, row int) uint32 {
	ch := c.Chunks[chunk]
	return ch.GlobalIDs[ch.Elems.At(row)]
}

// MemoryBreakdown itemizes a column's footprint the way the paper's
// experiment tables do.
type MemoryBreakdown struct {
	Elements   int64
	ChunkDicts int64
	GlobalDict int64
}

// Total sums the layers.
func (m MemoryBreakdown) Total() int64 { return m.Elements + m.ChunkDicts + m.GlobalDict }

// Add accumulates another breakdown.
func (m *MemoryBreakdown) Add(o MemoryBreakdown) {
	m.Elements += o.Elements
	m.ChunkDicts += o.ChunkDicts
	m.GlobalDict += o.GlobalDict
}

// Memory returns the column's exact byte footprint per layer.
func (c *Column) Memory() MemoryBreakdown {
	var m MemoryBreakdown
	for _, ch := range c.Chunks {
		m.Elements += ch.MemoryElements()
		m.ChunkDicts += ch.MemoryChunkDict()
	}
	m.GlobalDict = c.Dict.MemoryBytes()
	return m
}

// CompressedBreakdown reports the sizes of the column's serialized layers
// after applying a generic compressor — the Section 3 "Zippy" measurements.
type CompressedBreakdown struct {
	Elements   int64
	ChunkDicts int64
	GlobalDict int64
}

// Total sums the layers.
func (m CompressedBreakdown) Total() int64 { return m.Elements + m.ChunkDicts + m.GlobalDict }

// Add accumulates another breakdown.
func (m *CompressedBreakdown) Add(o CompressedBreakdown) {
	m.Elements += o.Elements
	m.ChunkDicts += o.ChunkDicts
	m.GlobalDict += o.GlobalDict
}

// Compressed measures the column's layers after compression with codec.
// Each chunk is compressed separately (chunks are the unit of skipping and
// caching, so they must remain independently decompressable).
func (c *Column) Compressed(codec compress.Codec) CompressedBreakdown {
	var m CompressedBreakdown
	var buf []byte
	for _, ch := range c.Chunks {
		buf = ch.Elems.AppendBytes(buf[:0])
		m.Elements += int64(len(codec.Compress(nil, buf)))
		buf = appendUint32s(buf[:0], ch.GlobalIDs)
		m.ChunkDicts += int64(len(codec.Compress(nil, buf)))
	}
	m.GlobalDict = int64(len(codec.Compress(nil, serializeDict(c.Dict))))
	return m
}

// appendUint32s serializes ids as little-endian 4-byte values.
func appendUint32s(dst []byte, ids []uint32) []byte {
	for _, id := range ids {
		dst = append(dst, byte(id), byte(id>>8), byte(id>>16), byte(id>>24))
	}
	return dst
}

// serializeDict renders a dictionary's payload for compression sizing and
// persistence: strings are length-prefixed in sorted order; numerics are
// fixed 8-byte little-endian.
func serializeDict(d dict.Dict) []byte {
	var out []byte
	switch dd := d.(type) {
	case *dict.StringArray:
		for _, s := range dd.Strings() {
			out = appendUvarint(out, uint64(len(s)))
			out = append(out, s...)
		}
	case *dict.Trie:
		// The trie is already a compact byte array; compress that.
		out = append(out, dd.Buf()...)
	default:
		for i := 0; i < d.Len(); i++ {
			v := d.Value(uint32(i))
			switch v.Kind() {
			case value.KindString:
				s := v.Str()
				out = appendUvarint(out, uint64(len(s)))
				out = append(out, s...)
			case value.KindInt64:
				out = appendLE64(out, uint64(v.Int()))
			case value.KindFloat64:
				out = appendLE64(out, floatBitsOf(v.Float()))
			}
		}
	}
	return out
}

func appendUvarint(dst []byte, v uint64) []byte {
	for v >= 0x80 {
		dst = append(dst, byte(v)|0x80)
		v >>= 7
	}
	return append(dst, byte(v))
}

func appendLE64(dst []byte, v uint64) []byte {
	return append(dst,
		byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

// checkAligned verifies a column matches the store's chunk layout.
func (c *Column) checkAligned(bounds []int) error {
	if len(c.Chunks) != len(bounds)-1 {
		return fmt.Errorf("colstore: column %q has %d chunks, store has %d", c.Name, len(c.Chunks), len(bounds)-1)
	}
	for i, ch := range c.Chunks {
		if ch.Rows() != bounds[i+1]-bounds[i] {
			return fmt.Errorf("colstore: column %q chunk %d has %d rows, want %d",
				c.Name, i, ch.Rows(), bounds[i+1]-bounds[i])
		}
	}
	return nil
}
