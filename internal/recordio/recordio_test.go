package recordio

import (
	"bytes"
	"io"
	"testing"
	"testing/quick"

	"powerdrill/internal/value"
	"powerdrill/internal/workload"
)

var kinds = []value.Kind{value.KindString, value.KindInt64, value.KindFloat64}

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, kinds)
	rows := [][]value.Value{
		{value.String("ebay"), value.Int64(-42), value.Float64(2.5)},
		{value.String(""), value.Int64(0), value.Float64(0)},
		{value.String("cheap flights"), value.Int64(1 << 60), value.Float64(-1e300)},
	}
	for _, r := range rows {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf, kinds)
	got := make([]value.Value, len(kinds))
	for i, want := range rows {
		if err := r.Next(got); err != nil {
			t.Fatalf("row %d: %v", i, err)
		}
		for j := range want {
			if !got[j].Equal(want[j]) {
				t.Errorf("row %d field %d: %v != %v", i, j, got[j], want[j])
			}
		}
	}
	if err := r.Next(got); err != io.EOF {
		t.Errorf("expected EOF, got %v", err)
	}
}

func TestWriteErrors(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, kinds)
	if err := w.Write([]value.Value{value.String("x")}); err == nil {
		t.Error("short record accepted")
	}
	if err := w.Write([]value.Value{value.Int64(1), value.Int64(2), value.Float64(3)}); err == nil {
		t.Error("kind mismatch accepted")
	}
}

func TestReaderErrors(t *testing.T) {
	r := NewReader(bytes.NewReader([]byte{0x05, 0x01}), kinds) // truncated body
	vals := make([]value.Value, len(kinds))
	if err := r.Next(vals); err == nil || err == io.EOF {
		t.Errorf("truncated record: %v", err)
	}
	// Wrong destination size.
	r2 := NewReader(bytes.NewReader(nil), kinds)
	if err := r2.Next(make([]value.Value, 1)); err == nil {
		t.Error("wrong destination accepted")
	}
	// Record with a field missing.
	var buf bytes.Buffer
	w := NewWriter(&buf, []value.Kind{value.KindInt64})
	if err := w.Write([]value.Value{value.Int64(7)}); err != nil {
		t.Fatal(err)
	}
	w.Flush()
	r3 := NewReader(bytes.NewReader(buf.Bytes()), kinds) // expects 3 fields
	if err := r3.Next(vals); err == nil {
		t.Error("missing fields accepted")
	}
}

func TestQuickRoundTripValues(t *testing.T) {
	f := func(s string, i int64, fl float64) bool {
		if fl != fl { // skip NaN, which never compares equal
			return true
		}
		var buf bytes.Buffer
		w := NewWriter(&buf, kinds)
		if err := w.Write([]value.Value{value.String(s), value.Int64(i), value.Float64(fl)}); err != nil {
			return false
		}
		w.Flush()
		r := NewReader(&buf, kinds)
		got := make([]value.Value, 3)
		if err := r.Next(got); err != nil {
			return false
		}
		return got[0].Str() == s && got[1].Int() == i && got[2].Float() == fl
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestWriteTable(t *testing.T) {
	tbl := workload.QueryLogs(workload.LogsSpec{Rows: 500, Seed: 1})
	var buf bytes.Buffer
	if err := WriteTable(&buf, tbl); err != nil {
		t.Fatal(err)
	}
	tkinds := make([]value.Kind, len(tbl.Cols))
	for i, c := range tbl.Cols {
		tkinds[i] = c.Kind
	}
	r := NewReader(&buf, tkinds)
	vals := make([]value.Value, len(tkinds))
	n := 0
	for {
		err := r.Next(vals)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		for j, c := range tbl.Cols {
			if !vals[j].Equal(c.Value(n)) {
				t.Fatalf("row %d col %d mismatch", n, j)
			}
		}
		n++
	}
	if n != 500 {
		t.Errorf("read %d rows, want 500", n)
	}
}

func TestZigzag(t *testing.T) {
	f := func(v int64) bool { return unzigzag(zigzag(v)) == v }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
