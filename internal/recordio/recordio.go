// Package recordio implements the row-wise binary baseline format of the
// paper's experiments ("record-io: binary format based on protocol
// buffers"). Each record is a length-prefixed message of tagged fields,
// encoded protobuf-style: field number and wire type in a varint key,
// varint integers, little-endian doubles, length-delimited strings. It is
// deliberately a streaming, full-scan format: reading any field requires
// reading every record.
package recordio

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"powerdrill/internal/table"
	"powerdrill/internal/value"
)

// wire types, protobuf-compatible.
const (
	wireVarint = 0
	wireI64    = 1
	wireBytes  = 2
)

// Writer streams records of a fixed schema.
type Writer struct {
	w     *bufio.Writer
	kinds []value.Kind
	buf   []byte
}

// NewWriter creates a writer for records with the given field kinds.
func NewWriter(w io.Writer, kinds []value.Kind) *Writer {
	return &Writer{w: bufio.NewWriterSize(w, 1<<16), kinds: append([]value.Kind(nil), kinds...)}
}

// Write appends one record; vals must match the schema.
func (w *Writer) Write(vals []value.Value) error {
	if len(vals) != len(w.kinds) {
		return fmt.Errorf("recordio: record has %d fields, schema has %d", len(vals), len(w.kinds))
	}
	w.buf = w.buf[:0]
	for i, v := range vals {
		if v.Kind() != w.kinds[i] {
			return fmt.Errorf("recordio: field %d is %s, schema says %s", i, v.Kind(), w.kinds[i])
		}
		switch v.Kind() {
		case value.KindString:
			w.buf = appendKey(w.buf, i+1, wireBytes)
			s := v.Str()
			w.buf = binary.AppendUvarint(w.buf, uint64(len(s)))
			w.buf = append(w.buf, s...)
		case value.KindInt64:
			w.buf = appendKey(w.buf, i+1, wireVarint)
			w.buf = binary.AppendUvarint(w.buf, zigzag(v.Int()))
		case value.KindFloat64:
			w.buf = appendKey(w.buf, i+1, wireI64)
			w.buf = binary.LittleEndian.AppendUint64(w.buf, math.Float64bits(v.Float()))
		}
	}
	var lenBuf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(lenBuf[:], uint64(len(w.buf)))
	if _, err := w.w.Write(lenBuf[:n]); err != nil {
		return err
	}
	_, err := w.w.Write(w.buf)
	return err
}

// Flush flushes buffered records.
func (w *Writer) Flush() error { return w.w.Flush() }

func appendKey(dst []byte, field, wire int) []byte {
	return binary.AppendUvarint(dst, uint64(field)<<3|uint64(wire))
}

func zigzag(v int64) uint64   { return uint64(v<<1) ^ uint64(v>>63) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// Reader streams records back.
type Reader struct {
	r     *bufio.Reader
	kinds []value.Kind
	buf   []byte
}

// NewReader creates a reader expecting the given schema.
func NewReader(r io.Reader, kinds []value.Kind) *Reader {
	return &Reader{r: bufio.NewReaderSize(r, 1<<16), kinds: append([]value.Kind(nil), kinds...)}
}

// Next reads one record into vals (which must have schema length). It
// returns io.EOF cleanly at end of stream.
func (r *Reader) Next(vals []value.Value) error {
	if len(vals) != len(r.kinds) {
		return fmt.Errorf("recordio: destination has %d fields, schema has %d", len(vals), len(r.kinds))
	}
	size, err := binary.ReadUvarint(r.r)
	if err != nil {
		if err == io.EOF {
			return io.EOF
		}
		return fmt.Errorf("recordio: record length: %w", err)
	}
	if size > 1<<30 {
		return fmt.Errorf("recordio: absurd record size %d", size)
	}
	if cap(r.buf) < int(size) {
		r.buf = make([]byte, size)
	}
	r.buf = r.buf[:size]
	if _, err := io.ReadFull(r.r, r.buf); err != nil {
		return fmt.Errorf("recordio: record body: %w", err)
	}
	return r.decode(r.buf, vals)
}

func (r *Reader) decode(buf []byte, vals []value.Value) error {
	seen := 0
	for len(buf) > 0 {
		key, n := binary.Uvarint(buf)
		if n <= 0 {
			return fmt.Errorf("recordio: corrupt field key")
		}
		buf = buf[n:]
		field := int(key >> 3)
		wire := int(key & 7)
		if field < 1 || field > len(r.kinds) {
			return fmt.Errorf("recordio: field %d out of schema", field)
		}
		idx := field - 1
		switch wire {
		case wireVarint:
			u, n := binary.Uvarint(buf)
			if n <= 0 {
				return fmt.Errorf("recordio: corrupt varint field %d", field)
			}
			buf = buf[n:]
			vals[idx] = value.Int64(unzigzag(u))
		case wireI64:
			if len(buf) < 8 {
				return fmt.Errorf("recordio: corrupt double field %d", field)
			}
			vals[idx] = value.Float64(math.Float64frombits(binary.LittleEndian.Uint64(buf)))
			buf = buf[8:]
		case wireBytes:
			l, n := binary.Uvarint(buf)
			if n <= 0 || uint64(len(buf)-n) < l {
				return fmt.Errorf("recordio: corrupt bytes field %d", field)
			}
			vals[idx] = value.String(string(buf[n : n+int(l)]))
			buf = buf[n+int(l):]
		default:
			return fmt.Errorf("recordio: unknown wire type %d", wire)
		}
		seen++
	}
	if seen != len(r.kinds) {
		return fmt.Errorf("recordio: record has %d fields, schema has %d", seen, len(r.kinds))
	}
	return nil
}

// WriteTable streams an entire table.
func WriteTable(w io.Writer, tbl *table.Table) error {
	kinds := make([]value.Kind, len(tbl.Cols))
	for i, c := range tbl.Cols {
		kinds[i] = c.Kind
	}
	rw := NewWriter(w, kinds)
	for i := 0; i < tbl.NumRows(); i++ {
		if err := rw.Write(tbl.Row(i)); err != nil {
			return err
		}
	}
	return rw.Flush()
}
