// Package reorder implements the row-reordering step of Section 3
// ("Reordering Rows"): permuting rows — which never changes SQL results —
// so that column-wise compression improves. Finding the optimal order is
// the travelling-salesperson problem in Hamming space (Johnson et al.,
// VLDB 2004; NP-hard, and hard to approximate per Trevisan), so heuristics
// are used:
//
//   - Lexicographic: sort by the partition field order — the paper's
//     production choice ("a very easy to implement heuristic which in
//     practice gives good results");
//   - NearestNeighbor: the greedy heuristic Johnson et al. investigate,
//     restricted to windows to avoid the quadratic runtime;
//   - Random / Identity: baselines for the ablation benchmarks.
//
// HammingCost evaluates an order under the paper's cost model: the sum of
// Hamming distances between consecutive rows equals the number of counters
// a simplified RLE needs (Figure 3), i.e. smaller cost → better compression.
package reorder

import (
	"math/rand"
	"sort"

	"powerdrill/internal/table"
)

// Lexicographic returns the permutation that sorts tbl by fields, in
// order, with ties broken by the original row index (a stable sort, so the
// implicit time clustering of the remaining columns survives).
func Lexicographic(tbl *table.Table, fields []string) []int {
	cols := make([]*table.Column, 0, len(fields))
	for _, f := range fields {
		if c := tbl.Column(f); c != nil {
			cols = append(cols, c)
		}
	}
	perm := identity(tbl.NumRows())
	sort.SliceStable(perm, func(i, j int) bool {
		a, b := perm[i], perm[j]
		for _, c := range cols {
			if cmp := c.Value(a).Compare(c.Value(b)); cmp != 0 {
				return cmp < 0
			}
		}
		return false
	})
	return perm
}

// Identity returns the unpermuted order.
func Identity(n int) []int { return identity(n) }

// Random returns a seeded random permutation (the worst-case baseline).
func Random(n int, seed int64) []int {
	perm := identity(n)
	r := rand.New(rand.NewSource(seed))
	r.Shuffle(n, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
	return perm
}

func identity(n int) []int {
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	return perm
}

// rowKeys materializes per-row comparable keys for the given fields, as
// small integer ids (dictionary ranks), so Hamming distances are cheap.
func rowKeys(tbl *table.Table, fields []string) [][]uint32 {
	n := tbl.NumRows()
	keys := make([][]uint32, n)
	for i := range keys {
		keys[i] = make([]uint32, 0, len(fields))
	}
	for _, f := range fields {
		c := tbl.Column(f)
		if c == nil {
			continue
		}
		ids := make(map[string]uint32)
		for i := 0; i < n; i++ {
			s := c.Value(i).String()
			id, ok := ids[s]
			if !ok {
				id = uint32(len(ids))
				ids[s] = id
			}
			keys[i] = append(keys[i], id)
		}
	}
	return keys
}

// hamming counts differing fields between two key rows.
func hamming(a, b []uint32) int {
	d := 0
	for i := range a {
		if a[i] != b[i] {
			d++
		}
	}
	return d
}

// HammingCost evaluates perm under the Section 3 cost model: the length of
// the path the ordering traces through Hamming space, Σ dist(r, r+1).
func HammingCost(tbl *table.Table, fields []string, perm []int) int64 {
	keys := rowKeys(tbl, fields)
	var cost int64
	for i := 1; i < len(perm); i++ {
		cost += int64(hamming(keys[perm[i-1]], keys[perm[i]]))
	}
	return cost
}

// NearestNeighbor runs the greedy nearest-neighbour TSP heuristic within
// consecutive windows of the given size (Johnson et al. "split the data
// into ranges to deal with the otherwise quadratic runtime"). window ≤ 1
// degenerates to the identity order.
func NearestNeighbor(tbl *table.Table, fields []string, window int) []int {
	n := tbl.NumRows()
	if window <= 1 || n == 0 {
		return identity(n)
	}
	keys := rowKeys(tbl, fields)
	perm := make([]int, 0, n)
	for start := 0; start < n; start += window {
		end := start + window
		if end > n {
			end = n
		}
		perm = append(perm, nnWindow(keys, start, end)...)
	}
	return perm
}

// nnWindow orders rows [start,end) greedily by nearest neighbour.
func nnWindow(keys [][]uint32, start, end int) []int {
	size := end - start
	used := make([]bool, size)
	out := make([]int, 0, size)
	cur := 0
	used[0] = true
	out = append(out, start)
	for len(out) < size {
		best, bestDist := -1, 1<<30
		for j := 0; j < size; j++ {
			if used[j] {
				continue
			}
			d := hamming(keys[start+cur], keys[start+j])
			if d < bestDist {
				best, bestDist = j, d
				if d == 0 {
					break
				}
			}
		}
		used[best] = true
		out = append(out, start+best)
		cur = best
	}
	return out
}
