package reorder

import (
	"testing"

	"powerdrill/internal/table"
	"powerdrill/internal/workload"
)

func logs(rows int) *table.Table {
	return workload.QueryLogs(workload.LogsSpec{Rows: rows, Seed: 11})
}

func isPermutation(t *testing.T, perm []int, n int) {
	t.Helper()
	if len(perm) != n {
		t.Fatalf("perm has %d entries for %d rows", len(perm), n)
	}
	seen := make([]bool, n)
	for _, p := range perm {
		if p < 0 || p >= n || seen[p] {
			t.Fatal("not a permutation")
		}
		seen[p] = true
	}
}

func TestLexicographicSortsAndPermutes(t *testing.T) {
	tbl := logs(5000)
	fields := []string{"country", "table_name"}
	perm := Lexicographic(tbl, fields)
	isPermutation(t, perm, tbl.NumRows())
	countries := tbl.Column("country").Strs
	names := tbl.Column("table_name").Strs
	for i := 1; i < len(perm); i++ {
		a, b := perm[i-1], perm[i]
		if countries[a] > countries[b] {
			t.Fatal("not sorted by first field")
		}
		if countries[a] == countries[b] && names[a] > names[b] {
			t.Fatal("not sorted by second field within first")
		}
	}
}

func TestLexicographicStable(t *testing.T) {
	tbl := logs(2000)
	perm := Lexicographic(tbl, []string{"country"})
	countries := tbl.Column("country").Strs
	// Within equal countries, original order (and thus time order) must be
	// preserved — the heuristic keeps the implicit timestamp clustering.
	for i := 1; i < len(perm); i++ {
		if countries[perm[i-1]] == countries[perm[i]] && perm[i-1] > perm[i] {
			t.Fatal("sort not stable")
		}
	}
}

func TestLexicographicIgnoresUnknownFields(t *testing.T) {
	tbl := logs(100)
	perm := Lexicographic(tbl, []string{"missing", "country"})
	isPermutation(t, perm, 100)
}

func TestIdentityAndRandom(t *testing.T) {
	id := Identity(100)
	for i, p := range id {
		if p != i {
			t.Fatal("Identity not identity")
		}
	}
	r1 := Random(100, 1)
	r2 := Random(100, 1)
	r3 := Random(100, 2)
	isPermutation(t, r1, 100)
	same12, same13 := true, true
	for i := range r1 {
		if r1[i] != r2[i] {
			same12 = false
		}
		if r1[i] != r3[i] {
			same13 = false
		}
	}
	if !same12 {
		t.Error("Random not deterministic for equal seeds")
	}
	if same13 {
		t.Error("Random identical across different seeds")
	}
}

// TestSortingReducesHammingCost is the Section 3 claim in miniature:
// sorting lexicographically by the partition fields shortens the path
// through Hamming space versus a random order.
func TestSortingReducesHammingCost(t *testing.T) {
	tbl := logs(3000)
	fields := []string{"country", "table_name", "user"}
	costRandom := HammingCost(tbl, fields, Random(tbl.NumRows(), 5))
	costSorted := HammingCost(tbl, fields, Lexicographic(tbl, fields))
	t.Logf("Hamming cost: random=%d sorted=%d (%.2fx)", costRandom, costSorted,
		float64(costRandom)/float64(costSorted))
	if costSorted >= costRandom {
		t.Errorf("sorted cost %d not below random cost %d", costSorted, costRandom)
	}
}

func TestNearestNeighborBeatsIdentityOnShuffledData(t *testing.T) {
	tbl := logs(1200).Permute(Random(1200, 7)) // destroy natural clustering
	fields := []string{"country", "user"}
	costID := HammingCost(tbl, fields, Identity(tbl.NumRows()))
	costNN := HammingCost(tbl, fields, NearestNeighbor(tbl, fields, 300))
	t.Logf("Hamming cost: identity=%d nn=%d", costID, costNN)
	if costNN > costID {
		t.Errorf("nearest-neighbour cost %d above identity %d", costNN, costID)
	}
	isPermutation(t, NearestNeighbor(tbl, fields, 300), tbl.NumRows())
}

func TestNearestNeighborDegenerateWindow(t *testing.T) {
	tbl := logs(50)
	perm := NearestNeighbor(tbl, []string{"country"}, 1)
	for i, p := range perm {
		if p != i {
			t.Fatal("window=1 should be identity")
		}
	}
	if got := NearestNeighbor(table.New("e"), []string{"x"}, 10); len(got) != 0 {
		t.Error("empty table produced rows")
	}
}

func TestHammingCostProperties(t *testing.T) {
	tbl := logs(500)
	fields := []string{"country", "user"}
	if HammingCost(tbl, fields, Identity(500)) < 0 {
		t.Error("negative cost")
	}
	// A single row has no transitions.
	one := logs(1)
	if HammingCost(one, fields, Identity(1)) != 0 {
		t.Error("single-row cost nonzero")
	}
	// Constant table: zero cost in any order.
	ct := table.New("c")
	vals := make([]string, 100)
	for i := range vals {
		vals[i] = "x"
	}
	ct.AddStringColumn("k", vals)
	if HammingCost(ct, []string{"k"}, Random(100, 3)) != 0 {
		t.Error("constant table has nonzero cost")
	}
}

func BenchmarkLexicographic(b *testing.B) {
	tbl := logs(50_000)
	fields := []string{"country", "table_name"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Lexicographic(tbl, fields)
	}
}

func BenchmarkNearestNeighbor(b *testing.B) {
	tbl := logs(5000)
	fields := []string{"country", "user"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NearestNeighbor(tbl, fields, 500)
	}
}
