// Package sql implements the SQL subset PowerDrill's engine parses and
// processes: single-table group-by queries of the shape the Web UI
// generates (paper, "Background" and Section 2.4):
//
//	SELECT expr [AS alias], ... FROM table
//	[WHERE predicate] [GROUP BY expr, ...]
//	[ORDER BY expr [ASC|DESC], ...] [LIMIT n];
//
// with special operator support for AND, OR, NOT, IN, NOT IN, =, != (the
// operators the engine can evaluate against chunk-dictionaries to skip
// data), ordinary comparisons, arithmetic, scalar functions like
// date(timestamp), and the aggregates COUNT(*), COUNT(x), SUM, MIN, MAX,
// AVG and COUNT(DISTINCT x).
package sql

import (
	"fmt"
	"strconv"
	"strings"
)

// Expr is an expression tree node. The String method renders a canonical
// form: it is the key under which the engine materializes virtual fields,
// so equal expressions must print identically.
type Expr interface {
	fmt.Stringer
	exprNode()
}

// Ident references a column (or, in ORDER BY, a select alias).
type Ident struct{ Name string }

// StringLit is a quoted string literal.
type StringLit struct{ Val string }

// IntLit is an integer literal.
type IntLit struct{ Val int64 }

// FloatLit is a floating-point literal.
type FloatLit struct{ Val float64 }

// Call is a function call: scalar (date, lower, ...) or aggregate (count,
// sum, ...). Star marks COUNT(*), Distinct marks COUNT(DISTINCT x).
type Call struct {
	Name     string
	Args     []Expr
	Star     bool
	Distinct bool
}

// BinaryOp enumerates binary operators.
type BinaryOp string

// The binary operators.
const (
	OpAnd BinaryOp = "AND"
	OpOr  BinaryOp = "OR"
	OpEq  BinaryOp = "="
	OpNe  BinaryOp = "!="
	OpLt  BinaryOp = "<"
	OpLe  BinaryOp = "<="
	OpGt  BinaryOp = ">"
	OpGe  BinaryOp = ">="
	OpAdd BinaryOp = "+"
	OpSub BinaryOp = "-"
	OpMul BinaryOp = "*"
	OpDiv BinaryOp = "/"
)

// Binary is a binary operation.
type Binary struct {
	Op   BinaryOp
	L, R Expr
}

// Not is logical negation.
type Not struct{ X Expr }

// In is `X [NOT] IN (list...)`, the restriction shape the UI's drill-downs
// produce.
type In struct {
	X       Expr
	List    []Expr
	Negated bool
}

func (*Ident) exprNode()     {}
func (*StringLit) exprNode() {}
func (*IntLit) exprNode()    {}
func (*FloatLit) exprNode()  {}
func (*Call) exprNode()      {}
func (*Binary) exprNode()    {}
func (*Not) exprNode()       {}
func (*In) exprNode()        {}

// String implements Expr.
func (e *Ident) String() string { return e.Name }

// String implements Expr.
func (e *StringLit) String() string { return strconv.Quote(e.Val) }

// String implements Expr.
func (e *IntLit) String() string { return strconv.FormatInt(e.Val, 10) }

// String implements Expr.
func (e *FloatLit) String() string { return strconv.FormatFloat(e.Val, 'g', -1, 64) }

// String implements Expr.
func (e *Call) String() string {
	if e.Star {
		return e.Name + "(*)"
	}
	args := make([]string, len(e.Args))
	for i, a := range e.Args {
		args[i] = a.String()
	}
	inner := strings.Join(args, ", ")
	if e.Distinct {
		inner = "DISTINCT " + inner
	}
	return e.Name + "(" + inner + ")"
}

// String implements Expr.
func (e *Binary) String() string {
	return "(" + e.L.String() + " " + string(e.Op) + " " + e.R.String() + ")"
}

// String implements Expr.
func (e *Not) String() string { return "(NOT " + e.X.String() + ")" }

// String implements Expr.
func (e *In) String() string {
	items := make([]string, len(e.List))
	for i, v := range e.List {
		items[i] = v.String()
	}
	op := " IN ("
	if e.Negated {
		op = " NOT IN ("
	}
	return "(" + e.X.String() + op + strings.Join(items, ", ") + "))"
}

// SelectItem is one projection with an optional alias.
type SelectItem struct {
	Expr  Expr
	Alias string
}

// String renders the item as it would appear in a query.
func (s SelectItem) String() string {
	if s.Alias != "" {
		return s.Expr.String() + " AS " + s.Alias
	}
	return s.Expr.String()
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// SelectStmt is a parsed query.
type SelectStmt struct {
	Items   []SelectItem
	From    string
	Where   Expr // nil if absent
	GroupBy []Expr
	Having  Expr // nil if absent; evaluated over output columns at the root
	OrderBy []OrderItem
	Limit   int // -1 if absent
}

// String renders the statement canonically.
func (s *SelectStmt) String() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	for i, it := range s.Items {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(it.String())
	}
	b.WriteString(" FROM ")
	b.WriteString(s.From)
	if s.Where != nil {
		b.WriteString(" WHERE ")
		b.WriteString(s.Where.String())
	}
	if len(s.GroupBy) > 0 {
		b.WriteString(" GROUP BY ")
		for i, g := range s.GroupBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(g.String())
		}
	}
	if s.Having != nil {
		b.WriteString(" HAVING ")
		b.WriteString(s.Having.String())
	}
	if len(s.OrderBy) > 0 {
		b.WriteString(" ORDER BY ")
		for i, o := range s.OrderBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(o.Expr.String())
			if o.Desc {
				b.WriteString(" DESC")
			} else {
				b.WriteString(" ASC")
			}
		}
	}
	if s.Limit >= 0 {
		fmt.Fprintf(&b, " LIMIT %d", s.Limit)
	}
	b.WriteString(";")
	return b.String()
}

// AggregateNames lists the supported aggregate functions.
var AggregateNames = map[string]bool{
	"count": true, "sum": true, "min": true, "max": true, "avg": true,
}

// IsAggregate reports whether a call is an aggregate function.
func (e *Call) IsAggregate() bool { return AggregateNames[strings.ToLower(e.Name)] }

// HasAggregate reports whether any node of e is an aggregate call.
func HasAggregate(e Expr) bool {
	switch n := e.(type) {
	case *Call:
		if n.IsAggregate() {
			return true
		}
		for _, a := range n.Args {
			if HasAggregate(a) {
				return true
			}
		}
	case *Binary:
		return HasAggregate(n.L) || HasAggregate(n.R)
	case *Not:
		return HasAggregate(n.X)
	case *In:
		if HasAggregate(n.X) {
			return true
		}
		for _, a := range n.List {
			if HasAggregate(a) {
				return true
			}
		}
	}
	return false
}

// SplitConjuncts flattens nested ANDs into a conjunct list — the engine
// splits user expressions apart by the special operators "as far as
// possible" before materializing anything (Section 5).
func SplitConjuncts(e Expr) []Expr {
	if b, ok := e.(*Binary); ok && b.Op == OpAnd {
		return append(SplitConjuncts(b.L), SplitConjuncts(b.R)...)
	}
	if e == nil {
		return nil
	}
	return []Expr{e}
}
