package sql

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexical tokens.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokKeyword
	tokString
	tokNumber
	tokOp // = != < <= > >= + - * /
	tokLParen
	tokRParen
	tokComma
	tokSemi
)

// keywords are case-insensitive reserved words.
var keywords = map[string]bool{
	"select": true, "from": true, "where": true, "group": true, "by": true,
	"having": true, "order": true, "limit": true, "and": true, "or": true,
	"not": true, "in": true, "as": true, "asc": true, "desc": true,
	"distinct": true,
}

// token is one lexical token; text is lower-cased for keywords.
type token struct {
	kind tokenKind
	text string
	pos  int
}

// lexer tokenizes a query string.
type lexer struct {
	src string
	pos int
}

// next returns the next token.
func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) && unicode.IsSpace(rune(l.src[l.pos])) {
		l.pos++
	}
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, pos: l.pos}, nil
	}
	start := l.pos
	c := l.src[l.pos]
	switch {
	case c == '(':
		l.pos++
		return token{tokLParen, "(", start}, nil
	case c == ')':
		l.pos++
		return token{tokRParen, ")", start}, nil
	case c == ',':
		l.pos++
		return token{tokComma, ",", start}, nil
	case c == ';':
		l.pos++
		return token{tokSemi, ";", start}, nil
	case c == '\'' || c == '"':
		return l.lexString(c)
	case c >= '0' && c <= '9':
		return l.lexNumber()
	case c == '!':
		if l.pos+1 < len(l.src) && l.src[l.pos+1] == '=' {
			l.pos += 2
			return token{tokOp, "!=", start}, nil
		}
		return token{}, fmt.Errorf("sql: unexpected '!' at %d", start)
	case c == '<':
		if l.pos+1 < len(l.src) && l.src[l.pos+1] == '=' {
			l.pos += 2
			return token{tokOp, "<=", start}, nil
		}
		if l.pos+1 < len(l.src) && l.src[l.pos+1] == '>' {
			l.pos += 2
			return token{tokOp, "!=", start}, nil
		}
		l.pos++
		return token{tokOp, "<", start}, nil
	case c == '>':
		if l.pos+1 < len(l.src) && l.src[l.pos+1] == '=' {
			l.pos += 2
			return token{tokOp, ">=", start}, nil
		}
		l.pos++
		return token{tokOp, ">", start}, nil
	case c == '=' || c == '+' || c == '-' || c == '*' || c == '/':
		l.pos++
		return token{tokOp, string(c), start}, nil
	case isIdentStart(c):
		return l.lexIdent()
	}
	return token{}, fmt.Errorf("sql: unexpected character %q at %d", c, start)
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9') || c == '.'
}

// lexIdent scans an identifier or keyword. Dots are part of identifiers
// (table names like logs.powerdrill.queries).
func (l *lexer) lexIdent() (token, error) {
	start := l.pos
	for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
		l.pos++
	}
	text := l.src[start:l.pos]
	if keywords[strings.ToLower(text)] {
		return token{tokKeyword, strings.ToLower(text), start}, nil
	}
	return token{tokIdent, text, start}, nil
}

// lexNumber scans an integer or float literal.
func (l *lexer) lexNumber() (token, error) {
	start := l.pos
	seenDot := false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '.' && !seenDot {
			seenDot = true
			l.pos++
			continue
		}
		if c < '0' || c > '9' {
			break
		}
		l.pos++
	}
	return token{tokNumber, l.src[start:l.pos], start}, nil
}

// lexString scans a quoted literal; backslash escapes the quote.
func (l *lexer) lexString(quote byte) (token, error) {
	start := l.pos
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch c {
		case '\\':
			if l.pos+1 >= len(l.src) {
				return token{}, fmt.Errorf("sql: unterminated escape at %d", l.pos)
			}
			b.WriteByte(l.src[l.pos+1])
			l.pos += 2
		case quote:
			l.pos++
			return token{tokString, b.String(), start}, nil
		default:
			b.WriteByte(c)
			l.pos++
		}
	}
	return token{}, fmt.Errorf("sql: unterminated string starting at %d", start)
}
