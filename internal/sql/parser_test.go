package sql

import (
	"strings"
	"testing"
)

func mustParse(t *testing.T, src string) *SelectStmt {
	t.Helper()
	stmt, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return stmt
}

func TestParsePaperQuery1(t *testing.T) {
	stmt := mustParse(t, `SELECT country, COUNT(*) as c FROM data GROUP BY country ORDER BY c DESC LIMIT 10;`)
	if len(stmt.Items) != 2 || stmt.From != "data" {
		t.Fatalf("stmt = %+v", stmt)
	}
	if stmt.Items[1].Alias != "c" {
		t.Errorf("alias = %q", stmt.Items[1].Alias)
	}
	call, ok := stmt.Items[1].Expr.(*Call)
	if !ok || !call.Star || call.Name != "count" || !call.IsAggregate() {
		t.Errorf("COUNT(*) parsed as %#v", stmt.Items[1].Expr)
	}
	if len(stmt.GroupBy) != 1 || stmt.GroupBy[0].String() != "country" {
		t.Errorf("GroupBy = %v", stmt.GroupBy)
	}
	if len(stmt.OrderBy) != 1 || !stmt.OrderBy[0].Desc {
		t.Errorf("OrderBy = %+v", stmt.OrderBy)
	}
	if stmt.Limit != 10 {
		t.Errorf("Limit = %d", stmt.Limit)
	}
}

func TestParsePaperQuery2(t *testing.T) {
	stmt := mustParse(t, `SELECT date(timestamp) as date, COUNT(*), SUM(latency) FROM data GROUP BY date ORDER BY date ASC LIMIT 10;`)
	if len(stmt.Items) != 3 {
		t.Fatalf("items = %d", len(stmt.Items))
	}
	call, ok := stmt.Items[0].Expr.(*Call)
	if !ok || call.Name != "date" || call.IsAggregate() {
		t.Errorf("date(timestamp) parsed as %#v", stmt.Items[0].Expr)
	}
	if stmt.OrderBy[0].Desc {
		t.Error("ASC parsed as DESC")
	}
}

func TestParseWhereIn(t *testing.T) {
	stmt := mustParse(t, `SELECT search_string, COUNT(*) as c FROM data
		WHERE search_string IN ("la redoute", "voyages sncf")
		GROUP BY search_string ORDER BY c DESC LIMIT 10;`)
	in, ok := stmt.Where.(*In)
	if !ok || in.Negated || len(in.List) != 2 {
		t.Fatalf("Where = %#v", stmt.Where)
	}
	if in.List[0].(*StringLit).Val != "la redoute" {
		t.Errorf("first IN value = %v", in.List[0])
	}
}

func TestParseSpecialOperators(t *testing.T) {
	stmt := mustParse(t, `SELECT COUNT(*) FROM data WHERE
		country IN ("de") AND NOT user = "u1" OR table_name NOT IN ("a", "b") AND latency != 5`)
	or, ok := stmt.Where.(*Binary)
	if !ok || or.Op != OpOr {
		t.Fatalf("top op = %#v", stmt.Where)
	}
	// Left: AND(country IN, NOT(=))
	land := or.L.(*Binary)
	if land.Op != OpAnd {
		t.Fatal("left not AND")
	}
	if _, ok := land.R.(*Not); !ok {
		t.Fatalf("NOT parse = %#v", land.R)
	}
	rand := or.R.(*Binary)
	in := rand.L.(*In)
	if !in.Negated {
		t.Error("NOT IN lost negation")
	}
	ne := rand.R.(*Binary)
	if ne.Op != OpNe {
		t.Errorf("!= parsed as %v", ne.Op)
	}
}

func TestParseArithmeticPrecedence(t *testing.T) {
	stmt := mustParse(t, `SELECT a + b * c - d / 2 FROM t`)
	// ((a + (b*c)) - (d/2))
	sub := stmt.Items[0].Expr.(*Binary)
	if sub.Op != OpSub {
		t.Fatalf("top = %v", sub.Op)
	}
	add := sub.L.(*Binary)
	if add.Op != OpAdd {
		t.Fatalf("left = %v", add.Op)
	}
	if add.R.(*Binary).Op != OpMul || sub.R.(*Binary).Op != OpDiv {
		t.Error("precedence wrong")
	}
}

func TestParseComparisons(t *testing.T) {
	for _, tc := range []struct {
		src string
		op  BinaryOp
	}{
		{"a = 1", OpEq}, {"a != 1", OpNe}, {"a <> 1", OpNe},
		{"a < 1", OpLt}, {"a <= 1", OpLe}, {"a > 1", OpGt}, {"a >= 1", OpGe},
	} {
		stmt := mustParse(t, "SELECT a FROM t WHERE "+tc.src)
		b, ok := stmt.Where.(*Binary)
		if !ok || b.Op != tc.op {
			t.Errorf("%q parsed op %v, want %v", tc.src, b.Op, tc.op)
		}
	}
}

func TestParseStarProjection(t *testing.T) {
	// `SELECT *` is not part of the subset — the engine is a group-by
	// engine — but COUNT(*) must work, and a bare * projection should be
	// rejected cleanly rather than panic.
	if _, err := Parse("SELECT * FROM t WHERE a = 1"); err == nil {
		t.Skip("bare * accepted (tolerated)")
	}
}

func TestParseNegativeNumbers(t *testing.T) {
	stmt := mustParse(t, `SELECT a FROM t WHERE a = -5 AND b = -2.5`)
	and := stmt.Where.(*Binary)
	if and.L.(*Binary).R.(*IntLit).Val != -5 {
		t.Error("negative int literal")
	}
	if and.R.(*Binary).R.(*FloatLit).Val != -2.5 {
		t.Error("negative float literal")
	}
}

func TestParseCountDistinct(t *testing.T) {
	stmt := mustParse(t, `SELECT country, COUNT(DISTINCT table_name) FROM data GROUP BY country`)
	call := stmt.Items[1].Expr.(*Call)
	if !call.Distinct || call.Name != "count" || len(call.Args) != 1 {
		t.Errorf("COUNT(DISTINCT) = %#v", call)
	}
}

func TestParseBareAlias(t *testing.T) {
	stmt := mustParse(t, `SELECT COUNT(*) c FROM data GROUP BY country`)
	if stmt.Items[0].Alias != "c" {
		t.Errorf("bare alias = %q", stmt.Items[0].Alias)
	}
}

func TestParseSingleQuotes(t *testing.T) {
	stmt := mustParse(t, `SELECT a FROM t WHERE d IN ('2012-02-29', '2012-03-01')`)
	in := stmt.Where.(*In)
	if in.List[0].(*StringLit).Val != "2012-02-29" {
		t.Error("single-quoted literal")
	}
}

func TestParseEscapes(t *testing.T) {
	stmt := mustParse(t, `SELECT a FROM t WHERE s = "he said \"hi\""`)
	eq := stmt.Where.(*Binary)
	if eq.R.(*StringLit).Val != `he said "hi"` {
		t.Errorf("escaped literal = %q", eq.R.(*StringLit).Val)
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		"",
		"SELEC a FROM t",
		"SELECT FROM t",
		"SELECT a",
		"SELECT a FROM",
		"SELECT a FROM t WHERE",
		"SELECT a FROM t GROUP country",
		"SELECT a FROM t LIMIT x",
		"SELECT a FROM t LIMIT -1",
		"SELECT a FROM t WHERE a IN 5",
		"SELECT a FROM t WHERE a IN (1",
		"SELECT a FROM t WHERE a = 'unterminated",
		"SELECT a FROM t; SELECT b FROM t",
		"SELECT f(a FROM t",
		"SELECT a FROM t WHERE !",
		"SELECT a FROM t WHERE a ! 1",
		"SELECT (a FROM t",
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestRoundTripThroughString(t *testing.T) {
	queries := []string{
		`SELECT country, COUNT(*) as c FROM data GROUP BY country ORDER BY c DESC LIMIT 10;`,
		`SELECT date(timestamp) as d, SUM(latency) FROM data WHERE country IN ("de", "fr") AND NOT user = "x" GROUP BY d ORDER BY d ASC;`,
		`SELECT a + b * 2 FROM t WHERE x NOT IN (1, 2, 3) OR y >= 1.5;`,
		`SELECT COUNT(DISTINCT table_name) FROM data;`,
	}
	for _, q := range queries {
		first := mustParse(t, q)
		second := mustParse(t, first.String())
		if first.String() != second.String() {
			t.Errorf("round trip diverged:\n  %s\n  %s", first.String(), second.String())
		}
	}
}

func TestHasAggregate(t *testing.T) {
	stmt := mustParse(t, `SELECT country, COUNT(*) + 1, date(timestamp) FROM data`)
	if HasAggregate(stmt.Items[0].Expr) {
		t.Error("plain column flagged as aggregate")
	}
	if !HasAggregate(stmt.Items[1].Expr) {
		t.Error("COUNT(*)+1 not flagged")
	}
	if HasAggregate(stmt.Items[2].Expr) {
		t.Error("date() flagged as aggregate")
	}
}

func TestSplitConjuncts(t *testing.T) {
	stmt := mustParse(t, `SELECT a FROM t WHERE a = 1 AND b IN (2) AND (c = 3 OR d = 4)`)
	parts := SplitConjuncts(stmt.Where)
	if len(parts) != 3 {
		t.Fatalf("got %d conjuncts", len(parts))
	}
	if !strings.Contains(parts[2].String(), "OR") {
		t.Error("OR conjunct mangled")
	}
	if got := SplitConjuncts(nil); got != nil {
		t.Error("SplitConjuncts(nil) != nil")
	}
}

func TestParseKeywordCaseInsensitive(t *testing.T) {
	stmt := mustParse(t, `select country from data where country in ("de") group by country order by country desc limit 5`)
	if stmt.Limit != 5 || stmt.Where == nil {
		t.Error("lower-case keywords not handled")
	}
}

func TestParseHaving(t *testing.T) {
	stmt := mustParse(t, `SELECT country, COUNT(*) AS c FROM data GROUP BY country HAVING c > 5 AND country != "zz" ORDER BY c DESC LIMIT 3;`)
	if stmt.Having == nil {
		t.Fatal("HAVING not parsed")
	}
	and, ok := stmt.Having.(*Binary)
	if !ok || and.Op != OpAnd {
		t.Fatalf("Having = %#v", stmt.Having)
	}
	// Canonical printing round-trips.
	again := mustParse(t, stmt.String())
	if again.Having == nil || again.String() != stmt.String() {
		t.Error("HAVING lost in round trip")
	}
	// HAVING before ORDER BY enforced by grammar.
	if _, err := Parse(`SELECT a FROM t GROUP BY a ORDER BY a HAVING a > 1`); err == nil {
		t.Error("HAVING after ORDER BY accepted")
	}
}

// TestParserNeverPanics feeds the parser mutated fragments of valid
// queries: any outcome is fine except a panic.
func TestParserNeverPanics(t *testing.T) {
	seeds := []string{
		`SELECT country, COUNT(*) as c FROM data WHERE a IN ("x", 'y') GROUP BY country HAVING c > 1 ORDER BY c DESC LIMIT 10;`,
		`SELECT a + b * (c - 2.5) FROM t WHERE NOT x != 1 AND y NOT IN (1,2);`,
	}
	mutate := func(s string, i int) string {
		switch i % 5 {
		case 0:
			return s[:len(s)*(i%7)/7]
		case 1:
			return s + s[:i%len(s)]
		case 2:
			b := []byte(s)
			b[i%len(b)] = byte(i)
			return string(b)
		case 3:
			return s[i%len(s):]
		default:
			b := []byte(s)
			b[i%len(b)], b[(i*3)%len(b)] = b[(i*3)%len(b)], b[i%len(b)]
			return string(b)
		}
	}
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("parser panicked: %v", r)
		}
	}()
	for _, seed := range seeds {
		for i := 1; i < 500; i++ {
			Parse(mutate(seed, i))
		}
	}
}
