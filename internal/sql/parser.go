package sql

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse parses a single SELECT statement.
func Parse(src string) (*SelectStmt, error) {
	p := &parser{lex: &lexer{src: src}}
	if err := p.advance(); err != nil {
		return nil, err
	}
	stmt, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	if p.tok.kind == tokSemi {
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	if p.tok.kind != tokEOF {
		return nil, fmt.Errorf("sql: trailing input at %d: %q", p.tok.pos, p.tok.text)
	}
	return stmt, nil
}

type parser struct {
	lex *lexer
	tok token
}

func (p *parser) advance() error {
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

// expectKeyword consumes the given keyword or fails.
func (p *parser) expectKeyword(kw string) error {
	if p.tok.kind != tokKeyword || p.tok.text != kw {
		return fmt.Errorf("sql: expected %s at %d, got %q", strings.ToUpper(kw), p.tok.pos, p.tok.text)
	}
	return p.advance()
}

// atKeyword reports whether the current token is the given keyword.
func (p *parser) atKeyword(kw string) bool {
	return p.tok.kind == tokKeyword && p.tok.text == kw
}

func (p *parser) parseSelect() (*SelectStmt, error) {
	if err := p.expectKeyword("select"); err != nil {
		return nil, err
	}
	stmt := &SelectStmt{Limit: -1}
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		stmt.Items = append(stmt.Items, item)
		if p.tok.kind != tokComma {
			break
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	if err := p.expectKeyword("from"); err != nil {
		return nil, err
	}
	if p.tok.kind != tokIdent {
		return nil, fmt.Errorf("sql: expected table name at %d", p.tok.pos)
	}
	stmt.From = p.tok.text
	if err := p.advance(); err != nil {
		return nil, err
	}
	if p.atKeyword("where") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Where = w
	}
	if p.atKeyword("group") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		for {
			g, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			stmt.GroupBy = append(stmt.GroupBy, g)
			if p.tok.kind != tokComma {
				break
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
	}
	if p.atKeyword("having") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		h, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Having = h
	}
	if p.atKeyword("order") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.atKeyword("desc") {
				item.Desc = true
				if err := p.advance(); err != nil {
					return nil, err
				}
			} else if p.atKeyword("asc") {
				if err := p.advance(); err != nil {
					return nil, err
				}
			}
			stmt.OrderBy = append(stmt.OrderBy, item)
			if p.tok.kind != tokComma {
				break
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
	}
	if p.atKeyword("limit") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.tok.kind != tokNumber {
			return nil, fmt.Errorf("sql: expected LIMIT count at %d", p.tok.pos)
		}
		n, err := strconv.Atoi(p.tok.text)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("sql: invalid LIMIT %q", p.tok.text)
		}
		stmt.Limit = n
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	return stmt, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.atKeyword("as") {
		if err := p.advance(); err != nil {
			return SelectItem{}, err
		}
		if p.tok.kind != tokIdent {
			return SelectItem{}, fmt.Errorf("sql: expected alias at %d", p.tok.pos)
		}
		item.Alias = p.tok.text
		if err := p.advance(); err != nil {
			return SelectItem{}, err
		}
	} else if p.tok.kind == tokIdent {
		// Bare alias: `COUNT(*) c`.
		item.Alias = p.tok.text
		if err := p.advance(); err != nil {
			return SelectItem{}, err
		}
	}
	return item, nil
}

// parseExpr parses with precedence OR < AND < NOT < comparison/IN <
// additive < multiplicative < unary.
func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.atKeyword("or") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: OpOr, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.atKeyword("and") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: OpAnd, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.atKeyword("not") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &Not{X: x}, nil
	}
	return p.parseComparison()
}

var cmpOps = map[string]BinaryOp{
	"=": OpEq, "!=": OpNe, "<": OpLt, "<=": OpLe, ">": OpGt, ">=": OpGe,
}

func (p *parser) parseComparison() (Expr, error) {
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	if p.tok.kind == tokOp {
		if op, ok := cmpOps[p.tok.text]; ok {
			if err := p.advance(); err != nil {
				return nil, err
			}
			r, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			return &Binary{Op: op, L: l, R: r}, nil
		}
	}
	negated := false
	if p.atKeyword("not") {
		// Must be NOT IN here.
		save := *p.lex
		saveTok := p.tok
		if err := p.advance(); err != nil {
			return nil, err
		}
		if !p.atKeyword("in") {
			*p.lex = save
			p.tok = saveTok
			return l, nil
		}
		negated = true
	}
	if p.atKeyword("in") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.tok.kind != tokLParen {
			return nil, fmt.Errorf("sql: expected ( after IN at %d", p.tok.pos)
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		var list []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			list = append(list, e)
			if p.tok.kind == tokComma {
				if err := p.advance(); err != nil {
					return nil, err
				}
				continue
			}
			break
		}
		if p.tok.kind != tokRParen {
			return nil, fmt.Errorf("sql: expected ) closing IN list at %d", p.tok.pos)
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &In{X: l, List: list, Negated: negated}, nil
	}
	return l, nil
}

func (p *parser) parseAdditive() (Expr, error) {
	l, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tokOp && (p.tok.text == "+" || p.tok.text == "-") {
		op := OpAdd
		if p.tok.text == "-" {
			op = OpSub
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseMultiplicative() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tokOp && (p.tok.text == "*" || p.tok.text == "/") {
		op := OpMul
		if p.tok.text == "/" {
			op = OpDiv
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseUnary() (Expr, error) {
	if p.tok.kind == tokOp && p.tok.text == "-" {
		if err := p.advance(); err != nil {
			return nil, err
		}
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		switch lit := x.(type) {
		case *IntLit:
			return &IntLit{Val: -lit.Val}, nil
		case *FloatLit:
			return &FloatLit{Val: -lit.Val}, nil
		}
		return &Binary{Op: OpSub, L: &IntLit{Val: 0}, R: x}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	switch p.tok.kind {
	case tokNumber:
		text := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		if strings.Contains(text, ".") {
			f, err := strconv.ParseFloat(text, 64)
			if err != nil {
				return nil, fmt.Errorf("sql: invalid float %q", text)
			}
			return &FloatLit{Val: f}, nil
		}
		n, err := strconv.ParseInt(text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("sql: invalid integer %q", text)
		}
		return &IntLit{Val: n}, nil
	case tokString:
		s := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &StringLit{Val: s}, nil
	case tokLParen:
		if err := p.advance(); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if p.tok.kind != tokRParen {
			return nil, fmt.Errorf("sql: expected ) at %d", p.tok.pos)
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		return e, nil
	case tokIdent:
		name := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.tok.kind != tokLParen {
			return &Ident{Name: name}, nil
		}
		// Function call.
		if err := p.advance(); err != nil {
			return nil, err
		}
		call := &Call{Name: strings.ToLower(name)}
		if p.tok.kind == tokOp && p.tok.text == "*" {
			call.Star = true
			if err := p.advance(); err != nil {
				return nil, err
			}
		} else if p.tok.kind != tokRParen {
			if p.atKeyword("distinct") {
				call.Distinct = true
				if err := p.advance(); err != nil {
					return nil, err
				}
			}
			for {
				a, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, a)
				if p.tok.kind != tokComma {
					break
				}
				if err := p.advance(); err != nil {
					return nil, err
				}
			}
		}
		if p.tok.kind != tokRParen {
			return nil, fmt.Errorf("sql: expected ) closing call at %d", p.tok.pos)
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		return call, nil
	}
	return nil, fmt.Errorf("sql: unexpected token %q at %d", p.tok.text, p.tok.pos)
}
