// Package value defines the scalar value model shared by the column store,
// the expression engine, and the baseline backends.
//
// PowerDrill columns hold one of three kinds of scalars: strings, signed
// 64-bit integers (which also represent timestamps as microseconds since the
// Unix epoch), and 64-bit floats. A Value is a small tagged union; columns
// and dictionaries store raw typed data and only materialize Values at API
// boundaries (query results, literals in WHERE clauses).
package value

import (
	"fmt"
	"strconv"
	"time"
)

// Kind identifies the scalar type of a Value or a column.
type Kind uint8

// The supported scalar kinds.
const (
	KindInvalid Kind = iota
	KindString
	KindInt64 // also carries timestamps (micros since epoch)
	KindFloat64
)

// String returns the lower-case name of the kind as used in schemas.
func (k Kind) String() string {
	switch k {
	case KindString:
		return "string"
	case KindInt64:
		return "int64"
	case KindFloat64:
		return "float64"
	default:
		return "invalid"
	}
}

// ParseKind converts a schema type name into a Kind.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "string":
		return KindString, nil
	case "int64", "int", "timestamp":
		return KindInt64, nil
	case "float64", "float", "double":
		return KindFloat64, nil
	}
	return KindInvalid, fmt.Errorf("value: unknown kind %q", s)
}

// Value is a scalar of one of the supported kinds. The zero Value is
// invalid; use the constructors below.
type Value struct {
	kind Kind
	str  string
	num  int64
	flt  float64
}

// String constructs a string Value.
func String(s string) Value { return Value{kind: KindString, str: s} }

// Int64 constructs an integer Value.
func Int64(v int64) Value { return Value{kind: KindInt64, num: v} }

// Float64 constructs a float Value.
func Float64(v float64) Value { return Value{kind: KindFloat64, flt: v} }

// Timestamp constructs an integer Value holding t as Unix microseconds.
func Timestamp(t time.Time) Value { return Int64(t.UnixMicro()) }

// Kind reports the kind of v.
func (v Value) Kind() Kind { return v.kind }

// IsValid reports whether v holds a value of a known kind.
func (v Value) IsValid() bool { return v.kind != KindInvalid }

// Str returns the string payload. It panics if v is not a string.
func (v Value) Str() string {
	if v.kind != KindString {
		panic("value: Str on " + v.kind.String())
	}
	return v.str
}

// Int returns the integer payload. It panics if v is not an int64.
func (v Value) Int() int64 {
	if v.kind != KindInt64 {
		panic("value: Int on " + v.kind.String())
	}
	return v.num
}

// Float returns the float payload. It panics if v is not a float64.
func (v Value) Float() float64 {
	if v.kind != KindFloat64 {
		panic("value: Float on " + v.kind.String())
	}
	return v.flt
}

// AsFloat converts any numeric Value to float64 (ints widen losslessly for
// |v| < 2^53). It panics on strings.
func (v Value) AsFloat() float64 {
	switch v.kind {
	case KindInt64:
		return float64(v.num)
	case KindFloat64:
		return v.flt
	}
	panic("value: AsFloat on " + v.kind.String())
}

// Time interprets an integer Value as Unix microseconds.
func (v Value) Time() time.Time { return time.UnixMicro(v.Int()).UTC() }

// Compare orders two values of the same kind: -1, 0 or +1. Values of
// different kinds compare by kind so heterogeneous sorts are total.
func (v Value) Compare(o Value) int {
	if v.kind != o.kind {
		if v.kind < o.kind {
			return -1
		}
		return 1
	}
	switch v.kind {
	case KindString:
		switch {
		case v.str < o.str:
			return -1
		case v.str > o.str:
			return 1
		}
	case KindInt64:
		switch {
		case v.num < o.num:
			return -1
		case v.num > o.num:
			return 1
		}
	case KindFloat64:
		switch {
		case v.flt < o.flt:
			return -1
		case v.flt > o.flt:
			return 1
		}
	}
	return 0
}

// Equal reports whether two values have the same kind and payload.
func (v Value) Equal(o Value) bool { return v.Compare(o) == 0 }

// String renders the value the way query results print it: strings
// verbatim, timestamps are not special-cased (callers format via Time).
func (v Value) String() string {
	switch v.kind {
	case KindString:
		return v.str
	case KindInt64:
		return strconv.FormatInt(v.num, 10)
	case KindFloat64:
		return strconv.FormatFloat(v.flt, 'g', -1, 64)
	}
	return "<invalid>"
}

// Parse converts a textual field into a Value of the given kind; it is the
// inverse of String for the supported kinds and is used by the CSV backend.
func Parse(kind Kind, s string) (Value, error) {
	switch kind {
	case KindString:
		return String(s), nil
	case KindInt64:
		n, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return Value{}, fmt.Errorf("value: parse int64 %q: %w", s, err)
		}
		return Int64(n), nil
	case KindFloat64:
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return Value{}, fmt.Errorf("value: parse float64 %q: %w", s, err)
		}
		return Float64(f), nil
	}
	return Value{}, fmt.Errorf("value: parse of invalid kind")
}
