package value

import (
	"testing"
	"testing/quick"
	"time"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindString:  "string",
		KindInt64:   "int64",
		KindFloat64: "float64",
		KindInvalid: "invalid",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestParseKind(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Kind
	}{
		{"string", KindString},
		{"int64", KindInt64},
		{"int", KindInt64},
		{"timestamp", KindInt64},
		{"float64", KindFloat64},
		{"float", KindFloat64},
		{"double", KindFloat64},
	} {
		got, err := ParseKind(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseKind(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
	}
	if _, err := ParseKind("blob"); err == nil {
		t.Error("ParseKind(blob) succeeded, want error")
	}
}

func TestConstructorsAndAccessors(t *testing.T) {
	s := String("ebay")
	if s.Kind() != KindString || s.Str() != "ebay" {
		t.Errorf("String: got %v %q", s.Kind(), s.Str())
	}
	i := Int64(-42)
	if i.Kind() != KindInt64 || i.Int() != -42 {
		t.Errorf("Int64: got %v %d", i.Kind(), i.Int())
	}
	f := Float64(2.5)
	if f.Kind() != KindFloat64 || f.Float() != 2.5 {
		t.Errorf("Float64: got %v %g", f.Kind(), f.Float())
	}
	if !s.IsValid() || (Value{}).IsValid() {
		t.Error("IsValid misclassifies")
	}
}

func TestAccessorPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("Str on int", func() { Int64(1).Str() })
	mustPanic("Int on string", func() { String("x").Int() })
	mustPanic("Float on int", func() { Int64(1).Float() })
	mustPanic("AsFloat on string", func() { String("x").AsFloat() })
}

func TestAsFloat(t *testing.T) {
	if got := Int64(7).AsFloat(); got != 7.0 {
		t.Errorf("Int64(7).AsFloat() = %g", got)
	}
	if got := Float64(1.5).AsFloat(); got != 1.5 {
		t.Errorf("Float64(1.5).AsFloat() = %g", got)
	}
}

func TestTimestampRoundTrip(t *testing.T) {
	now := time.Date(2011, 12, 31, 23, 59, 59, 123456000, time.UTC)
	v := Timestamp(now)
	if !v.Time().Equal(now) {
		t.Errorf("Timestamp round trip: got %v, want %v", v.Time(), now)
	}
}

func TestCompare(t *testing.T) {
	for _, tc := range []struct {
		a, b Value
		want int
	}{
		{String("a"), String("b"), -1},
		{String("b"), String("a"), 1},
		{String("a"), String("a"), 0},
		{Int64(1), Int64(2), -1},
		{Int64(2), Int64(1), 1},
		{Int64(5), Int64(5), 0},
		{Float64(1.5), Float64(2.5), -1},
		{Float64(2.5), Float64(2.5), 0},
		{String("z"), Int64(0), -1}, // kinds order: string < int64
		{Float64(0), Int64(0), 1},   // int64 < float64
	} {
		if got := tc.a.Compare(tc.b); got != tc.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestCompareAntisymmetric(t *testing.T) {
	f := func(a, b int64) bool {
		return Int64(a).Compare(Int64(b)) == -Int64(b).Compare(Int64(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	g := func(a, b string) bool {
		return String(a).Compare(String(b)) == -String(b).Compare(String(a))
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}

func TestStringRendering(t *testing.T) {
	for _, tc := range []struct {
		v    Value
		want string
	}{
		{String("cheap flights"), "cheap flights"},
		{Int64(-7), "-7"},
		{Float64(0.5), "0.5"},
		{Value{}, "<invalid>"},
	} {
		if got := tc.v.String(); got != tc.want {
			t.Errorf("String() = %q, want %q", got, tc.want)
		}
	}
}

func TestParseRoundTrip(t *testing.T) {
	f := func(n int64) bool {
		v, err := Parse(KindInt64, Int64(n).String())
		return err == nil && v.Int() == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	g := func(s string) bool {
		v, err := Parse(KindString, s)
		return err == nil && v.Str() == s
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
	if _, err := Parse(KindInt64, "not-a-number"); err == nil {
		t.Error("Parse(int64, junk) succeeded")
	}
	if _, err := Parse(KindFloat64, "x"); err == nil {
		t.Error("Parse(float64, junk) succeeded")
	}
	if _, err := Parse(KindInvalid, "x"); err == nil {
		t.Error("Parse(invalid) succeeded")
	}
	v, err := Parse(KindFloat64, "2.25")
	if err != nil || v.Float() != 2.25 {
		t.Errorf("Parse(float64, 2.25) = %v, %v", v, err)
	}
}

func TestEqual(t *testing.T) {
	if !String("a").Equal(String("a")) {
		t.Error("equal strings not Equal")
	}
	if String("a").Equal(Int64(0)) {
		t.Error("different kinds Equal")
	}
}
