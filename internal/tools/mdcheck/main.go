// Command mdcheck is the repository's markdown link checker: it walks the
// given files and directories, extracts inline links from every .md file,
// and fails when a relative link points at a file (or file#anchor) that
// does not exist. External links (http/https/mailto) are not fetched —
// CI must not depend on the network — only resolved locally when relative.
//
// Usage:
//
//	go run ./internal/tools/mdcheck README.md ROADMAP.md docs examples
//
// It exists so the docs CI job can gate on rotten links without pulling
// in any dependency: the repo has none, and this keeps it that way.
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// linkRe matches inline markdown links [text](target). Reference-style
// links and autolinks are out of scope — the repo does not use them.
var linkRe = regexp.MustCompile(`\]\(([^)\s]+)\)`)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: mdcheck <file.md|dir>...")
		os.Exit(2)
	}
	var files []string
	for _, arg := range os.Args[1:] {
		info, err := os.Stat(arg)
		if err != nil {
			fail("stat %s: %v", arg, err)
		}
		if !info.IsDir() {
			files = append(files, arg)
			continue
		}
		err = filepath.WalkDir(arg, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() && strings.HasSuffix(path, ".md") {
				files = append(files, path)
			}
			return nil
		})
		if err != nil {
			fail("walk %s: %v", arg, err)
		}
	}
	broken := 0
	for _, f := range files {
		for _, problem := range checkFile(f) {
			fmt.Fprintf(os.Stderr, "%s: %s\n", f, problem)
			broken++
		}
	}
	if broken > 0 {
		fail("%d broken link(s)", broken)
	}
	fmt.Printf("mdcheck: %d file(s) clean\n", len(files))
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "mdcheck: "+format+"\n", args...)
	os.Exit(1)
}

// checkFile returns one message per broken link in the file.
func checkFile(path string) []string {
	blob, err := os.ReadFile(path)
	if err != nil {
		return []string{err.Error()}
	}
	var problems []string
	for _, m := range linkRe.FindAllStringSubmatch(string(blob), -1) {
		target := m[1]
		switch {
		case strings.HasPrefix(target, "http://"),
			strings.HasPrefix(target, "https://"),
			strings.HasPrefix(target, "mailto:"):
			continue // external: not fetched
		case strings.HasPrefix(target, "#"):
			continue // same-file anchor: headings change too often to pin
		}
		// Strip an anchor; the file part must exist.
		file := target
		if i := strings.IndexByte(file, '#'); i >= 0 {
			file = file[:i]
		}
		if file == "" {
			continue
		}
		resolved := filepath.Join(filepath.Dir(path), filepath.FromSlash(file))
		if _, err := os.Stat(resolved); err != nil {
			problems = append(problems, fmt.Sprintf("broken link %q -> %s", target, resolved))
		}
	}
	return problems
}
