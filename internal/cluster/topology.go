package cluster

// Topology assembly: how a Cluster's shard→replica table is built.
// NewLocal and OpenShards simulate a fleet inside one process and label
// each replica with the server it "lives on" (replica r of shard i lands
// on server (i+r) mod Servers — the paper's quasi-random spread), also
// registering a leaf factory per server so the rebalancer can materialize
// a shard's replica on a different server later. FromLeaves assembles a
// tree from pre-built children (RPC clients, mixers); each child is its
// own server and no factories exist unless AddServer provides them.

import (
	"fmt"

	"powerdrill/internal/colstore"
	"powerdrill/internal/exec"
	"powerdrill/internal/memmgr"
	"powerdrill/internal/table"
)

// localServerName labels the simulated servers of NewLocal/OpenShards.
func localServerName(i int) string { return fmt.Sprintf("srv%d", i) }

// NewLocal builds an in-process cluster: the table is sharded, each shard
// imported into Replicas independent stores (a real deployment loads the
// same shard files on two machines; here each replica builds its own store
// so fault injection on one cannot corrupt the other).
func NewLocal(tbl *table.Table, opts Options) (*Cluster, error) {
	opts = opts.withDefaults()
	c := &Cluster{}
	c.opts = opts
	shards := tbl.Shard(opts.Shards)
	for i, shardTbl := range shards {
		s := &shardState{rows: int64(shardTbl.NumRows())}
		for r := 0; r < opts.Replicas; r++ {
			store, err := colstore.FromTable(shardTbl, opts.Store)
			if err != nil {
				return nil, fmt.Errorf("cluster: shard %d replica %d: %w", i, r, err)
			}
			leaf := NewLocalLeaf(fmt.Sprintf("shard%d-r%d", i, r), exec.New(store, opts.Engine))
			s.replicas = append(s.replicas, opts.newLeafState(leaf, i, r, localServerName((i+r)%opts.Servers)))
			c.leaves = append(c.leaves, leaf)
		}
		c.shards = append(c.shards, s)
	}
	// Every simulated server can build any shard's store from the kept
	// shard tables, so the rebalancer has real move targets.
	for i := 0; i < opts.Servers; i++ {
		name := localServerName(i)
		c.place.add(name, func(si int) (Leaf, error) {
			store, err := colstore.FromTable(shards[si], opts.Store)
			if err != nil {
				return nil, err
			}
			leaf := NewLocalLeaf(fmt.Sprintf("shard%d@%s", si, name), exec.New(store, opts.Engine))
			c.addLeaf(leaf)
			return leaf, nil
		})
	}
	return c, nil
}

// OpenShards assembles an in-process cluster from persisted shard
// directories, opening every shard lazily: no column data is read until a
// query touches it, and all leaves share one memory manager — so the whole
// cluster's resident column bytes respect a single budget (mgr may be nil
// for lazy loading without a budget). Replicas of a shard open the same
// directory and therefore share resident columns, which is exactly what
// the paper's primary+replica scheme wants: the replica answers from the
// same bytes — and it is also what keeps rebalancing inside the budget: a
// moved replica reopens the same directory under the same manager, so it
// shares the shard's residency instead of doubling it.
func OpenShards(dirs []string, opts Options, mgr *memmgr.Manager) (*Cluster, error) {
	opts.Shards = len(dirs)
	opts = opts.withDefaults()
	if mgr == nil {
		mgr = memmgr.New(0, "")
	}
	c := &Cluster{}
	c.opts = opts
	for i, dir := range dirs {
		s := &shardState{}
		for r := 0; r < opts.Replicas; r++ {
			store, _, err := colstore.OpenLazy(dir, mgr)
			if err != nil {
				return nil, fmt.Errorf("cluster: open shard %d replica %d: %w", i, r, err)
			}
			s.rows = int64(store.NumRows())
			leaf := NewLocalLeaf(fmt.Sprintf("shard%d-r%d", i, r), exec.New(store, opts.Engine))
			s.replicas = append(s.replicas, opts.newLeafState(leaf, i, r, localServerName((i+r)%opts.Servers)))
			c.leaves = append(c.leaves, leaf)
		}
		c.shards = append(c.shards, s)
	}
	for i := 0; i < opts.Servers; i++ {
		name := localServerName(i)
		c.place.add(name, func(si int) (Leaf, error) {
			store, _, err := colstore.OpenLazy(dirs[si], mgr)
			if err != nil {
				return nil, err
			}
			leaf := NewLocalLeaf(fmt.Sprintf("shard%d@%s", si, name), exec.New(store, opts.Engine))
			c.addLeaf(leaf)
			return leaf, nil
		})
	}
	return c, nil
}

// FromLeaves assembles a cluster from pre-built children (RPC clients,
// mixers, custom Leafs); leafSets[i] holds the replicas of shard i.
// Children that are down at assembly simply stay unhealthy until they
// come back — see NewRemoteLeaf — so a partially-up fleet still serves
// (partial) answers. Each child counts as its own server; register move
// targets with AddServer to enable the rebalancer.
func FromLeaves(leafSets [][]Leaf, opts Options) *Cluster {
	opts.Shards = len(leafSets)
	opts = opts.withDefaults()
	c := &Cluster{}
	c.opts = opts
	for i, replicas := range leafSets {
		s := &shardState{}
		for r, leaf := range replicas {
			s.replicas = append(s.replicas, opts.newLeafState(leaf, i, r, leaf.Name()))
		}
		c.shards = append(c.shards, s)
	}
	return c
}
