// Package cluster implements the distributed execution of Section 4: the
// data is sharded quasi-randomly across leaf servers (each shard then
// partitioned into chunks independently), queries are rewritten into
// multi-level aggregations over a computation tree, and every sub-query is
// sent to two servers — a primary and a replica — with the first answer
// winning, which hides stragglers and evictions on busy machines.
//
// Leaves are in-process by default (the unit tests and benchmarks run a
// whole cluster in one binary); package rpc in this directory exposes the
// same Leaf interface over net/rpc for multi-process deployments.
package cluster

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"powerdrill/internal/colstore"
	"powerdrill/internal/exec"
	"powerdrill/internal/memmgr"
	"powerdrill/internal/sql"
	"powerdrill/internal/table"
)

// Leaf answers partial queries for one shard.
type Leaf interface {
	// PartialQuery executes sql and returns the mergeable partial.
	PartialQuery(sqlText string) (*exec.Partial, error)
	// Name identifies the server in logs and stats.
	Name() string
}

// LocalLeaf wraps an engine as a Leaf, with optional fault injection.
type LocalLeaf struct {
	name   string
	engine *exec.Engine

	mu sync.Mutex
	// Straggle delays the next queries (simulating load/eviction).
	straggle time.Duration
	// fail makes the next queries error (simulating a dead machine).
	fail bool
}

// NewLocalLeaf creates an in-process leaf server.
func NewLocalLeaf(name string, engine *exec.Engine) *LocalLeaf {
	return &LocalLeaf{name: name, engine: engine}
}

// Name implements Leaf.
func (l *LocalLeaf) Name() string { return l.name }

// SetStraggle makes subsequent queries take at least d.
func (l *LocalLeaf) SetStraggle(d time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.straggle = d
}

// SetFail makes subsequent queries fail.
func (l *LocalLeaf) SetFail(fail bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.fail = fail
}

// Engine exposes the underlying engine (for stats).
func (l *LocalLeaf) Engine() *exec.Engine { return l.engine }

// PartialQuery implements Leaf.
func (l *LocalLeaf) PartialQuery(sqlText string) (*exec.Partial, error) {
	l.mu.Lock()
	straggle, fail := l.straggle, l.fail
	l.mu.Unlock()
	if straggle > 0 {
		time.Sleep(straggle)
	}
	if fail {
		return nil, fmt.Errorf("cluster: leaf %s unavailable", l.name)
	}
	stmt, err := sql.Parse(sqlText)
	if err != nil {
		return nil, err
	}
	return l.engine.RunPartial(stmt)
}

// Options configures a cluster.
type Options struct {
	// Shards is the number of data shards (default 8). The paper keeps
	// 5–7 million rows per shard in production.
	Shards int
	// Fanout is the execution-tree fanout (default 8): how many children
	// each inner node aggregates.
	Fanout int
	// Replicas per sub-query: 1 (no replication) or 2 (the paper's
	// primary + replica scheme). Default 2.
	Replicas int
	// Store configures the per-shard column stores.
	Store colstore.Options
	// Engine configures the per-shard engines.
	Engine exec.Options
	// Seed drives shard placement.
	Seed int64
}

func (o Options) withDefaults() Options {
	if o.Shards <= 0 {
		o.Shards = 8
	}
	if o.Fanout <= 1 {
		o.Fanout = 8
	}
	if o.Replicas <= 0 {
		o.Replicas = 2
	}
	if o.Replicas > 2 {
		o.Replicas = 2
	}
	if o.Engine.Gate == nil {
		// One admission gate for every leaf engine in the process: a query
		// fanning out to all shards (× replicas) shares one worker budget
		// instead of each leaf spawning its own full complement.
		o.Engine.Gate = exec.NewGate(o.Engine.Parallelism)
	}
	return o
}

// Cluster is a tree of aggregating nodes over replicated leaf servers.
type Cluster struct {
	opts Options
	// shards[i] holds the replicas serving shard i (1 or 2 entries).
	shards [][]Leaf
	// leaves are the distinct local leaves (for fault injection); remote
	// clusters leave this nil.
	leaves []*LocalLeaf

	mu    sync.Mutex
	stats Stats
}

// Stats counts distributed execution events.
type Stats struct {
	Queries         int64
	SubQueries      int64
	ReplicaRaces    int64 // sub-queries issued to two servers
	PrimaryFailures int64 // sub-queries saved by the replica
}

// NewLocal builds an in-process cluster: the table is sharded, each shard
// imported into Replicas independent stores (a real deployment loads the
// same shard files on two machines; here each replica builds its own store
// so fault injection on one cannot corrupt the other).
func NewLocal(tbl *table.Table, opts Options) (*Cluster, error) {
	opts = opts.withDefaults()
	c := &Cluster{opts: opts}
	shards := tbl.Shard(opts.Shards)
	for i, shardTbl := range shards {
		var replicas []Leaf
		for r := 0; r < opts.Replicas; r++ {
			store, err := colstore.FromTable(shardTbl, opts.Store)
			if err != nil {
				return nil, fmt.Errorf("cluster: shard %d replica %d: %w", i, r, err)
			}
			leaf := NewLocalLeaf(fmt.Sprintf("shard%d-r%d", i, r), exec.New(store, opts.Engine))
			replicas = append(replicas, leaf)
			c.leaves = append(c.leaves, leaf)
		}
		c.shards = append(c.shards, replicas)
	}
	return c, nil
}

// OpenShards assembles an in-process cluster from persisted shard
// directories, opening every shard lazily: no column data is read until a
// query touches it, and all leaves share one memory manager — so the whole
// cluster's resident column bytes respect a single budget (mgr may be nil
// for lazy loading without a budget). Replicas of a shard open the same
// directory and therefore share resident columns, which is exactly what
// the paper's primary+replica scheme wants: the replica answers from the
// same bytes.
func OpenShards(dirs []string, opts Options, mgr *memmgr.Manager) (*Cluster, error) {
	opts.Shards = len(dirs)
	opts = opts.withDefaults()
	if mgr == nil {
		mgr = memmgr.New(0, "")
	}
	c := &Cluster{opts: opts}
	for i, dir := range dirs {
		var replicas []Leaf
		for r := 0; r < opts.Replicas; r++ {
			store, _, err := colstore.OpenLazy(dir, mgr)
			if err != nil {
				return nil, fmt.Errorf("cluster: open shard %d replica %d: %w", i, r, err)
			}
			leaf := NewLocalLeaf(fmt.Sprintf("shard%d-r%d", i, r), exec.New(store, opts.Engine))
			replicas = append(replicas, leaf)
			c.leaves = append(c.leaves, leaf)
		}
		c.shards = append(c.shards, replicas)
	}
	return c, nil
}

// FromLeaves assembles a cluster from pre-built leaves (used by the RPC
// client); leafSets[i] holds the replicas of shard i.
func FromLeaves(leafSets [][]Leaf, opts Options) *Cluster {
	opts = opts.withDefaults()
	return &Cluster{opts: opts, shards: leafSets}
}

// Leaves returns the local leaves for fault injection in tests.
func (c *Cluster) Leaves() []*LocalLeaf { return c.leaves }

// Stats returns cumulative distributed-execution counters.
func (c *Cluster) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Query runs a SQL query over the whole cluster: leaves compute partials
// for their shards in parallel, inner tree levels merge Fanout children at
// a time, and the root finalizes (AVG, ORDER BY, LIMIT).
func (c *Cluster) Query(sqlText string) (*exec.Result, error) {
	stmt, err := sql.Parse(sqlText)
	if err != nil {
		return nil, err
	}
	partials, err := c.scatter(sqlText)
	if err != nil {
		return nil, err
	}
	merged, err := c.mergeTree(partials)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.stats.Queries++
	c.mu.Unlock()
	return exec.FinalizePartial(stmt, merged)
}

// scatter fans the sub-query out to every shard (each replicated).
func (c *Cluster) scatter(sqlText string) ([]*exec.Partial, error) {
	results := make([]*exec.Partial, len(c.shards))
	errs := make([]error, len(c.shards))
	var wg sync.WaitGroup
	for i, replicas := range c.shards {
		wg.Add(1)
		go func(i int, replicas []Leaf) {
			defer wg.Done()
			part, err := c.askReplicas(sqlText, replicas)
			results[i] = part
			errs[i] = err
		}(i, replicas)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("cluster: shard %d: %w", i, err)
		}
	}
	return results, nil
}

// askReplicas sends the sub-query to the primary and (if configured) the
// replica simultaneously; the first success wins. Both keep computing — the
// paper always executes on both to keep their caches in sync — which the
// goroutines naturally model: the loser finishes in the background.
func (c *Cluster) askReplicas(sqlText string, replicas []Leaf) (*exec.Partial, error) {
	c.mu.Lock()
	c.stats.SubQueries++
	if len(replicas) > 1 {
		c.stats.ReplicaRaces++
	}
	c.mu.Unlock()

	type answer struct {
		part    *exec.Partial
		err     error
		replica int
	}
	ch := make(chan answer, len(replicas))
	for r, leaf := range replicas {
		go func(r int, leaf Leaf) {
			part, err := leaf.PartialQuery(sqlText)
			ch <- answer{part, err, r}
		}(r, leaf)
	}
	var firstErr error
	for range replicas {
		a := <-ch
		if a.err == nil {
			if a.replica != 0 {
				c.mu.Lock()
				c.stats.PrimaryFailures++
				c.mu.Unlock()
			}
			return a.part, nil
		}
		if firstErr == nil {
			firstErr = a.err
		}
	}
	return nil, firstErr
}

// mergeTree merges partials Fanout at a time, simulating the levels of the
// computation tree (the rewrite SELECT…GROUP BY over inner
// SELECT…GROUP BY results, applied recursively).
func (c *Cluster) mergeTree(parts []*exec.Partial) (*exec.Partial, error) {
	if len(parts) == 0 {
		return &exec.Partial{}, nil
	}
	level := parts
	for len(level) > 1 {
		var next []*exec.Partial
		for start := 0; start < len(level); start += c.opts.Fanout {
			end := start + c.opts.Fanout
			if end > len(level) {
				end = len(level)
			}
			acc := level[start]
			for _, p := range level[start+1 : end] {
				if err := exec.MergePartials(acc, p); err != nil {
					return nil, err
				}
			}
			next = append(next, acc)
		}
		level = next
	}
	return level[0], nil
}

// InjectStragglers marks a random fraction of leaves as slow, for tail
// latency experiments.
func (c *Cluster) InjectStragglers(frac float64, delay time.Duration, seed int64) {
	r := rand.New(rand.NewSource(seed))
	for _, l := range c.leaves {
		if r.Float64() < frac {
			l.SetStraggle(delay)
		} else {
			l.SetStraggle(0)
		}
	}
}
