// Package cluster implements the distributed execution of Section 4: the
// data is sharded quasi-randomly across leaf servers (each shard then
// partitioned into chunks independently), queries are rewritten into
// multi-level aggregations over a computation tree, and every sub-query
// can be answered by a primary or a replica server.
//
// The tree is built from one abstraction: a node that answers
// PartialQuery. Leaves execute the sub-query on their shard; Mixers
// (mixer.go) are inner nodes that fan out to child nodes — leaves or
// deeper mixers — and ship one merged partial up. Both sides of every
// edge run the same dispatch machinery (dispatch.go), extracted into a
// dispatcher any node embeds, so the full straggler/failure story applies
// per level:
//
//   - Every query runs under a context deadline threaded down to the
//     leaves; a hung machine can cost at most the deadline, never a hung
//     mouse click.
//   - Sub-queries are hedged, not raced: the primary is asked first and
//     the replica only after a straggler threshold (a multiple of a moving
//     per-shard latency estimate — see hedge.go), or immediately on error.
//   - Failed attempts are re-dispatched with capped, jittered exponential
//     backoff while the deadline allows.
//   - Each child carries a consecutive-failure circuit breaker (health.go),
//     so known-dead nodes are skipped instead of timed out against, and
//     rejoin via half-open probes when they recover.
//   - When a shard exhausts replicas, retries and deadline, the query
//     degrades instead of failing: the merged answer is served with
//     Coverage < 1 and the missing shards' row counts accounted — the
//     paper's UI reports exactly this fraction next to every answer.
//
// On top of the topology, placement.go keeps a shard→server placement
// table and a rebalancer that moves hot shards' replicas onto cold
// servers using the breaker state and per-replica latency estimates the
// dispatcher already tracks.
//
// Leaves are in-process by default (the unit tests and benchmarks run a
// whole cluster in one binary); rpc.go exposes the same node interface
// over net/rpc for multi-process deployments (partials cross the wire in
// the versioned exec.EncodePartial form), and faultinject.go provides the
// fault harness the tests and pdbench's faulttol experiment drive.
package cluster

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"powerdrill/internal/colstore"
	"powerdrill/internal/exec"
	"powerdrill/internal/sql"
)

// Leaf answers partial queries for one subtree: a real leaf covers one
// shard, a Mixer covers every shard below it. The coordinator does not
// distinguish the two.
type Leaf interface {
	// PartialQuery executes sql and returns the mergeable partial. The
	// context carries the query's deadline: implementations must return
	// promptly (with ctx.Err or a partial already computed) once it
	// expires.
	PartialQuery(ctx context.Context, sqlText string) (*exec.Partial, error)
	// Name identifies the server in logs and stats.
	Name() string
}

// RowCounter is an optional Leaf extension: nodes that can report how many
// rows they serve without running a query. The dispatcher asks it (over
// RPC: the Leaf.Stat method) for shards whose row counts are still
// unknown, concurrently with the first query's scatter — so Coverage is
// exact from the first answer even for shards that never respond.
type RowCounter interface {
	NumRows(ctx context.Context) (int64, error)
}

// LocalLeaf wraps an engine as a Leaf, with composable fault injection.
type LocalLeaf struct {
	name   string
	engine *exec.Engine
	inj    Injector
}

// NewLocalLeaf creates an in-process leaf server.
func NewLocalLeaf(name string, engine *exec.Engine) *LocalLeaf {
	l := &LocalLeaf{name: name, engine: engine}
	l.inj.name = name
	return l
}

// Name implements Leaf.
func (l *LocalLeaf) Name() string { return l.name }

// Inject exposes the leaf's fault injector.
func (l *LocalLeaf) Inject() *Injector { return &l.inj }

// SetStraggle makes subsequent queries take at least d.
func (l *LocalLeaf) SetStraggle(d time.Duration) { l.inj.SetStraggle(d) }

// SetFail makes subsequent queries fail.
func (l *LocalLeaf) SetFail(fail bool) { l.inj.SetFail(fail) }

// Engine exposes the underlying engine (for stats).
func (l *LocalLeaf) Engine() *exec.Engine { return l.engine }

// PartialQuery implements Leaf. Injected latency waits are abandoned when
// ctx expires; the engine call itself always runs to completion (the
// paper executes on both replicas regardless, to keep their caches warm).
func (l *LocalLeaf) PartialQuery(ctx context.Context, sqlText string) (*exec.Partial, error) {
	if err := l.inj.admit(ctx); err != nil {
		return nil, err
	}
	stmt, err := sql.Parse(sqlText)
	if err != nil {
		return nil, err
	}
	return l.engine.RunPartial(stmt)
}

// NumRows implements RowCounter. It deliberately bypasses the fault
// injector: a leaf whose queries fail can still report its shard size,
// which is what lets Coverage degrade exactly.
func (l *LocalLeaf) NumRows(ctx context.Context) (int64, error) {
	return int64(l.engine.Store().NumRows()), nil
}

// Options configures a cluster.
type Options struct {
	// Shards is the number of data shards (default 8). The paper keeps
	// 5–7 million rows per shard in production.
	Shards int
	// Fanout is the execution-tree fanout (default 8): how many children
	// each inner node aggregates.
	Fanout int
	// Replicas per sub-query: 1 (no replication) or 2 (the paper's
	// primary + replica scheme). Default 2.
	Replicas int
	// Servers is how many placement servers NewLocal/OpenShards spread
	// replicas over (default Replicas). With Servers > Replicas some
	// servers start empty — spare capacity the rebalancer can move hot
	// shards' replicas onto.
	Servers int
	// Store configures the per-shard column stores.
	Store colstore.Options
	// Engine configures the per-shard engines.
	Engine exec.Options
	// Seed drives shard placement.
	Seed int64

	// Deadline bounds each Query's wall clock (0 = none). QueryContext
	// callers can carry their own deadline instead; both compose.
	Deadline time.Duration
	// HedgeMultiplier scales the moving per-shard latency estimate into
	// the straggler threshold: the replica is asked after
	// multiplier × estimate (default 3). While a shard has no estimate
	// yet, the replica is asked immediately (the seed's race-both).
	HedgeMultiplier float64
	// HedgeMinDelay / HedgeMaxDelay clamp the hedge delay
	// (defaults 1ms / 1s).
	HedgeMinDelay time.Duration
	HedgeMaxDelay time.Duration
	// MaxRetries is how many re-dispatches beyond the first pass over the
	// replicas a sub-query may use (default 2; negative disables).
	// Sub-queries are idempotent reads, so re-dispatch is always safe.
	MaxRetries int
	// RetryBackoff seeds the capped, jittered exponential backoff between
	// re-dispatches (default 2ms).
	RetryBackoff time.Duration
	// BreakerThreshold consecutive failures trip a leaf's circuit breaker
	// (default 3; negative disables health tracking). An open breaker
	// skips the leaf until BreakerCooldown (default 1s) has passed, then
	// a single half-open probe decides.
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// MinCoverage fails queries whose merged answer covers less than this
	// fraction of rows (default 0: serve any partial answer; 1 restores
	// all-shards-or-error).
	MinCoverage float64
}

func (o Options) withDefaults() Options {
	if o.Shards <= 0 {
		o.Shards = 8
	}
	if o.Fanout <= 1 {
		o.Fanout = 8
	}
	if o.Replicas <= 0 {
		o.Replicas = 2
	}
	if o.Replicas > 2 {
		o.Replicas = 2
	}
	if o.Servers < o.Replicas {
		o.Servers = o.Replicas
	}
	if o.HedgeMultiplier <= 0 {
		o.HedgeMultiplier = 3
	}
	if o.HedgeMinDelay <= 0 {
		o.HedgeMinDelay = time.Millisecond
	}
	if o.HedgeMaxDelay <= 0 {
		o.HedgeMaxDelay = time.Second
	}
	if o.MaxRetries == 0 {
		o.MaxRetries = 2
	}
	if o.MaxRetries < 0 {
		o.MaxRetries = 0
	}
	if o.RetryBackoff <= 0 {
		o.RetryBackoff = 2 * time.Millisecond
	}
	if o.BreakerThreshold == 0 {
		o.BreakerThreshold = 3
	}
	if o.BreakerCooldown <= 0 {
		o.BreakerCooldown = time.Second
	}
	if o.Engine.Gate == nil {
		// One admission gate for every leaf engine in the process: a query
		// fanning out to all shards (× replicas) shares one worker budget
		// instead of each leaf spawning its own full complement.
		o.Engine.Gate = exec.NewGate(o.Engine.Parallelism)
	}
	return o
}

// newLeafState wires a leaf into shard si at replica index r on server
// srv under o's health policy.
func (o Options) newLeafState(leaf Leaf, si, r int, srv string) *leafState {
	ls := &leafState{leaf: leaf, shard: si, replica: r, server: srv}
	if o.BreakerThreshold > 0 {
		ls.br = newBreaker(o.BreakerThreshold, o.BreakerCooldown)
	}
	return ls
}

// Cluster is the root of the serving tree: a dispatcher over replicated
// children (leaves or mixers) that finalizes merged partials into results.
type Cluster struct {
	dispatcher
	place placement
	// leaves are the distinct local leaves (for fault injection); remote
	// clusters leave this nil. Guarded by dispatcher.mu — the rebalancer
	// appends while queries run.
	leaves []*LocalLeaf
}

// Leaves returns the local leaves for fault injection in tests.
func (c *Cluster) Leaves() []*LocalLeaf {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]*LocalLeaf(nil), c.leaves...)
}

// addLeaf records a locally-created leaf.
func (c *Cluster) addLeaf(l *LocalLeaf) {
	c.mu.Lock()
	c.leaves = append(c.leaves, l)
	c.mu.Unlock()
}

// Query runs a SQL query over the whole cluster under Options.Deadline:
// leaves compute partials for their shards in parallel, inner tree levels
// merge Fanout children at a time, and the root finalizes (AVG, ORDER BY,
// LIMIT).
func (c *Cluster) Query(sqlText string) (*exec.Result, error) {
	return c.QueryContext(context.Background(), sqlText)
}

// QueryContext is Query under a caller-supplied context; Options.Deadline
// (when set) still caps the total wall clock. When shards are unreachable
// within the deadline the merged answer is served anyway with
// Result.Coverage < 1, unless Options.MinCoverage forbids it. The error is
// non-nil only when parsing fails, merging fails, no shard answered at
// all, or coverage fell below MinCoverage.
func (c *Cluster) QueryContext(ctx context.Context, sqlText string) (*exec.Result, error) {
	stmt, err := sql.Parse(sqlText)
	if err != nil {
		return nil, err
	}
	if c.opts.Deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.opts.Deadline)
		defer cancel()
	}
	merged, missing, err := c.gather(ctx, sqlText)
	if err != nil {
		return nil, err
	}
	coverage := 1.0
	if merged.Stats.RowsTotal > 0 {
		coverage = float64(merged.Stats.RowsCovered) / float64(merged.Stats.RowsTotal)
	}
	if len(missing) > 0 && coverage < c.opts.MinCoverage {
		return nil, fmt.Errorf("cluster: answer covers %.1f%% of rows (%d of %d shards missing), below MinCoverage %.1f%%",
			100*coverage, len(missing), len(c.shards), 100*c.opts.MinCoverage)
	}
	c.mu.Lock()
	c.stats.Queries++
	if len(missing) > 0 {
		c.stats.PartialAnswers++
	}
	c.mu.Unlock()
	return exec.FinalizePartial(stmt, merged)
}

// InjectStragglers marks a random fraction of leaves as slow, for tail
// latency experiments.
func (c *Cluster) InjectStragglers(frac float64, delay time.Duration, seed int64) {
	r := rand.New(rand.NewSource(seed))
	for _, l := range c.Leaves() {
		if r.Float64() < frac {
			l.SetStraggle(delay)
		} else {
			l.SetStraggle(0)
		}
	}
}
