// Package cluster implements the distributed execution of Section 4: the
// data is sharded quasi-randomly across leaf servers (each shard then
// partitioned into chunks independently), queries are rewritten into
// multi-level aggregations over a computation tree, and every sub-query
// can be answered by a primary or a replica server.
//
// The serving tree is built for a busy shared fleet where stragglers,
// evictions and dead machines are the steady state, not the exception:
//
//   - Every query runs under a context deadline threaded down to the
//     leaves; a hung machine can cost at most the deadline, never a hung
//     mouse click.
//   - Sub-queries are hedged, not raced: the primary is asked first and
//     the replica only after a straggler threshold (a multiple of a moving
//     per-shard latency estimate — see hedge.go), or immediately on error.
//   - Failed attempts are re-dispatched with capped, jittered exponential
//     backoff while the deadline allows.
//   - Each leaf carries a consecutive-failure circuit breaker (health.go),
//     so known-dead leaves are skipped instead of timed out against, and
//     rejoin via half-open probes when they recover.
//   - When a shard exhausts replicas, retries and deadline, the query
//     degrades instead of failing: the merged answer is served with
//     Coverage < 1 and the missing shards' row counts accounted — the
//     paper's UI reports exactly this fraction next to every answer.
//
// Leaves are in-process by default (the unit tests and benchmarks run a
// whole cluster in one binary); rpc.go in this directory exposes the same
// Leaf interface over net/rpc for multi-process deployments, and
// faultinject.go provides the fault harness the tests and pdbench's
// faulttol experiment drive.
package cluster

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"powerdrill/internal/colstore"
	"powerdrill/internal/exec"
	"powerdrill/internal/memmgr"
	"powerdrill/internal/sql"
	"powerdrill/internal/table"
)

// Leaf answers partial queries for one shard.
type Leaf interface {
	// PartialQuery executes sql and returns the mergeable partial. The
	// context carries the query's deadline: implementations must return
	// promptly (with ctx.Err or a partial already computed) once it
	// expires.
	PartialQuery(ctx context.Context, sqlText string) (*exec.Partial, error)
	// Name identifies the server in logs and stats.
	Name() string
}

// LocalLeaf wraps an engine as a Leaf, with composable fault injection.
type LocalLeaf struct {
	name   string
	engine *exec.Engine
	inj    Injector
}

// NewLocalLeaf creates an in-process leaf server.
func NewLocalLeaf(name string, engine *exec.Engine) *LocalLeaf {
	l := &LocalLeaf{name: name, engine: engine}
	l.inj.name = name
	return l
}

// Name implements Leaf.
func (l *LocalLeaf) Name() string { return l.name }

// Inject exposes the leaf's fault injector.
func (l *LocalLeaf) Inject() *Injector { return &l.inj }

// SetStraggle makes subsequent queries take at least d.
func (l *LocalLeaf) SetStraggle(d time.Duration) { l.inj.SetStraggle(d) }

// SetFail makes subsequent queries fail.
func (l *LocalLeaf) SetFail(fail bool) { l.inj.SetFail(fail) }

// Engine exposes the underlying engine (for stats).
func (l *LocalLeaf) Engine() *exec.Engine { return l.engine }

// PartialQuery implements Leaf. Injected latency waits are abandoned when
// ctx expires; the engine call itself always runs to completion (the
// paper executes on both replicas regardless, to keep their caches warm).
func (l *LocalLeaf) PartialQuery(ctx context.Context, sqlText string) (*exec.Partial, error) {
	if err := l.inj.admit(ctx); err != nil {
		return nil, err
	}
	stmt, err := sql.Parse(sqlText)
	if err != nil {
		return nil, err
	}
	return l.engine.RunPartial(stmt)
}

// Options configures a cluster.
type Options struct {
	// Shards is the number of data shards (default 8). The paper keeps
	// 5–7 million rows per shard in production.
	Shards int
	// Fanout is the execution-tree fanout (default 8): how many children
	// each inner node aggregates.
	Fanout int
	// Replicas per sub-query: 1 (no replication) or 2 (the paper's
	// primary + replica scheme). Default 2.
	Replicas int
	// Store configures the per-shard column stores.
	Store colstore.Options
	// Engine configures the per-shard engines.
	Engine exec.Options
	// Seed drives shard placement.
	Seed int64

	// Deadline bounds each Query's wall clock (0 = none). QueryContext
	// callers can carry their own deadline instead; both compose.
	Deadline time.Duration
	// HedgeMultiplier scales the moving per-shard latency estimate into
	// the straggler threshold: the replica is asked after
	// multiplier × estimate (default 3). While a shard has no estimate
	// yet, the replica is asked immediately (the seed's race-both).
	HedgeMultiplier float64
	// HedgeMinDelay / HedgeMaxDelay clamp the hedge delay
	// (defaults 1ms / 1s).
	HedgeMinDelay time.Duration
	HedgeMaxDelay time.Duration
	// MaxRetries is how many re-dispatches beyond the first pass over the
	// replicas a sub-query may use (default 2; negative disables).
	// Sub-queries are idempotent reads, so re-dispatch is always safe.
	MaxRetries int
	// RetryBackoff seeds the capped, jittered exponential backoff between
	// re-dispatches (default 2ms).
	RetryBackoff time.Duration
	// BreakerThreshold consecutive failures trip a leaf's circuit breaker
	// (default 3; negative disables health tracking). An open breaker
	// skips the leaf until BreakerCooldown (default 1s) has passed, then
	// a single half-open probe decides.
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// MinCoverage fails queries whose merged answer covers less than this
	// fraction of rows (default 0: serve any partial answer; 1 restores
	// all-shards-or-error).
	MinCoverage float64
}

func (o Options) withDefaults() Options {
	if o.Shards <= 0 {
		o.Shards = 8
	}
	if o.Fanout <= 1 {
		o.Fanout = 8
	}
	if o.Replicas <= 0 {
		o.Replicas = 2
	}
	if o.Replicas > 2 {
		o.Replicas = 2
	}
	if o.HedgeMultiplier <= 0 {
		o.HedgeMultiplier = 3
	}
	if o.HedgeMinDelay <= 0 {
		o.HedgeMinDelay = time.Millisecond
	}
	if o.HedgeMaxDelay <= 0 {
		o.HedgeMaxDelay = time.Second
	}
	if o.MaxRetries == 0 {
		o.MaxRetries = 2
	}
	if o.MaxRetries < 0 {
		o.MaxRetries = 0
	}
	if o.RetryBackoff <= 0 {
		o.RetryBackoff = 2 * time.Millisecond
	}
	if o.BreakerThreshold == 0 {
		o.BreakerThreshold = 3
	}
	if o.BreakerCooldown <= 0 {
		o.BreakerCooldown = time.Second
	}
	if o.Engine.Gate == nil {
		// One admission gate for every leaf engine in the process: a query
		// fanning out to all shards (× replicas) shares one worker budget
		// instead of each leaf spawning its own full complement.
		o.Engine.Gate = exec.NewGate(o.Engine.Parallelism)
	}
	return o
}

// newLeafState wires a leaf into shard si at replica index r under o's
// health policy.
func (o Options) newLeafState(leaf Leaf, si, r int) *leafState {
	ls := &leafState{leaf: leaf, shard: si, replica: r}
	if o.BreakerThreshold > 0 {
		ls.br = newBreaker(o.BreakerThreshold, o.BreakerCooldown)
	}
	return ls
}

// shardState holds one shard's replicas and its dispatch-side state.
type shardState struct {
	replicas []*leafState
	lat      latEstimate

	mu   sync.Mutex
	rows int64 // known row count (0 until learned; see learnRows)
}

// learnRows records the shard's row count from a successful partial, so
// coverage accounting can charge the shard even after its leaves die.
// NewLocal/OpenShards know it at assembly; RPC clusters learn it from the
// first answer.
func (s *shardState) learnRows(n int64) {
	if n <= 0 {
		return
	}
	s.mu.Lock()
	s.rows = n
	s.mu.Unlock()
}

func (s *shardState) knownRows() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rows
}

// Cluster is a tree of aggregating nodes over replicated leaf servers.
type Cluster struct {
	opts   Options
	shards []*shardState
	// leaves are the distinct local leaves (for fault injection); remote
	// clusters leave this nil.
	leaves []*LocalLeaf

	mu    sync.Mutex
	stats Stats
}

// Stats counts distributed execution events.
type Stats struct {
	Queries         int64
	SubQueries      int64
	ReplicaRaces    int64 // sub-queries issued to more than one server
	PrimaryFailures int64 // sub-queries answered by a non-primary replica
	// Hedges counts secondary dispatches fired by the straggler threshold
	// (including the immediate hedge on shards with no latency estimate).
	Hedges int64
	// Retries counts re-dispatches after a replica error: speculative
	// immediate ones and backoff retries alike.
	Retries int64
	// DeadlineExpired counts sub-queries abandoned because the query
	// deadline expired before any replica answered.
	DeadlineExpired int64
	// ShardsMissing counts shard answers missing from served results —
	// every one of them degraded a query's coverage below 1.
	ShardsMissing int64
	// PartialAnswers counts queries served with Coverage < 1.
	PartialAnswers int64
	// BreakerOpens counts circuit breakers tripping open; BreakerSkips
	// counts dispatches skipped because a breaker was open.
	BreakerOpens int64
	BreakerSkips int64
}

// NewLocal builds an in-process cluster: the table is sharded, each shard
// imported into Replicas independent stores (a real deployment loads the
// same shard files on two machines; here each replica builds its own store
// so fault injection on one cannot corrupt the other).
func NewLocal(tbl *table.Table, opts Options) (*Cluster, error) {
	opts = opts.withDefaults()
	c := &Cluster{opts: opts}
	shards := tbl.Shard(opts.Shards)
	for i, shardTbl := range shards {
		s := &shardState{rows: int64(shardTbl.NumRows())}
		for r := 0; r < opts.Replicas; r++ {
			store, err := colstore.FromTable(shardTbl, opts.Store)
			if err != nil {
				return nil, fmt.Errorf("cluster: shard %d replica %d: %w", i, r, err)
			}
			leaf := NewLocalLeaf(fmt.Sprintf("shard%d-r%d", i, r), exec.New(store, opts.Engine))
			s.replicas = append(s.replicas, opts.newLeafState(leaf, i, r))
			c.leaves = append(c.leaves, leaf)
		}
		c.shards = append(c.shards, s)
	}
	return c, nil
}

// OpenShards assembles an in-process cluster from persisted shard
// directories, opening every shard lazily: no column data is read until a
// query touches it, and all leaves share one memory manager — so the whole
// cluster's resident column bytes respect a single budget (mgr may be nil
// for lazy loading without a budget). Replicas of a shard open the same
// directory and therefore share resident columns, which is exactly what
// the paper's primary+replica scheme wants: the replica answers from the
// same bytes.
func OpenShards(dirs []string, opts Options, mgr *memmgr.Manager) (*Cluster, error) {
	opts.Shards = len(dirs)
	opts = opts.withDefaults()
	if mgr == nil {
		mgr = memmgr.New(0, "")
	}
	c := &Cluster{opts: opts}
	for i, dir := range dirs {
		s := &shardState{}
		for r := 0; r < opts.Replicas; r++ {
			store, _, err := colstore.OpenLazy(dir, mgr)
			if err != nil {
				return nil, fmt.Errorf("cluster: open shard %d replica %d: %w", i, r, err)
			}
			s.rows = int64(store.NumRows())
			leaf := NewLocalLeaf(fmt.Sprintf("shard%d-r%d", i, r), exec.New(store, opts.Engine))
			s.replicas = append(s.replicas, opts.newLeafState(leaf, i, r))
			c.leaves = append(c.leaves, leaf)
		}
		c.shards = append(c.shards, s)
	}
	return c, nil
}

// FromLeaves assembles a cluster from pre-built leaves (used by the RPC
// client); leafSets[i] holds the replicas of shard i. Leaves that are down
// at assembly simply stay unhealthy until they come back — see
// NewRemoteLeaf — so a partially-up fleet still serves (partial) answers.
func FromLeaves(leafSets [][]Leaf, opts Options) *Cluster {
	opts.Shards = len(leafSets)
	opts = opts.withDefaults()
	c := &Cluster{opts: opts}
	for i, replicas := range leafSets {
		s := &shardState{}
		for r, leaf := range replicas {
			s.replicas = append(s.replicas, opts.newLeafState(leaf, i, r))
		}
		c.shards = append(c.shards, s)
	}
	return c
}

// Leaves returns the local leaves for fault injection in tests.
func (c *Cluster) Leaves() []*LocalLeaf { return c.leaves }

// Stats returns cumulative distributed-execution counters.
func (c *Cluster) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Health reports every leaf's dispatch-side health (breaker state,
// success/failure counts, last error), in shard-then-replica order.
func (c *Cluster) Health() []LeafHealth {
	var out []LeafHealth
	for _, s := range c.shards {
		for _, ls := range s.replicas {
			out = append(out, ls.health())
		}
	}
	return out
}

// bump adds n to one stats counter.
func (c *Cluster) bump(field *int64, n int64) {
	c.mu.Lock()
	*field += n
	c.mu.Unlock()
}

// Query runs a SQL query over the whole cluster under Options.Deadline:
// leaves compute partials for their shards in parallel, inner tree levels
// merge Fanout children at a time, and the root finalizes (AVG, ORDER BY,
// LIMIT).
func (c *Cluster) Query(sqlText string) (*exec.Result, error) {
	return c.QueryContext(context.Background(), sqlText)
}

// QueryContext is Query under a caller-supplied context; Options.Deadline
// (when set) still caps the total wall clock. When shards are unreachable
// within the deadline the merged answer is served anyway with
// Result.Coverage < 1, unless Options.MinCoverage forbids it. The error is
// non-nil only when parsing fails, merging fails, no shard answered at
// all, or coverage fell below MinCoverage.
func (c *Cluster) QueryContext(ctx context.Context, sqlText string) (*exec.Result, error) {
	stmt, err := sql.Parse(sqlText)
	if err != nil {
		return nil, err
	}
	if c.opts.Deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.opts.Deadline)
		defer cancel()
	}
	partials, missing, err := c.scatter(ctx, sqlText)
	if err != nil {
		return nil, err
	}
	merged, err := c.mergeTree(partials)
	if err != nil {
		return nil, err
	}
	// Coverage accounting: shards that never answered contribute their
	// (known) row counts to the denominator only. A remote shard that has
	// never answered has no known count — it is still counted in
	// ShardsMissing, but cannot lower the fraction.
	for _, si := range missing {
		merged.Stats.RowsTotal += c.shards[si].knownRows()
		merged.Stats.ShardsMissing++
	}
	coverage := 1.0
	if merged.Stats.RowsTotal > 0 {
		coverage = float64(merged.Stats.RowsCovered) / float64(merged.Stats.RowsTotal)
	}
	if len(missing) > 0 && coverage < c.opts.MinCoverage {
		return nil, fmt.Errorf("cluster: answer covers %.1f%% of rows (%d of %d shards missing), below MinCoverage %.1f%%",
			100*coverage, len(missing), len(c.shards), 100*c.opts.MinCoverage)
	}
	c.mu.Lock()
	c.stats.Queries++
	if len(missing) > 0 {
		c.stats.ShardsMissing += int64(len(missing))
		c.stats.PartialAnswers++
	}
	c.mu.Unlock()
	return exec.FinalizePartial(stmt, merged)
}

// scatter fans the sub-query out to every shard. It returns the partials
// that arrived and the indices of shards that did not; the error is
// non-nil only when not a single shard answered.
func (c *Cluster) scatter(ctx context.Context, sqlText string) ([]*exec.Partial, []int, error) {
	results := make([]*exec.Partial, len(c.shards))
	errs := make([]error, len(c.shards))
	var wg sync.WaitGroup
	for i := range c.shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = c.askShard(ctx, i, sqlText)
		}(i)
	}
	wg.Wait()
	partials := make([]*exec.Partial, 0, len(c.shards))
	var missing []int
	var firstErr error
	for i, err := range errs {
		if err != nil {
			missing = append(missing, i)
			if firstErr == nil {
				firstErr = fmt.Errorf("cluster: shard %d: %w", i, err)
			}
			continue
		}
		partials = append(partials, results[i])
	}
	if len(partials) == 0 && firstErr != nil {
		return nil, nil, firstErr
	}
	return partials, missing, nil
}

// askShard answers one shard's sub-query with tiered hedging:
//
//  1. Dispatch to the primary (breaker-open replicas are skipped).
//  2. If it has not answered within the hedge delay, dispatch the replica
//     too; the first success wins. An error brings the replica in
//     immediately (speculative re-dispatch).
//  3. When every allowed replica has been tried, re-dispatch with capped
//     jittered backoff until MaxRetries or the deadline runs out.
func (c *Cluster) askShard(ctx context.Context, si int, sqlText string) (*exec.Partial, error) {
	s := c.shards[si]
	c.bump(&c.stats.SubQueries, 1)

	// Dispatch order: primary first, breaker-open leaves skipped. If every
	// breaker is open the shard fails fast — it will be probed again after
	// the cooldown — instead of burning the deadline on known-dead leaves.
	now := time.Now()
	order := make([]*leafState, 0, len(s.replicas))
	var skipped int64
	for _, ls := range s.replicas {
		if ls.allowed(now) {
			order = append(order, ls)
		} else {
			skipped++
		}
	}
	if skipped > 0 {
		c.bump(&c.stats.BreakerSkips, skipped)
	}
	if len(order) == 0 {
		return nil, fmt.Errorf("shard %d: all %d replicas circuit-open", si, len(s.replicas))
	}

	type answer struct {
		part    *exec.Partial
		err     error
		ls      *leafState
		elapsed time.Duration
	}
	// Buffered for every launch this sub-query can possibly make, so late
	// finishers never block (they just finish in the background, like the
	// paper's losing replica).
	ch := make(chan answer, len(order)*(1+c.opts.MaxRetries)+2)
	inflight := 0
	launch := func(ls *leafState) {
		inflight++
		go func() {
			start := time.Now()
			part, err := ls.leaf.PartialQuery(ctx, sqlText)
			ch <- answer{part, err, ls, time.Since(start)}
		}()
	}

	next := 0 // next undispatched entry in order
	launch(order[next])
	next++

	// The hedge timer is armed only while an undispatched replica remains.
	var hedgeCh <-chan time.Time
	if next < len(order) {
		t := time.NewTimer(c.opts.hedgeDelay(&s.lat))
		defer t.Stop()
		hedgeCh = t.C
	}

	retriesLeft := c.opts.MaxRetries
	retryAttempt := 0            // backoff exponent + rotation cursor
	var retryCh <-chan time.Time // pending backoff timer
	raced := false
	var firstErr error

	finish := func(a answer) *exec.Partial {
		a.ls.success()
		s.lat.observe(a.elapsed)
		s.learnRows(a.part.Stats.RowsTotal)
		if a.ls.replica != 0 {
			c.bump(&c.stats.PrimaryFailures, 1)
		}
		return a.part
	}
	markRaced := func(ls *leafState) {
		if !raced && ls != order[0] {
			raced = true
			c.bump(&c.stats.ReplicaRaces, 1)
		}
	}

	for {
		select {
		case a := <-ch:
			inflight--
			if a.err == nil {
				// Record outcomes that already arrived before returning the
				// win: dropping a buffered failure would slow its breaker.
			drain:
				for {
					select {
					case b := <-ch:
						inflight--
						if b.err == nil {
							b.ls.success()
						} else if b.ls.failure(b.err, time.Now()) {
							c.bump(&c.stats.BreakerOpens, 1)
						}
					default:
						break drain
					}
				}
				return finish(a), nil
			}
			if a.ls.failure(a.err, time.Now()) {
				c.bump(&c.stats.BreakerOpens, 1)
			}
			if firstErr == nil {
				firstErr = a.err
			}
			if ctx.Err() != nil {
				// Deadline already gone: no point re-dispatching.
				if inflight == 0 {
					c.bump(&c.stats.DeadlineExpired, 1)
					return nil, firstErr
				}
				continue
			}
			switch {
			case next < len(order):
				// Speculative re-dispatch: bring the replica in now
				// instead of waiting for the hedge timer.
				hedgeCh = nil
				c.bump(&c.stats.Retries, 1)
				markRaced(order[next])
				launch(order[next])
				next++
			case retriesLeft > 0 && retryCh == nil:
				retriesLeft--
				c.bump(&c.stats.Retries, 1)
				t := time.NewTimer(backoffDelay(c.opts.RetryBackoff, c.opts.HedgeMaxDelay, retryAttempt))
				defer t.Stop()
				retryCh = t.C
			case inflight == 0 && retryCh == nil:
				return nil, firstErr
			}
		case <-hedgeCh:
			hedgeCh = nil
			c.bump(&c.stats.Hedges, 1)
			markRaced(order[next])
			launch(order[next])
			next++
		case <-retryCh:
			retryCh = nil
			target := order[retryAttempt%len(order)]
			retryAttempt++
			markRaced(target)
			launch(target)
		case <-ctx.Done():
			// The deadline expired with attempts still in flight. Leaves
			// abandon injected waits and RPC calls promptly on ctx, so the
			// launched goroutines drain into the buffered channel without
			// anyone reading — no goroutine outlives its leaf call.
			c.bump(&c.stats.DeadlineExpired, 1)
			if firstErr != nil {
				return nil, firstErr
			}
			return nil, ctx.Err()
		}
	}
}

// mergeTree merges partials Fanout at a time, simulating the levels of the
// computation tree (the rewrite SELECT…GROUP BY over inner
// SELECT…GROUP BY results, applied recursively).
func (c *Cluster) mergeTree(parts []*exec.Partial) (*exec.Partial, error) {
	if len(parts) == 0 {
		return &exec.Partial{}, nil
	}
	level := parts
	for len(level) > 1 {
		var next []*exec.Partial
		for start := 0; start < len(level); start += c.opts.Fanout {
			end := start + c.opts.Fanout
			if end > len(level) {
				end = len(level)
			}
			acc := level[start]
			for _, p := range level[start+1 : end] {
				if err := exec.MergePartials(acc, p); err != nil {
					return nil, err
				}
			}
			next = append(next, acc)
		}
		level = next
	}
	return level[0], nil
}

// InjectStragglers marks a random fraction of leaves as slow, for tail
// latency experiments.
func (c *Cluster) InjectStragglers(frac float64, delay time.Duration, seed int64) {
	r := rand.New(rand.NewSource(seed))
	for _, l := range c.leaves {
		if r.Float64() < frac {
			l.SetStraggle(delay)
		} else {
			l.SetStraggle(0)
		}
	}
}
