package cluster

import (
	"fmt"
	"net"
	"net/rpc"

	"powerdrill/internal/exec"
	"powerdrill/internal/sql"
	"powerdrill/internal/value"
)

// The RPC layer lets leaf servers run as separate processes (cmd/pdserver)
// while the coordinator keeps the exact same execution tree. Values cross
// the wire as explicit tagged unions because value.Value's fields are
// unexported by design.

// WireValue is the gob-encodable form of value.Value.
type WireValue struct {
	Kind uint8
	Str  string
	Int  int64
	Flt  float64
}

// toWire converts a value for transport.
func toWire(v value.Value) WireValue {
	w := WireValue{Kind: uint8(v.Kind())}
	switch v.Kind() {
	case value.KindString:
		w.Str = v.Str()
	case value.KindInt64:
		w.Int = v.Int()
	case value.KindFloat64:
		w.Flt = v.Float()
	}
	return w
}

// fromWire converts a transported value back.
func fromWire(w WireValue) value.Value {
	switch value.Kind(w.Kind) {
	case value.KindString:
		return value.String(w.Str)
	case value.KindInt64:
		return value.Int64(w.Int)
	case value.KindFloat64:
		return value.Float64(w.Flt)
	}
	return value.Value{}
}

// WireCell mirrors exec.PartialCell.
type WireCell struct {
	Count    int64
	SumI     int64
	SumF     float64
	SumIsInt bool
	HasMin   bool
	Min      WireValue
	HasMax   bool
	Max      WireValue
	Sketch   []byte
}

// WireGroup mirrors exec.PartialGroup.
type WireGroup struct {
	Keys  []WireValue
	Cells []WireCell
}

// WirePartial mirrors exec.Partial.
type WirePartial struct {
	Columns []string
	Groups  []WireGroup
	Stats   exec.QueryStats
}

// toWirePartial converts a partial for transport.
func toWirePartial(p *exec.Partial) *WirePartial {
	out := &WirePartial{Columns: p.Columns, Stats: p.Stats}
	for _, g := range p.Groups {
		wg := WireGroup{}
		for _, k := range g.Keys {
			wg.Keys = append(wg.Keys, toWire(k))
		}
		for _, c := range g.Cells {
			wc := WireCell{
				Count: c.Count, SumI: c.SumI, SumF: c.SumF, SumIsInt: c.SumIsInt,
				Sketch: c.Sketch,
			}
			if c.Min.IsValid() {
				wc.HasMin, wc.Min = true, toWire(c.Min)
			}
			if c.Max.IsValid() {
				wc.HasMax, wc.Max = true, toWire(c.Max)
			}
			wg.Cells = append(wg.Cells, wc)
		}
		out.Groups = append(out.Groups, wg)
	}
	return out
}

// fromWirePartial converts a transported partial back.
func fromWirePartial(w *WirePartial) *exec.Partial {
	out := &exec.Partial{Columns: w.Columns, Stats: w.Stats}
	for _, g := range w.Groups {
		pg := exec.PartialGroup{}
		for _, k := range g.Keys {
			pg.Keys = append(pg.Keys, fromWire(k))
		}
		for _, c := range g.Cells {
			pc := exec.PartialCell{
				Count: c.Count, SumI: c.SumI, SumF: c.SumF, SumIsInt: c.SumIsInt,
				Sketch: c.Sketch,
			}
			if c.HasMin {
				pc.Min = fromWire(c.Min)
			}
			if c.HasMax {
				pc.Max = fromWire(c.Max)
			}
			pg.Cells = append(pg.Cells, pc)
		}
		out.Groups = append(out.Groups, pg)
	}
	return out
}

// LeafService is the net/rpc server wrapper around an engine.
type LeafService struct {
	engine *exec.Engine
}

// QueryArgs is the RPC request.
type QueryArgs struct {
	SQL string
}

// NewLeafService wraps an engine for serving.
func NewLeafService(engine *exec.Engine) *LeafService {
	return &LeafService{engine: engine}
}

// PartialQuery is the RPC method: parse, run, ship the partial.
func (s *LeafService) PartialQuery(args *QueryArgs, reply *WirePartial) error {
	stmt, err := sql.Parse(args.SQL)
	if err != nil {
		return err
	}
	part, err := s.engine.RunPartial(stmt)
	if err != nil {
		return err
	}
	*reply = *toWirePartial(part)
	return nil
}

// Serve registers the service and accepts connections on l until the
// listener closes. It blocks; run it in a goroutine or a dedicated process.
func Serve(l net.Listener, engine *exec.Engine) error {
	srv := rpc.NewServer()
	if err := srv.RegisterName("Leaf", NewLeafService(engine)); err != nil {
		return err
	}
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		go srv.ServeConn(conn)
	}
}

// RemoteLeaf is a Leaf backed by a net/rpc connection.
type RemoteLeaf struct {
	name   string
	client *rpc.Client
}

// Dial connects to a leaf server.
func Dial(addr string) (*RemoteLeaf, error) {
	client, err := rpc.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("cluster: dial %s: %w", addr, err)
	}
	return &RemoteLeaf{name: addr, client: client}, nil
}

// Name implements Leaf.
func (r *RemoteLeaf) Name() string { return r.name }

// PartialQuery implements Leaf.
func (r *RemoteLeaf) PartialQuery(sqlText string) (*exec.Partial, error) {
	var reply WirePartial
	if err := r.client.Call("Leaf.PartialQuery", &QueryArgs{SQL: sqlText}, &reply); err != nil {
		return nil, err
	}
	return fromWirePartial(&reply), nil
}

// Close releases the connection.
func (r *RemoteLeaf) Close() error { return r.client.Close() }
