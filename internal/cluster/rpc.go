package cluster

// The RPC layer lets serving-tree nodes run as separate processes
// (cmd/pdserver) while the coordinator keeps the exact same execution
// tree. Partials cross the wire in the versioned exec.EncodePartial
// binary form — not as a gob mirror of the in-memory struct — so every
// level of the tree ships the same bytes and a mixed-version fleet fails
// loud on an incompatible layout instead of misdecoding.
//
// One service implements the whole node protocol:
//
//	PartialQuery(QueryArgs) → QueryReply   run the sub-query, ship the partial
//	Stat(StatArgs)          → StatReply    report NumRows without running one
//
// ServeNode registers it under BOTH the "Leaf" and "Mixer" names: a
// parent dials a child the same way whether it is a leaf process or a
// mixer process, which is what lets trees stack to any depth.

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/rpc"
	"sync"
	"time"

	"powerdrill/internal/exec"
)

// LeafService is the net/rpc server wrapper around a node. Wrapping a Leaf
// rather than a bare engine means the server side of the wire carries the
// same fault-injection hooks as an in-process leaf (pdserver exposes them,
// and the RPC tests straggle a real server to force failover).
type LeafService struct {
	leaf Leaf
}

// QueryArgs is the RPC request.
type QueryArgs struct {
	SQL string
}

// QueryReply carries one partial in the versioned wire encoding
// (exec.EncodePartial).
type QueryReply struct {
	Partial []byte
}

// StatArgs requests a node's row count (no query runs).
type StatArgs struct{}

// StatReply answers it: how many rows the node's subtree spans.
type StatReply struct {
	NumRows int64
}

// NewLeafService wraps a node for serving.
func NewLeafService(leaf Leaf) *LeafService {
	return &LeafService{leaf: leaf}
}

// PartialQuery is the RPC method: run the node, ship the partial. The
// server runs without a deadline — cancellation is the client's business
// (it abandons the call); the server finishes and keeps its caches warm.
func (s *LeafService) PartialQuery(args *QueryArgs, reply *QueryReply) error {
	part, err := s.leaf.PartialQuery(context.Background(), args.SQL)
	if err != nil {
		return err
	}
	reply.Partial = exec.EncodePartial(part)
	return nil
}

// Stat is the RPC method behind RowCounter: it answers the node's row
// count so a coordinator can account coverage for this subtree before
// (or without) its first successful query.
func (s *LeafService) Stat(args *StatArgs, reply *StatReply) error {
	rc, ok := s.leaf.(RowCounter)
	if !ok {
		return fmt.Errorf("cluster: node %s does not report row counts", s.leaf.Name())
	}
	n, err := rc.NumRows(context.Background())
	if err != nil {
		return err
	}
	reply.NumRows = n
	return nil
}

// ServeNode registers node's RPC service under both the "Leaf" and
// "Mixer" names and accepts connections on l until the listener closes.
// It blocks; run it in a goroutine or a dedicated process.
func ServeNode(l net.Listener, node Leaf) error {
	srv := rpc.NewServer()
	svc := NewLeafService(node)
	if err := srv.RegisterName("Leaf", svc); err != nil {
		return err
	}
	if err := srv.RegisterName("Mixer", svc); err != nil {
		return err
	}
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		go srv.ServeConn(conn)
	}
}

// ServeLeaf is ServeNode under its historical name.
func ServeLeaf(l net.Listener, leaf Leaf) error { return ServeNode(l, leaf) }

// Serve wraps an engine in a LocalLeaf and serves it on l.
func Serve(l net.Listener, engine *exec.Engine) error {
	return ServeNode(l, NewLocalLeaf(l.Addr().String(), engine))
}

// RemoteLeaf is a Leaf backed by a net/rpc connection with a managed
// lifecycle: the connection is dialed lazily, torn down when the transport
// breaks (server restart, severed TCP), and redialed on the next call —
// with a short backoff window after a failed dial so a down server costs
// one connection attempt per window, not per sub-query. The far end may
// be a leaf or a mixer; the protocol is identical.
type RemoteLeaf struct {
	name string
	addr string

	mu        sync.Mutex
	client    *rpc.Client
	dialFails int
	nextDial  time.Time // no redial before this after a failed dial
}

const (
	dialBackoffBase = 50 * time.Millisecond
	dialBackoffMax  = 2 * time.Second
)

// NewRemoteLeaf creates a leaf client for addr without connecting: the
// first call dials. A server that is down at assembly time is not fatal —
// the cluster serves partial answers until it comes up, at which point a
// half-open probe (or the next dispatch) redials and the leaf joins.
func NewRemoteLeaf(addr string) *RemoteLeaf {
	return &RemoteLeaf{name: addr, addr: addr}
}

// Dial connects to a leaf server eagerly, failing if it is unreachable.
// Prefer NewRemoteLeaf when assembling clusters that must tolerate
// not-yet-up servers.
func Dial(addr string) (*RemoteLeaf, error) {
	r := NewRemoteLeaf(addr)
	if _, err := r.ensureClient(); err != nil {
		return nil, fmt.Errorf("cluster: dial %s: %w", addr, err)
	}
	return r, nil
}

// Name implements Leaf.
func (r *RemoteLeaf) Name() string { return r.name }

// ensureClient returns the live client, dialing if necessary. Failed dials
// open a backoff window during which calls fail immediately.
func (r *RemoteLeaf) ensureClient() (*rpc.Client, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.client != nil {
		return r.client, nil
	}
	now := time.Now()
	if now.Before(r.nextDial) {
		return nil, fmt.Errorf("cluster: leaf %s: down (redial backoff)", r.addr)
	}
	client, err := rpc.Dial("tcp", r.addr)
	if err != nil {
		d := dialBackoffBase
		for i := 0; i < r.dialFails && d < dialBackoffMax; i++ {
			d *= 2
		}
		if d > dialBackoffMax {
			d = dialBackoffMax
		}
		r.dialFails++
		r.nextDial = now.Add(d)
		return nil, fmt.Errorf("cluster: dial %s: %w", r.addr, err)
	}
	r.dialFails = 0
	r.nextDial = time.Time{}
	r.client = client
	return client, nil
}

// teardown discards client if it is still the current connection, so the
// next call redials. Compare-and-clear: a concurrent call that already
// replaced the connection is left alone.
func (r *RemoteLeaf) teardown(client *rpc.Client) {
	r.mu.Lock()
	if r.client == client {
		r.client = nil
	}
	r.mu.Unlock()
	client.Close()
}

// isConnError reports whether err means the transport is broken (as
// opposed to the server returning an application error).
func isConnError(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, rpc.ErrShutdown) || errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return true
	}
	var nerr net.Error
	return errors.As(err, &nerr)
}

// call runs one RPC with the managed-lifecycle rules: calls are idempotent
// reads, so a call that dies with a connection error is transparently
// retried once on a fresh connection; application errors pass through.
// When ctx expires mid-call the call is abandoned — the connection is NOT
// torn down, since concurrent queries may be multiplexed on it and the
// reply (discarded by net/rpc) may still arrive.
func (r *RemoteLeaf) call(ctx context.Context, method string, args, reply any) error {
	var lastErr error
	for attempt := 0; attempt < 2; attempt++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		client, err := r.ensureClient()
		if err != nil {
			return err
		}
		call := client.Go(method, args, reply, make(chan *rpc.Call, 1))
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-call.Done:
		}
		if call.Error == nil {
			return nil
		}
		lastErr = call.Error
		if !isConnError(call.Error) {
			return call.Error
		}
		r.teardown(client)
	}
	return lastErr
}

// PartialQuery implements Leaf.
func (r *RemoteLeaf) PartialQuery(ctx context.Context, sqlText string) (*exec.Partial, error) {
	var reply QueryReply
	if err := r.call(ctx, "Leaf.PartialQuery", &QueryArgs{SQL: sqlText}, &reply); err != nil {
		return nil, err
	}
	return exec.DecodePartial(reply.Partial)
}

// NumRows implements RowCounter via the Leaf.Stat RPC.
func (r *RemoteLeaf) NumRows(ctx context.Context) (int64, error) {
	var reply StatReply
	if err := r.call(ctx, "Leaf.Stat", &StatArgs{}, &reply); err != nil {
		return 0, err
	}
	return reply.NumRows, nil
}

// Close releases the connection (if one is up).
func (r *RemoteLeaf) Close() error {
	r.mu.Lock()
	client := r.client
	r.client = nil
	r.mu.Unlock()
	if client == nil {
		return nil
	}
	return client.Close()
}
