package cluster

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/rpc"
	"sync"
	"time"

	"powerdrill/internal/exec"
	"powerdrill/internal/value"
)

// The RPC layer lets leaf servers run as separate processes (cmd/pdserver)
// while the coordinator keeps the exact same execution tree. Values cross
// the wire as explicit tagged unions because value.Value's fields are
// unexported by design.

// WireValue is the gob-encodable form of value.Value.
type WireValue struct {
	Kind uint8
	Str  string
	Int  int64
	Flt  float64
}

// toWire converts a value for transport.
func toWire(v value.Value) WireValue {
	w := WireValue{Kind: uint8(v.Kind())}
	switch v.Kind() {
	case value.KindString:
		w.Str = v.Str()
	case value.KindInt64:
		w.Int = v.Int()
	case value.KindFloat64:
		w.Flt = v.Float()
	}
	return w
}

// fromWire converts a transported value back.
func fromWire(w WireValue) value.Value {
	switch value.Kind(w.Kind) {
	case value.KindString:
		return value.String(w.Str)
	case value.KindInt64:
		return value.Int64(w.Int)
	case value.KindFloat64:
		return value.Float64(w.Flt)
	}
	return value.Value{}
}

// WireCell mirrors exec.PartialCell.
type WireCell struct {
	Count    int64
	SumI     int64
	SumF     float64
	SumIsInt bool
	HasMin   bool
	Min      WireValue
	HasMax   bool
	Max      WireValue
	Sketch   []byte
}

// WireGroup mirrors exec.PartialGroup.
type WireGroup struct {
	Keys  []WireValue
	Cells []WireCell
}

// WirePartial mirrors exec.Partial.
type WirePartial struct {
	Columns []string
	Groups  []WireGroup
	Stats   exec.QueryStats
}

// toWirePartial converts a partial for transport.
func toWirePartial(p *exec.Partial) *WirePartial {
	out := &WirePartial{Columns: p.Columns, Stats: p.Stats}
	for _, g := range p.Groups {
		wg := WireGroup{}
		for _, k := range g.Keys {
			wg.Keys = append(wg.Keys, toWire(k))
		}
		for _, c := range g.Cells {
			wc := WireCell{
				Count: c.Count, SumI: c.SumI, SumF: c.SumF, SumIsInt: c.SumIsInt,
				Sketch: c.Sketch,
			}
			if c.Min.IsValid() {
				wc.HasMin, wc.Min = true, toWire(c.Min)
			}
			if c.Max.IsValid() {
				wc.HasMax, wc.Max = true, toWire(c.Max)
			}
			wg.Cells = append(wg.Cells, wc)
		}
		out.Groups = append(out.Groups, wg)
	}
	return out
}

// fromWirePartial converts a transported partial back.
func fromWirePartial(w *WirePartial) *exec.Partial {
	out := &exec.Partial{Columns: w.Columns, Stats: w.Stats}
	for _, g := range w.Groups {
		pg := exec.PartialGroup{}
		for _, k := range g.Keys {
			pg.Keys = append(pg.Keys, fromWire(k))
		}
		for _, c := range g.Cells {
			pc := exec.PartialCell{
				Count: c.Count, SumI: c.SumI, SumF: c.SumF, SumIsInt: c.SumIsInt,
				Sketch: c.Sketch,
			}
			if c.HasMin {
				pc.Min = fromWire(c.Min)
			}
			if c.HasMax {
				pc.Max = fromWire(c.Max)
			}
			pg.Cells = append(pg.Cells, pc)
		}
		out.Groups = append(out.Groups, pg)
	}
	return out
}

// LeafService is the net/rpc server wrapper around a leaf. Wrapping a Leaf
// rather than a bare engine means the server side of the wire carries the
// same fault-injection hooks as an in-process leaf (pdserver exposes them,
// and the RPC tests straggle a real server to force failover).
type LeafService struct {
	leaf Leaf
}

// QueryArgs is the RPC request.
type QueryArgs struct {
	SQL string
}

// NewLeafService wraps a leaf for serving.
func NewLeafService(leaf Leaf) *LeafService {
	return &LeafService{leaf: leaf}
}

// PartialQuery is the RPC method: run the leaf, ship the partial. The
// server runs without a deadline — cancellation is the client's business
// (it abandons the call); the server finishes and keeps its caches warm.
func (s *LeafService) PartialQuery(args *QueryArgs, reply *WirePartial) error {
	part, err := s.leaf.PartialQuery(context.Background(), args.SQL)
	if err != nil {
		return err
	}
	*reply = *toWirePartial(part)
	return nil
}

// ServeLeaf registers the leaf and accepts connections on l until the
// listener closes. It blocks; run it in a goroutine or a dedicated process.
func ServeLeaf(l net.Listener, leaf Leaf) error {
	srv := rpc.NewServer()
	if err := srv.RegisterName("Leaf", NewLeafService(leaf)); err != nil {
		return err
	}
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		go srv.ServeConn(conn)
	}
}

// Serve wraps an engine in a LocalLeaf and serves it on l.
func Serve(l net.Listener, engine *exec.Engine) error {
	return ServeLeaf(l, NewLocalLeaf(l.Addr().String(), engine))
}

// RemoteLeaf is a Leaf backed by a net/rpc connection with a managed
// lifecycle: the connection is dialed lazily, torn down when the transport
// breaks (server restart, severed TCP), and redialed on the next call —
// with a short backoff window after a failed dial so a down server costs
// one connection attempt per window, not per sub-query.
type RemoteLeaf struct {
	name string
	addr string

	mu        sync.Mutex
	client    *rpc.Client
	dialFails int
	nextDial  time.Time // no redial before this after a failed dial
}

const (
	dialBackoffBase = 50 * time.Millisecond
	dialBackoffMax  = 2 * time.Second
)

// NewRemoteLeaf creates a leaf client for addr without connecting: the
// first call dials. A server that is down at assembly time is not fatal —
// the cluster serves partial answers until it comes up, at which point a
// half-open probe (or the next dispatch) redials and the leaf joins.
func NewRemoteLeaf(addr string) *RemoteLeaf {
	return &RemoteLeaf{name: addr, addr: addr}
}

// Dial connects to a leaf server eagerly, failing if it is unreachable.
// Prefer NewRemoteLeaf when assembling clusters that must tolerate
// not-yet-up servers.
func Dial(addr string) (*RemoteLeaf, error) {
	r := NewRemoteLeaf(addr)
	if _, err := r.ensureClient(); err != nil {
		return nil, fmt.Errorf("cluster: dial %s: %w", addr, err)
	}
	return r, nil
}

// Name implements Leaf.
func (r *RemoteLeaf) Name() string { return r.name }

// ensureClient returns the live client, dialing if necessary. Failed dials
// open a backoff window during which calls fail immediately.
func (r *RemoteLeaf) ensureClient() (*rpc.Client, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.client != nil {
		return r.client, nil
	}
	now := time.Now()
	if now.Before(r.nextDial) {
		return nil, fmt.Errorf("cluster: leaf %s: down (redial backoff)", r.addr)
	}
	client, err := rpc.Dial("tcp", r.addr)
	if err != nil {
		d := dialBackoffBase
		for i := 0; i < r.dialFails && d < dialBackoffMax; i++ {
			d *= 2
		}
		if d > dialBackoffMax {
			d = dialBackoffMax
		}
		r.dialFails++
		r.nextDial = now.Add(d)
		return nil, fmt.Errorf("cluster: dial %s: %w", r.addr, err)
	}
	r.dialFails = 0
	r.nextDial = time.Time{}
	r.client = client
	return client, nil
}

// teardown discards client if it is still the current connection, so the
// next call redials. Compare-and-clear: a concurrent call that already
// replaced the connection is left alone.
func (r *RemoteLeaf) teardown(client *rpc.Client) {
	r.mu.Lock()
	if r.client == client {
		r.client = nil
	}
	r.mu.Unlock()
	client.Close()
}

// isConnError reports whether err means the transport is broken (as
// opposed to the server returning an application error).
func isConnError(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, rpc.ErrShutdown) || errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return true
	}
	var nerr net.Error
	return errors.As(err, &nerr)
}

// PartialQuery implements Leaf. Sub-queries are idempotent reads, so a
// call that dies with a connection error is transparently retried once on
// a fresh connection; application errors pass through. When ctx expires
// mid-call the call is abandoned — the connection is NOT torn down, since
// concurrent queries may be multiplexed on it and the reply (discarded by
// net/rpc) may still arrive.
func (r *RemoteLeaf) PartialQuery(ctx context.Context, sqlText string) (*exec.Partial, error) {
	var lastErr error
	for attempt := 0; attempt < 2; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		client, err := r.ensureClient()
		if err != nil {
			return nil, err
		}
		var reply WirePartial
		call := client.Go("Leaf.PartialQuery", &QueryArgs{SQL: sqlText}, &reply, make(chan *rpc.Call, 1))
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-call.Done:
		}
		if call.Error == nil {
			return fromWirePartial(&reply), nil
		}
		lastErr = call.Error
		if !isConnError(call.Error) {
			return nil, call.Error
		}
		r.teardown(client)
	}
	return nil, lastErr
}

// Close releases the connection (if one is up).
func (r *RemoteLeaf) Close() error {
	r.mu.Lock()
	client := r.client
	r.client = nil
	r.mu.Unlock()
	if client == nil {
		return nil
	}
	return client.Close()
}
