package cluster

// Shard placement and rebalancing. Each replica is labeled with the
// server it lives on; the placement table maps shard→replica→server, and
// the rebalancer rebuilds it from signals the dispatcher already tracks —
// per-replica latency EWMAs (fed by every completed attempt, hedge losers
// included, so a straggler looks slow even when it never wins a race) and
// circuit-breaker state. A replica whose EWMA towers over the cluster
// median, or whose breaker is open, gets rebuilt on the least-loaded
// registered server not already hosting that shard. Moves respect the
// shared memory budget: OpenShards factories reopen the shard's directory
// under the same manager, so the new replica shares residency instead of
// doubling it, and every factory-built engine inherits the shared
// exec.Gate.

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// LeafFactory materializes a leaf serving shard si on the server it was
// registered for.
type LeafFactory func(si int) (Leaf, error)

// placement is the server registry the rebalancer draws move targets from.
type placement struct {
	mu      sync.Mutex
	servers []*serverEntry
}

type serverEntry struct {
	name string
	open LeafFactory // nil: label-only, never a move target
}

func (p *placement) add(name string, open LeafFactory) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, s := range p.servers {
		if s.name == name {
			s.open = open
			return
		}
	}
	p.servers = append(p.servers, &serverEntry{name: name, open: open})
}

func (p *placement) snapshot() []*serverEntry {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]*serverEntry(nil), p.servers...)
}

// AddServer registers (or replaces) a placement server: a name plus a
// factory that can open any shard's leaf there. Registered servers are
// the rebalancer's move targets; NewLocal/OpenShards register their
// simulated servers automatically, RPC clusters add remote spares here.
func (c *Cluster) AddServer(name string, open LeafFactory) {
	c.place.add(name, open)
}

// PlacementEntry is one row of the shard→server placement table.
type PlacementEntry struct {
	Shard   int
	Replica int
	Server  string
	Leaf    string
	// LatencyEWMA is the replica's moving completed-attempt latency
	// (0 = no observation yet); Breaker its circuit state.
	LatencyEWMA time.Duration
	Breaker     string
}

// Placement returns the current placement table, shard-then-replica order.
func (c *Cluster) Placement() []PlacementEntry {
	var out []PlacementEntry
	for si, s := range c.shards {
		for r, ls := range s.replicaList() {
			e := PlacementEntry{
				Shard: si, Replica: r,
				Server:      ls.serverName(),
				Leaf:        ls.leaf.Name(),
				LatencyEWMA: ls.latency(),
				Breaker:     "disabled",
			}
			if ls.br != nil {
				e.Breaker, _, _ = ls.br.snapshot()
			}
			out = append(out, e)
		}
	}
	return out
}

// RebalanceOptions tunes one rebalancing pass.
type RebalanceOptions struct {
	// MaxMoves caps replica relocations per pass (default 1: move the
	// worst offender, observe, repeat — placement changes should be
	// gradual on a serving fleet).
	MaxMoves int
	// HotFactor is the straggler threshold: a replica is hot when its
	// latency EWMA exceeds HotFactor × the cluster-median replica EWMA
	// (default 3). Breaker-open replicas are movable regardless.
	HotFactor float64
}

// Move records one replica relocation performed by Rebalance.
type Move struct {
	Shard   int
	Replica int
	From    string
	To      string
	// LeafEWMA is the moved replica's latency estimate at decision time,
	// MedianEWMA the cluster median it was judged against.
	LeafEWMA   time.Duration
	MedianEWMA time.Duration
	// Reason is "breaker-open" or "hot".
	Reason string
}

// Rebalance runs one placement pass: find straggling replicas (breaker
// open, or latency EWMA > HotFactor × cluster median), and rebuild the
// worst of them on the least-loaded registered server that does not
// already host the shard. The superseded leaf is left to drain — in-flight
// sub-queries may still complete on it — and simply stops receiving
// dispatches. Returns the moves made; the error reports factory failures
// (moves already made still count).
func (c *Cluster) Rebalance(opts RebalanceOptions) ([]Move, error) {
	if opts.MaxMoves <= 0 {
		opts.MaxMoves = 1
	}
	if opts.HotFactor <= 0 {
		opts.HotFactor = 3
	}

	// Snapshot the fleet: per-replica EWMAs, breaker states, and which
	// servers host which shards.
	type replicaInfo struct {
		si, r  int
		ls     *leafState
		ewma   time.Duration
		open   bool // breaker open
		server string
	}
	var fleet []replicaInfo
	hosting := map[string]map[int]bool{} // server → shards hosted
	load := map[string]time.Duration{}   // server → summed EWMA
	var ewmas []time.Duration
	for si, s := range c.shards {
		for r, ls := range s.replicaList() {
			info := replicaInfo{si: si, r: r, ls: ls, ewma: ls.latency(), server: ls.serverName()}
			if ls.br != nil {
				state, _, _ := ls.br.snapshot()
				info.open = state == "open"
			}
			fleet = append(fleet, info)
			if hosting[info.server] == nil {
				hosting[info.server] = map[int]bool{}
			}
			hosting[info.server][si] = true
			load[info.server] += info.ewma
			if info.ewma > 0 {
				ewmas = append(ewmas, info.ewma)
			}
		}
	}
	var median time.Duration
	if len(ewmas) > 0 {
		sort.Slice(ewmas, func(i, j int) bool { return ewmas[i] < ewmas[j] })
		median = ewmas[len(ewmas)/2]
	}

	// Stragglers, worst first (breaker-open ahead of merely hot).
	var cands []replicaInfo
	for _, info := range fleet {
		if info.open || (median > 0 && info.ewma > time.Duration(opts.HotFactor*float64(median))) {
			cands = append(cands, info)
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].open != cands[j].open {
			return cands[i].open
		}
		return cands[i].ewma > cands[j].ewma
	})

	servers := c.place.snapshot()
	var moves []Move
	var firstErr error
	for _, cand := range cands {
		if len(moves) >= opts.MaxMoves {
			break
		}
		// Coldest registered server not hosting this shard.
		var target *serverEntry
		for _, srv := range servers {
			if srv.open == nil || srv.name == cand.server || hosting[srv.name][cand.si] {
				continue
			}
			if target == nil || load[srv.name] < load[target.name] {
				target = srv
			}
		}
		if target == nil {
			continue
		}
		leaf, err := target.open(cand.si)
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("cluster: rebalance shard %d onto %s: %w", cand.si, target.name, err)
			}
			continue
		}
		ls := c.opts.newLeafState(leaf, cand.si, cand.r, target.name)
		c.shards[cand.si].setReplica(cand.r, ls)
		reason := "hot"
		if cand.open {
			reason = "breaker-open"
		}
		moves = append(moves, Move{
			Shard: cand.si, Replica: cand.r,
			From: cand.server, To: target.name,
			LeafEWMA: cand.ewma, MedianEWMA: median,
			Reason: reason,
		})
		if hosting[target.name] == nil {
			hosting[target.name] = map[int]bool{}
		}
		hosting[target.name][cand.si] = true
		load[target.name] += median // expected steady-state cost
	}
	if len(moves) > 0 {
		c.mu.Lock()
		c.stats.Rebalances++
		c.stats.ReplicasMoved += int64(len(moves))
		c.mu.Unlock()
	}
	return moves, firstErr
}
