package cluster

// Per-leaf health tracking. On the paper's shared fleet some leaf is
// always dead or dying; without health state every query pays a dial
// timeout (or a full deadline) re-discovering that. Each leaf carries a
// consecutive-failure circuit breaker:
//
//	closed ──(threshold consecutive failures)──▶ open
//	open ──(cooldown elapses, one probe admitted)──▶ half-open
//	half-open ──probe succeeds──▶ closed
//	half-open ──probe fails──▶ open (cooldown restarts)
//
// While open, dispatch skips the leaf entirely — the shard's other
// replica (or the coverage accounting) absorbs the loss — so a known-dead
// machine costs nothing instead of a timeout per query. The half-open
// probe is how a leaf that was down at startup joins once it is healthy.

import (
	"sync"
	"time"
)

// breakerState enumerates the circuit-breaker states.
type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// breaker is one leaf's consecutive-failure circuit breaker.
type breaker struct {
	threshold int
	cooldown  time.Duration

	mu          sync.Mutex
	state       breakerState
	consecutive int
	openedAt    time.Time
	probing     bool // a half-open probe is in flight
	opens       int64
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	return &breaker{threshold: threshold, cooldown: cooldown}
}

// allow reports whether a dispatch may proceed: always while closed; while
// open only after the cooldown, and then exactly one probe at a time.
func (b *breaker) allow(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if now.Sub(b.openedAt) < b.cooldown {
			return false
		}
		b.state = breakerHalfOpen
		b.probing = true
		return true
	default: // half-open
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// success records a completed call and closes the breaker.
func (b *breaker) success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = breakerClosed
	b.consecutive = 0
	b.probing = false
}

// failure records a failed call; it reports whether this failure tripped
// the breaker open (a failed half-open probe re-opens it immediately).
func (b *breaker) failure(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.consecutive++
	tripped := false
	switch b.state {
	case breakerHalfOpen:
		tripped = true
	case breakerClosed:
		tripped = b.consecutive >= b.threshold
	}
	if tripped {
		b.state = breakerOpen
		b.openedAt = now
		b.probing = false
		b.opens++
	}
	return tripped
}

func (b *breaker) snapshot() (state string, consecutive int, opens int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state.String(), b.consecutive, b.opens
}

// leafState wraps a Leaf with its dispatch-side health bookkeeping.
type leafState struct {
	leaf    Leaf
	shard   int
	replica int
	server  string   // placement label (see placement.go)
	br      *breaker // nil when the breaker is disabled
	// lat tracks this replica's completed-attempt latency — observed for
	// hedge losers too, so a straggler accumulates a high estimate even
	// when it never wins a race. The rebalancer reads it.
	lat latEstimate

	mu        sync.Mutex
	successes int64
	failures  int64
	lastErr   string
}

// serverName is the placement label of the server this replica lives on.
func (ls *leafState) serverName() string { return ls.server }

// observe feeds the replica's latency estimate.
func (ls *leafState) observe(d time.Duration) { ls.lat.observe(d) }

// latency is the replica's moving completed-attempt latency (0 = none).
func (ls *leafState) latency() time.Duration { return ls.lat.value() }

// allowed reports whether the breaker admits a dispatch now.
func (ls *leafState) allowed(now time.Time) bool {
	return ls.br == nil || ls.br.allow(now)
}

// success records a served sub-query.
func (ls *leafState) success() {
	ls.mu.Lock()
	ls.successes++
	ls.mu.Unlock()
	if ls.br != nil {
		ls.br.success()
	}
}

// failure records a failed sub-query; it reports whether the breaker
// tripped open.
func (ls *leafState) failure(err error, now time.Time) bool {
	ls.mu.Lock()
	ls.failures++
	if err != nil {
		ls.lastErr = err.Error()
	}
	ls.mu.Unlock()
	if ls.br == nil {
		return false
	}
	return ls.br.failure(now)
}

// LeafHealth is one leaf's health as seen by the coordinator — surfaced
// through Cluster.Health, the public powerdrill API and pdserver /statz.
type LeafHealth struct {
	Name    string
	Shard   int
	Replica int
	// Server is the placement label of the server the replica lives on.
	Server string
	// Breaker is "closed", "open" or "half-open" ("disabled" when health
	// tracking is off).
	Breaker             string
	ConsecutiveFailures int
	Successes           int64
	Failures            int64
	// BreakerOpens counts how many times this leaf's breaker tripped.
	BreakerOpens int64
	// LatencyEWMA is the replica's moving completed-attempt latency
	// (0 = no observation yet) — the signal the rebalancer reads.
	LatencyEWMA time.Duration
	LastError   string
}

func (ls *leafState) health() LeafHealth {
	ls.mu.Lock()
	h := LeafHealth{
		Name:        ls.leaf.Name(),
		Shard:       ls.shard,
		Replica:     ls.replica,
		Server:      ls.server,
		Breaker:     "disabled",
		Successes:   ls.successes,
		Failures:    ls.failures,
		LatencyEWMA: ls.lat.value(),
		LastError:   ls.lastErr,
	}
	ls.mu.Unlock()
	if ls.br != nil {
		h.Breaker, h.ConsecutiveFailures, h.BreakerOpens = ls.br.snapshot()
	}
	return h
}
