package cluster

// Tiered hedging (the paper's straggler tolerance, refined). The seed
// implementation sent every sub-query to the primary AND the replica
// simultaneously — robust, but it doubles cluster load on every query.
// Production systems in the Dremel lineage instead hedge: ask the
// primary, and only if it has not answered within a straggler threshold
// ask the replica too. The threshold is a multiple of a moving per-shard
// latency estimate, so it adapts per shard to data size, cache warmth and
// query shape. Until a shard has an estimate (its first sub-query), the
// replica is asked immediately — exactly the seed's race — so a cold
// cluster keeps the old behavior and a warm one sheds the duplicate work.

import (
	"math/rand"
	"sync"
	"time"
)

// latEstimate is an exponentially weighted moving average of a shard's
// successful sub-query latency.
type latEstimate struct {
	mu   sync.Mutex
	ewma float64 // nanoseconds; 0 = no observation yet
}

// ewmaAlpha weighs new observations: high enough to track cache warm-up,
// low enough that one straggler does not poison the threshold.
const ewmaAlpha = 0.3

func (l *latEstimate) observe(d time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.ewma == 0 {
		l.ewma = float64(d)
		return
	}
	l.ewma = ewmaAlpha*float64(d) + (1-ewmaAlpha)*l.ewma
}

func (l *latEstimate) value() time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	return time.Duration(l.ewma)
}

// hedgeDelay computes how long to wait for the primary before asking the
// next replica: HedgeMultiplier × the shard's moving latency estimate,
// clamped to [HedgeMinDelay, HedgeMaxDelay]. A shard with no estimate yet
// hedges immediately (delay 0).
func (o Options) hedgeDelay(lat *latEstimate) time.Duration {
	est := lat.value()
	if est == 0 {
		return 0
	}
	d := time.Duration(o.HedgeMultiplier * float64(est))
	if d < o.HedgeMinDelay {
		d = o.HedgeMinDelay
	}
	if d > o.HedgeMaxDelay {
		d = o.HedgeMaxDelay
	}
	return d
}

// backoffDelay is the capped exponential backoff with jitter for retry
// attempt n (0-based): base·2ⁿ capped at max, then uniformly jittered to
// [½d, d) so synchronized retries from concurrent sub-queries spread out.
// It uses the global (locked) math/rand source.
func backoffDelay(base, max time.Duration, attempt int) time.Duration {
	if base <= 0 {
		return 0
	}
	d := base
	for i := 0; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	half := d / 2
	return half + time.Duration(rand.Int63n(int64(half)+1))
}
