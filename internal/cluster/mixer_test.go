package cluster

// Tests for the real mixer tier: topology-invariant results (bit-for-bit,
// floats included), per-level coverage accounting, the Stat RPC making the
// very first query's Coverage exact, mixer failover over real RPC, and the
// health-driven rebalancer.

import (
	"fmt"
	"math"
	"math/rand"
	"net"
	"testing"
	"time"

	"powerdrill/internal/colstore"
	"powerdrill/internal/exec"
	"powerdrill/internal/table"
	"powerdrill/internal/value"
)

// floatTable builds a table whose float column spans enough orders of
// magnitude that summing it in a different order changes the low bits —
// exactly what a topology-dependent merge order would expose.
func floatTable(rows int) *table.Table {
	r := rand.New(rand.NewSource(7))
	ks := make([]string, rows)
	fs := make([]float64, rows)
	for i := range ks {
		ks[i] = fmt.Sprintf("g%d", i%7)
		fs[i] = (r.Float64() - 0.5) * math.Pow(10, float64(r.Intn(12)))
	}
	t := table.New("data")
	t.AddStringColumn("k", ks)
	t.AddFloat64Column("f", fs)
	return t
}

// buildLeaves shards tbl n ways and wraps each shard in a LocalLeaf.
func buildLeaves(t *testing.T, tbl *table.Table, n int, sopts colstore.Options) []*LocalLeaf {
	t.Helper()
	shards := tbl.Shard(n)
	leaves := make([]*LocalLeaf, n)
	for i, st := range shards {
		store, err := colstore.FromTable(st, sopts)
		if err != nil {
			t.Fatal(err)
		}
		leaves[i] = NewLocalLeaf(fmt.Sprintf("leaf%d", i), exec.New(store, exec.Options{}))
	}
	return leaves
}

func singles(leaves []*LocalLeaf) [][]Leaf {
	var sets [][]Leaf
	for _, l := range leaves {
		sets = append(sets, []Leaf{l})
	}
	return sets
}

// sortedCopy orders a copy of rows canonically, so answers to queries
// without a total ORDER BY compare as sets.
func sortedCopy(rows [][]value.Value) [][]value.Value {
	out := append([][]value.Value{}, rows...)
	sortRows(out)
	return out
}

// bitIdenticalRows demands exact equality — for floats, the very bits.
func bitIdenticalRows(a, b [][]value.Value) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			av, bv := a[i][j], b[i][j]
			if av.Kind() != bv.Kind() {
				return false
			}
			if av.Kind() == value.KindFloat64 {
				if math.Float64bits(av.Float()) != math.Float64bits(bv.Float()) {
					return false
				}
				continue
			}
			if !av.Equal(bv) {
				return false
			}
		}
	}
	return true
}

// TestTopologyEquivalence is the mixer-tier correctness claim: the same 12
// leaves arranged as a flat coordinator, a 2-level mixer tree and a 3-level
// uneven tree must answer bit-for-bit identically — float SUM/AVG included
// — with identical summed scan statistics.
func TestTopologyEquivalence(t *testing.T) {
	opts := Options{Fanout: 3, Replicas: 1}
	cases := []struct {
		name    string
		tbl     *table.Table
		sopts   colstore.Options
		queries []string
	}{
		{"logs", logs(4000), storeOpts(), distributedQueries()},
		{"floats", floatTable(6000), colstore.Options{MaxChunkRows: 250}, []string{
			`SELECT k, SUM(f) as s, AVG(f), COUNT(*) FROM data GROUP BY k ORDER BY s DESC, k ASC;`,
			`SELECT k, MIN(f), MAX(f) FROM data GROUP BY k;`,
			`SELECT SUM(f), AVG(f) FROM data;`,
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			leaves := buildLeaves(t, tc.tbl, 12, tc.sopts)

			flat := FromLeaves(singles(leaves), opts)

			// Two levels: three mixers over four leaves each.
			var mixers []*Mixer
			var twoSets [][]Leaf
			for g := 0; g < 3; g++ {
				m := NewMixer(fmt.Sprintf("mix%d", g), singles(leaves[g*4:(g+1)*4]), opts)
				mixers = append(mixers, m)
				twoSets = append(twoSets, []Leaf{m})
			}
			two := FromLeaves(twoSets, opts)

			// Three levels, uneven: one branch is mixer→mixer→leaves, one is
			// mixer→leaves, and two leaves hang off the root directly.
			sa := NewMixer("sub-a", singles(leaves[0:3]), opts)
			sb := NewMixer("sub-b", singles(leaves[3:6]), opts)
			ma := NewMixer("mid-a", [][]Leaf{{sa}, {sb}}, opts)
			mb := NewMixer("mid-b", singles(leaves[6:10]), opts)
			three := FromLeaves([][]Leaf{{ma}, {mb}, {leaves[10]}, {leaves[11]}}, opts)

			total := int64(tc.tbl.NumRows())
			for _, q := range tc.queries {
				ref, err := flat.Query(q)
				if err != nil {
					t.Fatalf("flat %q: %v", q, err)
				}
				if ref.Coverage != 1 {
					t.Fatalf("flat %q: coverage %v", q, ref.Coverage)
				}
				if ref.Stats.RowsTotal != total || ref.Stats.RowsCovered != total {
					t.Fatalf("flat %q: rows %d/%d, table has %d",
						q, ref.Stats.RowsCovered, ref.Stats.RowsTotal, total)
				}
				for name, c := range map[string]*Cluster{"2-level": two, "3-level": three} {
					got, err := c.Query(q)
					if err != nil {
						t.Fatalf("%s %q: %v", name, q, err)
					}
					if !bitIdenticalRows(sortedCopy(got.Rows), sortedCopy(ref.Rows)) {
						t.Errorf("%s %q: rows diverged from flat coordinator", name, q)
					}
					if got.Coverage != 1 {
						t.Errorf("%s %q: coverage %v", name, q, got.Coverage)
					}
					if got.Stats.RowsTotal != ref.Stats.RowsTotal ||
						got.Stats.RowsCovered != ref.Stats.RowsCovered ||
						got.Stats.RowsScanned != ref.Stats.RowsScanned ||
						got.Stats.ChunksScanned != ref.Stats.ChunksScanned {
						t.Errorf("%s %q: stats diverged: got rows %d/%d scanned %d chunks %d, flat rows %d/%d scanned %d chunks %d",
							name, q,
							got.Stats.RowsCovered, got.Stats.RowsTotal, got.Stats.RowsScanned, got.Stats.ChunksScanned,
							ref.Stats.RowsCovered, ref.Stats.RowsTotal, ref.Stats.RowsScanned, ref.Stats.ChunksScanned)
					}
				}
			}

			// Fan-out accounting: the 2-level root dispatches one sub-query
			// per mixer per query; each mixer fans out to its four leaves.
			nq := int64(len(tc.queries))
			if st := two.Stats(); st.SubQueries != 3*nq {
				t.Errorf("2-level root SubQueries = %d, want %d", st.SubQueries, 3*nq)
			}
			for _, m := range mixers {
				if st := m.Stats(); st.Queries != nq || st.SubQueries != 4*nq {
					t.Errorf("mixer %s: Queries=%d SubQueries=%d, want %d and %d",
						m.Name(), st.Queries, st.SubQueries, nq, 4*nq)
				}
			}
		})
	}
}

// TestMixerCoverageOnLeafDeath: a leaf dying two levels below the root
// must surface as exact Coverage at the root — charged by its mixer (whose
// ShardsMissing grows), not by the root (whose own children all answered).
func TestMixerCoverageOnLeafDeath(t *testing.T) {
	tbl := logs(3000)
	leaves := buildLeaves(t, tbl, 4, storeOpts())
	opts := Options{Replicas: 1, MaxRetries: -1, BreakerThreshold: -1}
	ma := NewMixer("mix-a", singles(leaves[0:2]), opts)
	mb := NewMixer("mix-b", singles(leaves[2:4]), opts)
	root := FromLeaves([][]Leaf{{ma}, {mb}}, opts)

	leaves[3].SetFail(true)
	res, err := root.Query(countQuery)
	if err != nil {
		t.Fatal(err)
	}
	total := int64(tbl.NumRows())
	dead := int64(tbl.Shard(4)[3].NumRows())
	want := float64(total-dead) / float64(total)
	if res.Coverage != want {
		t.Errorf("coverage = %v, want exactly %v (dead shard has %d of %d rows)",
			res.Coverage, want, dead, total)
	}
	if st := mb.Stats(); st.ShardsMissing == 0 {
		t.Error("mixer above the dead leaf charged no missing shard")
	}
	if st := root.Stats(); st.ShardsMissing != 0 {
		t.Errorf("root charged %d missing shards; both mixers answered", st.ShardsMissing)
	}

	// The leaf recovers: coverage returns to 1 through the same tree.
	leaves[3].SetFail(false)
	res, err = root.Query(countQuery)
	if err != nil {
		t.Fatal(err)
	}
	if res.Coverage != 1 {
		t.Errorf("coverage after recovery = %v, want 1", res.Coverage)
	}
}

// TestFirstQueryCoverageExact is the Stat-RPC satellite: a cluster
// assembled from leaves with unknown row counts must already report exact
// Coverage on its very first query when a shard is dead — the counts
// arrive via RowCounter concurrently with the scatter.
func TestFirstQueryCoverageExact(t *testing.T) {
	tbl := logs(2000)
	leaves := buildLeaves(t, tbl, 4, storeOpts())
	c := FromLeaves(singles(leaves), Options{Replicas: 1, MaxRetries: 0})
	leaves[1].SetFail(true)

	res, err := c.Query(countQuery)
	if err != nil {
		t.Fatal(err)
	}
	total := int64(tbl.NumRows())
	dead := int64(tbl.Shard(4)[1].NumRows())
	if res.Stats.RowsTotal != total {
		t.Errorf("first query RowsTotal = %d, want %d (dead shard unaccounted)",
			res.Stats.RowsTotal, total)
	}
	if want := float64(total-dead) / float64(total); res.Coverage != want {
		t.Errorf("first query coverage = %v, want exactly %v", res.Coverage, want)
	}
}

// serveNodeAddr serves node over real loopback RPC and returns its address.
func serveNodeAddr(t *testing.T, node Leaf) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go ServeNode(ln, node)
	return ln.Addr().String()
}

// TestRPCStatFirstQueryCoverage drives the Leaf.Stat RPC end-to-end: a
// remote leaf whose queries fail still reports its row count, so the first
// query over the wire is exactly covered.
func TestRPCStatFirstQueryCoverage(t *testing.T) {
	tbl := logs(2000)
	leaves := buildLeaves(t, tbl, 2, storeOpts())
	leaves[0].SetFail(true)
	var sets [][]Leaf
	for _, l := range leaves {
		sets = append(sets, []Leaf{NewRemoteLeaf(serveNodeAddr(t, l))})
	}
	c := FromLeaves(sets, Options{Replicas: 1, MaxRetries: 0})

	res, err := c.Query(countQuery)
	if err != nil {
		t.Fatal(err)
	}
	total := int64(tbl.NumRows())
	dead := int64(tbl.Shard(2)[0].NumRows())
	if res.Stats.RowsTotal != total {
		t.Errorf("RowsTotal = %d, want %d", res.Stats.RowsTotal, total)
	}
	if want := float64(total-dead) / float64(total); res.Coverage != want {
		t.Errorf("coverage = %v, want exactly %v", res.Coverage, want)
	}
}

// TestMixerKilledMidQueryFailsOver runs a two-level tree of real RPC
// processes — four leaf servers, two replica mixer servers over them —
// kills the primary mixer's connections mid-query, and demands the replica
// mixer deliver the identical full-coverage answer.
func TestMixerKilledMidQueryFailsOver(t *testing.T) {
	tbl := logs(3000)
	leaves := buildLeaves(t, tbl, 4, storeOpts())
	var leafAddrs []string
	for _, l := range leaves {
		leafAddrs = append(leafAddrs, serveNodeAddr(t, l))
	}
	mixerOver := func(name string) *Mixer {
		var sets [][]Leaf
		for _, a := range leafAddrs {
			sets = append(sets, []Leaf{NewRemoteLeaf(a)})
		}
		return NewMixer(name, sets, Options{Replicas: 1})
	}
	addrA := serveNodeAddr(t, mixerOver("mixer-a"))
	addrB := serveNodeAddr(t, mixerOver("mixer-b"))

	proxy, err := NewFlakyProxy(addrA, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	// A huge hedge multiplier keeps the replica mixer out of the race until
	// the primary actually fails: the failover below is kill-triggered, not
	// a hedge that would have fired anyway.
	root := FromLeaves(
		[][]Leaf{{NewRemoteLeaf(proxy.Addr()), NewRemoteLeaf(addrB)}},
		Options{Replicas: 2, HedgeMultiplier: 1000, HedgeMaxDelay: 10 * time.Second},
	)

	ref, err := root.Query(countQuery)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Coverage != 1 {
		t.Fatalf("baseline coverage = %v", ref.Coverage)
	}

	// Slow the whole leaf tier down so the primary mixer's answer is still
	// in flight when its transport dies.
	for _, l := range leaves {
		l.SetStraggle(200 * time.Millisecond)
	}
	type outcome struct {
		res *exec.Result
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := root.Query(countQuery)
		done <- outcome{res, err}
	}()
	time.Sleep(50 * time.Millisecond)
	proxy.SetDown(true)
	proxy.KillActive()

	o := <-done
	if o.err != nil {
		t.Fatalf("query after mixer kill: %v", o.err)
	}
	if o.res.Coverage != 1 {
		t.Errorf("coverage after failover = %v, want 1", o.res.Coverage)
	}
	if !bitIdenticalRows(sortedCopy(o.res.Rows), sortedCopy(ref.Rows)) {
		t.Error("failover answer diverged from the healthy baseline")
	}
	if st := root.Stats(); st.PrimaryFailures == 0 || st.Retries == 0 {
		t.Errorf("expected a kill-triggered re-dispatch; stats = %+v", st)
	}
}

// TestRebalanceMovesHotReplica: a straggling server's shard replica must be
// rebuilt on a cold server, after which dispatch stops visiting the
// straggler entirely.
func TestRebalanceMovesHotReplica(t *testing.T) {
	c, err := NewLocal(logs(2000), Options{
		Shards: 4, Replicas: 1, Servers: 3, Store: storeOpts(),
	})
	if err != nil {
		t.Fatal(err)
	}
	straggler := c.Leaves()[0] // shard 0's only replica, on srv0
	straggler.SetStraggle(30 * time.Millisecond)
	for i := 0; i < 8; i++ {
		if _, err := c.Query(countQuery); err != nil {
			t.Fatal(err)
		}
	}

	moves, err := c.Rebalance(RebalanceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(moves) != 1 {
		t.Fatalf("moves = %+v, want exactly one", moves)
	}
	mv := moves[0]
	if mv.Shard != 0 || mv.From != "srv0" || mv.To == "srv0" || mv.Reason != "hot" {
		t.Errorf("move = %+v, want shard 0 off srv0 for reason \"hot\"", mv)
	}
	if mv.LeafEWMA <= mv.MedianEWMA {
		t.Errorf("moved replica's EWMA %v not above median %v", mv.LeafEWMA, mv.MedianEWMA)
	}
	var entry PlacementEntry
	for _, e := range c.Placement() {
		if e.Shard == 0 {
			entry = e
		}
	}
	if entry.Server != mv.To {
		t.Errorf("placement table says shard 0 is on %s, move said %s", entry.Server, mv.To)
	}

	// The superseded leaf stops receiving dispatches, and answers stay
	// correct from the replacement replica.
	before := straggler.Inject().Calls()
	want := singleNodeResult(t, logs(2000), countQuery)
	for i := 0; i < 3; i++ {
		res, err := c.Query(countQuery)
		if err != nil {
			t.Fatal(err)
		}
		g := append([][]value.Value{}, res.Rows...)
		w := append([][]value.Value{}, want...)
		sortRows(g)
		sortRows(w)
		if !equalRows(t, g, w) {
			t.Fatal("post-rebalance answer diverged")
		}
	}
	if after := straggler.Inject().Calls(); after != before {
		t.Errorf("superseded leaf still dispatched to: %d -> %d calls", before, after)
	}
	if st := c.Stats(); st.Rebalances != 1 || st.ReplicasMoved != 1 {
		t.Errorf("stats = %+v, want one rebalance moving one replica", st)
	}

	// The fresh replica has no latency estimate yet; a second pass finds
	// nothing to move.
	if moves, _ := c.Rebalance(RebalanceOptions{}); len(moves) != 0 {
		t.Errorf("second pass moved %+v, want none", moves)
	}
}

// TestRebalanceMovesBreakerOpenReplica: a replica whose breaker is open is
// movable regardless of latency, and the move restores full coverage.
func TestRebalanceMovesBreakerOpenReplica(t *testing.T) {
	c, err := NewLocal(logs(1000), Options{
		Shards: 2, Replicas: 1, Servers: 3,
		BreakerThreshold: 1, MaxRetries: 0, Store: storeOpts(),
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Leaves()[1].SetFail(true) // shard 1's only replica
	res, err := c.Query(countQuery)
	if err != nil {
		t.Fatal(err)
	}
	if res.Coverage >= 1 {
		t.Fatalf("coverage = %v with a dead shard", res.Coverage)
	}

	moves, err := c.Rebalance(RebalanceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(moves) != 1 || moves[0].Shard != 1 || moves[0].Reason != "breaker-open" {
		t.Fatalf("moves = %+v, want shard 1 moved for reason \"breaker-open\"", moves)
	}
	res, err = c.Query(countQuery)
	if err != nil {
		t.Fatal(err)
	}
	if res.Coverage != 1 {
		t.Errorf("coverage after rebalance = %v, want 1", res.Coverage)
	}
}
