package cluster

// The dispatcher is the dispatch half of a serving-tree node, extracted
// from Cluster so that every level of the tree runs the same machinery:
// the coordinator embeds one to reach its children, and each Mixer embeds
// one to reach *its* children (leaves or deeper mixers). Hedging, retries,
// breakers and coverage accounting therefore apply per level — a straggling
// leaf is hedged by its mixer, a straggling mixer by the coordinator.

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"powerdrill/internal/exec"
)

// Stats counts distributed execution events.
type Stats struct {
	Queries         int64
	SubQueries      int64
	ReplicaRaces    int64 // sub-queries issued to more than one server
	PrimaryFailures int64 // sub-queries answered by a non-primary replica
	// Hedges counts secondary dispatches fired by the straggler threshold
	// (including the immediate hedge on shards with no latency estimate).
	Hedges int64
	// Retries counts re-dispatches after a replica error: speculative
	// immediate ones and backoff retries alike.
	Retries int64
	// DeadlineExpired counts sub-queries abandoned because the query
	// deadline expired before any replica answered.
	DeadlineExpired int64
	// ShardsMissing counts shard answers missing from served results —
	// every one of them degraded a query's coverage below 1.
	ShardsMissing int64
	// PartialAnswers counts queries served with Coverage < 1.
	PartialAnswers int64
	// BreakerOpens counts circuit breakers tripping open; BreakerSkips
	// counts dispatches skipped because a breaker was open.
	BreakerOpens int64
	BreakerSkips int64
	// Rebalances counts Rebalance calls that moved at least one replica;
	// ReplicasMoved counts the individual relocations.
	Rebalances    int64
	ReplicasMoved int64
}

// shardState holds one shard's replicas and its dispatch-side state.
type shardState struct {
	lat latEstimate

	mu       sync.Mutex
	replicas []*leafState
	rows     int64 // known row count (0 until learned; see learnRows)
}

// replicaList snapshots the replica set. The returned slice is immutable:
// the rebalancer replaces the whole slice (setReplica), never an element
// in place, so in-flight dispatches keep a consistent view.
func (s *shardState) replicaList() []*leafState {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.replicas
}

// setReplica swaps replica r for ls (copy-on-write) and returns the
// superseded leaf state, which is left to drain — in-flight sub-queries
// may still be using it.
func (s *shardState) setReplica(r int, ls *leafState) *leafState {
	s.mu.Lock()
	defer s.mu.Unlock()
	old := s.replicas[r]
	replicas := append([]*leafState(nil), s.replicas...)
	replicas[r] = ls
	s.replicas = replicas
	return old
}

// learnRows records the shard's row count, so coverage accounting can
// charge the shard even after its leaves die. NewLocal/OpenShards know it
// at assembly; RPC clusters learn it from the Stat RPC or the first
// answer.
func (s *shardState) learnRows(n int64) {
	if n <= 0 {
		return
	}
	s.mu.Lock()
	s.rows = n
	s.mu.Unlock()
}

func (s *shardState) knownRows() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rows
}

// dispatcher fans sub-queries out to replicated children and merges the
// answers, with per-child hedging, retries, breakers and coverage
// accounting. Cluster (the root) and Mixer (inner nodes) embed it.
type dispatcher struct {
	opts   Options
	shards []*shardState

	mu    sync.Mutex
	stats Stats

	// rowsKnown short-circuits the pre-query Stat round once every
	// shard's row count has been learned.
	rowsKnown atomic.Bool
}

// bump adds n to one stats counter.
func (d *dispatcher) bump(field *int64, n int64) {
	d.mu.Lock()
	*field += n
	d.mu.Unlock()
}

// Stats returns cumulative distributed-execution counters.
func (d *dispatcher) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// Health reports every child's dispatch-side health (breaker state,
// success/failure counts, latency estimate, last error), in
// shard-then-replica order.
func (d *dispatcher) Health() []LeafHealth {
	var out []LeafHealth
	for _, s := range d.shards {
		for _, ls := range s.replicaList() {
			out = append(out, ls.health())
		}
	}
	return out
}

// gather runs one fan-out round: scatter the sub-query to every shard,
// merge what arrived Fanout at a time, and charge shards that never
// answered to the stats so Coverage degrades correctly. It is the shared
// core of Cluster.QueryContext and Mixer.PartialQuery. The returned error
// is non-nil only when not a single shard answered or a merge failed.
func (d *dispatcher) gather(ctx context.Context, sqlText string) (*exec.Partial, []int, error) {
	// Shards whose row counts are still unknown are asked via the Stat
	// RPC concurrently with the scatter, so the very first query already
	// accounts a dead shard's rows in its Coverage.
	var rowsWG sync.WaitGroup
	if !d.allRowsKnown() {
		rowsWG.Add(1)
		go func() {
			defer rowsWG.Done()
			d.refreshRows(ctx)
		}()
	}
	partials, missing, err := d.scatter(ctx, sqlText)
	rowsWG.Wait()
	if err != nil {
		return nil, nil, err
	}
	merged, err := d.mergeTree(partials)
	if err != nil {
		return nil, nil, err
	}
	for _, si := range missing {
		merged.Stats.RowsTotal += d.shards[si].knownRows()
		merged.Stats.ShardsMissing++
	}
	if len(missing) > 0 {
		d.bump(&d.stats.ShardsMissing, int64(len(missing)))
	}
	return merged, missing, nil
}

// rowStatTimeout bounds the pre-query Stat round: a hung server must not
// hold up coverage accounting longer than this (the shard simply stays
// unknown and is retried on the next query).
const rowStatTimeout = 2 * time.Second

// allRowsKnown reports whether every shard's row count has been learned.
func (d *dispatcher) allRowsKnown() bool {
	if d.rowsKnown.Load() {
		return true
	}
	for _, s := range d.shards {
		if s.knownRows() <= 0 {
			return false
		}
	}
	d.rowsKnown.Store(true)
	return true
}

// refreshRows asks shards with unknown row counts for them through the
// optional RowCounter extension (the Leaf.Stat RPC). Shards with no
// answering replica stay unknown and are retried next query.
func (d *dispatcher) refreshRows(ctx context.Context) {
	ctx, cancel := context.WithTimeout(ctx, rowStatTimeout)
	defer cancel()
	var wg sync.WaitGroup
	for _, s := range d.shards {
		if s.knownRows() > 0 {
			continue
		}
		wg.Add(1)
		go func(s *shardState) {
			defer wg.Done()
			for _, ls := range s.replicaList() {
				rc, ok := ls.leaf.(RowCounter)
				if !ok {
					continue
				}
				if n, err := rc.NumRows(ctx); err == nil && n > 0 {
					s.learnRows(n)
					return
				}
			}
		}(s)
	}
	wg.Wait()
	d.allRowsKnown() // cache the verdict if everything answered
}

// scatter fans the sub-query out to every shard. It returns the partials
// that arrived and the indices of shards that did not; the error is
// non-nil only when not a single shard answered.
func (d *dispatcher) scatter(ctx context.Context, sqlText string) ([]*exec.Partial, []int, error) {
	results := make([]*exec.Partial, len(d.shards))
	errs := make([]error, len(d.shards))
	var wg sync.WaitGroup
	for i := range d.shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = d.askShard(ctx, i, sqlText)
		}(i)
	}
	wg.Wait()
	partials := make([]*exec.Partial, 0, len(d.shards))
	var missing []int
	var firstErr error
	for i, err := range errs {
		if err != nil {
			missing = append(missing, i)
			if firstErr == nil {
				firstErr = fmt.Errorf("cluster: shard %d: %w", i, err)
			}
			continue
		}
		partials = append(partials, results[i])
	}
	if len(partials) == 0 && firstErr != nil {
		return nil, nil, firstErr
	}
	return partials, missing, nil
}

// askShard answers one shard's sub-query with tiered hedging:
//
//  1. Dispatch to the primary (breaker-open replicas are skipped).
//  2. If it has not answered within the hedge delay, dispatch the replica
//     too; the first success wins. An error brings the replica in
//     immediately (speculative re-dispatch).
//  3. When every allowed replica has been tried, re-dispatch with capped
//     jittered backoff until MaxRetries or the deadline runs out.
func (d *dispatcher) askShard(ctx context.Context, si int, sqlText string) (*exec.Partial, error) {
	s := d.shards[si]
	replicas := s.replicaList()
	d.bump(&d.stats.SubQueries, 1)

	// Dispatch order: primary first, breaker-open leaves skipped. If every
	// breaker is open the shard fails fast — it will be probed again after
	// the cooldown — instead of burning the deadline on known-dead leaves.
	now := time.Now()
	order := make([]*leafState, 0, len(replicas))
	var skipped int64
	for _, ls := range replicas {
		if ls.allowed(now) {
			order = append(order, ls)
		} else {
			skipped++
		}
	}
	if skipped > 0 {
		d.bump(&d.stats.BreakerSkips, skipped)
	}
	if len(order) == 0 {
		return nil, fmt.Errorf("shard %d: all %d replicas circuit-open", si, len(replicas))
	}

	type answer struct {
		part    *exec.Partial
		err     error
		ls      *leafState
		elapsed time.Duration
	}
	// Buffered for every launch this sub-query can possibly make, so late
	// finishers never block (they just finish in the background, like the
	// paper's losing replica).
	ch := make(chan answer, len(order)*(1+d.opts.MaxRetries)+2)
	inflight := 0
	launch := func(ls *leafState) {
		inflight++
		go func() {
			start := time.Now()
			part, err := ls.leaf.PartialQuery(ctx, sqlText)
			elapsed := time.Since(start)
			if err == nil {
				// Per-leaf latency is observed here, in the launch
				// goroutine, so hedge losers that finish long after the
				// winner still feed the estimate the rebalancer reads — a
				// straggling replica looks slow even though it never wins.
				ls.observe(elapsed)
			}
			ch <- answer{part, err, ls, elapsed}
		}()
	}

	next := 0 // next undispatched entry in order
	launch(order[next])
	next++

	// The hedge timer is armed only while an undispatched replica remains.
	var hedgeCh <-chan time.Time
	if next < len(order) {
		t := time.NewTimer(d.opts.hedgeDelay(&s.lat))
		defer t.Stop()
		hedgeCh = t.C
	}

	retriesLeft := d.opts.MaxRetries
	retryAttempt := 0            // backoff exponent + rotation cursor
	var retryCh <-chan time.Time // pending backoff timer
	raced := false
	var firstErr error

	finish := func(a answer) *exec.Partial {
		a.ls.success()
		s.lat.observe(a.elapsed)
		s.learnRows(a.part.Stats.RowsTotal)
		if a.ls.replica != 0 {
			d.bump(&d.stats.PrimaryFailures, 1)
		}
		return a.part
	}
	markRaced := func(ls *leafState) {
		if !raced && ls != order[0] {
			raced = true
			d.bump(&d.stats.ReplicaRaces, 1)
		}
	}

	for {
		select {
		case a := <-ch:
			inflight--
			if a.err == nil {
				// Record outcomes that already arrived before returning the
				// win: dropping a buffered failure would slow its breaker.
			drain:
				for {
					select {
					case b := <-ch:
						inflight--
						if b.err == nil {
							b.ls.success()
						} else if b.ls.failure(b.err, time.Now()) {
							d.bump(&d.stats.BreakerOpens, 1)
						}
					default:
						break drain
					}
				}
				return finish(a), nil
			}
			if a.ls.failure(a.err, time.Now()) {
				d.bump(&d.stats.BreakerOpens, 1)
			}
			if firstErr == nil {
				firstErr = a.err
			}
			if ctx.Err() != nil {
				// Deadline already gone: no point re-dispatching.
				if inflight == 0 {
					d.bump(&d.stats.DeadlineExpired, 1)
					return nil, firstErr
				}
				continue
			}
			switch {
			case next < len(order):
				// Speculative re-dispatch: bring the replica in now
				// instead of waiting for the hedge timer.
				hedgeCh = nil
				d.bump(&d.stats.Retries, 1)
				markRaced(order[next])
				launch(order[next])
				next++
			case retriesLeft > 0 && retryCh == nil:
				retriesLeft--
				d.bump(&d.stats.Retries, 1)
				t := time.NewTimer(backoffDelay(d.opts.RetryBackoff, d.opts.HedgeMaxDelay, retryAttempt))
				defer t.Stop()
				retryCh = t.C
			case inflight == 0 && retryCh == nil:
				return nil, firstErr
			}
		case <-hedgeCh:
			hedgeCh = nil
			d.bump(&d.stats.Hedges, 1)
			markRaced(order[next])
			launch(order[next])
			next++
		case <-retryCh:
			retryCh = nil
			target := order[retryAttempt%len(order)]
			retryAttempt++
			markRaced(target)
			launch(target)
		case <-ctx.Done():
			// The deadline expired with attempts still in flight. Leaves
			// abandon injected waits and RPC calls promptly on ctx, so the
			// launched goroutines drain into the buffered channel without
			// anyone reading — no goroutine outlives its leaf call.
			d.bump(&d.stats.DeadlineExpired, 1)
			if firstErr != nil {
				return nil, firstErr
			}
			return nil, ctx.Err()
		}
	}
}

// mergeTree merges partials Fanout at a time — the in-process remnant of
// the computation tree. With real mixers in the topology each level
// arrives pre-merged and this folds only the node's own children; a flat
// coordinator still simulates every level here. Either way the float
// aggregates stay bit-for-bit identical: per-leaf sums ride
// PartialCell.SumFParts and are folded canonically at finalize.
func (d *dispatcher) mergeTree(parts []*exec.Partial) (*exec.Partial, error) {
	if len(parts) == 0 {
		return &exec.Partial{}, nil
	}
	level := parts
	for len(level) > 1 {
		var next []*exec.Partial
		for start := 0; start < len(level); start += d.opts.Fanout {
			end := start + d.opts.Fanout
			if end > len(level) {
				end = len(level)
			}
			acc := level[start]
			for _, p := range level[start+1 : end] {
				if err := exec.MergePartials(acc, p); err != nil {
					return nil, err
				}
			}
			next = append(next, acc)
		}
		level = next
	}
	return level[0], nil
}
