package cluster

import (
	"math"
	"net"
	"sort"
	"testing"
	"time"

	"powerdrill/internal/colstore"
	"powerdrill/internal/exec"
	"powerdrill/internal/table"
	"powerdrill/internal/value"
	"powerdrill/internal/workload"
)

func logs(rows int) *table.Table {
	return workload.QueryLogs(workload.LogsSpec{Rows: rows, Seed: 61})
}

func storeOpts() colstore.Options {
	return colstore.Options{
		PartitionFields:  []string{"country", "table_name"},
		MaxChunkRows:     500,
		OptimizeElements: true,
	}
}

// singleNodeResult computes the reference on one unsharded engine.
func singleNodeResult(t testing.TB, tbl *table.Table, q string) [][]value.Value {
	t.Helper()
	s, err := colstore.FromTable(tbl, storeOpts())
	if err != nil {
		t.Fatal(err)
	}
	res, err := exec.New(s, exec.Options{}).Query(q)
	if err != nil {
		t.Fatal(err)
	}
	return res.Rows
}

func sortRows(rows [][]value.Value) {
	sort.Slice(rows, func(a, b int) bool {
		for i := range rows[a] {
			if c := rows[a][i].Compare(rows[b][i]); c != 0 {
				return c < 0
			}
		}
		return false
	})
}

func equalRows(t *testing.T, a, b [][]value.Value) bool {
	t.Helper()
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		for j := range a[i] {
			av, bv := a[i][j], b[i][j]
			if av.Kind() == value.KindFloat64 && bv.Kind() == value.KindFloat64 {
				if math.Abs(av.Float()-bv.Float()) > 1e-6*math.Max(math.Abs(av.Float()), 1) {
					return false
				}
				continue
			}
			if !av.Equal(bv) {
				return false
			}
		}
	}
	return true
}

// distributedQueries exercises every mergeable aggregate.
func distributedQueries() []string {
	return []string{
		`SELECT country, COUNT(*) as c FROM data GROUP BY country ORDER BY c DESC, country ASC LIMIT 10;`,
		`SELECT country, SUM(latency) as s FROM data GROUP BY country ORDER BY s DESC, country ASC LIMIT 5;`,
		`SELECT country, MIN(latency), MAX(latency), AVG(latency) FROM data GROUP BY country;`,
		`SELECT date(timestamp) as d, COUNT(*), SUM(latency) FROM data WHERE country IN ("us", "de") GROUP BY d ORDER BY d ASC LIMIT 10;`,
		`SELECT user, MIN(table_name), MAX(table_name) FROM data GROUP BY user;`,
		`SELECT COUNT(*) FROM data WHERE latency > 500;`,
	}
}

// TestDistributedMatchesSingleNode is the Section 4 rewrite correctness
// claim: multi-level aggregation must be invisible in the results.
func TestDistributedMatchesSingleNode(t *testing.T) {
	tbl := logs(4000)
	for _, shards := range []int{1, 3, 8} {
		c, err := NewLocal(tbl, Options{
			Shards: shards, Fanout: 3, Replicas: 2,
			Store: storeOpts(),
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range distributedQueries() {
			want := singleNodeResult(t, tbl, q)
			got, err := c.Query(q)
			if err != nil {
				t.Fatalf("shards=%d %q: %v", shards, q, err)
			}
			w := append([][]value.Value{}, want...)
			g := append([][]value.Value{}, got.Rows...)
			sortRows(w)
			sortRows(g)
			if !equalRows(t, g, w) {
				t.Errorf("shards=%d: %q diverged: %d vs %d rows", shards, q, len(g), len(w))
			}
		}
	}
}

func TestReplicaHidesFailure(t *testing.T) {
	tbl := logs(2000)
	c, err := NewLocal(tbl, Options{Shards: 4, Replicas: 2, Store: storeOpts()})
	if err != nil {
		t.Fatal(err)
	}
	q := `SELECT country, COUNT(*) FROM data GROUP BY country;`
	want, err := c.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	// Kill every primary (replica index 0 of each shard).
	for i, leaf := range c.Leaves() {
		if i%2 == 0 {
			leaf.SetFail(true)
		}
	}
	got, err := c.Query(q)
	if err != nil {
		t.Fatalf("query with dead primaries: %v", err)
	}
	w := append([][]value.Value{}, want.Rows...)
	g := append([][]value.Value{}, got.Rows...)
	sortRows(w)
	sortRows(g)
	if !equalRows(t, g, w) {
		t.Error("results changed when primaries failed")
	}
	if c.Stats().PrimaryFailures == 0 {
		t.Error("no primary failures recorded despite dead primaries")
	}
	// Kill both replicas of one shard: the query now degrades gracefully —
	// a partial answer with the missing shard accounted in Coverage.
	c.Leaves()[1].SetFail(true)
	partial, err := c.Query(q)
	if err != nil {
		t.Fatalf("query with a whole shard dead: %v", err)
	}
	if partial.Coverage >= 1 {
		t.Errorf("coverage = %v with a whole shard dead, want < 1", partial.Coverage)
	}
	if partial.Stats.ShardsMissing != 1 {
		t.Errorf("ShardsMissing = %d, want 1", partial.Stats.ShardsMissing)
	}
	st := c.Stats()
	if st.ShardsMissing == 0 || st.PartialAnswers == 0 {
		t.Errorf("stats did not record the partial answer: %+v", st)
	}
	// MinCoverage restores fail-loudly semantics.
	c2, err := NewLocal(tbl, Options{Shards: 4, Replicas: 2, Store: storeOpts(), MinCoverage: 1})
	if err != nil {
		t.Fatal(err)
	}
	c2.Leaves()[0].SetFail(true)
	c2.Leaves()[1].SetFail(true)
	if _, err := c2.Query(q); err == nil {
		t.Error("query succeeded below MinCoverage")
	}
}

func TestReplicaHidesStraggler(t *testing.T) {
	tbl := logs(2000)
	c, err := NewLocal(tbl, Options{Shards: 2, Replicas: 2, Store: storeOpts()})
	if err != nil {
		t.Fatal(err)
	}
	// Make primaries very slow; replicas answer instantly.
	for i, leaf := range c.Leaves() {
		if i%2 == 0 {
			leaf.SetStraggle(300 * time.Millisecond)
		}
	}
	start := time.Now()
	if _, err := c.Query(`SELECT country, COUNT(*) FROM data GROUP BY country;`); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if elapsed > 200*time.Millisecond {
		t.Errorf("replicas did not hide stragglers: query took %v", elapsed)
	}
}

func TestNoReplication(t *testing.T) {
	tbl := logs(1000)
	c, err := NewLocal(tbl, Options{Shards: 3, Replicas: 1, Store: storeOpts()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Query(`SELECT country, COUNT(*) FROM data GROUP BY country;`); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.ReplicaRaces != 0 {
		t.Errorf("replica races recorded without replication: %+v", st)
	}
	// Without a replica a leaf failure costs that shard: the answer is
	// served anyway with its loss reported in Coverage.
	c.Leaves()[0].SetFail(true)
	res, err := c.Query(`SELECT country, COUNT(*) FROM data GROUP BY country;`)
	if err != nil {
		t.Fatalf("query with dead shard and no replicas: %v", err)
	}
	if res.Coverage >= 1 {
		t.Errorf("coverage = %v with a shard dead, want < 1", res.Coverage)
	}
	// All shards dead: nothing to serve, so the error surfaces.
	for _, leaf := range c.Leaves() {
		leaf.SetFail(true)
	}
	if _, err := c.Query(`SELECT country, COUNT(*) FROM data GROUP BY country;`); err == nil {
		t.Error("query succeeded with every shard dead")
	}
}

func TestCountDistinctMergesAcrossShards(t *testing.T) {
	tbl := logs(20_000)
	c, err := NewLocal(tbl, Options{Shards: 6, Replicas: 1, Store: storeOpts()})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Query(`SELECT COUNT(DISTINCT table_name) FROM data;`)
	if err != nil {
		t.Fatal(err)
	}
	// Exact reference.
	set := map[string]bool{}
	for _, v := range tbl.Column("table_name").Strs {
		set[v] = true
	}
	exact := float64(len(set))
	got := float64(res.Rows[0][0].Int())
	rel := math.Abs(got-exact) / exact
	t.Logf("distributed count distinct: exact=%.0f got=%.0f rel=%.4f", exact, got, rel)
	if rel > 0.15 {
		t.Errorf("distributed sketch error %.3f too large", rel)
	}
	// Exact mode must be rejected in distributed execution (Section 4).
	ce, err := NewLocal(tbl, Options{Shards: 2, Replicas: 1, Store: storeOpts(),
		Engine: exec.Options{ExactDistinct: true}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ce.Query(`SELECT COUNT(DISTINCT table_name) FROM data;`); err == nil {
		t.Error("exact distinct accepted in distributed mode")
	}
}

func TestRPCLeaf(t *testing.T) {
	tbl := logs(3000)
	shards := tbl.Shard(2)
	var leafSets [][]Leaf
	for _, shardTbl := range shards {
		store, err := colstore.FromTable(shardTbl, storeOpts())
		if err != nil {
			t.Fatal(err)
		}
		engine := exec.New(store, exec.Options{})
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go Serve(l, engine)
		remote, err := Dial(l.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		defer remote.Close()
		leafSets = append(leafSets, []Leaf{remote})
	}
	c := FromLeaves(leafSets, Options{Shards: 2, Replicas: 1})
	q := `SELECT country, COUNT(*) as c, SUM(latency), MIN(latency), AVG(latency) FROM data GROUP BY country ORDER BY c DESC, country ASC LIMIT 10;`
	got, err := c.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	want := singleNodeResult(t, tbl, q)
	g := append([][]value.Value{}, got.Rows...)
	w := append([][]value.Value{}, want...)
	sortRows(g)
	sortRows(w)
	if !equalRows(t, g, w) {
		t.Error("RPC cluster result diverged from single node")
	}
	if _, err := Dial("127.0.0.1:1"); err == nil {
		t.Error("Dial to dead port succeeded")
	}
}

func TestClusterStats(t *testing.T) {
	tbl := logs(1000)
	c, err := NewLocal(tbl, Options{Shards: 4, Replicas: 2, Store: storeOpts()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Query(`SELECT country, COUNT(*) FROM data GROUP BY country;`); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Queries != 1 || st.SubQueries != 4 || st.ReplicaRaces != 4 {
		t.Errorf("stats = %+v", st)
	}
}

func BenchmarkDistributedQuery(b *testing.B) {
	tbl := logs(50_000)
	c, err := NewLocal(tbl, Options{Shards: 4, Replicas: 2, Store: colstore.Options{
		PartitionFields:  []string{"country", "table_name"},
		MaxChunkRows:     5000,
		OptimizeElements: true,
	}})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Query(`SELECT country, COUNT(*) as c FROM data GROUP BY country ORDER BY c DESC LIMIT 10;`); err != nil {
			b.Fatal(err)
		}
	}
}

// TestDistributedHaving: "the root executes any having statements"
// (Section 4) — HAVING must filter the fully merged groups, not per-shard
// partials.
func TestDistributedHaving(t *testing.T) {
	tbl := logs(4000)
	c, err := NewLocal(tbl, Options{Shards: 4, Replicas: 1, Store: storeOpts()})
	if err != nil {
		t.Fatal(err)
	}
	q := `SELECT country, COUNT(*) AS c FROM data GROUP BY country HAVING c > 300 ORDER BY c DESC;`
	got, err := c.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	want := singleNodeResult(t, tbl, q)
	if len(got.Rows) != len(want) {
		t.Fatalf("distributed HAVING kept %d groups, single node %d", len(got.Rows), len(want))
	}
	// Per-shard counts are all below the threshold for some groups that
	// pass globally; if HAVING ran at the leaves those groups would be
	// lost. Verify at least one group's total is above the threshold but
	// its per-shard share is below it.
	perShard := float64(4000) / 4 / 10 // rough expected share per country per shard
	_ = perShard
	for _, r := range got.Rows {
		if r[1].Int() <= 300 {
			t.Errorf("group %v leaked through distributed HAVING", r)
		}
	}
}
