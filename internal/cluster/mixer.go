package cluster

// Mixer is the paper's intermediate serving-tree node made real: an inner
// node that answers PartialQuery exactly like a leaf, but computes the
// answer by fanning the sub-query out to its children — leaves or deeper
// mixers — with the same dispatch machinery the coordinator uses, and
// merging the child partials into one. Because a Mixer satisfies Leaf
// (and RowCounter), trees compose recursively: a parent cannot tell a
// mixer from a leaf, in-process or across the wire (ServeNode registers
// the identical RPC surface under both the "Leaf" and "Mixer" names).

import (
	"context"
	"fmt"

	"powerdrill/internal/exec"
)

// Mixer is an inner node of the serving tree.
type Mixer struct {
	dispatcher
	name string
}

// NewMixer builds an inner node over childSets; childSets[i] holds the
// replicas of child subtree i (replica mixers are legal — two mixers over
// the same leaves hedge each other the way leaf replicas do).
func NewMixer(name string, childSets [][]Leaf, opts Options) *Mixer {
	opts.Shards = len(childSets)
	opts = opts.withDefaults()
	m := &Mixer{name: name}
	m.opts = opts
	for i, replicas := range childSets {
		s := &shardState{}
		for r, leaf := range replicas {
			s.replicas = append(s.replicas, opts.newLeafState(leaf, i, r, leaf.Name()))
		}
		m.shards = append(m.shards, s)
	}
	return m
}

// Name implements Leaf.
func (m *Mixer) Name() string { return m.name }

// PartialQuery implements Leaf: gather the children's partials and return
// ONE merged partial — unfinalized, so the parent keeps merging (AVG
// division, ORDER BY and LIMIT happen once, at the root). Children that
// never answered are charged to the stats (RowsTotal grows, RowsCovered
// does not), which is how a leaf death three levels down still shows up
// in the root's Coverage; the error is non-nil only when not a single
// child answered.
func (m *Mixer) PartialQuery(ctx context.Context, sqlText string) (*exec.Partial, error) {
	if m.opts.Deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, m.opts.Deadline)
		defer cancel()
	}
	merged, missing, err := m.gather(ctx, sqlText)
	if err != nil {
		return nil, err
	}
	m.mu.Lock()
	m.stats.Queries++
	if len(missing) > 0 {
		m.stats.PartialAnswers++
	}
	m.mu.Unlock()
	return merged, nil
}

// NumRows implements RowCounter: the rows this subtree should span — the
// sum over every child, asking unknown ones through their own Stat path.
// It errors while any child's count is unknown rather than undercount,
// so a parent never learns a too-small total for coverage accounting.
func (m *Mixer) NumRows(ctx context.Context) (int64, error) {
	m.refreshRows(ctx)
	var total int64
	for i, s := range m.shards {
		n := s.knownRows()
		if n <= 0 {
			return 0, fmt.Errorf("cluster: mixer %s: child %d row count unknown", m.name, i)
		}
		total += n
	}
	return total, nil
}
