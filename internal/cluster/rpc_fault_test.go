package cluster

// RPC-layer fault tolerance over real loopback TCP: connection teardown
// and redial, mid-query connection kills with replica failover, non-fatal
// assembly against down servers, and concurrent queries under stragglers
// (the -race exercise).

import (
	"context"
	"net"
	"sync"
	"testing"
	"time"

	"powerdrill/internal/colstore"
	"powerdrill/internal/exec"
	"powerdrill/internal/table"
	"powerdrill/internal/value"
)

// serveShardLeaf starts an RPC server for one shard table and returns its
// address plus the server-side LocalLeaf (for fault injection).
func serveShardLeaf(t *testing.T, shardTbl *table.Table) (string, *LocalLeaf) {
	t.Helper()
	store, err := colstore.FromTable(shardTbl, storeOpts())
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	leaf := NewLocalLeaf(ln.Addr().String(), exec.New(store, exec.Options{}))
	go ServeLeaf(ln, leaf)
	return ln.Addr().String(), leaf
}

// TestRemoteLeafRedial: a RemoteLeaf must survive its server going away
// and coming back — teardown on connection error, redial (after the dial
// backoff window) on recovery.
func TestRemoteLeafRedial(t *testing.T) {
	tbl := logs(1000)
	addr, _ := serveShardLeaf(t, tbl.Shard(1)[0])
	proxy, err := NewFlakyProxy(addr, 7)
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	remote := NewRemoteLeaf(proxy.Addr())
	defer remote.Close()
	ctx := context.Background()
	if _, err := remote.PartialQuery(ctx, countQuery); err != nil {
		t.Fatalf("first query: %v", err)
	}
	// Server "dies": refuse new connections, sever the live one.
	proxy.SetDown(true)
	if _, err := remote.PartialQuery(ctx, countQuery); err == nil {
		t.Fatal("query succeeded against a down server")
	}
	// Server comes back; after the dial backoff window the next call
	// redials transparently.
	proxy.SetDown(false)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := remote.PartialQuery(ctx, countQuery); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("leaf never redialed after the server came back")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestRPCFailoverMidQuery: the primary's TCP connection is severed while
// its (straggling) sub-query is in flight; the replica must answer and the
// stats must record the failover.
func TestRPCFailoverMidQuery(t *testing.T) {
	tbl := logs(2000)
	shardTbl := tbl.Shard(1)[0]
	primaryAddr, primaryLeaf := serveShardLeaf(t, shardTbl)
	replicaAddr, _ := serveShardLeaf(t, shardTbl)
	proxy, err := NewFlakyProxy(primaryAddr, 11)
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	primary := NewRemoteLeaf(proxy.Addr())
	replica := NewRemoteLeaf(replicaAddr)
	defer primary.Close()
	defer replica.Close()
	c := FromLeaves([][]Leaf{{primary, replica}}, Options{Replicas: 2})

	// Warm up so hedging is tiered (primary first) from here on.
	want, err := c.Query(countQuery)
	if err != nil {
		t.Fatal(err)
	}
	// The primary's server straggles; sever its connection mid-call.
	primaryLeaf.SetStraggle(300 * time.Millisecond)
	killed := make(chan struct{})
	go func() {
		time.Sleep(50 * time.Millisecond)
		proxy.KillActive()
		close(killed)
	}()
	start := time.Now()
	got, err := c.Query(countQuery)
	if err != nil {
		t.Fatalf("query with primary killed mid-flight: %v", err)
	}
	<-killed
	if elapsed := time.Since(start); elapsed > 250*time.Millisecond {
		t.Errorf("failover took %v, straggle was not hidden", elapsed)
	}
	if got.Coverage != 1 {
		t.Errorf("coverage = %v after failover, want 1", got.Coverage)
	}
	g := append([][]value.Value{}, got.Rows...)
	w := append([][]value.Value{}, want.Rows...)
	sortRows(g)
	sortRows(w)
	if !equalRows(t, g, w) {
		t.Error("failover answer diverged")
	}
	st := c.Stats()
	if st.PrimaryFailures == 0 {
		t.Errorf("failover not recorded: %+v", st)
	}
	// The torn-down primary connection must redial on a later query.
	primaryLeaf.SetStraggle(0)
	if _, err := c.Query(countQuery); err != nil {
		t.Fatalf("query after failover: %v", err)
	}
}

// TestRemoteAssemblyNonFatal: assembling a cluster against a server that
// is down must not fail; the cluster serves degraded answers (missing
// shard counted) and the leaf joins automatically once the server is up
// and its breaker half-opens.
func TestRemoteAssemblyNonFatal(t *testing.T) {
	tbl := logs(2000)
	shards := tbl.Shard(2)
	upAddr, _ := serveShardLeaf(t, shards[0])
	downAddr, _ := serveShardLeaf(t, shards[1])
	proxy, err := NewFlakyProxy(downAddr, 13)
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()
	proxy.SetDown(true)

	up := NewRemoteLeaf(upAddr)
	down := NewRemoteLeaf(proxy.Addr())
	defer up.Close()
	defer down.Close()
	c := FromLeaves([][]Leaf{{up}, {down}}, Options{
		Replicas:        1,
		BreakerCooldown: 50 * time.Millisecond,
	})

	res, err := c.Query(countQuery)
	if err != nil {
		t.Fatalf("query with one shard's server down: %v", err)
	}
	if res.Stats.ShardsMissing != 1 {
		t.Errorf("ShardsMissing = %d, want 1", res.Stats.ShardsMissing)
	}
	if c.Stats().PartialAnswers == 0 {
		t.Error("partial answer not recorded")
	}
	// Bring the server up: after the breaker cooldown a half-open probe
	// redials and the shard rejoins with full coverage.
	proxy.SetDown(false)
	want := singleNodeResult(t, tbl, countQuery)
	deadline := time.Now().Add(5 * time.Second)
	for {
		res, err = c.Query(countQuery)
		if err == nil && res.Coverage == 1 && res.Stats.ShardsMissing == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("shard never rejoined: coverage=%v missing=%d err=%v",
				res.Coverage, res.Stats.ShardsMissing, err)
		}
		time.Sleep(25 * time.Millisecond)
	}
	g := append([][]value.Value{}, res.Rows...)
	w := append([][]value.Value{}, want...)
	sortRows(g)
	sortRows(w)
	if !equalRows(t, g, w) {
		t.Error("rejoined cluster answer diverged from single node")
	}
}

// TestRPCClusterConcurrent hammers a real-TCP cluster with concurrent
// queries while stragglers are injected server-side — the -race exercise
// for the dispatch machinery and the RemoteLeaf lifecycle.
func TestRPCClusterConcurrent(t *testing.T) {
	tbl := logs(3000)
	shards := tbl.Shard(2)
	var leafSets [][]Leaf
	var serverLeaves []*LocalLeaf
	for _, shardTbl := range shards {
		var replicas []Leaf
		for r := 0; r < 2; r++ {
			addr, leaf := serveShardLeaf(t, shardTbl)
			serverLeaves = append(serverLeaves, leaf)
			remote := NewRemoteLeaf(addr)
			defer remote.Close()
			replicas = append(replicas, remote)
		}
		leafSets = append(leafSets, replicas)
	}
	c := FromLeaves(leafSets, Options{Replicas: 2, Deadline: 10 * time.Second})
	want := singleNodeResult(t, tbl, countQuery)
	// Straggle one replica per shard server-side.
	for i, leaf := range serverLeaves {
		if i%2 == 0 {
			leaf.SetStraggle(30 * time.Millisecond)
		}
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				res, err := c.Query(countQuery)
				if err != nil {
					errs <- err
					return
				}
				got := append([][]value.Value{}, res.Rows...)
				w := append([][]value.Value{}, want...)
				sortRows(got)
				sortRows(w)
				if !equalRows(t, got, w) {
					t.Error("concurrent query diverged")
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
