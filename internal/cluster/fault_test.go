package cluster

// Tests for the fault-tolerance machinery: deadlines, hedged re-dispatch,
// retries, circuit breakers and partial-result coverage, driven through
// the composable fault injectors in faultinject.go.

import (
	"runtime"
	"sort"
	"testing"
	"time"
)

const countQuery = `SELECT country, COUNT(*) FROM data GROUP BY country;`

// TestDeadlineNoHang is the regression test for hung leaves: both replicas
// of every shard hang far longer than the deadline; the query must return
// promptly (error or partial) and must not leak the dispatch goroutines.
func TestDeadlineNoHang(t *testing.T) {
	tbl := logs(1000)
	c, err := NewLocal(tbl, Options{
		Shards: 2, Replicas: 2, Store: storeOpts(),
		Deadline: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, leaf := range c.Leaves() {
		leaf.SetStraggle(10 * time.Second)
	}
	before := runtime.NumGoroutine()
	start := time.Now()
	res, err := c.Query(countQuery)
	elapsed := time.Since(start)
	if elapsed > time.Second {
		t.Fatalf("query hung for %v with a 100ms deadline", elapsed)
	}
	if err == nil && res.Coverage >= 1 {
		t.Error("full answer from a cluster of hung leaves")
	}
	if c.Stats().DeadlineExpired == 0 {
		t.Error("deadline expiry not recorded")
	}
	// Injected waits are abandoned on ctx, so the dispatch goroutines must
	// drain quickly — well before the injected 10s.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
}

// TestHealthyCoverageIsOne: with nothing injected, answers are full and
// say so.
func TestHealthyCoverageIsOne(t *testing.T) {
	tbl := logs(1000)
	c, err := NewLocal(tbl, Options{Shards: 3, Replicas: 2, Store: storeOpts()})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Query(countQuery)
	if err != nil {
		t.Fatal(err)
	}
	if res.Coverage != 1 {
		t.Errorf("healthy coverage = %v, want 1", res.Coverage)
	}
	if res.Stats.RowsCovered != int64(tbl.NumRows()) || res.Stats.RowsTotal != int64(tbl.NumRows()) {
		t.Errorf("rows covered/total = %d/%d, want %d/%d",
			res.Stats.RowsCovered, res.Stats.RowsTotal, tbl.NumRows(), tbl.NumRows())
	}
	if res.Stats.ShardsMissing != 0 {
		t.Errorf("ShardsMissing = %d on a healthy cluster", res.Stats.ShardsMissing)
	}
}

// TestShardLossCoverage is the acceptance scenario: both replicas of one
// shard dead, the query completes within the deadline with Coverage < 1
// and the missing shard's rows charged to the denominator.
func TestShardLossCoverage(t *testing.T) {
	tbl := logs(2000)
	c, err := NewLocal(tbl, Options{
		Shards: 4, Replicas: 2, Store: storeOpts(),
		Deadline: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Kill both replicas of shard 0.
	c.Leaves()[0].SetFail(true)
	c.Leaves()[1].SetFail(true)
	start := time.Now()
	res, err := c.Query(countQuery)
	if err != nil {
		t.Fatalf("query with one shard fully dead: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("query took %v, beyond the deadline", elapsed)
	}
	if res.Coverage >= 1 || res.Coverage <= 0 {
		t.Errorf("coverage = %v, want in (0, 1)", res.Coverage)
	}
	if res.Stats.ShardsMissing != 1 {
		t.Errorf("ShardsMissing = %d, want 1", res.Stats.ShardsMissing)
	}
	// The denominator must include the dead shard's rows.
	if res.Stats.RowsTotal != int64(tbl.NumRows()) {
		t.Errorf("RowsTotal = %d, want %d (all shards accounted)", res.Stats.RowsTotal, tbl.NumRows())
	}
	if res.Stats.RowsCovered >= res.Stats.RowsTotal {
		t.Errorf("RowsCovered = %d not below RowsTotal = %d", res.Stats.RowsCovered, res.Stats.RowsTotal)
	}
	st := c.Stats()
	if st.Retries == 0 {
		t.Errorf("no retries recorded against a dead shard: %+v", st)
	}
}

// TestHedgingHidesStragglersP99 is the acceptance scenario for tiered
// hedging: 30% of shards get a straggling primary at 10× the straggle
// base; hedged re-dispatch must keep p99 well under the straggle delay.
func TestHedgingHidesStragglersP99(t *testing.T) {
	tbl := logs(2000)
	c, err := NewLocal(tbl, Options{Shards: 10, Replicas: 2, Store: storeOpts()})
	if err != nil {
		t.Fatal(err)
	}
	// Warm up: establish per-shard latency estimates so hedge delays are
	// proportional to real sub-query latency.
	if _, err := c.Query(countQuery); err != nil {
		t.Fatal(err)
	}
	// Straggle the primaries of 3 of 10 shards at 10× a generous base.
	const straggle = 200 * time.Millisecond
	for i, leaf := range c.Leaves() {
		if shard := i / 2; i%2 == 0 && shard < 3 {
			leaf.SetStraggle(straggle)
		}
	}
	const n = 30
	lat := make([]time.Duration, 0, n)
	for i := 0; i < n; i++ {
		start := time.Now()
		res, err := c.Query(countQuery)
		if err != nil {
			t.Fatal(err)
		}
		if res.Coverage != 1 {
			t.Fatalf("coverage dropped to %v under stragglers", res.Coverage)
		}
		lat = append(lat, time.Since(start))
	}
	sort.Slice(lat, func(a, b int) bool { return lat[a] < lat[b] })
	p50, p99 := lat[n/2], lat[n*99/100]
	t.Logf("p50=%v p99=%v straggle=%v stats=%+v", p50, p99, straggle, c.Stats())
	if p99 >= straggle {
		t.Errorf("p99 = %v did not beat the %v straggle: hedging is not re-dispatching", p99, straggle)
	}
	if c.Stats().Hedges == 0 {
		t.Error("no hedges recorded under stragglers")
	}
}

// TestBreakerSkipsDeadLeaf: a sticky-dead leaf must stop receiving
// dispatches once its breaker opens, and rejoin via a half-open probe
// after it heals and the cooldown passes.
func TestBreakerSkipsDeadLeaf(t *testing.T) {
	tbl := logs(1000)
	c, err := NewLocal(tbl, Options{
		Shards: 2, Replicas: 2, Store: storeOpts(),
		BreakerThreshold: 2, BreakerCooldown: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	dead := c.Leaves()[0] // shard 0 primary
	dead.SetFail(true)
	// Straggle the healthy replica slightly so the primary's failure is
	// always processed before the replica's win (deterministic breaker
	// accounting for this test).
	c.Leaves()[1].SetStraggle(20 * time.Millisecond)
	// Two failures trip the breaker.
	for i := 0; i < 2; i++ {
		if _, err := c.Query(countQuery); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.Health()[0].Breaker; got != "open" {
		t.Fatalf("breaker = %q after %d failures, want open (health=%+v)", got, 2, c.Health()[0])
	}
	if c.Stats().BreakerOpens == 0 {
		t.Error("breaker trip not recorded in stats")
	}
	// While open (within cooldown), dispatch must skip the leaf entirely.
	calls := dead.Inject().Calls()
	if _, err := c.Query(countQuery); err != nil {
		t.Fatal(err)
	}
	if got := dead.Inject().Calls(); got != calls {
		t.Errorf("open breaker did not stop dispatch: calls %d -> %d", calls, got)
	}
	if c.Stats().BreakerSkips == 0 {
		t.Error("breaker skip not recorded in stats")
	}
	// Heal the leaf, wait out the cooldown: a half-open probe closes it.
	dead.SetFail(false)
	time.Sleep(60 * time.Millisecond)
	if _, err := c.Query(countQuery); err != nil {
		t.Fatal(err)
	}
	if got := dead.Inject().Calls(); got == calls {
		t.Error("half-open probe never dispatched after cooldown")
	}
	if got := c.Health()[0].Breaker; got != "closed" {
		t.Errorf("breaker = %q after successful probe, want closed", got)
	}
}

// TestRetriesAbsorbTransientFaults: one-shot failures (FailNext) must be
// absorbed by re-dispatch with no coverage loss.
func TestRetriesAbsorbTransientFaults(t *testing.T) {
	tbl := logs(1000)
	c, err := NewLocal(tbl, Options{Shards: 2, Replicas: 2, Store: storeOpts()})
	if err != nil {
		t.Fatal(err)
	}
	// Fail the next call on every leaf: first dispatches all fail, the
	// re-dispatches succeed.
	for _, leaf := range c.Leaves() {
		leaf.Inject().FailNext(1)
	}
	res, err := c.Query(countQuery)
	if err != nil {
		t.Fatalf("transient faults were fatal: %v", err)
	}
	if res.Coverage != 1 {
		t.Errorf("coverage = %v after transient faults, want 1", res.Coverage)
	}
	if c.Stats().Retries == 0 {
		t.Error("no retries recorded")
	}
}

// TestErrorRateEventuallyCovers: a flaky cluster (30% error rate on every
// leaf) still serves full answers nearly always, via hedges and retries.
func TestErrorRateEventuallyCovers(t *testing.T) {
	tbl := logs(1000)
	c, err := NewLocal(tbl, Options{
		Shards: 4, Replicas: 2, Store: storeOpts(),
		// Keep breakers out of the way: a flaky (not dead) leaf should
		// keep being asked.
		BreakerThreshold: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, leaf := range c.Leaves() {
		leaf.Inject().SetErrorRate(0.3, int64(1000+i))
	}
	full := 0
	const n = 20
	for i := 0; i < n; i++ {
		res, err := c.Query(countQuery)
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		if res.Coverage == 1 {
			full++
		}
	}
	// Each sub-query gets 2 replicas + 2 retries at 30% failure: the
	// chance all four fail is ~0.8%; over 4 shards × 20 queries a run of
	// mostly-full answers is overwhelmingly likely.
	if full < n*3/4 {
		t.Errorf("only %d/%d queries reached full coverage at 30%% error rate", full, n)
	}
	if c.Stats().Retries == 0 {
		t.Error("no retries recorded under an injected error rate")
	}
}

// TestSlowStartHedged: a slow-starting leaf (cold caches after a restart)
// straggles its first calls; hedging must absorb the warm-up without
// failing queries.
func TestSlowStartHedged(t *testing.T) {
	tbl := logs(1000)
	c, err := NewLocal(tbl, Options{Shards: 2, Replicas: 2, Store: storeOpts()})
	if err != nil {
		t.Fatal(err)
	}
	// Warm up latency estimates first so the slow-start is a straggle
	// relative to a real estimate.
	if _, err := c.Query(countQuery); err != nil {
		t.Fatal(err)
	}
	c.Leaves()[0].Inject().SetSlowStart(3, 300*time.Millisecond)
	for i := 0; i < 4; i++ {
		start := time.Now()
		res, err := c.Query(countQuery)
		if err != nil {
			t.Fatal(err)
		}
		if res.Coverage != 1 {
			t.Fatalf("coverage = %v during slow start", res.Coverage)
		}
		if elapsed := time.Since(start); elapsed > 250*time.Millisecond {
			t.Errorf("query %d took %v: slow-start straggle not hedged", i, elapsed)
		}
	}
}

// TestBackoffDelay sanity-checks the retry backoff envelope.
func TestBackoffDelay(t *testing.T) {
	base, max := 2*time.Millisecond, 100*time.Millisecond
	for attempt := 0; attempt < 10; attempt++ {
		want := base << attempt
		if want > max {
			want = max
		}
		for i := 0; i < 20; i++ {
			d := backoffDelay(base, max, attempt)
			if d < want/2 || d > want {
				t.Fatalf("attempt %d: delay %v outside [%v, %v]", attempt, d, want/2, want)
			}
		}
	}
	if d := backoffDelay(0, max, 3); d != 0 {
		t.Errorf("zero base gave delay %v", d)
	}
}

// TestHedgeDelay checks the straggler-threshold policy: immediate while
// cold, proportional and clamped once warm.
func TestHedgeDelay(t *testing.T) {
	o := Options{}.withDefaults()
	var lat latEstimate
	if d := o.hedgeDelay(&lat); d != 0 {
		t.Errorf("cold shard hedge delay = %v, want 0 (immediate race)", d)
	}
	lat.observe(10 * time.Millisecond)
	if d := o.hedgeDelay(&lat); d != 30*time.Millisecond {
		t.Errorf("hedge delay = %v, want 3x estimate = 30ms", d)
	}
	lat = latEstimate{}
	lat.observe(10 * time.Microsecond)
	if d := o.hedgeDelay(&lat); d != o.HedgeMinDelay {
		t.Errorf("hedge delay = %v, want clamped to min %v", d, o.HedgeMinDelay)
	}
	lat = latEstimate{}
	lat.observe(10 * time.Second)
	if d := o.hedgeDelay(&lat); d != o.HedgeMaxDelay {
		t.Errorf("hedge delay = %v, want clamped to max %v", d, o.HedgeMaxDelay)
	}
}
