package cluster

// Fault injection for the serving tree. The paper's leaves run on a busy
// shared cluster where processes straggle (overload, eviction), die, come
// back, and flap — the harness here reproduces those modes composably so
// the hedging/breaker/coverage machinery can be exercised deterministically
// in tests and swept in pdbench -exp faulttol:
//
//   - Straggle:   every call waits a fixed extra latency (overloaded box).
//   - SlowStart:  only the next n calls straggle (page-cache-cold restart).
//   - Fail:       sticky failure until cleared (dead machine).
//   - FailNext:   the next n calls fail, then recover (transient fault).
//   - ErrorRate:  each call fails with probability p (flaky machine).
//
// For the RPC path, FlakyProxy sits between a RemoteLeaf and its server
// and injects transport-level faults: refused connections, randomly
// dropped dials, and mid-call connection kills.

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"time"
)

// Injector simulates machine-level faults for one leaf. All knobs compose:
// a call first waits out the injected latency (abandoning the wait when the
// caller's context expires), then rolls for failure. The zero value injects
// nothing.
type Injector struct {
	name string

	mu             sync.Mutex
	straggle       time.Duration
	slowStartLeft  int
	slowStartDelay time.Duration
	failSticky     bool
	failNext       int
	errorRate      float64
	rng            *rand.Rand
	calls          int64
}

// SetStraggle makes every subsequent call take at least d (0 clears).
func (in *Injector) SetStraggle(d time.Duration) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.straggle = d
}

// SetFail makes subsequent calls fail until cleared (a dead machine).
func (in *Injector) SetFail(fail bool) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.failSticky = fail
}

// FailNext makes exactly the next n calls fail, then recovers — a
// transient fault the retry/half-open machinery should absorb.
func (in *Injector) FailNext(n int) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.failNext = n
}

// SetErrorRate makes each call fail independently with probability p,
// deterministically per seed (0 clears).
func (in *Injector) SetErrorRate(p float64, seed int64) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.errorRate = p
	in.rng = rand.New(rand.NewSource(seed))
}

// SetSlowStart makes only the next n calls take at least d — a server
// warming its caches after joining.
func (in *Injector) SetSlowStart(n int, d time.Duration) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.slowStartLeft = n
	in.slowStartDelay = d
}

// Calls reports how many calls reached this leaf (including injected
// failures) — tests use it to prove open breakers stop dispatch.
func (in *Injector) Calls() int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.calls
}

// admit applies the injected faults for one call: it waits out the
// configured latency — returning early with ctx.Err() if the caller's
// deadline expires first, which is how a hung leaf stops hanging the
// query — and then returns the injected error, if any.
func (in *Injector) admit(ctx context.Context) error {
	in.mu.Lock()
	in.calls++
	delay := in.straggle
	if in.slowStartLeft > 0 {
		in.slowStartLeft--
		if in.slowStartDelay > delay {
			delay = in.slowStartDelay
		}
	}
	fail := in.failSticky
	if !fail && in.failNext > 0 {
		in.failNext--
		fail = true
	}
	if !fail && in.errorRate > 0 && in.rng.Float64() < in.errorRate {
		fail = true
	}
	name := in.name
	in.mu.Unlock()

	if delay > 0 {
		t := time.NewTimer(delay)
		defer t.Stop()
		select {
		case <-t.C:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	if fail {
		return fmt.Errorf("cluster: leaf %s: injected failure", name)
	}
	return ctx.Err()
}

// FlakyProxy is a TCP proxy that injects transport faults between an RPC
// client and a leaf server: connections can be refused (down), dropped at
// accept with a probability, or severed mid-call. It exercises the
// RemoteLeaf teardown/redial path over a real socket.
type FlakyProxy struct {
	ln     net.Listener
	target string

	mu       sync.Mutex
	conns    map[net.Conn]struct{}
	dropProb float64
	rng      *rand.Rand
	down     bool
	dropped  int64
}

// NewFlakyProxy starts a proxy on a loopback port forwarding to target.
func NewFlakyProxy(target string, seed int64) (*FlakyProxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &FlakyProxy{
		ln:     ln,
		target: target,
		conns:  make(map[net.Conn]struct{}),
		rng:    rand.New(rand.NewSource(seed)),
	}
	go p.acceptLoop()
	return p, nil
}

// Addr is the address clients should dial instead of the target.
func (p *FlakyProxy) Addr() string { return p.ln.Addr().String() }

// SetDown refuses new connections and severs active ones while true.
func (p *FlakyProxy) SetDown(down bool) {
	p.mu.Lock()
	p.down = down
	p.mu.Unlock()
	if down {
		p.KillActive()
	}
}

// SetDropProb drops each new connection with probability prob.
func (p *FlakyProxy) SetDropProb(prob float64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.dropProb = prob
}

// KillActive severs every established connection mid-flight: in-flight
// RPC calls on them fail with a connection error.
func (p *FlakyProxy) KillActive() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for c := range p.conns {
		c.Close()
	}
}

// Dropped reports how many connections were refused or dropped.
func (p *FlakyProxy) Dropped() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.dropped
}

// Close stops the proxy and severs everything.
func (p *FlakyProxy) Close() error {
	err := p.ln.Close()
	p.KillActive()
	return err
}

func (p *FlakyProxy) acceptLoop() {
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return
		}
		p.mu.Lock()
		drop := p.down || (p.dropProb > 0 && p.rng.Float64() < p.dropProb)
		if drop {
			p.dropped++
		}
		p.mu.Unlock()
		if drop {
			conn.Close()
			continue
		}
		upstream, err := net.Dial("tcp", p.target)
		if err != nil {
			conn.Close()
			continue
		}
		p.mu.Lock()
		p.conns[conn] = struct{}{}
		p.conns[upstream] = struct{}{}
		p.mu.Unlock()
		closeBoth := func() {
			conn.Close()
			upstream.Close()
			p.mu.Lock()
			delete(p.conns, conn)
			delete(p.conns, upstream)
			p.mu.Unlock()
		}
		var once sync.Once
		pipe := func(dst, src net.Conn) {
			io.Copy(dst, src)
			once.Do(closeBoth)
		}
		go pipe(upstream, conn)
		go pipe(conn, upstream)
	}
}
