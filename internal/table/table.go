// Package table holds raw, row-ordered tables in memory: the input of the
// import pipeline (partitioning, reordering, column-store construction) and
// of the row-wise baseline backends. Columns are typed slices; the nested
// relational model of the paper is out of scope (its experiments use flat
// records, see "Notation and Simplifying Assumptions").
package table

import (
	"fmt"

	"powerdrill/internal/value"
)

// Column is one typed column of a raw table. Exactly one of the payload
// slices is populated, matching Kind.
type Column struct {
	Name   string
	Kind   value.Kind
	Strs   []string
	Ints   []int64
	Floats []float64
}

// Len returns the number of values in the column.
func (c *Column) Len() int {
	switch c.Kind {
	case value.KindString:
		return len(c.Strs)
	case value.KindInt64:
		return len(c.Ints)
	case value.KindFloat64:
		return len(c.Floats)
	}
	return 0
}

// Value returns the value at row i.
func (c *Column) Value(i int) value.Value {
	switch c.Kind {
	case value.KindString:
		return value.String(c.Strs[i])
	case value.KindInt64:
		return value.Int64(c.Ints[i])
	case value.KindFloat64:
		return value.Float64(c.Floats[i])
	}
	panic("table: column with invalid kind")
}

// Table is a named set of equally long columns.
type Table struct {
	Name string
	Cols []*Column
}

// New creates an empty table.
func New(name string) *Table { return &Table{Name: name} }

// AddStringColumn appends a string column; vals must match the current row
// count if other columns exist.
func (t *Table) AddStringColumn(name string, vals []string) *Table {
	t.addColumn(&Column{Name: name, Kind: value.KindString, Strs: vals})
	return t
}

// AddInt64Column appends an int64 column.
func (t *Table) AddInt64Column(name string, vals []int64) *Table {
	t.addColumn(&Column{Name: name, Kind: value.KindInt64, Ints: vals})
	return t
}

// AddFloat64Column appends a float64 column.
func (t *Table) AddFloat64Column(name string, vals []float64) *Table {
	t.addColumn(&Column{Name: name, Kind: value.KindFloat64, Floats: vals})
	return t
}

func (t *Table) addColumn(c *Column) {
	if len(t.Cols) > 0 && c.Len() != t.NumRows() {
		panic(fmt.Sprintf("table: column %q has %d rows, table has %d", c.Name, c.Len(), t.NumRows()))
	}
	for _, existing := range t.Cols {
		if existing.Name == c.Name {
			panic(fmt.Sprintf("table: duplicate column %q", c.Name))
		}
	}
	t.Cols = append(t.Cols, c)
}

// NumRows returns the row count.
func (t *Table) NumRows() int {
	if len(t.Cols) == 0 {
		return 0
	}
	return t.Cols[0].Len()
}

// Column returns the named column, or nil.
func (t *Table) Column(name string) *Column {
	for _, c := range t.Cols {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// ColumnNames returns the column names in declaration order.
func (t *Table) ColumnNames() []string {
	out := make([]string, len(t.Cols))
	for i, c := range t.Cols {
		out[i] = c.Name
	}
	return out
}

// Permute returns a new table with rows reordered so that new row i holds
// old row perm[i]. It panics if perm is not a permutation of the row
// indices — reordering must never silently drop or duplicate rows.
func (t *Table) Permute(perm []int) *Table {
	n := t.NumRows()
	if len(perm) != n {
		panic(fmt.Sprintf("table: permutation has %d entries for %d rows", len(perm), n))
	}
	seen := make([]bool, n)
	for _, p := range perm {
		if p < 0 || p >= n || seen[p] {
			panic("table: invalid permutation")
		}
		seen[p] = true
	}
	out := New(t.Name)
	for _, c := range t.Cols {
		switch c.Kind {
		case value.KindString:
			vals := make([]string, n)
			for i, p := range perm {
				vals[i] = c.Strs[p]
			}
			out.AddStringColumn(c.Name, vals)
		case value.KindInt64:
			vals := make([]int64, n)
			for i, p := range perm {
				vals[i] = c.Ints[p]
			}
			out.AddInt64Column(c.Name, vals)
		case value.KindFloat64:
			vals := make([]float64, n)
			for i, p := range perm {
				vals[i] = c.Floats[p]
			}
			out.AddFloat64Column(c.Name, vals)
		}
	}
	return out
}

// Select returns a new table holding the given rows (in the given order),
// used for sharding. Indices may repeat; callers that need a permutation
// use Permute.
func (t *Table) Select(rows []int) *Table {
	out := New(t.Name)
	for _, c := range t.Cols {
		switch c.Kind {
		case value.KindString:
			vals := make([]string, len(rows))
			for i, p := range rows {
				vals[i] = c.Strs[p]
			}
			out.AddStringColumn(c.Name, vals)
		case value.KindInt64:
			vals := make([]int64, len(rows))
			for i, p := range rows {
				vals[i] = c.Ints[p]
			}
			out.AddInt64Column(c.Name, vals)
		case value.KindFloat64:
			vals := make([]float64, len(rows))
			for i, p := range rows {
				vals[i] = c.Floats[p]
			}
			out.AddFloat64Column(c.Name, vals)
		}
	}
	return out
}

// Shard splits the table into n shards by striping rows quasi-randomly
// (row i goes to shard determined by a multiplicative hash of i). This is
// the Section 4 layout: sharding first for load balance, partitioning into
// chunks afterwards per shard.
func (t *Table) Shard(n int) []*Table {
	if n <= 0 {
		panic(fmt.Sprintf("table: invalid shard count %d", n))
	}
	rowSets := make([][]int, n)
	for i := 0; i < t.NumRows(); i++ {
		s := int((uint64(i) * 0x9e3779b97f4a7c15) >> 33 % uint64(n))
		rowSets[s] = append(rowSets[s], i)
	}
	out := make([]*Table, n)
	for i, rows := range rowSets {
		out[i] = t.Select(rows)
		out[i].Name = fmt.Sprintf("%s.shard%d", t.Name, i)
	}
	return out
}

// Row materializes row i as values (for baselines and tests).
func (t *Table) Row(i int) []value.Value {
	out := make([]value.Value, len(t.Cols))
	for j, c := range t.Cols {
		out[j] = c.Value(i)
	}
	return out
}
