package table

import (
	"testing"

	"powerdrill/internal/value"
)

func sample() *Table {
	t := New("t")
	t.AddStringColumn("country", []string{"de", "us", "de", "fr"})
	t.AddInt64Column("latency", []int64{10, 20, 30, 40})
	t.AddFloat64Column("score", []float64{0.1, 0.2, 0.3, 0.4})
	return t
}

func TestBasics(t *testing.T) {
	tbl := sample()
	if tbl.NumRows() != 4 || len(tbl.Cols) != 3 {
		t.Fatalf("NumRows=%d Cols=%d", tbl.NumRows(), len(tbl.Cols))
	}
	if c := tbl.Column("latency"); c == nil || c.Kind != value.KindInt64 {
		t.Fatal("Column(latency) wrong")
	}
	if tbl.Column("nope") != nil {
		t.Fatal("Column(nope) should be nil")
	}
	names := tbl.ColumnNames()
	if len(names) != 3 || names[0] != "country" || names[2] != "score" {
		t.Fatalf("ColumnNames = %v", names)
	}
	row := tbl.Row(1)
	if row[0].Str() != "us" || row[1].Int() != 20 || row[2].Float() != 0.2 {
		t.Fatalf("Row(1) = %v", row)
	}
}

func TestColumnValue(t *testing.T) {
	tbl := sample()
	if v := tbl.Column("country").Value(3); v.Str() != "fr" {
		t.Errorf("Value = %v", v)
	}
	if v := tbl.Column("latency").Value(0); v.Int() != 10 {
		t.Errorf("Value = %v", v)
	}
	if v := tbl.Column("score").Value(2); v.Float() != 0.3 {
		t.Errorf("Value = %v", v)
	}
}

func TestEmptyTable(t *testing.T) {
	tbl := New("empty")
	if tbl.NumRows() != 0 {
		t.Error("empty table has rows")
	}
}

func TestAddColumnPanics(t *testing.T) {
	tbl := sample()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("mismatched length accepted")
			}
		}()
		tbl.AddInt64Column("bad", []int64{1})
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("duplicate column accepted")
			}
		}()
		tbl.AddStringColumn("country", []string{"a", "b", "c", "d"})
	}()
}

func TestPermute(t *testing.T) {
	tbl := sample()
	out := tbl.Permute([]int{3, 2, 1, 0})
	if got := out.Column("country").Strs; got[0] != "fr" || got[3] != "de" {
		t.Errorf("permuted strings = %v", got)
	}
	if got := out.Column("latency").Ints; got[0] != 40 || got[3] != 10 {
		t.Errorf("permuted ints = %v", got)
	}
	if got := out.Column("score").Floats; got[1] != 0.3 {
		t.Errorf("permuted floats = %v", got)
	}
	// Original untouched.
	if tbl.Column("country").Strs[0] != "de" {
		t.Error("Permute mutated the source")
	}
}

func TestPermuteRejectsInvalid(t *testing.T) {
	tbl := sample()
	for _, perm := range [][]int{
		{0, 1, 2},          // short
		{0, 1, 2, 2},       // duplicate
		{0, 1, 2, 4},       // out of range
		{0, 1, 2, -1},      // negative
		{0, 1, 2, 3, 3, 3}, // long
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Permute(%v) accepted", perm)
				}
			}()
			tbl.Permute(perm)
		}()
	}
}

func TestSelect(t *testing.T) {
	tbl := sample()
	out := tbl.Select([]int{1, 1, 3})
	if out.NumRows() != 3 {
		t.Fatalf("NumRows = %d", out.NumRows())
	}
	if got := out.Column("country").Strs; got[0] != "us" || got[1] != "us" || got[2] != "fr" {
		t.Errorf("selected = %v", got)
	}
}

func TestShard(t *testing.T) {
	tbl := New("big")
	vals := make([]int64, 10_000)
	for i := range vals {
		vals[i] = int64(i)
	}
	tbl.AddInt64Column("id", vals)
	shards := tbl.Shard(7)
	if len(shards) != 7 {
		t.Fatalf("got %d shards", len(shards))
	}
	total := 0
	seen := map[int64]bool{}
	for _, s := range shards {
		total += s.NumRows()
		for _, v := range s.Column("id").Ints {
			if seen[v] {
				t.Fatalf("row %d in two shards", v)
			}
			seen[v] = true
		}
	}
	if total != 10_000 {
		t.Errorf("shards hold %d rows, want 10000", total)
	}
	// Quasi-random sharding should be roughly balanced (within 3x of even).
	for i, s := range shards {
		if s.NumRows() < 10_000/7/3 || s.NumRows() > 3*10_000/7 {
			t.Errorf("shard %d badly balanced: %d rows", i, s.NumRows())
		}
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Shard(0) accepted")
			}
		}()
		tbl.Shard(0)
	}()
}
