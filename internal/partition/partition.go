// Package partition implements the paper's composite range partitioning
// (Section 2.2): the user names an ordered set of fields — a "natural
// primary key", typically 3–5 fields chosen by a domain expert — and the
// data is split iteratively into chunks. The largest chunk is always split
// next ("heaviest first"), by a balanced range split on the first named
// field that still has at least two distinct values in that chunk.
// Splitting stops when no chunk exceeds the row threshold (the paper uses
// 50'000).
//
// The output is a permutation of the rows plus chunk boundaries, so the
// column store can lay chunks out contiguously. Chunks are emitted in
// lexicographic order of their field ranges, which keeps neighbouring
// chunks similar — the property the Zippy and reordering experiments of
// Section 3 build on.
package partition

import (
	"container/heap"
	"fmt"
	"sort"

	"powerdrill/internal/table"
	"powerdrill/internal/value"
)

// Spec configures a partitioning run.
type Spec struct {
	// Fields is the ordered list of split fields.
	Fields []string
	// MaxChunkRows is the splitting threshold (default 50'000, the
	// paper's choice).
	MaxChunkRows int
}

// Result describes the produced layout.
type Result struct {
	// Perm maps new row order to original row indices: chunk c covers
	// Perm[Bounds[c]:Bounds[c+1]].
	Perm []int
	// Bounds has one entry per chunk boundary; len(Bounds) = chunks+1.
	Bounds []int
}

// NumChunks returns the number of chunks.
func (r *Result) NumChunks() int { return len(r.Bounds) - 1 }

// chunk is a work item: a set of original row indices plus its recursion
// identity for deterministic ordering.
type chunk struct {
	rows []int
	seq  int // creation sequence, tie-breaker
}

// chunkHeap orders chunks by size descending ("heaviest first").
type chunkHeap []*chunk

func (h chunkHeap) Len() int { return len(h) }
func (h chunkHeap) Less(i, j int) bool {
	if len(h[i].rows) != len(h[j].rows) {
		return len(h[i].rows) > len(h[j].rows)
	}
	return h[i].seq < h[j].seq
}
func (h chunkHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *chunkHeap) Push(x any)   { *h = append(*h, x.(*chunk)) }
func (h *chunkHeap) Pop() any {
	old := *h
	n := len(old)
	c := old[n-1]
	*h = old[:n-1]
	return c
}

// Partition splits tbl according to spec.
func Partition(tbl *table.Table, spec Spec) (*Result, error) {
	if spec.MaxChunkRows <= 0 {
		spec.MaxChunkRows = 50_000
	}
	cols := make([]*table.Column, len(spec.Fields))
	for i, f := range spec.Fields {
		c := tbl.Column(f)
		if c == nil {
			return nil, fmt.Errorf("partition: unknown field %q", f)
		}
		cols[i] = c
	}
	n := tbl.NumRows()
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	if n == 0 {
		return &Result{Perm: all, Bounds: []int{0, 0}}, nil
	}

	h := &chunkHeap{{rows: all}}
	heap.Init(h)
	seq := 1
	var done []*chunk

	for h.Len() > 0 {
		c := heap.Pop(h).(*chunk)
		if len(c.rows) <= spec.MaxChunkRows {
			done = append(done, c)
			continue
		}
		left, right, ok := split(c.rows, cols)
		if !ok {
			// No field distinguishes these rows; the chunk stays larger
			// than the threshold (all rows identical on the key).
			done = append(done, c)
			continue
		}
		heap.Push(h, &chunk{rows: left, seq: seq})
		heap.Push(h, &chunk{rows: right, seq: seq + 1})
		seq += 2
	}

	// Order chunks lexicographically by their minimal key tuple so the
	// on-disk layout follows the field order.
	sort.Slice(done, func(i, j int) bool {
		return compareChunks(done[i], done[j], cols) < 0
	})

	res := &Result{Bounds: []int{0}}
	for _, c := range done {
		res.Perm = append(res.Perm, c.rows...)
		res.Bounds = append(res.Bounds, len(res.Perm))
	}
	return res, nil
}

// split performs one balanced range split on the first field with at least
// two distinct values among rows. It reports ok=false if every field is
// constant on the chunk.
func split(rows []int, cols []*table.Column) (left, right []int, ok bool) {
	for _, col := range cols {
		distinct := distinctValues(rows, col)
		if len(distinct) < 2 {
			continue
		}
		pivot := balancedPivot(rows, col, distinct)
		for _, r := range rows {
			if col.Value(r).Compare(pivot) < 0 {
				left = append(left, r)
			} else {
				right = append(right, r)
			}
		}
		return left, right, true
	}
	return nil, nil, false
}

// distinctValues returns the sorted distinct values of col over rows.
func distinctValues(rows []int, col *table.Column) []value.Value {
	seen := make(map[string]value.Value)
	for _, r := range rows {
		v := col.Value(r)
		seen[v.String()+"\x00"+v.Kind().String()] = v
		if len(seen) > 4096 {
			break // enough resolution for a balanced split
		}
	}
	out := make([]value.Value, 0, len(seen))
	for _, v := range seen {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

// balancedPivot picks the distinct value v such that splitting into
// {rows < v} and {rows >= v} is as even as possible, with both sides
// guaranteed non-empty.
func balancedPivot(rows []int, col *table.Column, distinct []value.Value) value.Value {
	counts := make([]int, len(distinct))
	for _, r := range rows {
		v := col.Value(r)
		i := sort.Search(len(distinct), func(i int) bool { return distinct[i].Compare(v) >= 0 })
		if i < len(distinct) && distinct[i].Compare(v) == 0 {
			counts[i]++
		}
	}
	half := len(rows) / 2
	acc := 0
	best := 1
	bestDiff := len(rows)
	for i := 0; i < len(distinct)-1; i++ {
		acc += counts[i]
		diff := acc - half
		if diff < 0 {
			diff = -diff
		}
		if diff < bestDiff {
			bestDiff = diff
			best = i + 1
		}
	}
	return distinct[best]
}

// compareChunks orders two chunks by their minimal key tuples.
func compareChunks(a, b *chunk, cols []*table.Column) int {
	for _, col := range cols {
		av := minValue(a.rows, col)
		bv := minValue(b.rows, col)
		if c := av.Compare(bv); c != 0 {
			return c
		}
	}
	// Equal minima (can happen when a later field split them): use the
	// first row index for a stable, deterministic order.
	switch {
	case a.rows[0] < b.rows[0]:
		return -1
	case a.rows[0] > b.rows[0]:
		return 1
	}
	return 0
}

func minValue(rows []int, col *table.Column) value.Value {
	min := col.Value(rows[0])
	for _, r := range rows[1:] {
		if v := col.Value(r); v.Compare(min) < 0 {
			min = v
		}
	}
	return min
}
