package partition

import (
	"testing"
	"testing/quick"

	"powerdrill/internal/table"
	"powerdrill/internal/workload"
)

func logs(rows int) *table.Table {
	return workload.QueryLogs(workload.LogsSpec{Rows: rows, Seed: 42})
}

func TestPartitionBasicInvariants(t *testing.T) {
	tbl := logs(20_000)
	res, err := Partition(tbl, Spec{Fields: []string{"country", "table_name"}, MaxChunkRows: 1000})
	if err != nil {
		t.Fatal(err)
	}
	// Perm is a permutation.
	if len(res.Perm) != tbl.NumRows() {
		t.Fatalf("perm has %d entries", len(res.Perm))
	}
	seen := make([]bool, tbl.NumRows())
	for _, p := range res.Perm {
		if seen[p] {
			t.Fatal("duplicate row in permutation")
		}
		seen[p] = true
	}
	// Bounds are monotone and cover everything.
	if res.Bounds[0] != 0 || res.Bounds[len(res.Bounds)-1] != tbl.NumRows() {
		t.Fatalf("bounds do not cover the table: %v", res.Bounds[:3])
	}
	for i := 1; i < len(res.Bounds); i++ {
		if res.Bounds[i] <= res.Bounds[i-1] {
			t.Fatal("empty or inverted chunk")
		}
	}
	// Threshold respected, except for chunks that are constant on the whole
	// key (splitting stops when no field has two distinct values left).
	countries := tbl.Column("country").Strs
	names := tbl.Column("table_name").Strs
	for c := 0; c < res.NumChunks(); c++ {
		size := res.Bounds[c+1] - res.Bounds[c]
		if size <= 1000 {
			continue
		}
		rows := res.Perm[res.Bounds[c]:res.Bounds[c+1]]
		for _, r := range rows[1:] {
			if countries[r] != countries[rows[0]] || names[r] != names[rows[0]] {
				t.Errorf("chunk %d has %d rows and is splittable, threshold 1000", c, size)
				break
			}
		}
	}
}

func TestHeaviestFirstBalance(t *testing.T) {
	tbl := logs(50_000)
	res, err := Partition(tbl, Spec{Fields: []string{"country", "table_name"}, MaxChunkRows: 2000})
	if err != nil {
		t.Fatal(err)
	}
	// "Heaviest first" should produce fairly even chunks: no chunk smaller
	// than ~5% of the threshold, and a chunk count near rows/threshold.
	chunks := res.NumChunks()
	if chunks < 25 || chunks > 150 {
		t.Errorf("chunk count %d outside the expected range for 50K/2K", chunks)
	}
	small := 0
	for c := 0; c < chunks; c++ {
		if res.Bounds[c+1]-res.Bounds[c] < 100 {
			small++
		}
	}
	if small > chunks/3 {
		t.Errorf("%d/%d chunks are tiny; splitting is unbalanced", small, chunks)
	}
}

// TestPartitionFieldLocality verifies the property the Section 3 "Chunks"
// experiment relies on: fields used in the partition order have few
// distinct values per chunk.
func TestPartitionFieldLocality(t *testing.T) {
	tbl := logs(30_000)
	res, err := Partition(tbl, Spec{Fields: []string{"country", "table_name"}, MaxChunkRows: 1500})
	if err != nil {
		t.Fatal(err)
	}
	countries := tbl.Column("country").Strs
	totalDistinct := 0
	for c := 0; c < res.NumChunks(); c++ {
		set := map[string]bool{}
		for _, r := range res.Perm[res.Bounds[c]:res.Bounds[c+1]] {
			set[countries[r]] = true
		}
		totalDistinct += len(set)
	}
	avg := float64(totalDistinct) / float64(res.NumChunks())
	if avg > 3 {
		t.Errorf("average %.1f distinct countries per chunk, want ≤3 (25 overall)", avg)
	}
}

func TestPartitionSmallTable(t *testing.T) {
	tbl := logs(100)
	res, err := Partition(tbl, Spec{Fields: []string{"country"}, MaxChunkRows: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumChunks() != 1 {
		t.Errorf("small table split into %d chunks", res.NumChunks())
	}
}

func TestPartitionEmptyTable(t *testing.T) {
	tbl := table.New("empty")
	tbl.AddStringColumn("a", nil)
	res, err := Partition(tbl, Spec{Fields: []string{"a"}, MaxChunkRows: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Perm) != 0 {
		t.Error("empty table produced rows")
	}
}

func TestPartitionUnknownField(t *testing.T) {
	if _, err := Partition(logs(100), Spec{Fields: []string{"nope"}}); err == nil {
		t.Error("unknown field accepted")
	}
}

func TestPartitionConstantKey(t *testing.T) {
	// All rows identical on the key: unsplittable, must terminate with one
	// oversized chunk rather than loop.
	tbl := table.New("const")
	vals := make([]string, 5000)
	for i := range vals {
		vals[i] = "same"
	}
	tbl.AddStringColumn("k", vals)
	res, err := Partition(tbl, Spec{Fields: []string{"k"}, MaxChunkRows: 100})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumChunks() != 1 || res.Bounds[1] != 5000 {
		t.Errorf("constant key: chunks=%d", res.NumChunks())
	}
}

func TestPartitionFallsToSecondField(t *testing.T) {
	// First field constant; second must drive the splits.
	tbl := table.New("t")
	k1 := make([]string, 4000)
	k2 := make([]int64, 4000)
	for i := range k1 {
		k1[i] = "c"
		k2[i] = int64(i % 40)
	}
	tbl.AddStringColumn("k1", k1)
	tbl.AddInt64Column("k2", k2)
	res, err := Partition(tbl, Spec{Fields: []string{"k1", "k2"}, MaxChunkRows: 500})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumChunks() < 8 {
		t.Errorf("second field not used: %d chunks", res.NumChunks())
	}
	for c := 0; c < res.NumChunks(); c++ {
		if res.Bounds[c+1]-res.Bounds[c] > 500 {
			t.Errorf("chunk %d exceeds threshold", c)
		}
	}
}

func TestChunkOrderFollowsFieldRanges(t *testing.T) {
	tbl := logs(20_000)
	res, err := Partition(tbl, Spec{Fields: []string{"country", "table_name"}, MaxChunkRows: 1000})
	if err != nil {
		t.Fatal(err)
	}
	countries := tbl.Column("country").Strs
	// The minimum country of each chunk must be non-decreasing across the
	// chunk sequence (chunks sorted by their key ranges).
	prev := ""
	for c := 0; c < res.NumChunks(); c++ {
		min := countries[res.Perm[res.Bounds[c]]]
		for _, r := range res.Perm[res.Bounds[c]:res.Bounds[c+1]] {
			if countries[r] < min {
				min = countries[r]
			}
		}
		if min < prev {
			t.Fatalf("chunk %d min country %q < previous %q", c, min, prev)
		}
		prev = min
	}
}

func TestQuickPartitionAlwaysPermutation(t *testing.T) {
	f := func(seed int64, sizes uint8) bool {
		rows := int(sizes)%500 + 1
		tbl := workload.QueryLogs(workload.LogsSpec{Rows: rows, Seed: seed})
		res, err := Partition(tbl, Spec{Fields: []string{"country", "user"}, MaxChunkRows: 50})
		if err != nil {
			return false
		}
		if len(res.Perm) != rows {
			return false
		}
		seen := make([]bool, rows)
		for _, p := range res.Perm {
			if p < 0 || p >= rows || seen[p] {
				return false
			}
			seen[p] = true
		}
		return res.Bounds[len(res.Bounds)-1] == rows
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func BenchmarkPartition(b *testing.B) {
	tbl := logs(100_000)
	spec := Spec{Fields: []string{"country", "table_name"}, MaxChunkRows: 5000}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Partition(tbl, spec); err != nil {
			b.Fatal(err)
		}
	}
}
