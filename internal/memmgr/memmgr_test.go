package memmgr

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// loader returns a LoadFunc producing a fixed payload and counting calls.
func loader(calls *atomic.Int64, size int64) LoadFunc {
	return func() (any, int64, int64, error) {
		calls.Add(1)
		return make([]byte, size), size, size * 2, nil
	}
}

func TestAcquireColdThenWarm(t *testing.T) {
	for _, policy := range []string{"lru", "2q", "arc"} {
		t.Run(policy, func(t *testing.T) {
			m := New(1000, policy)
			var calls atomic.Int64
			v, cold, err := m.Acquire("a", loader(&calls, 100))
			if err != nil || !cold || v == nil {
				t.Fatalf("first Acquire = %v cold=%v err=%v", v, cold, err)
			}
			m.Release("a")
			_, cold, err = m.Acquire("a", loader(&calls, 100))
			if err != nil || cold {
				t.Fatalf("second Acquire cold=%v err=%v, want warm", cold, err)
			}
			m.Release("a")
			if calls.Load() != 1 {
				t.Fatalf("load ran %d times, want 1", calls.Load())
			}
			st := m.Stats()
			if st.ColdLoads != 1 || st.Hits != 1 || st.ResidentBytes != 100 || st.DiskBytesRead != 200 {
				t.Fatalf("stats = %+v", st)
			}
		})
	}
}

func TestBudgetEvictsCold(t *testing.T) {
	m := New(250, "lru")
	var calls atomic.Int64
	for _, k := range []string{"a", "b", "c"} {
		if _, _, err := m.Acquire(k, loader(&calls, 100)); err != nil {
			t.Fatal(err)
		}
		m.Release(k)
	}
	st := m.Stats()
	if st.ResidentBytes > 250 {
		t.Fatalf("resident %d exceeds budget 250", st.ResidentBytes)
	}
	if st.Evictions == 0 {
		t.Fatal("expected evictions under a 250-byte budget with 300 bytes loaded")
	}
	// "a" (least recently used) must be cold again; "c" warm.
	if _, cold, _ := m.Acquire("c", loader(&calls, 100)); cold {
		t.Fatal("most recent entry was evicted")
	}
	m.Release("c")
	if _, cold, _ := m.Acquire("a", loader(&calls, 100)); !cold {
		t.Fatal("evicted entry came back warm")
	}
	m.Release("a")
}

func TestPinnedEntriesSurviveBudgetPressure(t *testing.T) {
	m := New(150, "2q")
	var calls atomic.Int64
	// Pin "a" and keep it pinned while loading entries that overflow the
	// budget.
	if _, _, err := m.Acquire("a", loader(&calls, 100)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		k := fmt.Sprintf("x%d", i)
		if _, _, err := m.Acquire(k, loader(&calls, 100)); err != nil {
			t.Fatal(err)
		}
		m.Release(k)
	}
	before := calls.Load()
	if _, cold, _ := m.Acquire("a", loader(&calls, 100)); cold {
		t.Fatal("pinned entry was evicted")
	}
	if calls.Load() != before {
		t.Fatal("pinned re-acquire triggered a load")
	}
	m.Release("a")
	m.Release("a")
	st := m.Stats()
	if st.PinnedBytes != 0 {
		t.Fatalf("pinned bytes = %d after full release", st.PinnedBytes)
	}
	if st.ResidentBytes > 150 {
		t.Fatalf("resident %d exceeds budget after release", st.ResidentBytes)
	}
}

func TestOversizedEntryDroppedOnRelease(t *testing.T) {
	m := New(50, "lru")
	var calls atomic.Int64
	if _, _, err := m.Acquire("big", loader(&calls, 100)); err != nil {
		t.Fatal(err)
	}
	// While pinned it is resident even though it exceeds the budget.
	if st := m.Stats(); st.PinnedBytes != 100 {
		t.Fatalf("pinned = %d, want 100", st.PinnedBytes)
	}
	m.Release("big")
	st := m.Stats()
	if st.ResidentBytes != 0 || st.Evictions != 1 || st.EvictedBytes != 100 {
		t.Fatalf("after release: %+v", st)
	}
	if _, cold, _ := m.Acquire("big", loader(&calls, 100)); !cold {
		t.Fatal("oversized entry should reload cold")
	}
	m.Release("big")
}

func TestUnlimitedBudgetNeverEvicts(t *testing.T) {
	m := New(0, "2q")
	var calls atomic.Int64
	for i := 0; i < 100; i++ {
		k := fmt.Sprintf("k%d", i)
		if _, _, err := m.Acquire(k, loader(&calls, 1000)); err != nil {
			t.Fatal(err)
		}
		m.Release(k)
	}
	st := m.Stats()
	if st.Evictions != 0 || st.ResidentItems != 100 || st.ResidentBytes != 100_000 {
		t.Fatalf("unlimited stats = %+v", st)
	}
}

func TestSingleflightLoad(t *testing.T) {
	m := New(0, "lru")
	var calls atomic.Int64
	var started sync.WaitGroup
	release := make(chan struct{})
	slow := func() (any, int64, int64, error) {
		calls.Add(1)
		<-release
		return "v", 10, 10, nil
	}
	const n = 16
	var wg sync.WaitGroup
	errs := make([]error, n)
	started.Add(n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			started.Done()
			_, _, errs[i] = m.Acquire("k", slow)
		}(i)
	}
	started.Wait()
	close(release)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if calls.Load() != 1 {
		t.Fatalf("load ran %d times, want 1", calls.Load())
	}
	st := m.Stats()
	if st.ColdLoads != 1 || st.Hits != n-1 {
		t.Fatalf("stats = %+v", st)
	}
	for i := 0; i < n; i++ {
		m.Release("k")
	}
	if st := m.Stats(); st.PinnedBytes != 0 {
		t.Fatalf("pinned = %d after all releases", st.PinnedBytes)
	}
}

func TestLoadErrorPropagatesAndRetries(t *testing.T) {
	m := New(0, "lru")
	boom := errors.New("boom")
	fail := func() (any, int64, int64, error) { return nil, 0, 0, boom }
	if _, _, err := m.Acquire("k", fail); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	// A failed load leaves nothing resident; the next Acquire retries.
	var calls atomic.Int64
	if _, cold, err := m.Acquire("k", loader(&calls, 10)); err != nil || !cold {
		t.Fatalf("retry cold=%v err=%v", cold, err)
	}
	m.Release("k")
}

func TestConcurrentChurn(t *testing.T) {
	m := New(500, "arc")
	var calls atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := fmt.Sprintf("k%d", (w+i)%10)
				v, _, err := m.Acquire(k, loader(&calls, 100))
				if err != nil {
					t.Error(err)
					return
				}
				if len(v.([]byte)) != 100 {
					t.Error("bad value")
					return
				}
				m.Release(k)
			}
		}(w)
	}
	wg.Wait()
	st := m.Stats()
	if st.PinnedBytes != 0 {
		t.Fatalf("pinned = %d after churn", st.PinnedBytes)
	}
	if st.ResidentBytes > 500 {
		t.Fatalf("resident %d exceeds budget", st.ResidentBytes)
	}
}

func TestDropNamespace(t *testing.T) {
	m := New(0, "")
	var calls atomic.Int64
	for _, key := range []string{"seg1\x00a", "seg1\x00b", "seg2\x00a"} {
		if _, _, err := m.Acquire(key, loader(&calls, 100)); err != nil {
			t.Fatal(err)
		}
		m.Release(key)
	}
	dropped, bytes := m.DropNamespace("seg1\x00")
	if dropped != 2 || bytes != 200 {
		t.Fatalf("DropNamespace = (%d, %d), want (2, 200)", dropped, bytes)
	}
	st := m.Stats()
	if st.ResidentBytes != 100 || st.ResidentItems != 1 {
		t.Fatalf("after drop: %+v", st)
	}
	// The surviving namespace still answers warm; the dropped one reloads.
	_, cold, _ := m.Acquire("seg2\x00a", loader(&calls, 100))
	m.Release("seg2\x00a")
	if cold {
		t.Fatal("seg2 entry dropped with seg1 namespace")
	}
	_, cold, _ = m.Acquire("seg1\x00a", loader(&calls, 100))
	m.Release("seg1\x00a")
	if !cold {
		t.Fatal("seg1 entry survived DropNamespace")
	}
}

func TestDropNamespacePinnedStraggler(t *testing.T) {
	m := New(0, "")
	var calls atomic.Int64
	// Pinned entry: dropped only when its last pin releases, and it must
	// not re-enter the policy then.
	if _, _, err := m.Acquire("seg1\x00a", loader(&calls, 100)); err != nil {
		t.Fatal(err)
	}
	dropped, _ := m.DropNamespace("seg1\x00")
	if dropped != 0 {
		t.Fatalf("pinned entry dropped while held: %d", dropped)
	}
	m.Release("seg1\x00a")
	if st := m.Stats(); st.ResidentBytes != 0 || st.ResidentItems != 0 {
		t.Fatalf("condemned entry survived release: %+v", st)
	}
	_, cold, _ := m.Acquire("seg1\x00a", loader(&calls, 100))
	m.Release("seg1\x00a")
	if !cold {
		t.Fatal("condemned entry re-entered the cache")
	}
}
