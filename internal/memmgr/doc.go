// Package memmgr is PowerDrill's byte-budgeted memory manager: the
// Section 5 mechanism that lets one machine "serve" far more data than fits
// in RAM. Data loads lazily from the persisted format on first touch,
// in-flight scans pin what they are using, and when the budget is exceeded
// cold entries are evicted through one of the internal/cache replacement
// policies (2Q by default — scan-resistant, so a one-time full scan cannot
// flush the interactive working set).
//
// The manager is deliberately key-agnostic: callers decide what an entry
// is. colstore uses one entry per (column, chunk) pair plus one per global
// dictionary on chunk-granular stores (keys "<dir>\x00<column>#<chunk>"
// and "<dir>\x00<column>#dict"), and one entry per whole column on stores
// saved before the manifest carried a chunk layout ("<dir>\x00<column>").
// Namespacing by absolute store directory means replicas opened from the
// same path share residency. One Manager may be shared by many stores —
// every shard of a cluster leaf process, for example — to enforce a single
// process-wide budget.
//
// # The pin/evict contract
//
//   - Acquire(key, load) returns the entry's value and pins it. A pinned
//     entry is NEVER evicted, whatever the budget; its bytes instead
//     shrink the capacity available to unpinned residents. Pins are
//     counted: two queries pinning one entry share it, and it stays until
//     both have released.
//   - Release(key) drops one pin. When the last pin goes, the entry
//     re-enters the replacement policy — still resident, now evictable.
//     An entry larger than the remaining evictable capacity is dropped
//     immediately (still counted as an eviction).
//   - Cold loads are deduplicated: concurrent Acquire calls for one key
//     share a single load; the waiters count as hits, the loader as the
//     cold load. A failed load is returned to every waiter and leaves no
//     entry behind, so the next Acquire retries.
//   - Values must be immutable after load. That is what makes eviction
//     followed by reload bit-for-bit deterministic, and what lets scans
//     read entries without any lock. A caller that kept a pointer past
//     Release may keep using it safely — eviction only frees the
//     manager's accounting, the Go heap data lives while referenced.
//
// # Budget semantics
//
// The budget bounds pinnedBytes + policyBytes. Pinned bytes may
// transiently exceed the budget — a query that needs N chunks at once must
// hold all N — which is the "± one working set" slack the accounting
// documents; steady-state (unpinned) residency is always within the
// budget. Budget 0 means unlimited: entries still load lazily and are
// tracked, but nothing is ever evicted.
//
// Hotness survives the pin/release cycle: an entry that was accessed more
// than once is restored to the policy's frequency tier (2Q's Am, ARC's T2)
// on release rather than re-entering probation, so scan resistance
// actually engages for the interactive working set.
package memmgr
