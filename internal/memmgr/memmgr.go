package memmgr

// The manager tracks two tiers (see doc.go for the full pin/evict
// contract):
//
//   - pinned entries: acquired by at least one in-flight query. Never
//     evicted; their bytes shrink the evictable tier's capacity instead.
//   - unpinned resident entries: held by the replacement policy, evicted
//     whenever pinnedBytes + policyBytes would exceed the budget.

import (
	"math"
	"strings"
	"sync"

	"powerdrill/internal/cache"
)

// LoadFunc produces the value for a key on a cold miss. It reports the
// value's resident (in-memory) size and how many bytes were read from disk
// to build it — the quantity the paper's Figure 5 charges.
type LoadFunc func() (value any, residentBytes, diskBytes int64, err error)

// item is the managed unit: the value plus its sizes.
type item struct {
	value    any
	size     int64
	diskSize int64
	// virtual marks entries backing materialized virtual columns; their
	// resident bytes are additionally reported as Stats.VirtualBytes so
	// operators can see how much of the budget drill-down materializations
	// occupy.
	virtual bool
}

// pinEntry is a resident entry held by at least one in-flight query.
type pinEntry struct {
	it   *item
	pins int
	// hot records that the entry has been accessed more than once, so that
	// on release it is restored to the policy's frequency tier (Am/T2)
	// rather than re-entering probation — without this, the pin/release
	// cycle would demote every entry to first-timer status and the 2Q/ARC
	// scan resistance would never engage.
	hot bool
}

// inflight deduplicates concurrent loads of one key.
type inflight struct {
	done chan struct{}
	err  error
}

// Stats is a snapshot of the manager's accounting.
type Stats struct {
	// BudgetBytes is the configured budget (0 = unlimited).
	BudgetBytes int64
	// ResidentBytes is pinned + evictable resident bytes.
	ResidentBytes int64
	// PinnedBytes is the portion held by in-flight queries.
	PinnedBytes int64
	// ResidentItems counts resident entries across both tiers.
	ResidentItems int
	// VirtualBytes is the portion of ResidentBytes held by materialized
	// virtual columns (entries acquired or inserted with virtual = true).
	VirtualBytes int64
	// Hits counts Acquire calls served from resident data.
	Hits int64
	// ColdLoads counts Acquire calls that had to load from disk.
	ColdLoads int64
	// ColdBytesLoaded sums the resident bytes of cold loads.
	ColdBytesLoaded int64
	// DiskBytesRead sums the disk bytes of cold loads.
	DiskBytesRead int64
	// Evictions counts entries displaced to satisfy the budget.
	Evictions int64
	// EvictedBytes sums the resident bytes of evicted entries.
	EvictedBytes int64
	// Policy names the replacement policy ("lru", "2q", "arc").
	Policy string
}

// HitRate returns Hits / (Hits + ColdLoads), or 0 before any access.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.ColdLoads
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Manager is the global byte-budget memory manager. One Manager may be
// shared by many stores (e.g. every shard of a cluster leaf process);
// callers namespace their keys. All methods are safe for concurrent use.
type Manager struct {
	mu sync.Mutex

	budget int64 // 0 = unlimited
	policy cache.Cache
	// pinned holds entries with pins > 0; they are not in the policy.
	pinned      map[string]*pinEntry
	pinnedBytes int64
	loading     map[string]*inflight

	hits, coldLoads         int64
	coldBytes, diskBytes    int64
	evictions, evictedBytes int64
	// condemned holds key prefixes whose entries must not re-enter the
	// policy: DropNamespace retired the namespace while some of its entries
	// were still pinned by a draining query. Release drops such stragglers
	// instead of re-admitting them; a prefix is removed once no pinned key
	// matches it, so the set stays bounded by in-flight retirements.
	condemned map[string]struct{}
	// virtualBytes tracks the resident bytes of virtual-column entries
	// across both tiers (grows when one becomes resident, shrinks when one
	// leaves residency via eviction or an oversized drop).
	virtualBytes int64
}

// unlimitedCapacity stands in for "no budget" so the policies never evict.
const unlimitedCapacity = math.MaxInt64 / 4

// New creates a manager with the given byte budget (0 or negative =
// unlimited: columns still load lazily and are tracked, but nothing is ever
// evicted). policyName selects the replacement policy for unpinned
// residents: "lru", "arc", or "2q" (the default for any other value).
func New(budgetBytes int64, policyName string) *Manager {
	if budgetBytes < 0 {
		budgetBytes = 0
	}
	capacity := budgetBytes
	if capacity == 0 {
		capacity = unlimitedCapacity
	}
	var policy cache.Cache
	switch policyName {
	case "lru":
		policy = cache.NewLRU(capacity)
	case "arc":
		policy = cache.NewARC(capacity)
	default:
		policy = cache.NewTwoQ(capacity)
	}
	m := &Manager{
		budget:  budgetBytes,
		policy:  policy,
		pinned:  make(map[string]*pinEntry),
		loading: make(map[string]*inflight),
	}
	// The callback runs inside policy calls, which only happen under m.mu.
	policy.(cache.EvictionNotifier).OnEvict(func(_ string, v any, size int64) {
		m.evictions++
		m.evictedBytes += size
		if it, ok := v.(*item); ok && it.virtual {
			m.virtualBytes -= size
		}
	})
	return m
}

// Budget returns the configured budget in bytes (0 = unlimited).
func (m *Manager) Budget() int64 { return m.budget }

// evictableCapacity is the byte budget left for unpinned residents.
// Requires m.mu.
func (m *Manager) evictableCapacity() int64 {
	if m.budget == 0 {
		return unlimitedCapacity
	}
	c := m.budget - m.pinnedBytes
	if c < 0 {
		c = 0
	}
	return c
}

// syncCapacity pushes the current evictable capacity into the policy,
// evicting as needed. Requires m.mu.
func (m *Manager) syncCapacity() {
	m.policy.(cache.Resizer).SetCapacity(m.evictableCapacity())
}

// Acquire returns the value for key, pinning it until Release. On a cold
// miss the value is produced by load (deduplicated across concurrent
// callers); cold reports whether this call performed the load. Pinned
// entries are never evicted.
func (m *Manager) Acquire(key string, load LoadFunc) (value any, cold bool, err error) {
	return m.acquire(key, false, load)
}

// AcquireVirtual is Acquire for entries backing materialized virtual
// columns: identical semantics, but the entry's resident bytes are
// additionally tracked in Stats.VirtualBytes. A key's virtual-ness is a
// property of the column it belongs to and must be consistent across
// callers.
func (m *Manager) AcquireVirtual(key string, load LoadFunc) (value any, cold bool, err error) {
	return m.acquire(key, true, load)
}

func (m *Manager) acquire(key string, virtual bool, load LoadFunc) (value any, cold bool, err error) {
	m.mu.Lock()
	for {
		// Already pinned by another query: share the pin. The second access
		// proves the entry hot.
		if p, ok := m.pinned[key]; ok {
			p.pins++
			p.hot = true
			m.hits++
			m.mu.Unlock()
			return p.it.value, false, nil
		}
		// Resident but unpinned: move from the policy to the pinned tier.
		// The Get itself is this entry's second-or-later access, so it is
		// hot by the 2Q/ARC definition.
		if v, ok := m.policy.Get(key); ok {
			it := v.(*item)
			m.policy.Remove(key)
			m.pinned[key] = &pinEntry{it: it, pins: 1, hot: true}
			m.pinnedBytes += it.size
			m.syncCapacity()
			m.hits++
			m.mu.Unlock()
			return it.value, false, nil
		}
		// A load is already in flight: wait for it, then retry.
		if fl, ok := m.loading[key]; ok {
			m.mu.Unlock()
			<-fl.done
			if fl.err != nil {
				return nil, false, fl.err
			}
			m.mu.Lock()
			continue
		}
		break
	}
	// Cold miss: this caller performs the load.
	fl := &inflight{done: make(chan struct{})}
	m.loading[key] = fl
	m.mu.Unlock()

	v, size, disk, err := load()

	m.mu.Lock()
	delete(m.loading, key)
	if err != nil {
		fl.err = err
		close(fl.done)
		m.mu.Unlock()
		return nil, false, err
	}
	it := &item{value: v, size: size, diskSize: disk, virtual: virtual}
	m.pinned[key] = &pinEntry{it: it, pins: 1}
	m.pinnedBytes += size
	m.coldLoads++
	m.coldBytes += size
	m.diskBytes += disk
	if virtual {
		m.virtualBytes += size
	}
	m.syncCapacity()
	close(fl.done)
	m.mu.Unlock()
	return v, true, nil
}

// Insert registers an already built value as a resident, pinned entry —
// the path a freshly materialized virtual column takes: the data exists in
// memory before the manager ever sees it, so there is no LoadFunc, no cold
// counter and no disk charge, but the bytes still enter the budget
// (syncCapacity evicts cold unpinned entries to make room). The returned
// value is the resident one: when another store sharing the manager
// already inserted or loaded the key, that entry is pinned and returned
// instead and v is dropped. Callers must Release the key like any Acquire.
func (m *Manager) Insert(key string, v any, size int64, virtual bool) any {
	m.mu.Lock()
	defer m.mu.Unlock()
	if p, ok := m.pinned[key]; ok {
		p.pins++
		p.hot = true
		return p.it.value
	}
	if got, ok := m.policy.Get(key); ok {
		it := got.(*item)
		m.policy.Remove(key)
		m.pinned[key] = &pinEntry{it: it, pins: 1, hot: true}
		m.pinnedBytes += it.size
		m.syncCapacity()
		return it.value
	}
	it := &item{value: v, size: size, virtual: virtual}
	m.pinned[key] = &pinEntry{it: it, pins: 1}
	m.pinnedBytes += size
	if virtual {
		m.virtualBytes += size
	}
	m.syncCapacity()
	return v
}

// Resident reports whether key is resident (pinned or held by the policy)
// without loading, pinning, promoting, or counting a hit — the peek the
// coalesced-prefetch planner uses to decide which chunks need disk reads.
// The answer is advisory: another goroutine may load or evict the entry
// immediately after.
func (m *Manager) Resident(key string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.pinned[key]; ok {
		return true
	}
	return m.policy.Contains(key)
}

// Release drops one pin on key. When the last pin goes, the entry re-enters
// the replacement policy (or is evicted immediately if it no longer fits
// the remaining budget). Release of an unknown key is a no-op.
func (m *Manager) Release(key string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	p, ok := m.pinned[key]
	if !ok {
		return
	}
	p.pins--
	if p.pins > 0 {
		return
	}
	delete(m.pinned, key)
	m.pinnedBytes -= p.it.size
	m.syncCapacity()
	if m.isCondemned(key) {
		// The entry's namespace was retired (DropNamespace) while this
		// query was still draining: drop it instead of re-admitting it.
		if p.it.virtual {
			m.virtualBytes -= p.it.size
		}
		m.pruneCondemned()
		return
	}
	if p.it.size > m.evictableCapacity() {
		// Will never fit the evictable tier: drop now. The policies would
		// silently refuse oversized entries; counting here keeps the
		// eviction accounting exact.
		m.evictions++
		m.evictedBytes += p.it.size
		if p.it.virtual {
			m.virtualBytes -= p.it.size
		}
		return
	}
	m.policy.Put(key, p.it, p.it.size)
	if p.hot {
		// Restore frequency-tier status: the Put re-entered probation
		// (Acquire removed the entry and its ghost), so replay one access
		// to promote it back to Am/T2. Policy-internal hit counters move,
		// but the manager reports its own counters, not the policy's.
		m.policy.Get(key)
	}
}

// DropNamespace removes every resident entry whose key starts with prefix
// — the retirement path for a store generation superseded by ingest
// compaction: its chunks and dictionaries leave the budget at once instead
// of lingering until eviction pressure finds them. Unpinned entries are
// dropped immediately; entries still pinned by a draining query are
// condemned and dropped on their final Release instead of re-entering the
// policy. Returns the count and bytes of the entries dropped immediately.
func (m *Manager) DropNamespace(prefix string) (dropped int, droppedBytes int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, key := range m.policy.(cache.KeyLister).Keys() {
		if !strings.HasPrefix(key, prefix) {
			continue
		}
		v, ok := m.policy.Get(key)
		if !ok {
			continue
		}
		it := v.(*item)
		m.policy.Remove(key)
		if it.virtual {
			m.virtualBytes -= it.size
		}
		dropped++
		droppedBytes += it.size
	}
	for key := range m.pinned {
		if strings.HasPrefix(key, prefix) {
			if m.condemned == nil {
				m.condemned = make(map[string]struct{}, 2)
			}
			m.condemned[prefix] = struct{}{}
			break
		}
	}
	return dropped, droppedBytes
}

// isCondemned reports whether key belongs to a retired namespace. Requires
// m.mu. The condemned set holds only prefixes with pinned stragglers, so
// the scan is over a handful of entries at most.
func (m *Manager) isCondemned(key string) bool {
	for prefix := range m.condemned {
		if strings.HasPrefix(key, prefix) {
			return true
		}
	}
	return false
}

// pruneCondemned drops condemned prefixes no pinned key matches anymore.
// Requires m.mu.
func (m *Manager) pruneCondemned() {
	for prefix := range m.condemned {
		alive := false
		for key := range m.pinned {
			if strings.HasPrefix(key, prefix) {
				alive = true
				break
			}
		}
		if !alive {
			delete(m.condemned, prefix)
		}
	}
}

// Stats returns a snapshot of the manager's accounting.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return Stats{
		BudgetBytes:     m.budget,
		ResidentBytes:   m.pinnedBytes + m.policy.SizeBytes(),
		PinnedBytes:     m.pinnedBytes,
		ResidentItems:   len(m.pinned) + m.policy.Len(),
		VirtualBytes:    m.virtualBytes,
		Hits:            m.hits,
		ColdLoads:       m.coldLoads,
		ColdBytesLoaded: m.coldBytes,
		DiskBytesRead:   m.diskBytes,
		Evictions:       m.evictions,
		EvictedBytes:    m.evictedBytes,
		Policy:          m.policy.Name(),
	}
}
