package memmgr

import (
	"sync/atomic"
	"testing"
)

// TestInsertBudgetsPrebuiltValues pins the materialization path: Insert
// registers an already built value as a pinned entry with no cold-load or
// disk accounting, its bytes push cold unpinned entries out of the budget,
// and a second Insert (or Acquire) of the key shares the resident entry.
func TestInsertBudgetsPrebuiltValues(t *testing.T) {
	m := New(1000, "lru")
	var calls atomic.Int64
	// Fill the evictable tier with a cold column.
	if _, _, err := m.Acquire("cold", loader(&calls, 900)); err != nil {
		t.Fatal(err)
	}
	m.Release("cold")
	if st := m.Stats(); st.ResidentBytes != 900 {
		t.Fatalf("resident = %d, want 900", st.ResidentBytes)
	}
	// Inserting 800 pinned bytes shrinks the evictable capacity to 200:
	// the cold entry must be evicted to make room.
	v := m.Insert("virt", []byte("built"), 800, true)
	if v == nil {
		t.Fatal("Insert returned nil")
	}
	st := m.Stats()
	if st.ResidentBytes != 800 || st.PinnedBytes != 800 {
		t.Fatalf("after insert: resident=%d pinned=%d, want 800/800", st.ResidentBytes, st.PinnedBytes)
	}
	if st.Evictions != 1 || st.EvictedBytes != 900 {
		t.Fatalf("insert did not displace the cold entry: %+v", st)
	}
	if st.ColdLoads != 1 || st.DiskBytesRead != 1800 {
		t.Fatalf("insert must not count as a cold load: %+v", st)
	}
	if st.VirtualBytes != 800 {
		t.Fatalf("virtual bytes = %d, want 800", st.VirtualBytes)
	}
	// A racing Insert of the same key pins and returns the resident value,
	// dropping the duplicate.
	if got := m.Insert("virt", []byte("other"), 800, true); string(got.([]byte)) != "built" {
		t.Fatalf("second insert returned %q, want the resident value", got)
	}
	if st := m.Stats(); st.ResidentBytes != 800 || st.VirtualBytes != 800 {
		t.Fatalf("duplicate insert changed accounting: %+v", st)
	}
	m.Release("virt")
	m.Release("virt")
	// Unpinned now; still resident, still virtual.
	if st := m.Stats(); st.PinnedBytes != 0 || st.VirtualBytes != 800 {
		t.Fatalf("after release: %+v", st)
	}
	// Reloading it via AcquireVirtual is a warm hit on the inserted entry.
	_, cold, err := m.AcquireVirtual("virt", loader(&calls, 800))
	if err != nil || cold {
		t.Fatalf("AcquireVirtual after insert: cold=%v err=%v", cold, err)
	}
	m.Release("virt")
}

// TestVirtualBytesFollowsResidency: the gauge grows when a virtual entry
// becomes resident and shrinks on eviction and on oversized drops, across
// both Acquire and Insert entry points.
func TestVirtualBytesFollowsResidency(t *testing.T) {
	m := New(1000, "lru")
	var calls atomic.Int64
	if _, _, err := m.AcquireVirtual("v1", loader(&calls, 400)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.Acquire("p1", loader(&calls, 300)); err != nil {
		t.Fatal(err)
	}
	if st := m.Stats(); st.VirtualBytes != 400 {
		t.Fatalf("virtual bytes = %d, want 400 (physical entries must not count)", st.VirtualBytes)
	}
	m.Release("v1")
	m.Release("p1")
	// Displace v1 with a fresh 900-byte load: the policy evicts it, and the
	// gauge must follow.
	if _, _, err := m.Acquire("big", loader(&calls, 900)); err != nil {
		t.Fatal(err)
	}
	if st := m.Stats(); st.VirtualBytes != 0 {
		t.Fatalf("virtual bytes = %d after eviction, want 0", st.VirtualBytes)
	}
	m.Release("big")

	// Oversized virtual entry: dropped on release, gauge back to zero.
	m2 := New(100, "2q")
	m2.Insert("huge", []byte("x"), 500, true)
	if st := m2.Stats(); st.VirtualBytes != 500 {
		t.Fatalf("pinned oversized virtual = %d, want 500", st.VirtualBytes)
	}
	m2.Release("huge")
	if st := m2.Stats(); st.VirtualBytes != 0 || st.ResidentBytes != 0 {
		t.Fatalf("oversized drop left %+v", st)
	}
}
