// Package compress implements the generic byte compressors the paper layers
// under its hand-crafted encodings (Section 3 "Generic Compression
// Algorithm" and Section 5 "Other Compression Algorithms"):
//
//   - Zippy: a from-scratch implementation of the Snappy wire format, the
//     algorithm Google used in the paper's experiments. Byte-oriented LZ77
//     with no entropy coding; built for speed, not maximal ratio.
//   - LZO-ish: an LZ77 variant with a smaller minimum match and tighter
//     copy encoding, standing in for the "variant of LZO" the paper chose
//     for production (slightly better ratio, fast decompression).
//   - Deflate / HuffmanOnly: stdlib flate, standing in for the ZLIB
//     variants of Section 5 (entropy coding buys 20–30% ratio at a large
//     CPU cost).
//   - RLE: plain run-length encoding, used by the row-reordering analysis
//     of Section 3.
//
// All codecs implement Codec; Registry looks them up by name for the
// benchmark harness.
package compress

import (
	"fmt"
	"sort"
)

// Codec is a block compressor. Compress appends the compressed form of src
// to dst (dst may be nil) and Decompress reverses it. Implementations are
// deterministic and safe for concurrent use by multiple goroutines.
type Codec interface {
	// Name identifies the codec in benchmark tables.
	Name() string
	// Compress appends the compressed src to dst and returns it.
	Compress(dst, src []byte) []byte
	// Decompress appends the decompressed src to dst and returns it.
	Decompress(dst, src []byte) ([]byte, error)
}

var registry = map[string]Codec{}

// Register adds a codec to the global registry. It panics on duplicates,
// which would indicate an initialization bug.
func Register(c Codec) {
	if _, dup := registry[c.Name()]; dup {
		panic("compress: duplicate codec " + c.Name())
	}
	registry[c.Name()] = c
}

// ByName returns a registered codec.
func ByName(name string) (Codec, error) {
	c, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("compress: unknown codec %q", name)
	}
	return c, nil
}

// Names returns the registered codec names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Ratio returns len(src)/len(compressed); >1 means the codec saved space.
func Ratio(c Codec, src []byte) float64 {
	if len(src) == 0 {
		return 1
	}
	out := c.Compress(nil, src)
	if len(out) == 0 {
		return 1
	}
	return float64(len(src)) / float64(len(out))
}

// varint helpers shared by the LZ codecs (little-endian base-128, the same
// encoding encoding/binary uses, re-implemented locally to keep the hot
// paths free of interface indirection).

func putUvarint(dst []byte, v uint64) []byte {
	for v >= 0x80 {
		dst = append(dst, byte(v)|0x80)
		v >>= 7
	}
	return append(dst, byte(v))
}

func uvarint(src []byte) (uint64, int) {
	var v uint64
	var shift uint
	for i, b := range src {
		if i == 10 {
			return 0, -1 // overflow
		}
		if b < 0x80 {
			return v | uint64(b)<<shift, i + 1
		}
		v |= uint64(b&0x7f) << shift
		shift += 7
	}
	return 0, 0 // truncated
}
