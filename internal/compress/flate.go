package compress

import (
	"bytes"
	"compress/flate"
	"fmt"
	"io"
	"sync"
)

// Flate wraps stdlib DEFLATE at a fixed level. Two registered instances
// reproduce the Section 5 comparison: "zlib" (LZ77 + Huffman, the slow,
// high-ratio end) and "huffman-only" (entropy coding with no matching, the
// configuration the paper tested ZLIB "without additional Huffman coding"
// against).
type Flate struct {
	name  string
	level int
}

// NewFlate creates a flate codec with the given display name and level.
func NewFlate(name string, level int) *Flate { return &Flate{name: name, level: level} }

// Name implements Codec.
func (f *Flate) Name() string { return f.name }

// writerPool amortizes flate's large per-writer state across calls.
type pooledWriter struct {
	w   *flate.Writer
	buf bytes.Buffer
}

var writerPools sync.Map // level -> *sync.Pool

func (f *Flate) pool() *sync.Pool {
	if p, ok := writerPools.Load(f.level); ok {
		return p.(*sync.Pool)
	}
	p := &sync.Pool{New: func() any {
		pw := &pooledWriter{}
		w, err := flate.NewWriter(&pw.buf, f.level)
		if err != nil {
			panic(fmt.Sprintf("compress: flate level %d: %v", f.level, err))
		}
		pw.w = w
		return pw
	}}
	actual, _ := writerPools.LoadOrStore(f.level, p)
	return actual.(*sync.Pool)
}

// Compress implements Codec.
func (f *Flate) Compress(dst, src []byte) []byte {
	pw := f.pool().Get().(*pooledWriter)
	defer f.pool().Put(pw)
	pw.buf.Reset()
	pw.w.Reset(&pw.buf)
	if _, err := pw.w.Write(src); err != nil {
		panic("compress: flate write to bytes.Buffer failed: " + err.Error())
	}
	if err := pw.w.Close(); err != nil {
		panic("compress: flate close failed: " + err.Error())
	}
	return append(dst, pw.buf.Bytes()...)
}

// Decompress implements Codec.
func (f *Flate) Decompress(dst, src []byte) ([]byte, error) {
	r := flate.NewReader(bytes.NewReader(src))
	defer r.Close()
	out, err := io.ReadAll(r)
	if err != nil {
		return dst, fmt.Errorf("compress: flate decompress: %w", err)
	}
	return append(dst, out...), nil
}

func init() {
	Register(NewFlate("zlib", flate.DefaultCompression))
	Register(NewFlate("huffman-only", flate.HuffmanOnly))
}
