package compress

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func allCodecs(t testing.TB) []Codec {
	t.Helper()
	var out []Codec
	for _, name := range Names() {
		c, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		out = append(out, c)
	}
	if len(out) < 5 {
		t.Fatalf("expected ≥5 registered codecs, got %v", Names())
	}
	return out
}

// corpus builds inputs spanning the shapes the column store produces:
// highly repetitive element arrays, sorted dictionary strings with shared
// prefixes, and incompressible noise.
func corpus() map[string][]byte {
	r := rand.New(rand.NewSource(11))
	random := make([]byte, 100_000)
	r.Read(random)

	repetitive := bytes.Repeat([]byte{0, 0, 1, 2, 0, 0, 0, 3}, 10_000)

	var dict bytes.Buffer
	for i := 0; i < 5000; i++ {
		fmt.Fprintf(&dict, "logs.powerdrill.query_events_2011%02d%02d\x00", i%12+1, i%28+1)
	}

	runs := make([]byte, 0, 80_000)
	for v := 0; v < 40; v++ {
		runs = append(runs, bytes.Repeat([]byte{byte(v)}, 2000)...)
	}

	return map[string][]byte{
		"empty":      {},
		"single":     {42},
		"short":      []byte("cat"),
		"random":     random,
		"repetitive": repetitive,
		"dict":       dict.Bytes(),
		"runs":       runs,
		"allzero":    make([]byte, 70_000), // crosses the 64K zippy block boundary
	}
}

func TestRoundTripAllCodecs(t *testing.T) {
	for _, c := range allCodecs(t) {
		for name, data := range corpus() {
			t.Run(c.Name()+"/"+name, func(t *testing.T) {
				comp := c.Compress(nil, data)
				got, err := c.Decompress(nil, comp)
				if err != nil {
					t.Fatalf("Decompress: %v", err)
				}
				if !bytes.Equal(got, data) {
					t.Fatalf("round trip mismatch: %d bytes in, %d out", len(data), len(got))
				}
			})
		}
	}
}

func TestRoundTripAppendsToDst(t *testing.T) {
	for _, c := range allCodecs(t) {
		prefix := []byte("prefix-")
		data := []byte("the quick brown fox jumps over the quick brown fox")
		comp := c.Compress([]byte("header"), data)
		if !bytes.HasPrefix(comp, []byte("header")) {
			t.Fatalf("%s: Compress did not append to dst", c.Name())
		}
		got, err := c.Decompress(prefix, comp[len("header"):])
		if err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		if !bytes.Equal(got, append([]byte("prefix-"), data...)) {
			t.Fatalf("%s: Decompress did not append to dst", c.Name())
		}
	}
}

func TestQuickRoundTrip(t *testing.T) {
	for _, c := range allCodecs(t) {
		c := c
		f := func(data []byte) bool {
			comp := c.Compress(nil, data)
			got, err := c.Decompress(nil, comp)
			return err == nil && bytes.Equal(got, data)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Errorf("%s: %v", c.Name(), err)
		}
	}
}

func TestQuickRoundTripStructured(t *testing.T) {
	// Random byte slices rarely contain matches; synthesize match-heavy
	// inputs from small alphabets and repeats to exercise the copy paths.
	for _, c := range allCodecs(t) {
		c := c
		f := func(seed int64, n uint16) bool {
			r := rand.New(rand.NewSource(seed))
			data := make([]byte, 0, int(n)*4)
			for len(data) < int(n)*4 {
				switch r.Intn(3) {
				case 0:
					data = append(data, byte(r.Intn(4)))
				case 1: // run
					data = append(data, bytes.Repeat([]byte{byte(r.Intn(8))}, r.Intn(100)+1)...)
				case 2: // repeat earlier content
					if len(data) > 0 {
						start := r.Intn(len(data))
						end := start + r.Intn(len(data)-start) + 1
						data = append(data, data[start:end]...)
					}
				}
			}
			comp := c.Compress(nil, data)
			got, err := c.Decompress(nil, comp)
			return err == nil && bytes.Equal(got, data)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
			t.Errorf("%s: %v", c.Name(), err)
		}
	}
}

func TestCorruptInputsDoNotPanic(t *testing.T) {
	data := []byte(strings.Repeat("powerdrill column store ", 100))
	r := rand.New(rand.NewSource(3))
	for _, c := range allCodecs(t) {
		comp := c.Compress(nil, data)
		// Truncations.
		for cut := 0; cut < len(comp); cut += 7 {
			c.Decompress(nil, comp[:cut]) // must not panic; error is fine
		}
		// Random flips.
		for trial := 0; trial < 200; trial++ {
			mut := append([]byte(nil), comp...)
			for flips := 0; flips < 3; flips++ {
				mut[r.Intn(len(mut))] ^= byte(1 << r.Intn(8))
			}
			out, err := c.Decompress(nil, mut)
			// Either an error, or (for undetectable flips) some output;
			// both acceptable, panics are not.
			_ = out
			_ = err
		}
		if _, err := c.Decompress(nil, nil); err == nil && c.Name() != "zlib" && c.Name() != "huffman-only" {
			t.Errorf("%s: empty input decoded without error", c.Name())
		}
	}
}

func TestCompressionRatiosOnColumnData(t *testing.T) {
	data := corpus()
	for _, name := range []string{"zippy", "lzoish", "zlib"} {
		c, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if r := Ratio(c, data["runs"]); r < 20 {
			t.Errorf("%s: ratio on runs = %.1f, want ≥20", name, r)
		}
		if r := Ratio(c, data["dict"]); r < 2 {
			t.Errorf("%s: ratio on dict strings = %.1f, want ≥2", name, r)
		}
		if r := Ratio(c, data["random"]); r > 1.2 {
			t.Errorf("%s: ratio on random = %.2f, should be ≈1", name, r)
		}
	}
}

// TestSection5Shape checks the qualitative relationships of the paper's
// Section 5 comparison: entropy-coded zlib compresses at least as well as
// the byte-oriented codecs, and the LZO-like variant is at least as good as
// Zippy on dictionary-style data.
func TestSection5Shape(t *testing.T) {
	data := corpus()["dict"]
	zippy, _ := ByName("zippy")
	lzo, _ := ByName("lzoish")
	zlib, _ := ByName("zlib")
	rz, rl, rzl := Ratio(zippy, data), Ratio(lzo, data), Ratio(zlib, data)
	t.Logf("ratios on dict data: zippy=%.2f lzoish=%.2f zlib=%.2f", rz, rl, rzl)
	if rzl < rz {
		t.Errorf("zlib ratio %.2f below zippy %.2f; entropy coding should win", rzl, rz)
	}
	if rl < rz*0.95 {
		t.Errorf("lzoish ratio %.2f clearly below zippy %.2f", rl, rz)
	}
}

func TestRegistry(t *testing.T) {
	if _, err := ByName("no-such-codec"); err == nil {
		t.Error("ByName(nonexistent) succeeded")
	}
	names := Names()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Errorf("Names not sorted: %v", names)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("duplicate Register did not panic")
		}
	}()
	Register(Zippy{})
}

func TestRatioEdgeCases(t *testing.T) {
	z, _ := ByName("zippy")
	if r := Ratio(z, nil); r != 1 {
		t.Errorf("Ratio(empty) = %f", r)
	}
}

func TestRuns(t *testing.T) {
	for _, tc := range []struct {
		in   []byte
		want int
	}{
		{nil, 0},
		{[]byte{1}, 1},
		{[]byte{1, 1, 1}, 1},
		{[]byte{0, 0, 0, 1, 1, 1}, 2},
		{[]byte{1, 2, 3}, 3},
	} {
		if got := Runs(tc.in); got != tc.want {
			t.Errorf("Runs(%v) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestUvarintRoundTrip(t *testing.T) {
	f := func(v uint64) bool {
		buf := putUvarint(nil, v)
		got, n := uvarint(buf)
		return n == len(buf) && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if _, n := uvarint(nil); n != 0 {
		t.Error("uvarint(nil) should report truncation")
	}
	if _, n := uvarint(bytes.Repeat([]byte{0xff}, 11)); n >= 0 {
		t.Error("uvarint overflow not detected")
	}
}

func BenchmarkCompress(b *testing.B) {
	data := corpus()
	for _, c := range allCodecs(b) {
		for _, input := range []string{"dict", "repetitive", "random"} {
			src := data[input]
			b.Run(c.Name()+"/"+input, func(b *testing.B) {
				b.SetBytes(int64(len(src)))
				var buf []byte
				for i := 0; i < b.N; i++ {
					buf = c.Compress(buf[:0], src)
				}
			})
		}
	}
}

func BenchmarkDecompress(b *testing.B) {
	data := corpus()
	for _, c := range allCodecs(b) {
		for _, input := range []string{"dict", "repetitive"} {
			src := data[input]
			comp := c.Compress(nil, src)
			b.Run(c.Name()+"/"+input, func(b *testing.B) {
				b.SetBytes(int64(len(src)))
				var buf []byte
				var err error
				for i := 0; i < b.N; i++ {
					buf, err = c.Decompress(buf[:0], comp)
					if err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
