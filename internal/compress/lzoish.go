package compress

import (
	"encoding/binary"
	"errors"
)

// LZOish is the stand-in for the "variant of LZO" the paper selected for
// production (Section 5): compared to Zippy it uses a minimum match of
// three bytes, a larger hash table, and no skip acceleration, trading a
// little compression speed for ~10% better ratios on dictionary-encoded
// column data, with a branch-light decode loop.
//
// Format: uvarint uncompressed length, then a sequence of ops.
// Op byte: 0x00..0x7f → literal run of (op+1) bytes follows;
// 0x80|lenBits → match: length = 3 + lenBits (lenBits 0..126,
// 127 = extended length as uvarint follows), then offset as uvarint.
type LZOish struct{}

// Name implements Codec.
func (LZOish) Name() string { return "lzoish" }

const (
	lzoMinMatch  = 3
	lzoTableBits = 16
	lzoMaxLit    = 128
)

func lzoHash(u uint32) uint32 {
	return (u * 0x9e3779b1) >> (32 - lzoTableBits)
}

// Compress implements Codec.
func (LZOish) Compress(dst, src []byte) []byte {
	dst = putUvarint(dst, uint64(len(src)))
	if len(src) == 0 {
		return dst
	}
	var table [1 << lzoTableBits]int32
	for i := range table {
		table[i] = -1
	}
	emitLits := func(lit []byte) {
		for len(lit) > 0 {
			n := len(lit)
			if n > lzoMaxLit {
				n = lzoMaxLit
			}
			dst = append(dst, byte(n-1))
			dst = append(dst, lit[:n]...)
			lit = lit[n:]
		}
	}
	s, lit := 0, 0
	limit := len(src) - lzoMinMatch
	for s <= limit {
		var h uint32
		if s+4 <= len(src) {
			h = lzoHash(load32(src, s))
		} else {
			h = lzoHash(uint32(src[s]) | uint32(src[s+1])<<8 | uint32(src[s+2])<<16)
		}
		cand := table[h]
		table[h] = int32(s)
		if cand >= 0 && int(cand) < s &&
			src[cand] == src[s] && src[cand+1] == src[s+1] && src[cand+2] == src[s+2] {
			// Extend match.
			base := s
			m := int(cand) + lzoMinMatch
			s += lzoMinMatch
			for s < len(src) && src[s] == src[m] {
				s++
				m++
			}
			if base > lit {
				emitLits(src[lit:base])
			}
			length := s - base
			offset := base - int(cand)
			if length-lzoMinMatch < 127 {
				dst = append(dst, 0x80|byte(length-lzoMinMatch))
			} else {
				dst = append(dst, 0x80|127)
				dst = putUvarint(dst, uint64(length-lzoMinMatch))
			}
			dst = putUvarint(dst, uint64(offset))
			lit = s
			continue
		}
		s++
	}
	if lit < len(src) {
		emitLits(src[lit:])
	}
	return dst
}

var errLZOCorrupt = errors.New("compress: corrupt lzoish data")

// Decompress implements Codec.
func (LZOish) Decompress(dst, src []byte) ([]byte, error) {
	want, n := uvarint(src)
	if n <= 0 {
		return dst, errLZOCorrupt
	}
	src = src[n:]
	base := len(dst)
	if cap(dst)-len(dst) < int(want) {
		grown := make([]byte, len(dst), len(dst)+int(want))
		copy(grown, dst)
		dst = grown
	}
	for len(src) > 0 {
		op := src[0]
		src = src[1:]
		if op < 0x80 {
			n := int(op) + 1
			if len(src) < n {
				return dst, errLZOCorrupt
			}
			dst = append(dst, src[:n]...)
			src = src[n:]
			continue
		}
		length := int(op&0x7f) + lzoMinMatch
		if op&0x7f == 127 {
			ext, n := uvarint(src)
			if n <= 0 {
				return dst, errLZOCorrupt
			}
			src = src[n:]
			length = int(ext) + lzoMinMatch
		}
		off, n := uvarint(src)
		if n <= 0 {
			return dst, errLZOCorrupt
		}
		src = src[n:]
		offset := int(off)
		if offset <= 0 || offset > len(dst)-base {
			return dst, errLZOCorrupt
		}
		for i := 0; i < length; i++ {
			dst = append(dst, dst[len(dst)-offset])
		}
	}
	if got := len(dst) - base; got != int(want) {
		return dst, errLZOCorrupt
	}
	return dst, nil
}

// sanity check that binary is linked (load32 uses it); keeps imports tidy.
var _ = binary.LittleEndian

func init() { Register(LZOish{}) }
