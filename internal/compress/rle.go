package compress

import "errors"

// RLE is byte-level run-length encoding: (uvarint runLength, byte value)
// pairs. It is deliberately naive — Section 3 of the paper uses RLE as the
// analytical model for why row reordering shrinks the encoded elements (the
// encoding size equals the number of value changes walking down a column),
// and the reorder package measures exactly that with this codec.
type RLE struct{}

// Name implements Codec.
func (RLE) Name() string { return "rle" }

// Compress implements Codec.
func (RLE) Compress(dst, src []byte) []byte {
	dst = putUvarint(dst, uint64(len(src)))
	i := 0
	for i < len(src) {
		j := i + 1
		for j < len(src) && src[j] == src[i] {
			j++
		}
		dst = putUvarint(dst, uint64(j-i))
		dst = append(dst, src[i])
		i = j
	}
	return dst
}

var errRLECorrupt = errors.New("compress: corrupt rle data")

// Decompress implements Codec.
func (RLE) Decompress(dst, src []byte) ([]byte, error) {
	want, n := uvarint(src)
	if n <= 0 {
		return dst, errRLECorrupt
	}
	src = src[n:]
	base := len(dst)
	for len(src) > 0 {
		run, n := uvarint(src)
		if n <= 0 || len(src) < n+1 {
			return dst, errRLECorrupt
		}
		v := src[n]
		src = src[n+1:]
		if run == 0 || uint64(len(dst)-base)+run > want {
			return dst, errRLECorrupt
		}
		for i := uint64(0); i < run; i++ {
			dst = append(dst, v)
		}
	}
	if uint64(len(dst)-base) != want {
		return dst, errRLECorrupt
	}
	return dst, nil
}

// Runs counts the number of runs in src — the reorder cost model.
func Runs(src []byte) int {
	if len(src) == 0 {
		return 0
	}
	runs := 1
	for i := 1; i < len(src); i++ {
		if src[i] != src[i-1] {
			runs++
		}
	}
	return runs
}

func init() { Register(RLE{}) }
