package compress

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Zippy implements the Snappy block format from scratch: a preamble with
// the uncompressed length as a uvarint, followed by a sequence of literal
// and copy elements. Tags use the low two bits for the element type
// (00 literal, 01 one-byte-offset copy, 10 two-byte-offset copy) — the
// four-byte-offset copy (11) is emitted never but decoded for completeness.
//
// The compressor is the classic greedy matcher over a 16-bit hash table of
// 4-byte sequences with the "skip acceleration" heuristic: the longer the
// compressor goes without finding a match, the faster it skips ahead, so
// incompressible inputs stay close to memcpy speed.
type Zippy struct{}

// Name implements Codec.
func (Zippy) Name() string { return "zippy" }

const (
	zippyTagLiteral = 0x00
	zippyTagCopy1   = 0x01
	zippyTagCopy2   = 0x02
	zippyTagCopy4   = 0x03

	zippyMaxBlock = 65536 // compress input in 64K windows like snappy
)

func zippyHash(u uint32, shift uint) uint32 {
	return (u * 0x1e35a7bd) >> shift
}

func load32(b []byte, i int) uint32 {
	return binary.LittleEndian.Uint32(b[i:])
}

// emitLiteral appends a literal element for lit.
func zippyEmitLiteral(dst, lit []byte) []byte {
	n := len(lit) - 1
	switch {
	case n < 60:
		dst = append(dst, byte(n)<<2|zippyTagLiteral)
	case n < 1<<8:
		dst = append(dst, 60<<2|zippyTagLiteral, byte(n))
	case n < 1<<16:
		dst = append(dst, 61<<2|zippyTagLiteral, byte(n), byte(n>>8))
	case n < 1<<24:
		dst = append(dst, 62<<2|zippyTagLiteral, byte(n), byte(n>>8), byte(n>>16))
	default:
		dst = append(dst, 63<<2|zippyTagLiteral, byte(n), byte(n>>8), byte(n>>16), byte(n>>24))
	}
	return append(dst, lit...)
}

// emitCopy appends copy elements covering length bytes at the given offset.
func zippyEmitCopy(dst []byte, offset, length int) []byte {
	for length > 0 {
		switch {
		case length >= 12 || offset >= 2048:
			n := length
			if n > 64 {
				n = 64
			}
			dst = append(dst, byte(n-1)<<2|zippyTagCopy2, byte(offset), byte(offset>>8))
			length -= n
		default:
			// 1-byte-offset copy: length 4..11, offset < 2048.
			n := length
			if n > 11 {
				n = 11
			}
			if n < 4 {
				// Lengths below 4 cannot be encoded as copy1; fall back
				// to copy2 which supports length 1..64.
				dst = append(dst, byte(length-1)<<2|zippyTagCopy2, byte(offset), byte(offset>>8))
				return dst
			}
			dst = append(dst, byte(offset>>8)<<5|byte(n-4)<<2|zippyTagCopy1, byte(offset))
			length -= n
		}
	}
	return dst
}

// Compress implements Codec.
func (Zippy) Compress(dst, src []byte) []byte {
	dst = putUvarint(dst, uint64(len(src)))
	for len(src) > 0 {
		block := src
		if len(block) > zippyMaxBlock {
			block = block[:zippyMaxBlock]
		}
		src = src[len(block):]
		dst = zippyCompressBlock(dst, block)
	}
	return dst
}

// zippyCompressBlock compresses one ≤64K block.
func zippyCompressBlock(dst, src []byte) []byte {
	if len(src) < 4 {
		if len(src) > 0 {
			dst = zippyEmitLiteral(dst, src)
		}
		return dst
	}
	const maxTableBits = 14
	shift := uint(32 - maxTableBits)
	var table [1 << maxTableBits]uint16

	s := 0
	lit := 0 // start of pending literal run
	limit := len(src) - 4

	for s <= limit {
		// Skip acceleration: after 32 misses, step 2, then 3, ...
		nextS := s
		skip := 32
		var cand int
		for {
			s = nextS
			nextS = s + skip>>5
			skip++
			if s > limit {
				// Flush the tail as a literal.
				if lit < len(src) {
					dst = zippyEmitLiteral(dst, src[lit:])
				}
				return dst
			}
			h := zippyHash(load32(src, s), shift)
			cand = int(table[h])
			table[h] = uint16(s)
			if cand < s && load32(src, cand) == load32(src, s) {
				break
			}
		}
		if s > lit {
			dst = zippyEmitLiteral(dst, src[lit:s])
		}
		// Extend the match forward.
		base := s
		s += 4
		m := cand + 4
		for s < len(src) && src[s] == src[m] {
			s++
			m++
		}
		dst = zippyEmitCopy(dst, base-cand, s-base)
		lit = s
		if s <= limit {
			h := zippyHash(load32(src, s-1), shift)
			table[h] = uint16(s - 1)
		}
	}
	if lit < len(src) {
		dst = zippyEmitLiteral(dst, src[lit:])
	}
	return dst
}

var (
	errZippyCorrupt   = errors.New("compress: corrupt zippy data")
	errZippyTruncated = errors.New("compress: truncated zippy data")
)

// Decompress implements Codec.
func (Zippy) Decompress(dst, src []byte) ([]byte, error) {
	want, n := uvarint(src)
	if n <= 0 {
		return dst, errZippyTruncated
	}
	src = src[n:]
	base := len(dst)
	// Grow once; the preamble tells us the exact output size.
	if cap(dst)-len(dst) < int(want) {
		grown := make([]byte, len(dst), len(dst)+int(want))
		copy(grown, dst)
		dst = grown
	}
	for len(src) > 0 {
		tag := src[0]
		switch tag & 0x03 {
		case zippyTagLiteral:
			n := int(tag >> 2)
			var extra int
			switch {
			case n < 60:
				n++
			case n == 60:
				extra = 1
			case n == 61:
				extra = 2
			case n == 62:
				extra = 3
			default:
				extra = 4
			}
			if extra > 0 {
				if len(src) < 1+extra {
					return dst, errZippyTruncated
				}
				n = 0
				for i := extra - 1; i >= 0; i-- {
					n = n<<8 | int(src[1+i])
				}
				n++
			}
			if len(src) < 1+extra+n {
				return dst, errZippyTruncated
			}
			dst = append(dst, src[1+extra:1+extra+n]...)
			src = src[1+extra+n:]
		case zippyTagCopy1:
			if len(src) < 2 {
				return dst, errZippyTruncated
			}
			length := 4 + int(tag>>2)&0x07
			offset := int(tag&0xe0)<<3 | int(src[1])
			src = src[2:]
			var err error
			dst, err = zippyCopy(dst, base, offset, length)
			if err != nil {
				return dst, err
			}
		case zippyTagCopy2:
			if len(src) < 3 {
				return dst, errZippyTruncated
			}
			length := 1 + int(tag>>2)
			offset := int(src[1]) | int(src[2])<<8
			src = src[3:]
			var err error
			dst, err = zippyCopy(dst, base, offset, length)
			if err != nil {
				return dst, err
			}
		default: // zippyTagCopy4
			if len(src) < 5 {
				return dst, errZippyTruncated
			}
			length := 1 + int(tag>>2)
			offset := int(binary.LittleEndian.Uint32(src[1:]))
			src = src[5:]
			var err error
			dst, err = zippyCopy(dst, base, offset, length)
			if err != nil {
				return dst, err
			}
		}
	}
	if got := len(dst) - base; got != int(want) {
		return dst, fmt.Errorf("%w: got %d bytes, preamble says %d", errZippyCorrupt, got, want)
	}
	return dst, nil
}

// zippyCopy appends length bytes starting offset bytes back, handling
// overlapping copies (the RLE-like case offset < length) byte by byte.
func zippyCopy(dst []byte, base, offset, length int) ([]byte, error) {
	if offset <= 0 || offset > len(dst)-base {
		return dst, errZippyCorrupt
	}
	for i := 0; i < length; i++ {
		dst = append(dst, dst[len(dst)-offset])
	}
	return dst, nil
}

func init() { Register(Zippy{}) }
