package exec

import (
	"testing"

	"powerdrill/internal/colstore"
	"powerdrill/internal/sql"
)

// mustParseStmt parses or fails the test.
func mustParseStmt(t *testing.T, q string) *sql.SelectStmt {
	t.Helper()
	stmt, err := sql.Parse(q)
	if err != nil {
		t.Fatalf("parse %q: %v", q, err)
	}
	return stmt
}

func TestHavingFiltersGroups(t *testing.T) {
	tbl := logs(2000)
	e := buildEngine(t, tbl, chunkedOpts(), Options{})

	// Reference: counts per country without HAVING.
	all, err := e.Query(`SELECT country, COUNT(*) AS c FROM data GROUP BY country;`)
	if err != nil {
		t.Fatal(err)
	}
	const threshold = 100
	want := 0
	for _, r := range all.Rows {
		if r[1].Int() > threshold {
			want++
		}
	}
	if want == 0 || want == len(all.Rows) {
		t.Fatalf("degenerate threshold: %d of %d groups pass", want, len(all.Rows))
	}

	// HAVING by alias.
	res, err := e.Query(`SELECT country, COUNT(*) AS c FROM data GROUP BY country HAVING c > 100;`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != want {
		t.Errorf("HAVING by alias kept %d groups, want %d", len(res.Rows), want)
	}
	for _, r := range res.Rows {
		if r[1].Int() <= threshold {
			t.Errorf("group %v leaked through HAVING", r)
		}
	}

	// HAVING by canonical aggregate form.
	res2, err := e.Query(`SELECT country, COUNT(*) AS c FROM data GROUP BY country HAVING COUNT(*) > 100;`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Rows) != want {
		t.Errorf("HAVING by COUNT(*) kept %d groups, want %d", len(res2.Rows), want)
	}

	// HAVING referencing the group key.
	res3, err := e.Query(`SELECT country, COUNT(*) AS c FROM data GROUP BY country HAVING country IN ("us", "de") AND c > 0;`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res3.Rows) != 2 {
		t.Errorf("key-based HAVING kept %d groups, want 2", len(res3.Rows))
	}
}

func TestHavingBeforeOrderAndLimit(t *testing.T) {
	tbl := logs(2000)
	e := buildEngine(t, tbl, chunkedOpts(), Options{})
	res, err := e.Query(`SELECT country, COUNT(*) AS c FROM data GROUP BY country
		HAVING c < 100 ORDER BY c DESC LIMIT 3;`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) > 3 {
		t.Fatalf("LIMIT ignored: %d rows", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r[1].Int() >= 100 {
			t.Errorf("HAVING applied after LIMIT: %v", r)
		}
	}
	// Rows are ordered DESC among the survivors.
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i-1][1].Int() < res.Rows[i][1].Int() {
			t.Error("ORDER BY broken after HAVING")
		}
	}
}

func TestHavingErrors(t *testing.T) {
	tbl := logs(300)
	e := buildEngine(t, tbl, colstore.Options{}, Options{})
	for _, q := range []string{
		// Aggregate not present in the select list.
		`SELECT country, COUNT(*) FROM data GROUP BY country HAVING SUM(latency) > 5;`,
		// HAVING without grouping.
		`SELECT country FROM data HAVING country = "us";`,
		// Unknown column in HAVING.
		`SELECT country, COUNT(*) AS c FROM data GROUP BY country HAVING nope > 5;`,
	} {
		if _, err := e.Query(q); err == nil {
			t.Errorf("%q succeeded, want error", q)
		}
	}
}

func TestHavingRoundTripsThroughParser(t *testing.T) {
	tbl := logs(500)
	e := buildEngine(t, tbl, chunkedOpts(), Options{})
	q := `SELECT country, SUM(latency) AS s FROM data GROUP BY country HAVING s > 1000 ORDER BY s DESC;`
	a, err := e.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	// Re-parse the canonical printing and run again: identical results.
	stmt := mustParseStmt(t, q)
	b, err := e.Query(stmt.String())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Rows) != len(b.Rows) {
		t.Fatalf("round trip changed result: %d vs %d rows", len(a.Rows), len(b.Rows))
	}
}
