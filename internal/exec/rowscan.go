package exec

import (
	"sync/atomic"

	"powerdrill/internal/colstore"
	"powerdrill/internal/value"
)

// executeRowScan handles queries with neither aggregates nor GROUP BY:
// a plain projection of the matching rows. Not the workload PowerDrill is
// built for — the UI only issues group-bys — but useful for inspecting raw
// rows, and it exercises the same skipping machinery.
//
// Chunks are scanned in parallel into per-chunk row buffers and
// concatenated in chunk order, so the output rows are exactly the
// sequential engine's. Without ORDER BY, a LIMIT stops workers from
// claiming further chunks once enough rows have been collected; already
// claimed chunks finish (the truncation below restores the exact sequential
// prefix), so under an early stop the scan counters may report slightly
// more work than the sequential engine would.
func (e *Engine) executeRowScan(p *plan) (*Result, QueryStats, error) {
	var qs QueryStats
	nChunks := e.store.NumChunks()
	qs.ChunksTotal = nChunks
	nCols := int64(len(p.accessCols))
	qs.CellsCovered = int64(e.store.NumRows()) * nCols
	qs.ActiveChunks = nChunks
	if p.active != nil {
		qs.ActiveChunks = p.activeCount
		qs.SkippedChunks = nChunks - p.activeCount
	}

	res := &Result{}
	for _, it := range p.items {
		res.Columns = append(res.Columns, it.name)
	}
	// Without ORDER BY, stop claiming chunks once LIMIT rows are collected.
	canStopEarly := len(p.stmt.OrderBy) == 0 && p.stmt.Limit >= 0

	// Admission control: share the engine's worker budget with concurrent
	// queries (see executeChunks).
	workers := e.gate.AcquireUpTo(e.chunkWorkers(nChunks))
	defer e.gate.Release(workers)

	cols := make([]*colstore.Column, len(p.groupCols))
	for i, cn := range p.groupCols {
		cols[i] = p.col(e, cn)
	}

	chunkRows := make([][][]value.Value, nChunks)
	wqs := make([]QueryStats, workers)
	var collected atomic.Int64
	var quit func() bool
	if canStopEarly {
		limit := int64(p.stmt.Limit)
		quit = func() bool { return collected.Load() >= limit }
	}

	err := forEachChunk(nChunks, workers, quit, func(w, ci int) error {
		if p.active != nil && !p.active[ci] {
			// Pruned by the residency analysis: never loaded, don't touch.
			wqs[w].ChunksSkipped++
			return nil
		}
		rows := e.store.ChunkRows(ci)
		state := activeAll
		if p.where != nil {
			if e.opts.DisableSkipping {
				state = activeSome
			} else {
				state = p.where.classify(e, ci)
			}
		}
		if state == activeNone {
			wqs[w].ChunksSkipped++
			return nil
		}
		// Under an early-stop LIMIT, one chunk never contributes more than
		// LIMIT rows to the final prefix, so cap the per-chunk buffer —
		// `SELECT ... LIMIT 1` must not materialize a whole chunk.
		maxOut := rows
		if canStopEarly && p.stmt.Limit < maxOut {
			maxOut = p.stmt.Limit
		}
		var out [][]value.Value
		emit := func(r int) {
			if len(out) >= maxOut {
				return
			}
			row := make([]value.Value, len(cols))
			for i, col := range cols {
				row[i] = col.ValueAt(ci, r)
			}
			out = append(out, row)
		}
		if state == activeAll {
			for r := 0; r < rows && len(out) < maxOut; r++ {
				emit(r)
			}
		} else {
			mask, err := p.where.mask(e, p, ci)
			if err != nil {
				return err
			}
			mask.ForEach(emit)
		}
		chunkRows[ci] = out
		collected.Add(int64(len(out)))
		wqs[w].ChunksScanned++
		wqs[w].RowsScanned += int64(rows)
		wqs[w].CellsScanned += int64(rows) * nCols
		return nil
	})
	if err != nil {
		return nil, qs, err
	}
	for _, out := range chunkRows {
		res.Rows = append(res.Rows, out...)
	}
	for w := 0; w < workers; w++ {
		qs.add(wqs[w])
	}

	if err := e.orderAndLimit(p, res); err != nil {
		return nil, qs, err
	}
	return res, qs, nil
}
