package exec

import (
	"powerdrill/internal/value"
)

// executeRowScan handles queries with neither aggregates nor GROUP BY:
// a plain projection of the matching rows. Not the workload PowerDrill is
// built for — the UI only issues group-bys — but useful for inspecting raw
// rows, and it exercises the same skipping machinery.
func (e *Engine) executeRowScan(p *plan) (*Result, QueryStats, error) {
	var qs QueryStats
	qs.ChunksTotal = e.store.NumChunks()
	nCols := int64(len(p.accessCols))
	qs.CellsCovered = int64(e.store.NumRows()) * nCols

	res := &Result{}
	for _, it := range p.items {
		res.Columns = append(res.Columns, it.name)
	}
	// Without ORDER BY, stop as soon as LIMIT rows are collected.
	canStopEarly := len(p.stmt.OrderBy) == 0 && p.stmt.Limit >= 0

	for ci := 0; ci < e.store.NumChunks(); ci++ {
		if canStopEarly && len(res.Rows) >= p.stmt.Limit {
			break
		}
		rows := e.store.ChunkRows(ci)
		state := activeAll
		if p.where != nil {
			if e.opts.DisableSkipping {
				state = activeSome
			} else {
				state = p.where.classify(e, ci)
			}
		}
		if state == activeNone {
			qs.ChunksSkipped++
			continue
		}
		emit := func(r int) {
			row := make([]value.Value, len(p.groupCols))
			for i, col := range p.groupCols {
				row[i] = e.store.Column(col).ValueAt(ci, r)
			}
			res.Rows = append(res.Rows, row)
		}
		if state == activeAll {
			for r := 0; r < rows; r++ {
				if canStopEarly && len(res.Rows) >= p.stmt.Limit {
					break
				}
				emit(r)
			}
		} else {
			mask, err := p.where.mask(e, ci)
			if err != nil {
				return nil, qs, err
			}
			mask.ForEach(func(r int) {
				if canStopEarly && len(res.Rows) >= p.stmt.Limit {
					return
				}
				emit(r)
			})
		}
		qs.ChunksScanned++
		qs.RowsScanned += int64(rows)
		qs.CellsScanned += int64(rows) * nCols
	}

	if err := e.orderAndLimit(p, res); err != nil {
		return nil, qs, err
	}
	return res, qs, nil
}
