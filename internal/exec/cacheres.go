package exec

import (
	"strconv"
	"strings"

	"powerdrill/internal/sql"
)

// Cache-aware residency: before any chunk is pinned or loaded, chunks the
// spans prove fully active are probed in the result cache under the cache
// key the compiled plan would use. A hit removes the chunk from the pin
// set entirely — the Section 6 result cache already holds its partial, so
// the chunk's data is never read, never charged to the byte budget, and on
// a cold store never touches disk (the third leg of the ROADMAP's cold-I/O
// follow-ups). The retrieved partials are held by the plan, so an eviction
// between analysis and scan cannot strand the query.
//
// The probe needs the plan's cache key before the plan exists, so
// predictCacheSig mirrors the naming rules of plan/materializeOperand
// syntactically (idents by name, expressions by canonical string,
// multi-column group-bys by their composite). plan re-derives the
// signature from the compiled query and drops the cached set on any
// mismatch — the prediction is an optimization, never an oracle.

// cacheSigOf renders the chunk-independent part of the result-cache key:
// the single group column (composite for multi-column group-bys, "" for a
// global aggregate) followed by each aggregate's signature.
func cacheSigOf(groupCol string, aggs []aggSpec) string {
	var b strings.Builder
	b.WriteString(groupCol)
	b.WriteByte('|')
	for _, a := range aggs {
		b.WriteString(a.signature())
		b.WriteByte('|')
	}
	return b.String()
}

// cacheKeyAt is the full per-chunk result-cache key.
func cacheKeyAt(ci int, sig string) string {
	return strconv.Itoa(ci) + "|" + sig
}

// operandName is the column name materializeOperand resolves an operand
// to: plain identifiers keep their name, anything else is registered under
// its canonical expression string.
func operandName(x sql.Expr) string {
	if id, ok := x.(*sql.Ident); ok {
		return id.Name
	}
	return x.String()
}

// compositeName is the canonical name of a multi-column group-by's
// combined virtual column — shared by plan and the signature prediction
// so the two can never drift.
func compositeName(cols []string) string {
	return "composite(" + strings.Join(cols, "\x1f") + ")"
}

// aggFnFor maps an aggregate call name to its function — the single
// name→function mapping, used by compileAggregate and the signature
// prediction alike.
func aggFnFor(name string, distinct bool) (aggFn, bool) {
	switch strings.ToLower(name) {
	case "count":
		if distinct {
			return aggCountDistinct, true
		}
		return aggCount, true
	case "sum":
		return aggSum, true
	case "min":
		return aggMin, true
	case "max":
		return aggMax, true
	case "avg":
		return aggAvg, true
	}
	return 0, false
}

// predictCacheSig derives the cache-key signature the compiled plan will
// use, without planning (and so without pinning or materializing
// anything). ok is false whenever the statement's shape leaves room for
// doubt — row scans, malformed aggregates — in which case the cache-aware
// pass simply does nothing.
func (e *Engine) predictCacheSig(stmt *sql.SelectStmt) (string, bool) {
	var groupCols []string
	for _, g := range stmt.GroupBy {
		resolved, err := e.resolveGroupExpr(stmt, g)
		if err != nil {
			return "", false
		}
		groupCols = append(groupCols, operandName(resolved))
	}
	hasAgg := false
	var aggs []aggSpec
	for _, item := range stmt.Items {
		if !sql.HasAggregate(item.Expr) {
			continue
		}
		hasAgg = true
		call, ok := item.Expr.(*sql.Call)
		if !ok {
			return "", false
		}
		fn, ok := aggFnFor(call.Name, call.Distinct)
		if !ok {
			return "", false
		}
		spec := aggSpec{fn: fn}
		switch {
		case call.Star:
			if fn != aggCount {
				return "", false
			}
		case len(call.Args) == 1:
			spec.argCol = operandName(call.Args[0])
		default:
			return "", false
		}
		aggs = append(aggs, spec)
	}
	if !hasAgg && len(groupCols) == 0 {
		// Row scan: no partials, no cache.
		return "", false
	}
	groupCol := ""
	switch {
	case len(groupCols) > 1:
		groupCol = compositeName(groupCols)
	case len(groupCols) == 1:
		groupCol = groupCols[0]
	}
	return cacheSigOf(groupCol, aggs), true
}

// cacheResidency runs the cache-aware pass over an analyzed residency:
// span-proven fully active chunks whose partials sit in the result cache
// are answered from it and dropped from the pin set.
func (e *Engine) cacheResidency(stmt *sql.SelectStmt, rsd *residency) {
	if e.resultCache == nil || rsd.full == nil || e.opts.DisableSkipping {
		return
	}
	sig, ok := e.predictCacheSig(stmt)
	if !ok {
		return
	}
	n := e.store.NumChunks()
	for ci := 0; ci < n; ci++ {
		if !rsd.full[ci] {
			continue
		}
		v, hit := e.resultCache.Get(cacheKeyAt(ci, sig))
		if !hit {
			continue
		}
		if rsd.cached == nil {
			rsd.cached = make(map[int]*partial, 8)
			rsd.pinActive = make([]bool, n)
			if rsd.active != nil {
				copy(rsd.pinActive, rsd.active)
			} else {
				for i := range rsd.pinActive {
					rsd.pinActive[i] = true
				}
			}
			rsd.sig = sig
		}
		rsd.cached[ci] = v.(*partial)
		rsd.pinActive[ci] = false
	}
}
