package exec

import (
	"sort"

	"powerdrill/internal/bloom"
	"powerdrill/internal/colstore"
	"powerdrill/internal/sql"
	"powerdrill/internal/value"
)

// This file computes the active-chunk set of a statement BEFORE any chunk
// data is loaded — the piece that makes the memory budget scale with
// restriction selectivity (paper Section 5: composite range partitioning
// makes most chunks provably inactive for a restricted query, so only the
// active ones need RAM). The analysis runs on metadata alone: global
// dictionaries (to map literals to global-ids) and the per-chunk value
// spans recorded in the manifest (colstore.ChunkSpan). It is deliberately
// conservative — a chunk is pruned only when the spans PROVE no row can
// match — so the precise per-chunk classification in scanChunk, which sees
// the real chunk-dictionaries, still runs on whatever survives.
//
// The analysis happens before prefetch and outside planMu: it pins only
// dictionaries (cheap), and its verdict tells prefetchColumns which chunks
// to pin, so a restricted query never loads — and never charges the byte
// budget for — chunks it cannot scan.

// residency is the result of the pre-scan active-chunk analysis.
type residency struct {
	// active flags the chunks the statement may touch; nil when the
	// analysis could not prune anything (no WHERE clause, skipping
	// disabled, or no usable spans), meaning every chunk is active.
	active []bool
	// count is the number of active chunks (NumChunks when active is nil).
	count int
	// full flags chunks the spans PROVE fully active (every row matches):
	// exactly the chunks whose partials the result cache can hold. nil when
	// the analysis cannot prove fullness for any chunk (unknown spans,
	// skipping disabled). With no WHERE clause every chunk is full.
	full []bool
	// cached maps chunk index -> the result-cache partial the cache-aware
	// pass retrieved for it (see cacheResidency); those chunks are answered
	// without being pinned or loaded. The pointers are held here so a cache
	// eviction between analysis and scan cannot strand the query.
	cached map[int]*partial
	// pinActive is active minus the cached chunks — what prefetch and plan
	// actually pin. nil means "same as active".
	pinActive []bool
	// sig is the predicted cache-key signature the cached entries were
	// probed under; plan verifies it against the compiled query.
	sig string
	// bloomSkipped counts chunks pruned only because a per-chunk bloom
	// filter proved an equality restriction's ids absent — the [min, max]
	// spans alone would have kept them active.
	bloomSkipped int
}

// activeSet returns the active flags (nil = all chunks).
func (r *residency) activeSet() []bool {
	if r == nil {
		return nil
	}
	return r.active
}

// pinSet returns the flags of the chunks that must actually be pinned:
// the active set minus chunks already answered by the result cache.
func (r *residency) pinSet() []bool {
	if r == nil {
		return nil
	}
	if r.pinActive != nil {
		return r.pinActive
	}
	return r.active
}

// analyzeResidency classifies every chunk against the statement's WHERE
// clause using spans only. Dictionaries it needs are pinned into ps. The
// analysis never fails: anything it cannot decide (row predicates,
// unmaterialized expressions, span-less columns, type mismatches) is
// treated as "may match", and real errors surface later in plan with
// proper context.
func (e *Engine) analyzeResidency(stmt *sql.SelectStmt, ps *colstore.PinSet) *residency {
	n := e.store.NumChunks()
	all := &residency{count: n}
	if e.opts.DisableSkipping {
		return all
	}
	if stmt.Where == nil {
		// Everything is trivially fully active — the cache-aware pass can
		// still skip chunks whose partials are cached.
		full := make([]bool, n)
		for ci := range full {
			full[ci] = true
		}
		all.full = full
		return all
	}
	node := e.compileSpanTree(stmt.Where, ps)
	if node == unknownSpan {
		return all
	}
	active := make([]bool, n)
	full := make([]bool, n)
	hasBlooms := node.hasBlooms()
	count, fullCount, bloomSkipped := 0, 0, 0
	for ci := 0; ci < n; ci++ {
		switch node.classify(ci, true) {
		case activeAll:
			// Span-proven fully active: the precise per-chunk-dictionary
			// classification is sound w.r.t. this (TestResidencySoundness),
			// so the chunk's cached partial, if any, answers it exactly.
			active[ci] = true
			full[ci] = true
			count++
			fullCount++
		case activeSome:
			active[ci] = true
			count++
		case activeNone:
			// Attribute the skip: if spans alone would have kept the chunk,
			// the bloom filters are what pruned it.
			if hasBlooms && node.classify(ci, false) != activeNone {
				bloomSkipped++
			}
		}
	}
	if fullCount == 0 {
		full = nil
	}
	return &residency{active: active, count: count, full: full, bloomSkipped: bloomSkipped}
}

// spanNode is a conservative, metadata-only compilation of a WHERE tree:
// leaves carry restriction global-id sets or ranges plus the column's
// per-chunk spans; anything the analysis cannot prove becomes unknownSpan,
// which classifies every chunk as possibly active.
type spanNode struct {
	op       rOp // rAnd, rOr, rNot, rInSet, rRange, rRowPred (= unknown)
	children []*spanNode
	spans    []colstore.ChunkSpan
	gids     []uint32 // rInSet: sorted global-ids
	lo, hi   uint32   // rRange: [lo, hi)
	// blooms are per-chunk global-id filters (v4 manifests; nil entries and
	// nil slices mean "no filter"). Only rInSet leaves consult them: a
	// filter that tests negative for every id in the set proves the chunk
	// holds none of them — no false negatives — sharpening activeNone on
	// unsorted columns whose [min, max] spans cover everything.
	blooms []*bloom.Filter
}

// hasBlooms reports whether any leaf carries chunk bloom filters.
func (n *spanNode) hasBlooms() bool {
	if len(n.blooms) > 0 {
		return true
	}
	for _, c := range n.children {
		if c.hasBlooms() {
			return true
		}
	}
	return false
}

// unknownSpan is the "cannot decide, assume active" sentinel leaf.
var unknownSpan = &spanNode{op: rRowPred}

// compileSpanTree mirrors compileRestriction, but materializes nothing and
// loads no chunk data.
func (e *Engine) compileSpanTree(w sql.Expr, ps *colstore.PinSet) *spanNode {
	switch n := w.(type) {
	case *sql.Binary:
		switch n.Op {
		case sql.OpAnd, sql.OpOr:
			l := e.compileSpanTree(n.L, ps)
			r := e.compileSpanTree(n.R, ps)
			op := rAnd
			if n.Op == sql.OpOr {
				op = rOr
			}
			return &spanNode{op: op, children: []*spanNode{l, r}}
		case sql.OpEq, sql.OpNe, sql.OpLt, sql.OpLe, sql.OpGt, sql.OpGe:
			return e.spanComparison(n, ps)
		}
		return unknownSpan
	case *sql.Not:
		return &spanNode{op: rNot, children: []*spanNode{e.compileSpanTree(n.X, ps)}}
	case *sql.In:
		return e.spanIn(n, ps)
	}
	return unknownSpan
}

// spanLeafColumn resolves a restriction operand to a dictionary and chunk
// spans, when that is possible without loading chunks or materializing
// expressions: a plain column, or an expression an earlier query already
// materialized (registered under its canonical string). Persisted virtual
// columns record their spans in the store's sidecar manifest, so a
// restriction on a materialized expression prunes chunks even after the
// column was evicted — or in a later process that merely reopened the
// store — instead of being treated as all-active.
func (e *Engine) spanLeafColumn(x sql.Expr, ps *colstore.PinSet) (*colstore.Column, []colstore.ChunkSpan, []*bloom.Filter, bool) {
	name := ""
	if id, ok := x.(*sql.Ident); ok {
		name = id.Name
	} else if key := x.String(); e.store.HasColumn(key) {
		name = key
	} else {
		return nil, nil, nil, false
	}
	spans, ok := e.store.ChunkSpans(name)
	if !ok {
		return nil, nil, nil, false
	}
	col, err := ps.ColumnDict(name)
	if err != nil {
		// Plan will hit (and report) the same load error; stay conservative.
		return nil, nil, nil, false
	}
	blooms, _ := e.store.ChunkBlooms(name)
	return col, spans, blooms, true
}

// spanComparison maps `col OP literal` onto a set or range leaf over spans.
func (e *Engine) spanComparison(n *sql.Binary, ps *colstore.PinSet) *spanNode {
	lhs, rhs := n.L, n.R
	op := n.Op
	if _, isLit := exprLiteral(lhs); isLit {
		lhs, rhs = rhs, lhs
		op = flipOp(op)
	}
	lit, ok := exprLiteral(rhs)
	if !ok {
		return unknownSpan
	}
	col, spans, blooms, ok := e.spanLeafColumn(lhs, ps)
	if !ok {
		return unknownSpan
	}
	switch op {
	case sql.OpEq, sql.OpNe:
		gids, err := eqGIDs(col, lit)
		if err != nil {
			return unknownSpan
		}
		leaf := &spanNode{op: rInSet, spans: spans, gids: gids, blooms: blooms}
		if op == sql.OpNe {
			return &spanNode{op: rNot, children: []*spanNode{leaf}}
		}
		return leaf
	}
	lo, hi, err := rangeForComparison(col.Dict, col.Kind, op, lit)
	if err != nil {
		return unknownSpan
	}
	return &spanNode{op: rRange, spans: spans, lo: lo, hi: hi}
}

// spanIn maps `X [NOT] IN (literals)` onto a set leaf over spans.
func (e *Engine) spanIn(n *sql.In, ps *colstore.PinSet) *spanNode {
	lits := make([]value.Value, 0, len(n.List))
	for _, item := range n.List {
		lit, ok := exprLiteral(item)
		if !ok {
			return unknownSpan
		}
		lits = append(lits, lit)
	}
	col, spans, blooms, ok := e.spanLeafColumn(n.X, ps)
	if !ok {
		return unknownSpan
	}
	gids, err := inGIDs(col, lits)
	if err != nil {
		return unknownSpan
	}
	leaf := &spanNode{op: rInSet, spans: spans, gids: gids, blooms: blooms}
	if n.Negated {
		return &spanNode{op: rNot, children: []*spanNode{leaf}}
	}
	return leaf
}

// classify evaluates the tree against chunk ci's spans — the same
// three-valued lattice as restriction.classify, but over [min, max]
// summaries instead of full chunk-dictionaries. Sound by construction:
// whenever this returns activeNone, the precise classification would too.
// useBloom additionally consults the per-chunk bloom filters at rInSet
// leaves; filters never report a present id absent, so the sharpened
// activeNone — and its flip to activeAll under NOT — stays sound.
func (n *spanNode) classify(ci int, useBloom bool) triState {
	switch n.op {
	case rAnd:
		out := activeAll
		for _, c := range n.children {
			if s := c.classify(ci, useBloom); s < out {
				out = s
			}
			if out == activeNone {
				break
			}
		}
		return out
	case rOr:
		out := activeNone
		for _, c := range n.children {
			if s := c.classify(ci, useBloom); s > out {
				out = s
			}
			if out == activeAll {
				break
			}
		}
		return out
	case rNot:
		switch n.children[0].classify(ci, useBloom) {
		case activeNone:
			return activeAll
		case activeAll:
			return activeNone
		default:
			return activeSome
		}
	case rInSet:
		sp := n.spans[ci]
		if sp.Empty() || !anyGIDInSpan(n.gids, sp) {
			return activeNone
		}
		if sp.MinGID == sp.MaxGID {
			// Single distinct value, proven to be in the set.
			return activeAll
		}
		if useBloom && ci < len(n.blooms) && n.blooms[ci] != nil && !anyGIDInBloom(n.gids, sp, n.blooms[ci]) {
			return activeNone
		}
		return activeSome
	case rRange:
		sp := n.spans[ci]
		if sp.Empty() || n.lo >= n.hi || sp.MaxGID < n.lo || sp.MinGID >= n.hi {
			return activeNone
		}
		if sp.MinGID >= n.lo && sp.MaxGID < n.hi {
			return activeAll
		}
		return activeSome
	}
	return activeSome
}

// anyGIDInSpan reports whether any of the sorted global-ids falls inside
// the span.
func anyGIDInSpan(sorted []uint32, sp colstore.ChunkSpan) bool {
	i := sort.Search(len(sorted), func(i int) bool { return sorted[i] >= sp.MinGID })
	return i < len(sorted) && sorted[i] <= sp.MaxGID
}

// anyGIDInBloom reports whether the chunk's bloom filter admits any of the
// sorted global-ids inside the span. False means every id is provably
// absent from the chunk (filters have no false negatives).
func anyGIDInBloom(sorted []uint32, sp colstore.ChunkSpan, f *bloom.Filter) bool {
	i := sort.Search(len(sorted), func(i int) bool { return sorted[i] >= sp.MinGID })
	for ; i < len(sorted) && sorted[i] <= sp.MaxGID; i++ {
		if f.TestUint64(uint64(sorted[i])) {
			return true
		}
	}
	return false
}
