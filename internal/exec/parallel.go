package exec

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// parallelism resolves the effective worker count for one query.
func (e *Engine) parallelism() int {
	if e.opts.Parallelism > 0 {
		return e.opts.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// chunkWorkers clamps the worker count to [1, nChunks] — the single source
// for both the number of goroutines forEachChunk spawns and the length of
// the callers' per-worker state slices, which must agree so worker indices
// stay in range.
func (e *Engine) chunkWorkers(nChunks int) int {
	w := e.parallelism()
	if w > nChunks {
		w = nChunks
	}
	if w < 1 {
		w = 1
	}
	return w
}

// forEachChunk runs fn(worker, chunk) for every chunk index in [0, n),
// fanning out over up to `workers` goroutines. Chunks are claimed in
// ascending order from a shared counter rather than striped statically, so
// cheap chunks (skipped or cached) don't leave a worker idle while another
// grinds through a run of expensive ones. worker is a stable index in
// [0, workers) identifying the claiming goroutine, letting callers give each
// worker private accumulator state without locks.
//
// The first error stops all workers from claiming further chunks and is
// returned; chunks already being scanned finish first. A non-nil quit is
// polled before each claim; once it returns true no further chunks are
// claimed (row scans use this to stop after collecting LIMIT rows).
//
// workers <= 1 degenerates to the sequential loop on the caller's
// goroutine — the Parallelism: 1 engine spawns nothing.
func forEachChunk(n, workers int, quit func() bool, fn func(worker, chunk int) error) error {
	if n <= 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for ci := 0; ci < n; ci++ {
			if quit != nil && quit() {
				return nil
			}
			if err := fn(0, ci); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next   atomic.Int64
		failed atomic.Bool
		wg     sync.WaitGroup
		errMu  sync.Mutex
		first  error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				if failed.Load() || (quit != nil && quit()) {
					return
				}
				ci := int(next.Add(1)) - 1
				if ci >= n {
					return
				}
				if err := fn(w, ci); err != nil {
					errMu.Lock()
					if first == nil {
						first = err
					}
					errMu.Unlock()
					failed.Store(true)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	return first
}

// add folds another query's (or worker's) counters into qs.
func (qs *QueryStats) add(o QueryStats) {
	qs.ChunksTotal += o.ChunksTotal
	qs.ChunksSkipped += o.ChunksSkipped
	qs.ChunksCached += o.ChunksCached
	qs.ChunksScanned += o.ChunksScanned
	qs.RowsScanned += o.RowsScanned
	qs.RowsCached += o.RowsCached
	qs.RowsSkipped += o.RowsSkipped
	qs.CellsCovered += o.CellsCovered
	qs.CellsScanned += o.CellsScanned
	qs.ActiveChunks += o.ActiveChunks
	qs.SkippedChunks += o.SkippedChunks
	qs.ColdLoads += o.ColdLoads
	qs.ColdChunkLoads += o.ColdChunkLoads
	qs.ColdDictLoads += o.ColdDictLoads
	qs.ColdBytesLoaded += o.ColdBytesLoaded
	qs.DiskBytesRead += o.DiskBytesRead
	qs.CacheSkippedChunks += o.CacheSkippedChunks
	qs.ReadRuns += o.ReadRuns
	qs.CoalescedReads += o.CoalescedReads
	qs.BloomSkippedChunks += o.BloomSkippedChunks
	qs.KernelChunks += o.KernelChunks
	qs.ScalarChunks += o.ScalarChunks
}
