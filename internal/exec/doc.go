// Package exec is PowerDrill's query engine: it evaluates the SQL subset
// over a colstore.Store using the mechanisms of Sections 2.4, 2.5 and 5 —
// chunk skipping via chunk-dictionaries, dense counts-array group-by,
// materialized virtual fields, per-chunk result caching for fully active
// chunks, and approximate count distinct.
//
// # Query lifecycle on a lazy store
//
// One Run goes through five phases; the first three decide what must be
// resident, the last two only read pinned, immutable data:
//
//  1. Residency analysis (analyzeResidency, lock-free): the WHERE clause
//     is compiled against global dictionaries and the per-chunk value
//     spans from the store manifest, classifying every chunk as possibly
//     active or provably inactive — before any chunk data is loaded.
//     Only dictionaries are pinned here.
//  2. Prefetch (prefetchColumns, lock-free): the active chunks of every
//     plain column the statement mentions are pinned, cold-loading from
//     disk as needed. Concurrent first-touch queries load disjoint data
//     in parallel; the memory manager deduplicates identical loads.
//  3. Planning (plan, serialized by planMu): the only phase that may
//     mutate the store — materializing virtual columns (which scans every
//     row, so materialization sources are pinned in full). The compiled
//     plan resolves every accessed column to its pinned pointer
//     (plan.cols, restriction.colRef), so later phases never touch the
//     store registry or the manager mutex.
//  4. Scan (executeChunks / executeRowScan): chunks pruned by the
//     residency analysis are skipped without touching their (never
//     loaded) data; surviving chunks get the precise per-chunk-dictionary
//     classification — skip / fully-active (cacheable) / partial — and
//     active ones are aggregated, fanned out over admission-gated
//     workers.
//  5. Finalize: group keys decode through pinned dictionaries, ORDER
//     BY/LIMIT/HAVING apply, pins release.
//
// # Admission control
//
// Gate is a weighted semaphore admitting scan workers across concurrent
// queries: each fan-out (chunk scans, row scans, virtual-column
// materialization) takes what is available up to its parallelism and
// never blocks below one worker, so N concurrent queries degrade smoothly
// instead of spawning N × Parallelism goroutines. Engines get a private
// gate by default; cluster leaves share one via Options.Gate.
//
// # Concurrency model
//
// The engine is safe for concurrent Query/Run/RunPartial calls, and a
// single query fans its chunk work out over Options.Parallelism workers —
// the in-process analogue of the paper's Section 4 execution tree.
// The invariants that make this work:
//
//   - Store data is immutable after load. Chunk-dictionaries, element
//     sequences and global dictionaries are never written once built, so
//     the scan phase (classify → mask → aggregate) takes no locks at all.
//     The two exceptions hide their own synchronization: the lazily
//     loaded sharded dictionary (dict.Sharded) and the colstore column
//     registry/metadata, which grow when a virtual field materializes
//     (on lazy stores the materialization is persisted into the store's
//     sidecar and budgeted via the memory manager).
//   - Planning is serialized by planMu, keeping "check column exists →
//     materialize → register" atomic without slowing the scan phase.
//   - Chunks are independent units of work. Workers claim chunk indices
//     from a shared counter and produce one partial per chunk plus
//     per-worker QueryStats; partials then merge in ascending chunk order
//     on the calling goroutine, so results — including order-sensitive
//     float sums — are bit-for-bit identical to the sequential engine's.
//   - Shared mutable state is wrapped, not sprinkled with locks: the
//     result cache is behind cache.Synchronized (its eviction policies
//     mutate on Get), and the engine's cumulative Stats accumulate under
//     statsMu once per query, from the already-merged per-query counters.
package exec
