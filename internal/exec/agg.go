package exec

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"powerdrill/internal/enc"
	"powerdrill/internal/sketch"
	"powerdrill/internal/sql"
	"powerdrill/internal/value"
)

// accCell accumulates one aggregate for one group. Minimum and maximum are
// tracked as global-ids: the global dictionary is sorted, so the order of
// ids is the order of values and no value needs materializing until the
// final result rows.
type accCell struct {
	count  int64
	sumI   int64
	sumF   float64
	minID  uint32
	maxID  uint32
	hasMM  bool
	sketch *sketch.KMV
	exact  map[uint32]struct{}
}

// merge folds o into c.
func (c *accCell) merge(o *accCell, spec aggSpec) {
	c.count += o.count
	c.sumI += o.sumI
	c.sumF += o.sumF
	if o.hasMM {
		if !c.hasMM {
			c.minID, c.maxID, c.hasMM = o.minID, o.maxID, true
		} else {
			if o.minID < c.minID {
				c.minID = o.minID
			}
			if o.maxID > c.maxID {
				c.maxID = o.maxID
			}
		}
	}
	if o.sketch != nil {
		if c.sketch == nil {
			c.sketch = sketch.NewKMV(o.sketch.M())
		}
		c.sketch.Merge(o.sketch)
	}
	if o.exact != nil {
		if c.exact == nil {
			c.exact = make(map[uint32]struct{}, len(o.exact))
		}
		for g := range o.exact {
			c.exact[g] = struct{}{}
		}
	}
}

// sizeBytes estimates the cache footprint of the cell.
func (c *accCell) sizeBytes() int64 {
	s := int64(64)
	if c.sketch != nil {
		s += c.sketch.MemoryBytes()
	}
	s += int64(len(c.exact)) * 16
	return s
}

// partial is one chunk's aggregate contribution: group global-ids plus a
// flattened [group][agg] accumulator matrix. Partials are what the result
// cache stores for fully active chunks and what the distributed execution
// tree ships between levels.
type partial struct {
	gids []uint32
	accs []accCell // len = len(gids) * nAggs
}

func (p *partial) sizeBytes() int64 {
	s := int64(len(p.gids)) * 4
	for i := range p.accs {
		s += p.accs[i].sizeBytes()
	}
	return s
}

// executeChunks classifies every chunk and aggregates the active ones,
// fanning the per-chunk work (classify, mask, aggregate, cache probe) out
// over the engine's parallelism. Workers produce one *partial per active
// chunk (the same unit the result cache stores and the execution tree
// ships); the partials then merge into the global group map in ascending
// chunk order on the calling goroutine. Merging in chunk order — not in
// the racy order workers finish — is what makes the result bit-for-bit
// identical to the sequential engine's even for float SUM/AVG, where
// addition order changes the last ULPs.
func (e *Engine) executeChunks(p *plan) (map[uint32][]accCell, QueryStats, error) {
	var qs QueryStats
	nChunks := e.store.NumChunks()
	qs.ChunksTotal = nChunks
	nCols := int64(len(p.accessCols))
	qs.CellsCovered = int64(e.store.NumRows()) * nCols
	qs.ActiveChunks = nChunks
	if p.active != nil {
		qs.ActiveChunks = p.activeCount
		qs.SkippedChunks = nChunks - p.activeCount
	}

	if p.rowScan {
		return nil, qs, fmt.Errorf("exec: internal: row scans do not aggregate")
	}

	// Admission control: take up to the wanted worker count from the shared
	// gate; under concurrent-query pressure the grant shrinks (never below
	// one), so total scan goroutines stay bounded by the gate's capacity.
	workers := e.gate.AcquireUpTo(e.chunkWorkers(nChunks))
	defer e.gate.Release(workers)
	parts := make([]*partial, nChunks) // nil entries are skipped chunks
	wqs := make([]QueryStats, workers)
	err := forEachChunk(nChunks, workers, nil, func(w, ci int) error {
		part, err := e.scanChunk(p, ci, nCols, &wqs[w])
		if err != nil {
			return err
		}
		parts[ci] = part
		return nil
	})
	if err != nil {
		return nil, qs, err
	}
	global := make(map[uint32][]accCell)
	for _, part := range parts {
		if part != nil {
			// Cached partials are shared between queries and workers;
			// mergePartial copies out of them, never aliasing.
			e.mergePartial(global, part, p)
		}
	}
	for w := 0; w < workers; w++ {
		qs.add(wqs[w])
	}
	return global, qs, nil
}

// scanChunk classifies one chunk and returns its partial contribution (nil
// for skipped chunks) — the unit of work one parallel worker claims at a
// time.
func (e *Engine) scanChunk(p *plan, ci int, nCols int64, qs *QueryStats) (*partial, error) {
	rows := e.store.ChunkRows(ci)
	if p.active != nil && !p.active[ci] {
		// Pruned by the residency analysis: on a chunk-granular store this
		// chunk's data was never loaded, so don't touch it — the plan's
		// column views have nil entries here.
		qs.ChunksSkipped++
		qs.RowsSkipped += int64(rows)
		return nil, nil
	}
	if part, ok := p.cachedParts[ci]; ok {
		// Answered by the cache-aware residency pass: the chunk is fully
		// active and its partial came from the result cache before anything
		// was pinned, so — like a residency-pruned chunk — its data was
		// never loaded and must not be touched.
		qs.ChunksCached++
		qs.CacheSkippedChunks++
		qs.RowsCached += int64(rows)
		return part, nil
	}
	state := activeAll
	if p.where != nil {
		if e.opts.DisableSkipping {
			state = activeSome
		} else {
			state = p.where.classify(e, ci)
		}
	}
	switch state {
	case activeNone:
		qs.ChunksSkipped++
		qs.RowsSkipped += int64(rows)
		return nil, nil
	case activeAll:
		if e.resultCache != nil {
			key := cacheKey(ci, p)
			if v, ok := e.resultCache.Get(key); ok {
				qs.ChunksCached++
				qs.RowsCached += int64(rows)
				return v.(*partial), nil
			}
			part, err := e.aggregateChunk(p, ci, nil, qs)
			if err != nil {
				return nil, err
			}
			e.resultCache.Put(key, part, part.sizeBytes())
			qs.ChunksScanned++
			qs.RowsScanned += int64(rows)
			qs.CellsScanned += int64(rows) * nCols
			return part, nil
		}
		part, err := e.aggregateChunk(p, ci, nil, qs)
		if err != nil {
			return nil, err
		}
		qs.ChunksScanned++
		qs.RowsScanned += int64(rows)
		qs.CellsScanned += int64(rows) * nCols
		return part, nil
	case activeSome:
		mask, err := p.where.mask(e, p, ci)
		if err != nil {
			return nil, err
		}
		part, err := e.aggregateChunk(p, ci, mask, qs)
		if err != nil {
			return nil, err
		}
		qs.ChunksScanned++
		qs.RowsScanned += int64(rows)
		qs.CellsScanned += int64(rows) * nCols
		return part, nil
	}
	return nil, nil
}

// cacheKey identifies a fully-active chunk's partial result. The
// chunk-independent part (p.cacheSig) is derived once per plan; the
// cache-aware residency pass probes the same keys before planning via a
// syntactic prediction of the signature (see cacheres.go).
func cacheKey(ci int, p *plan) string {
	return cacheKeyAt(ci, p.cacheSig)
}

// groupColumn returns the single column the engine groups by: the lone
// group column, the composite, or "" for a global aggregate.
func (p *plan) groupColumn() string {
	if p.composite != "" {
		return p.composite
	}
	if len(p.groupCols) == 1 {
		return p.groupCols[0]
	}
	return ""
}

// mergePartial folds a chunk partial into the global group map.
func (e *Engine) mergePartial(global map[uint32][]accCell, part *partial, p *plan) {
	na := len(p.aggs)
	for i, gid := range part.gids {
		accs, ok := global[gid]
		if !ok {
			accs = make([]accCell, na)
			global[gid] = accs
		}
		for j := 0; j < na; j++ {
			accs[j].merge(&part.accs[i*na+j], p.aggs[j])
		}
	}
}

// aggregateChunk computes a chunk's partial aggregates. mask == nil means
// the chunk is fully active. It dispatches to the vectorized kernels
// (kernels.go) unless Options.DisableKernels pins the scalar reference
// path — the oracle the differential fuzzer compares the kernels against.
// Both paths produce bit-for-bit identical partials, including float
// SUM/AVG accumulation order (ascending rows).
func (e *Engine) aggregateChunk(p *plan, ci int, mask *enc.Bitmap, qs *QueryStats) (*partial, error) {
	if e.opts.DisableKernels {
		if qs != nil {
			qs.ScalarChunks++
		}
		return e.aggregateChunkScalar(p, ci, mask)
	}
	if qs != nil {
		qs.KernelChunks++
	}
	return e.aggregateChunkVec(p, ci, mask)
}

// chunkAggCtx is the per-chunk geometry both aggregation paths share:
// group cardinality and global-ids, materialized group elements, and the
// per-aggregate argument tables (numeric value, hash, and global-id of
// each argument chunk-id — computed once per distinct value, not per row,
// the same trick the restriction masks use).
type chunkAggCtx struct {
	rows int
	na   int
	// Group geometry: chunk-ids 0..card-1 map to group global-ids. gseq and
	// gelems are nil for a global aggregate (card == 1, one implicit group).
	card      int
	groupGIDs []uint32
	gseq      enc.Sequence
	gelems    []uint32
	// Per-aggregate argument tables, indexed [agg][chunk-id] (argElems is
	// [agg][row]).
	argIsInt []bool
	argValsF [][]float64
	argValsI [][]int64
	argGIDs  [][]uint32
	argHash  [][]uint64
	argElems [][]uint32
}

// newChunkAggCtx resolves chunk ci's group geometry and argument tables.
func (e *Engine) newChunkAggCtx(p *plan, ci int) *chunkAggCtx {
	rows := e.store.ChunkRows(ci)
	gcol := p.groupColumn()
	na := len(p.aggs)
	c := &chunkAggCtx{rows: rows, na: na}
	if gcol == "" {
		c.card = 1
		c.groupGIDs = []uint32{0}
	} else {
		gch := p.col(e, gcol).Chunks[ci]
		c.card = gch.Cardinality()
		c.groupGIDs = gch.GlobalIDs
		c.gseq = gch.Elems
		c.gelems = gch.Elems.Materialize(make([]uint32, 0, rows))
	}

	c.argIsInt = make([]bool, na)
	c.argValsF = make([][]float64, na)
	c.argValsI = make([][]int64, na)
	c.argGIDs = make([][]uint32, na)
	c.argHash = make([][]uint64, na)
	c.argElems = make([][]uint32, na)
	for j, spec := range p.aggs {
		if spec.argCol == "" {
			continue
		}
		acol := p.col(e, spec.argCol)
		ach := acol.Chunks[ci]
		c.argGIDs[j] = ach.GlobalIDs
		c.argElems[j] = ach.Elems.Materialize(make([]uint32, 0, rows))
		switch spec.fn {
		case aggSum, aggAvg:
			if acol.Kind == value.KindInt64 {
				c.argIsInt[j] = true
				vals := make([]int64, len(ach.GlobalIDs))
				for i, gid := range ach.GlobalIDs {
					vals[i] = acol.Dict.Value(gid).Int()
				}
				c.argValsI[j] = vals
			} else {
				vals := make([]float64, len(ach.GlobalIDs))
				for i, gid := range ach.GlobalIDs {
					vals[i] = acol.Dict.Value(gid).AsFloat()
				}
				c.argValsF[j] = vals
			}
		case aggCountDistinct:
			if !e.opts.ExactDistinct {
				hs := make([]uint64, len(ach.GlobalIDs))
				for i, gid := range ach.GlobalIDs {
					hs[i] = acol.Dict.Hash(gid)
				}
				c.argHash[j] = hs
			}
		}
	}
	return c
}

// aggregateChunkScalar is the retained row-at-a-time reference
// implementation — the inner loops of Section 2.4 (dense arrays indexed by
// chunk-id, no hashing), one interface-dispatched add per row. It stays in
// the tree as the differential-fuzzing oracle and the ablation baseline;
// production queries run the kernels in kernels.go.
func (e *Engine) aggregateChunkScalar(p *plan, ci int, mask *enc.Bitmap) (*partial, error) {
	c := e.newChunkAggCtx(p, ci)
	rows, card, na, gelems := c.rows, c.card, c.na, c.gelems

	accs := make([]accCell, card*na)
	add := func(r int) {
		g := 0
		if gelems != nil {
			g = int(gelems[r])
		}
		base := g * na
		for j, spec := range p.aggs {
			cell := &accs[base+j]
			switch spec.fn {
			case aggCount:
				cell.count++
			case aggSum, aggAvg:
				cell.count++
				if c.argIsInt[j] {
					cell.sumI += c.argValsI[j][c.argElems[j][r]]
				} else {
					cell.sumF += c.argValsF[j][c.argElems[j][r]]
				}
			case aggMin, aggMax:
				cell.count++
				gid := c.argGIDs[j][c.argElems[j][r]]
				if !cell.hasMM {
					cell.minID, cell.maxID, cell.hasMM = gid, gid, true
				} else {
					if gid < cell.minID {
						cell.minID = gid
					}
					if gid > cell.maxID {
						cell.maxID = gid
					}
				}
			case aggCountDistinct:
				cell.count++
				if e.opts.ExactDistinct {
					if cell.exact == nil {
						cell.exact = make(map[uint32]struct{}, 16)
					}
					cell.exact[c.argGIDs[j][c.argElems[j][r]]] = struct{}{}
				} else {
					if cell.sketch == nil {
						cell.sketch = sketch.NewKMV(e.opts.SketchM)
					}
					cell.sketch.AddHash(c.argHash[j][c.argElems[j][r]])
				}
			}
		}
	}

	// Fast path: a single COUNT(*) over a full chunk is the pure
	// counts[elements[row]]++ loop (20 ms for 5M rows in the paper).
	if mask == nil && na == 1 && p.aggs[0].fn == aggCount && c.gseq != nil {
		counts := make([]int64, card)
		c.gseq.CountInto(counts)
		for g := 0; g < card; g++ {
			accs[g].count = counts[g]
		}
	} else if mask == nil {
		for r := 0; r < rows; r++ {
			add(r)
		}
	} else {
		mask.ForEach(add)
	}

	// Compact: keep only groups that actually received rows.
	part := &partial{}
	for g := 0; g < card; g++ {
		contributed := false
		for j := 0; j < na; j++ {
			if accs[g*na+j].count > 0 {
				contributed = true
				break
			}
		}
		if na == 0 {
			// Pure GROUP BY with no aggregates: a group exists if any row
			// maps to it; with no mask every dictionary entry occurs.
			contributed = mask == nil
			if mask != nil {
				// Recheck occupancy below via counts pass.
				contributed = groupOccupied(gelems, mask, g)
			}
		}
		if contributed {
			part.gids = append(part.gids, c.groupGIDs[g])
			part.accs = append(part.accs, accs[g*na:(g+1)*na]...)
		}
	}
	return part, nil
}

// groupOccupied reports whether any selected row maps to group g.
func groupOccupied(gelems []uint32, mask *enc.Bitmap, g int) bool {
	found := false
	mask.ForEach(func(r int) {
		if !found && int(gelems[r]) == g {
			found = true
		}
	})
	return found
}

// finalize renders the result rows, applies ORDER BY and LIMIT. When the
// ordering only involves aggregate columns, group-key values materialize
// *after* the limit — the Section 2.5 trick: "after identifying the top 10
// chunk-ids ... the original table name string values need to be looked up
// in the dictionary" for just those ten rows, never for all groups.
func (e *Engine) finalize(p *plan, global map[uint32][]accCell) (*Result, error) {
	res := &Result{}
	for _, it := range p.items {
		res.Columns = append(res.Columns, it.name)
	}

	gids := make([]uint32, 0, len(global))
	for gid := range global {
		gids = append(gids, gid)
	}
	sort.Slice(gids, func(i, j int) bool { return gids[i] < gids[j] })

	// Does any ORDER BY key reference a group column? If not, keys can be
	// materialized lazily after LIMIT. HAVING may reference keys, so it
	// forces eager materialization.
	deferKeys := p.stmt.Limit >= 0 && len(p.stmt.OrderBy) > 0 && p.stmt.Having == nil
	if deferKeys {
		for _, o := range p.stmt.OrderBy {
			idx, err := p.resolveOrderColumn(res, o.Expr)
			if err != nil || p.items[idx].groupIdx >= 0 {
				deferKeys = false
				break
			}
		}
	}

	rowGIDs := make([]uint32, 0, len(gids))
	for _, gid := range gids {
		accs := global[gid]
		row := make([]value.Value, len(p.items))
		for i, it := range p.items {
			if it.aggIdx >= 0 {
				v, err := e.aggValue(p, p.aggs[it.aggIdx], &accs[it.aggIdx])
				if err != nil {
					return nil, err
				}
				row[i] = v
			}
		}
		if !deferKeys {
			keyVals, err := e.groupKeyValues(p, gid)
			if err != nil {
				return nil, err
			}
			for i, it := range p.items {
				if it.groupIdx >= 0 {
					row[i] = keyVals[it.groupIdx]
				}
			}
		}
		res.Rows = append(res.Rows, row)
		rowGIDs = append(rowGIDs, gid)
	}

	if deferKeys {
		// Sort rows and gids together by the aggregate order keys, cut to
		// the limit, then look up only the surviving groups' values.
		if err := e.orderAndLimitWithGIDs(p, res, rowGIDs); err != nil {
			return nil, err
		}
		return res, nil
	}
	if err := applyHaving(p.stmt, res); err != nil {
		return nil, err
	}
	if err := e.orderAndLimit(p, res); err != nil {
		return nil, err
	}
	return res, nil
}

// orderAndLimitWithGIDs sorts rows (keeping group ids aligned), applies
// the limit, and materializes group-key values for the remaining rows.
func (e *Engine) orderAndLimitWithGIDs(p *plan, res *Result, gids []uint32) error {
	stmt := p.stmt
	keys := make([]int, len(stmt.OrderBy))
	for i, o := range stmt.OrderBy {
		idx, err := p.resolveOrderColumn(res, o.Expr)
		if err != nil {
			return err
		}
		keys[i] = idx
	}
	order := make([]int, len(res.Rows))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ra, rb := res.Rows[order[a]], res.Rows[order[b]]
		for i, k := range keys {
			c := ra[k].Compare(rb[k])
			if c == 0 {
				continue
			}
			if stmt.OrderBy[i].Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	n := len(order)
	if stmt.Limit >= 0 && n > stmt.Limit {
		n = stmt.Limit
	}
	rows := make([][]value.Value, n)
	for i := 0; i < n; i++ {
		row := res.Rows[order[i]]
		keyVals, err := e.groupKeyValues(p, gids[order[i]])
		if err != nil {
			return err
		}
		for j, it := range p.items {
			if it.groupIdx >= 0 {
				row[j] = keyVals[it.groupIdx]
			}
		}
		rows[i] = row
	}
	res.Rows = rows
	return nil
}

// groupKeyValues decodes a group global-id into the per-group-expression
// values.
func (e *Engine) groupKeyValues(p *plan, gid uint32) ([]value.Value, error) {
	switch {
	case p.composite != "":
		key := p.col(e, p.composite).Dict.Value(gid).Str()
		parts := strings.Split(key, "\x1f")
		if len(parts) != len(p.groupCols) {
			return nil, fmt.Errorf("exec: corrupt composite key %q", key)
		}
		out := make([]value.Value, len(parts))
		for i, hex := range parts {
			sub, err := strconv.ParseUint(hex, 16, 32)
			if err != nil {
				return nil, fmt.Errorf("exec: corrupt composite key %q: %w", key, err)
			}
			out[i] = p.col(e, p.groupCols[i]).Dict.Value(uint32(sub))
		}
		return out, nil
	case len(p.groupCols) == 1:
		return []value.Value{p.col(e, p.groupCols[0]).Dict.Value(gid)}, nil
	}
	return nil, nil
}

// aggValue renders one aggregate's final value.
func (e *Engine) aggValue(p *plan, spec aggSpec, cell *accCell) (value.Value, error) {
	switch spec.fn {
	case aggCount:
		return value.Int64(cell.count), nil
	case aggSum:
		if spec.argCol != "" && p.col(e, spec.argCol).Kind == value.KindInt64 {
			return value.Int64(cell.sumI), nil
		}
		return value.Float64(cell.sumF), nil
	case aggAvg:
		if cell.count == 0 {
			return value.Float64(0), nil
		}
		total := cell.sumF
		if p.col(e, spec.argCol).Kind == value.KindInt64 {
			total = float64(cell.sumI)
		}
		return value.Float64(total / float64(cell.count)), nil
	case aggMin:
		if !cell.hasMM {
			return value.Value{}, fmt.Errorf("exec: MIN over empty group")
		}
		return p.col(e, spec.argCol).Dict.Value(cell.minID), nil
	case aggMax:
		if !cell.hasMM {
			return value.Value{}, fmt.Errorf("exec: MAX over empty group")
		}
		return p.col(e, spec.argCol).Dict.Value(cell.maxID), nil
	case aggCountDistinct:
		if e.opts.ExactDistinct {
			return value.Int64(int64(len(cell.exact))), nil
		}
		if cell.sketch == nil {
			return value.Int64(0), nil
		}
		return value.Int64(cell.sketch.Estimate()), nil
	}
	return value.Value{}, fmt.Errorf("exec: unknown aggregate %d", spec.fn)
}

// orderAndLimit applies ORDER BY and LIMIT to the result in place.
func (e *Engine) orderAndLimit(p *plan, res *Result) error {
	stmt := p.stmt
	if len(stmt.OrderBy) > 0 {
		keys := make([]int, len(stmt.OrderBy))
		for i, o := range stmt.OrderBy {
			idx, err := p.resolveOrderColumn(res, o.Expr)
			if err != nil {
				return err
			}
			keys[i] = idx
		}
		sort.SliceStable(res.Rows, func(a, b int) bool {
			for i, k := range keys {
				c := res.Rows[a][k].Compare(res.Rows[b][k])
				if c == 0 {
					continue
				}
				if stmt.OrderBy[i].Desc {
					return c > 0
				}
				return c < 0
			}
			return false
		})
	}
	if stmt.Limit >= 0 && len(res.Rows) > stmt.Limit {
		res.Rows = res.Rows[:stmt.Limit]
	}
	return nil
}

// resolveOrderColumn maps an ORDER BY expression to an output column.
func (p *plan) resolveOrderColumn(res *Result, x sql.Expr) (int, error) {
	want := x.String()
	for i, name := range res.Columns {
		if name == want {
			return i, nil
		}
	}
	// Fall back to matching the underlying expression of each item.
	for i, item := range p.stmt.Items {
		if item.Expr.String() == want {
			return i, nil
		}
	}
	return 0, fmt.Errorf("exec: ORDER BY %s does not match any output column", want)
}
