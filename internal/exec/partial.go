package exec

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"powerdrill/internal/sketch"
	"powerdrill/internal/sql"
	"powerdrill/internal/value"
)

// Partial is a mergeable aggregate result: what a leaf server returns and
// what every level of the Section 4 execution tree re-aggregates. All
// supported aggregates are associative — SUM, MIN, MAX, COUNT directly;
// AVG decomposed into SUM and COUNT; COUNT DISTINCT as a mergeable KMV
// sketch (the paper: exact count distinct cannot be multi-level aggregated,
// "therefore, we use an approximative technique").
//
// Group keys are values, not global-ids: different shards have different
// dictionaries, so ids are meaningless across machines.
type Partial struct {
	// Columns are the output column names (for assembling the final
	// result at the root).
	Columns []string
	// Groups holds one entry per group key present on this server.
	Groups []PartialGroup
	// Stats carries the leaf's execution counters up the tree.
	Stats QueryStats
}

// PartialGroup is one group's mergeable accumulators.
type PartialGroup struct {
	Keys  []value.Value
	Cells []PartialCell
}

// PartialCell is one aggregate's mergeable state.
type PartialCell struct {
	Count int64
	SumI  int64
	SumF  float64
	// SumIsInt records whether the summed column is integral, so the root
	// can render SUM with the right kind.
	SumIsInt bool
	// SumFParts holds the per-leaf float sums that SumF totals, one entry
	// per contributing leaf. Float addition is not associative, so folding
	// SumF level by level would make SUM/AVG depend on how the tree groups
	// its merges; concatenating the parts is associative, and the root
	// folds them in one canonical order (see sumFloat) — the answer is
	// bit-for-bit identical whatever the topology.
	SumFParts []float64
	Min       value.Value
	Max       value.Value
	Sketch    []byte // marshaled KMV for COUNT DISTINCT
}

// sumFloat is the cell's float total. With per-part sums present they are
// folded smallest-first by the IEEE-754 total order (sign-magnitude bit
// trick, so ±0 and NaN payloads order deterministically too); without
// them (int sums, pre-part encoders) the running SumF stands in.
func (c *PartialCell) sumFloat() float64 {
	if len(c.SumFParts) == 0 {
		return c.SumF
	}
	parts := append([]float64(nil), c.SumFParts...)
	sort.Slice(parts, func(i, j int) bool { return floatOrd(parts[i]) < floatOrd(parts[j]) })
	var sum float64
	for _, v := range parts {
		sum += v
	}
	return sum
}

// floatOrd maps a float64 to a uint64 whose natural order is the IEEE-754
// total order (negatives descending by magnitude, then ±0, positives
// ascending, NaNs at the extremes by payload).
func floatOrd(f float64) uint64 {
	b := math.Float64bits(f)
	if b>>63 != 0 {
		return ^b
	}
	return b | 1<<63
}

// RunPartial executes a statement but stops before finalization: no AVG
// division, no ORDER BY, no LIMIT — those happen once, at the root.
func (e *Engine) RunPartial(stmt *sql.SelectStmt) (*Partial, error) {
	if e.opts.ExactDistinct {
		return nil, fmt.Errorf("exec: exact count distinct is not multi-level aggregatable (Section 4); use sketches")
	}
	ps := e.store.NewPinSet()
	defer ps.Release()
	rsd := e.analyzeResidency(stmt, ps)
	e.cacheResidency(stmt, rsd)
	e.prefetchColumns(stmt, ps, rsd.pinSet())
	e.planMu.Lock()
	p, err := e.plan(stmt, ps, rsd)
	e.planMu.Unlock()
	if err != nil {
		return nil, err
	}
	if p.rowScan {
		return nil, fmt.Errorf("exec: row scans are not distributed; aggregate or group the query")
	}
	global, qs, err := e.executeChunks(p)
	if err != nil {
		return nil, err
	}
	qs.BloomSkippedChunks = rsd.bloomSkipped
	qs.ColdLoads = ps.ColdLoads
	qs.ColdChunkLoads = ps.ColdChunkLoads
	qs.ColdDictLoads = ps.ColdDictLoads
	qs.ColdBytesLoaded = ps.ColdBytesLoaded
	qs.DiskBytesRead = ps.DiskBytesRead
	qs.ChecksumVerified = int(ps.ChecksumVerified)
	qs.ChecksumFailed = int(ps.ChecksumFailed)
	qs.ReadRuns = ps.ReadRuns
	qs.CoalescedReads = ps.CoalescedReads
	// A leaf's partial always covers its whole shard — coverage accounting
	// is about server availability, not restriction selectivity. The
	// coordinator adds the row counts of shards that never answered to
	// RowsTotal alone, which is what drives Coverage below 1.
	qs.RowsTotal = int64(e.store.NumRows())
	qs.RowsCovered = qs.RowsTotal
	out := &Partial{Stats: qs}
	for _, it := range p.items {
		out.Columns = append(out.Columns, it.name)
	}
	for gid, accs := range global {
		keys, err := e.groupKeyValues(p, gid)
		if err != nil {
			return nil, err
		}
		pg := PartialGroup{Keys: keys}
		for j := range p.aggs {
			cell := PartialCell{
				Count: accs[j].count,
				SumI:  accs[j].sumI,
				SumF:  accs[j].sumF,
			}
			if col := p.aggs[j].argCol; col != "" {
				cell.SumIsInt = p.col(e, col).Kind == value.KindInt64
			}
			if fn := p.aggs[j].fn; (fn == aggSum || fn == aggAvg) && !cell.SumIsInt {
				cell.SumFParts = []float64{cell.SumF}
			}
			if accs[j].hasMM {
				col := p.col(e, p.aggs[j].argCol)
				cell.Min = col.Dict.Value(accs[j].minID)
				cell.Max = col.Dict.Value(accs[j].maxID)
			}
			if accs[j].sketch != nil {
				cell.Sketch = accs[j].sketch.Marshal()
			}
			pg.Cells = append(pg.Cells, cell)
		}
		out.Groups = append(out.Groups, pg)
	}
	e.recordStats(qs)
	return out, nil
}

// keyString renders a group key for merge hashing.
func keyString(keys []value.Value) string {
	var b strings.Builder
	for _, k := range keys {
		b.WriteByte(byte(k.Kind()))
		b.WriteString(k.String())
		b.WriteByte(0x1f)
	}
	return b.String()
}

// MergePartials folds src into dst (same query shape). This is the
// re-aggregation every inner node of the execution tree performs.
func MergePartials(dst, src *Partial) error {
	if dst == nil || src == nil {
		return fmt.Errorf("exec: merging nil partials")
	}
	if len(dst.Columns) == 0 {
		dst.Columns = src.Columns
	}
	if len(src.Columns) != len(dst.Columns) {
		return fmt.Errorf("exec: merging partials with %d vs %d columns", len(src.Columns), len(dst.Columns))
	}
	index := make(map[string]int, len(dst.Groups))
	for i, g := range dst.Groups {
		index[keyString(g.Keys)] = i
	}
	for _, g := range src.Groups {
		k := keyString(g.Keys)
		di, ok := index[k]
		if !ok {
			dst.Groups = append(dst.Groups, g)
			index[k] = len(dst.Groups) - 1
			continue
		}
		d := &dst.Groups[di]
		if len(d.Cells) != len(g.Cells) {
			return fmt.Errorf("exec: merging groups with %d vs %d cells", len(d.Cells), len(g.Cells))
		}
		for j := range d.Cells {
			if err := d.Cells[j].merge(&g.Cells[j]); err != nil {
				return err
			}
		}
	}
	dst.Stats.ChunksTotal += src.Stats.ChunksTotal
	dst.Stats.ChunksSkipped += src.Stats.ChunksSkipped
	dst.Stats.ChunksCached += src.Stats.ChunksCached
	dst.Stats.ChunksScanned += src.Stats.ChunksScanned
	dst.Stats.RowsScanned += src.Stats.RowsScanned
	dst.Stats.RowsCached += src.Stats.RowsCached
	dst.Stats.RowsSkipped += src.Stats.RowsSkipped
	dst.Stats.CellsCovered += src.Stats.CellsCovered
	dst.Stats.CellsScanned += src.Stats.CellsScanned
	dst.Stats.ActiveChunks += src.Stats.ActiveChunks
	dst.Stats.SkippedChunks += src.Stats.SkippedChunks
	dst.Stats.ColdLoads += src.Stats.ColdLoads
	dst.Stats.ColdChunkLoads += src.Stats.ColdChunkLoads
	dst.Stats.ColdDictLoads += src.Stats.ColdDictLoads
	dst.Stats.ColdBytesLoaded += src.Stats.ColdBytesLoaded
	dst.Stats.DiskBytesRead += src.Stats.DiskBytesRead
	dst.Stats.ChecksumVerified += src.Stats.ChecksumVerified
	dst.Stats.ChecksumFailed += src.Stats.ChecksumFailed
	dst.Stats.CacheSkippedChunks += src.Stats.CacheSkippedChunks
	dst.Stats.ReadRuns += src.Stats.ReadRuns
	dst.Stats.CoalescedReads += src.Stats.CoalescedReads
	dst.Stats.BloomSkippedChunks += src.Stats.BloomSkippedChunks
	dst.Stats.KernelChunks += src.Stats.KernelChunks
	dst.Stats.ScalarChunks += src.Stats.ScalarChunks
	dst.Stats.RowsTotal += src.Stats.RowsTotal
	dst.Stats.RowsCovered += src.Stats.RowsCovered
	dst.Stats.ShardsMissing += src.Stats.ShardsMissing
	return nil
}

func (c *PartialCell) merge(o *PartialCell) error {
	c.Count += o.Count
	c.SumI += o.SumI
	c.SumF += o.SumF
	c.SumFParts = append(c.SumFParts, o.SumFParts...)
	c.SumIsInt = c.SumIsInt || o.SumIsInt
	if o.Min.IsValid() && (!c.Min.IsValid() || o.Min.Compare(c.Min) < 0) {
		c.Min = o.Min
	}
	if o.Max.IsValid() && (!c.Max.IsValid() || o.Max.Compare(c.Max) > 0) {
		c.Max = o.Max
	}
	if len(o.Sketch) > 0 {
		if len(c.Sketch) == 0 {
			c.Sketch = append([]byte(nil), o.Sketch...)
			return nil
		}
		a, err := sketch.UnmarshalKMV(c.Sketch)
		if err != nil {
			return fmt.Errorf("exec: merge sketch: %w", err)
		}
		b, err := sketch.UnmarshalKMV(o.Sketch)
		if err != nil {
			return fmt.Errorf("exec: merge sketch: %w", err)
		}
		a.Merge(b)
		c.Sketch = a.Marshal()
	}
	return nil
}

// FinalizePartial turns a fully merged partial into the final result,
// applying AVG division, sketch estimation, ORDER BY and LIMIT — the work
// the root of the tree does (it also "executes any having statements" in
// the paper; HAVING is outside this subset).
func FinalizePartial(stmt *sql.SelectStmt, p *Partial) (*Result, error) {
	res := &Result{Columns: p.Columns, Stats: p.Stats, Coverage: 1}
	if p.Stats.RowsTotal > 0 {
		res.Coverage = float64(p.Stats.RowsCovered) / float64(p.Stats.RowsTotal)
	}
	specs, keyIdx, err := partialItemSpecs(stmt)
	if err != nil {
		return nil, err
	}
	for _, g := range p.Groups {
		row := make([]value.Value, len(stmt.Items))
		ki := 0
		for i := range stmt.Items {
			if specs[i] == nil {
				row[i] = g.Keys[keyIdx[ki]]
				ki++
				continue
			}
			cell := g.Cells[specs[i].cellIdx]
			switch specs[i].fn {
			case aggCount:
				row[i] = value.Int64(cell.Count)
			case aggSum:
				if cell.SumIsInt {
					row[i] = value.Int64(cell.SumI)
				} else {
					row[i] = value.Float64(cell.sumFloat())
				}
			case aggAvg:
				if cell.Count == 0 {
					row[i] = value.Float64(0)
				} else {
					total := cell.sumFloat()
					if cell.SumIsInt {
						total = float64(cell.SumI)
					}
					row[i] = value.Float64(total / float64(cell.Count))
				}
			case aggMin:
				row[i] = cell.Min
			case aggMax:
				row[i] = cell.Max
			case aggCountDistinct:
				if len(cell.Sketch) == 0 {
					row[i] = value.Int64(0)
				} else {
					k, err := sketch.UnmarshalKMV(cell.Sketch)
					if err != nil {
						return nil, err
					}
					row[i] = value.Int64(k.Estimate())
				}
			}
		}
		res.Rows = append(res.Rows, row)
	}
	// "The root executes any having statements" (Section 4).
	if err := applyHaving(stmt, res); err != nil {
		return nil, err
	}
	sortPartialRows(stmt, res)
	return res, nil
}

// partialItemSpec describes how one select item draws from a partial.
type partialItemSpec struct {
	fn      aggFn
	cellIdx int
}

// partialItemSpecs maps select items to (aggregate, cell index) or group
// key position (nil spec).
func partialItemSpecs(stmt *sql.SelectStmt) ([]*partialItemSpec, []int, error) {
	var specs []*partialItemSpec
	var keyIdx []int
	cell := 0
	key := 0
	for _, item := range stmt.Items {
		if !sql.HasAggregate(item.Expr) {
			specs = append(specs, nil)
			keyIdx = append(keyIdx, key)
			key++
			continue
		}
		call, ok := item.Expr.(*sql.Call)
		if !ok {
			return nil, nil, fmt.Errorf("exec: aggregates must be top-level calls, got %s", item.Expr)
		}
		var fn aggFn
		switch strings.ToLower(call.Name) {
		case "count":
			fn = aggCount
			if call.Distinct {
				fn = aggCountDistinct
			}
		case "sum":
			fn = aggSum
		case "min":
			fn = aggMin
		case "max":
			fn = aggMax
		case "avg":
			fn = aggAvg
		default:
			return nil, nil, fmt.Errorf("exec: unknown aggregate %q", call.Name)
		}
		specs = append(specs, &partialItemSpec{fn: fn, cellIdx: cell})
		cell++
	}
	return specs, keyIdx, nil
}

// ApplyOrderLimit applies stmt's ORDER BY and LIMIT to an assembled
// result — the root step of any multi-part row-scan merge. Ingest
// snapshots use it after concatenating per-generation scans (each run
// with the LIMIT stripped), mirroring what FinalizePartial does for
// aggregates.
func ApplyOrderLimit(stmt *sql.SelectStmt, res *Result) { sortPartialRows(stmt, res) }

// sortPartialRows applies ORDER BY and LIMIT at the root.
func sortPartialRows(stmt *sql.SelectStmt, res *Result) {
	if len(stmt.OrderBy) > 0 {
		cols := map[string]int{}
		for i, item := range stmt.Items {
			if item.Alias != "" {
				cols[item.Alias] = i
			}
			cols[item.Expr.String()] = i
		}
		type orderKey struct {
			idx  int
			desc bool
		}
		var keys []orderKey
		for _, o := range stmt.OrderBy {
			if idx, found := cols[o.Expr.String()]; found {
				keys = append(keys, orderKey{idx, o.Desc})
			}
		}
		sort.SliceStable(res.Rows, func(a, b int) bool {
			for _, k := range keys {
				c := res.Rows[a][k.idx].Compare(res.Rows[b][k.idx])
				if c == 0 {
					continue
				}
				if k.desc {
					return c > 0
				}
				return c < 0
			}
			return false
		})
	}
	if stmt.Limit >= 0 && len(res.Rows) > stmt.Limit {
		res.Rows = res.Rows[:stmt.Limit]
	}
}
