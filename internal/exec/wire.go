package exec

// An explicit, versioned binary wire form for Partial. Partials are the
// one payload that crosses process boundaries at every level of the
// serving tree (leaf → mixer → … → coordinator), so their encoding must
// not ride one process's gob assumptions: a mixed-version fleet needs to
// fail loud on an incompatible layout, and intermediate mixers must be
// able to re-ship what they merged without re-encoding surprises.
//
// Layout (all multi-byte integers are uvarint/varint; floats are 8-byte
// little-endian IEEE-754 bits):
//
//	byte    version (PartialWireVersion)
//	uvarint #columns, then each as (uvarint len, bytes)
//	uvarint #stat counters, then each as varint — in the fixed order of
//	        statsCounters; the list is append-only, so a decoder reads
//	        what it knows and skips trailing counters from newer peers
//	uvarint #groups, then per group:
//	  uvarint #keys, then each value as (kind byte, payload)
//	  uvarint #cells, then per cell:
//	    byte    flags (1 SumIsInt, 2 has Min, 4 has Max)
//	    varint  Count, varint SumI, fixed64 SumF
//	    uvarint #SumFParts, then each as fixed64
//	    value   Min (if flagged), value Max (if flagged)
//	    uvarint len(Sketch), bytes

import (
	"encoding/binary"
	"fmt"
	"math"

	"powerdrill/internal/value"
)

// PartialWireVersion is the current encoding version. Bump it when the
// layout changes incompatibly; append new stat counters instead when that
// is the only change.
const PartialWireVersion = 1

const (
	cellFlagSumIsInt = 1 << iota
	cellFlagHasMin
	cellFlagHasMax
)

// EncodePartial serializes p into the versioned wire form.
func EncodePartial(p *Partial) []byte {
	b := make([]byte, 0, 256)
	b = append(b, PartialWireVersion)
	b = binary.AppendUvarint(b, uint64(len(p.Columns)))
	for _, c := range p.Columns {
		b = appendWireString(b, c)
	}
	counters := statsCounters(&p.Stats)
	b = binary.AppendUvarint(b, uint64(len(counters)))
	for _, v := range counters {
		b = binary.AppendVarint(b, v)
	}
	b = binary.AppendUvarint(b, uint64(len(p.Groups)))
	for _, g := range p.Groups {
		b = binary.AppendUvarint(b, uint64(len(g.Keys)))
		for _, k := range g.Keys {
			b = appendWireValue(b, k)
		}
		b = binary.AppendUvarint(b, uint64(len(g.Cells)))
		for i := range g.Cells {
			b = appendWireCell(b, &g.Cells[i])
		}
	}
	return b
}

// DecodePartial parses data produced by EncodePartial (any process, any
// build — the version byte gates compatibility).
func DecodePartial(data []byte) (*Partial, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("exec: decode partial: empty payload")
	}
	if data[0] != PartialWireVersion {
		return nil, fmt.Errorf("exec: decode partial: wire version %d, want %d", data[0], PartialWireVersion)
	}
	r := &wireReader{b: data[1:]}
	p := &Partial{}
	for i, n := 0, r.uvarint(); uint64(i) < n && r.err == nil; i++ {
		p.Columns = append(p.Columns, r.str())
	}
	nStats := r.uvarint()
	counters := make([]int64, nStats)
	for i := range counters {
		counters[i] = r.varint()
	}
	setStatsCounters(&p.Stats, counters)
	nGroups := r.uvarint()
	for gi := uint64(0); gi < nGroups && r.err == nil; gi++ {
		var g PartialGroup
		for i, n := 0, r.uvarint(); uint64(i) < n && r.err == nil; i++ {
			g.Keys = append(g.Keys, r.value())
		}
		for i, n := 0, r.uvarint(); uint64(i) < n && r.err == nil; i++ {
			g.Cells = append(g.Cells, r.cell())
		}
		p.Groups = append(p.Groups, g)
	}
	if r.err == nil && len(r.b) != 0 {
		r.err = fmt.Errorf("exec: decode partial: %d trailing bytes", len(r.b))
	}
	if r.err != nil {
		return nil, r.err
	}
	return p, nil
}

func appendWireString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendWireValue(b []byte, v value.Value) []byte {
	b = append(b, byte(v.Kind()))
	switch v.Kind() {
	case value.KindString:
		b = appendWireString(b, v.Str())
	case value.KindInt64:
		b = binary.AppendVarint(b, v.Int())
	case value.KindFloat64:
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v.Float()))
	}
	return b
}

func appendWireCell(b []byte, c *PartialCell) []byte {
	var flags byte
	if c.SumIsInt {
		flags |= cellFlagSumIsInt
	}
	if c.Min.IsValid() {
		flags |= cellFlagHasMin
	}
	if c.Max.IsValid() {
		flags |= cellFlagHasMax
	}
	b = append(b, flags)
	b = binary.AppendVarint(b, c.Count)
	b = binary.AppendVarint(b, c.SumI)
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(c.SumF))
	b = binary.AppendUvarint(b, uint64(len(c.SumFParts)))
	for _, v := range c.SumFParts {
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
	}
	if c.Min.IsValid() {
		b = appendWireValue(b, c.Min)
	}
	if c.Max.IsValid() {
		b = appendWireValue(b, c.Max)
	}
	b = binary.AppendUvarint(b, uint64(len(c.Sketch)))
	return append(b, c.Sketch...)
}

// wireReader consumes the payload; the first malformed read sticks in err
// and every later read returns zero values.
type wireReader struct {
	b   []byte
	err error
}

func (r *wireReader) fail() {
	if r.err == nil {
		r.err = fmt.Errorf("exec: decode partial: truncated payload")
	}
}

func (r *wireReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b)
	if n <= 0 {
		r.fail()
		return 0
	}
	r.b = r.b[n:]
	return v
}

func (r *wireReader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.b)
	if n <= 0 {
		r.fail()
		return 0
	}
	r.b = r.b[n:]
	return v
}

func (r *wireReader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || n > len(r.b) {
		r.fail()
		return nil
	}
	out := r.b[:n]
	r.b = r.b[n:]
	return out
}

func (r *wireReader) str() string {
	n := r.uvarint()
	return string(r.take(int(n)))
}

func (r *wireReader) float() float64 {
	raw := r.take(8)
	if r.err != nil {
		return 0
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(raw))
}

func (r *wireReader) value() value.Value {
	kind := r.take(1)
	if r.err != nil {
		return value.Value{}
	}
	switch value.Kind(kind[0]) {
	case value.KindString:
		return value.String(r.str())
	case value.KindInt64:
		return value.Int64(r.varint())
	case value.KindFloat64:
		return value.Float64(r.float())
	case value.KindInvalid:
		return value.Value{}
	}
	r.err = fmt.Errorf("exec: decode partial: unknown value kind %d", kind[0])
	return value.Value{}
}

func (r *wireReader) cell() PartialCell {
	flagsRaw := r.take(1)
	if r.err != nil {
		return PartialCell{}
	}
	flags := flagsRaw[0]
	c := PartialCell{SumIsInt: flags&cellFlagSumIsInt != 0}
	c.Count = r.varint()
	c.SumI = r.varint()
	c.SumF = r.float()
	if n := r.uvarint(); n > 0 && r.err == nil {
		if n > uint64(len(r.b)/8) {
			r.fail()
			return PartialCell{}
		}
		c.SumFParts = make([]float64, n)
		for i := range c.SumFParts {
			c.SumFParts[i] = r.float()
		}
	}
	if flags&cellFlagHasMin != 0 {
		c.Min = r.value()
	}
	if flags&cellFlagHasMax != 0 {
		c.Max = r.value()
	}
	if n := r.uvarint(); n > 0 && r.err == nil {
		c.Sketch = append([]byte(nil), r.take(int(n))...)
	}
	return c
}

// statsCounters snapshots every QueryStats counter in wire order. The
// order is append-only: add new counters at the end (and mirror them in
// setStatsCounters) so older decoders skip them and newer decoders
// zero-fill; TestWireStatsCoversEveryField enforces the mirror.
func statsCounters(qs *QueryStats) []int64 {
	return []int64{
		int64(qs.ChunksTotal),
		int64(qs.ChunksSkipped),
		int64(qs.ChunksCached),
		int64(qs.ChunksScanned),
		qs.RowsScanned,
		qs.RowsCached,
		qs.RowsSkipped,
		qs.CellsCovered,
		qs.CellsScanned,
		int64(qs.ActiveChunks),
		int64(qs.SkippedChunks),
		int64(qs.ColdLoads),
		int64(qs.ColdChunkLoads),
		int64(qs.ColdDictLoads),
		qs.ColdBytesLoaded,
		qs.DiskBytesRead,
		int64(qs.ChecksumVerified),
		int64(qs.ChecksumFailed),
		int64(qs.CacheSkippedChunks),
		int64(qs.ReadRuns),
		int64(qs.CoalescedReads),
		int64(qs.BloomSkippedChunks),
		int64(qs.KernelChunks),
		int64(qs.ScalarChunks),
		qs.RowsTotal,
		qs.RowsCovered,
		int64(qs.ShardsMissing),
	}
}

// setStatsCounters is the inverse of statsCounters; counters beyond the
// known list (a newer peer) are ignored, missing ones stay zero.
func setStatsCounters(qs *QueryStats, vals []int64) {
	dst := []func(int64){
		func(v int64) { qs.ChunksTotal = int(v) },
		func(v int64) { qs.ChunksSkipped = int(v) },
		func(v int64) { qs.ChunksCached = int(v) },
		func(v int64) { qs.ChunksScanned = int(v) },
		func(v int64) { qs.RowsScanned = v },
		func(v int64) { qs.RowsCached = v },
		func(v int64) { qs.RowsSkipped = v },
		func(v int64) { qs.CellsCovered = v },
		func(v int64) { qs.CellsScanned = v },
		func(v int64) { qs.ActiveChunks = int(v) },
		func(v int64) { qs.SkippedChunks = int(v) },
		func(v int64) { qs.ColdLoads = int(v) },
		func(v int64) { qs.ColdChunkLoads = int(v) },
		func(v int64) { qs.ColdDictLoads = int(v) },
		func(v int64) { qs.ColdBytesLoaded = v },
		func(v int64) { qs.DiskBytesRead = v },
		func(v int64) { qs.ChecksumVerified = int(v) },
		func(v int64) { qs.ChecksumFailed = int(v) },
		func(v int64) { qs.CacheSkippedChunks = int(v) },
		func(v int64) { qs.ReadRuns = int(v) },
		func(v int64) { qs.CoalescedReads = int(v) },
		func(v int64) { qs.BloomSkippedChunks = int(v) },
		func(v int64) { qs.KernelChunks = int(v) },
		func(v int64) { qs.ScalarChunks = int(v) },
		func(v int64) { qs.RowsTotal = v },
		func(v int64) { qs.RowsCovered = v },
		func(v int64) { qs.ShardsMissing = int(v) },
	}
	for i, v := range vals {
		if i >= len(dst) {
			break
		}
		dst[i](v)
	}
}
