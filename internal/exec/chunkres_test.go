package exec

import (
	"sync"
	"testing"

	"powerdrill/internal/colstore"
	"powerdrill/internal/memmgr"
	"powerdrill/internal/sql"
	"powerdrill/internal/value"
	"powerdrill/internal/workload"
)

// savedReorderedStore persists a store partitioned AND row-reordered on
// country/table_name, so chunks cover contiguous value runs and the
// manifest spans prune exactly. codec "" keeps per-chunk disk reads exact.
func savedReorderedStore(t *testing.T, rows int, codec string) string {
	t.Helper()
	tbl := workload.QueryLogs(workload.LogsSpec{Rows: rows, Seed: 23})
	s, err := colstore.FromTable(tbl, colstore.Options{
		PartitionFields:  []string{"country", "table_name"},
		MaxChunkRows:     500,
		OptimizeElements: true,
		Reorder:          true,
	})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := colstore.Save(s, dir, codec); err != nil {
		t.Fatal(err)
	}
	return dir
}

// chunksContaining counts the chunks of a column that actually contain the
// value — the ground truth k for "a restriction selecting k of n chunks".
func chunksContaining(t *testing.T, s *colstore.Store, column, val string) int {
	t.Helper()
	col, err := s.ColumnErr(column)
	if err != nil {
		t.Fatal(err)
	}
	gid, ok := col.Dict.Lookup(value.String(val))
	if !ok {
		t.Fatalf("value %q not in %q dictionary", val, column)
	}
	k := 0
	for _, ch := range col.Chunks {
		if _, found := ch.ChunkID(gid); found {
			k++
		}
	}
	return k
}

// TestChunkGranularExactColdLoads is the acceptance test of chunk-granular
// residency: a restricted query whose restriction selects k of n chunks
// must cold-load exactly the k active chunks of each column it touches
// (plus one dictionary per column), under a tight budget, with results
// bit-for-bit identical to an unbudgeted fully resident store.
func TestChunkGranularExactColdLoads(t *testing.T) {
	dir := savedReorderedStore(t, 6000, "")
	eagerStore, _, err := colstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	footprint := residentFootprint(t, eagerStore)
	k := chunksContaining(t, eagerStore, "country", "de")
	n := eagerStore.NumChunks()
	if k == 0 || k == n {
		t.Fatalf("degenerate test data: %d of %d chunks contain de", k, n)
	}

	mgr := memmgr.New(footprint/4, "2q") // tight: ~25% of the store
	lazyStore, _, err := colstore.OpenLazy(dir, mgr)
	if err != nil {
		t.Fatal(err)
	}
	if !lazyStore.ChunkGranular() {
		t.Fatal("freshly saved store is not chunk-granular")
	}
	eager := New(eagerStore, Options{Parallelism: 2})
	lazy := New(lazyStore, Options{Parallelism: 2})

	// One restriction column, one group column: the query touches exactly
	// two columns, so the k active chunks cost 2k chunk loads + 2 dicts.
	q := `SELECT table_name, COUNT(*) AS c FROM data WHERE country = "de" GROUP BY table_name ORDER BY c DESC, table_name ASC;`
	want, err := eager.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	got, err := lazy.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, q, want, got)

	st := got.Stats
	if st.ActiveChunks != k {
		t.Fatalf("residency marked %d chunks active, %d contain de", st.ActiveChunks, k)
	}
	if st.SkippedChunks != n-k {
		t.Fatalf("residency skipped %d chunks, want %d", st.SkippedChunks, n-k)
	}
	if st.ColdChunkLoads != 2*k {
		t.Fatalf("cold chunk loads = %d, want exactly 2k = %d (k=%d of %d chunks)",
			st.ColdChunkLoads, 2*k, k, n)
	}
	if st.ColdDictLoads != 2 {
		t.Fatalf("cold dict loads = %d, want 2 (country + table_name)", st.ColdDictLoads)
	}
	if st.ColdLoads != 2 {
		t.Fatalf("cold columns = %d, want 2", st.ColdLoads)
	}

	// Warm repeat: nothing else may load.
	warm, err := lazy.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, q, want, warm)
	if warm.Stats.ColdChunkLoads != 0 || warm.Stats.ColdDictLoads != 0 || warm.Stats.ColdLoads != 0 {
		t.Fatalf("warm repeat cold-loaded: %+v", warm.Stats)
	}

	// The manager held exactly the active working set: 2 dicts + 2k chunks.
	ms := mgr.Stats()
	if ms.ColdLoads != int64(2*k+2) {
		t.Fatalf("manager cold loads = %d, want %d", ms.ColdLoads, 2*k+2)
	}
	if ms.ResidentItems != 2*k+2 {
		t.Fatalf("resident items = %d, want %d", ms.ResidentItems, 2*k+2)
	}
}

// TestChunkGranularEvictReloadDeterministic drives the full workload zoo
// through a chunk-granular store under a budget small enough to force
// chunk evictions mid-workload, twice, and checks every answer bit-for-bit
// against the fully resident engine.
func TestChunkGranularEvictReloadDeterministic(t *testing.T) {
	for _, codec := range []string{"", "zippy"} {
		name := codec
		if name == "" {
			name = "raw"
		}
		t.Run(name, func(t *testing.T) {
			dir := savedReorderedStore(t, 4000, codec)
			eagerStore, _, err := colstore.Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			budget := residentFootprint(t, eagerStore) / 5
			mgr := memmgr.New(budget, "2q")
			lazyStore, _, err := colstore.OpenLazy(dir, mgr)
			if err != nil {
				t.Fatal(err)
			}
			eager := New(eagerStore, Options{Parallelism: 2})
			lazy := New(lazyStore, Options{Parallelism: 2})
			for pass := 0; pass < 2; pass++ {
				for _, q := range coldStartQueries {
					want, err := eager.Query(q)
					if err != nil {
						t.Fatalf("eager %s: %v", q, err)
					}
					got, err := lazy.Query(q)
					if err != nil {
						t.Fatalf("lazy %s: %v", q, err)
					}
					assertSameResult(t, q, want, got)
					st := mgr.Stats()
					if over := st.ResidentBytes - st.PinnedBytes; over > budget {
						t.Fatalf("evictable resident %d exceeds budget %d", over, budget)
					}
				}
			}
			if st := mgr.Stats(); st.Evictions == 0 {
				t.Fatalf("no chunk evictions under a 20%% budget: %+v", st)
			}
			if st := lazy.Stats(); st.ColdChunkLoads == 0 || st.SkippedChunks == 0 {
				t.Fatalf("chunk counters did not engage: %+v", st)
			}
		})
	}
}

// TestChunkGranularConcurrentRestricted hammers a tightly budgeted
// chunk-granular store with concurrent restricted queries over different
// chunk subsets (forcing per-chunk eviction/reload races) and checks every
// answer against the resident engine. Run with -race.
func TestChunkGranularConcurrentRestricted(t *testing.T) {
	dir := savedReorderedStore(t, 4000, "")
	eagerStore, _, err := colstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	budget := residentFootprint(t, eagerStore) / 5
	mgr := memmgr.New(budget, "arc")
	lazyStore, _, err := colstore.OpenLazy(dir, mgr)
	if err != nil {
		t.Fatal(err)
	}
	eager := New(eagerStore, Options{Parallelism: 2})
	lazy := New(lazyStore, Options{Parallelism: 2})

	queries := []string{
		`SELECT table_name, COUNT(*) AS c FROM data WHERE country = "de" GROUP BY table_name ORDER BY c DESC, table_name ASC;`,
		`SELECT table_name, COUNT(*) AS c FROM data WHERE country = "us" GROUP BY table_name ORDER BY c DESC, table_name ASC;`,
		`SELECT user, SUM(latency) AS s FROM data WHERE country IN ("ch", "jp") GROUP BY user ORDER BY s DESC, user ASC LIMIT 10;`,
		`SELECT country, AVG(latency) AS a FROM data WHERE latency > 500 GROUP BY country ORDER BY a DESC, country ASC;`,
		`SELECT country, COUNT(*) AS c FROM data GROUP BY country ORDER BY c DESC, country ASC;`,
	}
	want := make(map[string]*Result, len(queries))
	for _, q := range queries {
		r, err := eager.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		want[q] = r
	}

	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 4*len(queries); i++ {
				q := queries[(w+i)%len(queries)]
				got, err := lazy.Query(q)
				if err != nil {
					t.Errorf("worker %d: %s: %v", w, q, err)
					return
				}
				assertSameResult(t, q, want[q], got)
			}
		}(w)
	}
	wg.Wait()
	if st := mgr.Stats(); st.PinnedBytes != 0 {
		t.Fatalf("pinned bytes %d after all queries finished", st.PinnedBytes)
	}
}

// TestResidencySoundness checks the safety property of the span-based
// analysis against the precise chunk-dictionary classification: any chunk
// the analysis prunes must also be pruned by classify — over the operator
// zoo of restrict_test on a fully resident store.
func TestResidencySoundness(t *testing.T) {
	tbl := logs(3000)
	e := buildEngine(t, tbl, chunkedOpts(), Options{})
	preds := []string{
		`country IN ("de")`,
		`country IN ("de", "fr", "zz")`,
		`country NOT IN ("us")`,
		`country = "ch"`,
		`country != "ch"`,
		`NOT country = "ch"`,
		`latency > 500`,
		`latency <= 100`,
		`latency < -5`,
		`latency > 100 AND latency < 2000`,
		`country IN ("de") AND latency > 500`,
		`country IN ("de") OR country IN ("fr")`,
		`NOT (country IN ("de") OR latency > 100)`,
		`country = "de" AND NOT latency <= 50 OR user IN ("user0001")`,
		`latency = 105`,
		`latency > 100.5`,
		`country IN ("zz")`,
		`latency = latency`, // row predicate: analysis must not prune
	}
	for _, pred := range preds {
		stmt, err := sql.Parse(`SELECT country, COUNT(*) FROM data WHERE ` + pred + ` GROUP BY country;`)
		if err != nil {
			t.Fatalf("parse %q: %v", pred, err)
		}
		ps := e.store.NewPinSet()
		rsd := e.analyzeResidency(stmt, ps)
		r, err := e.compileRestriction(stmt.Where, ps, nil)
		if err != nil {
			t.Fatalf("compile %q: %v", pred, err)
		}
		active := rsd.activeSet()
		count := 0
		for ci := 0; ci < e.store.NumChunks(); ci++ {
			residencyActive := active == nil || active[ci]
			if residencyActive {
				count++
			}
			if !residencyActive && r.classify(e, ci) != activeNone {
				t.Fatalf("%q chunk %d: pruned by residency but classify says %v",
					pred, ci, r.classify(e, ci))
			}
		}
		if count != rsd.count {
			t.Fatalf("%q: residency count %d, active flags sum %d", pred, rsd.count, count)
		}
		ps.Release()
	}
}
