package exec

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"powerdrill/internal/colstore"
	"powerdrill/internal/table"
)

// FuzzScanKernelsVsScalar is the differential fuzzer that backs the
// bit-for-bit identity claim in kernels.go: it generates a random table
// (mixed column types, duplicate and empty strings, uneven chunk sizes down
// to single rows) and a random query (restrictions over =, !=, <, <=, >,
// >=, IN, NOT, AND, OR; GROUP BY over any column or none; 1–3 aggregates
// from COUNT/SUM/AVG/MIN/MAX/COUNT(DISTINCT)), then runs it through the
// vectorized kernels and the scalar reference path and requires exactly
// equal results — including float bit patterns — or exactly equal errors.
func FuzzScanKernelsVsScalar(f *testing.F) {
	f.Add(int64(1), uint16(100), uint16(0))
	f.Add(int64(2012), uint16(1000), uint16(7))
	f.Add(int64(-7), uint16(1), uint16(3))
	f.Add(int64(42), uint16(4095), uint16(65535))
	f.Add(int64(99), uint16(64), uint16(129))
	f.Fuzz(func(t *testing.T, seed int64, rows uint16, shape uint16) {
		diffKernelsVsScalar(t, seed, int(rows)%4096, shape)
	})
}

// diffKernelsVsScalar is one differential trial; the chunk-boundary table
// tests reuse it with pinned inputs.
func diffKernelsVsScalar(t *testing.T, seed int64, rows int, shape uint16) {
	t.Helper()
	if rows == 0 {
		rows = 1
	}
	rng := rand.New(rand.NewSource(seed))

	// Table: string s (small domain, includes the empty string), int64 n,
	// float64 fv, and a monotone partition column p that splits the store
	// into uneven chunks (MaxChunkRows below can force 1-row chunks).
	strCard := 1 + rng.Intn(1+rng.Intn(32))
	intCard := 1 + rng.Intn(1+rng.Intn(64))
	pEvery := 1 + rng.Intn(rows)
	s := make([]string, rows)
	n := make([]int64, rows)
	fv := make([]float64, rows)
	p := make([]string, rows)
	for i := 0; i < rows; i++ {
		if v := rng.Intn(strCard); v == 0 {
			s[i] = "" // empty string is a legal dictionary value
		} else {
			s[i] = fmt.Sprintf("v%02d", v)
		}
		n[i] = int64(rng.Intn(intCard))
		fv[i] = float64(rng.Intn(400)) / 4
		p[i] = fmt.Sprintf("p%03d", i/pEvery)
	}
	tbl := table.New("data").
		AddStringColumn("s", s).
		AddInt64Column("n", n).
		AddFloat64Column("fv", fv).
		AddStringColumn("p", p)
	store, err := colstore.FromTable(tbl, colstore.Options{
		PartitionFields:  []string{"p"},
		MaxChunkRows:     1 + rng.Intn(300),
		OptimizeElements: shape&1 == 0,
	})
	if err != nil {
		t.Fatalf("FromTable: %v", err)
	}

	q := randomKernelQuery(rng, strCard, intCard)
	opts := Options{
		Parallelism:   1 + rng.Intn(4),
		ExactDistinct: shape&2 != 0,
	}
	scalarOpts := opts
	scalarOpts.DisableKernels = true
	kres, kerr := New(store, opts).Query(q)
	sres, serr := New(store, scalarOpts).Query(q)

	switch {
	case (kerr == nil) != (serr == nil):
		t.Fatalf("error divergence for %q:\n  kernel: %v\n  scalar: %v", q, kerr, serr)
	case kerr != nil:
		if kerr.Error() != serr.Error() {
			t.Fatalf("error text divergence for %q:\n  kernel: %v\n  scalar: %v", q, kerr, serr)
		}
		return
	}
	if !reflect.DeepEqual(kres.Columns, sres.Columns) {
		t.Fatalf("column divergence for %q:\n  kernel: %v\n  scalar: %v", q, kres.Columns, sres.Columns)
	}
	if !reflect.DeepEqual(kres.Rows, sres.Rows) {
		t.Fatalf("row divergence for %q:\n  kernel: %#v\n  scalar: %#v", q, kres.Rows, sres.Rows)
	}
}

// randomKernelQuery assembles a query from the restriction and aggregate
// grammar both scan paths support.
func randomKernelQuery(rng *rand.Rand, strCard, intCard int) string {
	strLit := func() string {
		// Mix of present values, the empty string, and guaranteed misses.
		switch rng.Intn(4) {
		case 0:
			return `""`
		case 1:
			return `"missing"`
		default:
			return fmt.Sprintf(`"v%02d"`, rng.Intn(strCard+2))
		}
	}
	intLit := func() string { return fmt.Sprintf("%d", rng.Intn(intCard+2)) }
	preds := []func() string{
		func() string { return fmt.Sprintf("s = %s", strLit()) },
		func() string { return fmt.Sprintf("s != %s", strLit()) },
		func() string { return fmt.Sprintf("n = %s", intLit()) },
		func() string { return fmt.Sprintf("n < %s", intLit()) },
		func() string { return fmt.Sprintf("n >= %s", intLit()) },
		func() string { return fmt.Sprintf("n > %d.5", rng.Intn(intCard+1)) }, // fractional bound on int column
		func() string { return fmt.Sprintf("fv <= %.2f", float64(rng.Intn(400))/4) },
		func() string { return fmt.Sprintf("s IN (%s, %s, %s)", strLit(), strLit(), strLit()) },
		func() string { return fmt.Sprintf("n NOT IN (%s, %s)", intLit(), intLit()) },
		func() string { return fmt.Sprintf("NOT s = %s", strLit()) },
	}
	var where string
	switch rng.Intn(5) {
	case 0: // unrestricted
	case 1, 2:
		where = " WHERE " + preds[rng.Intn(len(preds))]()
	case 3:
		where = fmt.Sprintf(" WHERE %s AND %s", preds[rng.Intn(len(preds))](), preds[rng.Intn(len(preds))]())
	default:
		where = fmt.Sprintf(" WHERE %s OR %s", preds[rng.Intn(len(preds))](), preds[rng.Intn(len(preds))]())
	}

	aggs := []string{"COUNT(*)", "SUM(n)", "SUM(fv)", "AVG(fv)", "AVG(n)", "MIN(s)", "MAX(n)", "COUNT(DISTINCT s)", "COUNT(DISTINCT n)"}
	rng.Shuffle(len(aggs), func(i, j int) { aggs[i], aggs[j] = aggs[j], aggs[i] })
	na := 1 + rng.Intn(3)

	sel := ""
	group := ""
	switch rng.Intn(4) {
	case 0: // global aggregate, no GROUP BY
	case 1:
		sel, group = "s, ", " GROUP BY s"
	case 2:
		sel, group = "p, ", " GROUP BY p"
	default:
		sel, group = "n, ", " GROUP BY n"
	}
	for i := 0; i < na; i++ {
		sel += fmt.Sprintf("%s AS a%d, ", aggs[i], i)
	}
	sel = sel[:len(sel)-2]

	order := ""
	if rng.Intn(3) == 0 {
		order = fmt.Sprintf(" ORDER BY a0 DESC LIMIT %d", 1+rng.Intn(20))
	}
	return fmt.Sprintf("SELECT %s FROM data%s%s%s;", sel, where, group, order)
}
