package exec

// Vectorized aggregation kernels — the batch-at-a-time rewrite of the
// Section 2.4 inner loops. Where the scalar reference path (agg.go)
// dispatches a closure per row that switches over every aggregate, the
// kernels run one type-specialized pass per aggregate over the chunk's
// materialized element arrays, driven either by the full row range or by
// the surviving-row bitmap's words (64 rows per branch-free word probe).
//
// Bit-for-bit identity with the scalar path is a hard requirement (the
// differential fuzzer enforces it): every kernel visits rows in ascending
// order, so float SUM/AVG accumulate in exactly the scalar order, KMV
// sketches ingest hashes in the same sequence, and the compaction step
// reproduces the scalar occupancy rules exactly.

import (
	"math/bits"

	"powerdrill/internal/enc"
	"powerdrill/internal/sketch"
	"powerdrill/internal/value"
)

// aggregateChunkVec computes a chunk's partial aggregates with the
// vectorized kernels. mask == nil means the chunk is fully active.
func (e *Engine) aggregateChunkVec(p *plan, ci int, mask *enc.Bitmap) (*partial, error) {
	if mask != nil {
		// Sparse masks skip the dense per-chunk tables entirely: building
		// them costs O(rows) per chunk (materialized element arrays plus
		// per-distinct-value lookup tables), which dominates when only a
		// few rows survive the restriction. The gather path is O(selected).
		if n := mask.Count(); n*8 <= e.store.ChunkRows(ci) {
			return e.aggregateChunkVecSparse(p, ci, mask, n)
		}
	}
	c := e.newChunkAggCtx(p, ci)

	// Row counts per group drive every kernel: they are each cell's .count
	// (all aggregate kinds count selected rows identically) and the
	// occupancy test of the compaction step.
	counts := make([]int64, c.card)
	switch {
	case c.gseq == nil: // global aggregate: one implicit group
		if mask == nil {
			counts[0] = int64(c.rows)
		} else {
			counts[0] = int64(mask.Count())
		}
	case mask == nil:
		c.gseq.CountInto(counts)
	default:
		c.gseq.CountIntoMasked(counts, mask)
	}

	accs := make([]accCell, c.card*c.na)
	for j, spec := range p.aggs {
		switch spec.fn {
		case aggCount:
			kernelFill(accs, j, c.na, counts)
		case aggSum, aggAvg:
			if c.argIsInt[j] {
				kernelSumInt(accs, j, c, counts, mask)
			} else {
				kernelSumFloat(accs, j, c, counts, mask)
			}
		case aggMin, aggMax:
			kernelMinMax(accs, j, c, counts, mask)
		case aggCountDistinct:
			kernelDistinct(e, accs, j, c, counts, mask)
		}
	}

	// Compact: keep only groups that actually received rows. counts[g] > 0
	// is exactly the scalar path's occupancy verdict (every aggregate kind
	// counts every selected row); the one asymmetry is the scalar rule that
	// a pure GROUP BY over a full chunk emits every dictionary entry.
	part := &partial{}
	for g := 0; g < c.card; g++ {
		contributed := counts[g] > 0
		if c.na == 0 && mask == nil {
			contributed = true
		}
		if contributed {
			part.gids = append(part.gids, c.groupGIDs[g])
			part.accs = append(part.accs, accs[g*c.na:(g+1)*c.na]...)
		}
	}
	return part, nil
}

// aggregateChunkVecSparse is the low-selectivity kernel: it gathers the
// surviving row indices once from the bitmap words, then reads the group
// and argument sequences point-wise for just those rows — no materialized
// element arrays, no per-distinct-value tables. Values and hashes come from
// the same dictionary calls the dense tables are built from, and rows are
// visited in ascending order, so the partial is bit-identical to the dense
// kernels' and the scalar path's.
func (e *Engine) aggregateChunkVecSparse(p *plan, ci int, mask *enc.Bitmap, nsel int) (*partial, error) {
	na := len(p.aggs)
	sel := make([]int32, 0, nsel)
	for wi, w := range mask.Words() {
		base := wi * 64
		for w != 0 {
			sel = append(sel, int32(base+bits.TrailingZeros64(w)))
			w &= w - 1
		}
	}

	card := 1
	groupGIDs := []uint32{0}
	var gseq enc.Sequence
	if gcol := p.groupColumn(); gcol != "" {
		gch := p.col(e, gcol).Chunks[ci]
		card = gch.Cardinality()
		groupGIDs = gch.GlobalIDs
		gseq = gch.Elems
	}
	counts := make([]int64, card)
	var gof []uint32 // group chunk-id per selected row
	if gseq == nil {
		counts[0] = int64(len(sel))
	} else {
		gof = make([]uint32, len(sel))
		for i, r := range sel {
			g := gseq.At(int(r))
			gof[i] = g
			counts[g]++
		}
	}
	group := func(i int) int {
		if gof == nil {
			return 0
		}
		return int(gof[i])
	}

	accs := make([]accCell, card*na)
	for j, spec := range p.aggs {
		if spec.argCol == "" {
			continue // COUNT(*): counts are written below
		}
		acol := p.col(e, spec.argCol)
		ach := acol.Chunks[ci]
		agids, aseq := ach.GlobalIDs, ach.Elems
		switch spec.fn {
		case aggSum, aggAvg:
			if acol.Kind == value.KindInt64 {
				for i, r := range sel {
					accs[group(i)*na+j].sumI += acol.Dict.Value(agids[aseq.At(int(r))]).Int()
				}
			} else {
				for i, r := range sel {
					accs[group(i)*na+j].sumF += acol.Dict.Value(agids[aseq.At(int(r))]).AsFloat()
				}
			}
		case aggMin, aggMax:
			for i, r := range sel {
				gid := agids[aseq.At(int(r))]
				cell := &accs[group(i)*na+j]
				if !cell.hasMM {
					cell.minID, cell.maxID, cell.hasMM = gid, gid, true
					continue
				}
				if gid < cell.minID {
					cell.minID = gid
				}
				if gid > cell.maxID {
					cell.maxID = gid
				}
			}
		case aggCountDistinct:
			if e.opts.ExactDistinct {
				for i, r := range sel {
					cell := &accs[group(i)*na+j]
					if cell.exact == nil {
						cell.exact = make(map[uint32]struct{}, 16)
					}
					cell.exact[agids[aseq.At(int(r))]] = struct{}{}
				}
			} else {
				for i, r := range sel {
					cell := &accs[group(i)*na+j]
					if cell.sketch == nil {
						cell.sketch = sketch.NewKMV(e.opts.SketchM)
					}
					cell.sketch.AddHash(acol.Dict.Hash(agids[aseq.At(int(r))]))
				}
			}
		}
	}

	// Compact: mask != nil here, so occupancy is exactly counts[g] > 0 on
	// every path (including the pure-GROUP-BY na == 0 case).
	part := &partial{}
	for g := 0; g < card; g++ {
		if counts[g] == 0 {
			continue
		}
		base := g * na
		for j := 0; j < na; j++ {
			accs[base+j].count = counts[g]
		}
		part.gids = append(part.gids, groupGIDs[g])
		part.accs = append(part.accs, accs[base:base+na]...)
	}
	return part, nil
}

// kernelFill writes the per-group row counts into aggregate column j —
// the complete COUNT(*) kernel, and the .count side of every other kernel.
func kernelFill(accs []accCell, j, na int, counts []int64) {
	for g, n := range counts {
		accs[g*na+j].count = n
	}
}

// kernelSumInt accumulates SUM/AVG over an int64 column: dense per-group
// sums indexed by group chunk-id, values looked up per distinct argument
// chunk-id.
func kernelSumInt(accs []accCell, j int, c *chunkAggCtx, counts []int64, mask *enc.Bitmap) {
	vals, ae, ge := c.argValsI[j], c.argElems[j], c.gelems
	sums := make([]int64, c.card)
	switch {
	case ge == nil && mask == nil:
		var s int64
		for _, a := range ae {
			s += vals[a]
		}
		sums[0] = s
	case ge == nil:
		var s int64
		for wi, w := range mask.Words() {
			base := wi * 64
			for w != 0 {
				r := base + bits.TrailingZeros64(w)
				w &= w - 1
				s += vals[ae[r]]
			}
		}
		sums[0] = s
	case mask == nil:
		for r, a := range ae {
			sums[ge[r]] += vals[a]
		}
	default:
		for wi, w := range mask.Words() {
			base := wi * 64
			for w != 0 {
				r := base + bits.TrailingZeros64(w)
				w &= w - 1
				sums[ge[r]] += vals[ae[r]]
			}
		}
	}
	for g, s := range sums {
		cell := &accs[g*c.na+j]
		cell.count = counts[g]
		cell.sumI = s
	}
}

// kernelSumFloat is kernelSumInt for float64 columns. Ascending row order
// keeps the float accumulation bit-identical to the scalar path.
func kernelSumFloat(accs []accCell, j int, c *chunkAggCtx, counts []int64, mask *enc.Bitmap) {
	vals, ae, ge := c.argValsF[j], c.argElems[j], c.gelems
	sums := make([]float64, c.card)
	switch {
	case ge == nil && mask == nil:
		var s float64
		for _, a := range ae {
			s += vals[a]
		}
		sums[0] = s
	case ge == nil:
		var s float64
		for wi, w := range mask.Words() {
			base := wi * 64
			for w != 0 {
				r := base + bits.TrailingZeros64(w)
				w &= w - 1
				s += vals[ae[r]]
			}
		}
		sums[0] = s
	case mask == nil:
		for r, a := range ae {
			sums[ge[r]] += vals[a]
		}
	default:
		for wi, w := range mask.Words() {
			base := wi * 64
			for w != 0 {
				r := base + bits.TrailingZeros64(w)
				w &= w - 1
				sums[ge[r]] += vals[ae[r]]
			}
		}
	}
	for g, s := range sums {
		cell := &accs[g*c.na+j]
		cell.count = counts[g]
		cell.sumF = s
	}
}

// kernelMinMax tracks per-group global-id extremes. One kernel serves both
// MIN and MAX: the cell carries both ids and finalize picks the right one.
func kernelMinMax(accs []accCell, j int, c *chunkAggCtx, counts []int64, mask *enc.Bitmap) {
	gids, ae, ge := c.argGIDs[j], c.argElems[j], c.gelems
	minIDs := make([]uint32, c.card)
	maxIDs := make([]uint32, c.card)
	seen := make([]bool, c.card)
	visit := func(g int, gid uint32) {
		if !seen[g] {
			minIDs[g], maxIDs[g], seen[g] = gid, gid, true
			return
		}
		if gid < minIDs[g] {
			minIDs[g] = gid
		}
		if gid > maxIDs[g] {
			maxIDs[g] = gid
		}
	}
	switch {
	case mask == nil && ge == nil:
		for _, a := range ae {
			visit(0, gids[a])
		}
	case mask == nil:
		for r, a := range ae {
			visit(int(ge[r]), gids[a])
		}
	case ge == nil:
		for wi, w := range mask.Words() {
			base := wi * 64
			for w != 0 {
				r := base + bits.TrailingZeros64(w)
				w &= w - 1
				visit(0, gids[ae[r]])
			}
		}
	default:
		for wi, w := range mask.Words() {
			base := wi * 64
			for w != 0 {
				r := base + bits.TrailingZeros64(w)
				w &= w - 1
				visit(int(ge[r]), gids[ae[r]])
			}
		}
	}
	for g := 0; g < c.card; g++ {
		cell := &accs[g*c.na+j]
		cell.count = counts[g]
		if seen[g] {
			cell.minID, cell.maxID, cell.hasMM = minIDs[g], maxIDs[g], true
		}
	}
}

// kernelDistinct feeds COUNT(DISTINCT x) accumulators: per-group KMV
// sketches (hash per distinct argument id, precomputed) or exact id sets.
// Sketches and sets allocate lazily on first row, like the scalar path.
func kernelDistinct(e *Engine, accs []accCell, j int, c *chunkAggCtx, counts []int64, mask *enc.Bitmap) {
	ae, ge := c.argElems[j], c.gelems
	group := func(r int) int {
		if ge == nil {
			return 0
		}
		return int(ge[r])
	}
	var visit func(r int)
	if e.opts.ExactDistinct {
		gids := c.argGIDs[j]
		visit = func(r int) {
			cell := &accs[group(r)*c.na+j]
			if cell.exact == nil {
				cell.exact = make(map[uint32]struct{}, 16)
			}
			cell.exact[gids[ae[r]]] = struct{}{}
		}
	} else {
		hs := c.argHash[j]
		visit = func(r int) {
			cell := &accs[group(r)*c.na+j]
			if cell.sketch == nil {
				cell.sketch = sketch.NewKMV(e.opts.SketchM)
			}
			cell.sketch.AddHash(hs[ae[r]])
		}
	}
	if mask == nil {
		for r := 0; r < c.rows; r++ {
			visit(r)
		}
	} else {
		for wi, w := range mask.Words() {
			base := wi * 64
			for w != 0 {
				r := base + bits.TrailingZeros64(w)
				w &= w - 1
				visit(r)
			}
		}
	}
	for g := 0; g < c.card; g++ {
		accs[g*c.na+j].count = counts[g]
	}
}
