package exec

import (
	"runtime"
	"sync"
)

// Gate is the cross-query admission controller: a weighted semaphore over
// scan workers. Each query asks for as many workers as its chunk fan-out
// wants; under contention it is granted fewer (at least one), so N
// concurrent queries share the machine smoothly instead of spawning
// N × GOMAXPROCS goroutines and thrashing the scheduler. One Gate may be
// shared across engines — a cluster leaf process gives all its shard
// engines the same gate, making the budget truly engine-level.
//
// Granting is work-conserving and partial: an arriving query takes
// min(want, free) tokens as soon as at least one is free, rather than
// waiting for its full request. Worker counts never affect results (chunk
// partials merge in chunk order regardless of who computed them), so
// admission shrinks only parallelism, never changes answers.
type Gate struct {
	mu       sync.Mutex
	notFull  *sync.Cond
	capacity int
	free     int
}

// NewGate creates a gate admitting at most capacity concurrent workers.
// capacity <= 0 uses runtime.GOMAXPROCS(0).
func NewGate(capacity int) *Gate {
	if capacity <= 0 {
		capacity = runtime.GOMAXPROCS(0)
	}
	g := &Gate{capacity: capacity, free: capacity}
	g.notFull = sync.NewCond(&g.mu)
	return g
}

// Capacity returns the total worker budget.
func (g *Gate) Capacity() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.capacity
}

// InUse returns the number of currently granted workers.
func (g *Gate) InUse() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.capacity - g.free
}

// AcquireUpTo blocks until at least one worker token is free, then takes
// min(want, free) tokens and returns how many it took. want < 1 is treated
// as 1.
func (g *Gate) AcquireUpTo(want int) int {
	if want < 1 {
		want = 1
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	for g.free == 0 {
		g.notFull.Wait()
	}
	n := want
	if n > g.free {
		n = g.free
	}
	g.free -= n
	return n
}

// Release returns n tokens taken by AcquireUpTo.
func (g *Gate) Release(n int) {
	if n <= 0 {
		return
	}
	g.mu.Lock()
	g.free += n
	if g.free > g.capacity {
		g.free = g.capacity
	}
	g.mu.Unlock()
	g.notFull.Broadcast()
}
