package exec

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"powerdrill/internal/value"
)

func samplePartial() *Partial {
	return &Partial{
		Columns: []string{"country", "sum(f)", "cnt"},
		Stats: QueryStats{
			ChunksTotal: 7, ChunksScanned: 3, RowsScanned: 1000,
			RowsTotal: 5000, RowsCovered: 5000, ShardsMissing: 1,
		},
		Groups: []PartialGroup{
			{
				Keys: []value.Value{value.String("ch"), value.Int64(3)},
				Cells: []PartialCell{
					{Count: 12, SumI: 40, SumIsInt: true, Min: value.Int64(-3), Max: value.Int64(9)},
					{Count: 12, SumF: 1.5, SumFParts: []float64{0.25, 1.25}, Sketch: []byte{1, 2, 3}},
				},
			},
			{
				Keys: []value.Value{value.Float64(math.Inf(-1)), value.Value{}},
				Cells: []PartialCell{
					{Count: 1, SumF: math.Copysign(0, -1), SumFParts: []float64{math.Copysign(0, -1)}},
					{Min: value.String("a"), Max: value.String("z")},
				},
			},
		},
	}
}

func TestWireRoundTrip(t *testing.T) {
	p := samplePartial()
	got, err := DecodePartial(EncodePartial(p))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(p, got) {
		t.Fatalf("round trip mismatch:\n in  %+v\n out %+v", p, got)
	}
}

// TestWireStatsCoversEveryField fills every QueryStats field with a
// distinct value via reflection and asserts the codec carries all of
// them — a new counter added to QueryStats but not to
// statsCounters/setStatsCounters fails here.
func TestWireStatsCoversEveryField(t *testing.T) {
	var qs QueryStats
	v := reflect.ValueOf(&qs).Elem()
	for i := 0; i < v.NumField(); i++ {
		v.Field(i).SetInt(int64(100 + i))
	}
	p := &Partial{Stats: qs}
	got, err := DecodePartial(EncodePartial(p))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.Stats != qs {
		t.Fatalf("stats dropped in transit:\n in  %+v\n out %+v", qs, got.Stats)
	}
	if n := len(statsCounters(&qs)); n != v.NumField() {
		t.Fatalf("statsCounters lists %d counters, QueryStats has %d fields", n, v.NumField())
	}
}

func TestWireVersionGate(t *testing.T) {
	enc := EncodePartial(samplePartial())
	enc[0] = PartialWireVersion + 1
	if _, err := DecodePartial(enc); err == nil {
		t.Fatal("decoding a future version succeeded; want loud failure")
	}
	if _, err := DecodePartial(nil); err == nil {
		t.Fatal("decoding empty payload succeeded")
	}
}

// TestWireTruncationSafe decodes every strict prefix of a valid encoding:
// all must fail with an error, none may panic or succeed.
func TestWireTruncationSafe(t *testing.T) {
	enc := EncodePartial(samplePartial())
	for n := 1; n < len(enc); n++ {
		if _, err := DecodePartial(enc[:n]); err == nil {
			t.Fatalf("decoding %d/%d byte prefix succeeded", n, len(enc))
		}
	}
}

// TestSumFloatTopologyInvariant checks the canonical fold: however the
// per-leaf parts are grouped into intermediate merges, the root's float
// total is bit-for-bit identical.
func TestSumFloatTopologyInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(14)
		parts := make([]float64, n)
		for i := range parts {
			// Wide magnitude spread makes float addition visibly
			// non-associative, which is the point of the canonical fold.
			parts[i] = math.Ldexp(rng.Float64()*2-1, rng.Intn(80)-40)
		}
		flat := PartialCell{SumFParts: append([]float64(nil), parts...)}
		want := math.Float64bits(flat.sumFloat())

		// A random two-level tree over the same parts.
		tree := PartialCell{}
		for i := 0; i < n; {
			w := 1 + rng.Intn(4)
			if i+w > n {
				w = n - i
			}
			inner := PartialCell{SumFParts: append([]float64(nil), parts[i:i+w]...)}
			if err := tree.merge(&inner); err != nil {
				t.Fatal(err)
			}
			i += w
		}
		if got := math.Float64bits(tree.sumFloat()); got != want {
			t.Fatalf("trial %d: tree fold %x != flat fold %x", trial, got, want)
		}
	}
}
