package exec

import (
	"sync"
	"testing"

	"powerdrill/internal/colstore"
	"powerdrill/internal/compress"
	"powerdrill/internal/memmgr"
	"powerdrill/internal/value"
)

// activeChunkIndices returns the chunk indices of the column that contain
// the value — the ground-truth active set of `column = val`.
func activeChunkIndices(t *testing.T, s *colstore.Store, column, val string) []int {
	t.Helper()
	col, err := s.ColumnErr(column)
	if err != nil {
		t.Fatal(err)
	}
	gid, ok := col.Dict.Lookup(value.String(val))
	if !ok {
		t.Fatalf("value %q not in %q dictionary", val, column)
	}
	var idx []int
	for ci, ch := range col.Chunks {
		if _, found := ch.ChunkID(gid); found {
			idx = append(idx, ci)
		}
	}
	return idx
}

// TestChunkCompressedExactColdReads is the acceptance test of per-chunk
// compression: on a codec-compressed store, a restriction selecting k of n
// chunks must cold-read EXACTLY the k active chunks' compressed byte
// ranges plus the two dictionaries — DiskBytesRead proportional to k, not
// to the column file size — with contiguous chunks coalesced into fewer
// read runs than chunk loads, and results bit-for-bit identical to the
// fully resident store. The counterpart of PR 3's
// TestChunkGranularExactColdLoads, under compression.
func TestChunkCompressedExactColdReads(t *testing.T) {
	dir := savedReorderedStore(t, 6000, "zippy")
	eagerStore, _, err := colstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	footprint := residentFootprint(t, eagerStore)
	active := activeChunkIndices(t, eagerStore, "country", "de")
	k, n := len(active), eagerStore.NumChunks()
	if k < 2 || k == n {
		t.Fatalf("degenerate test data: %d of %d chunks contain de", k, n)
	}

	// The exact bytes the query may read: for each touched column, the
	// compressed dictionary record plus the k active chunks' compressed
	// records — straight from the manifest.
	r, _, err := colstore.NewReader(dir)
	if err != nil {
		t.Fatal(err)
	}
	var wantDisk int64
	for _, col := range []string{"country", "table_name"} {
		dlen, ok := r.DictFileLen(col)
		if !ok {
			t.Fatalf("column %q has no exact dictionary range", col)
		}
		wantDisk += dlen
		for _, ci := range active {
			_, clen, ok := r.ChunkFileRange(col, ci)
			if !ok {
				t.Fatalf("column %q chunk %d has no exact range", col, ci)
			}
			wantDisk += clen
		}
	}

	mgr := memmgr.New(footprint/4, "2q")
	lazyStore, _, err := colstore.OpenLazy(dir, mgr)
	if err != nil {
		t.Fatal(err)
	}
	eager := New(eagerStore, Options{Parallelism: 2})
	lazy := New(lazyStore, Options{Parallelism: 2})

	q := `SELECT table_name, COUNT(*) AS c FROM data WHERE country = "de" GROUP BY table_name ORDER BY c DESC, table_name ASC;`
	want, err := eager.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	got, err := lazy.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, q, want, got)

	st := got.Stats
	if st.ActiveChunks != k {
		t.Fatalf("residency marked %d chunks active, %d contain de", st.ActiveChunks, k)
	}
	if st.ColdChunkLoads != 2*k {
		t.Fatalf("cold chunk loads = %d, want exactly 2k = %d", st.ColdChunkLoads, 2*k)
	}
	if st.ColdDictLoads != 2 {
		t.Fatalf("cold dict loads = %d, want 2", st.ColdDictLoads)
	}
	if st.DiskBytesRead != wantDisk {
		t.Fatalf("disk bytes read = %d, want the exact active ranges = %d", st.DiskBytesRead, wantDisk)
	}
	// The reordered store keeps a country's chunks contiguous, so the 2k
	// chunk loads must coalesce into fewer run reads than loads.
	if st.ReadRuns == 0 || st.ReadRuns >= st.ColdChunkLoads {
		t.Fatalf("read runs = %d for %d cold chunk loads; want coalescing", st.ReadRuns, st.ColdChunkLoads)
	}
	if st.CoalescedReads == 0 {
		t.Fatalf("no coalesced reads despite contiguous active chunks: %+v", st)
	}

	// Warm repeat: nothing loads, nothing reads.
	warm, err := lazy.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, q, want, warm)
	if warm.Stats.ColdChunkLoads != 0 || warm.Stats.DiskBytesRead != 0 || warm.Stats.ReadRuns != 0 {
		t.Fatalf("warm repeat touched disk: %+v", warm.Stats)
	}
}

// TestCacheSkippedChunksWarmRepeat is the acceptance test of cache-aware
// residency: with the result cache holding a query's fully-active chunk
// partials, a repeat of the query must answer those chunks WITHOUT pinning
// or loading them — CacheSkippedChunks > 0 with zero cold chunk loads even
// after the budget evicted everything — and stay bit-for-bit identical.
func TestCacheSkippedChunksWarmRepeat(t *testing.T) {
	dir := savedReorderedStore(t, 6000, "zippy")
	eagerStore, _, err := colstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	n := eagerStore.NumChunks()
	eager := New(eagerStore, Options{Parallelism: 2})

	// A budget below one pass's working set — after the cold query the
	// unpinned chunks cannot all stay, so any chunk reload would have to
	// hit disk — but big enough that the group column's dictionary alone
	// fits once nothing else competes.
	dictBytes := eagerStore.Column("table_name").Memory().GlobalDict
	mgr := memmgr.New(dictBytes+dictBytes/4, "2q")
	lazyStore, _, err := colstore.OpenLazy(dir, mgr)
	if err != nil {
		t.Fatal(err)
	}
	lazy := New(lazyStore, Options{Parallelism: 2, ResultCacheBytes: 32 << 20})

	q := `SELECT table_name, COUNT(*) AS c FROM data GROUP BY table_name ORDER BY c DESC, table_name ASC;`
	want, err := eager.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := lazy.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, q, want, cold)
	if cold.Stats.ColdChunkLoads != n {
		t.Fatalf("cold pass loaded %d chunks, want %d", cold.Stats.ColdChunkLoads, n)
	}
	if cold.Stats.CacheSkippedChunks != 0 {
		t.Fatalf("cold pass reported %d cache-skipped chunks", cold.Stats.CacheSkippedChunks)
	}
	if st := mgr.Stats(); st.Evictions == 0 {
		t.Fatalf("budget never evicted; the warm pass would prove nothing: %+v", st)
	}

	// Repeat: every chunk is fully active (no WHERE) and cached, so none
	// may be pinned or loaded — even though the budget evicted them all.
	// Only the group column's dictionary may reload (finalize needs it).
	warm, err := lazy.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, q, want, warm)
	if warm.Stats.CacheSkippedChunks != n {
		t.Fatalf("warm repeat cache-skipped %d chunks, want all %d", warm.Stats.CacheSkippedChunks, n)
	}
	if warm.Stats.ColdChunkLoads != 0 {
		t.Fatalf("warm repeat cold-loaded %d chunks despite cached partials", warm.Stats.ColdChunkLoads)
	}
	if warm.Stats.ChunksCached != n {
		t.Fatalf("warm repeat reported %d cached chunks, want %d", warm.Stats.ChunksCached, n)
	}

	// Third pass: the dictionary is warm again, so the query is entirely
	// I/O-free — zero cold loads of any kind.
	third, err := lazy.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, q, want, third)
	st := third.Stats
	if st.ColdLoads != 0 || st.ColdChunkLoads != 0 || st.ColdDictLoads != 0 || st.DiskBytesRead != 0 {
		t.Fatalf("third pass touched disk: %+v", st)
	}
	if st.CacheSkippedChunks != n {
		t.Fatalf("third pass cache-skipped %d chunks, want %d", st.CacheSkippedChunks, n)
	}
}

// TestCacheSkippedRestricted checks the restricted variant: only the
// span-proven fully active chunks of a selective query are answered from
// the cache; partially active chunks still rescan, and the result stays
// exact.
func TestCacheSkippedRestricted(t *testing.T) {
	dir := savedReorderedStore(t, 6000, "")
	eagerStore, _, err := colstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	eager := New(eagerStore, Options{Parallelism: 2})
	lazyStore, _, err := colstore.OpenLazy(dir, memmgr.New(0, "2q"))
	if err != nil {
		t.Fatal(err)
	}
	lazy := New(lazyStore, Options{Parallelism: 2, ResultCacheBytes: 32 << 20})

	q := `SELECT table_name, COUNT(*) AS c FROM data WHERE country = "de" GROUP BY table_name ORDER BY c DESC, table_name ASC;`
	want, err := eager.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := lazy.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, q, want, cold)
	warm, err := lazy.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, q, want, warm)
	// The reordered store gives "de" interior chunks a single-value span,
	// which the analysis proves fully active; their cold-pass partials must
	// answer the repeat without loads.
	if warm.Stats.CacheSkippedChunks == 0 {
		t.Fatalf("no cache-skipped chunks on the warm repeat: %+v", warm.Stats)
	}
	if warm.Stats.CacheSkippedChunks < warm.Stats.ActiveChunks && warm.Stats.ChunksScanned == 0 {
		t.Fatalf("partially active chunks should still scan: %+v", warm.Stats)
	}
	if warm.Stats.ActiveChunks != cold.Stats.ActiveChunks {
		t.Fatalf("active-chunk accounting drifted between passes: %d vs %d",
			warm.Stats.ActiveChunks, cold.Stats.ActiveChunks)
	}
}

// TestCompressedCodecsBitIdentical runs a restricted aggregation and a
// multi-column group-by through a budgeted lazy engine for EVERY
// registered codec and demands bit-for-bit equality with the resident
// engine — the end-to-end format round-trip.
func TestCompressedCodecsBitIdentical(t *testing.T) {
	queries := []string{
		`SELECT table_name, COUNT(*) AS c FROM data WHERE country = "de" GROUP BY table_name ORDER BY c DESC, table_name ASC;`,
		`SELECT country, table_name, SUM(latency) AS s FROM data GROUP BY country, table_name ORDER BY s DESC, country ASC, table_name ASC LIMIT 15;`,
		`SELECT country, AVG(latency) AS a FROM data WHERE latency > 200 GROUP BY country ORDER BY a DESC, country ASC;`,
	}
	for _, codec := range compress.Names() {
		t.Run(codec, func(t *testing.T) {
			dir := savedReorderedStore(t, 4000, codec)
			eagerStore, _, err := colstore.Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			budget := residentFootprint(t, eagerStore) / 4
			lazyStore, _, err := colstore.OpenLazy(dir, memmgr.New(budget, "2q"))
			if err != nil {
				t.Fatal(err)
			}
			eager := New(eagerStore, Options{Parallelism: 2})
			lazy := New(lazyStore, Options{Parallelism: 2})
			for _, q := range queries {
				want, err := eager.Query(q)
				if err != nil {
					t.Fatalf("eager %s: %v", q, err)
				}
				got, err := lazy.Query(q)
				if err != nil {
					t.Fatalf("lazy %s: %v", q, err)
				}
				assertSameResult(t, q, want, got)
			}
		})
	}
}

// TestLegacyV2EngineMemoizedDecompress runs a restricted query against a
// whole-column-codec (v2) store: correctness aside, the Reader's stream
// memo must keep the disk charge at one file read per touched column
// instead of one per cold chunk.
func TestLegacyV2EngineMemoizedDecompress(t *testing.T) {
	tbl := logs(4000)
	s, err := colstore.FromTable(tbl, chunkedOpts())
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := colstore.SaveLegacyV2(s, dir, "zippy"); err != nil {
		t.Fatal(err)
	}
	eagerStore, _, err := colstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	lazyStore, _, err := colstore.OpenLazy(dir, memmgr.New(0, "2q"))
	if err != nil {
		t.Fatal(err)
	}
	eager := New(eagerStore, Options{Parallelism: 2})
	lazy := New(lazyStore, Options{Parallelism: 2})
	q := `SELECT table_name, COUNT(*) AS c FROM data WHERE country = "de" GROUP BY table_name ORDER BY c DESC, table_name ASC;`
	want, err := eager.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	got, err := lazy.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, q, want, got)
	st := got.Stats
	if st.ColdChunkLoads == 0 {
		t.Fatalf("expected cold chunk loads on a v2 store: %+v", st)
	}
	io, ok := lazyStore.IOStats()
	if !ok {
		t.Fatal("lazy store reports no IO stats")
	}
	// Two touched columns: one decompress each, however many chunks were
	// cold. Without the memo this would be ~one per cold chunk+dict.
	if io.DecompressCalls != 2 {
		t.Fatalf("decompress calls = %d, want 2 (one per column, memoized)", io.DecompressCalls)
	}
}

// TestColdIOConcurrentCompressed hammers a tightly budgeted per-chunk-
// compressed store with concurrent restricted queries and a shared result
// cache — eviction, coalesced reload, and cache-aware skips racing — and
// checks every answer against the resident engine. Run with -race.
func TestColdIOConcurrentCompressed(t *testing.T) {
	dir := savedReorderedStore(t, 4000, "zippy")
	eagerStore, _, err := colstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	budget := residentFootprint(t, eagerStore) / 5
	mgr := memmgr.New(budget, "arc")
	lazyStore, _, err := colstore.OpenLazy(dir, mgr)
	if err != nil {
		t.Fatal(err)
	}
	eager := New(eagerStore, Options{Parallelism: 2})
	lazy := New(lazyStore, Options{Parallelism: 2, ResultCacheBytes: 16 << 20})

	queries := []string{
		`SELECT table_name, COUNT(*) AS c FROM data WHERE country = "de" GROUP BY table_name ORDER BY c DESC, table_name ASC;`,
		`SELECT table_name, COUNT(*) AS c FROM data WHERE country = "us" GROUP BY table_name ORDER BY c DESC, table_name ASC;`,
		`SELECT user, SUM(latency) AS s FROM data WHERE country IN ("ch", "jp") GROUP BY user ORDER BY s DESC, user ASC LIMIT 10;`,
		`SELECT country, COUNT(*) AS c FROM data GROUP BY country ORDER BY c DESC, country ASC;`,
		`SELECT country, MIN(latency), MAX(latency) FROM data GROUP BY country ORDER BY country ASC;`,
	}
	want := make(map[string]*Result, len(queries))
	for _, q := range queries {
		r, err := eager.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		want[q] = r
	}

	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 4*len(queries); i++ {
				q := queries[(w+i)%len(queries)]
				got, err := lazy.Query(q)
				if err != nil {
					t.Errorf("worker %d: %s: %v", w, q, err)
					return
				}
				assertSameResult(t, q, want[q], got)
			}
		}(w)
	}
	wg.Wait()
	if st := mgr.Stats(); st.PinnedBytes != 0 {
		t.Fatalf("pinned bytes %d after all queries finished", st.PinnedBytes)
	}
	if st := lazy.Stats(); st.CacheSkippedChunks == 0 {
		t.Fatalf("cache-aware skips never engaged under repetition: %+v", st)
	}
	if err := lazyStore.Close(); err != nil {
		t.Fatal(err)
	}
}
