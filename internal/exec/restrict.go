package exec

import (
	"fmt"
	"math"

	"powerdrill/internal/colstore"
	"powerdrill/internal/enc"
	"powerdrill/internal/sql"
	"powerdrill/internal/value"
)

// The restriction machinery implements Section 2.4's "special treatment"
// of AND, OR, NOT, IN, NOT IN, = and != (plus ordinary comparisons, which
// sorted dictionaries turn into global-id ranges): a WHERE clause compiles
// into a tree whose leaves are per-column global-id sets or ranges. The
// tree is evaluated twice per chunk, first in three-valued logic against
// the chunk-dictionaries alone — classifying the chunk as skippable, fully
// active (cacheable) or partially active — and only for partially active
// chunks a second time row-wise, producing a selection bitmap.

// triState is the chunk classification lattice.
type triState int8

const (
	activeNone triState = iota // no row can match: skip the chunk
	activeSome                 // some rows may match: scan with a mask
	activeAll                  // every row matches: fully active
)

func (t triState) String() string {
	switch t {
	case activeNone:
		return "none"
	case activeSome:
		return "some"
	default:
		return "all"
	}
}

// restriction is a compiled WHERE tree node.
type restriction struct {
	op       rOp
	children []*restriction // for rAnd, rOr, rNot

	col     string           // leaf column
	colRef  *colstore.Column // resolved (pinned) pointer for col
	gids    []uint32         // rInSet: sorted global-ids
	lo, hi  uint32           // rRange: [lo, hi) of global-ids
	rowExpr sql.Expr         // rRowPred: arbitrary row-level fallback
}

type rOp uint8

const (
	rAnd rOp = iota
	rOr
	rNot
	rInSet   // column value's global-id ∈ gids
	rRange   // lo <= global-id < hi
	rRowPred // evaluate expression per row (cannot skip)
	rTrue    // matches everything (e.g. empty NOT IN list)
)

// compileRestriction translates a WHERE expression. Any sub-expression
// whose left side is not a plain column is first materialized as a virtual
// field by the engine (Section 5), after which it is a plain column again.
// Leaf columns are pinned into ps at the residency analysis's chunk
// granularity (active; nil = all chunks): the compile-time dictionary
// lookups need the dictionary, and the scan touches only active chunks.
func (e *Engine) compileRestriction(w sql.Expr, ps *colstore.PinSet, active []bool) (*restriction, error) {
	switch n := w.(type) {
	case *sql.Binary:
		switch n.Op {
		case sql.OpAnd, sql.OpOr:
			l, err := e.compileRestriction(n.L, ps, active)
			if err != nil {
				return nil, err
			}
			r, err := e.compileRestriction(n.R, ps, active)
			if err != nil {
				return nil, err
			}
			op := rAnd
			if n.Op == sql.OpOr {
				op = rOr
			}
			return &restriction{op: op, children: []*restriction{l, r}}, nil
		case sql.OpEq, sql.OpNe, sql.OpLt, sql.OpLe, sql.OpGt, sql.OpGe:
			return e.compileComparison(n, ps, active)
		default:
			return nil, fmt.Errorf("exec: operator %s is not a predicate", n.Op)
		}
	case *sql.Not:
		child, err := e.compileRestriction(n.X, ps, active)
		if err != nil {
			return nil, err
		}
		return &restriction{op: rNot, children: []*restriction{child}}, nil
	case *sql.In:
		return e.compileIn(n, ps, active)
	}
	return nil, fmt.Errorf("exec: expression %s is not a predicate", w)
}

// inGIDs maps `col IN (lits)` onto the sorted global-id set that
// satisfies it. Shared by the restriction compiler and the residency
// analysis so the two can never drift apart on literal coercion.
func inGIDs(col *colstore.Column, lits []value.Value) ([]uint32, error) {
	gids := make([]uint32, 0, len(lits))
	for _, lit := range lits {
		v, err := coerceToKind(lit, col.Kind)
		if err != nil {
			return nil, err
		}
		if !v.IsValid() {
			continue // value cannot equal any column value (e.g. 1.5 vs int)
		}
		if id, ok := col.Dict.Lookup(v); ok {
			gids = append(gids, id)
		}
	}
	sortUint32s(gids)
	return gids, nil
}

// eqGIDs maps `col = lit` onto its global-id set (empty when the literal
// cannot match any column value). Shared like inGIDs.
func eqGIDs(col *colstore.Column, lit value.Value) ([]uint32, error) {
	v, err := coerceToKind(lit, col.Kind)
	if err != nil {
		return nil, err
	}
	if v.IsValid() {
		if id, found := col.Dict.Lookup(v); found {
			return []uint32{id}, nil
		}
	}
	return nil, nil
}

// compileIn maps `X [NOT] IN (literals)` onto a global-id set.
func (e *Engine) compileIn(n *sql.In, ps *colstore.PinSet, active []bool) (*restriction, error) {
	lits := make([]value.Value, 0, len(n.List))
	for _, item := range n.List {
		v, ok := exprLiteral(item)
		if !ok {
			// Non-literal member: row-level fallback.
			return &restriction{op: rRowPred, rowExpr: n}, nil
		}
		lits = append(lits, v)
	}
	colName, err := e.materializeOperand(n.X, ps, active)
	if err != nil {
		return nil, err
	}
	col, err := ps.ColumnChunks(colName, active)
	if err != nil {
		return nil, err
	}
	gids, err := inGIDs(col, lits)
	if err != nil {
		return nil, fmt.Errorf("exec: IN list for %q: %w", colName, err)
	}
	leaf := &restriction{op: rInSet, col: colName, colRef: col, gids: gids}
	if n.Negated {
		return &restriction{op: rNot, children: []*restriction{leaf}}, nil
	}
	return leaf, nil
}

// compileComparison maps `col OP literal` (either side) onto a set or a
// range leaf; anything else becomes a row predicate.
func (e *Engine) compileComparison(n *sql.Binary, ps *colstore.PinSet, active []bool) (*restriction, error) {
	lhs, rhs := n.L, n.R
	op := n.Op
	if _, isLit := exprLiteral(lhs); isLit {
		// Normalize to column-on-the-left, flipping the operator.
		lhs, rhs = rhs, lhs
		op = flipOp(op)
	}
	lit, ok := exprLiteral(rhs)
	if !ok {
		// Column-to-column or other complex comparison.
		return &restriction{op: rRowPred, rowExpr: n}, nil
	}
	colName, err := e.materializeOperand(lhs, ps, active)
	if err != nil {
		return nil, err
	}
	col, err := ps.ColumnChunks(colName, active)
	if err != nil {
		return nil, err
	}
	d := col.Dict

	switch op {
	case sql.OpEq, sql.OpNe:
		gids, err := eqGIDs(col, lit)
		if err != nil {
			return nil, fmt.Errorf("exec: comparing %q: %w", colName, err)
		}
		leaf := &restriction{op: rInSet, col: colName, colRef: col, gids: gids}
		if op == sql.OpNe {
			return &restriction{op: rNot, children: []*restriction{leaf}}, nil
		}
		return leaf, nil
	}

	lo, hi, err := rangeForComparison(d, col.Kind, op, lit)
	if err != nil {
		return nil, fmt.Errorf("exec: comparing %q: %w", colName, err)
	}
	return &restriction{op: rRange, col: colName, colRef: col, lo: lo, hi: hi}, nil
}

// rangeForComparison converts `col OP lit` into the half-open global-id
// interval [lo, hi) that satisfies it. Sorted dictionaries make ordering
// restrictions as cheap as IN restrictions.
func rangeForComparison(d interface {
	FindGE(value.Value) uint32
	Lookup(value.Value) (uint32, bool)
	Len() int
}, kind value.Kind, op sql.BinaryOp, lit value.Value) (lo, hi uint32, err error) {
	n := uint32(d.Len())
	// Cross-kind numeric comparisons adjust the literal to the column
	// kind, tightening the bound when the literal is fractional.
	v, strict, errc := coerceBound(lit, kind, op)
	if errc != nil {
		return 0, 0, errc
	}
	ge := d.FindGE(v)
	present := false
	if _, found := d.Lookup(v); found {
		present = true
	}
	switch op {
	case sql.OpLt:
		hi = ge
		if present && !strict {
			// v itself sorts at ge; excluded for <.
		}
		return 0, hi, nil
	case sql.OpLe:
		hi = ge
		if present && !strict {
			hi++
		}
		return 0, hi, nil
	case sql.OpGt:
		lo = ge
		if present && !strict {
			lo++
		}
		return lo, n, nil
	case sql.OpGe:
		return ge, n, nil
	}
	return 0, 0, fmt.Errorf("exec: operator %s is not a range", op)
}

// coerceBound adapts a literal to the column kind for range comparisons.
// strict reports that the adjusted literal is already strictly inside the
// bound (e.g. latency > 100.5 became latency >= 101).
func coerceBound(lit value.Value, kind value.Kind, op sql.BinaryOp) (value.Value, bool, error) {
	if lit.Kind() == kind {
		return lit, false, nil
	}
	switch {
	case kind == value.KindInt64 && lit.Kind() == value.KindFloat64:
		f := lit.Float()
		fl := math.Floor(f)
		if f == fl {
			return value.Int64(int64(fl)), false, nil
		}
		// Fractional bound: x > 100.5 ⇔ x >= 101; x < 100.5 ⇔ x <= 100.
		switch op {
		case sql.OpGt, sql.OpGe:
			return value.Int64(int64(fl) + 1), true, nil
		default:
			return value.Int64(int64(fl) + 1), true, nil // x < 100.5 ⇔ x < 101
		}
	case kind == value.KindFloat64 && lit.Kind() == value.KindInt64:
		return value.Float64(float64(lit.Int())), false, nil
	}
	return value.Value{}, false, fmt.Errorf("cannot compare %s column with %s literal", kind, lit.Kind())
}

// coerceToKind adapts an equality/IN literal to the column kind; an
// invalid value means "can never match".
func coerceToKind(v value.Value, kind value.Kind) (value.Value, error) {
	if v.Kind() == kind {
		return v, nil
	}
	switch {
	case kind == value.KindInt64 && v.Kind() == value.KindFloat64:
		f := v.Float()
		if f == math.Floor(f) {
			return value.Int64(int64(f)), nil
		}
		return value.Value{}, nil // fractional: never equal to an int
	case kind == value.KindFloat64 && v.Kind() == value.KindInt64:
		return value.Float64(float64(v.Int())), nil
	}
	return value.Value{}, fmt.Errorf("cannot compare %s column with %s literal", kind, v.Kind())
}

func flipOp(op sql.BinaryOp) sql.BinaryOp {
	switch op {
	case sql.OpLt:
		return sql.OpGt
	case sql.OpLe:
		return sql.OpGe
	case sql.OpGt:
		return sql.OpLt
	case sql.OpGe:
		return sql.OpLe
	}
	return op // = and != are symmetric
}

// classify evaluates the tree against chunk ci's chunk-dictionaries only.
func (r *restriction) classify(e *Engine, ci int) triState {
	switch r.op {
	case rAnd:
		out := activeAll
		for _, c := range r.children {
			if s := c.classify(e, ci); s < out {
				out = s
			}
			if out == activeNone {
				break
			}
		}
		return out
	case rOr:
		out := activeNone
		for _, c := range r.children {
			if s := c.classify(e, ci); s > out {
				out = s
			}
			if out == activeAll {
				break
			}
		}
		return out
	case rNot:
		switch r.children[0].classify(e, ci) {
		case activeNone:
			return activeAll
		case activeAll:
			return activeNone
		default:
			return activeSome
		}
	case rInSet:
		ch := r.colRef.Chunks[ci]
		if ch.Rows() == 0 || !ch.ContainsAny(r.gids) {
			return activeNone
		}
		if ch.AllWithin(r.gids) {
			return activeAll
		}
		return activeSome
	case rRange:
		ch := r.colRef.Chunks[ci]
		if ch.Rows() == 0 {
			return activeNone
		}
		first, last := ch.GlobalIDs[0], ch.GlobalIDs[len(ch.GlobalIDs)-1]
		if r.lo >= r.hi || last < r.lo || first >= r.hi {
			return activeNone
		}
		if first >= r.lo && last < r.hi {
			return activeAll
		}
		return activeSome
	case rRowPred:
		return activeSome
	case rTrue:
		return activeAll
	}
	return activeSome
}

// mask computes the row-selection bitmap of the tree for chunk ci. p (the
// compiled plan, nil in tests) supplies pre-resolved pinned column
// pointers to the row-predicate fallback.
func (r *restriction) mask(e *Engine, p *plan, ci int) (*enc.Bitmap, error) {
	rows := e.store.ChunkRows(ci)
	switch r.op {
	case rAnd:
		out, err := r.children[0].mask(e, p, ci)
		if err != nil {
			return nil, err
		}
		for _, c := range r.children[1:] {
			if !e.opts.DisableKernels && out.None() && !c.canError() {
				// Kernel path: an empty AND stays empty; skip the remaining
				// children unless one could surface an evaluation error the
				// scalar path would report.
				continue
			}
			m, err := c.mask(e, p, ci)
			if err != nil {
				return nil, err
			}
			out.And(m)
		}
		return out, nil
	case rOr:
		out, err := r.children[0].mask(e, p, ci)
		if err != nil {
			return nil, err
		}
		for _, c := range r.children[1:] {
			m, err := c.mask(e, p, ci)
			if err != nil {
				return nil, err
			}
			out.Or(m)
		}
		return out, nil
	case rNot:
		m, err := r.children[0].mask(e, p, ci)
		if err != nil {
			return nil, err
		}
		m.Not()
		return m, nil
	case rInSet:
		return maskFromChunkPredWith(e, r.colRef.Chunks[ci], rows, func(gid uint32) bool {
			return containsUint32(r.gids, gid)
		}), nil
	case rRange:
		return maskFromChunkPredWith(e, r.colRef.Chunks[ci], rows, func(gid uint32) bool {
			return gid >= r.lo && gid < r.hi
		}), nil
	case rRowPred:
		return e.rowPredMask(r.rowExpr, p, ci)
	case rTrue:
		m := enc.NewBitmap(rows)
		m.SetAll()
		return m, nil
	}
	return nil, fmt.Errorf("exec: cannot mask restriction op %d", r.op)
}

// canError reports whether evaluating the tree's mask can surface an
// error: only the row-predicate fallback evaluates expressions per row; id
// sets, ranges and their boolean combinations cannot fail. The kernel
// path's AND short-circuit uses this so it never skips an error the scalar
// reference path would report.
func (r *restriction) canError() bool {
	if r.op == rRowPred {
		return true
	}
	for _, c := range r.children {
		if c.canError() {
			return true
		}
	}
	return false
}

// maskFromChunkPredWith picks the mask builder for the engine's scan mode:
// the vectorized SpreadMask spread or the scalar per-row reference loop.
func maskFromChunkPredWith(e *Engine, ch *colstore.Chunk, rows int, pred func(gid uint32) bool) *enc.Bitmap {
	if e.opts.DisableKernels {
		return maskFromChunkPred(ch, rows, pred)
	}
	return maskFromChunkPredVec(ch, rows, pred)
}

// maskFromChunkPred builds a row bitmap from a per-global-id predicate:
// first decide each *distinct* value once against the chunk-dictionary,
// then spread the verdicts over the rows through the elements. This is why
// the double dictionary encoding makes restrictions cheap — the predicate
// runs |chunk-dict| times, not |rows| times.
func maskFromChunkPred(ch *colstore.Chunk, rows int, pred func(gid uint32) bool) *enc.Bitmap {
	active := make([]bool, len(ch.GlobalIDs))
	anyActive := false
	for i, gid := range ch.GlobalIDs {
		if pred(gid) {
			active[i] = true
			anyActive = true
		}
	}
	m := enc.NewBitmap(rows)
	if !anyActive {
		return m
	}
	for r := 0; r < rows; r++ {
		if active[ch.Elems.At(r)] {
			m.Set(r)
		}
	}
	return m
}

// maskFromChunkPredVec is maskFromChunkPred with the per-row spread
// replaced by the sequence's word-at-a-time SpreadMask kernel.
func maskFromChunkPredVec(ch *colstore.Chunk, rows int, pred func(gid uint32) bool) *enc.Bitmap {
	active := make([]bool, len(ch.GlobalIDs))
	anyActive := false
	for i, gid := range ch.GlobalIDs {
		if pred(gid) {
			active[i] = true
			anyActive = true
		}
	}
	m := enc.NewBitmap(rows)
	if anyActive {
		ch.Elems.SpreadMask(active, m)
	}
	return m
}

// rowPredMask evaluates an arbitrary predicate per row — the slow path.
func (e *Engine) rowPredMask(pred sql.Expr, p *plan, ci int) (*enc.Bitmap, error) {
	rows := e.store.ChunkRows(ci)
	m := enc.NewBitmap(rows)
	row := newStoreRow(e, p, ci)
	for r := 0; r < rows; r++ {
		row.row = r
		ok, err := evalPredRow(pred, row)
		if err != nil {
			return nil, err
		}
		if ok {
			m.Set(r)
		}
	}
	return m, nil
}

// columnsOf collects the column names a restriction tree touches.
func (r *restriction) columnsOf(out map[string]bool) {
	for _, c := range r.children {
		c.columnsOf(out)
	}
	if r.col != "" {
		out[r.col] = true
	}
	if r.rowExpr != nil {
		for _, c := range exprColumns(r.rowExpr) {
			out[c] = true
		}
	}
}

func sortUint32s(a []uint32) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j-1] > a[j]; j-- {
			a[j-1], a[j] = a[j], a[j-1]
		}
	}
}

func containsUint32(sorted []uint32, x uint32) bool {
	lo, hi := 0, len(sorted)
	for lo < hi {
		mid := (lo + hi) / 2
		if sorted[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(sorted) && sorted[lo] == x
}
